// Command vmiboot boots a VM image chain by replaying a guest boot
// workload against it (the measurement instrument behind Table 1 and §5's
// "we measure the boot time as the time from invoking KVM ... until the VM
// connects back").
//
// Usage:
//
//	vmiboot [-C dir] [-profile centos|debian|windows] [-scale F]
//	        [-think F] [-trace FILE] IMAGE
//
// IMAGE is the chain top (typically a CoW image) inside -C. The workload's
// image size is clamped to the chain's virtual size.
package main

import (
	"flag"
	"fmt"
	"os"

	"vmicache/internal/backend"
	"vmicache/internal/boot"
	"vmicache/internal/core"
	"vmicache/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "vmiboot: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vmiboot", flag.ExitOnError)
	dir := fs.String("C", ".", "working directory")
	profName := fs.String("profile", "centos", "boot profile: centos, debian or windows")
	scale := fs.Float64("scale", 1.0, "profile scale factor (working set, image size, durations)")
	think := fs.Float64("think", 0, "think-time multiplier (0 replays I/O back-to-back)")
	traceOut := fs.String("trace", "", "write the block trace to this file")
	replayIn := fs.String("replay", "", "replay a previously captured trace instead of generating a boot")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one image name")
	}
	name := fs.Arg(0)

	prof, err := boot.ProfileByName(*profName)
	if err != nil {
		return err
	}
	if *scale != 1.0 {
		prof = prof.Scale(*scale)
	}

	st, err := backend.NewDirStore(*dir)
	if err != nil {
		return err
	}
	ns := core.NewNamespace("dir", st)
	c, err := core.OpenChain(ns, core.Locator{Store: "dir", Name: name}, core.ChainOpts{})
	if err != nil {
		return err
	}
	defer c.Close() //nolint:errcheck

	if c.Size() < prof.ImageSize {
		prof.ImageSize = c.Size()
	}
	rec := trace.NewRecorder()
	rec.KeepRecords = *traceOut != ""

	var res *boot.ReplayResult
	if *replayIn != "" {
		tf, err := os.Open(*replayIn)
		if err != nil {
			return err
		}
		defer tf.Close() //nolint:errcheck // read-only
		tr, err := trace.Load(tf)
		if err != nil {
			return err
		}
		fmt.Printf("replaying trace %s against %s: %d records\n", *replayIn, name, tr.Len())
		res, err = boot.ReplayTrace(tr, c, boot.ReplayOpts{ThinkScale: *think, Recorder: rec})
		if err != nil {
			return err
		}
	} else {
		w := boot.Generate(prof)
		fmt.Printf("booting %s with %s: %d ops, %.1f MB unique reads\n",
			name, prof.Name, len(w.Ops), float64(w.UniqueReadBytes())/1e6)
		res, err = boot.Replay(w, c, boot.ReplayOpts{ThinkScale: *think, Recorder: rec})
		if err != nil {
			return err
		}
	}
	if err := c.Sync(); err != nil {
		return err
	}

	ws := rec.WorkingSet()
	fmt.Printf("boot complete in %v\n", res.Elapsed.Round(1e6))
	fmt.Printf("  reads:  %6d ops, %8.1f MB (%.1f MB unique — Table 1 metric)\n",
		res.ReadOps, float64(res.ReadBytes)/1e6, float64(ws.UniqueReadBytes)/1e6)
	fmt.Printf("  writes: %6d ops, %8.1f MB\n", res.WriteOps, float64(res.WriteBytes)/1e6)
	fmt.Printf("  flushes:%6d\n", res.FlushOps)
	if cache := c.CacheImage(); cache != nil {
		s := cache.Stats()
		fmt.Printf("  cache:  used %.1f of %.1f MB quota, %d fills, %.1f MB warm hits, full=%v\n",
			float64(cache.UsedBytes())/1e6, float64(cache.Quota())/1e6,
			s.CacheFillOps.Load(), float64(s.LocalBytes.Load())/1e6, cache.CacheFull())
		fmt.Printf("  base traffic through cache: %.1f MB\n", float64(s.BackingBytes.Load())/1e6)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close() //nolint:errcheck
		if err := rec.Trace().Save(f); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		fmt.Printf("trace with %d records written to %s\n", rec.Trace().Len(), *traceOut)
	}
	return nil
}
