// Command vmicached runs the node-local VM image cache manager daemon: it
// owns a cache directory, warms caches for the listed base images (pulling
// them wholesale from peer nodes when possible, falling back to copy-on-read
// from the storage node), exports its published caches to peers over rblock,
// and evicts least-recently-used caches under the configured disk budget.
//
// Usage:
//
//	vmicached -dir DIR -storage HOST:PORT [flags]
//
// Flags:
//
//	-dir DIR         cache directory (required)
//	-storage ADDR    rblock address of the storage node (required)
//	-export ADDR     address to export published caches on (default :10811)
//	-peers A,B,...   peer vmicached export addresses, tried before storage
//	-budget SIZE     node cache disk budget, e.g. 10G (0 = unbounded)
//	-quota SIZE      per-cache fill quota (0 = whole base + metadata)
//	-cluster-bits N  cache cluster size exponent (0 = default)
//	-subclusters     fill caches at 4 KiB sub-cluster granularity
//	-warm A,B,...    base image names to warm at startup
//	-warm-profile P  boot profile guiding cold warms (centos/debian/windows)
//	-warm-jobs N     parallel workers per cold warm (1 = serial)
//	-warm-budget SZ  in-flight byte budget per parallel warm (default 16M)
//	-status DUR      periodic status print interval (0 = only on shutdown)
//	-drain DUR       graceful-shutdown drain deadline
//	-metrics-addr A  serve /metrics, /metrics.json and /debug/pprof on A
//	-pprof-mutex-frac N   sample 1-in-N mutex contention events (0 = off)
//	-pprof-block-rate NS  sample blocking events slower than NS ns (0 = off)
//	-zerocopy        serve peer transfers of published caches via sendfile(2)
//	                 (default on; Linux only, elsewhere it copies)
//	-mmap-warm       mmap published caches on boot attach: warm reads copy
//	                 from the mapping instead of issuing preads
//	-dedup           keep a content-addressed chunk store; peer warms become
//	                 manifest-first and move only the chunks this node lacks
//	-dedup-jobs N    dedup pipeline parallelism: chunk hash/compress workers
//	                 for publication and materialization (0 = GOMAXPROCS)
//	-swarm           warm cold caches chunk-wise from every peer at once
//	-tracker URL     swarm announce tracker base URL (http://host:port)
//	-tracker-listen A     also host the announce tracker on A
//	-swarm-self A    address announced to the swarm (default: -export bound)
//	-swarm-chunk-bits N   swarm chunk size exponent (default 16 = 64 KiB)
//	-swarm-max-peers N    peers each warm polls and fetches from (0 = all)
//
// A flash crowd boots one image on many nodes at once: one node hosts the
// tracker (-tracker-listen), every node starts with -swarm and -tracker
// pointing at it, and each warms chunk-wise from all the others while still
// warming itself — the storage node sends roughly one copy total, no matter
// the crowd size.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"vmicache/internal/cachemgr"
	"vmicache/internal/metrics"
	"vmicache/internal/rblock"
	"vmicache/internal/swarm"
)

func main() {
	fs := flag.NewFlagSet("vmicached", flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory (required)")
	storage := fs.String("storage", "", "rblock address of the storage node (required)")
	export := fs.String("export", "127.0.0.1:10811", "address to export published caches on (empty disables)")
	peers := fs.String("peers", "", "comma-separated peer export addresses")
	budget := fs.String("budget", "0", "node cache disk budget (bytes; K/M/G suffixes)")
	quota := fs.String("quota", "0", "per-cache fill quota (bytes; K/M/G suffixes)")
	clusterBits := fs.Int("cluster-bits", 0, "cache cluster size exponent (0 = default)")
	subclusters := fs.Bool("subclusters", false, "fill caches at 4 KiB sub-cluster granularity (needs -cluster-bits >= 13)")
	warm := fs.String("warm", "", "comma-separated base image names to warm at startup")
	warmProfile := fs.String("warm-profile", "", "boot profile guiding cold warms (centos/debian/windows; empty = whole image)")
	warmJobs := fs.Int("warm-jobs", 1, "parallel workers per cold warm (1 = serial)")
	warmBudget := fs.String("warm-budget", "16M", "in-flight byte budget per parallel warm (K/M/G suffixes)")
	status := fs.Duration("status", 0, "periodic status interval (0 = only on shutdown)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline")
	metricsAddr := fs.String("metrics-addr", "", "observability address (/metrics, /metrics.json, /debug/pprof); empty disables")
	dedupOn := fs.Bool("dedup", false, "keep a content-addressed chunk store: sibling caches share storage, peer warms move only missing chunks")
	dedupJobs := fs.Int("dedup-jobs", 0, "dedup pipeline parallelism for chunk hash/compress work (0 = GOMAXPROCS, 1 = serial)")
	zeroCopy := fs.Bool("zerocopy", true, "serve peer transfers of published caches via sendfile(2) (Linux; other platforms fall back to copying)")
	mmapWarm := fs.Bool("mmap-warm", false, "mmap published caches on boot attach so warm reads copy from the mapping instead of issuing preads")
	swarmOn := fs.Bool("swarm", false, "warm cold caches via chunk-level swarm transfer from peers")
	tracker := fs.String("tracker", "", "swarm announce tracker base URL, e.g. http://10.0.0.1:9091")
	trackerListen := fs.String("tracker-listen", "", "also host the swarm announce tracker over HTTP on this address")
	swarmSelf := fs.String("swarm-self", "", "peer-export address announced to the swarm (default: the -export bound address)")
	swarmChunkBits := fs.Int("swarm-chunk-bits", 0, "swarm transfer chunk size exponent (0 = default, 64 KiB)")
	swarmMaxPeers := fs.Int("swarm-max-peers", 0, "bound on peers each swarm warm polls and fetches from (0 = all)")
	mutexFrac := fs.Int("pprof-mutex-frac", 0, "mutex contention sampling fraction (runtime.SetMutexProfileFraction); 0 disables")
	blockRate := fs.Int("pprof-block-rate", 0, "blocking-event sampling rate in ns (runtime.SetBlockProfileRate); 0 disables")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	metrics.SetProfileRates(*mutexFrac, *blockRate)

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "vmicached: "+format+"\n", args...)
		os.Exit(1)
	}
	if *dir == "" || *storage == "" {
		fail("-dir and -storage are required")
	}
	budgetBytes, err := parseSize(*budget)
	if err != nil {
		fail("-budget: %v", err)
	}
	quotaBytes, err := parseSize(*quota)
	if err != nil {
		fail("-quota: %v", err)
	}
	warmBudgetBytes, err := parseSize(*warmBudget)
	if err != nil {
		fail("-warm-budget: %v", err)
	}

	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
		msrv, err := metrics.ListenAndServe(*metricsAddr, reg)
		if err != nil {
			fail("-metrics-addr %s: %v", *metricsAddr, err)
		}
		defer msrv.Close() //nolint:errcheck // terminating anyway
		fmt.Printf("vmicached: metrics on http://%s/metrics\n", msrv.Addr())
	}

	if *trackerListen != "" {
		ln, err := net.Listen("tcp", *trackerListen)
		if err != nil {
			fail("-tracker-listen %s: %v", *trackerListen, err)
		}
		tsrv := &http.Server{Handler: swarm.NewTracker(0, nil).Handler()}
		go tsrv.Serve(ln) //nolint:errcheck // reported on requests
		defer tsrv.Close()
		fmt.Printf("vmicached: swarm tracker on http://%s\n", ln.Addr())
	}
	var announcer swarm.Announcer
	if *tracker != "" {
		announcer = &swarm.TrackerClient{Base: *tracker}
	}

	client, err := rblock.Dial(*storage, 0)
	if err != nil {
		fail("dialing storage node %s: %v", *storage, err)
	}
	if reg != nil {
		client.RegisterMetrics(reg, metrics.Labels{"peer": "storage"})
	}
	if *warmJobs > 1 {
		// Parallel warm workers share this one connection; widen the
		// pipelining window so they are not serialised behind the
		// single-stream default, capped to keep the storage node fair.
		inflight := 8 * *warmJobs
		if inflight > 64 {
			inflight = 64
		}
		client.SetMaxInflight(inflight)
	}
	mgr, err := cachemgr.New(cachemgr.Config{
		Dir:            *dir,
		Budget:         budgetBytes,
		Quota:          quotaBytes,
		ClusterBits:    *clusterBits,
		Subclusters:    *subclusters,
		WarmProfile:    *warmProfile,
		WarmWorkers:    *warmJobs,
		WarmBudget:     warmBudgetBytes,
		Backing:        rblock.RemoteStore{C: client},
		Peers:          splitList(*peers),
		Metrics:        reg,
		Dedup:          *dedupOn,
		DedupWorkers:   *dedupJobs,
		ZeroCopy:       *zeroCopy,
		MmapWarm:       *mmapWarm,
		SwarmEnabled:   *swarmOn,
		SwarmSelf:      *swarmSelf,
		SwarmTracker:   announcer,
		SwarmChunkBits: *swarmChunkBits,
		SwarmMaxPeers:  *swarmMaxPeers,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		fail("%v", err)
	}
	if *export != "" {
		bound, err := mgr.ServePeers(*export)
		if err != nil {
			fail("exporting caches: %v", err)
		}
		fmt.Printf("vmicached: exporting published caches on %s\n", bound)
	}

	// Warm the requested bases concurrently; each warm singleflights
	// internally, and peer pulls race only against their own fallback.
	var wg sync.WaitGroup
	for _, base := range splitList(*warm) {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			lease, err := mgr.Acquire(base)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vmicached: warming %s: %v\n", base, err)
				return
			}
			fmt.Printf("vmicached: %s ready as %s\n", base, lease.Key())
			lease.Release()
		}(base)
	}
	wg.Wait()

	printStatus := func() {
		fmt.Printf("vmicached: status\n%s\n", indent(mgr.Stats().String()))
		// Fold the peer exporter's traffic (including per-image hit
		// counts) into the status output.
		if st, ok := mgr.ExportStats(); ok {
			fmt.Printf("  export: %s\n", strings.ReplaceAll(st.String(), "\n", "\n  "))
		}
	}

	var tick <-chan time.Time
	if *status > 0 {
		t := time.NewTicker(*status)
		defer t.Stop()
		tick = t.C
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-tick:
			printStatus()
		case s := <-sig:
			fmt.Printf("vmicached: %v: draining (up to %v)\n", s, *drain)
			if err := mgr.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "vmicached: shutdown: %v\n", err)
			}
			client.Close() //nolint:errcheck // terminating anyway
			printStatus()
			return
		}
	}
}

// splitList parses a comma-separated flag into its non-empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseSize parses "1073741824", "1G", "512M", "64K".
func parseSize(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

// indent prefixes every line with two spaces.
func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
