// Command rblockd exports a directory of image files over the remote block
// protocol — the storage node's role in the paper's deployments (the NFS
// export of §5).
//
// Usage:
//
//	rblockd [-addr HOST:PORT] [-dir DIR] [-rwsize N] [-ro] [-zerocopy]
//	        [-drain DUR] [-metrics-addr HOST:PORT] [-pprof-mutex-frac N]
//	        [-pprof-block-rate NS]
//
// On SIGINT/SIGTERM the server shuts down gracefully: it stops accepting new
// connections, drains in-flight requests up to -drain, prints its traffic
// counters (including the per-image breakdown), and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vmicache/internal/backend"
	"vmicache/internal/metrics"
	"vmicache/internal/rblock"
)

func main() {
	fs := flag.NewFlagSet("rblockd", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:10809", "listen address")
	dir := fs.String("dir", ".", "directory to export")
	rwsize := fs.Int("rwsize", rblock.DefaultRWSize, "maximum transfer segment (the paper tunes NFS to 64 KiB)")
	ro := fs.Bool("ro", false, "export read-only")
	zeroCopy := fs.Bool("zerocopy", false, "serve reads of read-only handles via sendfile(2) straight from the file (Linux)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline")
	metricsAddr := fs.String("metrics-addr", "", "observability address (/metrics, /metrics.json, /debug/pprof); empty disables")
	mutexFrac := fs.Int("pprof-mutex-frac", 0, "mutex contention sampling fraction (runtime.SetMutexProfileFraction); 0 disables")
	blockRate := fs.Int("pprof-block-rate", 0, "blocking-event sampling rate in ns (runtime.SetBlockProfileRate); 0 disables")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	metrics.SetProfileRates(*mutexFrac, *blockRate)

	store, err := backend.NewDirStore(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rblockd: %v\n", err)
		os.Exit(1)
	}
	srv := rblock.NewServer(store, rblock.ServerOpts{
		RWSize:   *rwsize,
		ReadOnly: *ro,
		ZeroCopy: *zeroCopy,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if *metricsAddr != "" {
		reg := metrics.NewRegistry()
		srv.RegisterMetrics(reg, nil)
		msrv, err := metrics.ListenAndServe(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rblockd: -metrics-addr %s: %v\n", *metricsAddr, err)
			os.Exit(1)
		}
		defer msrv.Close() //nolint:errcheck // terminating anyway
		fmt.Printf("rblockd: metrics on http://%s/metrics\n", msrv.Addr())
	}
	bound, err := srv.ListenAndLog(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rblockd: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("rblockd: exporting %s on %s (rwsize=%d, ro=%v)\n", *dir, bound, *rwsize, *ro)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("rblockd: %v: draining (up to %v)\n", s, *drain)
	if err := srv.Shutdown(*drain); err != nil {
		fmt.Fprintf(os.Stderr, "rblockd: shutdown: %v\n", err)
	}
	fmt.Printf("rblockd: %s\n", srv.Stats())
}
