// Command tracestat analyses block traces captured by `vmiboot -trace`:
// working-set size (Table 1's metric), request-size and inter-offset
// distributions, and a sequentiality estimate — the measurements §2.3 bases
// the whole cache-sizing argument on.
//
// Usage:
//
//	tracestat FILE [FILE...]
package main

import (
	"fmt"
	"os"

	"vmicache/internal/metrics"
	"vmicache/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracestat FILE [FILE...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := statOne(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracestat %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

func statOne(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() //nolint:errcheck // read-only
	tr, err := trace.Load(f)
	if err != nil {
		return err
	}
	ws := trace.Analyze(tr)

	var readSizes, gaps metrics.Histogram
	var seqBytes int64
	var lastEnd int64 = -1
	for _, r := range tr.Records {
		if r.Op != trace.OpRead {
			continue
		}
		readSizes.Add(float64(r.Length))
		if lastEnd >= 0 {
			gap := r.Offset - lastEnd
			if gap < 0 {
				gap = -gap
			}
			gaps.Add(float64(gap))
			if r.Offset == lastEnd {
				seqBytes += r.Length
			}
		}
		lastEnd = r.Offset + r.Length
	}

	fmt.Printf("== %s ==\n", path)
	fmt.Printf("records: %d (%d reads, %d writes, %d flushes)\n",
		tr.Len(), ws.ReadOps, ws.WriteOps, ws.FlushOps)
	fmt.Printf("unique read working set: %.1f MB in %d disjoint regions (Table 1 metric)\n",
		float64(ws.UniqueReadBytes)/1e6, ws.ReadIntervals)
	fmt.Printf("total reads:  %.1f MB (reread factor %.2f)\n",
		float64(ws.TotalReadBytes)/1e6,
		float64(ws.TotalReadBytes)/float64(maxI64(ws.UniqueReadBytes, 1)))
	fmt.Printf("total writes: %.1f MB (%.1f MB unique)\n",
		float64(ws.TotalWriteBytes)/1e6, float64(ws.UniqueWriteBytes)/1e6)
	if ws.ReadOps > 0 {
		fmt.Printf("mean read: %.1f KiB, ~p50 <= %.0f KiB, ~p95 <= %.0f KiB\n",
			readSizes.Mean()/1024, readSizes.ApproxQuantile(0.5)/1024, readSizes.ApproxQuantile(0.95)/1024)
		fmt.Printf("sequential continuation: %.0f%% of read bytes\n",
			100*float64(seqBytes)/float64(ws.TotalReadBytes))
	}
	fmt.Printf("\nread size distribution (bytes):\n%s\n", readSizes.String())
	return nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
