// Command tracestat analyses block traces captured by `vmiboot -trace`:
// working-set size (Table 1's metric), request-size and inter-offset
// distributions, and a sequentiality estimate — the measurements §2.3 bases
// the whole cache-sizing argument on.
//
// With -replay the trace is additionally executed against an in-memory
// base <- cache <- CoW chain (-j concurrent goroutines) and the data-path
// counters are printed: copy-on-read fills, backing traffic, and the L2
// table-cache hit/miss ratio of each image. Adding -prefetch attaches the
// adaptive readahead engine to the cache and reports its hit rate and
// wasted bytes — a dry run for tuning readahead against a real trace.
//
// Usage:
//
//	tracestat [-replay [-j N] [-cluster-bits B] [-quota BYTES] [-prefetch]
//	          [-metrics]] FILE [FILE...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"vmicache/internal/backend"
	"vmicache/internal/boot"
	"vmicache/internal/metrics"
	"vmicache/internal/prefetch"
	"vmicache/internal/qcow"
	"vmicache/internal/trace"
)

func main() {
	fs := flag.NewFlagSet("tracestat", flag.ExitOnError)
	replay := fs.Bool("replay", false, "replay the trace against a base<-cache<-CoW chain and print data-path stats")
	jobs := fs.Int("j", 1, "concurrent replay goroutines")
	clusterBits := fs.Int("cluster-bits", 9, "cache image cluster size (bits) for -replay")
	quota := fs.Int64("quota", 0, "cache quota in bytes for -replay (0 = image size)")
	withPrefetch := fs.Bool("prefetch", false, "with -replay, attach adaptive readahead to the cache and report its hit rate")
	showMetrics := fs.Bool("metrics", false, "with -replay, print the chain's registry snapshot (Prometheus text)")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-replay] FILE [FILE...]")
		os.Exit(2)
	}
	for _, path := range fs.Args() {
		if err := statOne(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracestat %s: %v\n", path, err)
			os.Exit(1)
		}
		if *replay {
			if err := replayOne(path, *jobs, *clusterBits, *quota, *withPrefetch, *showMetrics); err != nil {
				fmt.Fprintf(os.Stderr, "tracestat -replay %s: %v\n", path, err)
				os.Exit(1)
			}
		}
	}
}

func statOne(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() //nolint:errcheck // read-only
	tr, err := trace.Load(f)
	if err != nil {
		return err
	}
	ws := trace.Analyze(tr)

	var readSizes, gaps metrics.Histogram
	var seqBytes int64
	var lastEnd int64 = -1
	for _, r := range tr.Records {
		if r.Op != trace.OpRead {
			continue
		}
		readSizes.Add(float64(r.Length))
		if lastEnd >= 0 {
			gap := r.Offset - lastEnd
			if gap < 0 {
				gap = -gap
			}
			gaps.Add(float64(gap))
			if r.Offset == lastEnd {
				seqBytes += r.Length
			}
		}
		lastEnd = r.Offset + r.Length
	}

	fmt.Printf("== %s ==\n", path)
	fmt.Printf("records: %d (%d reads, %d writes, %d flushes)\n",
		tr.Len(), ws.ReadOps, ws.WriteOps, ws.FlushOps)
	fmt.Printf("unique read working set: %.1f MB in %d disjoint regions (Table 1 metric)\n",
		float64(ws.UniqueReadBytes)/1e6, ws.ReadIntervals)
	fmt.Printf("total reads:  %.1f MB (reread factor %.2f)\n",
		float64(ws.TotalReadBytes)/1e6,
		float64(ws.TotalReadBytes)/float64(maxI64(ws.UniqueReadBytes, 1)))
	fmt.Printf("total writes: %.1f MB (%.1f MB unique)\n",
		float64(ws.TotalWriteBytes)/1e6, float64(ws.UniqueWriteBytes)/1e6)
	if ws.ReadOps > 0 {
		fmt.Printf("mean read: %.1f KiB, ~p50 <= %.0f KiB, ~p95 <= %.0f KiB\n",
			readSizes.Mean()/1024, readSizes.ApproxQuantile(0.5)/1024, readSizes.ApproxQuantile(0.95)/1024)
		fmt.Printf("sequential continuation: %.0f%% of read bytes\n",
			100*float64(seqBytes)/float64(ws.TotalReadBytes))
	}
	fmt.Printf("\nread size distribution (bytes):\n%s\n", readSizes.String())
	return nil
}

// replayOne executes the trace against a synthetic base <- cache <- CoW
// chain with `jobs` goroutines and prints the resulting data-path counters.
func replayOne(path string, jobs, clusterBits int, quota int64, withPrefetch, showMetrics bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() //nolint:errcheck // read-only
	tr, err := trace.Load(f)
	if err != nil {
		return err
	}
	var extent int64
	for _, r := range tr.Records {
		if end := r.Offset + r.Length; end > extent {
			extent = end
		}
	}
	// Round the image up to a whole 64 KiB CoW cluster.
	extent = (extent + (64 << 10) - 1) &^ ((64 << 10) - 1)
	if extent == 0 {
		return fmt.Errorf("trace touches no blocks")
	}
	if quota <= 0 {
		quota = extent
	}
	if jobs < 1 {
		jobs = 1
	}

	src := boot.PatternSource{Seed: 1, N: extent}
	cache, err := qcow.Create(backend.NewMemFile(), qcow.CreateOpts{
		Size: extent, ClusterBits: clusterBits, BackingFile: "base", CacheQuota: quota,
	})
	if err != nil {
		return err
	}
	cache.SetBacking(src)
	cow, err := qcow.Create(backend.NewMemFile(), qcow.CreateOpts{
		Size: extent, ClusterBits: 16, BackingFile: "cache",
	})
	if err != nil {
		return err
	}
	cow.SetBacking(cache)
	var pf *qcow.Prefetcher
	if withPrefetch {
		if pf, err = cache.EnablePrefetch(prefetch.Config{}); err != nil {
			return err
		}
	}

	var next atomic.Int64
	errs := make(chan error, jobs)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []byte
			for {
				i := next.Add(1) - 1
				if i >= int64(tr.Len()) {
					return
				}
				r := tr.Records[i]
				if int64(len(buf)) < r.Length {
					buf = make([]byte, r.Length)
				}
				var err error
				switch r.Op {
				case trace.OpRead:
					_, err = cow.ReadAt(buf[:r.Length], r.Offset)
				case trace.OpWrite:
					_, err = cow.WriteAt(buf[:r.Length], r.Offset)
				case trace.OpFlush:
					err = cow.Sync()
				}
				if err != nil {
					select {
					case errs <- fmt.Errorf("record %d (%s off=%d len=%d): %w",
						i, r.Op, r.Offset, r.Length, err):
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}

	if pf != nil {
		// Detach before reading stats so in-flight fills finish and the
		// leftover (never-read) prefetched clusters are tallied as waste.
		pf.Close()
	}
	cs, ws := cache.Stats(), cow.Stats()
	fmt.Printf("replay (%d goroutines, %d B clusters, quota %.1f MB):\n",
		jobs, int64(1)<<clusterBits, float64(quota)/1e6)
	fmt.Printf("  cache fills:    %d ops, %.1f MB (cache full: %v, %d refusals)\n",
		cs.CacheFillOps.Load(), float64(cs.CacheFillBytes.Load())/1e6,
		cache.CacheFull(), cs.CacheFullEvents.Load())
	fmt.Printf("  base traffic:   %.1f MB in %d reads\n",
		float64(cs.BackingBytes.Load())/1e6, cs.BackingReadOps.Load())
	fmt.Printf("  cache served:   %.1f MB locally, used %.1f MB physical\n",
		float64(cs.LocalBytes.Load())/1e6, float64(cache.UsedBytes())/1e6)
	fmt.Printf("  l2 cache:       cache hits=%d misses=%d, cow hits=%d misses=%d\n",
		cs.L2CacheHits.Load(), cs.L2CacheMisses.Load(),
		ws.L2CacheHits.Load(), ws.L2CacheMisses.Load())
	if pf != nil {
		pb := cs.PrefetchBytes.Load()
		rate := 0.0
		if pb > 0 {
			rate = 100 * float64(cs.PrefetchHitBytes.Load()) / float64(pb)
		}
		fmt.Printf("  prefetch:       %.1f MB in %d fills, %.0f%% read by the guest, %.1f MB wasted, %d dropped\n",
			float64(pb)/1e6, cs.PrefetchOps.Load(), rate,
			float64(cs.PrefetchWastedBytes.Load())/1e6, cs.PrefetchCancelled.Load()+cs.PrefetchDropped.Load())
	}
	if showMetrics {
		reg := metrics.NewRegistry()
		cache.RegisterMetrics(reg, metrics.Labels{"image": "cache"})
		cow.RegisterMetrics(reg, metrics.Labels{"image": "cow"})
		if _, err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	fmt.Println()
	if err := cow.Close(); err != nil {
		return err
	}
	return cache.Close()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
