// Command nbdserve exports VM image chains as NBD block devices, the
// hypervisor attach path: a qemu or Linux kernel NBD client can boot from
// the exported chain.
//
// Usage:
//
//	nbdserve [-addr HOST:PORT] [-C dir] [-ro] [-zerocopy] [-mmap-warm]
//	         [-metrics-addr HOST:PORT] [-pprof-mutex-frac N]
//	         [-pprof-block-rate NS] IMAGE [IMAGE...]
//
// Each IMAGE (a chain top inside -C) is exported under its own name.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vmicache/internal/backend"
	"vmicache/internal/core"
	"vmicache/internal/metrics"
	"vmicache/internal/nbd"
	"vmicache/internal/zerocopy"
)

// chainDevice adapts a core.Chain to nbd.Device. It also forwards extent
// export so read-only chains over raw warm clusters can serve reads via
// sendfile when -zerocopy is on.
type chainDevice struct{ c *core.Chain }

func (d chainDevice) ReadAt(p []byte, off int64) (int, error)  { return d.c.ReadAt(p, off) }
func (d chainDevice) WriteAt(p []byte, off int64) (int, error) { return d.c.WriteAt(p, off) }
func (d chainDevice) Size() int64                              { return d.c.Size() }
func (d chainDevice) Sync() error                              { return d.c.Sync() }

func (d chainDevice) PlainExtents(off, n int64, dst []zerocopy.FileExtent) ([]zerocopy.FileExtent, bool) {
	return d.c.PlainExtents(off, n, dst)
}

func main() {
	fs := flag.NewFlagSet("nbdserve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:10810", "listen address")
	dir := fs.String("C", ".", "working directory holding the images")
	ro := fs.Bool("ro", false, "export read-only")
	zeroCopy := fs.Bool("zerocopy", true, "serve raw warm reads of read-only exports via sendfile(2) (Linux; other platforms fall back to copying)")
	mmapWarm := fs.Bool("mmap-warm", false, "mmap image containers so warm reads copy from the mapping instead of issuing preads")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline")
	metricsAddr := fs.String("metrics-addr", "", "observability address (/metrics, /metrics.json, /debug/pprof); empty disables")
	mutexFrac := fs.Int("pprof-mutex-frac", 0, "mutex contention sampling fraction (runtime.SetMutexProfileFraction); 0 disables")
	blockRate := fs.Int("pprof-block-rate", 0, "blocking-event sampling rate in ns (runtime.SetBlockProfileRate); 0 disables")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError
	metrics.SetProfileRates(*mutexFrac, *blockRate)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "nbdserve: need at least one image name")
		os.Exit(2)
	}

	st, err := backend.NewDirStore(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nbdserve: %v\n", err)
		os.Exit(1)
	}
	ns := core.NewNamespace("dir", st)
	srv := nbd.NewServer(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	srv.ZeroCopy = *zeroCopy

	var reg *metrics.Registry
	if *metricsAddr != "" {
		reg = metrics.NewRegistry()
		srv.RegisterMetrics(reg, nil)
		msrv, err := metrics.ListenAndServe(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nbdserve: -metrics-addr %s: %v\n", *metricsAddr, err)
			os.Exit(1)
		}
		defer msrv.Close() //nolint:errcheck // terminating anyway
		fmt.Printf("nbdserve: metrics on http://%s/metrics\n", msrv.Addr())
	}

	var chains []*core.Chain
	for _, name := range fs.Args() {
		c, err := core.OpenChain(ns, core.Locator{Store: "dir", Name: name},
			core.ChainOpts{TopReadOnly: *ro, MmapWarm: *mmapWarm})
		if err != nil {
			fmt.Fprintf(os.Stderr, "nbdserve: opening %s: %v\n", name, err)
			os.Exit(1)
		}
		chains = append(chains, c)
		srv.AddExport(nbd.Export{Name: name, Device: chainDevice{c}, ReadOnly: *ro})
		if reg != nil {
			for depth, img := range c.Images {
				img.RegisterMetrics(reg, metrics.Labels{
					"export": name,
					"depth":  fmt.Sprintf("%d", depth),
				})
			}
		}
		fmt.Printf("nbdserve: export %q (%d bytes, chain depth %d, ro=%v)\n",
			name, c.Size(), len(c.Images), *ro)
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nbdserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("nbdserve: listening on %s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("nbdserve: %v: draining (up to %v)\n", s, *drain)
	if err := srv.Shutdown(*drain); err != nil {
		fmt.Fprintf(os.Stderr, "nbdserve: shutdown: %v\n", err)
	}
	for _, c := range chains {
		c.Close() //nolint:errcheck // terminating anyway
	}
	fmt.Printf("nbdserve: served %d reads, %d writes, %d flushes\n",
		srv.ReadOps.Load(), srv.WriteOps.Load(), srv.FlushOps.Load())
}
