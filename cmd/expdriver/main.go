// Command expdriver regenerates the paper's measured tables and figures
// from the simulation harness and prints them as text series — the rows the
// paper plots.
//
// Usage:
//
//	expdriver [-scale F] [experiment ...]
//
// Experiments: table1 table2 fig2 fig3 fig8 fig9 fig10 fig11 fig12 fig14
// sec6 swarm dedup, or "all" (the default). -scale shrinks the workloads; reported
// numbers are re-normalised to full scale, so the axes stay comparable to
// the paper at any scale. -scale 1 reproduces the full-size experiment
// (minutes of CPU).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vmicache/internal/boot"
	"vmicache/internal/cloudsim"
	"vmicache/internal/cluster"
	"vmicache/internal/sched"
)

var experiments = []string{
	"table1", "table2", "fig2", "fig3", "fig8", "fig9", "fig10",
	"fig11", "fig12", "fig14", "sec6", "mixed", "cloud", "hetero", "snapshot",
	"swarm", "dedup",
}

func main() {
	fs := flag.NewFlagSet("expdriver", flag.ExitOnError)
	scale := fs.Float64("scale", 0.1, "workload scale factor (1.0 = paper's full size)")
	list := fs.Bool("list", false, "list experiment ids and exit")
	fs.Parse(os.Args[1:]) //nolint:errcheck // ExitOnError

	if *list {
		for _, e := range experiments {
			fmt.Println(e)
		}
		return
	}
	want := fs.Args()
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = experiments
	}
	for _, id := range want {
		if err := runOne(id, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "expdriver %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

// runCloud contrasts the three provisioning schemes over a simulated cloud
// (the integration the paper's conclusion points at).
func runCloud(scale float64) error {
	fmt.Println("# Extension: cloud-scale simulation (2h, 1 VM/s, 32 nodes, 48 Zipf VMIs, 1GbE)")
	fmt.Printf("%-26s %8s %9s %9s %9s %7s\n", "scheme", "boots", "mean(s)", "p50(s)", "p95(s)", "warm%")
	for _, cfg := range []struct {
		name   string
		scheme cloudsim.Scheme
		aware  bool
	}{
		{"qcow2", cloudsim.SchemeQCOW2, false},
		{"vmi-cache (oblivious)", cloudsim.SchemeVMICache, false},
		{"vmi-cache + cache-aware", cloudsim.SchemeVMICache, true},
	} {
		r, err := cloudsim.Run(cloudsim.Params{
			Seed: 20130703, Nodes: 32, NodeCPU: 8, NodeMem: 24 << 30,
			NodeCache: 1 << 30, StorageMem: 16 << 30,
			Rate: 1, VMIs: 48, ZipfS: 1.3,
			MeanLifetime: 10 * time.Minute, Duration: 2 * time.Hour,
			VMCPU: 1, VMMem: 2 << 30,
			Scheme: cfg.scheme, Policy: sched.Striping, CacheAware: cfg.aware,
			Profile: boot.CentOS,
		})
		if err != nil {
			return err
		}
		warm := 0.0
		if r.Completed > 0 {
			warm = 100 * float64(r.WarmLocal+r.WarmRemote) / float64(r.Completed)
		}
		fmt.Printf("%-26s %8d %9.1f %9.1f %9.1f %6.0f%%\n",
			cfg.name, r.Completed, r.Boots.Mean(), r.Boots.Median(), r.Boots.Quantile(0.95), warm)
	}
	fmt.Println()
	return nil
}

func runOne(id string, scale float64) error {
	start := time.Now()
	switch id {
	case "table1":
		fmt.Println(cluster.Table1(scale))
	case "table2":
		fmt.Println(cluster.Table2(scale))
	case "fig2":
		fmt.Println(cluster.Fig2(scale))
	case "fig3":
		fmt.Println(cluster.Fig3(scale))
	case "fig8":
		fmt.Println(cluster.Fig8(scale))
	case "fig9":
		fmt.Println(cluster.Fig9(scale))
	case "fig10":
		b, tx := cluster.Fig10(scale)
		fmt.Println(b)
		fmt.Println(tx)
	case "fig11":
		fmt.Println(cluster.Fig11(scale))
	case "fig12":
		gbe, ib := cluster.Fig12(scale)
		fmt.Println(gbe)
		fmt.Println(ib)
	case "fig14":
		gbe, ib := cluster.Fig14(scale)
		fmt.Println(gbe)
		fmt.Println(ib)
	case "cloud":
		if err := runCloud(scale); err != nil {
			return err
		}
	case "snapshot":
		fmt.Println(cluster.ExtSnapshotRestore(scale))
	case "swarm":
		fmt.Println(cluster.SwarmFlashCrowd(scale))
	case "dedup":
		fmt.Println(cluster.DedupSharing(scale))
	case "hetero":
		fmt.Println(cluster.ExtHeterogeneous(scale))
	case "mixed":
		fmt.Println(cluster.ExtMixedWarmCold(scale))
	case "sec6":
		disk, mem, delta := cluster.Sec6Delta(scale)
		fmt.Printf("# §6 placement micro-experiment (32GbIB, 1 node, warm cache)\n")
		fmt.Printf("compute-disk cache boot:   %.2f s\n", disk)
		fmt.Printf("storage-memory cache boot: %.2f s\n", mem)
		fmt.Printf("difference: %.2f%% (paper reports at most 1%%)\n\n", delta)
	default:
		return fmt.Errorf("unknown experiment (try -list)")
	}
	fmt.Printf("# [%s completed in %v at scale %g]\n\n", id, time.Since(start).Round(time.Millisecond), scale)
	return nil
}
