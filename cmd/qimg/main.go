// Command qimg is the repository's qemu-img analogue: it creates and
// inspects images, including the two-step cache→CoW workflow of §4.4.
//
// Usage:
//
//	qimg create [-C dir] [-size N] [-cluster-bits B] [-backing NAME] [-quota N] [-subclusters] NAME
//	qimg info   [-C dir] [-metrics] NAME
//	qimg check  [-C dir] NAME
//	qimg map    [-C dir] NAME
//	qimg warm   [-C dir] [-spans off:len,...] [-profile NAME] [-j N] [-budget N] NAME
//	qimg read   [-C dir] -off N -len N NAME        (hex dump to stdout)
//	qimg write  [-C dir] -off N -data STRING NAME
//	qimg commit [-C dir] NAME                      (merge into backing)
//	qimg convert [-C dir] [-c] SRC DST             (copy guest view; -c compresses)
//	qimg disclosure [-C dir] NAME                  (cache fill-order spans)
//	qimg dedup  [-C dir] FILE...                   (what-if chunk sharing report)
//	qimg dedup  -store DIR                         (inspect a dedup store offline)
//
// NAME is resolved inside the working directory given by -C (default ".");
// backing names recorded in image headers resolve in the same directory.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"

	"vmicache/internal/backend"
	"vmicache/internal/boot"
	"vmicache/internal/core"
	"vmicache/internal/dedup"
	"vmicache/internal/metrics"
	"vmicache/internal/qcow"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "create":
		err = cmdCreate(args)
	case "info":
		err = cmdInfo(args)
	case "check":
		err = cmdCheck(args)
	case "map":
		err = cmdMap(args)
	case "warm":
		err = cmdWarm(args)
	case "read":
		err = cmdRead(args)
	case "write":
		err = cmdWrite(args)
	case "commit":
		err = cmdCommit(args)
	case "convert":
		err = cmdConvert(args)
	case "disclosure":
		err = cmdDisclosure(args)
	case "dedup":
		err = cmdDedup(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "qimg: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qimg %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `qimg — VM image tool (QCOW2-style with VMI-cache extension)

commands:
  create  create a base, CoW or cache image (-quota makes it a cache)
  info    print image geometry and cache state
  check   verify metadata/refcount consistency
  map     print allocation extents
  warm    populate a cache image by reading spans through its chain
  read    read guest bytes (hex dump)
  write   write guest bytes
  commit  merge an image's data into its backing image (qemu-img commit)
  convert copy an image's guest view into a new image (-c compresses)
  disclosure  print a cache image's inferred future-access list (§7.3)
  dedup   chunk files and report sharing (-store inspects a dedup store)`)
}

// nsFor builds a namespace rooted at dir.
func nsFor(dir string) (*core.Namespace, error) {
	st, err := backend.NewDirStore(dir)
	if err != nil {
		return nil, err
	}
	return core.NewNamespace("dir", st), nil
}

func oneName(fs *flag.FlagSet) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("expected exactly one image name, got %d args", fs.NArg())
	}
	return fs.Arg(0), nil
}

func cmdCreate(args []string) error {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	dir := fs.String("C", ".", "working directory")
	size := fs.Int64("size", 0, "virtual size in bytes (default: backing image's size)")
	bits := fs.Int("cluster-bits", 0, "cluster bits (9..21; default 16, caches default 9)")
	backing := fs.String("backing", "", "backing image name")
	quota := fs.Int64("quota", 0, "cache quota in bytes (non-zero creates a cache image, §4.4)")
	subclusters := fs.Bool("subclusters", false, "track 4 KiB sub-cluster validity in the cache (partial fills)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	name, err := oneName(fs)
	if err != nil {
		return err
	}
	ns, err := nsFor(*dir)
	if err != nil {
		return err
	}
	loc := core.Locator{Store: "dir", Name: name}
	back := core.Locator{Store: "dir", Name: *backing}
	sz := *size
	if sz == 0 {
		if *backing == "" {
			return fmt.Errorf("need -size (or -backing to inherit its size)")
		}
		if sz, err = core.VirtualSizeOf(ns, back); err != nil {
			return err
		}
	}
	switch {
	case *quota > 0:
		if *backing == "" {
			return fmt.Errorf("a cache image needs -backing")
		}
		if err := core.CreateCacheSub(ns, loc, back, sz, *quota, *bits, *subclusters); err != nil {
			return err
		}
		sc := ""
		if *subclusters {
			sc = " subclusters=4K"
		}
		fmt.Printf("created cache image %s (size=%d quota=%d%s)\n", name, sz, *quota, sc)
	case *subclusters:
		return fmt.Errorf("-subclusters requires a cache image (-quota and -backing)")
	case *backing != "":
		if err := core.CreateCoW(ns, loc, back, sz, *bits); err != nil {
			return err
		}
		fmt.Printf("created CoW image %s (size=%d backing=%s)\n", name, sz, *backing)
	default:
		if err := core.CreateBase(ns, loc, sz, *bits, nil); err != nil {
			return err
		}
		fmt.Printf("created base image %s (size=%d)\n", name, sz)
	}
	return nil
}

// openOne opens a single image (without its chain) read-only for
// inspection.
func openOne(dir, name string) (*qcow.Image, error) {
	st, err := backend.NewDirStore(dir)
	if err != nil {
		return nil, err
	}
	f, err := st.Open(name, true)
	if err != nil {
		return nil, err
	}
	img, err := qcow.Open(f, qcow.OpenOpts{ReadOnly: true})
	if err != nil {
		f.Close() //nolint:errcheck
		return nil, err
	}
	return img, nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	dir := fs.String("C", ".", "working directory")
	showMetrics := fs.Bool("metrics", false, "also print the image's registry snapshot (Prometheus text)")
	fs.Parse(args) //nolint:errcheck
	name, err := oneName(fs)
	if err != nil {
		return err
	}
	img, err := openOne(*dir, name)
	if err != nil {
		return err
	}
	defer img.Close() //nolint:errcheck
	info, err := img.Info()
	if err != nil {
		return err
	}
	fmt.Printf("image: %s\n%s", name, info)
	if *showMetrics {
		reg := metrics.NewRegistry()
		img.RegisterMetrics(reg, metrics.Labels{"image": name})
		fmt.Println()
		if _, err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	dir := fs.String("C", ".", "working directory")
	fs.Parse(args) //nolint:errcheck
	name, err := oneName(fs)
	if err != nil {
		return err
	}
	img, err := openOne(*dir, name)
	if err != nil {
		return err
	}
	defer img.Close() //nolint:errcheck
	res, err := img.Check()
	if err != nil {
		return err
	}
	fmt.Print(res)
	if !res.OK() {
		return fmt.Errorf("image is inconsistent")
	}
	return nil
}

func cmdMap(args []string) error {
	fs := flag.NewFlagSet("map", flag.ExitOnError)
	dir := fs.String("C", ".", "working directory")
	fs.Parse(args) //nolint:errcheck
	name, err := oneName(fs)
	if err != nil {
		return err
	}
	img, err := openOne(*dir, name)
	if err != nil {
		return err
	}
	defer img.Close() //nolint:errcheck
	extents, err := img.Map()
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-14s %-10s %s\n", "start", "length", "mapped", "phys")
	for _, e := range extents {
		state := "backing/zero"
		phys := "-"
		if e.Allocated {
			state = "allocated"
			phys = fmt.Sprintf("%#x", e.PhysOff)
		}
		fmt.Printf("%#-14x %#-14x %-10s %s\n", e.Start, e.Length, state, phys)
	}
	return nil
}

func parseSpans(s string) ([]core.Span, error) {
	if s == "" {
		return nil, nil
	}
	var out []core.Span
	for _, part := range strings.Split(s, ",") {
		bits := strings.SplitN(part, ":", 2)
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad span %q (want off:len)", part)
		}
		off, err := strconv.ParseInt(bits[0], 0, 64)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(bits[1], 0, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, core.Span{Off: off, Len: n})
	}
	return out, nil
}

// parseSize parses "1073741824", "1G", "512M", "64K".
func parseSize(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

// profileWarmSpans turns a named boot profile, scaled to the chain's virtual
// size, into a coalesced warm plan clamped to the image.
func profileWarmSpans(name string, size int64) ([]core.Span, error) {
	p, err := boot.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	if p.ImageSize > 0 && p.ImageSize != size {
		p = p.Scale(float64(size) / float64(p.ImageSize))
		p.ImageSize = size
	}
	plan := boot.Generate(p).PrefetchPlan(256<<10, 4<<20)
	spans := make([]core.Span, 0, len(plan))
	for _, e := range plan {
		if e.Off >= size {
			continue
		}
		if e.Off+e.Len > size {
			e.Len = size - e.Off
		}
		spans = append(spans, core.Span{Off: e.Off, Len: e.Len})
	}
	return spans, nil
}

func cmdWarm(args []string) error {
	fs := flag.NewFlagSet("warm", flag.ExitOnError)
	dir := fs.String("C", ".", "working directory")
	spansArg := fs.String("spans", "", "comma-separated off:len spans to read (default: 0:1MiB)")
	profile := fs.String("profile", "", "derive the warm plan from a boot profile (centos/debian/windows)")
	jobs := fs.Int("j", 1, "parallel warm workers (1 = serial)")
	budgetArg := fs.String("budget", "16M", "in-flight byte budget for parallel warm (K/M/G suffixes)")
	fs.Parse(args) //nolint:errcheck
	name, err := oneName(fs)
	if err != nil {
		return err
	}
	ns, err := nsFor(*dir)
	if err != nil {
		return err
	}
	budget, err := parseSize(*budgetArg)
	if err != nil {
		return fmt.Errorf("-budget: %w", err)
	}
	spans, err := parseSpans(*spansArg)
	if err != nil {
		return err
	}
	c, err := core.OpenChain(ns, core.Locator{Store: "dir", Name: name}, core.ChainOpts{})
	if err != nil {
		return err
	}
	defer c.Close() //nolint:errcheck
	if len(spans) == 0 && *profile != "" {
		spans, err = profileWarmSpans(*profile, c.Size())
		if err != nil {
			return err
		}
	}
	if len(spans) == 0 {
		spans = []core.Span{{Off: 0, Len: 1 << 20}}
	}
	var n int64
	if *jobs > 1 {
		n, err = core.WarmParallel(c, spans, *jobs, budget)
	} else {
		n, err = core.Warm(c, spans)
	}
	if err != nil {
		return err
	}
	if err := c.Sync(); err != nil {
		return err
	}
	if cache := c.CacheImage(); cache != nil {
		fmt.Printf("warmed %d bytes; cache used %d of quota %d (%d fills)\n",
			n, cache.UsedBytes(), cache.Quota(), cache.Stats().CacheFillOps.Load())
	} else {
		fmt.Printf("read %d bytes (no cache image in chain)\n", n)
	}
	return nil
}

func cmdRead(args []string) error {
	fs := flag.NewFlagSet("read", flag.ExitOnError)
	dir := fs.String("C", ".", "working directory")
	off := fs.Int64("off", 0, "guest offset")
	n := fs.Int64("len", 512, "bytes to read")
	fs.Parse(args) //nolint:errcheck
	name, err := oneName(fs)
	if err != nil {
		return err
	}
	ns, err := nsFor(*dir)
	if err != nil {
		return err
	}
	c, err := core.OpenChain(ns, core.Locator{Store: "dir", Name: name}, core.ChainOpts{TopReadOnly: true})
	if err != nil {
		return err
	}
	defer c.Close() //nolint:errcheck
	buf := make([]byte, *n)
	if err := backend.ReadFull(c, buf, *off); err != nil {
		return err
	}
	fmt.Print(hex.Dump(buf))
	return nil
}

func cmdWrite(args []string) error {
	fs := flag.NewFlagSet("write", flag.ExitOnError)
	dir := fs.String("C", ".", "working directory")
	off := fs.Int64("off", 0, "guest offset")
	data := fs.String("data", "", "bytes to write (literal string)")
	fs.Parse(args) //nolint:errcheck
	name, err := oneName(fs)
	if err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("need -data")
	}
	ns, err := nsFor(*dir)
	if err != nil {
		return err
	}
	c, err := core.OpenChain(ns, core.Locator{Store: "dir", Name: name}, core.ChainOpts{})
	if err != nil {
		return err
	}
	defer c.Close() //nolint:errcheck
	if err := backend.WriteFull(c, []byte(*data), *off); err != nil {
		return err
	}
	if err := c.Sync(); err != nil {
		return err
	}
	fmt.Printf("wrote %d bytes at %d\n", len(*data), *off)
	return nil
}

func cmdCommit(args []string) error {
	fs := flag.NewFlagSet("commit", flag.ExitOnError)
	dir := fs.String("C", ".", "working directory")
	fs.Parse(args) //nolint:errcheck
	name, err := oneName(fs)
	if err != nil {
		return err
	}
	ns, err := nsFor(*dir)
	if err != nil {
		return err
	}
	// Open the chain with the backing image writable: commit needs it.
	c, err := core.OpenChain(ns, core.Locator{Store: "dir", Name: name}, core.ChainOpts{})
	if err != nil {
		return err
	}
	defer c.Close() //nolint:errcheck
	if len(c.Images) < 2 {
		return fmt.Errorf("%s has no backing image to commit into", name)
	}
	// The §4.3 permission handling opens non-cache backings read-only;
	// re-open the immediate backing writable for the commit.
	st, err := ns.Store("dir")
	if err != nil {
		return err
	}
	backing := c.Locators[1]
	bf, err := st.Open(backing.Name, false)
	if err != nil {
		return err
	}
	dst, err := qcow.Open(bf, qcow.OpenOpts{})
	if err != nil {
		bf.Close() //nolint:errcheck
		return err
	}
	defer dst.Close() //nolint:errcheck
	if len(c.Images) > 2 {
		dst.SetBacking(c.Images[2])
	}
	if err := c.Top().CommitTo(dst); err != nil {
		return err
	}
	fmt.Printf("committed %s into %s\n", name, backing.Name)
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	dir := fs.String("C", ".", "working directory")
	compress := fs.Bool("c", false, "store data clusters compressed")
	bits := fs.Int("cluster-bits", 0, "destination cluster bits (default 16)")
	fs.Parse(args) //nolint:errcheck
	if fs.NArg() != 2 {
		return fmt.Errorf("expected SRC DST")
	}
	srcName, dstName := fs.Arg(0), fs.Arg(1)
	ns, err := nsFor(*dir)
	if err != nil {
		return err
	}
	src, err := core.OpenChain(ns, core.Locator{Store: "dir", Name: srcName}, core.ChainOpts{TopReadOnly: true})
	if err != nil {
		return err
	}
	defer src.Close() //nolint:errcheck
	dst := core.Locator{Store: "dir", Name: dstName}
	if *compress {
		err = core.CreateBaseCompressed(ns, dst, src.Size(), *bits, src)
	} else {
		err = core.CreateBase(ns, dst, src.Size(), *bits, src)
	}
	if err != nil {
		return err
	}
	st, _ := ns.Store("dir")
	outSize, _ := st.Stat(dstName)
	fmt.Printf("converted %s -> %s (%d bytes%s)\n", srcName, dstName, outSize,
		map[bool]string{true: ", compressed", false: ""}[*compress])
	return nil
}

// cmdDedup either inspects an on-disk dedup store (-store; run it offline —
// opening the store sweeps orphaned blobs, which would race a live daemon)
// or chunks the listed files in memory and reports how much they would share
// in one: the what-if tool for sizing a dedup deployment.
func cmdDedup(args []string) error {
	fs := flag.NewFlagSet("dedup", flag.ExitOnError)
	dir := fs.String("C", ".", "working directory")
	storeDir := fs.String("store", "", "dedup store directory to inspect (e.g. <cachedir>/dedup)")
	jobs := fs.Int("j", 0, "chunk hash parallelism (0 = GOMAXPROCS, 1 = serial)")
	fs.Parse(args) //nolint:errcheck
	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	if *storeDir != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("-store takes no file arguments")
		}
		s, err := dedup.OpenBlobStore(*storeDir)
		if err != nil {
			return err
		}
		for _, name := range s.ManifestNames() {
			m, ok := s.Manifest(name)
			if !ok {
				continue
			}
			fmt.Printf("%s: %d chunks, %.1f MB, checksum %x\n",
				name, len(m.Entries), float64(m.Length)/1e6, m.Checksum[:8])
		}
		st := s.Stats()
		fmt.Printf("store: %d manifests, %d blobs; %.1f MB logical, %.1f MB unique raw, %.1f MB on disk (%.1f MB shared away)\n",
			st.Manifests, st.Blobs, float64(st.LogicalBytes)/1e6, float64(st.UniqueRawBytes)/1e6,
			float64(st.UniqueCompBytes)/1e6, float64(st.SharedBytes)/1e6)
		return nil
	}

	if fs.NArg() == 0 {
		return fmt.Errorf("expected file names (or -store DIR)")
	}
	seen := make(map[dedup.Key]uint32)
	var logical, unique int64
	for _, name := range fs.Args() {
		f, err := os.Open(resolvePath(*dir, name))
		if err != nil {
			return err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close() //nolint:errcheck
			return err
		}
		var fresh int64
		m, err := dedup.BuildParallel(f, fi.Size(), dedup.BuildOpts{Workers: workers},
			func(e dedup.Entry, _, _ []byte) error {
				if _, ok := seen[e.Hash]; !ok {
					seen[e.Hash] = e.Len
					fresh += int64(e.Len)
				}
				return nil
			})
		f.Close() //nolint:errcheck
		if err != nil {
			return err
		}
		logical += m.Length
		unique += fresh
		fmt.Printf("%s: %d chunks, %.1f MB, %.1f MB new\n",
			name, len(m.Entries), float64(m.Length)/1e6, float64(fresh)/1e6)
	}
	shared := logical - unique
	fmt.Printf("total: %.1f MB logical, %.1f MB unique, %.1f MB shared (%.1f%%)\n",
		float64(logical)/1e6, float64(unique)/1e6, float64(shared)/1e6,
		100*float64(shared)/float64(max(logical, 1)))
	return nil
}

// resolvePath joins a name into the working directory unless it is already
// absolute.
func resolvePath(dir, name string) string {
	if filepath.IsAbs(name) {
		return name
	}
	return filepath.Join(dir, name)
}

func cmdDisclosure(args []string) error {
	fs := flag.NewFlagSet("disclosure", flag.ExitOnError)
	dir := fs.String("C", ".", "working directory")
	limit := fs.Int("n", 20, "print at most N spans (0 = all)")
	fs.Parse(args) //nolint:errcheck
	name, err := oneName(fs)
	if err != nil {
		return err
	}
	img, err := openOne(*dir, name)
	if err != nil {
		return err
	}
	defer img.Close() //nolint:errcheck
	spans, err := core.Disclosure(img)
	if err != nil {
		return err
	}
	var total int64
	for _, s := range spans {
		total += s.Len
	}
	fmt.Printf("%d spans covering %.1f MB, in fill (boot-read) order:\n", len(spans), float64(total)/1e6)
	for i, s := range spans {
		if *limit > 0 && i >= *limit {
			fmt.Printf("... %d more\n", len(spans)-i)
			break
		}
		fmt.Printf("  %#12x + %d\n", s.Off, s.Len)
	}
	return nil
}
