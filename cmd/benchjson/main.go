// Command benchjson converts `go test -bench` output into a JSON baseline and
// gates CI on performance regressions against a previous baseline.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -out BENCH.json \
//	    -baseline BENCH.json -match WarmRead -max-regress 0.2
//
// The baseline is loaded into memory before -out is written, so the same path
// can serve as both: CI compares the fresh run against the committed file,
// then uploads the fresh file as the artifact for the next update.
//
// A regression is a benchmark present in both runs whose ns/op grew — or,
// for throughput benchmarks reporting MB/s in both runs, whose MB/s fell —
// by more than -max-regress (fraction) and whose name matches -match (all
// benchmarks when empty). Missing or new benchmarks never fail the gate.
//
// Custom b.ReportMetric units (e.g. "base-MB", "amplification") are captured
// into a metrics map; a second, independent gate compares one such metric:
//
//	-metric-bench SubclusterColdBoot -metric base-MB -metric-max-regress 0.1
//
// fails when the named metric grew by more than the fraction on any matching
// benchmark present in both runs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	// Metrics holds custom b.ReportMetric values by unit name
	// ("amplification", "base-MB", ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the JSON document benchjson reads and writes.
type File struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the parsed results as JSON to this path")
	baseline := flag.String("baseline", "", "compare ns/op against this JSON baseline (missing file skips the gate)")
	match := flag.String("match", "", "regexp of benchmark names the regression gate applies to (empty = all)")
	maxRegress := flag.Float64("max-regress", 0.2, "maximum tolerated ns/op growth as a fraction")
	metricBench := flag.String("metric-bench", "", "regexp of benchmark names the custom-metric gate applies to (empty disables that gate)")
	metric := flag.String("metric", "", "custom metric unit the -metric-bench gate compares (e.g. base-MB)")
	metricMaxRegress := flag.Float64("metric-max-regress", 0.1, "maximum tolerated growth of -metric as a fraction")
	flag.Parse()

	var matchRe *regexp.Regexp
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fail("-match: %v", err)
		}
		matchRe = re
	}
	var metricRe *regexp.Regexp
	if *metricBench != "" {
		if *metric == "" {
			fail("-metric-bench needs -metric")
		}
		re, err := regexp.Compile(*metricBench)
		if err != nil {
			fail("-metric-bench: %v", err)
		}
		metricRe = re
	}

	// Load the baseline before writing -out: both flags may name one path.
	var base map[string]Benchmark
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		switch {
		case os.IsNotExist(err):
			fmt.Fprintf(os.Stderr, "benchjson: no baseline at %s; gate skipped\n", *baseline)
		case err != nil:
			fail("%v", err)
		default:
			var bf File
			if err := json.Unmarshal(data, &bf); err != nil {
				fail("parsing baseline %s: %v", *baseline, err)
			}
			base = make(map[string]Benchmark, len(bf.Benchmarks))
			for _, b := range bf.Benchmarks {
				base[b.Name] = b
			}
		}
	}

	fresh := parse(os.Stdin)
	if len(fresh.Benchmarks) == 0 {
		fail("no benchmark lines on stdin")
	}

	if *out != "" {
		data, err := json.MarshalIndent(fresh, "", "  ")
		if err != nil {
			fail("%v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(fresh.Benchmarks), *out)
	}

	if base == nil {
		return
	}
	regressed := false
	for _, b := range fresh.Benchmarks {
		old, ok := base[b.Name]
		if !ok || old.NsPerOp <= 0 {
			continue
		}
		if matchRe != nil && !matchRe.MatchString(b.Name) {
			continue
		}
		growth := b.NsPerOp/old.NsPerOp - 1
		status := "ok"
		if growth > *maxRegress {
			status = "REGRESSION"
			regressed = true
		}
		fmt.Printf("%-60s %12.1f -> %12.1f ns/op  %+6.1f%%  %s\n",
			b.Name, old.NsPerOp, b.NsPerOp, 100*growth, status)
		// Throughput benchmarks (b.SetBytes) also gate on MB/s: a drop
		// larger than -max-regress fails even if ns/op moved within
		// tolerance (larger IOs can hide a bandwidth regression behind a
		// similar op latency).
		if old.MBPerS > 0 && b.MBPerS > 0 {
			drop := 1 - b.MBPerS/old.MBPerS
			status = "ok"
			if drop > *maxRegress {
				status = "REGRESSION"
				regressed = true
			}
			fmt.Printf("%-60s %12.1f -> %12.1f MB/s   %+6.1f%%  %s\n",
				b.Name, old.MBPerS, b.MBPerS, 100*(b.MBPerS/old.MBPerS-1), status)
		}
	}
	if regressed {
		fail("ns/op or MB/s regressed more than %.0f%% against %s", 100**maxRegress, *baseline)
	}

	if metricRe == nil {
		return
	}
	metricRegressed := false
	for _, b := range fresh.Benchmarks {
		if !metricRe.MatchString(b.Name) {
			continue
		}
		old, ok := base[b.Name]
		if !ok {
			continue
		}
		oldV, okOld := old.Metrics[*metric]
		newV, okNew := b.Metrics[*metric]
		if !okOld || !okNew || oldV <= 0 {
			continue
		}
		growth := newV/oldV - 1
		status := "ok"
		if growth > *metricMaxRegress {
			status = "REGRESSION"
			metricRegressed = true
		}
		fmt.Printf("%-60s %12.3f -> %12.3f %s  %+6.1f%%  %s\n",
			b.Name, oldV, newV, *metric, 100*growth, status)
	}
	if metricRegressed {
		fail("%s regressed more than %.0f%% against %s", *metric, 100**metricMaxRegress, *baseline)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

// parse extracts benchmark result lines ("BenchmarkX-4  N  12.3 ns/op ...")
// from a `go test -bench` stream, ignoring everything else.
func parse(f *os.File) File {
	var out File
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iteration count, then value/unit pairs.
		if len(fields) < 4 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		b := Benchmark{Name: stripCPUSuffix(fields[0])}
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp, seen = v, true
			case "MB/s":
				b.MBPerS = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				// A custom b.ReportMetric unit.
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[fields[i+1]] = v
			}
		}
		if seen {
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fail("reading stdin: %v", err)
	}
	return out
}

// stripCPUSuffix removes the trailing "-<GOMAXPROCS>" go test appends to
// benchmark names, so baselines compare across machines with different core
// counts. Bench runs must pin -cpu (the Makefile and CI use -cpu 4): on a
// one-proc run go appends no suffix, and a subbenchmark legitimately ending
// in "-8" would be mangled.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
