module vmicache

go 1.22
