// Placement: Algorithm 1 (§6) and the cache-aware scheduler (§3.4) working
// together on a small cloud.
//
// Part 1 walks Algorithm 1 through its three branches: first VM anywhere
// (create cold cache locally, copy to storage memory on shutdown), a new VM
// on a node that already has the cache (chain locally), and a VM on a fresh
// node (chain a new local cache to the storage-memory copy).
//
// Part 2 replays a Zipf-popular VM arrival trace against the scheduler with
// the cache-aware heuristic on and off, showing the warm-placement ratio
// and mean boot time the heuristic buys.
//
// Run with: go run ./examples/placement
package main

import (
	"fmt"
	"log"
	"time"

	vmicache "vmicache"
	"vmicache/internal/chain"
	"vmicache/internal/core"
	"vmicache/internal/sched"
)

func main() {
	algorithm1Walkthrough()
	schedulerComparison()
}

func algorithm1Walkthrough() {
	const size = 64 << 20
	nfs := vmicache.NewMemStore()
	ns := vmicache.NewNamespace("nfs", nfs)
	sMem := vmicache.NewMemStore()
	ns.Register("smem", sMem)

	base := vmicache.Loc("nfs:centos.img")
	if err := vmicache.CreateBase(ns, base, size, 0, vmicache.PatternSource{Seed: 9, N: size}); err != nil {
		log.Fatal(err)
	}

	storage := &chain.StorageNode{
		MemName: "smem", Mem: sMem, MemPool: vmicache.NewPool(1 << 30),
		DiskName: "nfs", Disk: nfs,
	}
	planner := &chain.Planner{NS: ns, Quota: 16 << 20}

	newNode := func(name string) *chain.ComputeNode {
		st := vmicache.NewMemStore()
		ns.Register(name, st)
		return &chain.ComputeNode{Name: name, Store: st, Pool: vmicache.NewPool(256 << 20)}
	}
	nodeA, nodeB := newNode("nodeA"), newNode("nodeB")

	describe := func(who string, p *chain.Plan) {
		fmt.Printf("%-28s -> chain CoW to %-22s created=%-5v warm=%-5v copy-on-shutdown=%v\n",
			who, p.Backing, p.Created, p.Warm, p.CopyToStorageOnShutdown)
	}

	fmt.Println("== Algorithm 1: chaining to a proper cache VMI ==")
	// VM 1 on node A: nothing cached anywhere.
	plan1, err := planner.ChainFor(nodeA, storage, base)
	if err != nil {
		log.Fatal(err)
	}
	describe("VM1 @nodeA (cold cloud)", plan1)

	// Boot it (warms the cache), then shut down (copies cache to smem).
	cow := vmicache.Loc("nodeA:vm1.cow")
	if err := vmicache.CreateCoW(ns, cow, plan1.Backing, size, 0); err != nil {
		log.Fatal(err)
	}
	c, err := vmicache.OpenChain(ns, cow, vmicache.ChainOpts{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := vmicache.Warm(c, []core.Span{{Off: 0, Len: 8 << 20}}); err != nil {
		log.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		log.Fatal(err)
	}
	c.Close() //nolint:errcheck
	if err := planner.OnShutdown(nodeA, storage, base, plan1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s    cache copied to storage memory (%v)\n", "VM1 shutdown",
		storage.MemPool.Contains("centos.img.cache"))

	// VM 2 on node A: local warm cache hit.
	plan2, err := planner.ChainFor(nodeA, storage, base)
	if err != nil {
		log.Fatal(err)
	}
	describe("VM2 @nodeA (local cache)", plan2)

	// VM 3 on node B: no local cache, but storage memory has one.
	plan3, err := planner.ChainFor(nodeB, storage, base)
	if err != nil {
		log.Fatal(err)
	}
	describe("VM3 @nodeB (storage cache)", plan3)
	fmt.Println()
}

func schedulerComparison() {
	fmt.Println("== cache-aware scheduling (§3.4) over a Zipf image mix ==")
	params := sched.WorkloadParams{
		Seed:         2013,
		Arrivals:     5000,
		VMIs:         32,
		ZipfS:        1.3,
		MeanLifetime: 50,
		CPU:          1,
		Mem:          1 << 30,
		WarmBoot:     35 * time.Second,  // warm-cache boot (Fig. 11)
		ColdBoot:     140 * time.Second, // QCOW2 64-node boot (Fig. 2)
		CacheSize:    93 << 20,          // Table 2: CentOS warm cache
	}
	fmt.Printf("%-22s %12s %14s %12s\n", "scheduler", "warm ratio", "mean boot", "evictions")
	for _, cfg := range []struct {
		name       string
		policy     sched.Policy
		cacheAware bool
	}{
		{"striping", sched.Striping, false},
		{"striping+cache-aware", sched.Striping, true},
		{"packing", sched.Packing, false},
		{"packing+cache-aware", sched.Packing, true},
	} {
		s := vmicache.NewScheduler(cfg.policy, cfg.cacheAware)
		for i := 0; i < 24; i++ {
			s.AddNode(vmicache.NewSchedulerNode(fmt.Sprintf("node-%02d", i), 8, 24<<30, 2<<30))
		}
		res, err := sched.Simulate(s, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %11.0f%% %14v %12d\n",
			cfg.name, 100*res.WarmRatio, res.MeanBoot.Round(time.Second), res.CacheEvicted)
	}
	fmt.Println("\nthe warm-cache preference composes with any base policy and cuts mean")
	fmt.Println("boot time by steering repeat images to nodes that already hold their cache.")
}
