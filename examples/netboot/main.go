// Netboot: the real-network deployment path, end to end, in one process.
//
//  1. A storage node exports a base image over the remote block protocol
//     (the NFS stand-in), read-only.
//  2. A compute node dials it, stacks cache + CoW images locally, and
//     exports the chain as an NBD block device (the hypervisor attach
//     surface of §4.2).
//  3. A "hypervisor" attaches to the NBD export and boots a guest by
//     replaying a boot workload — twice, to show the warm cache removing
//     the wire traffic.
//
// Everything travels over real TCP sockets on localhost.
//
// Run with: go run ./examples/netboot
package main

import (
	"fmt"
	"log"

	vmicache "vmicache"
	"vmicache/internal/backend"
	"vmicache/internal/nbd"
	"vmicache/internal/qcow"
	"vmicache/internal/rblock"
)

func main() {
	const imageSize = 128 << 20

	// --- storage node ---
	storageStore := vmicache.NewMemStore()
	ns := vmicache.NewNamespace("storage", storageStore)
	content := vmicache.PatternSource{Seed: 7, N: imageSize}
	if err := vmicache.CreateBase(ns, vmicache.Loc("storage:base.img"), imageSize, 0, content); err != nil {
		log.Fatal(err)
	}
	storageSrv := vmicache.NewRBlockServer(storageStore, rblock.ServerOpts{ReadOnly: true})
	storageAddr, err := storageSrv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer storageSrv.Close() //nolint:errcheck
	fmt.Printf("storage node: exporting base.img on %s (read-only, rwsize=64KiB)\n", storageAddr)

	// --- compute node: remote base + local cache + local CoW ---
	client, err := vmicache.DialRBlock(storageAddr, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close() //nolint:errcheck
	remoteBaseFile, err := client.Open("base.img", true)
	if err != nil {
		log.Fatal(err)
	}
	remoteBase, err := qcow.Open(remoteBaseFile, qcow.OpenOpts{ReadOnly: true})
	if err != nil {
		log.Fatal(err)
	}

	cache, err := qcow.Create(backend.NewMemFile(), qcow.CreateOpts{
		Size: imageSize, ClusterBits: vmicache.CacheClusterBits,
		BackingFile: "base.img", CacheQuota: 32 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	cache.SetBacking(remoteBase)
	cow, err := qcow.Create(backend.NewMemFile(), qcow.CreateOpts{
		Size: imageSize, BackingFile: "cache",
	})
	if err != nil {
		log.Fatal(err)
	}
	cow.SetBacking(cache)

	nbdSrv := vmicache.NewNBDServer(nil)
	nbdSrv.AddExport(nbd.Export{Name: "vm0", Device: chainDevice{cow}})
	nbdAddr, err := nbdSrv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer nbdSrv.Close() //nolint:errcheck
	fmt.Printf("compute node: chain base.img <- cache(512B, 32MiB quota) <- CoW, NBD on %s\n\n", nbdAddr)

	// --- hypervisor: attach and boot ---
	prof := vmicache.Debian.Scale(0.2)
	prof.ImageSize = imageSize
	bootOnce := func(tag string) {
		dev, err := vmicache.DialNBD(nbdAddr, "vm0")
		if err != nil {
			log.Fatal(err)
		}
		defer dev.Close() //nolint:errcheck
		before := storageSrv.Stats().BytesRead
		w := vmicache.GenerateBoot(prof)
		res, err := vmicache.ReplayBoot(w, dev, vmicache.ReplayOpts{})
		if err != nil {
			log.Fatal(err)
		}
		wire := storageSrv.Stats().BytesRead - before
		fmt.Printf("%s: read %.1f MB, wrote %.1f MB through NBD in %v; %.1f MB crossed the storage wire\n",
			tag, float64(res.ReadBytes)/1e6, float64(res.WriteBytes)/1e6,
			res.Elapsed.Round(1e6), float64(wire)/1e6)
	}

	bootOnce("boot 1 (cold cache)")
	bootOnce("boot 2 (warm cache)")

	fmt.Printf("\ncache image: %.1f MB used, %d fills, full=%v\n",
		float64(cache.UsedBytes())/1e6, cache.Stats().CacheFillOps.Load(), cache.CacheFull())
	fmt.Println("the second boot's wire traffic collapses: the cache serves the working set locally.")
}

// chainDevice adapts a qcow image to nbd.Device.
type chainDevice struct{ img *qcow.Image }

func (d chainDevice) ReadAt(p []byte, off int64) (int, error)  { return d.img.ReadAt(p, off) }
func (d chainDevice) WriteAt(p []byte, off int64) (int, error) { return d.img.WriteAt(p, off) }
func (d chainDevice) Size() int64                              { return d.img.Size() }
func (d chainDevice) Sync() error                              { return d.img.Sync() }
