// Quickstart: the paper's §4.4 workflow end to end, in memory.
//
// It builds the Fig. 4 chain (base ← cache ← CoW), boots a VM against a
// cold cache, then boots a second VM over the now-warm cache, and prints
// the base-image traffic each boot generated — the headline effect of the
// paper: the warm boot reads (nearly) nothing from the storage node.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	vmicache "vmicache"
	"vmicache/internal/backend"
)

func main() {
	const (
		imageSize = 256 << 20 // 256 MiB demo image
		quota     = 64 << 20  // cache quota well above the boot working set
	)

	// Two media: the storage node's export and a compute node's disk.
	storage := vmicache.NewMemStore()
	node := vmicache.NewMemStore()
	ns := vmicache.NewNamespace("nfs", storage)
	ns.Register("node0", node)

	// A synthetic "CentOS" base image on the storage node. PatternSource
	// computes content on the fly, so nothing big is materialised.
	content := vmicache.PatternSource{Seed: 42, N: imageSize}
	if err := vmicache.CreateBase(ns, vmicache.Loc("nfs:centos.img"), imageSize, 0, content); err != nil {
		log.Fatal(err)
	}

	// §4.4 step 1: cache image (512 B clusters, quota-limited) backed by
	// the base; step 2: CoW image backed by the cache.
	if err := vmicache.CreateCache(ns, vmicache.Loc("node0:centos.cache"),
		vmicache.Loc("nfs:centos.img"), imageSize, quota, 0); err != nil {
		log.Fatal(err)
	}
	if err := vmicache.CreateCoW(ns, vmicache.Loc("node0:vm0.cow"),
		vmicache.Loc("node0:centos.cache"), imageSize, 0); err != nil {
		log.Fatal(err)
	}

	// Count every byte the chain pulls from the base image: the
	// "observed traffic at the storage node" of Fig. 9/10.
	var baseTraffic backend.Counters
	wrap := func(loc vmicache.Locator, f vmicache.File, depth int) vmicache.File {
		if loc.Name == "centos.img" {
			return backend.NewCountingFile(f, &baseTraffic)
		}
		return f
	}

	boot := func(cow string) (bootMB, trafficMB float64) {
		chain, err := vmicache.OpenChain(ns, vmicache.Loc(cow), vmicache.ChainOpts{WrapFile: wrap})
		if err != nil {
			log.Fatal(err)
		}
		defer chain.Close() //nolint:errcheck
		baseTraffic.Reset()

		// A scaled-down CentOS boot replayed against the chain.
		prof := vmicache.CentOS.Scale(0.05)
		prof.ImageSize = imageSize
		w := vmicache.GenerateBoot(prof)
		res, err := vmicache.ReplayBoot(w, chain, vmicache.ReplayOpts{})
		if err != nil {
			log.Fatal(err)
		}
		if err := chain.Sync(); err != nil {
			log.Fatal(err)
		}
		return float64(res.ReadBytes) / 1e6, float64(baseTraffic.ReadBytes.Load()) / 1e6
	}

	fmt.Println("== VM 0: cold cache (first boot warms it by copy-on-read) ==")
	read, traffic := boot("node0:vm0.cow")
	fmt.Printf("guest read %.1f MB; base-image traffic %.1f MB\n\n", read, traffic)

	// A second VM on the same node chains a fresh CoW to the SAME cache.
	if err := vmicache.CreateCoW(ns, vmicache.Loc("node0:vm1.cow"),
		vmicache.Loc("node0:centos.cache"), imageSize, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== VM 1: warm cache (same working set, new CoW image) ==")
	read, traffic = boot("node0:vm1.cow")
	fmt.Printf("guest read %.1f MB; base-image traffic %.1f MB\n\n", read, traffic)

	// Inspect the cache image itself.
	chain, err := vmicache.OpenChain(ns, vmicache.Loc("node0:centos.cache"), vmicache.ChainOpts{})
	if err != nil {
		log.Fatal(err)
	}
	defer chain.Close() //nolint:errcheck
	cache := chain.Top()
	info, err := cache.Info()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== cache image state (Table 2's metric: warm cache size) ==")
	fmt.Print(info)
}
