// Cloud: the paper's machinery operating a whole IaaS cloud over time.
//
// A 32-node cloud takes Poisson VM arrivals over a Zipf-popular image mix
// for two simulated hours, under three provisioning schemes:
//
//  1. plain QCOW2 on-demand transfers (the paper's baseline),
//  2. VMI caches with a cache-oblivious scheduler,
//  3. VMI caches with the §3.4 cache-aware scheduler and §6's Algorithm 1
//     deciding between node-local caches and storage-memory caches.
//
// Run with: go run ./examples/cloud
package main

import (
	"fmt"
	"log"
	"time"

	vmicache "vmicache"
	"vmicache/internal/cloudsim"
	"vmicache/internal/sched"
)

func main() {
	base := cloudsim.Params{
		Seed:         20130703,
		Nodes:        32,
		NodeCPU:      8,
		NodeMem:      24 << 30,
		NodeCache:    1 << 30, // ~10 CentOS caches per node
		StorageMem:   16 << 30,
		Rate:         1.0, // one VM per second
		VMIs:         48,
		ZipfS:        1.3,
		MeanLifetime: 10 * time.Minute,
		Duration:     2 * time.Hour,
		VMCPU:        1,
		VMMem:        2 << 30,
		Policy:       sched.Striping,
		Profile:      vmicache.CentOS,
	}

	fmt.Println("two simulated hours, 1 VM/s over 48 Zipf-popular images, 32 nodes, 1 GbE")
	fmt.Printf("%-28s %8s %9s %9s %9s %8s %8s\n",
		"scheme", "boots", "mean(s)", "p50(s)", "p95(s)", "warm%", "rejects")

	for _, cfg := range []struct {
		name   string
		scheme cloudsim.Scheme
		aware  bool
	}{
		{"qcow2", cloudsim.SchemeQCOW2, false},
		{"vmi-cache (oblivious)", cloudsim.SchemeVMICache, false},
		{"vmi-cache + cache-aware", cloudsim.SchemeVMICache, true},
	} {
		p := base
		p.Scheme = cfg.scheme
		p.CacheAware = cfg.aware
		r, err := cloudsim.Run(p)
		if err != nil {
			log.Fatal(err)
		}
		warm := 0.0
		if r.Completed > 0 {
			warm = 100 * float64(r.WarmLocal+r.WarmRemote) / float64(r.Completed)
		}
		fmt.Printf("%-28s %8d %9.1f %9.1f %9.1f %7.0f%% %8d\n",
			cfg.name, r.Completed, r.Boots.Mean(), r.Boots.Median(),
			r.Boots.Quantile(0.95), warm, r.Rejected)
	}

	fmt.Println("\nVMI caches turn almost every boot warm; cache-aware placement keeps the")
	fmt.Println("working set on node-local disks, so boots stop touching the network at all.")
}
