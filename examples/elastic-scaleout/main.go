// Elastic scale-out: the scenario from the paper's introduction — a web
// service needs many more workers NOW, all booting from the same VMI.
//
// This example runs the simulated DAS-4 testbed (65 nodes, 1 GbE) and
// compares simultaneous startup of 1..64 VMs under plain QCOW2 on-demand
// transfers versus warm VMI caches on the compute nodes — the comparison of
// Fig. 11. With caches, "the time needed for simultaneous VM startups
// [drops] to the one of a single VM".
//
// Run with: go run ./examples/elastic-scaleout [-scale 0.05]
package main

import (
	"flag"
	"fmt"
	"log"

	vmicache "vmicache"
)

func main() {
	scale := flag.Float64("scale", 0.05, "workload scale (1.0 = paper size, slower)")
	flag.Parse()

	prof := vmicache.CentOS.Scale(*scale)
	fmt.Printf("scaling out a web service from the %s image over 1 GbE\n", vmicache.CentOS.Name)
	fmt.Printf("%-8s %18s %18s %12s\n", "# VMs", "QCOW2 boot (s)", "warm cache (s)", "speedup")

	for _, n := range []int{1, 4, 8, 16, 32, 64} {
		qcow2, err := vmicache.RunExperiment(vmicache.ExperimentParams{
			Seed: 1, Network: vmicache.NetGbE, Nodes: n, VMIs: 1,
			Mode: vmicache.ModeQCOW2, Profile: prof,
		})
		if err != nil {
			log.Fatal(err)
		}
		warm, err := vmicache.RunExperiment(vmicache.ExperimentParams{
			Seed: 1, Network: vmicache.NetGbE, Nodes: n, VMIs: 1,
			Mode: vmicache.ModeWarmCache, Placement: vmicache.PlaceComputeDisk,
			Profile: prof,
		})
		if err != nil {
			log.Fatal(err)
		}
		q := qcow2.MeanBoot.Seconds() / *scale // renormalised to full scale
		w := warm.MeanBoot.Seconds() / *scale
		fmt.Printf("%-8d %18.1f %18.1f %11.1fx\n", n, q, w, q/w)
	}

	fmt.Println("\nwith warm VMI caches, 64 simultaneous startups cost ~one single-VM boot;")
	fmt.Println("QCOW2 saturates the 1 GbE link past ~8 nodes and degrades linearly (Fig. 2/11).")
}
