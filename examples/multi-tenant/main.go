// Multi-tenant cloud: many users boot many different VMIs at once (§2.2).
// Even over a 32 Gb InfiniBand network — which a single shared VMI never
// saturates — the storage node's DISK collapses under the random first-read
// traffic of 64 distinct images (Fig. 3). Placing the small warm caches in
// the storage node's MEMORY removes that bottleneck entirely (Fig. 14),
// without using any compute-node disk space (§6's recommended placement for
// fast networks).
//
// Run with: go run ./examples/multi-tenant [-scale 0.05]
package main

import (
	"flag"
	"fmt"
	"log"

	vmicache "vmicache"
)

func main() {
	scale := flag.Float64("scale", 0.05, "workload scale (1.0 = paper size, slower)")
	flag.Parse()

	prof := vmicache.CentOS.Scale(*scale)
	fmt.Println("64 nodes boot simultaneously over 32 Gb IB, sharing ever fewer images")
	fmt.Printf("%-8s %16s %22s %14s %16s\n",
		"# VMIs", "QCOW2 boot (s)", "storage-mem warm (s)", "disk util", "storage sent MB")

	for _, vmis := range []int{1, 8, 16, 32, 64} {
		qcow2, err := vmicache.RunExperiment(vmicache.ExperimentParams{
			Seed: 1, Network: vmicache.NetIB, Nodes: 64, VMIs: vmis,
			Mode: vmicache.ModeQCOW2, Profile: prof,
		})
		if err != nil {
			log.Fatal(err)
		}
		warm, err := vmicache.RunExperiment(vmicache.ExperimentParams{
			Seed: 1, Network: vmicache.NetIB, Nodes: 64, VMIs: vmis,
			Mode: vmicache.ModeWarmCache, Placement: vmicache.PlaceStorageMem,
			Profile: prof,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %16.1f %22.1f %10.0f%%/%2.0f%% %16.1f\n",
			vmis,
			qcow2.MeanBoot.Seconds()/(*scale),
			warm.MeanBoot.Seconds()/(*scale),
			100*qcow2.DiskUtilization, 100*warm.DiskUtilization,
			float64(warm.StorageSent)/1e6/(*scale))
	}

	// How much storage-node memory do the caches need? One warm cache per
	// VMI, each ~ the boot working set (Table 2): tiny versus the images.
	r, err := vmicache.RunExperiment(vmicache.ExperimentParams{
		Seed: 1, Network: vmicache.NetIB, Nodes: 1, VMIs: 1,
		Mode: vmicache.ModeWarmCache, Placement: vmicache.PlaceStorageMem,
		Profile: prof,
	})
	if err != nil {
		log.Fatal(err)
	}
	perCache := float64(r.CacheUsed) / 1e6 / *scale
	fmt.Printf("\neach warm cache is ~%.0f MB; 64 of them need ~%.1f GB of storage-node RAM,\n",
		perCache, 64*perCache/1e3)
	fmt.Println("versus 640 GB to hold the 64 full 10 GB images — the §2.3 feasibility argument.")
	fmt.Println("\n§6 recommendation:", vmicache.RecommendPlacement(true).Placement)
	for _, reason := range vmicache.RecommendPlacement(true).Reasons {
		fmt.Println("  -", reason)
	}
}
