GO ?= go

.PHONY: check lint vet fmt build test race bench bench-baseline coverage integration

# The full verification gate: lint (gofmt + vet + staticcheck when
# installed), build, the plain test suite, and the race-detector pass (which
# includes the concurrency stress tests in internal/qcow and internal/rblock).
check: lint build test race

# lint fails on unformatted files and vet findings; staticcheck runs when the
# binary is on PATH (CI installs it; local runs without it still gate on
# gofmt + vet).
lint: vet fmt
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: needs formatting:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# integration launches real rblockd + vmicached processes on loopback ports
# and drives a multi-node provisioning round end to end (cold warm with
# dedup publication, manifest-first delta warm, restart persistence, and a
# raw rblock manifest/chunk fetch). No docker, no fixed ports: every daemon
# binds 127.0.0.1:0 and the test parses the bound address it prints.
integration:
	$(GO) test -tags integration -timeout 300s -count 1 ./integration/

bench:
	$(GO) test -run xxx -bench . -benchtime 0.5s .

# bench-baseline regenerates the committed CI baseline from the data-path
# microbenchmarks plus the prefetch/prewarm pipeline, sub-cluster cold-boot,
# and swarm flash-crowd benchmarks. The 'WarmRead' pattern also matches the
# batched data-path benchmarks (LargeWarmRead, ContendedWarmRead) and the
# mmap warm-read mode (WarmReadMmap); 'ServerRead' covers the 4K round trip,
# the large vectored transfers, the sendfile-vs-copy matrix
# (ServerReadZeroCopy), and the 64-way contended serve (ContendedServerRead).
# -cpu 4 pins GOMAXPROCS so benchmark names (and the stripped-suffix keys
# benchjson compares on) are machine-independent; -benchtime 2s keeps
# run-to-run noise well under the 20% regression gate. After refreshing,
# commit the new BENCH_pr10.json and keep ci.yml's -baseline flags pointing
# at it.
bench-baseline:
	( $(GO) test -run xxx \
		-bench 'WarmRead|ColdFill|RoundTrip|PipelinedRead|SequentialColdRead|ServerRead' \
		-benchmem -benchtime 2s -cpu 4 ./internal/qcow/ ./internal/rblock/ ; \
	  $(GO) test -run xxx \
		-bench 'ProfileWarm|SubclusterColdBoot|SubclusterWarmRead|SwarmFlashCrowd|DedupManifestBuild|DedupMaterialize|DedupDeltaTransfer' \
		-benchmem -benchtime 2s -cpu 4 . ) \
		| $(GO) run ./cmd/benchjson -out BENCH_pr10.json

coverage:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1
