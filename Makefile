GO ?= go

.PHONY: check vet build test race bench

# The full verification gate: vet, build, the plain test suite, and the
# race-detector pass (which includes the concurrency stress tests in
# internal/qcow and internal/rblock).
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 0.5s .
