// Package vmicache is a reproduction of "Scalable Virtual Machine
// Deployment Using VM Image Caches" (Razavi & Kielmann, SC '13) as a Go
// library.
//
// The core idea of the paper: a VM reads only a tiny fraction (tens to
// ~200 MB) of its multi-GB image while booting, so a small, standalone,
// quota-limited *VMI cache* image — inserted between the copy-on-write
// image and the base image — removes the network and storage-disk
// bottlenecks from simultaneous VM startup. This package exposes:
//
//   - A QCOW2-style image format with the paper's cache extension
//     (copy-on-read fill, quota with space-error semantics, immutability
//     towards the base): CreateImage / CreateCache / CreateCoW / OpenChain.
//   - Media as Stores (OS directories, memory/tmpfs) and a namespace that
//     chains images across them.
//   - Guest boot-workload profiles (CentOS / Debian / Windows Server,
//     Table 1) and a replayer that boots chains for real.
//   - The DAS-4 evaluation harness reproducing every measured figure and
//     table of the paper under simulated time: Experiment* functions.
//   - The §6 placement logic (Algorithm 1) and the §3.4 cache-aware
//     scheduler.
//   - A remote block protocol (the NFS stand-in) and an NBD server (the
//     hypervisor attach path) for real-network deployments.
//
// A minimal end-to-end use:
//
//	ns := vmicache.NewNamespace("nfs", vmicache.NewMemStore())
//	ns.Register("node0", vmicache.NewMemStore())
//	_ = vmicache.CreateBase(ns, vmicache.Loc("nfs:centos.img"), 10<<30, 0, nil)
//	_ = vmicache.CreateCache(ns, vmicache.Loc("node0:centos.cache"), vmicache.Loc("nfs:centos.img"), 10<<30, 250<<20, 0)
//	_ = vmicache.CreateCoW(ns, vmicache.Loc("node0:vm0.cow"), vmicache.Loc("node0:centos.cache"), 10<<30, 0)
//	chain, _ := vmicache.OpenChain(ns, vmicache.Loc("node0:vm0.cow"), vmicache.ChainOpts{})
//	defer chain.Close()
//	// chain.ReadAt / chain.WriteAt are the VM's virtual disk.
package vmicache

import (
	"vmicache/internal/backend"
	"vmicache/internal/boot"
	"vmicache/internal/chain"
	"vmicache/internal/cloudsim"
	"vmicache/internal/cluster"
	"vmicache/internal/core"
	"vmicache/internal/dedup"
	"vmicache/internal/metrics"
	"vmicache/internal/nbd"
	"vmicache/internal/qcow"
	"vmicache/internal/rblock"
	"vmicache/internal/sched"
	"vmicache/internal/trace"
)

// ---- Media & stores ----

// Store is a named collection of block files (a medium: disk directory,
// tmpfs, ...).
type Store = backend.Store

// MemStore is an in-memory Store (the tmpfs stand-in).
type MemStore = backend.MemStore

// DirStore is a directory-backed Store.
type DirStore = backend.DirStore

// File is the random-access block container interface.
type File = backend.File

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return backend.NewMemStore() }

// NewDirStore returns a store rooted at dir (created if absent).
func NewDirStore(dir string) (*DirStore, error) { return backend.NewDirStore(dir) }

// ---- Image format ----

// Image is an open image file (base, CoW or cache).
type Image = qcow.Image

// ImageCreateOpts parameterises low-level image creation.
type ImageCreateOpts = qcow.CreateOpts

// ImageOpenOpts parameterises low-level image opening.
type ImageOpenOpts = qcow.OpenOpts

// Cache cluster-size constants: the paper's evaluation settles on 512-byte
// clusters for cache images (Fig. 9) and keeps QCOW2's 64 KiB default for
// base and CoW images.
const (
	CacheClusterBits   = qcow.CacheClusterBits
	DefaultClusterBits = qcow.DefaultClusterBits
)

// ErrCacheFull is the cache-quota space error of §4.3.
var ErrCacheFull = qcow.ErrCacheFull

// MinCacheQuota reports the smallest admissible cache quota for an image of
// the given virtual size and cluster bits.
func MinCacheQuota(size int64, clusterBits int) int64 {
	return qcow.MinCacheQuota(size, clusterBits)
}

// ---- Chains & namespaces ----

// Namespace maps store names to Stores so backing-file references resolve
// across media.
type Namespace = core.Namespace

// Locator names an image on a medium ("store:name").
type Locator = core.Locator

// Chain is an open image chain (CoW -> cache -> base).
type Chain = core.Chain

// ChainOpts configures OpenChain.
type ChainOpts = core.ChainOpts

// Span is a byte range used to warm caches.
type Span = core.Span

// Pool is an LRU pool of cache images on one medium.
type Pool = core.Pool

// NewNamespace returns a namespace whose bare names resolve in the given
// default store.
func NewNamespace(defName string, def Store) *Namespace {
	return core.NewNamespace(defName, def)
}

// Loc parses "store:name" (or bare "name") into a Locator.
func Loc(s string) Locator { return core.ParseLocator(s) }

// CreateBase creates a standalone base image filled from content (nil for a
// zero disk).
func CreateBase(ns *Namespace, loc Locator, size int64, clusterBits int, content qcow.BlockSource) error {
	return core.CreateBase(ns, loc, size, clusterBits, content)
}

// CreateCache performs step one of the §4.4 workflow: a quota-limited cache
// image backed by the base.
func CreateCache(ns *Namespace, loc, backing Locator, size, quota int64, clusterBits int) error {
	return core.CreateCache(ns, loc, backing, size, quota, clusterBits)
}

// CreateCoW performs step two of §4.4: a copy-on-write image backed by the
// cache (or directly by the base).
func CreateCoW(ns *Namespace, loc, backing Locator, size int64, clusterBits int) error {
	return core.CreateCoW(ns, loc, backing, size, clusterBits)
}

// OpenChain opens an image and its full backing chain, applying the §4.3
// permission handling (caches stay writable to warm themselves; plain
// backing images are re-opened read-only).
func OpenChain(ns *Namespace, loc Locator, opts ChainOpts) (*Chain, error) {
	return core.OpenChain(ns, loc, opts)
}

// Warm replays read spans against a chain to populate its cache image
// (§3.2 cache creation).
func Warm(c *Chain, spans []Span) (int64, error) { return core.Warm(c, spans) }

// TransferCache copies a cache image to another medium (e.g. the storage
// node's memory, Fig. 13).
func TransferCache(ns *Namespace, dst, src Locator) (int64, error) {
	return core.TransferCache(ns, dst, src)
}

// NewPool returns an LRU cache pool with the given byte capacity.
func NewPool(capacity int64) *Pool { return core.NewPool(capacity) }

// ---- Boot workloads ----

// BootProfile describes a guest OS boot's block-level behaviour.
type BootProfile = boot.Profile

// BootWorkload is a generated boot operation stream.
type BootWorkload = boot.Workload

// ReplayOpts configures real-time workload replay.
type ReplayOpts = boot.ReplayOpts

// ReplayResult summarises one replay.
type ReplayResult = boot.ReplayResult

// PatternSource is a deterministic, storage-free disk content generator.
type PatternSource = boot.PatternSource

// The guests of Table 1.
var (
	CentOS        = boot.CentOS
	Debian        = boot.Debian
	WindowsServer = boot.WindowsServer
)

// GenerateBoot expands a profile into its deterministic operation stream.
func GenerateBoot(p BootProfile) *BootWorkload { return boot.Generate(p) }

// ReplayBoot runs a workload against a device (a *Chain, an *Image, or an
// NBD client) in real time.
func ReplayBoot(w *BootWorkload, dev boot.Device, opts ReplayOpts) (*ReplayResult, error) {
	return boot.Replay(w, dev, opts)
}

// ---- Tracing ----

// TraceRecorder captures block accesses and their unique-read working set
// (Table 1's metric).
type TraceRecorder = trace.Recorder

// WorkingSet summarises a trace.
type WorkingSet = trace.WorkingSet

// NewTraceRecorder returns a wall-clock trace recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// ---- Evaluation harness ----

// ExperimentParams configures one cluster experiment run.
type ExperimentParams = cluster.Params

// ExperimentResult aggregates one run.
type ExperimentResult = cluster.Result

// Experiment knobs.
const (
	NetGbE           = cluster.NetGbE
	NetIB            = cluster.NetIB
	ModeQCOW2        = cluster.ModeQCOW2
	ModeColdCache    = cluster.ModeColdCache
	ModeWarmCache    = cluster.ModeWarmCache
	PlaceComputeDisk = cluster.PlaceComputeDisk
	PlaceComputeMem  = cluster.PlaceComputeMem
	PlaceStorageMem  = cluster.PlaceStorageMem
)

// RunExperiment executes one simulated cluster experiment.
func RunExperiment(p ExperimentParams) (*ExperimentResult, error) { return cluster.Run(p) }

// Figure is a reproduced paper figure (text-rendered series).
type Figure = metrics.Figure

// ReproTable is a reproduced paper table.
type ReproTable = metrics.Table

// The per-figure experiment drivers; factor scales the workload (1.0 = the
// paper's full size).
var (
	ExperimentFig2   = cluster.Fig2
	ExperimentFig3   = cluster.Fig3
	ExperimentFig8   = cluster.Fig8
	ExperimentFig9   = cluster.Fig9
	ExperimentFig10  = cluster.Fig10
	ExperimentFig11  = cluster.Fig11
	ExperimentFig12  = cluster.Fig12
	ExperimentFig14  = cluster.Fig14
	ExperimentSec6   = cluster.Sec6Delta
	ExperimentTable1 = cluster.Table1
	ExperimentTable2 = cluster.Table2

	// Extensions beyond the paper's measured figures.
	ExperimentMixedWarmCold   = cluster.ExtMixedWarmCold
	ExperimentHeterogeneous   = cluster.ExtHeterogeneous
	ExperimentSnapshotRestore = cluster.ExtSnapshotRestore
)

// ---- Placement (§6) and scheduling (§3.4) ----

// Planner executes Algorithm 1.
type Planner = chain.Planner

// PlannerComputeNode is a compute node's view for the planner.
type PlannerComputeNode = chain.ComputeNode

// PlannerStorageNode is the storage node's view for the planner.
type PlannerStorageNode = chain.StorageNode

// PlacementPlan is the outcome of Algorithm 1 for one VM start.
type PlacementPlan = chain.Plan

// RecommendPlacement returns §6's placement advice.
var RecommendPlacement = chain.Recommend

// Scheduler is the cache-aware cloud scheduler.
type Scheduler = sched.Scheduler

// SchedulerNode is one schedulable compute node.
type SchedulerNode = sched.Node

// VMSpec is a placement request.
type VMSpec = sched.VMSpec

// Scheduling policies (OpenNebula-style).
const (
	Packing   = sched.Packing
	Striping  = sched.Striping
	LoadAware = sched.LoadAware
)

// NewScheduler returns a scheduler with the given base policy and optional
// §3.4 cache-awareness.
func NewScheduler(policy sched.Policy, cacheAware bool) *Scheduler {
	return sched.New(policy, cacheAware)
}

// NewSchedulerNode returns a node with the given capacities and cache
// budget.
func NewSchedulerNode(id string, cpu int, mem, cacheBudget int64) *SchedulerNode {
	return sched.NewNode(id, cpu, mem, cacheBudget)
}

// ---- Network services ----

// RBlockServer exports a Store over TCP (the NFS stand-in).
type RBlockServer = rblock.Server

// RBlockClient is a remote-store client.
type RBlockClient = rblock.Client

// NewRBlockServer returns a remote block server for store.
func NewRBlockServer(store Store, opts rblock.ServerOpts) *RBlockServer {
	return rblock.NewServer(store, opts)
}

// DialRBlock connects to a remote block server.
func DialRBlock(addr string, rwsize int) (*RBlockClient, error) { return rblock.Dial(addr, rwsize) }

// NBDServer exports image chains as network block devices.
type NBDServer = nbd.Server

// NBDExport describes one served device.
type NBDExport = nbd.Export

// NewNBDServer returns an NBD server.
func NewNBDServer(logf func(string, ...any)) *NBDServer { return nbd.NewServer(logf) }

// DialNBD attaches to an NBD export.
func DialNBD(addr, export string) (*nbd.Client, error) { return nbd.Dial(addr, export) }

// ---- Extensions (§7.3 prefetching, §8 dedup & compression) ----

// Prefetcher streams a cache's inferred disclosure through a chain ahead of
// the guest (§7.3).
type Prefetcher = core.Prefetcher

// Disclosure extracts a cache image's inferred future-access list: its
// allocated extents in fill order.
func Disclosure(cache *Image) ([]Span, error) { return core.Disclosure(cache) }

// NewPrefetcher prepares a background prefetch of spans through the chain.
func NewPrefetcher(c *Chain, spans []Span, chunk int64) *Prefetcher {
	return core.NewPrefetcher(c, spans, chunk)
}

// TransferCacheCompressed copies a cache image between stores through a
// deflate stream, returning (rawBytes, wireBytes).
func TransferCacheCompressed(dst Store, dstName string, src Store, srcName string) (raw, wire int64, err error) {
	return dedup.TransferCompressed(dst, dstName, src, srcName)
}

// ---- Cloud-scale simulation (integration of §3.4 + §6) ----

// CloudParams configures a whole-cloud simulation: Poisson VM arrivals over
// a Zipf image mix, cache-aware scheduling, Algorithm 1 cache placement.
type CloudParams = cloudsim.Params

// CloudResult summarises a cloud simulation.
type CloudResult = cloudsim.Result

// Cloud provisioning schemes.
const (
	SchemeQCOW2    = cloudsim.SchemeQCOW2
	SchemeVMICache = cloudsim.SchemeVMICache
)

// RunCloud executes a cloud simulation.
func RunCloud(p CloudParams) (*CloudResult, error) { return cloudsim.Run(p) }
