package vmicache

import (
	"bytes"
	"testing"

	"vmicache/internal/backend"
)

// The facade's end-to-end path: §4.4 workflow through the public API only.
func TestFacadeWorkflow(t *testing.T) {
	const size = 4 << 20
	ns := NewNamespace("nfs", NewMemStore())
	ns.Register("node0", NewMemStore())

	src := PatternSource{Seed: 1, N: size}
	if err := CreateBase(ns, Loc("nfs:centos.img"), size, 0, src); err != nil {
		t.Fatal(err)
	}
	quota := MinCacheQuota(size, CacheClusterBits) + size/2
	if err := CreateCache(ns, Loc("node0:centos.cache"), Loc("nfs:centos.img"), size, quota, 0); err != nil {
		t.Fatal(err)
	}
	if err := CreateCoW(ns, Loc("node0:vm0.cow"), Loc("node0:centos.cache"), size, 0); err != nil {
		t.Fatal(err)
	}
	c, err := OpenChain(ns, Loc("node0:vm0.cow"), ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	if _, err := Warm(c, []Span{{Off: 0, Len: 256 << 10}}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := backend.ReadFull(c, buf, 1000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, src.At(1000, 4096)) {
		t.Fatal("facade chain content mismatch")
	}
	if c.CacheImage() == nil || c.CacheImage().Stats().CacheFillOps.Load() == 0 {
		t.Fatal("cache did not warm through the facade")
	}
}

func TestFacadeBootReplay(t *testing.T) {
	const size = 8 << 20
	ns := NewNamespace("nfs", NewMemStore())
	src := PatternSource{Seed: 2, N: size}
	if err := CreateBase(ns, Loc("nfs:img"), size, 0, src); err != nil {
		t.Fatal(err)
	}
	if err := CreateCoW(ns, Loc("nfs:vm.cow"), Loc("nfs:img"), size, 0); err != nil {
		t.Fatal(err)
	}
	c, err := OpenChain(ns, Loc("nfs:vm.cow"), ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	prof := Debian.Scale(0.01)
	prof.ImageSize = size
	w := GenerateBoot(prof)
	res, err := ReplayBoot(w, c, ReplayOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadBytes != w.TotalReadBytes() {
		t.Fatalf("replay read %d, want %d", res.ReadBytes, w.TotalReadBytes())
	}
}

func TestFacadeExperiment(t *testing.T) {
	r, err := RunExperiment(ExperimentParams{
		Seed:    1,
		Network: NetGbE,
		Nodes:   4,
		VMIs:    1,
		Mode:    ModeWarmCache,
		Profile: CentOS.Scale(0.01),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.BootTimes) != 4 || r.MeanBoot <= 0 {
		t.Fatalf("experiment result: %+v", r)
	}
}

func TestFacadeScheduler(t *testing.T) {
	s := NewScheduler(Striping, true)
	s.AddNode(NewSchedulerNode("n0", 4, 8<<30, 1<<30))
	s.AddNode(NewSchedulerNode("n1", 4, 8<<30, 1<<30))
	s.RecordWarmCache(s.Nodes()[1], "centos", 100<<20)
	d, err := s.Schedule(VMSpec{ID: "vm0", VMI: "centos", CPU: 1, Mem: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if !d.WarmCache || d.Node.ID != "n1" {
		t.Fatalf("decision: %+v", d)
	}
}

func TestFacadeRecommendation(t *testing.T) {
	if RecommendPlacement(true).Placement != "storage-memory" {
		t.Fatal("fast-network recommendation")
	}
}

func TestFacadeTransferAndPool(t *testing.T) {
	const size = 2 << 20
	ns := NewNamespace("nfs", NewMemStore())
	mem := NewMemStore()
	ns.Register("smem", mem)
	if err := CreateBase(ns, Loc("nfs:b.img"), size, 0, PatternSource{Seed: 4, N: size}); err != nil {
		t.Fatal(err)
	}
	if err := CreateCache(ns, Loc("nfs:b.cache"), Loc("nfs:b.img"), size, size, 0); err != nil {
		t.Fatal(err)
	}
	c, err := OpenChain(ns, Loc("nfs:b.cache"), ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Warm(c, []Span{{Off: 0, Len: 128 << 10}}); err != nil {
		t.Fatal(err)
	}
	spans, err := Disclosure(c.Top())
	if err != nil || len(spans) == 0 {
		t.Fatalf("disclosure: %v (%d spans)", err, len(spans))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	moved, err := TransferCache(ns, Loc("smem:b.cache"), Loc("nfs:b.cache"))
	if err != nil || moved == 0 {
		t.Fatalf("transfer: %d %v", moved, err)
	}
	pool := NewPool(1 << 20)
	if _, ok := pool.Add("b.cache", moved); !ok {
		t.Fatal("pool add")
	}
	if !pool.Lookup("b.cache") {
		t.Fatal("pool lookup")
	}
	if MinCacheQuota(size, CacheClusterBits) <= 0 {
		t.Fatal("MinCacheQuota")
	}
}

func TestFacadeDedupAndCompressedTransfer(t *testing.T) {
	src := NewMemStore()
	f, _ := src.Create("cache")
	content := make([]byte, 256<<10)
	for i := range content {
		content[i] = 'a' + byte(i%13)
	}
	if err := backend.WriteFull(f, content, 0); err != nil {
		t.Fatal(err)
	}
	dst := NewMemStore()
	raw, wire, err := TransferCacheCompressed(dst, "cache", src, "cache")
	if err != nil || wire >= raw {
		t.Fatalf("compressed transfer: raw=%d wire=%d err=%v", raw, wire, err)
	}
	out, err := dst.Open("cache", true)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(content))
	if err := backend.ReadFull(out, got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(content) {
		t.Fatal("transferred cache mismatch")
	}
}

func TestFacadeCloudAndExtensions(t *testing.T) {
	r, err := RunCloud(CloudParams{
		Seed: 2, Nodes: 4, NodeCPU: 8, NodeMem: 24 << 30, NodeCache: 1 << 30,
		StorageMem: 8 << 30, Rate: 1, VMIs: 8, ZipfS: 1.2,
		MeanLifetime: 30 * 1e9, Duration: 120 * 1e9, VMCPU: 1, VMMem: 1 << 30,
		Scheme: SchemeVMICache, Policy: Striping, CacheAware: true,
		Profile: CentOS.Scale(0.01),
	})
	if err != nil || r.Completed == 0 {
		t.Fatalf("cloud: %v %+v", err, r)
	}
	if fig := ExperimentTable1(0.01); len(fig.Rows) != 3 {
		t.Fatal("table1 driver")
	}
}
