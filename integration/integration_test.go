//go:build integration

// Package integration launches the repository's real daemons — rblockd as
// the storage node, vmicached as cache-manager nodes — as separate processes
// on localhost ports, provisions caches through them, and asserts the warm /
// peer / dedup counters over their metrics endpoints. No containers, no
// network beyond 127.0.0.1: `go test -tags integration ./integration/`.
package integration

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"syscall"
	"testing"
	"time"

	"vmicache/internal/backend"
	"vmicache/internal/core"
	"vmicache/internal/dedup"
	"vmicache/internal/qcow"
	"vmicache/internal/rblock"
)

var binDir string

// TestMain builds the daemons once; every test execs the built binaries.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "vmicache-integ-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir) //nolint:errcheck // best-effort cleanup
	for _, c := range []string{"rblockd", "vmicached"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, c), "./cmd/"+c)
		cmd.Dir = ".."
		if out, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n%s", c, err, out)
			os.Exit(1)
		}
	}
	binDir = dir
	os.Exit(m.Run())
}

// proc wraps one daemon process, merging its stdout+stderr into a log that
// waitFor scans (and the test dumps on failure).
type proc struct {
	t    *testing.T
	name string
	cmd  *exec.Cmd

	mu   sync.Mutex
	log  bytes.Buffer
	cond *sync.Cond
}

func start(t *testing.T, name string, args ...string) *proc {
	t.Helper()
	p := &proc{t: t, name: name, cmd: exec.Command(filepath.Join(binDir, name), args...)}
	p.cond = sync.NewCond(&p.mu)
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = p.cmd.Stdout // one merged stream
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			p.mu.Lock()
			p.log.WriteString(sc.Text())
			p.log.WriteByte('\n')
			p.cond.Broadcast()
			p.mu.Unlock()
		}
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	}()
	t.Cleanup(func() { p.stop() })
	return p
}

// waitFor blocks until the merged log matches re, returning the first
// submatch (or the whole match).
func (p *proc) waitFor(re string, timeout time.Duration) string {
	p.t.Helper()
	rx := regexp.MustCompile(re)
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if m := rx.FindStringSubmatch(p.log.String()); m != nil {
			if len(m) > 1 {
				return m[1]
			}
			return m[0]
		}
		if time.Now().After(deadline) {
			p.t.Fatalf("%s: no %q within %v; log:\n%s", p.name, re, timeout, p.log.String())
		}
		p.cond.Wait()
	}
}

func (p *proc) stop() {
	if p.cmd.Process == nil || p.cmd.ProcessState != nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck // racing exit
	done := make(chan struct{})
	go func() { p.cmd.Wait(); close(done) }() //nolint:errcheck // exit status irrelevant
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill() //nolint:errcheck // last resort
		<-done
	}
}

// metricsOf fetches /metrics.json and sums values by metric name (labelled
// series of one name collapse into their total).
func metricsOf(t *testing.T, addr string) map[string]int64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		t.Fatalf("metrics %s: %v", addr, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	var snap struct {
		Metrics []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics %s: %v", addr, err)
	}
	out := make(map[string]int64, len(snap.Metrics))
	for _, m := range snap.Metrics {
		out[m.Name] += m.Value
	}
	return out
}

// makeBase installs a patterned base image into the storage directory.
func makeBase(t *testing.T, dir, name string, content []byte) {
	t.Helper()
	st, err := backend.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(content))
	f := backend.NewMemFileSize(size)
	if err := backend.WriteFull(f, content, 0); err != nil {
		t.Fatal(err)
	}
	ns := core.NewNamespace("s", st)
	if err := core.CreateBase(ns, core.Locator{Store: "s", Name: name}, size, 12,
		qcow.RawSource{R: f, N: size}); err != nil {
		t.Fatalf("CreateBase %s: %v", name, err)
	}
}

const imageSize = 4 << 20

// TestClusterProvisioning is the end-to-end multi-node path over real
// processes: storage node → node A (cold warms + dedup manifests) → node B
// (manifest-first delta warm from A), then a restart of B warming the
// sibling image to prove delta-only transfer; finally the published cache is
// pulled off B's export and its content verified chunk by chunk.
func TestClusterProvisioning(t *testing.T) {
	// Sibling bases: v2 is v1 with the last eighth rewritten.
	v1 := make([]byte, imageSize)
	rand.New(rand.NewSource(1)).Read(v1)
	v2 := append([]byte{}, v1...)
	rand.New(rand.NewSource(2)).Read(v2[imageSize*7/8:])
	storageDir := t.TempDir()
	makeBase(t, storageDir, "v1.img", v1)
	makeBase(t, storageDir, "v2.img", v2)

	storage := start(t, "rblockd", "-addr", "127.0.0.1:0", "-dir", storageDir)
	storageAddr := storage.waitFor(`rblockd: exporting .* on ([0-9.:]+) \(`, 10*time.Second)

	// Node A: dedup on, no peers — both images cold-warm from storage.
	dirA := t.TempDir()
	a := start(t, "vmicached",
		"-dir", dirA, "-storage", storageAddr, "-dedup",
		"-export", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
		"-warm", "v1.img,v2.img")
	aExport := a.waitFor(`vmicached: exporting published caches on ([0-9.:]+)`, 10*time.Second)
	aMetrics := a.waitFor(`vmicached: metrics on http://([0-9.:]+)/metrics`, 10*time.Second)
	a.waitFor(`v1\.img ready as (\S+)`, 60*time.Second)
	keyV2 := a.waitFor(`v2\.img ready as (\S+)`, 60*time.Second)

	am := metricsOf(t, aMetrics)
	if got := am["vmicache_cachemgr_cold_warms_total"]; got != 2 {
		t.Errorf("A cold warms = %d, want 2", got)
	}
	if got := am["vmicache_cachemgr_published_total"]; got != 2 {
		t.Errorf("A published = %d, want 2", got)
	}
	if got := am["vmicache_dedup_manifests"]; got != 2 {
		t.Errorf("A dedup manifests = %d, want 2", got)
	}
	if am["vmicache_dedup_shared_bytes"] == 0 {
		t.Error("A's sibling caches share no chunks")
	}
	if got := am["vmicache_dedup_ratio_percent"]; got < 30 {
		t.Errorf("A dedup ratio = %d%%, want >= 30%% for 7/8-identical siblings", got)
	}

	// Node B: peer of A — v1 must arrive manifest-first, not wholesale and
	// not from storage.
	dirB := t.TempDir()
	b := start(t, "vmicached",
		"-dir", dirB, "-storage", storageAddr, "-dedup",
		"-peers", aExport,
		"-export", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
		"-warm", "v1.img")
	bMetrics := b.waitFor(`vmicached: metrics on http://([0-9.:]+)/metrics`, 10*time.Second)
	b.waitFor(`v1\.img ready as (\S+)`, 60*time.Second)

	bm := metricsOf(t, bMetrics)
	if got := bm["vmicache_dedup_delta_warms_total"]; got != 1 {
		t.Errorf("B delta warms = %d, want 1", got)
	}
	if got := bm["vmicache_cachemgr_cold_warms_total"]; got != 0 {
		t.Errorf("B cold warms = %d, want 0", got)
	}
	if got := bm["vmicache_cachemgr_peer_fetches_total"]; got != 0 {
		t.Errorf("B wholesale peer fetches = %d, want 0 (manifest-first path)", got)
	}
	fullWire := bm["vmicache_dedup_delta_bytes_total"]
	if fullWire < imageSize {
		t.Errorf("B's cold pull moved %d bytes, below the image size %d", fullWire, imageSize)
	}
	b.stop()

	// B restarts and warms the sibling: its dedup store survives, so only
	// v2's delta should cross the wire.
	b2 := start(t, "vmicached",
		"-dir", dirB, "-storage", storageAddr, "-dedup",
		"-peers", aExport,
		"-export", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
		"-warm", "v2.img")
	b2Export := b2.waitFor(`vmicached: exporting published caches on ([0-9.:]+)`, 10*time.Second)
	b2Metrics := b2.waitFor(`vmicached: metrics on http://([0-9.:]+)/metrics`, 10*time.Second)
	b2.waitFor(`v2\.img ready as (\S+)`, 60*time.Second)

	b2m := metricsOf(t, b2Metrics)
	if got := b2m["vmicache_dedup_delta_warms_total"]; got != 1 {
		t.Errorf("B2 delta warms = %d, want 1", got)
	}
	deltaWire := b2m["vmicache_dedup_delta_bytes_total"]
	if deltaWire == 0 || deltaWire > imageSize/2 {
		t.Errorf("B2's sibling pull moved %d bytes, want (0, %d]: delta-only transfer", deltaWire, imageSize/2)
	}
	if b2m["vmicache_dedup_reused_bytes_total"] == 0 {
		t.Error("B2 reused nothing from its surviving dedup store")
	}

	// End to end across processes: fetch v2's manifest and a chunk from
	// B2's export over the chunk protocol, then pull the whole published
	// cache wholesale and verify the guest view against the pattern.
	c, err := rblock.Dial(b2Export, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	enc, err := c.FetchManifest(keyV2)
	if err != nil {
		t.Fatalf("FetchManifest(%s): %v", keyV2, err)
	}
	man, err := dedup.DecodeManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	comp, _, err := c.FetchChunk([rblock.HashLen]byte(man.Entries[0].Hash))
	if err != nil {
		t.Fatalf("FetchChunk: %v", err)
	}
	if _, err := dedup.DecodeBlob(man.Entries[0].Hash, comp); err != nil {
		t.Fatalf("fetched chunk fails verification: %v", err)
	}

	localDir := t.TempDir()
	local, err := backend.NewDirStore(localDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := backend.CopyFile(local, keyV2, rblock.RemoteStore{C: c}, keyV2); err != nil {
		t.Fatalf("wholesale pull of %s: %v", keyV2, err)
	}
	sc, err := rblock.Dial(storageAddr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close() //nolint:errcheck
	ns := core.NewNamespace("nodecache", local)
	ns.Register("storage", rblock.RemoteStore{C: sc})
	chain, err := core.OpenChain(ns, core.Locator{Store: "nodecache", Name: keyV2},
		core.ChainOpts{BackingReadOnly: true})
	if err != nil {
		t.Fatalf("opening fetched cache: %v", err)
	}
	defer chain.Close() //nolint:errcheck
	buf := make([]byte, imageSize)
	if err := backend.ReadFull(chain, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, v2) {
		t.Fatal("fetched cache serves wrong content")
	}
}
