package swarm

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// DefaultTrackerTTL is how long an announce keeps a peer listed.
const DefaultTrackerTTL = 15 * time.Second

// PeerInfo is one tracker entry: a peer's rblock export address and how many
// chunks of the image it advertised at its last announce (a map summary, not
// the map itself — fetchers pull the full bitmap from the peer directly).
type PeerInfo struct {
	Addr   string `json:"addr"`
	Chunks int64  `json:"chunks"`
}

// Tracker is the announce registry: peers warming or serving an image
// announce (image key, own address, chunk count) and receive the live peer
// list back. Liveness is TTL-based — an entry not refreshed within the TTL
// drops out on the next sweep. The struct is usable in-process (cluster
// experiments) and over HTTP via Handler (vmicached hosts it next to the
// metrics endpoint).
type Tracker struct {
	mu     sync.Mutex
	ttl    time.Duration
	now    func() time.Time
	images map[string]map[string]trackerEntry // key → addr → entry
}

type trackerEntry struct {
	deadline time.Time
	chunks   int64
}

// NewTracker returns a tracker with the given TTL (0 = DefaultTrackerTTL).
// now is the clock (nil = time.Now).
func NewTracker(ttl time.Duration, now func() time.Time) *Tracker {
	if ttl <= 0 {
		ttl = DefaultTrackerTTL
	}
	if now == nil {
		now = time.Now
	}
	return &Tracker{ttl: ttl, now: now, images: make(map[string]map[string]trackerEntry)}
}

// Announce registers (or refreshes) addr as a peer for key advertising
// chunks valid chunks, and returns the current live peer list, including the
// announcer itself — callers feed the list straight into Scheduler.SetMembers
// so every node's rendezvous view converges on the same set.
func (t *Tracker) Announce(key, addr string, chunks int64) []PeerInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	peers := t.images[key]
	if peers == nil {
		peers = make(map[string]trackerEntry)
		t.images[key] = peers
	}
	peers[addr] = trackerEntry{deadline: now.Add(t.ttl), chunks: chunks}
	out := make([]PeerInfo, 0, len(peers))
	for a, e := range peers {
		if e.deadline.Before(now) {
			delete(peers, a)
			continue
		}
		out = append(out, PeerInfo{Addr: a, Chunks: e.chunks})
	}
	return out
}

// Peers returns the live peer list for key without announcing.
func (t *Tracker) Peers(key string) []PeerInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	out := []PeerInfo{}
	for a, e := range t.images[key] {
		if e.deadline.Before(now) {
			delete(t.images[key], a)
			continue
		}
		out = append(out, PeerInfo{Addr: a, Chunks: e.chunks})
	}
	return out
}

// Handler exposes the tracker over HTTP:
//
//	GET /announce?key=K&addr=A&chunks=N → {"peers":[{"addr":...,"chunks":...}]}
//	GET /peers?key=K                    → same shape, no registration
func (t *Tracker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/announce", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		key, addr := q.Get("key"), q.Get("addr")
		if key == "" || addr == "" {
			http.Error(w, "key and addr required", http.StatusBadRequest)
			return
		}
		chunks, _ := strconv.ParseInt(q.Get("chunks"), 10, 64)
		writePeers(w, t.Announce(key, addr, chunks))
	})
	mux.HandleFunc("/peers", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "" {
			http.Error(w, "key required", http.StatusBadRequest)
			return
		}
		writePeers(w, t.Peers(key))
	})
	return mux
}

func writePeers(w http.ResponseWriter, peers []PeerInfo) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct { //nolint:errcheck // best-effort reply
		Peers []PeerInfo `json:"peers"`
	}{peers})
}

// TrackerClient talks to a remote tracker over HTTP.
type TrackerClient struct {
	// Base is the tracker's base URL, e.g. "http://10.0.0.1:9091".
	Base string
	// HTTP, when non-nil, overrides http.DefaultClient.
	HTTP *http.Client
}

// Announce registers with the remote tracker and returns the live peer list.
func (c *TrackerClient) Announce(key, addr string, chunks int64) ([]PeerInfo, error) {
	u := fmt.Sprintf("%s/announce?key=%s&addr=%s&chunks=%d",
		c.Base, url.QueryEscape(key), url.QueryEscape(addr), chunks)
	return c.get(u)
}

// Peers queries the live peer list without announcing.
func (c *TrackerClient) Peers(key string) ([]PeerInfo, error) {
	return c.get(fmt.Sprintf("%s/peers?key=%s", c.Base, url.QueryEscape(key)))
}

func (c *TrackerClient) get(u string) ([]PeerInfo, error) {
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // read-only body
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("swarm: tracker %s: %s: %s", u, resp.Status, b)
	}
	var out struct {
		Peers []PeerInfo `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("swarm: tracker response: %w", err)
	}
	return out.Peers, nil
}

// Announcer abstracts the tracker for the session: the HTTP client and the
// in-process Tracker both satisfy it (the latter via LocalAnnouncer).
type Announcer interface {
	Announce(key, addr string, chunks int64) ([]PeerInfo, error)
}

// LocalAnnouncer adapts an in-process Tracker to the Announcer interface —
// cluster experiments share one tracker struct without HTTP overhead.
type LocalAnnouncer struct{ T *Tracker }

// Announce implements Announcer.
func (l LocalAnnouncer) Announce(key, addr string, chunks int64) ([]PeerInfo, error) {
	return l.T.Announce(key, addr, chunks), nil
}

var _ Announcer = (*TrackerClient)(nil)
var _ Announcer = LocalAnnouncer{}
