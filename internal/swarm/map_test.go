package swarm

import (
	"bytes"
	"errors"
	"testing"
)

func TestMapBasics(t *testing.T) {
	m, err := NewMap(1<<20+5, 16) // 17 chunks, last one 5 bytes
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NumChunks(); got != 17 {
		t.Fatalf("NumChunks = %d, want 17", got)
	}
	if m.Has(0) || m.Has(16) {
		t.Fatal("fresh map should be empty")
	}
	m.Set(0)
	m.Set(16)
	if !m.Has(0) || !m.Has(16) || m.Has(1) {
		t.Fatal("Set/Has mismatch")
	}
	if got := m.Count(); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	// Out of range is invalid, and Set ignores it.
	if m.Has(17) || m.Has(-1) {
		t.Fatal("out-of-range chunk reported valid")
	}
	m.Set(17)
	m.Set(-1)
	if got := m.Count(); got != 2 {
		t.Fatalf("Count after out-of-range Set = %d, want 2", got)
	}
	// Tail chunk span is clamped.
	off, n := m.ChunkSpan(16)
	if off != 1<<20 || n != 5 {
		t.Fatalf("ChunkSpan(16) = (%d, %d), want (%d, 5)", off, n, 1<<20)
	}
	off, n = m.ChunkSpan(0)
	if off != 0 || n != 1<<16 {
		t.Fatalf("ChunkSpan(0) = (%d, %d), want (0, %d)", off, n, 1<<16)
	}
}

func TestMapEncodeDecode(t *testing.T) {
	m, _ := NewMap(3<<16, 16)
	m.Set(1)
	enc := m.Encode()
	got, err := DecodeMap(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != m.Size || got.ChunkBits != m.ChunkBits || !bytes.Equal(got.Bits, m.Bits) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, m)
	}
	// Decoded map is a copy, not an alias.
	enc[mapHeaderLen] = 0xff
	if got.Bits[0] == 0xff {
		t.Fatal("DecodeMap aliased the input")
	}
}

func TestMapDecodeErrors(t *testing.T) {
	m, _ := NewMap(1<<20, 16)
	good := m.Encode()

	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"short", good[:4], ErrBadMap},
		{"truncated bitmap", good[:len(good)-1], ErrBadMap},
		{"oversized bitmap", append(append([]byte{}, good...), 0), ErrBadMap},
		{"bad chunk bits", func() []byte {
			b := append([]byte{}, good...)
			b[8] = 42
			return b
		}(), ErrBadChunkBits},
		{"zero size", func() []byte {
			b := append([]byte{}, good...)
			for i := 0; i < 8; i++ {
				b[i] = 0
			}
			return b
		}(), ErrBadSize},
	}
	for _, tc := range cases {
		if _, err := DecodeMap(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestNewMapErrors(t *testing.T) {
	if _, err := NewMap(0, 16); !errors.Is(err, ErrBadSize) {
		t.Errorf("size 0: %v", err)
	}
	if _, err := NewMap(1<<20, 8); !errors.Is(err, ErrBadChunkBits) {
		t.Errorf("chunkBits 8: %v", err)
	}
	if _, err := NewMap(1<<20, 31); !errors.Is(err, ErrBadChunkBits) {
		t.Errorf("chunkBits 31: %v", err)
	}
}

func TestEncodeBitmapMatchesMapEncode(t *testing.T) {
	m, _ := NewMap(5<<16, 16)
	m.Set(2)
	m.Set(4)
	if !bytes.Equal(EncodeBitmap(m.Size, m.ChunkBits, m.Bits), m.Encode()) {
		t.Fatal("EncodeBitmap differs from Map.Encode")
	}
}
