package swarm

import (
	"io"
	"sync"
	"sync/atomic"
)

// BlockSource matches qcow.BlockSource structurally, so the swarm package
// does not import the image format: anything with full-read semantics and a
// virtual size.
type BlockSource interface {
	ReadAt(p []byte, off int64) (int, error)
	Size() int64
}

// Source is the multi-source backing installed behind a warming cache image
// (qcow Image.SetBacking): every backing read the copy-on-read fill path
// issues — whether triggered by a swarm worker pulling its assigned chunk or
// by a concurrent guest demand miss — lands here and is routed to a peer or
// to the origin (storage node). Because the routing sits *under* the
// singleflight fill, a swarm fetch and a demand miss for the same cluster
// still cost exactly one source read.
//
// Worker-assigned chunks read from exactly the assigned source; a failure
// propagates up so the scheduler can reassign (the retry policy stays in one
// place). Demand reads with no assignment fail over internally — least-loaded
// advertising peer, then the remaining peers, then origin — because a guest
// read must succeed now, not after a scheduling round.
type Source struct {
	origin BlockSource
	sched  *Scheduler
	sess   *Session
	cbits  uint8

	mu       sync.Mutex
	assigned map[int64]PeerID

	bytesPeer    atomic.Int64
	bytesStorage atomic.Int64
}

// Size implements BlockSource: the virtual size of the origin.
func (s *Source) Size() int64 { return s.origin.Size() }

// BytesPeer reports payload bytes actually fetched from peers through this
// source (assigned and demand reads both).
func (s *Source) BytesPeer() int64 { return s.bytesPeer.Load() }

// BytesStorage reports payload bytes actually fetched from the origin.
func (s *Source) BytesStorage() int64 { return s.bytesStorage.Load() }

// assign routes subsequent backing reads of chunk to peer (Storage for the
// origin) until unassign.
func (s *Source) assign(chunk int64, peer PeerID) {
	s.mu.Lock()
	s.assigned[chunk] = peer
	s.mu.Unlock()
}

func (s *Source) unassign(chunk int64) {
	s.mu.Lock()
	delete(s.assigned, chunk)
	s.mu.Unlock()
}

// ReadAt implements BlockSource. The fill path always issues full reads
// within the backing size; spans crossing chunk boundaries are split so each
// piece uses its own chunk's routing.
func (s *Source) ReadAt(p []byte, off int64) (int, error) {
	cs := int64(1) << s.cbits
	done := 0
	for done < len(p) {
		pos := off + int64(done)
		chunk := pos >> s.cbits
		n := len(p) - done
		if rem := (chunk+1)*cs - pos; int64(n) > rem {
			n = int(rem)
		}
		if err := s.readChunkPiece(p[done:done+n], pos, chunk); err != nil {
			return done, err
		}
		done += n
	}
	return done, nil
}

func (s *Source) readChunkPiece(p []byte, off, chunk int64) error {
	s.mu.Lock()
	peer, isAssigned := s.assigned[chunk]
	s.mu.Unlock()
	if isAssigned {
		if peer == Storage {
			return s.readOrigin(p, off)
		}
		if err := s.sess.readFromPeer(peer, p, off); err != nil {
			return err
		}
		s.bytesPeer.Add(int64(len(p)))
		return nil
	}
	// Demand read: fail over across advertising peers, then origin.
	var exclude map[PeerID]bool
	for {
		id, ok := s.sched.PeerFor(chunk, exclude)
		if !ok {
			return s.readOrigin(p, off)
		}
		if err := s.sess.readFromPeer(id, p, off); err == nil {
			s.bytesPeer.Add(int64(len(p)))
			return nil
		}
		if exclude == nil {
			exclude = make(map[PeerID]bool)
		}
		exclude[id] = true
	}
}

func (s *Source) readOrigin(p []byte, off int64) error {
	n, err := s.origin.ReadAt(p, off)
	if err != nil {
		return err
	}
	if n < len(p) {
		return io.ErrUnexpectedEOF
	}
	s.bytesStorage.Add(int64(n))
	return nil
}
