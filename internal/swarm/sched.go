package swarm

import (
	"slices"
	"sort"
	"sync"
	"time"
)

// PeerID identifies a peer inside one scheduler — in practice the peer's
// rblock export address, which doubles as its member name for rendezvous
// hashing.
type PeerID string

// Storage is the assignment target for chunks fetched from the origin
// (storage node) instead of a peer.
const Storage PeerID = ""

// SchedConfig tunes the chunk scheduler. The zero value gets sane defaults.
type SchedConfig struct {
	// PeerInflight caps chunks in flight to one peer (default 4).
	PeerInflight int
	// PeerRate limits bytes/s drawn from one peer via a token bucket
	// (0 = unlimited). The bucket holds at most one second of rate.
	PeerRate int64
	// PrimaryHold delays the first storage assignment after the scheduler
	// starts, giving tracker membership time to converge in a flash crowd
	// so rendezvous primaries are agreed upon before anyone hits storage
	// (0 = no hold).
	PrimaryHold time.Duration
	// StorageFallbackAfter bounds how long a chunk may starve — pending,
	// no live peer advertising it, this node not its rendezvous primary —
	// before the node fetches it from storage anyway (liveness when the
	// primary died). Default 2s.
	StorageFallbackAfter time.Duration
	// MaxPeerFailures marks a peer dead after this many consecutive
	// failures (default 3).
	MaxPeerFailures int
	// RetryWait is the poll interval suggested when nothing is assignable
	// but the transfer is not finished (default 25ms).
	RetryWait time.Duration
}

func (c *SchedConfig) setDefaults() {
	if c.PeerInflight <= 0 {
		c.PeerInflight = 4
	}
	if c.StorageFallbackAfter <= 0 {
		c.StorageFallbackAfter = 2 * time.Second
	}
	if c.MaxPeerFailures <= 0 {
		c.MaxPeerFailures = 3
	}
	if c.RetryWait <= 0 {
		c.RetryWait = 25 * time.Millisecond
	}
}

// Assignment is one unit of scheduled work: fetch chunk (virtual bytes
// [Off, Off+N)) from Peer, or from the storage node when Peer == Storage.
type Assignment struct {
	Chunk int64
	Off   int64
	N     int64
	Peer  PeerID
}

type chunkPhase uint8

const (
	chunkPending chunkPhase = iota
	chunkAssigned
	chunkDone
)

type chunkState struct {
	phase chunkPhase
	// failed records peers that failed this chunk; they are not retried
	// for it unless every other option is exhausted.
	failed map[PeerID]bool
	// starvedSince, when non-zero, is when the chunk was first seen
	// pending with no live peer advertising it and this node not its
	// primary; feeds StorageFallbackAfter.
	starvedSince time.Time
}

type peerState struct {
	m        *Map // last advertised map (nil until the first UpdatePeer)
	inflight int
	failures int // consecutive; reset on success
	dead     bool

	// Token bucket for PeerRate: tokens available at lastRefill.
	tokens     float64
	lastRefill time.Time
}

// Scheduler decides which chunk to fetch next and from where. It is pure
// bookkeeping — no I/O, no goroutines — with an injected clock, so its
// policies (rarest-first, rate limits, reassignment, rendezvous storage
// fallback) are unit-testable without time dependence. All methods are
// safe for concurrent use.
type Scheduler struct {
	mu     sync.Mutex
	cfg    SchedConfig
	key    string // image key: the rendezvous hash salt
	self   string // this node's member name (its peer-export address)
	size   int64
	cbits  uint8
	chunks []chunkState
	todo   int64 // chunks not yet done
	peers  map[PeerID]*peerState
	// members is the current rendezvous view (peer addresses including
	// self when announced), kept sorted; empty means no tracker — storage
	// fallback is immediate for unavailable chunks.
	members []string
	// prim memoizes isPrimary per chunk (primUnknown until computed),
	// invalidated when the membership view changes: the rendezvous hash
	// walks every member, and recomputing it for every chunk on every
	// scheduler poll is O(chunks × members × poll rate) — enough to
	// starve a whole crowd of CPU. Allocated lazily on first use.
	prim  []uint8
	now   func() time.Time
	start time.Time

	// wake is signalled (non-blocking) whenever state changes in a way
	// that may unblock Next: completions, failures, map updates, peer
	// arrival. Workers select on it instead of busy-polling.
	wake chan struct{}

	// counters (guarded by mu; snapshot via Counts)
	cnt SchedCounts
}

// SchedCounts snapshots the scheduler's outcome counters.
type SchedCounts struct {
	ChunksPeer    int64 // chunks completed from a peer
	ChunksStorage int64 // chunks completed from storage
	BytesPeer     int64
	BytesStorage  int64
	Reassigned    int64 // failed chunks put back for another source
	Done          int64
	Total         int64
}

// NewScheduler plans the fetch of a size-byte image in 1<<chunkBits chunks.
// have, when non-nil, marks chunks already locally valid (skipped). key salts
// the rendezvous hash so different images spread their primaries differently;
// self is this node's member name. now is the clock (nil = time.Now).
func NewScheduler(key, self string, size int64, chunkBits uint8, have *Map, cfg SchedConfig, now func() time.Time) (*Scheduler, error) {
	if size <= 0 {
		return nil, ErrBadSize
	}
	if chunkBits < MinChunkBits || chunkBits > MaxChunkBits {
		return nil, ErrBadChunkBits
	}
	cfg.setDefaults()
	if now == nil {
		now = time.Now
	}
	cs := int64(1) << chunkBits
	n := (size + cs - 1) / cs
	s := &Scheduler{
		cfg:    cfg,
		key:    key,
		self:   self,
		size:   size,
		cbits:  chunkBits,
		chunks: make([]chunkState, n),
		todo:   n,
		peers:  make(map[PeerID]*peerState),
		now:    now,
		wake:   make(chan struct{}, 1),
	}
	s.start = now()
	s.cnt.Total = n
	if have != nil {
		for c := int64(0); c < n; c++ {
			if have.Has(c) {
				s.chunks[c].phase = chunkDone
				s.todo--
				s.cnt.Done++
			}
		}
	}
	return s, nil
}

// Wake returns the channel signalled on state changes; workers select on it
// alongside the retry timer suggested by Next.
func (s *Scheduler) Wake() <-chan struct{} { return s.wake }

func (s *Scheduler) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// newPeer builds a peer state with a full token bucket (a fresh peer can
// serve its first second of rate immediately). Caller holds s.mu.
func (s *Scheduler) newPeer() *peerState {
	return &peerState{lastRefill: s.now(), tokens: float64(s.cfg.PeerRate)}
}

// AddPeer registers a peer; until its first UpdatePeer it advertises nothing.
func (s *Scheduler) AddPeer(id PeerID) {
	s.mu.Lock()
	if _, ok := s.peers[id]; !ok {
		s.peers[id] = s.newPeer()
	}
	s.mu.Unlock()
	s.signal()
}

// UpdatePeer installs a peer's freshly fetched chunk map, registering the
// peer if needed and reviving a dead one (a working map fetch proves life).
func (s *Scheduler) UpdatePeer(id PeerID, m *Map) {
	s.mu.Lock()
	p, ok := s.peers[id]
	if !ok {
		p = s.newPeer()
		s.peers[id] = p
	}
	p.m = m
	p.dead = false
	p.failures = 0
	// Fresh availability can unstarve chunks.
	for c := range s.chunks {
		if s.chunks[c].phase == chunkPending && m.Has(int64(c)) {
			s.chunks[c].starvedSince = time.Time{}
		}
	}
	s.mu.Unlock()
	s.signal()
}

// RemovePeer drops a peer entirely (connection dead). Its in-flight chunks
// were already assigned; their workers will Fail them back individually.
func (s *Scheduler) RemovePeer(id PeerID) {
	s.mu.Lock()
	delete(s.peers, id)
	s.mu.Unlock()
	s.signal()
}

// SetMembers installs the rendezvous membership view (tracker-announced peer
// addresses, including this node's own). The view is held sorted so an
// unchanged membership arriving in a different order does not invalidate the
// memoized primary assignments.
func (s *Scheduler) SetMembers(members []string) {
	sorted := SortedMembers(members)
	s.mu.Lock()
	if !slices.Equal(s.members, sorted) {
		s.members = sorted
		clear(s.prim)
	}
	s.mu.Unlock()
	s.signal()
}

// refill tops up a peer's token bucket to the current time.
func (s *Scheduler) refill(p *peerState, now time.Time) {
	if s.cfg.PeerRate <= 0 {
		return
	}
	max := float64(s.cfg.PeerRate) // one second of burst
	p.tokens += now.Sub(p.lastRefill).Seconds() * float64(s.cfg.PeerRate)
	if p.tokens > max {
		p.tokens = max
	}
	p.lastRefill = now
}

// Next picks the next assignment. ok=false means nothing is assignable right
// now; retry after wait (wait == 0 only when the transfer is finished).
// Selection is rarest-first: among pending chunks served by at least one
// eligible peer, the one advertised by the fewest live peers wins, breaking
// ties toward the least-loaded peer. Chunks no peer advertises go to storage,
// but — when a membership view is installed — only on the node that is the
// chunk's rendezvous primary, so a flash crowd fetches each chunk from
// storage roughly once; non-primaries wait for the swarm and use
// StorageFallbackAfter as the liveness escape hatch.
func (s *Scheduler) Next() (a Assignment, ok bool, wait time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.todo == 0 {
		return Assignment{}, false, 0
	}
	now := s.now()

	type cand struct {
		chunk int64
		avail int
		peer  PeerID
	}
	best := cand{avail: 1 << 30}
	bestLoad := 1 << 30
	var bestStorage int64 = -1
	minWait := s.cfg.RetryWait

	inHold := s.cfg.PrimaryHold > 0 && now.Sub(s.start) < s.cfg.PrimaryHold
	if inHold {
		if d := s.cfg.PrimaryHold - now.Sub(s.start); d < minWait {
			minWait = d
		}
	}

	for c := range s.chunks {
		st := &s.chunks[c]
		if st.phase != chunkPending {
			continue
		}
		chunk := int64(c)
		// avail counts every live advertiser (the rarest-first rank);
		// usable excludes peers that already failed this chunk — when it
		// hits zero the chunk falls through to the storage path even
		// though someone still advertises it.
		avail, usable := 0, 0
		var pick PeerID
		pickLoad := 1 << 30
		for id, p := range s.peers {
			if p.dead || p.m == nil || !p.m.Has(chunk) {
				continue
			}
			avail++
			if st.failed[id] {
				continue
			}
			usable++
			if p.inflight >= s.cfg.PeerInflight {
				continue
			}
			if s.cfg.PeerRate > 0 {
				s.refill(p, now)
				_, n := s.chunkSpan(chunk)
				if p.tokens < float64(n) {
					d := time.Duration((float64(n) - p.tokens) / float64(s.cfg.PeerRate) * float64(time.Second))
					if d > 0 && d < minWait {
						minWait = d
					}
					continue
				}
			}
			if p.inflight < pickLoad {
				pick, pickLoad = id, p.inflight
			}
		}
		if usable > 0 {
			st.starvedSince = time.Time{}
			if pick != "" && (avail < best.avail || (avail == best.avail && pickLoad < bestLoad)) {
				best = cand{chunk: chunk, avail: avail, peer: pick}
				bestLoad = pickLoad
			}
			continue
		}
		// No live peer advertises this chunk: storage candidate.
		if inHold {
			continue
		}
		if len(s.members) > 1 && !s.isPrimary(chunk) {
			if st.starvedSince.IsZero() {
				st.starvedSince = now
			}
			starved := now.Sub(st.starvedSince)
			if starved < s.cfg.StorageFallbackAfter {
				if d := s.cfg.StorageFallbackAfter - starved; d < minWait {
					minWait = d
				}
				continue
			}
		}
		if bestStorage < 0 {
			bestStorage = chunk
		}
	}

	if best.avail < 1<<30 {
		st := &s.chunks[best.chunk]
		st.phase = chunkAssigned
		p := s.peers[best.peer]
		p.inflight++
		if s.cfg.PeerRate > 0 {
			_, n := s.chunkSpan(best.chunk)
			p.tokens -= float64(n)
		}
		off, n := s.chunkSpan(best.chunk)
		return Assignment{Chunk: best.chunk, Off: off, N: n, Peer: best.peer}, true, 0
	}
	if bestStorage >= 0 {
		s.chunks[bestStorage].phase = chunkAssigned
		off, n := s.chunkSpan(bestStorage)
		return Assignment{Chunk: bestStorage, Off: off, N: n, Peer: Storage}, true, 0
	}
	if minWait <= 0 {
		minWait = time.Millisecond
	}
	return Assignment{}, false, minWait
}

// Complete reports a fetched assignment. served names the source class that
// actually delivered the bytes (the assigned peer, another peer after
// internal failover, or Storage).
func (s *Scheduler) Complete(a Assignment, served PeerID) {
	s.mu.Lock()
	st := &s.chunks[a.Chunk]
	if st.phase != chunkDone {
		if st.phase == chunkAssigned || st.phase == chunkPending {
			st.phase = chunkDone
			s.todo--
			s.cnt.Done++
			if served == Storage {
				s.cnt.ChunksStorage++
				s.cnt.BytesStorage += a.N
			} else {
				s.cnt.ChunksPeer++
				s.cnt.BytesPeer += a.N
			}
		}
	}
	if a.Peer != Storage {
		if p, ok := s.peers[a.Peer]; ok {
			if p.inflight > 0 {
				p.inflight--
			}
			p.failures = 0
		}
	}
	s.mu.Unlock()
	s.signal()
}

// Fail reports a failed assignment: the chunk returns to pending (counted as
// a reassignment), the peer's failure streak advances, and a peer that keeps
// failing is marked dead so rarest-first stops considering it.
func (s *Scheduler) Fail(a Assignment) {
	s.mu.Lock()
	st := &s.chunks[a.Chunk]
	if st.phase == chunkAssigned {
		st.phase = chunkPending
		st.starvedSince = time.Time{}
		s.cnt.Reassigned++
	}
	if a.Peer != Storage {
		if st.failed == nil {
			st.failed = make(map[PeerID]bool)
		}
		st.failed[a.Peer] = true
		if p, ok := s.peers[a.Peer]; ok {
			if p.inflight > 0 {
				p.inflight--
			}
			p.failures++
			if p.failures >= s.cfg.MaxPeerFailures {
				p.dead = true
			}
		}
	}
	s.mu.Unlock()
	s.signal()
}

// Finished reports whether every chunk is done.
func (s *Scheduler) Finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.todo == 0
}

// Remaining reports how many chunks are not yet done.
func (s *Scheduler) Remaining() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.todo
}

// Counts snapshots the outcome counters.
func (s *Scheduler) Counts() SchedCounts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cnt
}

// PeerFor picks a serving peer for a demand read of chunk c — a guest miss
// arriving outside any worker assignment. It prefers the least-loaded live
// peer advertising the chunk and charges no tokens (demand misses must not
// stall behind the swarm's own rate limits); exclude lists peers that
// already failed this read. ok=false means no peer can serve it (caller
// falls through to storage).
func (s *Scheduler) PeerFor(c int64, exclude map[PeerID]bool) (PeerID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var pick PeerID
	load := 1 << 30
	found := false
	for id, p := range s.peers {
		if p.dead || p.m == nil || !p.m.Has(c) || exclude[id] {
			continue
		}
		if p.inflight < load {
			pick, load, found = id, p.inflight, true
		}
	}
	return pick, found
}

// chunkSpan is ChunkSpan without a Map value.
func (s *Scheduler) chunkSpan(c int64) (off, n int64) {
	off = c << s.cbits
	n = int64(1) << s.cbits
	if off+n > s.size {
		n = s.size - off
	}
	return off, n
}

// prim cache states: a chunk's primary verdict under the current view.
const (
	primUnknown = iota
	primYes
	primNo
)

// isPrimary reports whether self wins the rendezvous hash for chunk c over
// the current membership view, memoized until the view changes. Caller
// holds s.mu.
func (s *Scheduler) isPrimary(c int64) bool {
	if s.self == "" {
		return false
	}
	if s.prim == nil {
		s.prim = make([]uint8, len(s.chunks))
	}
	if v := s.prim[c]; v != primUnknown {
		return v == primYes
	}
	ok := rendezvousOwner(s.members, s.key, c) == s.self
	if ok {
		s.prim[c] = primYes
	} else {
		s.prim[c] = primNo
	}
	return ok
}

// rendezvousOwner picks the member with the highest FNV-1a hash of
// (member, key, chunk) — highest-random-weight hashing, so each chunk has
// exactly one owner under any shared membership view and ownership moves
// minimally as members come and go. Ties break toward the lexically
// smallest member for determinism.
func rendezvousOwner(members []string, key string, chunk int64) string {
	var owner string
	var best uint64
	for _, m := range members {
		v := rendezvousHash(m, key, chunk)
		if owner == "" || v > best || (v == best && m < owner) {
			owner, best = m, v
		}
	}
	return owner
}

// rendezvousHash is FNV-1a over member || 0 || key || chunk (little-endian),
// inlined so the per-(member, chunk) score costs no allocation — this sits on
// the scheduler's hot path for every membership change.
func rendezvousHash(member, key string, chunk int64) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(member); i++ {
		h = (h ^ uint64(member[i])) * prime64
	}
	h = (h ^ 0) * prime64 // separator byte
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * prime64
	}
	for i := 0; i < 8; i++ {
		h = (h ^ uint64(byte(chunk>>(8*i)))) * prime64
	}
	return h
}

// SortedMembers returns a copy of members, sorted — a stable identity for
// logs and tests.
func SortedMembers(members []string) []string {
	out := append([]string(nil), members...)
	sort.Strings(out)
	return out
}
