package swarm

import (
	"net/http/httptest"
	"sort"
	"testing"
	"time"
)

func peerAddrs(peers []PeerInfo) []string {
	out := make([]string, len(peers))
	for i, p := range peers {
		out[i] = p.Addr
	}
	sort.Strings(out)
	return out
}

func TestTrackerAnnounceAndTTL(t *testing.T) {
	clk := newClock()
	tr := NewTracker(10*time.Second, clk.Now)

	got := tr.Announce("img", "n1:1", 5)
	if len(got) != 1 || got[0].Addr != "n1:1" || got[0].Chunks != 5 {
		t.Fatalf("first announce = %+v", got)
	}
	clk.Advance(5 * time.Second)
	got = tr.Announce("img", "n2:1", 0)
	if addrs := peerAddrs(got); len(addrs) != 2 || addrs[0] != "n1:1" || addrs[1] != "n2:1" {
		t.Fatalf("second announce sees %v", addrs)
	}
	// n1 never refreshes: at t=11s it has expired, n2 is still live.
	clk.Advance(6 * time.Second)
	got = tr.Peers("img")
	if addrs := peerAddrs(got); len(addrs) != 1 || addrs[0] != "n2:1" {
		t.Fatalf("after TTL expiry: %v", addrs)
	}
	// Separate images do not mix.
	if p := tr.Peers("other"); len(p) != 0 {
		t.Fatalf("unknown image has peers: %v", p)
	}
}

func TestTrackerAnnounceRefreshesTTL(t *testing.T) {
	clk := newClock()
	tr := NewTracker(10*time.Second, clk.Now)
	tr.Announce("img", "n1:1", 0)
	for i := 0; i < 5; i++ {
		clk.Advance(8 * time.Second)
		if got := tr.Announce("img", "n1:1", int64(i)); len(got) != 1 {
			t.Fatalf("refresh %d lost the entry", i)
		}
	}
}

func TestTrackerHTTP(t *testing.T) {
	tr := NewTracker(10*time.Second, nil)
	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()

	c := &TrackerClient{Base: srv.URL}
	peers, err := c.Announce("img.vmic", "10.0.0.1:7000", 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 1 || peers[0].Addr != "10.0.0.1:7000" || peers[0].Chunks != 12 {
		t.Fatalf("announce reply = %+v", peers)
	}
	peers, err = c.Peers("img.vmic")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 1 {
		t.Fatalf("peers reply = %+v", peers)
	}
	// Missing parameters are rejected.
	if _, err := c.Announce("", "x", 0); err == nil {
		t.Fatal("announce without key succeeded")
	}
	if _, err := c.Peers(""); err == nil {
		t.Fatal("peers without key succeeded")
	}
}
