// Package swarm implements chunk-level multi-source cache distribution: the
// BitTorrent-style layer that lets a flash crowd of nodes warm the same cache
// from each other instead of serialising on the storage node or on whichever
// single peer warmed first.
//
// The unit of exchange is a chunk — a fixed power-of-two span of the image's
// *virtual* address space. Transfers never ship container bytes: every node
// warms its cache in its own order, so physical layouts differ, but the
// virtual address space is shared by construction. Each node advertises which
// chunks it can serve locally as a compact bitmap (Map, exported over the
// rblock OpMap request), refreshed as its own cache fills, so a cache is a
// useful source while it is still warming. Cluster validity is monotone
// during a warm — fills only add clusters, sub-cluster words only gain bits —
// so a stale map is a safe lower bound: acting on it can under-fetch, never
// read a range the server would have to fault in from its own backing.
//
// The fetching side runs a Scheduler (rarest-first selection, per-peer
// in-flight and byte/s limits, failed-chunk reassignment, rendezvous-hashed
// storage fallback) driven by a Session whose workers pull assigned chunks
// through the cache's ordinary copy-on-read fill path via a Source installed
// as the image's backing — a swarm fetch and a concurrent guest demand miss
// share the same singleflight fill and never duplicate a backing read.
package swarm

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

// Chunk-size bounds for the wire format: 512 B to 1 GiB.
const (
	MinChunkBits = 9
	MaxChunkBits = 30
)

// Map errors.
var (
	ErrBadMap       = errors.New("swarm: malformed chunk map")
	ErrBadChunkBits = errors.New("swarm: chunk bits out of range [9,30]")
	ErrBadSize      = errors.New("swarm: map size must be positive")
)

// Map is a chunk-validity bitmap over an image's virtual address space: bit i
// (bit i&7 of byte i>>3) covers virtual bytes [i<<ChunkBits, min((i+1)<<
// ChunkBits, Size)).
type Map struct {
	Size      int64  // virtual size in bytes
	ChunkBits uint8  // chunk size = 1 << ChunkBits
	Bits      []byte // one bit per chunk, (NumChunks()+7)/8 bytes
}

// NewMap returns an all-invalid map for a size-byte image.
func NewMap(size int64, chunkBits uint8) (*Map, error) {
	if size <= 0 {
		return nil, ErrBadSize
	}
	if chunkBits < MinChunkBits || chunkBits > MaxChunkBits {
		return nil, ErrBadChunkBits
	}
	m := &Map{Size: size, ChunkBits: chunkBits}
	m.Bits = make([]byte, (m.NumChunks()+7)/8)
	return m, nil
}

// ChunkSize reports the chunk size in bytes.
func (m *Map) ChunkSize() int64 { return 1 << m.ChunkBits }

// NumChunks reports how many chunks cover the image.
func (m *Map) NumChunks() int64 {
	cs := m.ChunkSize()
	return (m.Size + cs - 1) / cs
}

// Has reports whether chunk c is valid. Out-of-range chunks are invalid.
func (m *Map) Has(c int64) bool {
	if c < 0 || c >= m.NumChunks() {
		return false
	}
	return m.Bits[c>>3]&(1<<(c&7)) != 0
}

// Set marks chunk c valid.
func (m *Map) Set(c int64) {
	if c >= 0 && c < m.NumChunks() {
		m.Bits[c>>3] |= 1 << (c & 7)
	}
}

// Count reports how many chunks are valid.
func (m *Map) Count() int64 {
	var n int64
	for _, b := range m.Bits {
		n += int64(bits.OnesCount8(b))
	}
	return n
}

// ChunkSpan reports the virtual byte span of chunk c, clamped to the image
// size (the last chunk may be short).
func (m *Map) ChunkSpan(c int64) (off, n int64) {
	off = c << m.ChunkBits
	n = m.ChunkSize()
	if off+n > m.Size {
		n = m.Size - off
	}
	return off, n
}

// mapHeaderLen is the encoded header: u64 size | u8 chunkBits.
const mapHeaderLen = 9

// Encode serialises the map: u64 size (big-endian) | u8 chunkBits | bitmap.
func (m *Map) Encode() []byte {
	out := make([]byte, mapHeaderLen+len(m.Bits))
	binary.BigEndian.PutUint64(out, uint64(m.Size))
	out[8] = m.ChunkBits
	copy(out[mapHeaderLen:], m.Bits)
	return out
}

// EncodeBitmap wraps an externally produced bitmap (qcow's ValidChunkBitmap)
// in the wire header without copying validation state.
func EncodeBitmap(size int64, chunkBits uint8, bitmap []byte) []byte {
	return (&Map{Size: size, ChunkBits: chunkBits, Bits: bitmap}).Encode()
}

// DecodeMap parses an encoded map, validating the header and bitmap length.
func DecodeMap(b []byte) (*Map, error) {
	if len(b) < mapHeaderLen {
		return nil, ErrBadMap
	}
	size := int64(binary.BigEndian.Uint64(b))
	chunkBits := b[8]
	if size <= 0 {
		return nil, ErrBadSize
	}
	if chunkBits < MinChunkBits || chunkBits > MaxChunkBits {
		return nil, ErrBadChunkBits
	}
	m := &Map{Size: size, ChunkBits: chunkBits}
	nbytes := (m.NumChunks() + 7) / 8
	if int64(len(b)-mapHeaderLen) != nbytes {
		return nil, ErrBadMap
	}
	m.Bits = make([]byte, nbytes)
	copy(m.Bits, b[mapHeaderLen:])
	return m, nil
}
