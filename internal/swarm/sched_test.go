package swarm

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable clock for deterministic scheduler tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// mapOf builds a map over n 64 KiB chunks with the listed chunks valid.
func mapOf(n int64, valid ...int64) *Map {
	m, err := NewMap(n<<16, 16)
	if err != nil {
		panic(err)
	}
	for _, c := range valid {
		m.Set(c)
	}
	return m
}

func newSched(t *testing.T, nchunks int64, cfg SchedConfig, clk *fakeClock) *Scheduler {
	t.Helper()
	s, err := NewScheduler("img.vmic", "self:1", nchunks<<16, 16, nil, cfg, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustNext(t *testing.T, s *Scheduler) Assignment {
	t.Helper()
	a, ok, _ := s.Next()
	if !ok {
		t.Fatalf("Next: nothing assignable (remaining %d)", s.Remaining())
	}
	return a
}

func TestSchedRarestFirst(t *testing.T) {
	clk := newClock()
	s := newSched(t, 4, SchedConfig{}, clk)
	// Peer A holds everything; peer B only chunk 3. Chunks 0-2 have
	// availability 1, chunk 3 availability 2 — the rare chunks go first.
	s.UpdatePeer("a", mapOf(4, 0, 1, 2, 3))
	s.UpdatePeer("b", mapOf(4, 3))

	order := make([]int64, 0, 4)
	byPeer := map[PeerID][]int64{}
	for i := 0; i < 4; i++ {
		a := mustNext(t, s)
		order = append(order, a.Chunk)
		byPeer[a.Peer] = append(byPeer[a.Peer], a.Chunk)
		s.Complete(a, a.Peer)
	}
	if order[3] != 3 {
		t.Fatalf("widely-held chunk 3 fetched before rare chunks: order %v", order)
	}
	for _, c := range byPeer["b"] {
		if c != 3 {
			t.Fatalf("peer b assigned chunk %d it does not hold", c)
		}
	}
	if !s.Finished() {
		t.Fatal("not finished after all chunks completed")
	}
	cnt := s.Counts()
	if cnt.ChunksPeer != 4 || cnt.ChunksStorage != 0 {
		t.Fatalf("counts = %+v, want 4 peer chunks", cnt)
	}
}

func TestSchedPeerInflightCap(t *testing.T) {
	clk := newClock()
	s := newSched(t, 4, SchedConfig{PeerInflight: 2}, clk)
	s.UpdatePeer("a", mapOf(4, 0, 1, 2, 3))

	a1 := mustNext(t, s)
	a2 := mustNext(t, s)
	if _, ok, wait := s.Next(); ok {
		t.Fatal("third assignment exceeded PeerInflight=2")
	} else if wait <= 0 {
		t.Fatal("blocked Next must suggest a positive wait")
	}
	s.Complete(a1, a1.Peer)
	a3 := mustNext(t, s)
	if a3.Peer != "a" {
		t.Fatalf("assignment went to %q, want a", a3.Peer)
	}
	s.Complete(a2, a2.Peer)
	s.Complete(a3, a3.Peer)
	mustNext(t, s)
}

func TestSchedRateLimit(t *testing.T) {
	clk := newClock()
	// Rate = one 64 KiB chunk per second; bucket starts with one second.
	s := newSched(t, 4, SchedConfig{PeerRate: 64 << 10, PeerInflight: 8}, clk)
	s.UpdatePeer("a", mapOf(4, 0, 1, 2, 3))

	a1 := mustNext(t, s)
	s.Complete(a1, a1.Peer)
	_, ok, wait := s.Next()
	if ok {
		t.Fatal("second chunk assigned with an empty token bucket")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("rate-limited wait = %v, want (0, 1s]", wait)
	}
	clk.Advance(500 * time.Millisecond)
	if _, ok, _ := s.Next(); ok {
		t.Fatal("chunk assigned with a half-full bucket")
	}
	clk.Advance(500 * time.Millisecond)
	a2 := mustNext(t, s)
	s.Complete(a2, a2.Peer)
	// Tokens never accumulate past one second of rate.
	clk.Advance(10 * time.Second)
	a3 := mustNext(t, s)
	s.Complete(a3, a3.Peer)
	if _, ok, _ := s.Next(); ok {
		t.Fatal("burst exceeded one second of rate")
	}
}

func TestSchedFailReassignsToOtherPeer(t *testing.T) {
	clk := newClock()
	s := newSched(t, 1, SchedConfig{}, clk)
	s.UpdatePeer("a", mapOf(1, 0))
	s.UpdatePeer("b", mapOf(1, 0))

	a := mustNext(t, s)
	s.Fail(a)
	r := mustNext(t, s)
	if r.Chunk != a.Chunk {
		t.Fatalf("reassigned chunk %d, want %d", r.Chunk, a.Chunk)
	}
	if r.Peer == a.Peer {
		t.Fatalf("chunk reassigned to the failed peer %q", a.Peer)
	}
	if got := s.Counts().Reassigned; got != 1 {
		t.Fatalf("Reassigned = %d, want 1", got)
	}
}

func TestSchedFailFallsBackToStorage(t *testing.T) {
	clk := newClock()
	s := newSched(t, 1, SchedConfig{}, clk)
	s.UpdatePeer("a", mapOf(1, 0))

	a := mustNext(t, s)
	s.Fail(a)
	// Only advertiser failed the chunk; with no membership view installed
	// the storage fallback is immediate.
	r := mustNext(t, s)
	if r.Peer != Storage {
		t.Fatalf("reassignment went to %q, want storage", r.Peer)
	}
	s.Complete(r, Storage)
	cnt := s.Counts()
	if cnt.ChunksStorage != 1 || cnt.ChunksPeer != 0 {
		t.Fatalf("counts = %+v, want 1 storage chunk", cnt)
	}
}

func TestSchedPeerDeathMidTransfer(t *testing.T) {
	clk := newClock()
	s := newSched(t, 4, SchedConfig{PeerInflight: 4}, clk)
	s.UpdatePeer("a", mapOf(4, 0, 1))
	s.UpdatePeer("b", mapOf(4, 0, 1, 2, 3))

	// Claim every chunk; some land on a, some on b.
	var got []Assignment
	for i := 0; i < 4; i++ {
		got = append(got, mustNext(t, s))
	}
	// Peer a dies mid-transfer: its in-flight chunks fail and reassign.
	s.RemovePeer("a")
	for _, a := range got {
		if a.Peer == "a" {
			s.Fail(a)
		} else {
			s.Complete(a, a.Peer)
		}
	}
	for !s.Finished() {
		a := mustNext(t, s)
		if a.Peer == "a" {
			t.Fatal("assignment to a removed peer")
		}
		s.Complete(a, a.Peer)
	}
}

func TestSchedConsecutiveFailuresKillPeer(t *testing.T) {
	clk := newClock()
	s := newSched(t, 8, SchedConfig{MaxPeerFailures: 3, PeerInflight: 8}, clk)
	s.UpdatePeer("a", mapOf(8, 0, 1, 2, 3, 4, 5, 6, 7))

	for i := 0; i < 3; i++ {
		a := mustNext(t, s)
		s.Fail(a)
	}
	// Three consecutive failures: the peer is dead, chunks go to storage.
	a := mustNext(t, s)
	if a.Peer != Storage {
		t.Fatalf("dead peer still assigned (%q)", a.Peer)
	}
	// A fresh map (a successful fetch) revives it.
	s.UpdatePeer("a", mapOf(8, 0, 1, 2, 3, 4, 5, 6, 7))
	found := false
	for i := 0; i < 8 && !found; i++ {
		na, ok, _ := s.Next()
		if !ok {
			break
		}
		found = na.Peer == "a"
		s.Complete(na, na.Peer)
	}
	if !found {
		t.Fatal("revived peer never reassigned")
	}
}

func TestSchedHaveSkipsChunks(t *testing.T) {
	clk := newClock()
	have := mapOf(4, 1, 3)
	s, err := NewScheduler("k", "self", 4<<16, 16, have, SchedConfig{}, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Remaining(); got != 2 {
		t.Fatalf("Remaining = %d, want 2", got)
	}
	s.UpdatePeer("a", mapOf(4, 0, 1, 2, 3))
	seen := map[int64]bool{}
	for !s.Finished() {
		a := mustNext(t, s)
		seen[a.Chunk] = true
		s.Complete(a, a.Peer)
	}
	if seen[1] || seen[3] || !seen[0] || !seen[2] {
		t.Fatalf("fetched chunks %v, want exactly {0, 2}", seen)
	}
}

func TestSchedRendezvousPrimary(t *testing.T) {
	members := []string{"n1", "n2", "n3", "n4"}
	// Every chunk has exactly one owner, the same under any member order.
	for c := int64(0); c < 64; c++ {
		owner := rendezvousOwner(members, "img", c)
		if owner == "" {
			t.Fatal("no owner")
		}
		perm := []string{"n3", "n1", "n4", "n2"}
		if got := rendezvousOwner(perm, "img", c); got != owner {
			t.Fatalf("chunk %d owner depends on member order: %q vs %q", c, got, owner)
		}
	}
	// Ownership spreads: with 64 chunks over 4 members nobody owns all.
	counts := map[string]int{}
	for c := int64(0); c < 64; c++ {
		counts[rendezvousOwner(members, "img", c)]++
	}
	for m, n := range counts {
		if n == 64 {
			t.Fatalf("member %s owns every chunk", m)
		}
	}
	if len(counts) < 3 {
		t.Fatalf("ownership concentrated on %d members: %v", len(counts), counts)
	}
}

func TestSchedStoragePrimaryGating(t *testing.T) {
	clk := newClock()
	cfg := SchedConfig{
		PrimaryHold:          100 * time.Millisecond,
		StorageFallbackAfter: time.Second,
	}
	s, err := NewScheduler("img", "self", 4<<16, 16, nil, cfg, clk.Now)
	if err != nil {
		t.Fatal(err)
	}
	s.SetMembers([]string{"self", "other"})

	// During the hold nothing goes to storage even though no peer exists.
	if _, ok, _ := s.Next(); ok {
		t.Fatal("storage assignment during PrimaryHold")
	}
	clk.Advance(150 * time.Millisecond)

	// After the hold, only chunks this node is primary for go to storage.
	primary := map[int64]bool{}
	for c := int64(0); c < 4; c++ {
		primary[c] = rendezvousOwner([]string{"self", "other"}, "img", c) == "self"
	}
	assigned := map[int64]bool{}
	for {
		a, ok, _ := s.Next()
		if !ok {
			break
		}
		if a.Peer != Storage {
			t.Fatalf("unexpected peer assignment %q", a.Peer)
		}
		assigned[a.Chunk] = true
	}
	for c := int64(0); c < 4; c++ {
		if assigned[c] != primary[c] {
			t.Fatalf("chunk %d: assigned=%v primary=%v", c, assigned[c], primary[c])
		}
	}

	// Past StorageFallbackAfter the starving non-primary chunks get
	// fetched from storage anyway (the primary must be presumed dead).
	clk.Advance(2 * time.Second)
	for c := int64(0); c < 4; c++ {
		if primary[c] {
			continue
		}
		a, ok, _ := s.Next()
		if !ok || a.Peer != Storage {
			t.Fatalf("starved chunk not released to storage (ok=%v)", ok)
		}
		assigned[a.Chunk] = true
	}
	for c := int64(0); c < 4; c++ {
		if !assigned[c] {
			t.Fatalf("chunk %d never assigned", c)
		}
	}
}

func TestSchedPeerForDemand(t *testing.T) {
	clk := newClock()
	s := newSched(t, 2, SchedConfig{}, clk)
	if _, ok := s.PeerFor(0, nil); ok {
		t.Fatal("PeerFor with no peers")
	}
	s.UpdatePeer("a", mapOf(2, 0))
	s.UpdatePeer("b", mapOf(2, 0, 1))
	if id, ok := s.PeerFor(1, nil); !ok || id != "b" {
		t.Fatalf("PeerFor(1) = %q/%v, want b", id, ok)
	}
	if _, ok := s.PeerFor(0, map[PeerID]bool{"a": true, "b": true}); ok {
		t.Fatal("PeerFor ignored the exclude set")
	}
}
