package swarm

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"time"

	"vmicache/internal/rblock"
)

// ExportPrefix namespaces swarm virtual-view exports on the rblock peer
// server: "swarm:<key>" serves the *virtual* address space of the cache
// published or warming under <key>, guarded so only locally valid ranges are
// readable. The same prefix addresses OpMap chunk-map queries.
const ExportPrefix = "swarm:"

// ExportName derives the rblock export name for an image key.
func ExportName(key string) string { return ExportPrefix + key }

// DefaultRefresh is the default announce + map-poll interval.
const DefaultRefresh = 250 * time.Millisecond

// maxChunkAttempts bounds how often one chunk may fail (across all sources)
// before the session aborts — the liveness backstop against a chunk no
// source can deliver.
const maxChunkAttempts = 16

// Config parameterises a fetch session.
type Config struct {
	// Key is the image key — the cache's published name, shared by every
	// node with the same creation parameters; it selects the peers' export
	// ("swarm:<key>") and salts the rendezvous hash.
	Key string
	// Self is this node's own peer-export address as peers would dial it.
	// It is the node's member name for rendezvous hashing and its announce
	// identity; empty means fetch-only (never a storage primary, relies on
	// StorageFallbackAfter).
	Self string
	// Size is the image's virtual size in bytes.
	Size int64
	// ChunkBits selects the chunk size (1 << ChunkBits bytes).
	ChunkBits uint8
	// Have, when non-nil, marks chunks already locally valid.
	Have *Map
	// Origin is the storage-node fallback source.
	Origin BlockSource
	// Peers are static peer addresses, used alongside (or instead of) the
	// tracker.
	Peers []string
	// Tracker, when non-nil, is announced to every refresh interval; the
	// returned peer list feeds discovery and the rendezvous membership.
	Tracker Announcer
	// Refresh is the announce + map-poll interval (0 = DefaultRefresh).
	Refresh time.Duration
	// MaxPeers bounds how many peers this session polls (and therefore
	// fetches from) each refresh round; 0 means unbounded. Large swarms
	// cap their active peer set the way BitTorrent clients do: the
	// rendezvous membership stays global (primaries still agree), but
	// map polls and chunk reads go to a stable per-node subset, keeping
	// poll traffic O(N·MaxPeers) instead of O(N²).
	MaxPeers int
	// Workers is the fetch parallelism (0 = 4).
	Workers int
	// Sched tunes the chunk scheduler.
	Sched SchedConfig
	// RWSize is the rblock transfer segment (0 = default). It must be at
	// least the chunk size for single-request chunk fetches; larger chunks
	// simply segment.
	RWSize int
	// DialAttempts and DialBackoff shape peer connection retries
	// (0 attempts = 3, zero backoff = rblock.DefaultBackoff).
	DialAttempts int
	DialBackoff  rblock.Backoff
	// Logf, when non-nil, receives session events.
	Logf func(format string, args ...any)
	// Now is the clock (nil = time.Now); tests inject it.
	Now func() time.Time
}

// Counts snapshots a session's transfer outcomes. Chunk counts come from the
// scheduler (per assignment class); byte counts from the source (bytes
// actually moved, including demand reads — a chunk found already valid when
// its worker got to it moves no bytes).
type Counts struct {
	ChunksPeer    int64
	ChunksStorage int64
	BytesPeer     int64
	BytesStorage  int64
	Reassigned    int64
	Done          int64
	Total         int64
}

// PeerStat summarises one peer's transfer outcomes within a session: chunk
// read attempts against it, how many failed, and the most recent failure.
type PeerStat struct {
	Attempts int64
	Failures int64
	LastErr  string
}

// Session drives one image's swarm fetch: workers pull scheduler assignments
// through the cache's fill path (via the Source), while a refresher announces
// to the tracker and polls peer chunk maps.
type Session struct {
	cfg   Config
	sched *Scheduler
	src   *Source

	mu     sync.Mutex
	conns  map[PeerID]*peerConn
	fails  map[int64]int
	pstats map[PeerID]*PeerStat
	closed chan struct{}
	once   sync.Once
}

type peerConn struct {
	mu  sync.Mutex
	c   *rblock.Client
	f   *rblock.RemoteFile
	err error
}

// NewSession validates cfg and builds the scheduler and source. The caller
// installs Source() as the warming image's backing before Run.
func NewSession(cfg Config) (*Session, error) {
	if cfg.Key == "" {
		return nil, errors.New("swarm: Config.Key is required")
	}
	if cfg.Origin == nil {
		return nil, errors.New("swarm: Config.Origin is required")
	}
	if cfg.Refresh <= 0 {
		cfg.Refresh = DefaultRefresh
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.DialAttempts <= 0 {
		cfg.DialAttempts = 3
	}
	if (cfg.DialBackoff == rblock.Backoff{}) {
		cfg.DialBackoff = rblock.DefaultBackoff
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	sched, err := NewScheduler(cfg.Key, cfg.Self, cfg.Size, cfg.ChunkBits, cfg.Have, cfg.Sched, cfg.Now)
	if err != nil {
		return nil, err
	}
	s := &Session{
		cfg:    cfg,
		sched:  sched,
		conns:  make(map[PeerID]*peerConn),
		fails:  make(map[int64]int),
		pstats: make(map[PeerID]*PeerStat),
		closed: make(chan struct{}),
	}
	s.src = &Source{
		origin:   cfg.Origin,
		sched:    sched,
		sess:     s,
		cbits:    cfg.ChunkBits,
		assigned: make(map[int64]PeerID),
	}
	return s, nil
}

// Source returns the multi-source backing to install behind the warming
// image.
func (s *Session) Source() *Source { return s.src }

// Scheduler exposes the underlying scheduler (tests and status).
func (s *Session) Scheduler() *Scheduler { return s.sched }

// Counts snapshots the session's outcomes.
func (s *Session) Counts() Counts {
	sc := s.sched.Counts()
	return Counts{
		ChunksPeer:    sc.ChunksPeer,
		ChunksStorage: sc.ChunksStorage,
		BytesPeer:     s.src.BytesPeer(),
		BytesStorage:  s.src.BytesStorage(),
		Reassigned:    sc.Reassigned,
		Done:          sc.Done,
		Total:         sc.Total,
	}
}

// PeerStats snapshots per-peer transfer outcomes, keyed by peer address.
func (s *Session) PeerStats() map[string]PeerStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]PeerStat, len(s.pstats))
	for id, st := range s.pstats {
		out[string(id)] = *st
	}
	return out
}

// notePeer records one read attempt against a peer and its outcome.
func (s *Session) notePeer(id PeerID, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.pstats[id]
	if st == nil {
		st = &PeerStat{}
		s.pstats[id] = st
	}
	st.Attempts++
	if err != nil {
		st.Failures++
		st.LastErr = err.Error()
	}
}

// Run fetches every missing chunk. read drives the cache's fill path —
// typically chain.ReadAt — for the span of one assignment; the Source routes
// the resulting backing read to the assigned peer or the origin. Run returns
// when every chunk is locally valid, or with the first abort-worthy error
// (a chunk that failed maxChunkAttempts times). Safe to call once.
func (s *Session) Run(read func(p []byte, off int64) error) error {
	// Discover peers and membership before the first assignment so the
	// initial scheduling round sees the swarm, not an empty peer set.
	s.refreshOnce()
	stopRefresh := make(chan struct{})
	var refreshWG sync.WaitGroup
	refreshWG.Add(1)
	go func() {
		defer refreshWG.Done()
		t := time.NewTicker(s.cfg.Refresh)
		defer t.Stop()
		for {
			select {
			case <-stopRefresh:
				return
			case <-s.closed:
				return
			case <-t.C:
				s.refreshOnce()
			}
		}
	}()

	var (
		wg       sync.WaitGroup
		abortMu  sync.Mutex
		abortErr error
	)
	abort := func(err error) {
		abortMu.Lock()
		if abortErr == nil {
			abortErr = err
		}
		abortMu.Unlock()
		s.once.Do(func() { close(s.closed) })
	}
	aborted := func() bool {
		abortMu.Lock()
		defer abortMu.Unlock()
		return abortErr != nil
	}

	cs := int64(1) << s.cfg.ChunkBits
	for w := 0; w < s.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, cs)
			for {
				select {
				case <-s.closed:
					return
				default:
				}
				a, ok, wait := s.sched.Next()
				if !ok {
					if s.sched.Finished() {
						return
					}
					select {
					case <-s.sched.Wake():
					case <-time.After(wait):
					case <-s.closed:
						return
					}
					continue
				}
				s.src.assign(a.Chunk, a.Peer)
				err := read(buf[:a.N], a.Off)
				s.src.unassign(a.Chunk)
				if err != nil {
					s.sched.Fail(a)
					s.mu.Lock()
					s.fails[a.Chunk]++
					n := s.fails[a.Chunk]
					s.mu.Unlock()
					s.cfg.Logf("swarm: %s chunk %d via %q failed (%d): %v",
						s.cfg.Key, a.Chunk, a.Peer, n, err)
					if n >= maxChunkAttempts {
						abort(fmt.Errorf("swarm: chunk %d failed %d times, last: %w", a.Chunk, n, err))
						return
					}
					continue
				}
				s.sched.Complete(a, a.Peer)
			}
		}()
	}
	wg.Wait()
	close(stopRefresh)
	refreshWG.Wait()
	if aborted() {
		abortMu.Lock()
		defer abortMu.Unlock()
		return abortErr
	}
	if !s.sched.Finished() {
		return errors.New("swarm: session closed before completion")
	}
	return nil
}

// Close stops the session (workers and refresher exit) and drops every peer
// connection. Call after Run returns and the Source has been uninstalled.
func (s *Session) Close() {
	s.once.Do(func() { close(s.closed) })
	s.mu.Lock()
	conns := s.conns
	s.conns = make(map[PeerID]*peerConn)
	s.mu.Unlock()
	for _, pc := range conns {
		if pc.c != nil {
			pc.c.Close() //nolint:errcheck // teardown
		}
	}
}

// refreshOnce runs one announce + map-poll round: announce to the tracker
// (install the returned membership), then fetch every known peer's chunk map.
func (s *Session) refreshOnce() {
	addrs := make(map[string]bool)
	if s.cfg.Tracker != nil {
		done := s.sched.Counts().Done
		peers, err := s.cfg.Tracker.Announce(s.cfg.Key, s.cfg.Self, done)
		if err != nil {
			s.cfg.Logf("swarm: announce %s: %v", s.cfg.Key, err)
		} else {
			members := make([]string, 0, len(peers)+1)
			for _, p := range peers {
				addrs[p.Addr] = true
				members = append(members, p.Addr)
			}
			if s.cfg.Self != "" && !addrs[s.cfg.Self] {
				members = append(members, s.cfg.Self)
			}
			s.sched.SetMembers(members)
		}
	}
	for _, p := range s.cfg.Peers {
		addrs[p] = true
	}
	if s.cfg.Tracker == nil && s.cfg.Self != "" && len(s.cfg.Peers) > 0 {
		// Static symmetric deployments still get a rendezvous view: every
		// node lists the same addresses (peers + self), so primaries agree.
		members := append([]string{s.cfg.Self}, s.cfg.Peers...)
		s.sched.SetMembers(members)
	}
	delete(addrs, s.cfg.Self)
	for _, addr := range s.pollSet(addrs) {
		s.pollPeer(PeerID(addr))
	}
}

// pollSet applies the MaxPeers cap: when the swarm is larger than the cap,
// each node polls a stable subset chosen by highest FNV score of
// (self, addr) — stable across rounds (connections stay warm) and different
// per node (coverage of the swarm spreads rather than everyone picking the
// same few peers).
func (s *Session) pollSet(addrs map[string]bool) []string {
	out := make([]string, 0, len(addrs))
	for addr := range addrs {
		out = append(out, addr)
	}
	if s.cfg.MaxPeers <= 0 || len(out) <= s.cfg.MaxPeers {
		return out
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := peerScore(s.cfg.Self, out[i]), peerScore(s.cfg.Self, out[j])
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	for _, dropped := range out[s.cfg.MaxPeers:] {
		// Outside the active set: forget any availability we learned so
		// the scheduler never assigns a peer we stopped polling.
		s.sched.RemovePeer(PeerID(dropped))
	}
	return out[:s.cfg.MaxPeers]
}

// peerScore ranks addr for self's active peer set.
func peerScore(self, addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(self)) //nolint:errcheck // fnv never fails
	h.Write([]byte{0})    //nolint:errcheck // fnv never fails
	h.Write([]byte(addr)) //nolint:errcheck // fnv never fails
	return h.Sum64()
}

// pollPeer fetches one peer's chunk map and installs it.
func (s *Session) pollPeer(id PeerID) {
	select {
	case <-s.closed:
		return
	default:
	}
	pc, err := s.conn(id)
	if err != nil {
		return // not up yet; next round retries
	}
	enc, err := pc.c.FetchMap(ExportName(s.cfg.Key))
	if err != nil {
		if errors.Is(err, rblock.ErrNotFound) || errors.Is(err, rblock.ErrBadRequest) {
			return // peer up, image not (yet) advertised there
		}
		s.dropConn(id)
		s.sched.RemovePeer(id)
		return
	}
	m, err := DecodeMap(enc)
	if err != nil {
		s.cfg.Logf("swarm: peer %s sent bad map: %v", id, err)
		return
	}
	if m.Size != s.cfg.Size || m.ChunkBits != s.cfg.ChunkBits {
		s.cfg.Logf("swarm: peer %s map mismatch (size %d bits %d, want %d/%d)",
			id, m.Size, m.ChunkBits, s.cfg.Size, s.cfg.ChunkBits)
		return
	}
	s.sched.UpdatePeer(id, m)
}

// conn returns (dialling and opening lazily) the connection to a peer's
// swarm export.
func (s *Session) conn(id PeerID) (*peerConn, error) {
	s.mu.Lock()
	pc, ok := s.conns[id]
	if !ok {
		pc = &peerConn{}
		s.conns[id] = pc
	}
	s.mu.Unlock()

	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.c != nil {
		return pc, nil
	}
	if pc.err != nil {
		// A recent failure; let the next refresh round retry rather than
		// dial-storming from every read.
		err := pc.err
		pc.err = nil
		return nil, err
	}
	c, err := rblock.DialRetry(string(id), s.cfg.RWSize, s.cfg.DialAttempts, s.cfg.DialBackoff, nil)
	if err != nil {
		pc.err = err
		return nil, err
	}
	pc.c = c
	return pc, nil
}

// file returns the peer's open swarm-export file, opening it on first use.
func (pc *peerConn) file(name string) (*rblock.RemoteFile, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.f != nil {
		return pc.f, nil
	}
	if pc.c == nil {
		return nil, rblock.ErrClosed
	}
	f, err := pc.c.Open(name, true)
	if err != nil {
		return nil, err
	}
	pc.f = f
	return f, nil
}

// dropConn tears down a peer connection (broken transport).
func (s *Session) dropConn(id PeerID) {
	s.mu.Lock()
	pc := s.conns[id]
	delete(s.conns, id)
	s.mu.Unlock()
	if pc != nil {
		pc.mu.Lock()
		if pc.c != nil {
			pc.c.Close() //nolint:errcheck // teardown
			pc.c, pc.f = nil, nil
		}
		pc.mu.Unlock()
	}
}

// readFromPeer reads [off, off+len(p)) of the image's virtual space from a
// peer's swarm export. Request-level refusals (ErrUnavail: the range is not
// valid on the peer yet) surface to the caller for reassignment without
// touching the connection; transport-level failures drop the connection and
// deregister the peer.
func (s *Session) readFromPeer(id PeerID, p []byte, off int64) error {
	err := s.readFromPeerInner(id, p, off)
	s.notePeer(id, err)
	return err
}

func (s *Session) readFromPeerInner(id PeerID, p []byte, off int64) error {
	pc, err := s.conn(id)
	if err != nil {
		s.sched.RemovePeer(id)
		return err
	}
	f, err := pc.file(ExportName(s.cfg.Key))
	if err != nil {
		if errors.Is(err, rblock.ErrClientBroken) || errors.Is(err, rblock.ErrClosed) {
			s.dropConn(id)
			s.sched.RemovePeer(id)
		}
		return err
	}
	n, err := f.ReadAt(p, off)
	if err != nil {
		if errors.Is(err, rblock.ErrUnavail) {
			return err
		}
		if errors.Is(err, rblock.ErrClientBroken) || errors.Is(err, rblock.ErrClosed) {
			s.dropConn(id)
			s.sched.RemovePeer(id)
		}
		return err
	}
	if n < len(p) {
		return io.ErrUnexpectedEOF
	}
	return nil
}
