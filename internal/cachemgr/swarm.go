package cachemgr

import (
	"fmt"
	"os"
	"sync"

	"vmicache/internal/backend"
	"vmicache/internal/core"
	"vmicache/internal/qcow"
	"vmicache/internal/rblock"
	"vmicache/internal/swarm"
	"vmicache/internal/zerocopy"
)

const (
	// DefaultSwarmChunkBits selects 64 KiB swarm chunks.
	DefaultSwarmChunkBits = 16

	// DefaultPeerConcurrency bounds concurrently served peer-transfer
	// opens (wholesale pulls and swarm virtual views together).
	DefaultPeerConcurrency = 32
)

// swarmExport is one image this node serves chunk-wise: either the live cache
// image of an in-flight swarm warm (serve-while-warming) or a published cache
// lazily opened on the first peer request. owned marks images the manager
// opened itself and must close on eviction or shutdown.
type swarmExport struct {
	img   *qcow.Image
	owned bool
}

// swarmChunkBits resolves the configured chunk size exponent.
func (m *Manager) swarmChunkBits() uint8 {
	if m.cfg.SwarmChunkBits > 0 {
		return uint8(m.cfg.SwarmChunkBits)
	}
	return DefaultSwarmChunkBits
}

// registerSwarmExport advertises a live (warming) image under key. From this
// moment peers polling the key's chunk map see the filling cache and can pull
// its valid chunks — serving starts while the warm is still running.
func (m *Manager) registerSwarmExport(key string, img *qcow.Image) {
	m.swarmMu.Lock()
	defer m.swarmMu.Unlock()
	if old := m.swarmExports[key]; old != nil && old.owned {
		old.img.Close() //nolint:errcheck // replaced by a live image
	}
	m.swarmExports[key] = &swarmExport{img: img}
}

// dropSwarmExport withdraws key's export if img is still the one registered.
func (m *Manager) dropSwarmExport(key string, img *qcow.Image) {
	m.swarmMu.Lock()
	defer m.swarmMu.Unlock()
	if ex := m.swarmExports[key]; ex != nil && ex.img == img {
		delete(m.swarmExports, key)
	}
}

// closeSwarmExport drops key's export unconditionally, closing the image if
// the manager owns it (eviction and shutdown path). In-flight peer reads fail
// with an IO status and reassign elsewhere.
func (m *Manager) closeSwarmExport(key string) {
	m.swarmMu.Lock()
	ex := m.swarmExports[key]
	delete(m.swarmExports, key)
	m.swarmMu.Unlock()
	if ex != nil && ex.owned {
		ex.img.Close() //nolint:errcheck // serving handle
	}
}

// swarmImage resolves key to a servable image: a registered live export, or a
// published cache opened read-only on first use. The published open attaches
// no backing — the RangeLocallyValid guard refuses any range that would need
// one, and a published cache is fully valid anyway.
func (m *Manager) swarmImage(key string) (*qcow.Image, error) {
	m.swarmMu.Lock()
	defer m.swarmMu.Unlock()
	if ex := m.swarmExports[key]; ex != nil {
		return ex.img, nil
	}
	if !m.pool.Contains(key) {
		return nil, fmt.Errorf("%w: %s", backend.ErrNotExist, key)
	}
	f, err := m.store.Open(key, true)
	if err != nil {
		return nil, err
	}
	img, err := qcow.Open(f, qcow.OpenOpts{ReadOnly: true})
	if err != nil {
		f.Close() //nolint:errcheck // open failed
		return nil, err
	}
	m.swarmExports[key] = &swarmExport{img: img, owned: true}
	return img, nil
}

// swarmMaps implements rblock.MapSource: OpMap on "swarm:<key>" returns the
// encoded chunk-validity map of the cache behind key. Warming caches answer
// with their current (monotonically growing) validity, so a stale map is a
// safe lower bound on what a subsequent read may touch.
type swarmMaps struct{ m *Manager }

func (sm swarmMaps) EncodedMap(name string) ([]byte, error) {
	key, ok := cutExportPrefix(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", backend.ErrNotExist, name)
	}
	img, err := sm.m.swarmImage(key)
	if err != nil {
		return nil, err
	}
	cbits := sm.m.swarmChunkBits()
	bits, err := img.ValidChunkBitmap(int64(1) << cbits)
	if err != nil {
		return nil, err
	}
	return swarm.EncodeBitmap(img.Size(), cbits, bits), nil
}

// cutExportPrefix splits a "swarm:<key>" export name.
func cutExportPrefix(name string) (key string, ok bool) {
	const p = swarm.ExportPrefix
	if len(name) <= len(p) || name[:len(p)] != p {
		return "", false
	}
	return name[len(p):], true
}

// swarmFile is the peer-facing virtual view of a cache: reads address the
// image's guest-visible space, and only locally valid ranges are served.
// Anything else returns ErrUnavail — a per-request refusal the fetching side
// treats as "reassign this chunk", never as a broken connection. Validity is
// monotone during a warm, so check-then-read cannot race with invalidation.
type swarmFile struct {
	img     *qcow.Image
	release func()
	once    sync.Once
}

func (f *swarmFile) ReadAt(p []byte, off int64) (int, error) {
	if !f.img.RangeLocallyValid(off, int64(len(p))) {
		return 0, rblock.ErrUnavail
	}
	return f.img.ReadAt(p, off)
}

func (f *swarmFile) WriteAt(p []byte, off int64) (int, error) {
	return 0, fmt.Errorf("cachemgr: swarm export is read-only")
}

func (f *swarmFile) Size() (int64, error) { return f.img.Size(), nil }

func (f *swarmFile) Truncate(int64) error {
	return fmt.Errorf("cachemgr: swarm export is read-only")
}

func (f *swarmFile) Sync() error { return nil }

func (f *swarmFile) Close() error {
	f.once.Do(f.release)
	return nil
}

// semFile wraps a served file so closing it releases its peer-concurrency
// slot exactly once.
type semFile struct {
	backend.File
	release func()
	once    sync.Once
}

func (f *semFile) Close() error {
	err := f.File.Close()
	f.once.Do(f.release)
	return err
}

// SysFile forwards descriptor access through the wrapper (interface
// embedding does not promote methods the static type lacks), so published
// caches stay eligible for the rblock sendfile path.
func (f *semFile) SysFile() *os.File {
	if s, ok := f.File.(zerocopy.Filer); ok {
		return s.SysFile()
	}
	return nil
}

// acquirePeerSlot claims a peer-serving slot without blocking; a saturated
// exporter refuses with ErrUnavail so the fetching side retries elsewhere
// instead of queueing behind a convoy.
func (m *Manager) acquirePeerSlot() (release func(), err error) {
	select {
	case m.peerSem <- struct{}{}:
		return func() { <-m.peerSem }, nil
	default:
		return nil, fmt.Errorf("%w: peer-transfer slots exhausted", rblock.ErrUnavail)
	}
}

// PeerDetail is one peer's cumulative transfer record, wholesale pulls and
// swarm chunk reads combined.
type PeerDetail struct {
	Attempts int64  // transfer attempts against this peer
	Failures int64  // attempts that failed
	Bytes    int64  // bytes successfully pulled from this peer
	LastErr  string // most recent failure, empty if none
}

// notePeer folds one wholesale transfer outcome into the per-peer record.
func (m *Manager) notePeer(addr string, bytes int64, err error) {
	m.peerMu.Lock()
	defer m.peerMu.Unlock()
	d := m.peerDetail[addr]
	if d == nil {
		d = &PeerDetail{}
		m.peerDetail[addr] = d
	}
	d.Attempts++
	if err != nil {
		d.Failures++
		d.LastErr = err.Error()
	} else {
		d.Bytes += bytes
	}
}

// mergePeerStats folds a finished swarm session's per-peer outcomes in.
func (m *Manager) mergePeerStats(stats map[string]swarm.PeerStat) {
	m.peerMu.Lock()
	defer m.peerMu.Unlock()
	for addr, st := range stats {
		d := m.peerDetail[addr]
		if d == nil {
			d = &PeerDetail{}
			m.peerDetail[addr] = d
		}
		d.Attempts += st.Attempts
		d.Failures += st.Failures
		if st.LastErr != "" {
			d.LastErr = st.LastErr
		}
	}
}

// peerDetails snapshots the per-peer records.
func (m *Manager) peerDetails() map[string]PeerDetail {
	m.peerMu.Lock()
	defer m.peerMu.Unlock()
	out := make(map[string]PeerDetail, len(m.peerDetail))
	for addr, d := range m.peerDetail {
		out[addr] = *d
	}
	return out
}

// swarmCounts sums finished-warm totals with every in-flight session's live
// counts, so metric scrapes see progress during a warm, not only after it.
func (m *Manager) swarmCounts() swarm.Counts {
	out := swarm.Counts{
		ChunksPeer:    m.stats.swarmChunksPeer.Load(),
		ChunksStorage: m.stats.swarmChunksStorage.Load(),
		BytesPeer:     m.stats.swarmBytesPeer.Load(),
		BytesStorage:  m.stats.swarmBytesStorage.Load(),
		Reassigned:    m.stats.swarmReassigned.Load(),
	}
	m.swarmMu.Lock()
	live := make([]*swarm.Session, 0, len(m.swarmLive))
	for s := range m.swarmLive {
		live = append(live, s)
	}
	m.swarmMu.Unlock()
	for _, s := range live {
		c := s.Counts()
		out.ChunksPeer += c.ChunksPeer
		out.ChunksStorage += c.ChunksStorage
		out.BytesPeer += c.BytesPeer
		out.BytesStorage += c.BytesStorage
		out.Reassigned += c.Reassigned
	}
	return out
}

// swarmWarm builds key's cache by chunk-level multi-source fetch: a fresh
// cache image is chained onto the storage base exactly as corWarm would, but
// its backing is swapped for a swarm Source that routes each chunk to the
// scheduler's pick — a peer's partially warm cache or the storage node — and
// every fetched byte still lands through the normal copy-on-read fill path.
// The warming image is exported immediately, so this node serves the chunks
// it already has while it is still fetching the rest.
func (m *Manager) swarmWarm(base, key, tmpName string) (swarm.Counts, error) {
	var counts swarm.Counts
	baseLoc := core.Locator{Store: m.backingName, Name: base}
	baseSize, err := core.VirtualSizeOf(m.ns, baseLoc)
	if err != nil {
		return counts, fmt.Errorf("cachemgr: sizing base %s: %w", base, err)
	}
	quota := m.cfg.Quota
	if quota <= 0 {
		quota = fullWarmQuota(baseSize, m.cb, m.cfg.Subclusters)
	}
	tmpLoc := core.Locator{Store: storeName, Name: tmpName}
	if err := core.CreateCacheSub(m.ns, tmpLoc, baseLoc, baseSize, quota, m.cb, m.cfg.Subclusters); err != nil {
		return counts, fmt.Errorf("cachemgr: creating cache for %s: %w", base, err)
	}
	chain, err := core.OpenChain(m.ns, tmpLoc, core.ChainOpts{WrapFile: m.warmWrap})
	if err != nil {
		return counts, fmt.Errorf("cachemgr: opening warm chain for %s: %w", base, err)
	}
	ci := chain.CacheImage()
	if ci == nil {
		chain.Close() //nolint:errcheck // already failing
		return counts, fmt.Errorf("cachemgr: warm chain for %s has no cache image", base)
	}

	// SwarmSelf may have been defaulted from the exporter's bound address.
	m.mu.Lock()
	self := m.cfg.SwarmSelf
	m.mu.Unlock()
	sess, err := swarm.NewSession(swarm.Config{
		Key:       key,
		Self:      self,
		Size:      ci.Size(),
		ChunkBits: m.swarmChunkBits(),
		Origin:    ci.Backing(),
		Peers:     m.cfg.Peers,
		Tracker:   m.cfg.SwarmTracker,
		Refresh:   m.cfg.SwarmRefresh,
		MaxPeers:  m.cfg.SwarmMaxPeers,
		Workers:   m.cfg.SwarmWorkers,
		Sched: swarm.SchedConfig{
			PeerInflight:         m.cfg.SwarmPeerInflight,
			PeerRate:             m.cfg.SwarmPeerRate,
			PrimaryHold:          m.cfg.SwarmPrimaryHold,
			StorageFallbackAfter: m.cfg.SwarmFallbackAfter,
		},
		Logf: m.cfg.Logf,
	})
	if err != nil {
		chain.Close() //nolint:errcheck // already failing
		return counts, err
	}

	// Swap the chain's backing for the multi-source router and go live:
	// register the (still cold) cache under its future published key and
	// track the session so metric scrapes see live progress.
	orig := ci.Backing()
	ci.SetBacking(sess.Source())
	m.registerSwarmExport(key, ci)
	m.swarmMu.Lock()
	m.swarmLive[sess] = struct{}{}
	m.swarmMu.Unlock()

	m.logf("cachemgr: swarm warm of %s starting (self=%q)", key, self)
	runErr := sess.Run(func(p []byte, off int64) error {
		return backend.ReadFull(chain, p, off)
	})

	ci.SetBacking(orig)
	counts = sess.Counts()
	m.swarmMu.Lock()
	delete(m.swarmLive, sess)
	m.swarmMu.Unlock()
	m.mergePeerStats(sess.PeerStats())
	m.stats.swarmChunksPeer.Add(counts.ChunksPeer)
	m.stats.swarmChunksStorage.Add(counts.ChunksStorage)
	m.stats.swarmBytesPeer.Add(counts.BytesPeer)
	m.stats.swarmBytesStorage.Add(counts.BytesStorage)
	m.stats.swarmReassigned.Add(counts.Reassigned)
	sess.Close()

	if runErr == nil {
		// Sub-cluster caches may hold partially valid clusters; published
		// caches must be fully completed.
		runErr = ci.CompleteAll()
	}
	// Withdraw the live export before the image closes: peers briefly see
	// "not found" and retry, then the published file re-registers lazily on
	// their next map poll.
	m.dropSwarmExport(key, ci)
	if cerr := chain.Close(); runErr == nil {
		runErr = cerr
	}
	return counts, runErr
}
