package cachemgr_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"vmicache/internal/backend"
	"vmicache/internal/cachemgr"
)

// publishedSize returns the size of the single published cache in dir.
func publishedSize(t *testing.T, dir string) int64 {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.vmic"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("published caches in %s: %v (err %v)", dir, matches, err)
	}
	fi, err := os.Stat(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestProfileGuidedWarm checks the profile-driven prewarm end to end: a
// manager configured with a boot profile warms only that profile's (scaled)
// read footprint through the parallel pool, publishes a cache that is a
// fraction of the full-warm one, and still serves exact content — reads
// outside the footprint pass through to the storage node on demand.
func TestProfileGuidedWarm(t *testing.T) {
	s := newStorageNode(t)
	const size = 4 * mb
	s.addBase(t, "base.img", size, 7)

	var profDir string
	prof := newManager(t, s, func(cfg *cachemgr.Config) {
		profDir = cfg.Dir
		cfg.WarmProfile = "debian"
		cfg.WarmWorkers = 4
		cfg.WarmBudget = mb
	})
	sess, err := prof.Boot("base.img", "vm0")
	if err != nil {
		t.Fatalf("profile-warmed boot: %v", err)
	}
	buf := make([]byte, size)
	if err := backend.ReadFull(sess.Chain, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, s.patterns["base.img"]) {
		t.Fatal("profile-warmed session read wrong content")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	var fullDir string
	full := newManager(t, s, func(cfg *cachemgr.Config) { fullDir = cfg.Dir })
	fsess, err := full.Boot("base.img", "vm0")
	if err != nil {
		t.Fatalf("full-warmed boot: %v", err)
	}
	if err := fsess.Close(); err != nil {
		t.Fatal(err)
	}

	profSize, fullSize := publishedSize(t, profDir), publishedSize(t, fullDir)
	// The debian profile scaled to a 4 MiB base has a working set around the
	// 64 KiB scaling floor; its cache must come out far smaller than the
	// whole-image warm or the plan was ignored.
	if profSize >= fullSize/2 {
		t.Fatalf("profile warm published %d bytes vs full warm %d: footprint not respected",
			profSize, fullSize)
	}
}

// TestProfileWarmUnknownProfile surfaces a bad profile name as a boot error
// instead of silently falling back to a full warm.
func TestProfileWarmUnknownProfile(t *testing.T) {
	s := newStorageNode(t)
	s.addBase(t, "base.img", mb, 3)
	m := newManager(t, s, func(cfg *cachemgr.Config) { cfg.WarmProfile = "solaris" })
	if _, err := m.Boot("base.img", "vm0"); err == nil {
		t.Fatal("boot with unknown warm profile succeeded")
	}
}
