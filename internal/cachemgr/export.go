package cachemgr

import (
	"fmt"
	"strings"

	"vmicache/internal/backend"
	"vmicache/internal/metrics"
	"vmicache/internal/rblock"
)

// exportStore is the peer-facing view of the cache directory: only published
// caches are visible, always read-only. Temp files, CoW scratch, and anything
// else in the directory do not exist as far as peers are concerned, so a
// partially-warmed cache can never leak across the network.
type exportStore struct{ m *Manager }

// Open serves a published cache read-only.
func (e exportStore) Open(name string, _ bool) (backend.File, error) {
	if !strings.HasSuffix(name, pubSuffix) || !e.m.pool.Contains(name) {
		return nil, fmt.Errorf("%w: %s", backend.ErrNotExist, name)
	}
	return e.m.store.Open(name, true)
}

// Create is rejected: peers cannot write into the cache directory.
func (e exportStore) Create(name string) (backend.File, error) {
	return nil, fmt.Errorf("cachemgr: export is read-only: %s", name)
}

// Remove is rejected: peers cannot delete caches.
func (e exportStore) Remove(name string) error {
	return fmt.Errorf("cachemgr: export is read-only: %s", name)
}

// Stat reports a published cache's size.
func (e exportStore) Stat(name string) (int64, error) {
	if !strings.HasSuffix(name, pubSuffix) || !e.m.pool.Contains(name) {
		return 0, fmt.Errorf("%w: %s", backend.ErrNotExist, name)
	}
	return e.m.store.Stat(name)
}

// ServePeers starts exporting this node's published caches over rblock so
// peer managers can pull them wholesale. Returns the bound address.
func (m *Manager) ServePeers(addr string) (string, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrClosed
	}
	if m.exporter != nil {
		m.mu.Unlock()
		return "", fmt.Errorf("cachemgr: already exporting")
	}
	m.mu.Unlock()

	srv := rblock.NewServer(exportStore{m}, rblock.ServerOpts{
		ReadOnly: true,
		Logf:     m.cfg.Logf,
	})
	if m.cfg.Metrics != nil {
		srv.RegisterMetrics(m.cfg.Metrics, metrics.Labels{"server": "peer-export"})
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	m.exporter = srv
	m.mu.Unlock()
	m.logf("cachemgr: exporting published caches on %s", bound)
	return bound, nil
}

// ExportStats snapshots the peer exporter's traffic counters; ok is false
// when the manager is not exporting.
func (m *Manager) ExportStats() (stats rblock.ServerStats, ok bool) {
	m.mu.Lock()
	exp := m.exporter
	m.mu.Unlock()
	if exp == nil {
		return rblock.ServerStats{}, false
	}
	return exp.Stats(), true
}
