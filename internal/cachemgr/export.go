package cachemgr

import (
	"fmt"
	"strings"

	"vmicache/internal/backend"
	"vmicache/internal/metrics"
	"vmicache/internal/rblock"
)

// exportStore is the peer-facing view of the cache directory: published
// caches are visible wholesale under their own names, and the virtual address
// space of a warming-or-published cache under "swarm:<key>" — always
// read-only. Temp files, CoW scratch, and anything else in the directory do
// not exist as far as peers are concerned, so a partially-warmed cache can
// never leak across the network (swarm views refuse not-yet-valid ranges
// per request instead).
type exportStore struct{ m *Manager }

// Open serves a published cache read-only, or a chunk-wise virtual view for
// "swarm:"-prefixed names. Both paths consume a peer-concurrency slot,
// released when the served handle closes.
func (e exportStore) Open(name string, _ bool) (backend.File, error) {
	release, err := e.m.acquirePeerSlot()
	if err != nil {
		return nil, err
	}
	if key, ok := cutExportPrefix(name); ok {
		img, err := e.m.swarmImage(key)
		if err != nil {
			release()
			return nil, err
		}
		return &swarmFile{img: img, release: release}, nil
	}
	if !strings.HasSuffix(name, pubSuffix) || !e.m.pool.Contains(name) {
		release()
		return nil, fmt.Errorf("%w: %s", backend.ErrNotExist, name)
	}
	f, err := e.m.store.Open(name, true)
	if err != nil {
		release()
		return nil, err
	}
	return &semFile{File: f, release: release}, nil
}

// Create is rejected: peers cannot write into the cache directory.
func (e exportStore) Create(name string) (backend.File, error) {
	return nil, fmt.Errorf("cachemgr: export is read-only: %s", name)
}

// Remove is rejected: peers cannot delete caches.
func (e exportStore) Remove(name string) error {
	return fmt.Errorf("cachemgr: export is read-only: %s", name)
}

// Stat reports a published cache's size (virtual size for swarm views).
func (e exportStore) Stat(name string) (int64, error) {
	if key, ok := cutExportPrefix(name); ok {
		img, err := e.m.swarmImage(key)
		if err != nil {
			return 0, err
		}
		return img.Size(), nil
	}
	if !strings.HasSuffix(name, pubSuffix) || !e.m.pool.Contains(name) {
		return 0, fmt.Errorf("%w: %s", backend.ErrNotExist, name)
	}
	return e.m.store.Stat(name)
}

// ServePeers starts exporting this node's caches over rblock: published
// caches wholesale, plus chunk-wise "swarm:<key>" virtual views (with OpMap
// chunk-map queries) of anything warming or published. Returns the bound
// address.
func (m *Manager) ServePeers(addr string) (string, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrClosed
	}
	if m.exporter != nil {
		m.mu.Unlock()
		return "", fmt.Errorf("cachemgr: already exporting")
	}
	m.mu.Unlock()

	// A typed-nil dedupExport must not become a non-nil ChunkSource.
	var chunks rblock.ChunkSource
	if m.dstore != nil {
		chunks = dedupExport{m}
	}
	srv := rblock.NewServer(exportStore{m}, rblock.ServerOpts{
		ReadOnly: true,
		Logf:     m.cfg.Logf,
		Maps:     swarmMaps{m},
		Chunks:   chunks,
		ZeroCopy: m.cfg.ZeroCopy,
	})
	if m.cfg.Metrics != nil {
		srv.RegisterMetrics(m.cfg.Metrics, metrics.Labels{"server": "peer-export"})
	}
	bound, err := srv.Listen(addr)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	m.exporter = srv
	// The swarm identity is the address peers dial; with an OS-assigned
	// port it is only known now, so default it from the bound address.
	if m.cfg.SwarmSelf == "" {
		m.cfg.SwarmSelf = bound
	}
	m.mu.Unlock()
	m.logf("cachemgr: exporting published caches on %s", bound)
	return bound, nil
}

// ExportStats snapshots the peer exporter's traffic counters; ok is false
// when the manager is not exporting.
func (m *Manager) ExportStats() (stats rblock.ServerStats, ok bool) {
	m.mu.Lock()
	exp := m.exporter
	m.mu.Unlock()
	if exp == nil {
		return rblock.ServerStats{}, false
	}
	return exp.Stats(), true
}
