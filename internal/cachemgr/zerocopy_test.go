package cachemgr_test

// End-to-end zero-copy enablement: a manager configured with ZeroCopy serves
// wholesale peer pulls of its published caches through the sendfile reply
// path (published caches are immutable OS files — exactly the fast path's
// contract), and MmapWarm maps the published cache on boot attach. Both are
// proven by byte identity plus the respective effectiveness counters.

import (
	"bytes"
	"testing"

	"vmicache/internal/backend"
	"vmicache/internal/cachemgr"
)

func TestPeerTransferZeroCopy(t *testing.T) {
	s := newStorageNode(t)
	const size = 4 * mb
	s.addBase(t, "base.img", size, 21)

	mgrA := newManager(t, s, func(c *cachemgr.Config) { c.ZeroCopy = true })
	leaseA, err := mgrA.Acquire("base.img")
	if err != nil {
		t.Fatalf("warming node A: %v", err)
	}
	leaseA.Release()
	exportAddr, err := mgrA.ServePeers("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServePeers: %v", err)
	}

	mgrB := newManager(t, s, func(c *cachemgr.Config) { c.Peers = []string{exportAddr} })
	leaseB, err := mgrB.Acquire("base.img")
	if err != nil {
		t.Fatalf("warming node B: %v", err)
	}
	leaseB.Release()
	if st := mgrB.Stats(); st.PeerFetches != 1 {
		t.Fatalf("peer fetches = %d, want 1", st.PeerFetches)
	}

	// The wholesale pull must have ridden the sendfile path without a single
	// fallback: the only export it opens is the immutable published file.
	expStats, ok := mgrA.ExportStats()
	if !ok {
		t.Fatal("node A not exporting")
	}
	if expStats.ZeroCopySegments == 0 || expStats.ZeroCopyBytes == 0 {
		t.Fatalf("peer pull skipped the zero-copy path: %+v", expStats)
	}
	if expStats.ZeroCopyFallbacks != 0 {
		t.Fatalf("zero-copy fallbacks on a published cache pull: %d", expStats.ZeroCopyFallbacks)
	}

	// Content through B is byte-identical to the base.
	sess, err := mgrB.Boot("base.img", "vmB")
	if err != nil {
		t.Fatalf("booting on B: %v", err)
	}
	defer sess.Close() //nolint:errcheck
	buf := make([]byte, size)
	if err := backend.ReadFull(sess.Chain, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, s.patterns["base.img"]) {
		t.Fatal("node B served wrong content after zero-copy pull")
	}
}

func TestBootMmapWarm(t *testing.T) {
	s := newStorageNode(t)
	const size = 2 * mb
	s.addBase(t, "base.img", size, 22)

	m := newManager(t, s, func(c *cachemgr.Config) { c.MmapWarm = true })
	sess, err := m.Boot("base.img", "vm0")
	if err != nil {
		t.Fatalf("Boot: %v", err)
	}
	defer sess.Close() //nolint:errcheck

	// The published cache (the read-only backing image of the boot chain)
	// must be mapped; the writable CoW scratch on top must not be.
	var mapped, unmapped int
	for _, img := range sess.Chain.Images {
		if img.MmapEnabled() {
			mapped++
		} else {
			unmapped++
		}
	}
	if mapped == 0 {
		t.Fatal("no image in the boot chain took the mmap warm-read mode")
	}
	if sess.Chain.Top().MmapEnabled() {
		t.Fatal("writable CoW scratch must not be mapped")
	}

	buf := make([]byte, size)
	if err := backend.ReadFull(sess.Chain, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, s.patterns["base.img"]) {
		t.Fatal("mmap-warm boot served wrong content")
	}
	var mmapReads int64
	for _, img := range sess.Chain.Images {
		mmapReads += img.Stats().MmapReads.Load()
	}
	if mmapReads == 0 {
		t.Fatal("warm reads never hit the mapping")
	}
}
