package cachemgr_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmicache/internal/backend"
	"vmicache/internal/cachemgr"
	"vmicache/internal/qcow"
)

// checkPublished runs a full qcow.Check over every published cache in dir and
// fails the test on any inconsistency.
func checkPublished(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".vmic") {
			continue
		}
		f, err := backend.OpenOSFile(filepath.Join(dir, e.Name()), true)
		if err != nil {
			t.Fatalf("opening published %s: %v", e.Name(), err)
		}
		img, err := qcow.OpenVerified(f, qcow.OpenOpts{ReadOnly: true})
		if err != nil {
			t.Fatalf("published cache %s fails verification: %v", e.Name(), err)
		}
		img.Close() //nolint:errcheck
		n++
	}
	return n
}

// TestCrashSafePublication kills a warm mid-fill with an injected write
// fault, then proves the partial temp is never served: the failing manager
// publishes nothing, a restarted manager discards the temp, re-warming
// succeeds, and the published cache passes a full consistency check.
func TestCrashSafePublication(t *testing.T) {
	s := newStorageNode(t)
	s.addBase(t, "base.img", 2*mb, 42)
	dir := t.TempDir()

	m1 := newManager(t, s, func(c *cachemgr.Config) {
		c.Dir = dir
		c.WrapWarmFile = func(f backend.File) backend.File {
			ff := backend.NewFaultyFile(f)
			ff.FailWriteAfter(10) // dies mid-fill, after some clusters landed
			return ff
		}
	})
	_, err := m1.Acquire("base.img")
	if err == nil {
		t.Fatal("Acquire succeeded despite the injected write fault")
	}
	if !errors.Is(err, backend.ErrInjected) {
		t.Fatalf("warm failed with %v, want the injected fault", err)
	}
	key := m1.KeyFor("base.img")
	if _, err := os.Stat(filepath.Join(dir, key+".tmp")); err != nil {
		t.Fatalf("failed warm left no temp file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, key)); !os.IsNotExist(err) {
		t.Fatalf("partial warm reached the published name (err=%v)", err)
	}
	st := m1.Stats()
	if st.Published != 0 || st.WarmFailures != 1 {
		t.Fatalf("after failed warm: %+v", st)
	}
	if n := checkPublished(t, dir); n != 0 {
		t.Fatalf("%d published caches exist after a failed warm", n)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh manager over the same directory. The crashed temp
	// is discarded during recovery and never served.
	m2 := newManager(t, s, func(c *cachemgr.Config) { c.Dir = dir })
	if got := m2.Stats().DiscardedTemps; got != 1 {
		t.Fatalf("discarded temps after restart = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("crashed temp still present after recovery (err=%v)", err)
	}
	if m2.Stats().Resident != 0 {
		t.Fatalf("recovery seeded %d caches from a dir with only a crashed temp", m2.Stats().Resident)
	}

	// Re-warming on the recovered manager succeeds and serves correct data.
	sess, err := m2.Boot("base.img", "vm0")
	if err != nil {
		t.Fatalf("re-warm after recovery: %v", err)
	}
	buf := make([]byte, 2*mb)
	if err := backend.ReadFull(sess.Chain, buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(s.patterns["base.img"]) {
		t.Fatal("re-warmed cache served wrong content")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if m2.Stats().ColdWarms != 1 {
		t.Fatalf("cold warms after re-warm = %d, want 1", m2.Stats().ColdWarms)
	}
	if n := checkPublished(t, dir); n != 1 {
		t.Fatalf("%d published caches after re-warm, want 1", n)
	}
}

// TestFailedWarmRetriesInPlace: after a failed warm the same manager can
// retry without a restart — the stale temp is overwritten, not served.
func TestFailedWarmRetriesInPlace(t *testing.T) {
	s := newStorageNode(t)
	s.addBase(t, "base.img", mb, 43)

	var inject bool
	m := newManager(t, s, func(c *cachemgr.Config) {
		c.WrapWarmFile = func(f backend.File) backend.File {
			if !inject {
				return f
			}
			ff := backend.NewFaultyFile(f)
			ff.FailWriteAfter(5)
			return ff
		}
	})
	inject = true
	if _, err := m.Acquire("base.img"); !errors.Is(err, backend.ErrInjected) {
		t.Fatalf("first warm: %v, want injected fault", err)
	}
	inject = false
	lease, err := m.Acquire("base.img")
	if err != nil {
		t.Fatalf("retry after failed warm: %v", err)
	}
	lease.Release()
	if n := checkPublished(t, m.Dir()); n != 1 {
		t.Fatalf("%d published caches after retry, want 1", n)
	}
}

// TestRecoveryDropsCorrupt: a published cache whose contents were torn after
// the fact (bit rot, torn rename) is dropped at startup, not served.
func TestRecoveryDropsCorrupt(t *testing.T) {
	s := newStorageNode(t)
	s.addBase(t, "base.img", mb, 44)
	dir := t.TempDir()
	m1 := newManager(t, s, func(c *cachemgr.Config) { c.Dir = dir })
	lease, err := m1.Acquire("base.img")
	if err != nil {
		t.Fatal(err)
	}
	key := lease.Key()
	lease.Release()
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the published file: smash the L1 table area with garbage.
	path := filepath.Join(dir, key)
	if err := os.Chmod(path, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 4096)
	for i := range junk {
		junk[i] = 0xff
	}
	if _, err := f.WriteAt(junk, 1<<16); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m2 := newManager(t, s, func(c *cachemgr.Config) { c.Dir = dir })
	st := m2.Stats()
	if st.DroppedCorrupt != 1 || st.Resident != 0 {
		t.Fatalf("after corruption: dropped=%d resident=%d, want 1, 0", st.DroppedCorrupt, st.Resident)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt cache still on disk (err=%v)", err)
	}
	// The manager recovers by re-warming from storage.
	lease, err = m2.Acquire("base.img")
	if err != nil {
		t.Fatalf("re-warm after dropping corrupt cache: %v", err)
	}
	lease.Release()
	if n := checkPublished(t, dir); n != 1 {
		t.Fatalf("%d published caches after re-warm, want 1", n)
	}
}
