package cachemgr_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"vmicache/internal/backend"
	"vmicache/internal/cachemgr"
	"vmicache/internal/rblock"
	"vmicache/internal/swarm"
)

// swarmify turns on chunk-level warming with test-friendly timings.
func swarmify(c *cachemgr.Config) {
	c.SwarmEnabled = true
	c.SwarmChunkBits = 16 // 64 KiB chunks
	c.SwarmRefresh = 10 * time.Millisecond
	c.SwarmPrimaryHold = 30 * time.Millisecond
	c.SwarmFallbackAfter = 300 * time.Millisecond
}

// readSession boots a VM on m and checks the full image content.
func readSession(t *testing.T, m *cachemgr.Manager, base, vmID string, want []byte) {
	t.Helper()
	sess, err := m.Boot(base, vmID)
	if err != nil {
		t.Fatalf("boot %s on %s: %v", vmID, base, err)
	}
	defer sess.Close() //nolint:errcheck
	buf := make([]byte, len(want))
	if err := backend.ReadFull(sess.Chain, buf, 0); err != nil {
		t.Fatalf("%s read: %v", vmID, err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("%s read wrong content", vmID)
	}
}

// TestSwarmWarmFromPeer: with one fully warm serving peer, a swarm warm pulls
// every chunk from that peer — the storage node sees only chain-open metadata,
// no image data.
func TestSwarmWarmFromPeer(t *testing.T) {
	s := newStorageNode(t)
	const size = 4 * mb
	s.addBase(t, "base.img", size, 21)

	mgrA := newManager(t, s, swarmify)
	leaseA, err := mgrA.Acquire("base.img") // no peers yet: all from storage
	if err != nil {
		t.Fatalf("warming node A: %v", err)
	}
	leaseA.Release()
	addrA, err := mgrA.ServePeers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	mgrB := newManager(t, s, func(c *cachemgr.Config) {
		swarmify(c)
		c.Peers = []string{addrA}
	})
	storageBefore := s.srv.Stats().BytesRead
	leaseB, err := mgrB.Acquire("base.img")
	if err != nil {
		t.Fatalf("swarm warm on B: %v", err)
	}
	leaseB.Release()

	st := mgrB.Stats()
	if st.SwarmWarms != 1 {
		t.Fatalf("swarm warms = %d, want 1", st.SwarmWarms)
	}
	nchunks := int64(size >> 16)
	if st.SwarmChunksPeer != nchunks || st.SwarmChunksStorage != 0 {
		t.Fatalf("chunks: %d peer / %d storage, want %d / 0",
			st.SwarmChunksPeer, st.SwarmChunksStorage, nchunks)
	}
	if st.SwarmBytesPeer < size {
		t.Fatalf("peer bytes = %d, want >= %d", st.SwarmBytesPeer, size)
	}
	// The storage node served chain-open metadata only (headers, L1), no
	// data clusters: far less than even 10%% of the image.
	if delta := s.srv.Stats().BytesRead - storageBefore; delta > size/10 {
		t.Fatalf("storage served %d bytes during a full-peer swarm warm", delta)
	}
	d, ok := st.Peers[addrA]
	if !ok || d.Attempts < nchunks || d.Failures != 0 {
		t.Fatalf("peer detail for %s = %+v", addrA, d)
	}
	readSession(t, mgrB, "base.img", "vmB", s.patterns["base.img"])
}

// slowStore delays every read served from the wrapped store — it stands in
// for a distant storage node so a warm stays in flight long enough to observe.
type slowStore struct {
	backend.Store
	delay time.Duration
}

type slowFile struct {
	backend.File
	delay time.Duration
}

func (s *slowStore) Open(name string, ro bool) (backend.File, error) {
	f, err := s.Store.Open(name, ro)
	if err != nil {
		return nil, err
	}
	return &slowFile{File: f, delay: s.delay}, nil
}

func (f *slowFile) ReadAt(p []byte, off int64) (int, error) {
	time.Sleep(f.delay)
	return f.File.ReadAt(p, off)
}

// TestSwarmServeWhileWarming: node A warms slowly from storage; node B starts
// its swarm warm while A is still below 50% valid, fetches chunks from A
// anyway, and both finish with correct content. This is the serve-while-
// warming property: a cache serves the chunks it has before it has them all.
func TestSwarmServeWhileWarming(t *testing.T) {
	s := newStorageNode(t)
	const size = 4 * mb
	const nchunks = size >> 16
	s.addBase(t, "base.img", size, 22)

	mgrA := newManager(t, s, func(c *cachemgr.Config) {
		swarmify(c)
		c.Backing = &slowStore{Store: c.Backing, delay: 4 * time.Millisecond}
		c.SwarmWorkers = 1 // serialise A's fills so its warm takes a while
	})
	addrA, err := mgrA.ServePeers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	warmA := make(chan error, 1)
	go func() {
		lease, err := mgrA.Acquire("base.img")
		if err == nil {
			lease.Release()
		}
		warmA <- err
	}()

	// Watch A's advertised chunk map until it is warming but below 50%.
	c, err := rblock.Dial(addrA, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	key := mgrA.KeyFor("base.img")
	var frac float64
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("node A never started advertising a partial map")
		}
		enc, err := c.FetchMap(swarm.ExportName(key))
		if err == nil {
			m, err := swarm.DecodeMap(enc)
			if err != nil {
				t.Fatal(err)
			}
			if n := m.Count(); n > 0 {
				frac = float64(n) / nchunks
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if frac >= 0.5 {
		t.Fatalf("node A already %.0f%% valid; too fast to observe serve-while-warming", frac*100)
	}

	mgrB := newManager(t, s, func(c *cachemgr.Config) {
		swarmify(c)
		c.Peers = []string{addrA}
	})
	leaseB, err := mgrB.Acquire("base.img")
	if err != nil {
		t.Fatalf("swarm warm on B against a warming peer: %v", err)
	}
	leaseB.Release()
	if err := <-warmA; err != nil {
		t.Fatalf("node A warm: %v", err)
	}

	st := mgrB.Stats()
	if st.SwarmChunksPeer == 0 {
		t.Fatal("node B fetched nothing from the still-warming peer")
	}
	if st.SwarmChunksPeer+st.SwarmChunksStorage != nchunks {
		t.Fatalf("chunks: %d peer + %d storage != %d",
			st.SwarmChunksPeer, st.SwarmChunksStorage, nchunks)
	}
	t.Logf("peer was %.0f%% valid at B's start; B pulled %d/%d chunks from it",
		frac*100, st.SwarmChunksPeer, nchunks)
	readSession(t, mgrB, "base.img", "vmB", s.patterns["base.img"])
	readSession(t, mgrA, "base.img", "vmA", s.patterns["base.img"])
}

// TestSwarmThreeNodeConcurrent: three nodes cold-boot the same image at once,
// discovering each other through a tracker and trading chunks while all three
// are still warming. One node is killed mid-swarm; the survivors reassign its
// chunks and finish with caches virtually identical to the base.
func TestSwarmThreeNodeConcurrent(t *testing.T) {
	s := newStorageNode(t)
	const size = 4 * mb
	s.addBase(t, "base.img", size, 23)
	tr := swarm.NewTracker(2*time.Second, nil)

	mk := func() *cachemgr.Manager {
		m := newManager(t, s, func(c *cachemgr.Config) {
			swarmify(c)
			c.SwarmTracker = &swarm.LocalAnnouncer{T: tr}
			// Slow the storage path slightly so the swarm overlaps.
			c.Backing = &slowStore{Store: c.Backing, delay: time.Millisecond}
		})
		if _, err := m.ServePeers("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		return m
	}
	mgrs := []*cachemgr.Manager{mk(), mk(), mk()}

	var wg sync.WaitGroup
	errs := make([]error, len(mgrs))
	for i, m := range mgrs {
		wg.Add(1)
		go func(i int, m *cachemgr.Manager) {
			defer wg.Done()
			lease, err := m.Acquire("base.img")
			if err == nil {
				lease.Release()
			}
			errs[i] = err
		}(i, m)
	}
	// Kill node 2 mid-swarm: its exporter stops serving, its in-flight
	// warm is cut loose. The survivors must reassign and complete.
	time.Sleep(30 * time.Millisecond)
	go mgrs[2].Close() //nolint:errcheck // Shutdown drains in the background

	wg.Wait()
	for i, err := range errs[:2] {
		if err != nil {
			t.Fatalf("node %d warm: %v", i, err)
		}
	}
	// errs[2] may be nil (warm finished before the kill took effect) or not;
	// either is acceptable for the killed node.

	for i, m := range mgrs[:2] {
		readSession(t, m, "base.img", fmt.Sprintf("vm%d", i), s.patterns["base.img"])
	}
	for i, m := range mgrs[:2] {
		st := m.Stats()
		t.Logf("node %d: %d chunks peer / %d storage, %d reassigned",
			i, st.SwarmChunksPeer, st.SwarmChunksStorage, st.SwarmReassigned)
	}
}
