package cachemgr

import (
	"fmt"
	"os"
	"path/filepath"

	"vmicache/internal/backend"
	"vmicache/internal/boot"
	"vmicache/internal/core"
	"vmicache/internal/qcow"
	"vmicache/internal/rblock"
)

// warm produces the published cache for base under key. With SwarmEnabled it
// fetches chunk-level from whichever peers advertise each chunk (serving its
// own progress back to them meanwhile); otherwise it tries each configured
// peer wholesale — pulling the already-warm cache over rblock keeps the
// storage node off the critical path entirely — and falls back to
// copy-on-read warming from the storage node. Either way the result passes
// through publish: verify, sync, rename.
func (m *Manager) warm(base, key string) error {
	tmpName := key + tmpSuffix
	// A stale temp here is a previous failed warm; it was never published
	// and is safe to overwrite.
	m.store.Remove(tmpName) //nolint:errcheck // may not exist

	if m.dstore != nil {
		// Cheapest first: an evicted cache whose manifest survived rebuilds
		// from local blobs without touching the network.
		if m.rehydrate(key, tmpName) {
			if err := m.publish(key); err == nil {
				m.stats.dedupRehydrations.Add(1)
				m.logf("cachemgr: rehydrated %s from local chunks", key)
				return nil
			} else {
				m.logf("cachemgr: rehydration of %s failed verification: %v", key, err)
			}
			m.store.Remove(tmpName) //nolint:errcheck // reset for the fallback
		}
		// Manifest-first peer transfer: fetch only the chunks this pool
		// does not already hold, from any peer advertising the manifest.
		if len(m.cfg.Peers) > 0 {
			wire, reused, err := m.deltaWarm(key, tmpName)
			if err == nil {
				if err = m.publish(key); err == nil {
					m.stats.dedupDeltaWarms.Add(1)
					m.stats.dedupDeltaBytes.Add(wire)
					m.stats.dedupReusedBytes.Add(reused)
					m.logf("cachemgr: delta-warmed %s: %.1f MB over the wire, %.1f MB reused locally",
						key, float64(wire)/1e6, float64(reused)/1e6)
					return nil
				}
				m.logf("cachemgr: delta warm of %s failed verification: %v", key, err)
			} else {
				m.logf("cachemgr: delta warm of %s: %v; falling back", key, err)
			}
			m.store.Remove(tmpName) //nolint:errcheck // reset for the fallback
		}
	}

	if m.cfg.SwarmEnabled {
		counts, err := m.swarmWarm(base, key, tmpName)
		if err == nil {
			if err = m.publish(key); err == nil {
				m.stats.swarmWarms.Add(1)
				m.logf("cachemgr: swarm-warmed %s: %d chunks from peers (%.1f MB), %d from storage (%.1f MB), %d reassigned",
					key, counts.ChunksPeer, float64(counts.BytesPeer)/1e6,
					counts.ChunksStorage, float64(counts.BytesStorage)/1e6, counts.Reassigned)
				return nil
			}
			m.logf("cachemgr: swarm warm of %s failed verification: %v", key, err)
		} else {
			m.logf("cachemgr: swarm warm of %s: %v; falling back", key, err)
		}
		m.store.Remove(tmpName) //nolint:errcheck // reset for the fallback
	}

	for _, peer := range m.cfg.Peers {
		m.stats.peerAttempts.Add(1)
		n, err := m.fetchFromPeer(peer, key, tmpName)
		m.notePeer(peer, n, err)
		if err == nil {
			if err = m.publish(key); err == nil {
				m.stats.peerFetches.Add(1)
				m.stats.peerFetchBytes.Add(n)
				m.logf("cachemgr: pulled %s (%d bytes) from peer %s", key, n, peer)
				return nil
			}
			m.logf("cachemgr: peer copy of %s failed verification: %v", key, err)
		} else {
			m.logf("cachemgr: peer %s: %v", peer, err)
		}
		m.store.Remove(tmpName) //nolint:errcheck // reset for the next attempt
	}
	if len(m.cfg.Peers) > 0 {
		m.stats.peerFallbacks.Add(1)
	}

	if err := m.corWarm(base, tmpName); err != nil {
		// Leave the temp in place, exactly as a crash would: the next
		// warm overwrites it and a restart discards it. It is never
		// served, because attach only consults published names.
		return err
	}
	if err := m.publish(key); err != nil {
		return err
	}
	m.stats.coldWarms.Add(1)
	m.logf("cachemgr: warmed %s through copy-on-read", key)
	return nil
}

// fetchFromPeer copies the published cache key from a peer manager's rblock
// export into the local temp file. Returns bytes transferred. Dialing retries
// with capped exponential backoff: a peer restarting or still binding its
// listener is a transient, not a reason to burn the whole attempt.
func (m *Manager) fetchFromPeer(addr, key, tmpName string) (int64, error) {
	c, err := rblock.DialRetry(addr, 0, 3, rblock.DefaultBackoff, nil)
	if err != nil {
		return 0, err
	}
	defer c.Close() //nolint:errcheck // transfer already finished or failed
	c.SetTimeout(m.cfg.PeerTimeout)
	return backend.CopyFile(m.store, tmpName, rblock.RemoteStore{C: c}, key)
}

// corWarm creates a cache image in the temp file, chains it to the storage
// node's base, and replays the warm spans through it: the cache fills itself
// through the copy-on-read path, exactly as a first boot would.
func (m *Manager) corWarm(base, tmpName string) error {
	baseLoc := core.Locator{Store: m.backingName, Name: base}
	baseSize, err := core.VirtualSizeOf(m.ns, baseLoc)
	if err != nil {
		return fmt.Errorf("cachemgr: sizing base %s: %w", base, err)
	}
	quota := m.cfg.Quota
	if quota <= 0 {
		quota = fullWarmQuota(baseSize, m.cb, m.cfg.Subclusters)
	}
	tmpLoc := core.Locator{Store: storeName, Name: tmpName}
	if err := core.CreateCacheSub(m.ns, tmpLoc, baseLoc, baseSize, quota, m.cb, m.cfg.Subclusters); err != nil {
		return fmt.Errorf("cachemgr: creating cache for %s: %w", base, err)
	}
	chain, err := core.OpenChain(m.ns, tmpLoc, core.ChainOpts{WrapFile: m.warmWrap})
	if err != nil {
		return fmt.Errorf("cachemgr: opening warm chain for %s: %w", base, err)
	}
	spans := m.cfg.WarmSpans
	if spans == nil && m.cfg.WarmProfile != "" {
		spans, err = profileSpans(m.cfg.WarmProfile, baseSize)
		if err != nil {
			chain.Close() //nolint:errcheck // already failing
			return fmt.Errorf("cachemgr: warm profile %q: %w", m.cfg.WarmProfile, err)
		}
	}
	if spans == nil {
		spans = fullSpans(baseSize)
	}
	if m.cfg.WarmWorkers > 1 {
		_, err = core.WarmParallel(chain, spans, m.cfg.WarmWorkers, m.cfg.WarmBudget)
	} else {
		_, err = core.Warm(chain, spans)
	}
	if err != nil {
		chain.Close() //nolint:errcheck // already failing
		return err
	}
	// Sub-cluster caches may hold partially valid clusters after a
	// profile-guided warm; published caches must be fully completed, so
	// flush the remainder before the container is closed and renamed.
	if ci := chain.CacheImage(); ci != nil {
		if err := ci.CompleteAll(); err != nil {
			chain.Close() //nolint:errcheck // already failing
			return fmt.Errorf("cachemgr: completing cache for %s: %w", base, err)
		}
	}
	return chain.Close()
}

// Coalescing knobs for profile-guided warm plans: fold reads within 256 KiB
// of each other into one fetch, cap fetches at 4 MiB so the worker pool
// stays balanced and the in-flight budget meaningful.
const (
	profilePlanGap    = 256 << 10
	profilePlanMaxLen = 4 << 20
)

// profileSpans derives a warm plan from a named boot profile: the profile is
// scaled to the actual base size, its deterministic workload generated, and
// the read footprint exported as coalesced extents clamped to the base.
func profileSpans(name string, baseSize int64) ([]core.Span, error) {
	p, err := boot.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	if p.ImageSize > 0 && p.ImageSize != baseSize {
		p = p.Scale(float64(baseSize) / float64(p.ImageSize))
		p.ImageSize = baseSize
	}
	plan := boot.Generate(p).PrefetchPlan(profilePlanGap, profilePlanMaxLen)
	spans := make([]core.Span, 0, len(plan))
	for _, e := range plan {
		if e.Off >= baseSize {
			continue
		}
		if e.Off+e.Len > baseSize {
			e.Len = baseSize - e.Off
		}
		spans = append(spans, core.Span{Off: e.Off, Len: e.Len})
	}
	return spans, nil
}

// warmWrap applies the test failure-injection hook to the warming temp
// container (chain depth 0) only.
func (m *Manager) warmWrap(_ core.Locator, f backend.File, depth int) backend.File {
	if depth == 0 && m.cfg.WrapWarmFile != nil {
		return m.cfg.WrapWarmFile(f)
	}
	return f
}

// publish is the crash-safe commit point: verify the warmed temp with a full
// qcow.Check, sync it, mark it immutable, rename it into the published name,
// and sync the directory so the rename is durable. Only then does the cache
// enter the pool and become attachable. A crash anywhere before the rename
// leaves only a temp file, which recovery discards.
func (m *Manager) publish(key string) error {
	tmpPath := filepath.Join(m.dir, key+tmpSuffix)
	pubPath := filepath.Join(m.dir, key)

	f, err := backend.OpenOSFile(tmpPath, false)
	if err != nil {
		return err
	}
	img, err := qcow.OpenVerified(f, qcow.OpenOpts{})
	if err != nil {
		return fmt.Errorf("cachemgr: verifying %s: %w", key, err) // f closed by OpenVerified
	}
	// Close syncs the cache-used header field and fsyncs the container.
	if err := img.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmpPath, 0o444); err != nil {
		return err
	}
	if err := os.Rename(tmpPath, pubPath); err != nil {
		return err
	}
	if err := syncDir(m.dir); err != nil {
		return err
	}
	fi, err := os.Stat(pubPath)
	if err != nil {
		return err
	}
	evicted, ok := m.pool.Add(key, fi.Size())
	if !ok {
		os.Remove(pubPath) //nolint:errcheck // cannot keep it anyway
		return fmt.Errorf("cachemgr: %s (%d bytes) exceeds the node cache budget (%d)",
			key, fi.Size(), m.pool.Capacity())
	}
	m.stats.published.Add(1)
	for _, name := range evicted {
		m.logf("cachemgr: %s displaced %s", key, name)
	}
	if m.dstore != nil {
		// Derive (or confirm) the chunk manifest. Non-fatal: the published
		// cache serves fine without its dedup tier.
		if err := m.dedupPublish(key, pubPath); err != nil {
			m.logf("cachemgr: dedup manifest for %s: %v", key, err)
		}
		m.dedupReserve()
	}
	return nil
}

// fullWarmQuota sizes a quota big enough to hold every data cluster of the
// base plus all fill metadata (L2 tables, refcount blocks), so a whole-image
// warm never trips the cache-full brake.
func fullWarmQuota(size int64, cb int, sub bool) int64 {
	cs := int64(1) << cb
	clusters := ceilDiv(size, cs)
	l2Tables := ceilDiv(clusters, cs/8)
	refBlocks := ceilDiv(clusters, cs/2)
	return qcow.MinCacheQuotaSub(size, cb, sub) + (clusters+l2Tables+refBlocks+8)*cs
}

// fullSpans covers [0, size) in 1 MiB warm spans.
func fullSpans(size int64) []core.Span {
	const step = 1 << 20
	spans := make([]core.Span, 0, ceilDiv(size, step))
	for off := int64(0); off < size; off += step {
		n := int64(step)
		if size-off < n {
			n = size - off
		}
		spans = append(spans, core.Span{Off: off, Len: n})
	}
	return spans
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// syncDir fsyncs a directory, making a completed rename durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close() //nolint:errcheck // read-only directory handle
	return d.Sync()
}
