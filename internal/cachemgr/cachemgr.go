// Package cachemgr implements the node-local VM image cache manager — the
// subsystem §3.4 of the paper leaves as future work ("allocation of VMs to
// nodes with an existing warm cache" and "eviction of VMI caches whenever the
// allocated cache space is full"). The simulators (internal/sched,
// internal/cloudsim) model these policies; this package executes them on a
// real node:
//
//   - One cache directory holds published, immutable warm caches, keyed by
//     base-image identity and the (cluster-size, quota) creation parameters.
//   - Concurrent boot sessions for the same base share one cache: the first
//     session warms it through the copy-on-read path, later sessions block on
//     the in-flight warm and then attach read-only (singleflight admission).
//   - Publication is crash-safe: a cache warms into a ".tmp" file, is
//     verified with qcow.Check, synced, and renamed into its published name.
//     A temp file found at startup is a crashed warm and is discarded — it is
//     never served.
//   - Published caches are evicted least-recently-used under the node's disk
//     budget (core.Pool), with leased caches pinned against eviction and the
//     evicted files actually deleted.
//   - On a cold miss the manager first tries to pull the warm cache wholesale
//     from a configured peer node over rblock, falling back to copy-on-read
//     warming from the storage node — taking the storage node off the
//     critical path, as the federated-distribution literature argues.
package cachemgr

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmicache/internal/backend"
	"vmicache/internal/core"
	"vmicache/internal/dedup"
	"vmicache/internal/metrics"
	"vmicache/internal/qcow"
	"vmicache/internal/rblock"
	"vmicache/internal/swarm"
)

const (
	// storeName is the namespace name of the manager's cache directory.
	storeName = "nodecache"
	// scratchName is the namespace name of the per-session CoW scratch.
	scratchName = "scratch"

	// pubSuffix marks published (immutable, verified) cache files.
	pubSuffix = ".vmic"
	// tmpSuffix marks in-progress warms; appended to the published name.
	tmpSuffix = ".tmp"

	// DefaultPeerTimeout bounds each peer-transfer request.
	DefaultPeerTimeout = 10 * time.Second

	// shutdownDrain is how long Close lets the peer exporter drain.
	shutdownDrain = 5 * time.Second
)

// ErrClosed is returned by operations on a closed manager.
var ErrClosed = errors.New("cachemgr: manager closed")

// Config parameterises a Manager.
type Config struct {
	// Dir is the node's cache directory (created if absent). One Manager
	// owns a directory at a time.
	Dir string

	// Budget bounds the total bytes of published caches on this node
	// (<= 0 means unbounded). Eviction is LRU among unpinned caches.
	Budget int64

	// Quota is the per-cache fill quota passed to qcow (0 sizes the quota
	// to hold the whole base plus fill metadata). It is part of the cache
	// key: caches built with different quotas are distinct.
	Quota int64

	// ClusterBits selects the cache images' cluster size (0 means
	// qcow.CacheClusterBits). Also part of the cache key.
	ClusterBits int

	// Subclusters enables the sub-cluster extension on the caches this
	// node builds: cold misses fill at 4 KiB granularity and partially
	// valid clusters are completed before publication. Requires a cluster
	// size of at least 8 KiB (ClusterBits >= 13). Part of the cache key —
	// sub-cluster and whole-cluster caches of the same base are distinct.
	Subclusters bool

	// Backing is the storage node's store holding the base images —
	// typically an rblock.RemoteStore, but any backend.Store works.
	Backing backend.Store

	// BackingName is the namespace name backing-file strings use
	// (default "storage"); cache headers record "<BackingName>:<base>".
	BackingName string

	// Peers lists rblock addresses of peer cache managers tried, in
	// order, before falling back to copy-on-read warming. With
	// SwarmEnabled they are also the static swarm peer set.
	Peers []string

	// PeerTimeout bounds each peer-transfer request (0 means
	// DefaultPeerTimeout).
	PeerTimeout time.Duration

	// PeerConcurrency bounds how many peer-transfer opens this node
	// serves at once (wholesale pulls and swarm chunk views combined;
	// 0 means DefaultPeerConcurrency). At the cap, opens are refused
	// with a retryable "unavailable" status rather than queued, so
	// fetching peers reassign to another source instead of convoying.
	PeerConcurrency int

	// Dedup attaches a content-addressed chunk store (<Dir>/dedup) to the
	// cache lifecycle: every publication derives a chunk manifest, sibling
	// caches share chunk storage, evicted caches rehydrate from local
	// blobs without touching the network, and peer warms become
	// manifest-first — only chunks this pool does not already hold move,
	// compressed. The blob tree's physical bytes are charged against
	// Budget once, however many caches share them.
	Dedup bool

	// DedupWorkers is the chunk hash/compress/decompress parallelism of
	// the dedup pipeline: publication (manifest build), rehydration and
	// delta-warm materialization all spread per-chunk work across this
	// many goroutines (0 means GOMAXPROCS; 1 forces the serial path).
	DedupWorkers int

	// SwarmEnabled switches cold warms from wholesale peer pulls to
	// chunk-level multi-source fetching: each chunk is pulled from
	// whichever peer advertises it (rarest first), falling back to the
	// storage node, and the warming cache serves its valid chunks to
	// other peers while it fills.
	SwarmEnabled bool

	// SwarmSelf is this node's peer-export address exactly as peers dial
	// it. It names this node in tracker announces and rendezvous
	// hashing; empty means fetch-only.
	SwarmSelf string

	// SwarmTracker, when non-nil, is the announce service used for peer
	// discovery (an *swarm.LocalAnnouncer in-process, or a
	// *swarm.TrackerClient over HTTP). Nil relies on the static Peers
	// list.
	SwarmTracker swarm.Announcer

	// SwarmChunkBits selects the swarm transfer chunk size, 1<<bits
	// bytes (0 means DefaultSwarmChunkBits = 64 KiB). All nodes sharing
	// images must agree.
	SwarmChunkBits int

	// SwarmWorkers is the per-warm fetch parallelism (0 means 4).
	SwarmWorkers int

	// SwarmPeerRate caps bytes/s drawn from each peer (0 = unlimited).
	SwarmPeerRate int64

	// SwarmPeerInflight caps in-flight chunks per peer (0 means 4).
	SwarmPeerInflight int

	// SwarmPrimaryHold delays the first storage-node fetch so tracker
	// membership can converge before rendezvous primaries are computed.
	SwarmPrimaryHold time.Duration

	// SwarmFallbackAfter is how long a chunk may starve (no usable peer,
	// not this node's storage primary) before it goes to the storage
	// node anyway (0 means 2s).
	SwarmFallbackAfter time.Duration

	// SwarmMaxPeers bounds how many peers each swarm warm polls and
	// fetches from (0 = unbounded). Large deployments cap the active
	// peer set so map-poll traffic stays O(N·MaxPeers), not O(N²).
	SwarmMaxPeers int

	// SwarmRefresh is the announce + chunk-map poll interval (0 means
	// swarm.DefaultRefresh).
	SwarmRefresh time.Duration

	// WarmSpans are the guest-read spans replayed to warm a cold cache
	// (nil warms the whole base — suitable for small images; production
	// deployments pass a boot profile).
	WarmSpans []core.Span

	// WarmProfile, when non-empty and WarmSpans is nil, selects
	// profile-guided prewarming: the named boot profile (boot.ProfileByName)
	// is scaled to the base's size and its coalesced read footprint
	// becomes the warm plan, so a cold warm fetches the boot working set
	// instead of the whole image.
	WarmProfile string

	// WarmWorkers parallelises cold warming (<= 1 replays the plan
	// serially). Worth raising when the backing transport pipelines —
	// rblock does.
	WarmWorkers int

	// WarmBudget bounds the bytes a parallel warm keeps in flight
	// (0 means core.DefaultWarmBudget).
	WarmBudget int64

	// ZeroCopy serves peer transfers of published caches with sendfile(2)
	// straight from the cache file to the socket (published caches are
	// immutable 0444 files, exactly the contract the fast path needs).
	// Exports that cannot offer a raw descriptor — swarm chunk views
	// assemble bytes — keep the copy path per request.
	ZeroCopy bool

	// MmapWarm maps published caches' containers on attach so warm reads
	// copy from the mapping instead of issuing a pread each; trades address
	// space for syscalls on read-heavy boot storms. Writable images and
	// non-os-backed containers silently keep the pread path.
	MmapWarm bool

	// Logf, when non-nil, receives lifecycle events.
	Logf func(format string, args ...any)

	// WrapWarmFile, when non-nil, wraps the temp container during
	// copy-on-read warming — the failure-injection hook the crash tests
	// use (backend.FaultyFile) to kill a warm mid-fill.
	WrapWarmFile func(f backend.File) backend.File

	// Metrics, when non-nil, receives the manager's instruments (and the
	// peer exporter's, once ServePeers runs) under vmicache_cachemgr_*.
	Metrics *metrics.Registry
}

// counters is the live form behind Stats snapshots.
type counters struct {
	coldWarms      atomic.Int64
	warmFailures   atomic.Int64
	peerAttempts   atomic.Int64
	peerFetches    atomic.Int64
	peerFetchBytes atomic.Int64
	peerFallbacks  atomic.Int64
	attaches       atomic.Int64
	sharedWaits    atomic.Int64
	published      atomic.Int64
	discardedTemps atomic.Int64
	droppedCorrupt atomic.Int64

	dedupRehydrations  atomic.Int64
	dedupDeltaWarms    atomic.Int64
	dedupDeltaBytes    atomic.Int64
	dedupReusedBytes   atomic.Int64
	dedupChunkBatches  atomic.Int64 // vectored chunk-fetch round trips
	dedupBatchedChunks atomic.Int64 // chunks that arrived via those batches

	// dedupBuildDuration and dedupMaterializeDuration record the wall time
	// (ns) of manifest builds and image materializations — the two ends of
	// the parallel dedup pipeline.
	dedupBuildDuration       metrics.AtomicHistogram
	dedupMaterializeDuration metrics.AtomicHistogram

	swarmWarms         atomic.Int64
	swarmChunksPeer    atomic.Int64
	swarmChunksStorage atomic.Int64
	swarmBytesPeer     atomic.Int64
	swarmBytesStorage  atomic.Int64
	swarmReassigned    atomic.Int64

	// warmDuration records end-to-end successful warm durations (ns),
	// whichever path (peer transfer or copy-on-read) satisfied them.
	warmDuration metrics.AtomicHistogram
}

// Stats is a point-in-time snapshot of the manager's activity.
type Stats struct {
	ColdWarms      int64 // caches warmed through the CoR path
	WarmFailures   int64 // warms that failed (peer and CoR both)
	PeerAttempts   int64 // peer transfers tried
	PeerFetches    int64 // caches pulled wholesale from a peer
	PeerFetchBytes int64 // bytes transferred from peers
	PeerFallbacks  int64 // cold misses where every peer failed
	Attaches       int64 // sessions attached to a published cache
	SharedWaits    int64 // sessions that waited on an in-flight warm
	Published      int64 // successful publications this run
	DiscardedTemps int64 // crashed warms discarded at startup
	DroppedCorrupt int64 // published files failing verification at startup

	DedupRehydrations int64 // caches rebuilt from local blobs, zero network
	DedupDeltaWarms   int64 // caches warmed manifest-first from peers
	DedupDeltaBytes   int64 // compressed bytes actually moved by delta warms
	DedupReusedBytes  int64 // raw bytes delta warms reused from local blobs
	Dedup             dedup.StoreStats

	SwarmWarms         int64 // caches warmed through chunk-level swarm fetch
	SwarmChunksPeer    int64 // swarm chunks fetched from peers
	SwarmChunksStorage int64 // swarm chunks fetched from the storage node
	SwarmBytesPeer     int64 // swarm bytes fetched from peers
	SwarmBytesStorage  int64 // swarm bytes fetched from the storage node
	SwarmReassigned    int64 // swarm chunk fetches reassigned after a failure

	PoolHits, PoolMisses, Evictions int64
	Used, Budget                    int64
	Reserved                        int64 // dedup blob bytes charged against the budget
	Resident                        int

	// Peers details every peer this node has transferred from, keyed by
	// address (wholesale pulls and swarm chunk reads combined).
	Peers map[string]PeerDetail
}

// String renders the snapshot for status output.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "caches: %d resident, %d/%d bytes used", s.Resident, s.Used, s.Budget)
	fmt.Fprintf(&b, "\nwarm: %d cold (CoR), %d from peers (%.1f MB), %d peer fallbacks, %d failures",
		s.ColdWarms, s.PeerFetches, float64(s.PeerFetchBytes)/1e6, s.PeerFallbacks, s.WarmFailures)
	if s.Dedup.Manifests > 0 || s.DedupRehydrations+s.DedupDeltaWarms > 0 {
		fmt.Fprintf(&b, "\ndedup: %d manifests, %d blobs, %d/%d unique/logical bytes (%.1f%% shared), %d rehydrations, %d delta warms (%.1f MB wire, %.1f MB reused)",
			s.Dedup.Manifests, s.Dedup.Blobs, s.Dedup.UniqueCompBytes, s.Dedup.LogicalBytes,
			100*float64(s.Dedup.SharedBytes)/float64(max(s.Dedup.LogicalBytes, 1)),
			s.DedupRehydrations, s.DedupDeltaWarms,
			float64(s.DedupDeltaBytes)/1e6, float64(s.DedupReusedBytes)/1e6)
	}
	if s.SwarmWarms > 0 || s.SwarmChunksPeer+s.SwarmChunksStorage > 0 {
		fmt.Fprintf(&b, "\nswarm: %d warms, %d chunks from peers (%.1f MB), %d from storage (%.1f MB), %d reassigned",
			s.SwarmWarms, s.SwarmChunksPeer, float64(s.SwarmBytesPeer)/1e6,
			s.SwarmChunksStorage, float64(s.SwarmBytesStorage)/1e6, s.SwarmReassigned)
	}
	fmt.Fprintf(&b, "\nsessions: %d attaches, %d shared singleflight waits", s.Attaches, s.SharedWaits)
	fmt.Fprintf(&b, "\npool: %d hits, %d misses, %d evictions", s.PoolHits, s.PoolMisses, s.Evictions)
	fmt.Fprintf(&b, "\nrecovery: %d temps discarded, %d corrupt caches dropped", s.DiscardedTemps, s.DroppedCorrupt)
	if len(s.Peers) > 0 {
		addrs := make([]string, 0, len(s.Peers))
		for a := range s.Peers {
			addrs = append(addrs, a)
		}
		sort.Strings(addrs)
		for _, a := range addrs {
			d := s.Peers[a]
			fmt.Fprintf(&b, "\npeer %s: %d attempts, %d failures, %.1f MB", a, d.Attempts, d.Failures, float64(d.Bytes)/1e6)
			if d.LastErr != "" {
				fmt.Fprintf(&b, ", last error: %s", d.LastErr)
			}
		}
	}
	return b.String()
}

// warmState is one in-flight singleflight warm.
type warmState struct {
	done chan struct{}
	err  error // valid after done is closed
}

// Manager owns one node's cache directory.
type Manager struct {
	cfg         Config
	dir         string
	cb          int
	backingName string
	store       *backend.DirStore
	scratch     *backend.MemStore
	ns          *core.Namespace
	pool        *core.Pool

	// dstore is the content-addressed chunk store, nil unless Config.Dedup.
	dstore *dedup.BlobStore

	mu       sync.Mutex
	warming  map[string]*warmState
	closed   bool
	exporter *rblock.Server

	// peerSem bounds concurrently served peer-transfer opens.
	peerSem chan struct{}

	// swarmMu guards the chunk-wise export registry and live sessions.
	swarmMu      sync.Mutex
	swarmExports map[string]*swarmExport
	swarmLive    map[*swarm.Session]struct{}

	// peerMu guards the per-peer transfer records.
	peerMu     sync.Mutex
	peerDetail map[string]*PeerDetail

	stats counters
}

// New opens (or creates) the cache directory, discards crashed warms,
// verifies surviving published caches, and seeds the LRU pool with them in
// modification-time order (oldest least recently used).
func New(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, errors.New("cachemgr: Config.Dir is required")
	}
	if cfg.Backing == nil {
		return nil, errors.New("cachemgr: Config.Backing is required")
	}
	cb := cfg.ClusterBits
	if cb == 0 {
		cb = qcow.CacheClusterBits
	}
	if cfg.Subclusters && cb < qcow.SubclusterBits+1 {
		return nil, fmt.Errorf("cachemgr: subclusters need ClusterBits >= %d (got %d)",
			qcow.SubclusterBits+1, cb)
	}
	backingName := cfg.BackingName
	if backingName == "" {
		backingName = "storage"
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = DefaultPeerTimeout
	}
	store, err := backend.NewDirStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	scratch := backend.NewMemStore()
	ns := core.NewNamespace(storeName, store)
	ns.Register(backingName, cfg.Backing)
	ns.Register(scratchName, scratch)

	peerSlots := cfg.PeerConcurrency
	if peerSlots <= 0 {
		peerSlots = DefaultPeerConcurrency
	}
	m := &Manager{
		cfg:          cfg,
		dir:          cfg.Dir,
		cb:           cb,
		backingName:  backingName,
		store:        store,
		scratch:      scratch,
		ns:           ns,
		pool:         core.NewPool(cfg.Budget),
		warming:      make(map[string]*warmState),
		peerSem:      make(chan struct{}, peerSlots),
		swarmExports: make(map[string]*swarmExport),
		swarmLive:    make(map[*swarm.Session]struct{}),
		peerDetail:   make(map[string]*PeerDetail),
	}
	m.pool.OnEvict = func(name string, size int64) {
		m.closeSwarmExport(name)
		if err := os.Remove(filepath.Join(m.dir, name)); err != nil {
			m.logf("cachemgr: evicting %s: %v", name, err)
			return
		}
		m.logf("cachemgr: evicted %s (%d bytes)", name, size)
	}
	if err := m.recover(); err != nil {
		return nil, err
	}
	if err := m.openDedup(); err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		m.registerMetrics(cfg.Metrics)
	}
	return m, nil
}

// registerMetrics exposes the manager's counters, the pool's state, and the
// warm-duration histogram. All instruments sample live atomics (or take the
// pool mutex briefly) at scrape time; the admission and data paths are
// untouched.
func (m *Manager) registerMetrics(r *metrics.Registry) {
	s := &m.stats
	var l metrics.Labels
	r.CounterFunc("vmicache_cachemgr_cold_warms_total",
		"Caches warmed through the copy-on-read path.", l, s.coldWarms.Load)
	r.CounterFunc("vmicache_cachemgr_warm_failures_total",
		"Warms that failed (peer and copy-on-read both).", l, s.warmFailures.Load)
	r.CounterFunc("vmicache_cachemgr_peer_attempts_total",
		"Peer transfers tried.", l, s.peerAttempts.Load)
	r.CounterFunc("vmicache_cachemgr_peer_fetches_total",
		"Caches pulled wholesale from a peer.", l, s.peerFetches.Load)
	r.CounterFunc("vmicache_cachemgr_peer_fetch_bytes_total",
		"Bytes transferred from peers.", l, s.peerFetchBytes.Load)
	r.CounterFunc("vmicache_cachemgr_peer_fallbacks_total",
		"Cold misses where every peer failed.", l, s.peerFallbacks.Load)
	r.CounterFunc("vmicache_cachemgr_attaches_total",
		"Sessions attached to a published cache.", l, s.attaches.Load)
	r.CounterFunc("vmicache_cachemgr_shared_waits_total",
		"Sessions that waited on an in-flight warm (singleflight followers).", l, s.sharedWaits.Load)
	r.CounterFunc("vmicache_cachemgr_published_total",
		"Successful cache publications this run.", l, s.published.Load)
	r.CounterFunc("vmicache_cachemgr_discarded_temps_total",
		"Crashed warms discarded at startup.", l, s.discardedTemps.Load)
	r.CounterFunc("vmicache_cachemgr_dropped_corrupt_total",
		"Published files failing verification at startup.", l, s.droppedCorrupt.Load)
	r.CounterFunc("vmicache_cachemgr_pool_hits_total",
		"Cache-pool lookups that found a resident cache.", l,
		func() int64 { h, _, _ := m.pool.Stats(); return h })
	r.CounterFunc("vmicache_cachemgr_pool_misses_total",
		"Cache-pool lookups that missed.", l,
		func() int64 { _, mi, _ := m.pool.Stats(); return mi })
	r.CounterFunc("vmicache_cachemgr_evictions_total",
		"Caches evicted by the LRU budget.", l,
		func() int64 { _, _, e := m.pool.Stats(); return e })
	r.GaugeFunc("vmicache_cachemgr_used_bytes",
		"Bytes of published caches currently on disk.", l, m.pool.Used)
	r.GaugeFunc("vmicache_cachemgr_budget_bytes",
		"Configured cache budget.", l, m.pool.Capacity)
	r.GaugeFunc("vmicache_cachemgr_resident_caches",
		"Published caches currently resident.", l,
		func() int64 { return int64(m.pool.Len()) })
	r.GaugeFunc("vmicache_cachemgr_pinned_caches",
		"Resident caches pinned by at least one lease.", l,
		func() int64 { return int64(m.pool.Pinned()) })
	r.RegisterHistogram("vmicache_cachemgr_warm_duration_ns",
		"End-to-end duration of successful warms (peer or copy-on-read).", l, &s.warmDuration)

	if m.dstore != nil {
		r.CounterFunc("vmicache_dedup_rehydrations_total",
			"Caches rebuilt from locally-held chunks with zero network traffic.", l,
			s.dedupRehydrations.Load)
		r.CounterFunc("vmicache_dedup_delta_warms_total",
			"Caches warmed manifest-first from peers.", l, s.dedupDeltaWarms.Load)
		r.CounterFunc("vmicache_dedup_delta_bytes_total",
			"Compressed bytes actually moved by delta warms.", l, s.dedupDeltaBytes.Load)
		r.CounterFunc("vmicache_dedup_reused_bytes_total",
			"Raw bytes delta warms reused from chunks already held.", l, s.dedupReusedBytes.Load)
		r.CounterFunc("vmicache_dedup_chunk_batches_total",
			"Vectored chunk-fetch round trips issued by delta warms.", l,
			s.dedupChunkBatches.Load)
		r.CounterFunc("vmicache_dedup_chunk_batch_chunks_total",
			"Chunks that arrived through vectored batch fetches.", l,
			s.dedupBatchedChunks.Load)
		r.RegisterHistogram("vmicache_dedup_build_duration_ns",
			"Wall time of chunk-manifest builds (publication pipeline).", l,
			&s.dedupBuildDuration)
		r.RegisterHistogram("vmicache_dedup_materialize_duration_ns",
			"Wall time of image materializations from blobs (rehydrate/delta).", l,
			&s.dedupMaterializeDuration)
		r.GaugeFunc("vmicache_dedup_manifests",
			"Chunk manifests held by the blob store.", l,
			func() int64 { return int64(m.dstore.Stats().Manifests) })
		r.GaugeFunc("vmicache_dedup_blobs",
			"Unique chunks held by the blob store.", l,
			func() int64 { return int64(m.dstore.Stats().Blobs) })
		r.GaugeFunc("vmicache_dedup_logical_bytes",
			"Sum of manifest lengths (bytes the caches would use unshared).", l,
			func() int64 { return m.dstore.Stats().LogicalBytes })
		r.GaugeFunc("vmicache_dedup_unique_bytes",
			"Compressed bytes the blob tree actually occupies.", l,
			m.dstore.UniqueCompBytes)
		r.GaugeFunc("vmicache_dedup_shared_bytes",
			"Logical bytes deduplicated away by chunk sharing.", l,
			func() int64 { return m.dstore.Stats().SharedBytes })
		r.GaugeFunc("vmicache_dedup_ratio_percent",
			"Shared bytes as a percentage of logical bytes.", l,
			func() int64 {
				st := m.dstore.Stats()
				if st.LogicalBytes == 0 {
					return 0
				}
				return 100 * st.SharedBytes / st.LogicalBytes
			})
	}

	r.CounterFunc("vmicache_swarm_warms_total",
		"Caches warmed through chunk-level swarm fetch.", l, s.swarmWarms.Load)
	r.CounterFunc("vmicache_swarm_chunks_total",
		"Swarm chunks fetched from peers.", metrics.Labels{"source": "peer"},
		func() int64 { return m.swarmCounts().ChunksPeer })
	r.CounterFunc("vmicache_swarm_chunks_total",
		"Swarm chunks fetched from the storage node.", metrics.Labels{"source": "storage"},
		func() int64 { return m.swarmCounts().ChunksStorage })
	r.CounterFunc("vmicache_swarm_bytes_total",
		"Swarm bytes fetched from peers.", metrics.Labels{"source": "peer"},
		func() int64 { return m.swarmCounts().BytesPeer })
	r.CounterFunc("vmicache_swarm_bytes_total",
		"Swarm bytes fetched from the storage node.", metrics.Labels{"source": "storage"},
		func() int64 { return m.swarmCounts().BytesStorage })
	r.CounterFunc("vmicache_swarm_reassigned_total",
		"Swarm chunk fetches reassigned after a source failure.", l,
		func() int64 { return m.swarmCounts().Reassigned })
	r.GaugeFunc("vmicache_swarm_exports",
		"Images currently served chunk-wise to peers.", l,
		func() int64 {
			m.swarmMu.Lock()
			defer m.swarmMu.Unlock()
			return int64(len(m.swarmExports))
		})
}

func (m *Manager) logf(format string, args ...any) { m.cfg.Logf(format, args...) }

// Dir reports the managed cache directory.
func (m *Manager) Dir() string { return m.dir }

// recover scans the cache directory after a (possible) crash: temp files are
// partially-warmed caches whose publication never happened — discarded, never
// served. Published files are re-verified; any that fail qcow.Check (torn
// writes under the rename, bit rot) are dropped. Survivors seed the pool.
func (m *Manager) recover() error {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return err
	}
	type pub struct {
		name  string
		size  int64
		mtime time.Time
	}
	var pubs []pub
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, pubSuffix+tmpSuffix):
			if err := os.Remove(filepath.Join(m.dir, name)); err != nil {
				return fmt.Errorf("cachemgr: discarding crashed warm %s: %w", name, err)
			}
			m.stats.discardedTemps.Add(1)
			m.logf("cachemgr: discarded crashed warm %s", name)
		case strings.HasSuffix(name, pubSuffix):
			fi, err := e.Info()
			if err != nil {
				return err
			}
			if err := m.verifyPublished(name); err != nil {
				if rmErr := os.Remove(filepath.Join(m.dir, name)); rmErr != nil {
					return fmt.Errorf("cachemgr: dropping corrupt cache %s: %w", name, rmErr)
				}
				m.stats.droppedCorrupt.Add(1)
				m.logf("cachemgr: dropped corrupt cache %s: %v", name, err)
				continue
			}
			pubs = append(pubs, pub{name: name, size: fi.Size(), mtime: fi.ModTime()})
		}
	}
	sort.Slice(pubs, func(i, j int) bool { return pubs[i].mtime.Before(pubs[j].mtime) })
	for _, p := range pubs {
		if _, ok := m.pool.Add(p.name, p.size); !ok {
			// Larger than the whole budget: cannot be kept.
			os.Remove(filepath.Join(m.dir, p.name)) //nolint:errcheck // best-effort drop
			m.logf("cachemgr: dropped %s (%d bytes exceeds budget %d)", p.name, p.size, m.cfg.Budget)
		}
	}
	return nil
}

// verifyPublished runs the full consistency check on a published cache.
func (m *Manager) verifyPublished(name string) error {
	f, err := m.store.Open(name, true)
	if err != nil {
		return err
	}
	img, err := qcow.OpenVerified(f, qcow.OpenOpts{ReadOnly: true})
	if err != nil {
		return err // OpenVerified closed f
	}
	return img.Close()
}

// KeyFor derives the published cache name for a base image under this
// manager's creation parameters. Managers with the same (cluster-size,
// quota, sub-cluster) configuration derive the same key, which is what makes
// peer transfer work: the key is the wire name of the export.
func (m *Manager) KeyFor(base string) string {
	sc := ""
	if m.cfg.Subclusters {
		sc = "-sc"
	}
	return fmt.Sprintf("%s-cb%d-q%d%s%s", sanitize(base), m.cb, m.cfg.Quota, sc, pubSuffix)
}

// sanitize maps a base-image name to a filesystem- and wire-safe token.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// Lease pins a published cache for one boot session; the cache cannot be
// evicted until every lease on it is released.
type Lease struct {
	m    *Manager
	key  string
	base string
	once sync.Once
}

// Key reports the published cache name the lease pins.
func (l *Lease) Key() string { return l.key }

// Locator reports the cache's position in the manager's namespace.
func (l *Lease) Locator() core.Locator { return core.Locator{Store: storeName, Name: l.key} }

// Release unpins the cache. Releasing twice is a no-op.
func (l *Lease) Release() { l.once.Do(func() { l.m.pool.Unpin(l.key) }) }

// Acquire returns a lease on the warm cache for base, warming it first if
// needed. Concurrent calls for the same base perform exactly one warm: the
// first caller becomes the warmer, the rest wait on its outcome and then
// attach to the published cache (singleflight admission).
func (m *Manager) Acquire(base string) (*Lease, error) {
	key := m.KeyFor(base)
	for attempt := 0; ; attempt++ {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, ErrClosed
		}
		if ws := m.warming[key]; ws != nil {
			m.mu.Unlock()
			m.stats.sharedWaits.Add(1)
			<-ws.done
			if ws.err != nil {
				return nil, ws.err
			}
			continue // published by the warmer; attach on the next pass
		}
		if m.pool.Lookup(key) && m.pool.Pin(key) {
			m.mu.Unlock()
			m.stats.attaches.Add(1)
			return &Lease{m: m, key: key, base: base}, nil
		}
		if attempt >= 3 {
			m.mu.Unlock()
			return nil, fmt.Errorf("cachemgr: %s: published cache evicted before attach, repeatedly", key)
		}
		ws := &warmState{done: make(chan struct{})}
		m.warming[key] = ws
		m.mu.Unlock()

		warmStart := time.Now()
		ws.err = m.warm(base, key)
		if ws.err == nil {
			m.stats.warmDuration.Observe(time.Since(warmStart).Nanoseconds())
		}
		m.mu.Lock()
		delete(m.warming, key)
		m.mu.Unlock()
		close(ws.done)
		if ws.err != nil {
			m.stats.warmFailures.Add(1)
			return nil, ws.err
		}
	}
}

// Session is one VM boot attached to a shared cache: a private CoW image
// chained onto the published cache, which is in turn chained onto the
// storage node's base.
type Session struct {
	// Chain serves the session's guest I/O; [0] is the private CoW top.
	Chain *core.Chain

	m       *Manager
	lease   *Lease
	cowName string
	closed  bool
}

// Boot acquires the warm cache for base and opens a boot session on it.
// vmID distinguishes concurrent sessions for the same base.
func (m *Manager) Boot(base, vmID string) (*Session, error) {
	lease, err := m.Acquire(base)
	if err != nil {
		return nil, err
	}
	cacheLoc := lease.Locator()
	size, err := core.VirtualSizeOf(m.ns, cacheLoc)
	if err != nil {
		lease.Release()
		return nil, err
	}
	cowName := sanitize(vmID) + "-" + lease.key + ".cow"
	if err := core.CreateCoW(m.ns, core.Locator{Store: scratchName, Name: cowName}, cacheLoc, size, 0); err != nil {
		lease.Release()
		return nil, err
	}
	// BackingReadOnly: the published cache is immutable — attach without
	// the §4.3 read-write probe, which its file permissions would reject.
	chain, err := core.OpenChain(m.ns, core.Locator{Store: scratchName, Name: cowName},
		core.ChainOpts{BackingReadOnly: true, MmapWarm: m.cfg.MmapWarm})
	if err != nil {
		m.scratch.Remove(cowName) //nolint:errcheck // unwinding
		lease.Release()
		return nil, err
	}
	return &Session{Chain: chain, m: m, lease: lease, cowName: cowName}, nil
}

// Close tears the session down: the chain closes, the private CoW image is
// deleted, and the cache lease is released.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.Chain.Close()
	s.m.scratch.Remove(s.cowName) //nolint:errcheck // scratch is ephemeral
	s.lease.Release()
	return err
}

// Stats returns a snapshot of the manager's activity.
func (m *Manager) Stats() Stats {
	hits, misses, evictions := m.pool.Stats()
	sc := m.swarmCounts()
	return Stats{
		DedupRehydrations: m.stats.dedupRehydrations.Load(),
		DedupDeltaWarms:   m.stats.dedupDeltaWarms.Load(),
		DedupDeltaBytes:   m.stats.dedupDeltaBytes.Load(),
		DedupReusedBytes:  m.stats.dedupReusedBytes.Load(),
		Dedup:             m.DedupStats(),

		SwarmWarms:         m.stats.swarmWarms.Load(),
		SwarmChunksPeer:    sc.ChunksPeer,
		SwarmChunksStorage: sc.ChunksStorage,
		SwarmBytesPeer:     sc.BytesPeer,
		SwarmBytesStorage:  sc.BytesStorage,
		SwarmReassigned:    sc.Reassigned,
		Peers:              m.peerDetails(),

		ColdWarms:      m.stats.coldWarms.Load(),
		WarmFailures:   m.stats.warmFailures.Load(),
		PeerAttempts:   m.stats.peerAttempts.Load(),
		PeerFetches:    m.stats.peerFetches.Load(),
		PeerFetchBytes: m.stats.peerFetchBytes.Load(),
		PeerFallbacks:  m.stats.peerFallbacks.Load(),
		Attaches:       m.stats.attaches.Load(),
		SharedWaits:    m.stats.sharedWaits.Load(),
		Published:      m.stats.published.Load(),
		DiscardedTemps: m.stats.discardedTemps.Load(),
		DroppedCorrupt: m.stats.droppedCorrupt.Load(),
		PoolHits:       hits,
		PoolMisses:     misses,
		Evictions:      evictions,
		Used:           m.pool.Used(),
		Budget:         m.pool.Capacity(),
		Reserved:       m.pool.Reserved(),
		Resident:       m.pool.Len(),
	}
}

// Close shuts the manager down: new Acquires fail, and the peer exporter (if
// serving) drains gracefully.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	exp := m.exporter
	m.mu.Unlock()

	// Close any published caches held open for chunk-wise serving.
	m.swarmMu.Lock()
	exports := m.swarmExports
	m.swarmExports = make(map[string]*swarmExport)
	m.swarmMu.Unlock()
	for _, ex := range exports {
		if ex.owned {
			ex.img.Close() //nolint:errcheck // teardown
		}
	}

	if exp != nil {
		return exp.Shutdown(shutdownDrain)
	}
	return nil
}
