package cachemgr_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vmicache/internal/backend"
	"vmicache/internal/cachemgr"
	"vmicache/internal/core"
	"vmicache/internal/qcow"
	"vmicache/internal/rblock"
)

const mb = 1 << 20

// storageNode is a test stand-in for the storage node: an rblock server over
// a memory store holding patterned base images.
type storageNode struct {
	store *backend.MemStore
	srv   *rblock.Server
	addr  string
	// patterns maps base name to its full content.
	patterns map[string][]byte
}

func newStorageNode(t *testing.T) *storageNode {
	t.Helper()
	store := backend.NewMemStore()
	srv := rblock.NewServer(store, rblock.ServerOpts{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("storage listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	return &storageNode{store: store, srv: srv, addr: addr, patterns: map[string][]byte{}}
}

// addBase installs a patterned base image of the given size.
func (s *storageNode) addBase(t *testing.T, name string, size int64, seed int64) {
	t.Helper()
	pat := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(pat)
	content := backend.NewMemFileSize(size)
	if err := backend.WriteFull(content, pat, 0); err != nil {
		t.Fatal(err)
	}
	ns := core.NewNamespace("s", s.store)
	if err := core.CreateBase(ns, core.Locator{Store: "s", Name: name}, size, 16,
		qcow.RawSource{R: content, N: size}); err != nil {
		t.Fatalf("CreateBase %s: %v", name, err)
	}
	s.patterns[name] = pat
}

// newManager builds a Manager against the storage node; mut tweaks the
// config before New.
func newManager(t *testing.T, s *storageNode, mut func(*cachemgr.Config)) *cachemgr.Manager {
	t.Helper()
	client, err := rblock.Dial(s.addr, 0)
	if err != nil {
		t.Fatalf("dial storage: %v", err)
	}
	t.Cleanup(func() { client.Close() }) //nolint:errcheck
	cfg := cachemgr.Config{
		Dir:     t.TempDir(),
		Backing: rblock.RemoteStore{C: client},
		Logf:    t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := cachemgr.New(cfg)
	if err != nil {
		t.Fatalf("cachemgr.New: %v", err)
	}
	t.Cleanup(func() { m.Close() }) //nolint:errcheck
	return m
}

// TestSingleflightConcurrentBoots is the first leg of the acceptance test:
// N concurrent sessions against one cold base produce exactly one backing
// warm-up, and every session reads correct content.
func TestSingleflightConcurrentBoots(t *testing.T) {
	s := newStorageNode(t)
	const size = 4 * mb
	s.addBase(t, "base.img", size, 1)
	m := newManager(t, s, nil)

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess, err := m.Boot("base.img", fmt.Sprintf("vm%d", i))
			if err != nil {
				errs[i] = err
				return
			}
			defer sess.Close() //nolint:errcheck
			buf := make([]byte, size)
			if err := backend.ReadFull(sess.Chain, buf, 0); err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(buf, s.patterns["base.img"]) {
				errs[i] = fmt.Errorf("vm%d read wrong content", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	st := m.Stats()
	if st.ColdWarms != 1 {
		t.Fatalf("cold warms = %d, want exactly 1 (singleflight)", st.ColdWarms)
	}
	if st.Published != 1 {
		t.Fatalf("published = %d, want 1", st.Published)
	}
	if st.Attaches != n {
		t.Fatalf("attaches = %d, want %d", st.Attaches, n)
	}
	if st.SharedWaits == 0 {
		t.Fatalf("no session waited on the in-flight warm; not concurrent?")
	}
	// The storage node shipped the base once (one warm) plus per-session
	// chain-open metadata — not once per session.
	if got := s.srv.Stats().BytesRead; got >= 2*size {
		t.Fatalf("storage served %d bytes; looks like more than one warm of %d", got, size)
	}
}

// TestPeerTransfer is the second leg: a second manager pulls the published
// cache wholesale from the first over rblock; the storage node sees zero
// read traffic during the transfer (asserted via counters, not wall clock).
func TestPeerTransfer(t *testing.T) {
	s := newStorageNode(t)
	const size = 4 * mb
	s.addBase(t, "base.img", size, 2)

	mgrA := newManager(t, s, nil)
	leaseA, err := mgrA.Acquire("base.img")
	if err != nil {
		t.Fatalf("warming node A: %v", err)
	}
	key := leaseA.Key()
	leaseA.Release()
	exportAddr, err := mgrA.ServePeers("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServePeers: %v", err)
	}

	mgrB := newManager(t, s, func(c *cachemgr.Config) { c.Peers = []string{exportAddr} })
	if mgrB.KeyFor("base.img") != key {
		t.Fatalf("key mismatch: %s vs %s", mgrB.KeyFor("base.img"), key)
	}

	storageBefore := s.srv.Stats().BytesRead
	leaseB, err := mgrB.Acquire("base.img")
	if err != nil {
		t.Fatalf("warming node B: %v", err)
	}
	if delta := s.srv.Stats().BytesRead - storageBefore; delta != 0 {
		t.Fatalf("peer transfer touched the storage node: %d bytes read", delta)
	}

	stB := mgrB.Stats()
	if stB.PeerFetches != 1 || stB.ColdWarms != 0 {
		t.Fatalf("node B: peer fetches = %d, cold warms = %d; want 1, 0", stB.PeerFetches, stB.ColdWarms)
	}
	cacheSize, err := os.Stat(filepath.Join(mgrB.Dir(), key))
	if err != nil {
		t.Fatalf("published cache on B: %v", err)
	}
	if stB.PeerFetchBytes < cacheSize.Size() {
		t.Fatalf("peer fetch bytes = %d < cache size %d", stB.PeerFetchBytes, cacheSize.Size())
	}
	expStats, ok := mgrA.ExportStats()
	if !ok {
		t.Fatal("node A not exporting")
	}
	img, ok := expStats.PerImage[key]
	if !ok || img.BytesRead < cacheSize.Size() || img.Opens != 1 {
		t.Fatalf("node A export per-image stats: %+v", img)
	}
	leaseB.Release()

	// Content through B is still correct.
	sess, err := mgrB.Boot("base.img", "vmB")
	if err != nil {
		t.Fatalf("booting on B: %v", err)
	}
	defer sess.Close() //nolint:errcheck
	buf := make([]byte, size)
	if err := backend.ReadFull(sess.Chain, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, s.patterns["base.img"]) {
		t.Fatal("node B served wrong content")
	}
}

// TestPeerFallback: a dead peer degrades to copy-on-read warming from the
// storage node instead of failing the boot.
func TestPeerFallback(t *testing.T) {
	s := newStorageNode(t)
	s.addBase(t, "base.img", mb, 3)
	m := newManager(t, s, func(c *cachemgr.Config) {
		c.Peers = []string{"127.0.0.1:1"} // nothing listens here
	})
	lease, err := m.Acquire("base.img")
	if err != nil {
		t.Fatalf("Acquire with dead peer: %v", err)
	}
	lease.Release()
	st := m.Stats()
	if st.PeerFallbacks != 1 || st.ColdWarms != 1 || st.PeerFetches != 0 {
		t.Fatalf("stats after fallback: %+v", st)
	}
}

// TestLRUEvictionUnderBudget is the third leg: the cache directory stays
// under the configured budget, the LRU cache is evicted, and the evicted
// file is actually deleted.
func TestLRUEvictionUnderBudget(t *testing.T) {
	s := newStorageNode(t)
	for i := 0; i < 3; i++ {
		s.addBase(t, fmt.Sprintf("base%d.img", i), mb, int64(10+i))
	}

	// Measure one published cache to size the budget for exactly two.
	probe := newManager(t, s, nil)
	lease, err := probe.Acquire("base0.img")
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(probe.Dir(), lease.Key()))
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
	cacheSize := fi.Size()

	m := newManager(t, s, func(c *cachemgr.Config) { c.Budget = 2*cacheSize + cacheSize/2 })
	var keys []string
	for i := 0; i < 3; i++ {
		lease, err := m.Acquire(fmt.Sprintf("base%d.img", i))
		if err != nil {
			t.Fatalf("warming base%d: %v", i, err)
		}
		keys = append(keys, lease.Key())
		lease.Release()
	}

	st := m.Stats()
	if st.Used > st.Budget {
		t.Fatalf("cache dir over budget: %d > %d", st.Used, st.Budget)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions under a 2-cache budget with 3 caches")
	}
	if st.Resident != 2 {
		t.Fatalf("resident = %d, want 2", st.Resident)
	}
	// base0 was least recently used: its file must be gone from disk.
	if _, err := os.Stat(filepath.Join(m.Dir(), keys[0])); !os.IsNotExist(err) {
		t.Fatalf("evicted cache file still on disk (err=%v)", err)
	}
	for _, k := range keys[1:] {
		if _, err := os.Stat(filepath.Join(m.Dir(), k)); err != nil {
			t.Fatalf("surviving cache %s: %v", k, err)
		}
	}

	// A leased (pinned) cache must survive a displacement attempt.
	lease1, err := m.Acquire("base1.img")
	if err != nil {
		t.Fatal(err)
	}
	lease2, err := m.Acquire("base2.img")
	if err != nil {
		t.Fatal(err)
	}
	lease0, err := m.Acquire("base0.img") // re-warm, would need an eviction
	if err != nil {
		t.Fatalf("re-acquire with all caches pinned: %v", err)
	}
	for _, l := range []*cachemgr.Lease{lease0, lease1, lease2} {
		if _, err := os.Stat(filepath.Join(m.Dir(), l.Key())); err != nil {
			t.Fatalf("pinned cache %s missing: %v", l.Key(), err)
		}
		l.Release()
	}
}

// TestRecoverySeedsPool: a restarted manager re-attaches to caches published
// by its previous life without re-warming.
func TestRecoverySeedsPool(t *testing.T) {
	s := newStorageNode(t)
	s.addBase(t, "base.img", mb, 4)
	dir := t.TempDir()
	m1 := newManager(t, s, func(c *cachemgr.Config) { c.Dir = dir })
	lease, err := m1.Acquire("base.img")
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	before := s.srv.Stats().BytesRead
	m2 := newManager(t, s, func(c *cachemgr.Config) { c.Dir = dir })
	if m2.Stats().Resident != 1 {
		t.Fatalf("resident after restart = %d, want 1", m2.Stats().Resident)
	}
	lease, err = m2.Acquire("base.img")
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
	st := m2.Stats()
	if st.ColdWarms != 0 || st.PoolHits == 0 {
		t.Fatalf("restart re-warmed: %+v", st)
	}
	if delta := s.srv.Stats().BytesRead - before; delta != 0 {
		t.Fatalf("restart attach touched storage: %d bytes", delta)
	}
}
