package cachemgr_test

import (
	"bytes"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmicache/internal/backend"
	"vmicache/internal/cachemgr"
	"vmicache/internal/core"
	"vmicache/internal/qcow"
	"vmicache/internal/rblock"
)

// addBaseContent installs a base image with explicit content, so tests can
// build sibling images sharing most of their bytes.
func (s *storageNode) addBaseContent(t *testing.T, name string, content []byte) {
	t.Helper()
	size := int64(len(content))
	f := backend.NewMemFileSize(size)
	if err := backend.WriteFull(f, content, 0); err != nil {
		t.Fatal(err)
	}
	s.store.Remove(name) //nolint:errcheck // may not exist (rebuild case)
	ns := core.NewNamespace("s", s.store)
	if err := core.CreateBase(ns, core.Locator{Store: "s", Name: name}, size, 16,
		qcow.RawSource{R: f, N: size}); err != nil {
		t.Fatalf("CreateBase %s: %v", name, err)
	}
	s.patterns[name] = content
}

// siblings returns v1 plus a copy with the last eighth rewritten — the
// rebuilt-image shape the dedup tier is designed around. Content is random,
// hence incompressible: byte counts measure dedup, not flate.
func siblings(size int) (v1, v2 []byte) {
	v1 = make([]byte, size)
	rand.New(rand.NewSource(42)).Read(v1)
	v2 = append([]byte{}, v1...)
	rand.New(rand.NewSource(43)).Read(v2[size*7/8:])
	return v1, v2
}

// bootAndCheck boots vmID from base and verifies the full image content.
func bootAndCheck(t *testing.T, m *cachemgr.Manager, s *storageNode, base, vmID string) {
	t.Helper()
	sess, err := m.Boot(base, vmID)
	if err != nil {
		t.Fatalf("boot %s: %v", base, err)
	}
	defer sess.Close() //nolint:errcheck
	want := s.patterns[base]
	buf := make([]byte, len(want))
	if err := backend.ReadFull(sess.Chain, buf, 0); err != nil {
		t.Fatalf("read %s: %v", base, err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("%s served wrong content", base)
	}
}

// blobTreeBytes walks <dir>/dedup/blobs and sums file sizes — the ground
// truth the pool reservation must match.
func blobTreeBytes(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.WalkDir(filepath.Join(dir, "dedup", "blobs"), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		total += fi.Size()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

// TestDedupSiblingSharingAndAccounting is the eviction-accounting
// regression test: two pinned sibling caches must charge their shared
// chunks against the budget exactly once, the reservation must equal the
// physical blob tree, and unique storage must stay well under 2×.
func TestDedupSiblingSharingAndAccounting(t *testing.T) {
	s := newStorageNode(t)
	v1, v2 := siblings(4 * mb)
	s.addBaseContent(t, "v1.img", v1)
	s.addBaseContent(t, "v2.img", v2)
	m := newManager(t, s, func(c *cachemgr.Config) { c.Dedup = true })

	// Keep both sessions open: both caches pinned while stats are read.
	s1, err := m.Boot("v1.img", "vm1")
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close() //nolint:errcheck
	oneImage := m.Stats().Dedup.UniqueCompBytes
	s2, err := m.Boot("v2.img", "vm2")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close() //nolint:errcheck

	st := m.Stats()
	if st.Dedup.Manifests != 2 {
		t.Fatalf("manifests = %d, want 2", st.Dedup.Manifests)
	}
	if st.Dedup.SharedBytes == 0 {
		t.Fatal("sibling caches share no chunks")
	}
	// Storing the sibling must cost roughly its delta, not a second copy.
	if st.Dedup.UniqueCompBytes > oneImage*13/10 {
		t.Fatalf("unique bytes %d > 1.3× one image (%d)", st.Dedup.UniqueCompBytes, oneImage)
	}
	// The budget charge is the physical blob tree, counted once — not the
	// per-cache sum, which would double-charge every shared chunk.
	if st.Reserved != st.Dedup.UniqueCompBytes {
		t.Fatalf("reserved %d != unique bytes %d", st.Reserved, st.Dedup.UniqueCompBytes)
	}
	if disk := blobTreeBytes(t, m.Dir()); st.Reserved != disk {
		t.Fatalf("reserved %d != blob tree on disk %d", st.Reserved, disk)
	}
}

// TestDedupRehydrate loses the published cache file (as eviction or a crash
// would) but keeps the dedup tier: the next acquire must rebuild the cache
// from local blobs without a cold warm or peer fetch.
func TestDedupRehydrate(t *testing.T) {
	s := newStorageNode(t)
	const size = 4 * mb
	s.addBase(t, "base.img", size, 7)
	dir := t.TempDir()
	mk := func() *cachemgr.Manager {
		return newManager(t, s, func(c *cachemgr.Config) {
			c.Dir = dir
			c.Dedup = true
		})
	}
	m := mk()
	bootAndCheck(t, m, s, "base.img", "vm1")
	key := m.KeyFor("base.img")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, key)); err != nil {
		t.Fatal(err)
	}

	m2 := mk()
	bootAndCheck(t, m2, s, "base.img", "vm2")
	st := m2.Stats()
	if st.DedupRehydrations != 1 {
		t.Fatalf("rehydrations = %d, want 1", st.DedupRehydrations)
	}
	if st.ColdWarms != 0 || st.PeerFetches != 0 || st.DedupDeltaWarms != 0 {
		t.Fatalf("rehydration touched the network: %+v", st)
	}
}

// TestDedupRehydrateCorruptBlob poisons a blob under a surviving manifest:
// rehydration must detect it, drop the manifest, and fall back to a cold
// warm that still serves correct content.
func TestDedupRehydrateCorruptBlob(t *testing.T) {
	s := newStorageNode(t)
	const size = 2 * mb
	s.addBase(t, "base.img", size, 8)
	dir := t.TempDir()
	mk := func() *cachemgr.Manager {
		return newManager(t, s, func(c *cachemgr.Config) {
			c.Dir = dir
			c.Dedup = true
		})
	}
	m := mk()
	bootAndCheck(t, m, s, "base.img", "vm1")
	key := m.KeyFor("base.img")
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, key)); err != nil {
		t.Fatal(err)
	}
	// Flip a byte mid-payload in some blob.
	var victim string
	err := filepath.WalkDir(filepath.Join(dir, "dedup", "blobs"), func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && victim == "" {
			victim = path
		}
		return err
	})
	if err != nil || victim == "" {
		t.Fatalf("no blob to corrupt: %v", err)
	}
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	b[8+(len(b)-8)/2] ^= 0xFF
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := mk()
	bootAndCheck(t, m2, s, "base.img", "vm2")
	st := m2.Stats()
	if st.DedupRehydrations != 0 {
		t.Fatal("corrupt blob rehydrated")
	}
	if st.ColdWarms != 1 {
		t.Fatalf("cold warms = %d, want 1 (fallback)", st.ColdWarms)
	}
}

// TestDedupDeltaWarm stands up two dedup nodes: A warms two sibling images
// from storage, B pulls both manifest-first from A. The first pull moves the
// whole image (as chunks); the second must reuse B's local chunks and move
// only about the siblings' delta.
func TestDedupDeltaWarm(t *testing.T) {
	s := newStorageNode(t)
	const size = 4 * mb
	v1, v2 := siblings(size)
	s.addBaseContent(t, "v1.img", v1)
	s.addBaseContent(t, "v2.img", v2)

	a := newManager(t, s, func(c *cachemgr.Config) { c.Dedup = true })
	bootAndCheck(t, a, s, "v1.img", "a1")
	bootAndCheck(t, a, s, "v2.img", "a2")
	addr, err := a.ServePeers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	b := newManager(t, s, func(c *cachemgr.Config) {
		c.Dedup = true
		c.Peers = []string{addr}
	})
	bootAndCheck(t, b, s, "v1.img", "b1")
	st1 := b.Stats()
	if st1.DedupDeltaWarms != 1 {
		t.Fatalf("delta warms after v1 = %d, want 1", st1.DedupDeltaWarms)
	}
	if st1.PeerFetches != 0 || st1.ColdWarms != 0 {
		t.Fatalf("v1 warm took the wrong path: %+v", st1)
	}

	bootAndCheck(t, b, s, "v2.img", "b2")
	st2 := b.Stats()
	if st2.DedupDeltaWarms != 2 {
		t.Fatalf("delta warms after v2 = %d, want 2", st2.DedupDeltaWarms)
	}
	wire2 := st2.DedupDeltaBytes - st1.DedupDeltaBytes
	if st2.DedupReusedBytes <= st1.DedupReusedBytes {
		t.Fatal("v2 warm reused no local chunks")
	}
	// v2 differs from v1 in its last eighth; the second transfer must move
	// about that much, not the whole image. The bound leaves room for
	// chunks straddling the delta boundary and container metadata.
	delta := int64(size / 8)
	if limit := delta*12/10 + 256<<10; wire2 > limit {
		t.Fatalf("v2 delta warm moved %d bytes, want <= %d (delta %d)", wire2, limit, delta)
	}
	if wire2 >= st1.DedupDeltaBytes/2 {
		t.Fatalf("v2 moved %d bytes, not much better than the full %d", wire2, st1.DedupDeltaBytes)
	}
}

// TestDedupInvalidate rebuilds a base image: Invalidate must retire the old
// cache, the next boot must serve the new content, and the re-publication
// must store only the chunks that changed.
func TestDedupInvalidate(t *testing.T) {
	s := newStorageNode(t)
	const size = 4 * mb
	v1, v2 := siblings(size)
	s.addBaseContent(t, "base.img", v1)
	m := newManager(t, s, func(c *cachemgr.Config) { c.Dedup = true })

	bootAndCheck(t, m, s, "base.img", "vm1")
	before := m.Stats().Dedup

	s.addBaseContent(t, "base.img", v2) // the rebuild
	if err := m.Invalidate("base.img"); err != nil {
		t.Fatal(err)
	}
	bootAndCheck(t, m, s, "base.img", "vm2")
	after := m.Stats().Dedup
	if after.Manifests != 1 {
		t.Fatalf("manifests = %d, want 1 (retired manifest not dropped)", after.Manifests)
	}
	// Peak storage during the overlap is bounded by sharing: had the
	// retired manifest not kept its chunks alive, the rebuilt image would
	// re-store everything; had it shared nothing, unique bytes would have
	// doubled. Post-drop, the old-only chunks must be gone again.
	if after.UniqueCompBytes > before.UniqueCompBytes*13/10 {
		t.Fatalf("rebuild did not share chunks: %d -> %d unique bytes",
			before.UniqueCompBytes, after.UniqueCompBytes)
	}
	if disk := blobTreeBytes(t, m.Dir()); disk != after.UniqueCompBytes {
		t.Fatalf("blob tree %d != accounted unique bytes %d", disk, after.UniqueCompBytes)
	}
}

// TestDedupManifestShedding squeezes the budget until the blob reservation
// alone cannot fit: manifests of evicted caches must be shed rather than
// wedging the pool over budget forever.
func TestDedupManifestShedding(t *testing.T) {
	s := newStorageNode(t)
	const size = 2 * mb
	s.addBase(t, "a.img", size, 21)
	s.addBase(t, "b.img", size, 22)
	// Budget fits one cache file plus its blobs, with headroom, but not
	// two caches' worth of both.
	m := newManager(t, s, func(c *cachemgr.Config) {
		c.Dedup = true
		c.Budget = 5 * mb
	})
	bootAndCheck(t, m, s, "a.img", "vm1")
	bootAndCheck(t, m, s, "b.img", "vm2")
	st := m.Stats()
	if st.Budget > 0 && st.Used+st.Reserved > st.Budget {
		t.Fatalf("pool wedged over budget: used %d + reserved %d > %d",
			st.Used, st.Reserved, st.Budget)
	}
	if got := st.Dedup.Manifests; got != 1 {
		t.Fatalf("manifests = %d, want 1 (evicted cache's manifest shed)", got)
	}
	// The surviving manifest must belong to the resident cache.
	if st.Resident != 1 {
		t.Fatalf("resident = %d, want 1", st.Resident)
	}
}

// TestDedupDisabledUntouched double-checks the default path: no dedup
// directory, no reservation, zero dedup stats.
func TestDedupDisabledUntouched(t *testing.T) {
	s := newStorageNode(t)
	s.addBase(t, "base.img", 1*mb, 30)
	m := newManager(t, s, nil)
	bootAndCheck(t, m, s, "base.img", "vm1")
	st := m.Stats()
	if st.Reserved != 0 || st.Dedup.Manifests != 0 {
		t.Fatalf("dedup active without Config.Dedup: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(m.Dir(), "dedup")); !os.IsNotExist(err) {
		t.Fatalf("dedup directory created: %v", err)
	}
	if out := st.String(); strings.Contains(out, "dedup:") {
		t.Fatalf("stats mention dedup: %s", out)
	}
}

// TestDedupPeerExportGating makes sure peers only see manifests of caches
// this node could also serve wholesale (published and resident).
func TestDedupPeerExportGating(t *testing.T) {
	s := newStorageNode(t)
	s.addBase(t, "base.img", 1*mb, 31)
	m := newManager(t, s, func(c *cachemgr.Config) { c.Dedup = true })
	bootAndCheck(t, m, s, "base.img", "vm1")
	addr, err := m.ServePeers("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := rblock.Dial(addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	key := m.KeyFor("base.img")
	if _, err := c.FetchManifest(key); err != nil {
		t.Fatalf("resident manifest: %v", err)
	}
	if _, err := c.FetchManifest(m.KeyFor("ghost.img")); err == nil {
		t.Fatal("non-resident manifest served")
	}
	if _, _, err := c.FetchChunk([rblock.HashLen]byte{1, 2, 3}); err == nil {
		t.Fatal("unknown chunk served")
	}
}
