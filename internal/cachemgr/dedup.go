package cachemgr

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"vmicache/internal/backend"
	"vmicache/internal/dedup"
	"vmicache/internal/rblock"
)

// The dedup tier: a per-pool content-addressed blob store under
// <Dir>/dedup. Every publication derives a chunk manifest (content-defined
// boundaries → SHA-256 → compressed blobs), so sibling caches share chunk
// storage, evicted caches can be rehydrated locally with zero network
// traffic, and peer transfer becomes manifest-first — fetch only the
// chunks this pool does not already hold, from any cache of any image.

const (
	// dedupDirName is the blob store's subdirectory inside the cache dir.
	dedupDirName = "dedup"

	// retiredSuffix names the manifest kept alive across an explicit
	// Invalidate so the rebuilt image's publication only stores changed
	// chunks; dropped once the replacement commits.
	retiredSuffix = ".prev"
)

// openDedup attaches the blob store when Config.Dedup is set; called by
// New after recovery so the startup orphan sweep sees the final manifest
// set.
func (m *Manager) openDedup() error {
	if !m.cfg.Dedup {
		return nil
	}
	ds, err := dedup.OpenBlobStore(filepath.Join(m.dir, dedupDirName))
	if err != nil {
		return fmt.Errorf("cachemgr: opening dedup store: %w", err)
	}
	m.dstore = ds
	m.dedupReserve()
	return nil
}

// dedupReserve charges the blob tree's physical bytes against the pool
// budget. The blob store holds each unique chunk once however many caches
// (pinned or not) reference it, so this is exactly the charge-once
// accounting — summing per-cache manifest sizes would double-count every
// shared chunk. When the reservation alone squeezes out every unpinned
// cache and still does not fit, manifests of caches no longer resident are
// shed (their cache file is already gone; the dedup tier is their only
// remaining cost) until it does.
func (m *Manager) dedupReserve() {
	if m.dstore == nil {
		return
	}
	capacity := m.pool.Capacity()
	for {
		// Shed manifests of non-resident caches while the blob tree would
		// not fit beside the resident files — shedding first, so the
		// reservation never evicts a live cache to keep blobs of a dead
		// one.
		if capacity > 0 {
			for _, name := range m.dstore.ManifestNames() {
				if m.pool.Used()+m.dstore.UniqueCompBytes() <= capacity {
					break
				}
				if !m.pool.Contains(name) {
					if err := m.dstore.Drop(name); err != nil {
						m.logf("cachemgr: shedding manifest %s: %v", name, err)
					} else {
						m.logf("cachemgr: shed manifest %s under budget pressure", name)
					}
				}
			}
		}
		evicted := m.pool.Reserve(m.dstore.UniqueCompBytes())
		if capacity <= 0 || len(evicted) == 0 {
			return
		}
		// The reservation evicted caches; their manifests are shedding
		// candidates now, so take another pass. Terminates: each round
		// either evicts pool entries (finite) or returns.
	}
}

// dedupPublish derives (or confirms) the chunk manifest of a
// just-published cache file. When the committed manifest's checksum
// already matches the file — a rehydration or delta warm committed it
// before the qcow verification — only the cheap whole-file hash runs.
// Manifest failures are logged, not fatal: the cache file serves fine
// without its dedup tier.
func (m *Manager) dedupPublish(key, pubPath string) error {
	f, err := os.Open(pubPath)
	if err != nil {
		return err
	}
	defer f.Close() //nolint:errcheck // read-only handle
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if have, ok := m.dstore.Manifest(key); ok && have.Length == fi.Size() {
		if sum, err := fileChecksum(f, fi.Size()); err == nil && sum == have.Checksum {
			m.dstore.Drop(key + retiredSuffix) //nolint:errcheck // may not exist
			return nil
		}
	}
	var held []dedup.Key
	defer func() { m.dstore.Release(held) }()
	man, err := dedup.Build(f, fi.Size(), func(e dedup.Entry, raw []byte) error {
		if err := m.dstore.Put(e.Hash, raw); err != nil {
			return err
		}
		held = append(held, e.Hash)
		return nil
	})
	if err != nil {
		return err
	}
	// Committing under the same key replaces a stale manifest (a rebuilt
	// base image: same key, different checksum) while chunks shared across
	// versions survive — only the changed chunks were actually stored.
	if err := m.dstore.Commit(key, man); err != nil {
		return err
	}
	m.dstore.Drop(key + retiredSuffix) //nolint:errcheck // may not exist
	return nil
}

func fileChecksum(f *os.File, size int64) (dedup.Key, error) {
	h := sha256.New()
	buf := make([]byte, 256<<10)
	for off := int64(0); off < size; {
		n := int64(len(buf))
		if rem := size - off; rem < n {
			n = rem
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return dedup.Key{}, err
		}
		h.Write(buf[:n]) //nolint:errcheck // hash writes cannot fail
		off += n
	}
	return dedup.Key(h.Sum(nil)), nil
}

// rehydrate rebuilds the cache file for key from locally-held blobs — the
// zero-network path for a cache whose file was evicted while its manifest
// survived. Reports whether the temp file was materialized; on blob
// corruption the manifest is dropped so the warm falls through to the
// network paths instead of retrying a poisoned rebuild.
func (m *Manager) rehydrate(key, tmpName string) bool {
	man, ok := m.dstore.Manifest(key)
	if !ok {
		return false
	}
	var held []dedup.Key
	defer func() { m.dstore.Release(held) }()
	for _, e := range man.Entries {
		if !m.dstore.Stage(e.Hash) {
			m.logf("cachemgr: rehydrating %s: blob missing; dropping manifest", key)
			m.dstore.Drop(key) //nolint:errcheck // best-effort cleanup
			return false
		}
		held = append(held, e.Hash)
	}
	if err := m.materialize(tmpName, man); err != nil {
		m.logf("cachemgr: rehydrating %s: %v; dropping manifest", key, err)
		m.store.Remove(tmpName) //nolint:errcheck // partial materialization
		m.dstore.Drop(key)      //nolint:errcheck // best-effort cleanup
		return false
	}
	return true
}

// materialize writes a manifest's content into tmpName from the blob
// store, verifying the whole-image checksum as it goes.
func (m *Manager) materialize(tmpName string, man *dedup.Manifest) error {
	f, err := m.store.Create(tmpName)
	if err != nil {
		return err
	}
	whole := sha256.New()
	var off int64
	for _, e := range man.Entries {
		raw, err := m.dstore.ReadBlob(e.Hash)
		if err != nil {
			f.Close() //nolint:errcheck // already failing
			return err
		}
		if int64(len(raw)) != int64(e.Len) {
			f.Close() //nolint:errcheck // already failing
			return fmt.Errorf("cachemgr: blob %v: %d bytes, manifest says %d", e.Hash, len(raw), e.Len)
		}
		if err := backend.WriteFull(f, raw, off); err != nil {
			f.Close() //nolint:errcheck // already failing
			return err
		}
		whole.Write(raw) //nolint:errcheck // hash writes cannot fail
		off += int64(len(raw))
	}
	if sum := dedup.Key(whole.Sum(nil)); sum != man.Checksum {
		f.Close() //nolint:errcheck // already failing
		return fmt.Errorf("cachemgr: materialized image fails manifest checksum")
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck // already failing
		return err
	}
	return f.Close()
}

// deltaWarm is the manifest-first peer transfer: poll the configured peers
// for key's manifest, diff it against the blobs this pool already holds —
// from any cache of any image — and fetch only the missing chunks,
// compressed, spreading the fetches over every peer that advertises the
// manifest (each holder has every chunk, so unlike the swarm's
// rarest-first partial maps the spread is plain round-robin with
// reassignment on failure). The blobs and manifest commit before the qcow
// verification so a publish failure still leaves the chunks shared.
func (m *Manager) deltaWarm(key, tmpName string) (wire, reused int64, err error) {
	type holder struct {
		addr string
		c    *rblock.Client
	}
	var man *dedup.Manifest
	var holders []holder
	defer func() {
		for _, h := range holders {
			h.c.Close() //nolint:errcheck // transfer finished or failed
		}
	}()
	for _, addr := range m.cfg.Peers {
		c, derr := rblock.DialRetry(addr, 0, 2, rblock.DefaultBackoff, nil)
		if derr != nil {
			m.notePeer(addr, 0, derr)
			continue
		}
		c.SetTimeout(m.cfg.PeerTimeout)
		enc, ferr := c.FetchManifest(key)
		if ferr != nil {
			if !errors.Is(ferr, rblock.ErrNotFound) && !errors.Is(ferr, rblock.ErrBadRequest) {
				m.notePeer(addr, 0, ferr)
			}
			c.Close() //nolint:errcheck // unusable for this transfer
			continue
		}
		mm, merr := dedup.DecodeManifest(enc)
		if merr != nil || (man != nil && mm.Checksum != man.Checksum) {
			c.Close() //nolint:errcheck // disagreeing or corrupt manifest
			continue
		}
		if man == nil {
			man = mm
		}
		holders = append(holders, holder{addr: addr, c: c})
	}
	if man == nil {
		return 0, 0, fmt.Errorf("cachemgr: no peer advertises a manifest for %s", key)
	}

	// Stage what is already here; collect what must move.
	var held []dedup.Key
	committed := false
	defer func() {
		m.dstore.Release(held)
		if !committed {
			m.store.Remove(tmpName) //nolint:errcheck // failed transfer
		}
	}()
	var heldMu sync.Mutex
	seen := make(map[dedup.Key]bool, len(man.Entries))
	var missing []dedup.Key
	for _, e := range man.Entries {
		if seen[e.Hash] {
			continue
		}
		seen[e.Hash] = true
		if m.dstore.Stage(e.Hash) {
			held = append(held, e.Hash)
			reused += int64(e.Len)
		} else {
			missing = append(missing, e.Hash)
		}
	}

	// Fetch the delta, a small worker pool spreading chunk requests
	// round-robin across the manifest holders, reassigning on failure.
	workers := m.cfg.SwarmWorkers
	if workers <= 0 {
		workers = 4
	}
	if workers > len(missing) && len(missing) > 0 {
		workers = len(missing)
	}
	var next atomic.Int64
	var wireBytes atomic.Int64
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(missing) {
					return
				}
				k := missing[i]
				var comp []byte
				var ferr error
				for attempt := 0; attempt < len(holders); attempt++ {
					h := holders[(i+attempt)%len(holders)]
					comp, _, ferr = h.c.FetchChunk([rblock.HashLen]byte(k))
					m.notePeer(h.addr, int64(len(comp)), ferr)
					if ferr == nil {
						break
					}
				}
				if ferr != nil {
					errs <- fmt.Errorf("cachemgr: chunk %v: %w", k, ferr)
					return
				}
				// PutCompressed hash-verifies before landing on disk, so
				// a corrupt transfer dies here, and takes the stage hold
				// that keeps the chunk alive until release.
				if perr := m.dstore.PutCompressed(k, comp); perr != nil {
					errs <- perr
					return
				}
				heldMu.Lock()
				held = append(held, k)
				heldMu.Unlock()
				wireBytes.Add(int64(len(comp)))
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return wireBytes.Load(), reused, err
	}
	wire = wireBytes.Load()

	if err := m.materialize(tmpName, man); err != nil {
		return wire, reused, err
	}
	// Blobs and manifest are content-verified already; commit them before
	// the qcow publication so even a verification failure leaves the
	// chunks shared for the next attempt.
	if err := m.dstore.Commit(key, man); err != nil {
		return wire, reused, err
	}
	m.dstore.Drop(key + retiredSuffix) //nolint:errcheck // may not exist
	committed = true
	return wire, reused, nil
}

// Invalidate drops the published cache and manifest for a rebuilt base
// image. The manifest is retired, not deleted: its chunks stay alive until
// the rebuilt image publishes, so the re-publication stores only the
// chunks that actually changed. Sessions already attached keep serving the
// old bytes through their open handles; new Acquires warm the rebuilt
// base from source.
func (m *Manager) Invalidate(base string) error {
	key := m.KeyFor(base)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	ws := m.warming[key]
	m.mu.Unlock()
	if ws != nil {
		<-ws.done // let the in-flight warm settle; its output is stale
	}
	if m.pool.Remove(key) {
		m.closeSwarmExport(key)
		if err := os.Remove(filepath.Join(m.dir, key)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		m.logf("cachemgr: invalidated %s", key)
	}
	if m.dstore != nil {
		if man, ok := m.dstore.Manifest(key); ok {
			if err := m.dstore.Commit(key+retiredSuffix, man); err != nil {
				m.logf("cachemgr: retiring manifest %s: %v", key, err)
			}
			if err := m.dstore.Drop(key); err != nil {
				return err
			}
		}
		m.dedupReserve()
	}
	return nil
}

// DedupStats snapshots the blob store; zero when dedup is disabled.
func (m *Manager) DedupStats() dedup.StoreStats {
	if m.dstore == nil {
		return dedup.StoreStats{}
	}
	return m.dstore.Stats()
}

// dedupExport answers peers' OpManifest/OpChunk queries. Manifests are
// advertised only for caches this node could also serve wholesale
// (published and resident); chunks are served by pure content address —
// whichever cache brought them in, that is the cross-image sharing.
type dedupExport struct{ m *Manager }

func (d dedupExport) EncodedManifest(name string) ([]byte, error) {
	if !d.m.pool.Contains(name) {
		return nil, fmt.Errorf("%w: %s", backend.ErrNotExist, name)
	}
	man, ok := d.m.dstore.Manifest(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", backend.ErrNotExist, name)
	}
	return man.Encode(), nil
}

func (d dedupExport) ChunkBlob(hash [rblock.HashLen]byte) ([]byte, int64, error) {
	return d.m.dstore.ReadCompressed(dedup.Key(hash))
}
