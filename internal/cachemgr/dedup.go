package cachemgr

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vmicache/internal/backend"
	"vmicache/internal/dedup"
	"vmicache/internal/rblock"
)

// The dedup tier: a per-pool content-addressed blob store under
// <Dir>/dedup. Every publication derives a chunk manifest (content-defined
// boundaries → SHA-256 → compressed blobs), so sibling caches share chunk
// storage, evicted caches can be rehydrated locally with zero network
// traffic, and peer transfer becomes manifest-first — fetch only the
// chunks this pool does not already hold, from any cache of any image.

const (
	// dedupDirName is the blob store's subdirectory inside the cache dir.
	dedupDirName = "dedup"

	// retiredSuffix names the manifest kept alive across an explicit
	// Invalidate so the rebuilt image's publication only stores changed
	// chunks; dropped once the replacement commits.
	retiredSuffix = ".prev"
)

// openDedup attaches the blob store when Config.Dedup is set; called by
// New after recovery so the startup orphan sweep sees the final manifest
// set.
func (m *Manager) openDedup() error {
	if !m.cfg.Dedup {
		return nil
	}
	ds, err := dedup.OpenBlobStore(filepath.Join(m.dir, dedupDirName))
	if err != nil {
		return fmt.Errorf("cachemgr: opening dedup store: %w", err)
	}
	m.dstore = ds
	m.dedupReserve()
	return nil
}

// dedupReserve charges the blob tree's physical bytes against the pool
// budget. The blob store holds each unique chunk once however many caches
// (pinned or not) reference it, so this is exactly the charge-once
// accounting — summing per-cache manifest sizes would double-count every
// shared chunk. When the reservation alone squeezes out every unpinned
// cache and still does not fit, manifests of caches no longer resident are
// shed (their cache file is already gone; the dedup tier is their only
// remaining cost) until it does.
func (m *Manager) dedupReserve() {
	if m.dstore == nil {
		return
	}
	capacity := m.pool.Capacity()
	for {
		// Shed manifests of non-resident caches while the blob tree would
		// not fit beside the resident files — shedding first, so the
		// reservation never evicts a live cache to keep blobs of a dead
		// one.
		if capacity > 0 {
			for _, name := range m.dstore.ManifestNames() {
				if m.pool.Used()+m.dstore.UniqueCompBytes() <= capacity {
					break
				}
				if !m.pool.Contains(name) {
					if err := m.dstore.Drop(name); err != nil {
						m.logf("cachemgr: shedding manifest %s: %v", name, err)
					} else {
						m.logf("cachemgr: shed manifest %s under budget pressure", name)
					}
				}
			}
		}
		evicted := m.pool.Reserve(m.dstore.UniqueCompBytes())
		if capacity <= 0 || len(evicted) == 0 {
			return
		}
		// The reservation evicted caches; their manifests are shedding
		// candidates now, so take another pass. Terminates: each round
		// either evicts pool entries (finite) or returns.
	}
}

// dedupPublish derives (or confirms) the chunk manifest of a
// just-published cache file. When the committed manifest's checksum
// already matches the file — a rehydration or delta warm committed it
// before the qcow verification — only the cheap whole-file hash runs.
// Manifest failures are logged, not fatal: the cache file serves fine
// without its dedup tier.
func (m *Manager) dedupPublish(key, pubPath string) error {
	f, err := os.Open(pubPath)
	if err != nil {
		return err
	}
	defer f.Close() //nolint:errcheck // read-only handle
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if have, ok := m.dstore.Manifest(key); ok && have.Length == fi.Size() {
		if sum, err := fileChecksum(f, fi.Size()); err == nil && sum == have.Checksum {
			m.dstore.Drop(key + retiredSuffix) //nolint:errcheck // may not exist
			return nil
		}
	}
	var held []dedup.Key
	defer func() { m.dstore.Release(held) }()
	start := time.Now()
	// The pipeline's workers compress each chunk into its wire blob, so
	// the store lands bytes as-is (PutBuilt) instead of re-deflating.
	man, err := dedup.BuildParallel(f, fi.Size(),
		dedup.BuildOpts{Workers: m.dedupWorkers(), Compress: true},
		func(e dedup.Entry, raw, comp []byte) error {
			if err := m.dstore.PutBuilt(e.Hash, comp, int64(e.Len)); err != nil {
				return err
			}
			held = append(held, e.Hash)
			return nil
		})
	if err != nil {
		return err
	}
	m.stats.dedupBuildDuration.Observe(time.Since(start).Nanoseconds())
	// Committing under the same key replaces a stale manifest (a rebuilt
	// base image: same key, different checksum) while chunks shared across
	// versions survive — only the changed chunks were actually stored.
	if err := m.dstore.Commit(key, man); err != nil {
		return err
	}
	m.dstore.Drop(key + retiredSuffix) //nolint:errcheck // may not exist
	return nil
}

// dedupWorkers resolves the pipeline parallelism from config.
func (m *Manager) dedupWorkers() int {
	if m.cfg.DedupWorkers > 0 {
		return m.cfg.DedupWorkers
	}
	return runtime.GOMAXPROCS(0)
}

func fileChecksum(f *os.File, size int64) (dedup.Key, error) {
	h := sha256.New()
	bp := dedup.GetStreamBuf()
	defer dedup.PutStreamBuf(bp)
	buf := *bp
	for off := int64(0); off < size; {
		n := int64(len(buf))
		if rem := size - off; rem < n {
			n = rem
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return dedup.Key{}, err
		}
		h.Write(buf[:n]) //nolint:errcheck // hash writes cannot fail
		off += n
	}
	return dedup.Key(h.Sum(nil)), nil
}

// rehydrate rebuilds the cache file for key from locally-held blobs — the
// zero-network path for a cache whose file was evicted while its manifest
// survived. Reports whether the temp file was materialized; on blob
// corruption the manifest is dropped so the warm falls through to the
// network paths instead of retrying a poisoned rebuild.
func (m *Manager) rehydrate(key, tmpName string) bool {
	man, ok := m.dstore.Manifest(key)
	if !ok {
		return false
	}
	var held []dedup.Key
	defer func() { m.dstore.Release(held) }()
	for _, e := range man.Entries {
		if !m.dstore.Stage(e.Hash) {
			m.logf("cachemgr: rehydrating %s: blob missing; dropping manifest", key)
			m.dstore.Drop(key) //nolint:errcheck // best-effort cleanup
			return false
		}
		held = append(held, e.Hash)
	}
	if err := m.materialize(tmpName, man); err != nil {
		m.logf("cachemgr: rehydrating %s: %v; dropping manifest", key, err)
		m.store.Remove(tmpName) //nolint:errcheck // partial materialization
		m.dstore.Drop(key)      //nolint:errcheck // best-effort cleanup
		return false
	}
	return true
}

// materialize writes a manifest's content into tmpName from the blob
// store through the parallel decode pipeline (every chunk and the whole
// image hash-verified).
func (m *Manager) materialize(tmpName string, man *dedup.Manifest) error {
	f, err := m.store.Create(tmpName)
	if err != nil {
		return err
	}
	start := time.Now()
	if err := dedup.Materialize(f, man, m.dstore, m.dedupWorkers()); err != nil {
		f.Close() //nolint:errcheck // already failing
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //nolint:errcheck // already failing
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	m.stats.dedupMaterializeDuration.Observe(time.Since(start).Nanoseconds())
	return nil
}

// deltaWarm is the manifest-first peer transfer: poll the configured peers
// for key's manifest, diff it against the blobs this pool already holds —
// from any cache of any image — and fetch only the missing chunks,
// compressed, spreading the fetches over every peer that advertises the
// manifest (each holder has every chunk, so unlike the swarm's
// rarest-first partial maps the spread is plain round-robin with
// reassignment on failure). The blobs and manifest commit before the qcow
// verification so a publish failure still leaves the chunks shared.
func (m *Manager) deltaWarm(key, tmpName string) (wire, reused int64, err error) {
	type holder struct {
		addr string
		c    *rblock.Client
	}
	var man *dedup.Manifest
	var holders []holder
	defer func() {
		for _, h := range holders {
			h.c.Close() //nolint:errcheck // transfer finished or failed
		}
	}()
	for _, addr := range m.cfg.Peers {
		c, derr := rblock.DialRetry(addr, 0, 2, rblock.DefaultBackoff, nil)
		if derr != nil {
			m.notePeer(addr, 0, derr)
			continue
		}
		c.SetTimeout(m.cfg.PeerTimeout)
		enc, ferr := c.FetchManifest(key)
		if ferr != nil {
			if !errors.Is(ferr, rblock.ErrNotFound) && !errors.Is(ferr, rblock.ErrBadRequest) {
				m.notePeer(addr, 0, ferr)
			}
			c.Close() //nolint:errcheck // unusable for this transfer
			continue
		}
		mm, merr := dedup.DecodeManifest(enc)
		if merr != nil || (man != nil && mm.Checksum != man.Checksum) {
			c.Close() //nolint:errcheck // disagreeing or corrupt manifest
			continue
		}
		if man == nil {
			man = mm
		}
		holders = append(holders, holder{addr: addr, c: c})
	}
	if man == nil {
		return 0, 0, fmt.Errorf("cachemgr: no peer advertises a manifest for %s", key)
	}

	// Stage what is already here; collect what must move.
	var held []dedup.Key
	committed := false
	defer func() {
		m.dstore.Release(held)
		if !committed {
			m.store.Remove(tmpName) //nolint:errcheck // failed transfer
		}
	}()
	var heldMu sync.Mutex
	seen := make(map[dedup.Key]bool, len(man.Entries))
	var missing []dedup.Key
	for _, e := range man.Entries {
		if seen[e.Hash] {
			continue
		}
		seen[e.Hash] = true
		if m.dstore.Stage(e.Hash) {
			held = append(held, e.Hash)
			reused += int64(e.Len)
		} else {
			missing = append(missing, e.Hash)
		}
	}

	// Fetch the delta: workers claim runs of missing hashes and pull each
	// run in one vectored OpChunkBatch round trip, spreading runs
	// round-robin across the manifest holders and reassigning on failure.
	// Batch size adapts to the missing set so small deltas still use every
	// worker, while large ones amortise a round trip over up to 32 chunks
	// (≈4 MiB of max-size blobs, inside the frame cap). A shared cancel
	// flag checked in the claim loop tears the pool down promptly after
	// the first failure instead of letting the survivors drain the cursor.
	workers := m.cfg.SwarmWorkers
	if workers <= 0 {
		workers = 4
	}
	batch := len(missing) / (workers * 2)
	if batch < 1 {
		batch = 1
	}
	if batch > 32 {
		batch = 32
	}
	if n := (len(missing) + batch - 1) / batch; workers > n && n > 0 {
		workers = n
	}
	var next atomic.Int64
	var wireBytes atomic.Int64
	var canceled atomic.Bool
	errs := make(chan error, workers)

	// landRun fetches the head of run from one holder and lands what came
	// back, returning how many chunks it covered. fatal marks errors no
	// other holder can fix (a corrupt transfer, local store failure).
	landRun := func(h holder, run []dedup.Key) (served int, fatal bool, err error) {
		hashes := make([][rblock.HashLen]byte, len(run))
		for j, k := range run {
			hashes[j] = [rblock.HashLen]byte(k)
		}
		blobs, ferr := h.c.FetchChunkBatch(hashes)
		if errors.Is(ferr, rblock.ErrBadRequest) {
			// The peer predates the batch op: fetch the head chunk singly.
			comp, _, cerr := h.c.FetchChunk(hashes[0])
			m.notePeer(h.addr, int64(len(comp)), cerr)
			if cerr != nil {
				return 0, false, cerr
			}
			blobs = [][]byte{comp}
		} else {
			var n int64
			for _, b := range blobs {
				n += int64(len(b))
			}
			m.notePeer(h.addr, n, ferr)
			if ferr != nil {
				return 0, false, ferr
			}
			m.stats.dedupChunkBatches.Add(1)
			m.stats.dedupBatchedChunks.Add(int64(len(blobs)))
		}
		for j, comp := range blobs {
			// PutCompressed hash-verifies before landing on disk, so a
			// corrupt transfer dies here, and takes the stage hold that
			// keeps the chunk alive until release.
			if perr := m.dstore.PutCompressed(run[j], comp); perr != nil {
				return j, true, perr
			}
			heldMu.Lock()
			held = append(held, run[j])
			heldMu.Unlock()
			wireBytes.Add(int64(len(comp)))
		}
		return len(blobs), false, nil
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !canceled.Load() {
				i := int(next.Add(int64(batch))) - batch
				if i >= len(missing) {
					return
				}
				end := i + batch
				if end > len(missing) {
					end = len(missing)
				}
				run := missing[i:end]
				pos, fails := 0, 0
				for pos < len(run) && !canceled.Load() {
					h := holders[(i/batch+pos+fails)%len(holders)]
					served, fatal, ferr := landRun(h, run[pos:])
					pos += served
					if ferr == nil {
						fails = 0
						continue
					}
					fails++
					if fatal || fails >= len(holders) {
						canceled.Store(true)
						errs <- fmt.Errorf("cachemgr: chunk %v: %w", run[pos], ferr)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return wireBytes.Load(), reused, err
	}
	wire = wireBytes.Load()

	if err := m.materialize(tmpName, man); err != nil {
		return wire, reused, err
	}
	// Blobs and manifest are content-verified already; commit them before
	// the qcow publication so even a verification failure leaves the
	// chunks shared for the next attempt.
	if err := m.dstore.Commit(key, man); err != nil {
		return wire, reused, err
	}
	m.dstore.Drop(key + retiredSuffix) //nolint:errcheck // may not exist
	committed = true
	return wire, reused, nil
}

// Invalidate drops the published cache and manifest for a rebuilt base
// image. The manifest is retired, not deleted: its chunks stay alive until
// the rebuilt image publishes, so the re-publication stores only the
// chunks that actually changed. Sessions already attached keep serving the
// old bytes through their open handles; new Acquires warm the rebuilt
// base from source.
func (m *Manager) Invalidate(base string) error {
	key := m.KeyFor(base)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	ws := m.warming[key]
	m.mu.Unlock()
	if ws != nil {
		<-ws.done // let the in-flight warm settle; its output is stale
	}
	if m.pool.Remove(key) {
		m.closeSwarmExport(key)
		if err := os.Remove(filepath.Join(m.dir, key)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		m.logf("cachemgr: invalidated %s", key)
	}
	if m.dstore != nil {
		if man, ok := m.dstore.Manifest(key); ok {
			if err := m.dstore.Commit(key+retiredSuffix, man); err != nil {
				m.logf("cachemgr: retiring manifest %s: %v", key, err)
			}
			if err := m.dstore.Drop(key); err != nil {
				return err
			}
		}
		m.dedupReserve()
	}
	return nil
}

// DedupStats snapshots the blob store; zero when dedup is disabled.
func (m *Manager) DedupStats() dedup.StoreStats {
	if m.dstore == nil {
		return dedup.StoreStats{}
	}
	return m.dstore.Stats()
}

// dedupExport answers peers' OpManifest/OpChunk queries. Manifests are
// advertised only for caches this node could also serve wholesale
// (published and resident); chunks are served by pure content address —
// whichever cache brought them in, that is the cross-image sharing.
type dedupExport struct{ m *Manager }

func (d dedupExport) EncodedManifest(name string) ([]byte, error) {
	if !d.m.pool.Contains(name) {
		return nil, fmt.Errorf("%w: %s", backend.ErrNotExist, name)
	}
	man, ok := d.m.dstore.Manifest(name)
	if !ok {
		return nil, fmt.Errorf("%w: %s", backend.ErrNotExist, name)
	}
	return man.Encode(), nil
}

func (d dedupExport) ChunkBlob(hash [rblock.HashLen]byte) ([]byte, int64, error) {
	return d.m.dstore.ReadCompressed(dedup.Key(hash))
}
