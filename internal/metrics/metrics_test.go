package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstClosedForm(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if got := w.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if got := w.Var(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v", got)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordMergeEquivalentToSequential(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := rnd.NormFloat64()*3 + 10
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v != %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Var()-all.Var()) > 1e-9 {
		t.Fatalf("merged var %v != %v", a.Var(), all.Var())
	}
}

func TestWelfordMergeEmptySides(t *testing.T) {
	var a, b Welford
	b.Add(3)
	a.Merge(b) // empty <- non-empty
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatalf("merge into empty: %v", a.String())
	}
	var c Welford
	a.Merge(c) // non-empty <- empty
	if a.N() != 1 {
		t.Fatal("merge of empty changed state")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Quantile(0.99); math.Abs(got-99.01) > 1e-9 {
		t.Fatalf("q99 = %v", got)
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatal("min/max wrong")
	}
}

func TestSampleAddAfterQuantileKeepsConsistency(t *testing.T) {
	var s Sample
	s.Add(5)
	s.Add(1)
	_ = s.Median() // forces sort
	s.Add(3)       // must invalidate sorted flag
	if got := s.Median(); got != 3 {
		t.Fatalf("median after interleaved add = %v", got)
	}
}

// Property: quantiles are monotone in q.
func TestSampleQuantileMonotone(t *testing.T) {
	check := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			s.Add(x)
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return s.Quantile(q1) <= s.Quantile(q2)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Add(10) // bucket 3: [8,16)
	}
	h.Add(1000) // bucket 9: [512,1024)
	if h.Count() != 101 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Bucket(3); got != 100 {
		t.Fatalf("bucket 3 = %d", got)
	}
	if got := h.Bucket(9); got != 1 {
		t.Fatalf("bucket 9 = %d", got)
	}
	if got := h.ApproxQuantile(0.5); got != 16 {
		t.Fatalf("approx median = %v, want 16", got)
	}
	if got := h.ApproxQuantile(0.999); got != 1024 {
		t.Fatalf("approx p99.9 = %v, want 1024", got)
	}
	if math.Abs(h.Mean()-(100*10+1000)/101.0) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if !strings.Contains(h.String(), "[2^03, 2^04)") {
		t.Fatalf("render missing bucket: %s", h.String())
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Add(-5) // clamped
	h.Add(0)
	h.Add(0.5)
	if got := h.Bucket(0); got != 3 {
		t.Fatalf("bucket 0 = %d", got)
	}
	h.Add(math.MaxFloat64) // clamped to top bucket
	if got := h.Bucket(63); got != 1 {
		t.Fatalf("bucket 63 = %d", got)
	}
	var empty Histogram
	if empty.String() != "(empty histogram)" {
		t.Fatal("empty histogram render")
	}
	if empty.ApproxQuantile(0.5) != 0 {
		t.Fatal("empty quantile")
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("Fig X", "# nodes", "boot time (s)")
	warm := f.AddSeries("Warm cache")
	cold := f.AddSeries("QCOW2")
	for _, n := range []float64{1, 4, 8} {
		warm.Add(n, 30, 0)
	}
	cold.Add(1, 30, 0)
	cold.Add(8, 90, 0)
	out := f.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "Warm cache") {
		t.Fatalf("render: %s", out)
	}
	// x=4 exists only in warm; cold column should show "-".
	foundDash := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "4") && strings.Contains(line, "-") {
			foundDash = true
		}
	}
	if !foundDash {
		t.Fatalf("missing '-' placeholder:\n%s", out)
	}
	if y, ok := cold.YAt(8); !ok || y != 90 {
		t.Fatal("YAt lookup")
	}
	if _, ok := cold.YAt(5); ok {
		t.Fatal("YAt found nonexistent x")
	}
}

func TestFigureXValuesSorted(t *testing.T) {
	f := NewFigure("t", "x", "y")
	s := f.AddSeries("s")
	for _, x := range []float64{64, 1, 16, 4, 32, 8} {
		s.Add(x, x, 0)
	}
	xs := f.xValues()
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			t.Fatalf("xValues not sorted: %v", xs)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1", "VMI", "Size of unique reads")
	tb.AddRow("CentOS 6.3", "85.2 MB")
	tb.AddRow("Debian 6.0.7", "24.9 MB")
	out := tb.String()
	if !strings.Contains(out, "CentOS 6.3") || !strings.Contains(out, "85.2 MB") {
		t.Fatalf("table render: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("table lines = %d: %s", len(lines), out)
	}
}
