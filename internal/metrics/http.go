package metrics

import (
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// SetProfileRates turns on the runtime's contention profilers, feeding the
// /debug/pprof/mutex and /debug/pprof/block endpoints already mounted by
// Handler. mutexFrac is the 1-in-N mutex sampling fraction
// (runtime.SetMutexProfileFraction); blockRate the blocking-event sampling
// threshold in nanoseconds (runtime.SetBlockProfileRate). Zero or negative
// values leave the corresponding profiler untouched (off by default —
// sampling costs the hot paths real time, so daemons only enable it via
// their -pprof-mutex-frac / -pprof-block-rate flags).
func SetProfileRates(mutexFrac, blockRate int) {
	if mutexFrac > 0 {
		runtime.SetMutexProfileFraction(mutexFrac)
	}
	if blockRate > 0 {
		runtime.SetBlockProfileRate(blockRate)
	}
}

// Handler returns the observability mux a daemon mounts on its
// -metrics-addr: the two exposition formats plus the standard pprof
// endpoints (heap, goroutine, CPU profile, execution trace), so a live
// vmicached or rblockd can be profiled without redeploying.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client went away; nothing to do
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w) //nolint:errcheck // client went away; nothing to do
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// ListenAndServe binds addr and serves Handler(r) in the background;
// ":0"-style addresses pick an ephemeral port. Close the returned server to
// stop it.
func ListenAndServe(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler: Handler(r),
		// Scrapes are small; generous-but-bounded timeouts keep a stuck
		// client from pinning a connection forever. No WriteTimeout: CPU
		// profiles legitimately stream for tens of seconds.
		ReadHeaderTimeout: 10 * time.Second,
	}
	go srv.Serve(ln) //nolint:errcheck // returns ErrServerClosed on Close
	return &Server{srv: srv, ln: ln}, nil
}

// Addr reports the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
