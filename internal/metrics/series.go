package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Point is one (x, y) pair in a figure series, with an optional error bar.
type Point struct {
	X   float64
	Y   float64
	Err float64
}

// Series is one named curve of a paper figure ("Warm cache", "QCOW2", ...).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y, errBar float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Err: errBar})
}

// YAt returns the y value at the given x, or (0, false) if absent.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Figure is a reproduction of one paper figure: several series over a common
// x axis, with labels. The harness prints it as aligned columns, one row per
// x value — the same rows the paper plots.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure constructs an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates, registers, and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// xValues returns the sorted union of x values over all series.
func (f *Figure) xValues() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs
}

// WriteTo renders the figure as an aligned text table.
func (f *Figure) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %20s", s.Name)
	}
	fmt.Fprintf(&b, "   (%s)\n", f.YLabel)
	for _, x := range f.xValues() {
		fmt.Fprintf(&b, "%-12g", x)
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				fmt.Fprintf(&b, " %20.2f", y)
			} else {
				fmt.Fprintf(&b, " %20s", "-")
			}
		}
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the figure table.
func (f *Figure) String() string {
	var b strings.Builder
	f.WriteTo(&b) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

// Table is a reproduction of one paper table: rows of labelled values.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable constructs a table with the given column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
