package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// The two exposition formats every daemon serves: the Prometheus text format
// (for scrapers and `curl`) and a JSON snapshot (for scripts and the
// round-trip tests). Both render the same Gather output, sorted by
// (name, labels) so output is deterministic and golden-testable.

// BucketCount is one non-empty logarithmic bucket: Count values fell in
// [2^Exp, 2^(Exp+1)).
type BucketCount struct {
	Exp   int   `json:"exp"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of an AtomicHistogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// MetricSnapshot is one gathered instrument value.
type MetricSnapshot struct {
	Name   string             `json:"name"`
	Labels Labels             `json:"labels,omitempty"`
	Kind   string             `json:"kind"`
	Value  int64              `json:"value,omitempty"`
	Hist   *HistogramSnapshot `json:"histogram,omitempty"`

	help string
}

// RegistrySnapshot is the JSON document /metrics.json serves.
type RegistrySnapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// Gather samples every registered instrument, sorted by (name, labels).
func (r *Registry) Gather() []MetricSnapshot {
	r.mu.Lock()
	ins := make([]*instrument, len(r.ins))
	copy(ins, r.ins)
	r.mu.Unlock()

	sort.Slice(ins, func(i, j int) bool {
		if ins[i].name != ins[j].name {
			return ins[i].name < ins[j].name
		}
		return ins[i].lkey < ins[j].lkey
	})
	out := make([]MetricSnapshot, 0, len(ins))
	for _, in := range ins {
		m := MetricSnapshot{Name: in.name, Labels: in.labels, Kind: in.kind.String(), help: in.help}
		if in.hist != nil {
			s := in.hist.Snapshot()
			m.Hist = &s
		} else {
			m.Value = in.read()
		}
		out = append(out, m)
	}
	return out
}

// promLabels renders a label set as {k="v",...} ("" when empty).
func promLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	return "{" + l.key() + "}"
}

// promLabelsExtra renders labels plus one extra pair (the histogram "le").
func promLabelsExtra(l Labels, k, v string) string {
	inner := l.key()
	if inner != "" {
		inner += ","
	}
	return "{" + inner + fmt.Sprintf("%s=%q", k, v) + "}"
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms emit cumulative _bucket series with
// power-of-two le bounds, plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) (int64, error) {
	var b strings.Builder
	lastHeader := ""
	for _, m := range r.Gather() {
		if m.Name != lastHeader {
			lastHeader = m.Name
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, m.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, m.Kind)
		}
		if m.Hist == nil {
			fmt.Fprintf(&b, "%s%s %d\n", m.Name, promLabels(m.Labels), m.Value)
			continue
		}
		var cum int64
		for _, bk := range m.Hist.Buckets {
			cum += bk.Count
			le := math.Pow(2, float64(bk.Exp+1))
			fmt.Fprintf(&b, "%s_bucket%s %d\n", m.Name, promLabelsExtra(m.Labels, "le", fmt.Sprintf("%g", le)), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", m.Name, promLabelsExtra(m.Labels, "le", "+Inf"), m.Hist.Count)
		fmt.Fprintf(&b, "%s_sum%s %d\n", m.Name, promLabels(m.Labels), m.Hist.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", m.Name, promLabels(m.Labels), m.Hist.Count)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// WriteJSON renders the registry as an indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(RegistrySnapshot{Metrics: r.Gather()})
}
