package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the live-instrument half of the package: a concurrent-safe
// registry of named counters, gauges, and logarithmic histograms that the
// running daemons expose over /metrics (Prometheus text) and /metrics.json.
// Instruments are plain atomics — the data-path hot paths (warm reads) touch
// only atomic.Int64.Add, never a mutex or a map — while the registry's mutex
// guards registration and scrape-time iteration only.
//
// Naming scheme (documented in DESIGN.md §7): every instrument is
// "vmicache_<subsystem>_<metric>[_<unit>]", units are "_total" for counters,
// "_bytes"/"_ns" for sizes and durations, and per-object dimensions (image
// name, export, peer) are labels, never name fragments.

// Labels is an optional set of constant key=value dimensions attached to an
// instrument at registration time.
type Labels map[string]string

// With returns a copy of l with one extra (or overridden) label.
func (l Labels) With(k, v string) Labels {
	out := make(Labels, len(l)+1)
	for lk, lv := range l {
		out[lk] = lv
	}
	out[k] = v
	return out
}

// key renders the labels deterministically for identity and exposition.
func (l Labels) key() string {
	if len(l) == 0 {
		return ""
	}
	ks := make([]string, 0, len(l))
	for k := range l {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var b strings.Builder
	for i, k := range ks {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load reports the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load reports the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// AtomicHistogram is the concurrent form of Histogram: a base-2 logarithmic
// histogram over non-negative int64 values (latencies in nanoseconds, sizes
// in bytes) whose buckets are individually atomic. Observe is lock-free and
// allocation-free; Snapshot reads the buckets without stopping writers, so a
// snapshot taken under concurrent Observes is approximate (each field is
// individually consistent), which is the usual scrape contract.
type AtomicHistogram struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value; negative values are clamped to zero. Bucket i
// holds values in [2^i, 2^(i+1)); values < 1 land in bucket 0.
func (h *AtomicHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := 0
	if v >= 1 {
		i = bits.Len64(uint64(v)) - 1 // floor(log2(v))
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the number of recorded values.
func (h *AtomicHistogram) Count() int64 { return h.count.Load() }

// Snapshot captures the histogram's current state.
func (h *AtomicHistogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, BucketCount{Exp: i, Count: n})
		}
	}
	return s
}

// Histogram converts the snapshot into the offline Histogram type, for the
// ASCII rendering and quantile helpers the exit-status printers use.
func (s HistogramSnapshot) Histogram() Histogram {
	var h Histogram
	for _, b := range s.Buckets {
		h.buckets[b.Exp] = b.Count
	}
	h.count = s.Count
	h.sum = float64(s.Sum)
	return h
}

// kind discriminates instrument flavours in snapshots and exposition.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// instrument is one registered metric: a value read function (counter/gauge)
// or a histogram, plus the owning instrument object for get-or-create
// re-registration.
type instrument struct {
	name   string
	help   string
	labels Labels
	lkey   string
	kind   kind
	read   func() int64
	hist   *AtomicHistogram
	owner  any
}

// Registry holds named instruments. The zero value is NOT ready; use
// NewRegistry. All methods are safe for concurrent use; instrument updates
// themselves never touch the registry.
type Registry struct {
	mu   sync.Mutex
	byID map[string]*instrument
	ins  []*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*instrument)}
}

func id(name, lkey string) string { return name + "\x00" + lkey }

// register installs inst, panicking on an identity collision with a
// different kind (a programming error: two subsystems claiming one name).
// Re-registering the same identity and kind returns the existing instrument,
// which gives dynamic registrations (per-image counters) get-or-create
// semantics.
func (r *Registry) register(inst *instrument) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := id(inst.name, inst.lkey)
	if old, ok := r.byID[key]; ok {
		if old.kind != inst.kind {
			panic(fmt.Sprintf("metrics: %s{%s} re-registered as %s (was %s)",
				inst.name, inst.lkey, inst.kind, old.kind))
		}
		return old
	}
	r.byID[key] = inst
	r.ins = append(r.ins, inst)
	return inst
}

// Counter registers a counter and returns it. Registering the same
// (name, labels) twice returns the first counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	inst := r.register(&instrument{
		name: name, help: help, labels: labels, lkey: labels.key(),
		kind: kindCounter, read: c.Load, owner: c,
	})
	return inst.owner.(*Counter)
}

// Gauge registers a gauge and returns it. Registering the same
// (name, labels) twice returns the first gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	inst := r.register(&instrument{
		name: name, help: help, labels: labels, lkey: labels.key(),
		kind: kindGauge, read: g.Load, owner: g,
	})
	return inst.owner.(*Gauge)
}

// CounterFunc registers a counter whose value is sampled from fn at scrape
// time — the bridge that exposes an existing atomic (a Stats field) without
// changing the code that increments it. Re-registering the same identity is
// a no-op keeping the first function.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() int64) {
	r.register(&instrument{
		name: name, help: help, labels: labels, lkey: labels.key(),
		kind: kindCounter, read: fn,
	})
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() int64) {
	r.register(&instrument{
		name: name, help: help, labels: labels, lkey: labels.key(),
		kind: kindGauge, read: fn,
	})
}

// Histogram registers a histogram and returns it. Registering the same
// (name, labels) twice returns the first histogram.
func (r *Registry) Histogram(name, help string, labels Labels) *AtomicHistogram {
	h := &AtomicHistogram{}
	inst := r.register(&instrument{
		name: name, help: help, labels: labels, lkey: labels.key(),
		kind: kindHistogram, hist: h, owner: h,
	})
	return inst.owner.(*AtomicHistogram)
}

// RegisterHistogram exposes an existing histogram (one embedded in a Stats
// struct) under the given identity.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *AtomicHistogram) {
	r.register(&instrument{
		name: name, help: help, labels: labels, lkey: labels.key(),
		kind: kindHistogram, hist: h, owner: h,
	})
}
