// Package metrics provides the small statistics toolkit the evaluation
// harness uses: online mean/variance (Welford), order statistics,
// logarithmic histograms, and tabular series printers that emit the rows the
// paper's figures plot.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Welford accumulates mean and variance online without storing samples.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N reports the sample count.
func (w *Welford) N() int64 { return w.n }

// Mean reports the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var reports the unbiased sample variance (0 for n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std reports the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min reports the smallest sample (0 when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max reports the largest sample (0 when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Merge combines another accumulator into w (parallel Welford merge).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// String summarises the accumulator.
func (w *Welford) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f max=%.3f",
		w.n, w.Mean(), w.Std(), w.Min(), w.Max())
}

// Sample is a stored collection of float64 observations supporting order
// statistics. The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean reports the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[len(s.xs)-1]
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.ensureSorted()
	return s.xs[0]
}

// Std reports the sample standard deviation.
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}
