package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// buildRegistry constructs a registry with one of each instrument flavour and
// deterministic values, shared by the golden and round-trip tests.
func buildRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("vmicache_test_reads_total", "Reads handled.", Labels{"image": "a"})
	c.Add(41)
	c.Inc()
	g := r.Gauge("vmicache_test_inflight", "Requests in flight.", nil)
	g.Set(7)
	r.CounterFunc("vmicache_test_fills_total", "Fills performed.", nil, func() int64 { return 3 })
	h := r.Histogram("vmicache_test_latency_ns", "Request latency.", Labels{"image": "a"})
	h.Observe(1) // bucket 0: [1,2)
	h.Observe(3) // bucket 1: [2,4)
	h.Observe(3)
	h.Observe(900) // bucket 9: [512,1024)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if _, err := buildRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP vmicache_test_fills_total Fills performed.
# TYPE vmicache_test_fills_total counter
vmicache_test_fills_total 3
# HELP vmicache_test_inflight Requests in flight.
# TYPE vmicache_test_inflight gauge
vmicache_test_inflight 7
# HELP vmicache_test_latency_ns Request latency.
# TYPE vmicache_test_latency_ns histogram
vmicache_test_latency_ns_bucket{image="a",le="2"} 1
vmicache_test_latency_ns_bucket{image="a",le="4"} 3
vmicache_test_latency_ns_bucket{image="a",le="1024"} 4
vmicache_test_latency_ns_bucket{image="a",le="+Inf"} 4
vmicache_test_latency_ns_sum{image="a"} 907
vmicache_test_latency_ns_count{image="a"} 4
# HELP vmicache_test_reads_total Reads handled.
# TYPE vmicache_test_reads_total counter
vmicache_test_reads_total{image="a"} 42
`
	if got := b.String(); got != want {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := buildRegistry()
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap RegistrySnapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	want := RegistrySnapshot{Metrics: r.Gather()}
	// The unexported help field does not survive JSON; blank it for the
	// comparison.
	for i := range want.Metrics {
		want.Metrics[i].help = ""
	}
	if !reflect.DeepEqual(snap, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", snap, want)
	}
}

func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Labels{"k": "v"})
	b := r.Counter("x_total", "", Labels{"k": "v"})
	if a != b {
		t.Error("same identity returned distinct counters")
	}
	if c := r.Counter("x_total", "", Labels{"k": "w"}); c == a {
		t.Error("distinct labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", "", Labels{"k": "v"})
}

// TestConcurrentObserveScrape hammers one histogram from 8 goroutines while
// scraping both exposition formats; run under -race this is the registry's
// concurrency contract test.
func TestConcurrentObserveScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vmicache_test_hammer_ns", "Hammered.", nil)
	c := r.Counter("vmicache_test_hammer_total", "Hammered.", nil)
	const (
		writers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(seed + int64(i))
				c.Inc()
			}
		}(int64(w * 1000))
	}
	donec := make(chan struct{})
	go func() {
		defer close(donec)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if _, err := r.WritePrometheus(&b); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			if err := r.WriteJSON(&b); err != nil {
				t.Errorf("json scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-donec
	if got := h.Count(); got != writers*perG {
		t.Errorf("histogram count = %d, want %d", got, writers*perG)
	}
	if got := c.Load(); got != writers*perG {
		t.Errorf("counter = %d, want %d", got, writers*perG)
	}
	s := h.Snapshot()
	var sum int64
	for _, b := range s.Buckets {
		sum += b.Count
	}
	if sum != s.Count {
		t.Errorf("bucket sum %d != count %d", sum, s.Count)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(buildRegistry()))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close() //nolint:errcheck // test helper
		if err != nil {
			t.Fatalf("GET %s body: %v", path, err)
		}
		return resp, string(body)
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "vmicache_test_reads_total{image=\"a\"} 42") {
		t.Errorf("/metrics missing counter line:\n%s", body)
	}

	resp, body = get("/metrics.json")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/metrics.json status = %d", resp.StatusCode)
	}
	var snap RegistrySnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Errorf("/metrics.json not valid JSON: %v", err)
	} else if len(snap.Metrics) != 4 {
		t.Errorf("/metrics.json has %d metrics, want 4", len(snap.Metrics))
	}

	resp, _ = get("/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status = %d", resp.StatusCode)
	}
	resp, _ = get("/debug/pprof/goroutine?debug=1")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/goroutine status = %d", resp.StatusCode)
	}
}

func TestListenAndServe(t *testing.T) {
	r := buildRegistry()
	s, err := ListenAndServe("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close() //nolint:errcheck // test cleanup
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestSnapshotHistogramConversion(t *testing.T) {
	var ah AtomicHistogram
	ah.Observe(5)
	ah.Observe(5)
	ah.Observe(100)
	h := ah.Snapshot().Histogram()
	if h.Count() != 3 {
		t.Errorf("converted count = %d, want 3", h.Count())
	}
	if got := h.Mean(); got < 36 || got > 37 {
		t.Errorf("converted mean = %g, want ~36.67", got)
	}
}
