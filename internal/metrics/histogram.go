package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a base-2 logarithmic histogram for non-negative values
// (latencies in nanoseconds, request sizes in bytes). Bucket i holds values
// in [2^i, 2^(i+1)); values < 1 land in bucket 0.
type Histogram struct {
	buckets [64]int64
	count   int64
	sum     float64
}

// Add records one value; negative values are clamped to zero.
func (h *Histogram) Add(v float64) {
	if v < 0 {
		v = 0
	}
	i := 0
	if v >= 1 {
		i = int(math.Log2(v))
		if i > 63 {
			i = 63
		}
	}
	h.buckets[i]++
	h.count++
	h.sum += v
}

// Count reports the number of recorded values.
func (h *Histogram) Count() int64 { return h.count }

// Mean reports the arithmetic mean of recorded values.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Bucket reports the count in logarithmic bucket i.
func (h *Histogram) Bucket(i int) int64 {
	if i < 0 || i >= len(h.buckets) {
		return 0
	}
	return h.buckets[i]
}

// ApproxQuantile returns an upper bound for the q-th quantile using bucket
// boundaries (exact to within one power of two).
func (h *Histogram) ApproxQuantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen > target {
			return math.Pow(2, float64(i+1))
		}
	}
	return math.Pow(2, 64)
}

// String renders an ASCII bar chart of the non-empty buckets.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := int64(1)
	lo, hi := -1, -1
	for i, c := range h.buckets {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
			if c > maxC {
				maxC = c
			}
		}
	}
	if lo < 0 {
		return "(empty histogram)"
	}
	for i := lo; i <= hi; i++ {
		bar := strings.Repeat("#", int(40*h.buckets[i]/maxC))
		fmt.Fprintf(&b, "[2^%02d, 2^%02d) %8d %s\n", i, i+1, h.buckets[i], bar)
	}
	return b.String()
}
