package boot

import (
	"testing"

	"vmicache/internal/prefetch"
	"vmicache/internal/trace"
)

// TestPrefetchPlanCoversFootprint checks the exported prewarm plan against
// the workload it came from: every read byte is inside the plan, extents
// respect the split cap, and coalescing actually shrinks the extent count.
func TestPrefetchPlanCoversFootprint(t *testing.T) {
	p := CentOS.Scale(64 * 1e6 / float64(CentOS.UniqueReadBytes)) // ~64 MB working set
	w := Generate(p)

	const (
		maxGap = 256 << 10
		maxLen = 4 << 20
	)
	plan := w.PrefetchPlan(maxGap, maxLen)
	if len(plan) == 0 {
		t.Fatal("empty plan")
	}
	var cover trace.IntervalSet
	var planBytes int64
	for _, e := range plan {
		if e.Len <= 0 {
			t.Fatalf("non-positive extent %+v", e)
		}
		if e.Len > maxLen {
			t.Fatalf("extent %+v exceeds maxLen %d", e, maxLen)
		}
		if e.Off < 0 || e.Off+e.Len > p.ImageSize {
			t.Fatalf("extent %+v escapes the image (size %d)", e, p.ImageSize)
		}
		cover.Add(e.Off, e.Off+e.Len)
		planBytes += e.Len
	}
	for _, s := range w.ReadSpans() {
		if !cover.Contains(s.Off, s.Off+s.Len) {
			t.Fatalf("read span %+v not covered by the plan", s)
		}
	}
	if len(plan) >= len(w.ReadSpans()) {
		t.Fatalf("coalescing did not shrink the plan: %d extents for %d reads",
			len(plan), len(w.ReadSpans()))
	}
	// Gap absorption costs bytes; it must stay a modest multiple of the
	// true footprint or prewarming would defeat its own purpose.
	if unique := w.UniqueReadBytes(); planBytes > 4*unique {
		t.Fatalf("plan fetches %d bytes for a %d-byte footprint", planBytes, unique)
	}
}

// TestPrefetchPlanDeterminism pins the plan to the workload's determinism:
// same profile, same plan.
func TestPrefetchPlanDeterminism(t *testing.T) {
	p := Debian.Scale(16 * 1e6 / float64(Debian.UniqueReadBytes))
	a := Generate(p).PrefetchPlan(64<<10, 1<<20)
	b := Generate(p).PrefetchPlan(64<<10, 1<<20)
	if len(a) != len(b) {
		t.Fatalf("plan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != (prefetch.Extent{Off: b[i].Off, Len: b[i].Len}) {
			t.Fatalf("plan[%d] differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
