package boot

import (
	"math/rand"
	"time"

	"vmicache/internal/prefetch"
	"vmicache/internal/trace"
)

// Kind is the kind of one workload operation.
type Kind uint8

// Workload operation kinds.
const (
	Read Kind = iota
	Write
	Flush
)

// Op is one step of a boot: think for Think, then perform the access.
type Op struct {
	Think time.Duration
	Kind  Kind
	Off   int64
	Len   int64
}

// Span is a byte range (used to warm caches from a workload's read set).
type Span struct {
	Off int64
	Len int64
}

// Workload is a generated, deterministic boot operation stream.
type Workload struct {
	Profile Profile
	Ops     []Op

	uniqueReadBytes int64
	totalReadBytes  int64
	totalWriteByte  int64
	totalThink      time.Duration
}

// UniqueReadBytes reports the unique read volume of the stream (within one
// sector of the profile's target).
func (w *Workload) UniqueReadBytes() int64 { return w.uniqueReadBytes }

// TotalReadBytes reports all read bytes including re-reads.
func (w *Workload) TotalReadBytes() int64 { return w.totalReadBytes }

// TotalWriteBytes reports the guest write volume.
func (w *Workload) TotalWriteBytes() int64 { return w.totalWriteByte }

// TotalThink reports the summed think time (guest CPU model).
func (w *Workload) TotalThink() time.Duration { return w.totalThink }

// ReadSpans returns every read operation's byte range, in issue order.
func (w *Workload) ReadSpans() []Span {
	var out []Span
	for _, op := range w.Ops {
		if op.Kind == Read {
			out = append(out, Span{Off: op.Off, Len: op.Len})
		}
	}
	return out
}

// PrefetchPlan exports the workload's read footprint as a prewarm plan:
// reads in issue order, folded into larger extents when they overlap or sit
// within maxGap bytes of each other, split at maxLen. Issue order is kept
// deliberately — a prewarmer racing the boot it was derived from then stays
// ahead of the guest instead of warming the tail first. Re-read extents
// survive coalescing as duplicates; fetching them again is a warm hit and
// costs nothing remote.
func (w *Workload) PrefetchPlan(maxGap, maxLen int64) []prefetch.Extent {
	exts := make([]prefetch.Extent, 0, len(w.Ops))
	for _, op := range w.Ops {
		if op.Kind == Read {
			exts = append(exts, prefetch.Extent{Off: op.Off, Len: op.Len})
		}
	}
	return prefetch.Coalesce(exts, maxGap, maxLen)
}

// Generate expands a profile into its operation stream. The same profile
// always yields the same stream.
func Generate(p Profile) *Workload {
	rnd := rand.New(rand.NewSource(p.Seed))
	w := &Workload{Profile: p}

	const align = 512 // guest sector size
	var covered trace.IntervalSet
	type rw struct{ off, n int64 }
	var reads []rw

	randOff := func(n int64) int64 {
		max := p.ImageSize - n
		if max <= 0 {
			return 0
		}
		return (rnd.Int63n(max) / align) * align
	}
	readSize := func(mean int64) int64 {
		// Log-ish distribution clipped to [512 B, 64 KiB]: boots issue
		// mostly small requests.
		n := int64(float64(mean) * (0.25 + rnd.ExpFloat64()))
		if n < align {
			n = align
		}
		if n > 64<<10 {
			n = 64 << 10
		}
		return (n / align) * align
	}

	// Phase 1: unique read set, as sequential runs + scattered singles.
	// SeqRunFraction is a BYTE share: runs are issued until sequential
	// bytes reach their share, then scattered singles catch up, so the
	// generated stream's byte mix matches the profile regardless of how
	// much bigger runs are than singles.
	var seqBytes, randBytes int64
	for covered.Total() < p.UniqueReadBytes {
		seqTarget := p.SeqRunFraction * float64(seqBytes+randBytes+1)
		if float64(seqBytes) < seqTarget {
			// A sequential run of several requests (file reads,
			// program loads).
			pos := randOff(512 << 10)
			runReqs := 2 + rnd.Intn(10)
			for r := 0; r < runReqs && covered.Total() < p.UniqueReadBytes; r++ {
				n := readSize(p.MeanReadSize)
				if pos+n > p.ImageSize {
					break
				}
				covered.Add(pos, pos+n)
				reads = append(reads, rw{pos, n})
				seqBytes += n
				pos += n
			}
		} else {
			n := readSize(p.MeanReadSize / 2)
			off := randOff(n)
			covered.Add(off, off+n)
			reads = append(reads, rw{off, n})
			randBytes += n
		}
	}
	// Trim the overshoot so the unique volume lands within one sector of
	// the profile's working set: the last op's fresh tail caused the
	// excess, and requests stay sector-aligned.
	if excess := (covered.Total() - p.UniqueReadBytes) / align * align; excess > 0 {
		last := &reads[len(reads)-1]
		if last.n > excess {
			last.n -= excess
		}
	}

	// Phase 2: re-reads of earlier ranges (the small fraction the guest
	// page cache misses).
	rereads := int(float64(len(reads)) * p.RereadFraction)
	for i := 0; i < rereads; i++ {
		src := reads[rnd.Intn(len(reads))]
		reads = append(reads, src)
	}

	// Phase 3: guest writes (logs, runtime state), biased to late boot.
	// Boot-time writes overwhelmingly target file-system regions the boot
	// already read (log files, lock files, runtime state under paths the
	// kernel and services just loaded), so most write offsets fall inside
	// earlier read spans; the CoW partial-cluster fills they trigger are
	// then served by a warm cache rather than the remote base.
	type wr struct{ off, n int64 }
	var writes []wr
	writeTarget := (p.WriteBytes + align - 1) / align * align
	for remaining := writeTarget; remaining > 0; {
		n := int64(4<<10) + rnd.Int63n(28<<10)
		n = (n / align) * align
		if n > remaining {
			n = remaining
		}
		off, ok := int64(0), false
		if len(reads) > 0 && rnd.Float64() < 0.98 {
			// Find a write position whose enclosing 64 KiB CoW
			// clusters were fully read earlier in the boot (bias to
			// the first 60% of reads so the read precedes the
			// write). The copy-on-write fill is then wholly
			// cache-resident.
			const cowCluster = 64 << 10
			for try := 0; try < 12 && !ok; try++ {
				r := reads[rnd.Intn(maxInt(len(reads)*6/10, 1))]
				cand := r.off
				if cand+n > p.ImageSize {
					continue
				}
				cl0 := cand / cowCluster * cowCluster
				cl1 := (cand + n + cowCluster - 1) / cowCluster * cowCluster
				if cl1 <= p.ImageSize && covered.Contains(cl0, cl1) {
					off, ok = cand, true
				}
			}
		}
		if !ok {
			off = randOff(n)
		}
		writes = append(writes, wr{off, n})
		remaining -= n
	}

	// Interleave: reads stay in order; writes are spliced into the last
	// 60% of the stream; a flush follows roughly every 8th write.
	totalOps := len(reads) + len(writes)
	w.Ops = make([]Op, 0, totalOps+len(writes)/8+1)
	wi := 0
	writeStart := int(0.4 * float64(len(reads)))
	for ri, r := range reads {
		w.Ops = append(w.Ops, Op{Kind: Read, Off: r.off, Len: r.n})
		if ri >= writeStart && wi < len(writes) {
			// Interleave writes proportionally across the tail.
			tail := len(reads) - writeStart
			want := (ri - writeStart + 1) * len(writes) / maxInt(tail, 1)
			for wi < want && wi < len(writes) {
				w.Ops = append(w.Ops, Op{Kind: Write, Off: writes[wi].off, Len: writes[wi].n})
				wi++
				if wi%8 == 0 {
					w.Ops = append(w.Ops, Op{Kind: Flush})
				}
			}
		}
	}
	for ; wi < len(writes); wi++ {
		w.Ops = append(w.Ops, Op{Kind: Write, Off: writes[wi].off, Len: writes[wi].n})
	}

	// Phase 4: think times. Total think = uncontended boot minus its
	// read-wait share. A few large milestone gaps (kernel init, service
	// start) hold ~30% of it; the rest spreads exponentially.
	thinkBudget := time.Duration(float64(p.UncontendedBoot) * (1 - p.ReadWaitFraction))
	milestones := 3
	milestoneShare := thinkBudget * 3 / 10
	perOpBudget := thinkBudget - milestoneShare
	weights := make([]float64, len(w.Ops))
	var wsum float64
	for i := range weights {
		weights[i] = rnd.ExpFloat64()
		wsum += weights[i]
	}
	for i := range w.Ops {
		w.Ops[i].Think = time.Duration(weights[i] / wsum * float64(perOpBudget))
	}
	for i := 0; i < milestones && len(w.Ops) > 0; i++ {
		idx := rnd.Intn(len(w.Ops))
		w.Ops[idx].Think += milestoneShare / time.Duration(milestones)
	}

	// Final accounting.
	var unique trace.IntervalSet
	for _, op := range w.Ops {
		switch op.Kind {
		case Read:
			w.totalReadBytes += op.Len
			unique.Add(op.Off, op.Off+op.Len)
		case Write:
			w.totalWriteByte += op.Len
		}
		w.totalThink += op.Think
	}
	w.uniqueReadBytes = unique.Total()
	return w
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
