package boot

import (
	"fmt"
	"io"
	"time"

	"vmicache/internal/backend"
	"vmicache/internal/trace"
)

// Device is the disk surface a replay drives: the top of an image chain, an
// NBD-attached export, or a bare image.
type Device interface {
	io.ReaderAt
	io.WriterAt
}

// Syncer is optionally implemented by devices that support flush.
type Syncer interface {
	Sync() error
}

// ReplayOpts controls real-time replay.
type ReplayOpts struct {
	// ThinkScale multiplies think times; 0 skips thinking entirely
	// (I/O-bound replay, the default for measurements of the data path).
	ThinkScale float64

	// Recorder, when non-nil, captures the replayed accesses.
	Recorder *trace.Recorder

	// Verify, when non-nil, is consulted for every read: it must return
	// the expected content of [off, off+len). Used by integrity tests.
	Verify func(off, n int64) []byte
}

// ReplayResult summarises one replay.
type ReplayResult struct {
	Elapsed    time.Duration
	ReadBytes  int64
	WriteBytes int64
	ReadOps    int64
	WriteOps   int64
	FlushOps   int64
}

// Replay runs the workload against dev in real time, returning aggregate
// counts. It is the "boot" of cmd/vmiboot and the examples; the cluster
// simulator replays under virtual time instead (internal/cluster).
func Replay(w *Workload, dev Device, opts ReplayOpts) (*ReplayResult, error) {
	res := &ReplayResult{}
	start := time.Now()
	buf := make([]byte, 64<<10)
	for i, op := range w.Ops {
		if opts.ThinkScale > 0 && op.Think > 0 {
			time.Sleep(time.Duration(float64(op.Think) * opts.ThinkScale))
		}
		switch op.Kind {
		case Read:
			if int64(len(buf)) < op.Len {
				buf = make([]byte, op.Len)
			}
			if err := backend.ReadFull(dev, buf[:op.Len], op.Off); err != nil {
				return res, fmt.Errorf("boot: replay op %d read %d+%d: %w", i, op.Off, op.Len, err)
			}
			if opts.Recorder != nil {
				opts.Recorder.Read(op.Off, op.Len)
			}
			if opts.Verify != nil {
				want := opts.Verify(op.Off, op.Len)
				for j := range want {
					if buf[j] != want[j] {
						return res, fmt.Errorf("boot: data corruption at %d+%d (byte %d)", op.Off, op.Len, j)
					}
				}
			}
			res.ReadOps++
			res.ReadBytes += op.Len
		case Write:
			if int64(len(buf)) < op.Len {
				buf = make([]byte, op.Len)
			}
			fillPattern(buf[:op.Len], op.Off)
			if err := backend.WriteFull(dev, buf[:op.Len], op.Off); err != nil {
				return res, fmt.Errorf("boot: replay op %d write %d+%d: %w", i, op.Off, op.Len, err)
			}
			if opts.Recorder != nil {
				opts.Recorder.Write(op.Off, op.Len)
			}
			res.WriteOps++
			res.WriteBytes += op.Len
		case Flush:
			if s, ok := dev.(Syncer); ok {
				if err := s.Sync(); err != nil {
					return res, fmt.Errorf("boot: replay op %d flush: %w", i, err)
				}
			}
			if opts.Recorder != nil {
				opts.Recorder.Flush()
			}
			res.FlushOps++
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// fillPattern writes a deterministic guest-write pattern.
func fillPattern(p []byte, off int64) {
	for i := range p {
		p[i] = byte((off + int64(i)) * 131)
	}
}

// PatternSource is a deterministic, storage-free disk content generator: it
// computes bytes from (Seed, offset) on the fly, so multi-GB base images
// can exist virtually without materialising their content. It implements
// qcow.BlockSource semantics (ReadAt + Size).
type PatternSource struct {
	Seed int64
	N    int64
}

// ReadAt fills p with the deterministic pattern at off.
func (s PatternSource) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("boot: negative offset %d", off)
	}
	n := len(p)
	var errEOF error
	if off >= s.N {
		return 0, io.EOF
	}
	if off+int64(n) > s.N {
		n = int(s.N - off)
		errEOF = io.EOF
	}
	// One xorshift-mixed word per 8-byte lane, sliced per byte so any
	// alignment reads consistently.
	for i := 0; i < n; i++ {
		pos := off + int64(i)
		word := mix64(uint64(s.Seed) ^ uint64(pos>>3)*0x9e3779b97f4a7c15)
		p[i] = byte(word >> uint((pos&7)*8))
	}
	return n, errEOF
}

// Size reports the virtual content size.
func (s PatternSource) Size() int64 { return s.N }

// At returns the expected content of [off, off+n) — the Verify oracle.
func (s PatternSource) At(off, n int64) []byte {
	out := make([]byte, n)
	s.ReadAt(out, off) //nolint:errcheck // in-range by construction
	return out
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ReplayTrace replays a captured block trace (from trace.Recorder /
// `vmiboot -trace`) against a device: trace-driven evaluation with real
// recorded request streams instead of generated ones. Think time is taken
// from the records' timestamps, scaled by opts.ThinkScale.
func ReplayTrace(tr *trace.Trace, dev Device, opts ReplayOpts) (*ReplayResult, error) {
	res := &ReplayResult{}
	start := time.Now()
	buf := make([]byte, 64<<10)
	var prev time.Duration
	for i, rec := range tr.Records {
		if opts.ThinkScale > 0 && rec.When > prev {
			time.Sleep(time.Duration(float64(rec.When-prev) * opts.ThinkScale))
		}
		prev = rec.When
		switch rec.Op {
		case trace.OpRead:
			if int64(len(buf)) < rec.Length {
				buf = make([]byte, rec.Length)
			}
			if err := backend.ReadFull(dev, buf[:rec.Length], rec.Offset); err != nil {
				return res, fmt.Errorf("boot: trace record %d read %d+%d: %w", i, rec.Offset, rec.Length, err)
			}
			if opts.Recorder != nil {
				opts.Recorder.Read(rec.Offset, rec.Length)
			}
			res.ReadOps++
			res.ReadBytes += rec.Length
		case trace.OpWrite:
			if int64(len(buf)) < rec.Length {
				buf = make([]byte, rec.Length)
			}
			fillPattern(buf[:rec.Length], rec.Offset)
			if err := backend.WriteFull(dev, buf[:rec.Length], rec.Offset); err != nil {
				return res, fmt.Errorf("boot: trace record %d write %d+%d: %w", i, rec.Offset, rec.Length, err)
			}
			if opts.Recorder != nil {
				opts.Recorder.Write(rec.Offset, rec.Length)
			}
			res.WriteOps++
			res.WriteBytes += rec.Length
		case trace.OpFlush:
			if s, ok := dev.(Syncer); ok {
				if err := s.Sync(); err != nil {
					return res, fmt.Errorf("boot: trace record %d flush: %w", i, err)
				}
			}
			res.FlushOps++
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
