package boot

import (
	"bytes"
	"math"
	"testing"
	"time"

	"vmicache/internal/backend"
	"vmicache/internal/qcow"
	"vmicache/internal/trace"
)

func TestProfilesMatchTable1(t *testing.T) {
	// Table 1: CentOS 85.2 MB, Debian 24.9 MB, Windows 195.8 MB.
	cases := []struct {
		p    Profile
		want int64
	}{
		{CentOS, 85_200_000},
		{Debian, 24_900_000},
		{WindowsServer, 195_800_000},
	}
	for _, c := range cases {
		if c.p.UniqueReadBytes != c.want {
			t.Errorf("%s working set = %d, want %d", c.p.Name, c.p.UniqueReadBytes, c.want)
		}
		if c.p.ImageSize < 20*c.p.UniqueReadBytes {
			t.Errorf("%s image not multi-GB relative to working set", c.p.Name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"centos", "debian", "windows", "CentOS 6.3"} {
		if _, err := ProfileByName(name); err != nil {
			t.Errorf("ProfileByName(%q): %v", name, err)
		}
	}
	if _, err := ProfileByName("plan9"); err == nil {
		t.Error("unknown profile resolved")
	}
}

func TestGenerateHitsWorkingSetExactly(t *testing.T) {
	for _, p := range []Profile{CentOS.Scale(0.02), Debian.Scale(0.05)} {
		w := Generate(p)
		if got := w.UniqueReadBytes(); got < p.UniqueReadBytes || got >= p.UniqueReadBytes+512 {
			t.Errorf("%s: unique = %d, want within one sector above %d", p.Name, got, p.UniqueReadBytes)
		}
		if w.TotalReadBytes() < w.UniqueReadBytes() {
			t.Errorf("%s: total < unique", p.Name)
		}
		// Re-reads exist but stay a small fraction.
		extra := float64(w.TotalReadBytes()-w.UniqueReadBytes()) / float64(w.UniqueReadBytes())
		if extra > 3*p.RereadFraction+0.05 {
			t.Errorf("%s: reread inflation %.2f", p.Name, extra)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := CentOS.Scale(0.01)
	a, b := Generate(p), Generate(p)
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("op counts differ: %d vs %d", len(a.Ops), len(b.Ops))
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a.Ops[i], b.Ops[i])
		}
	}
}

func TestGenerateOpsInBounds(t *testing.T) {
	p := WindowsServer.Scale(0.01)
	w := Generate(p)
	var writes, flushes int
	for i, op := range w.Ops {
		if op.Kind == Flush {
			flushes++
			continue
		}
		if op.Off < 0 || op.Len <= 0 || op.Off+op.Len > p.ImageSize {
			t.Fatalf("op %d out of bounds: %+v (image %d)", i, op, p.ImageSize)
		}
		if op.Off%512 != 0 || op.Len%512 != 0 {
			t.Fatalf("op %d not sector aligned: %+v", i, op)
		}
		if op.Kind == Write {
			writes++
		}
	}
	if writes == 0 || flushes == 0 {
		t.Fatalf("missing writes (%d) or flushes (%d)", writes, flushes)
	}
	if got := w.TotalWriteBytes(); got < p.WriteBytes || got >= p.WriteBytes+512 {
		t.Fatalf("write volume = %d, want within one sector above %d", got, p.WriteBytes)
	}
}

func TestThinkBudgetMatchesProfile(t *testing.T) {
	p := CentOS.Scale(0.05)
	w := Generate(p)
	want := time.Duration(float64(p.UncontendedBoot) * (1 - p.ReadWaitFraction))
	got := w.TotalThink()
	if math.Abs(float64(got-want)) > float64(want)/100 {
		t.Fatalf("think budget = %v, want ~%v", got, want)
	}
}

func TestScalePreservesShape(t *testing.T) {
	s := CentOS.Scale(0.1)
	if s.UniqueReadBytes <= 0 || s.UniqueReadBytes >= CentOS.UniqueReadBytes {
		t.Fatalf("scaled WS = %d", s.UniqueReadBytes)
	}
	ratio := float64(CentOS.ImageSize) / float64(CentOS.UniqueReadBytes)
	sratio := float64(s.ImageSize) / float64(s.UniqueReadBytes)
	if math.Abs(ratio-sratio)/ratio > 0.25 {
		t.Fatalf("image/WS ratio drifted: %.1f vs %.1f", ratio, sratio)
	}
	if s.ReadWaitFraction != CentOS.ReadWaitFraction {
		t.Fatal("fractions must not scale")
	}
	if same := CentOS.Scale(0); same.Name != CentOS.Name {
		t.Fatal("Scale(0) must be identity")
	}
}

func TestReadSpansCoverUniqueSet(t *testing.T) {
	p := Debian.Scale(0.05)
	w := Generate(p)
	var set trace.IntervalSet
	for _, s := range w.ReadSpans() {
		set.Add(s.Off, s.Off+s.Len)
	}
	if set.Total() != w.UniqueReadBytes() {
		t.Fatalf("span union = %d, want %d", set.Total(), w.UniqueReadBytes())
	}
}

func TestPatternSourceDeterministicAndAligned(t *testing.T) {
	s := PatternSource{Seed: 42, N: 1 << 20}
	a := make([]byte, 1000)
	b := make([]byte, 1000)
	if _, err := s.ReadAt(a, 333); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadAt(b, 333); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("pattern not deterministic")
	}
	// Unaligned reads must agree with aligned reads byte-for-byte.
	wide := make([]byte, 1010)
	if _, err := s.ReadAt(wide, 330); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wide[3:1003], a) {
		t.Fatal("pattern alignment-dependent")
	}
	// EOF semantics.
	n, err := s.ReadAt(make([]byte, 100), s.N-10)
	if n != 10 || err == nil {
		t.Fatalf("eof read: n=%d err=%v", n, err)
	}
	if got := s.At(500, 20); !bytes.Equal(got, wide[170:190]) {
		t.Fatal("At() disagrees with ReadAt")
	}
}

func TestReplayAgainstChainVerified(t *testing.T) {
	// End-to-end: generate a scaled CentOS boot, replay it against a
	// real base<-cache<-CoW chain with content verification, then check
	// the recorded working set matches the workload.
	p := CentOS.Scale(0.01)
	src := PatternSource{Seed: 7, N: p.ImageSize}

	baseF := backend.NewMemFile()
	base, err := qcow.Create(baseF, qcow.CreateOpts{Size: p.ImageSize, ClusterBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	base.SetBacking(qcow.RawSource{R: src, N: p.ImageSize})

	cacheF := backend.NewMemFile()
	cache, err := qcow.Create(cacheF, qcow.CreateOpts{
		Size: p.ImageSize, ClusterBits: 9, BackingFile: "base", CacheQuota: p.ImageSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache.SetBacking(base)

	cowF := backend.NewMemFile()
	cow, err := qcow.Create(cowF, qcow.CreateOpts{
		Size: p.ImageSize, ClusterBits: 16, BackingFile: "cache",
	})
	if err != nil {
		t.Fatal(err)
	}
	cow.SetBacking(cache)

	// Verify reads against the pattern oracle, but only for ranges the
	// guest never overwrites during this boot.
	var written trace.IntervalSet
	for _, op := range Generate(p).Ops {
		if op.Kind == Write {
			written.Add(op.Off, op.Off+op.Len)
		}
	}
	w := Generate(p)
	rec := trace.NewRecorder()
	_, err = Replay(w, cow, ReplayOpts{
		Recorder: rec,
		Verify: func(off, n int64) []byte {
			if written.Overlap(off, off+n) > 0 {
				return nil // mixed guest/base content; skip
			}
			return src.At(off, n)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ws := rec.WorkingSet()
	if ws.UniqueReadBytes != w.UniqueReadBytes() {
		t.Fatalf("recorded unique = %d, want %d", ws.UniqueReadBytes, w.UniqueReadBytes())
	}
	if cache.Stats().CacheFillOps.Load() == 0 {
		t.Fatal("boot did not warm the cache")
	}
	// Guest writes must have landed in the CoW image, not the cache.
	if cow.Stats().GuestWriteBytes.Load() != w.TotalWriteBytes() {
		t.Fatalf("cow writes = %d, want %d", cow.Stats().GuestWriteBytes.Load(), w.TotalWriteBytes())
	}

	// Second replay over the warm cache: zero traffic from base.
	base.Stats().GuestReadBytes.Store(0)
	cow2F := backend.NewMemFile()
	cow2, err := qcow.Create(cow2F, qcow.CreateOpts{
		Size: p.ImageSize, ClusterBits: 16, BackingFile: "cache",
	})
	if err != nil {
		t.Fatal(err)
	}
	cow2.SetBacking(cache)
	if _, err := Replay(w, cow2, ReplayOpts{}); err != nil {
		t.Fatal(err)
	}
	if got := base.Stats().GuestReadBytes.Load(); got != 0 {
		t.Fatalf("warm replay pulled %d bytes from base", got)
	}
}

func TestReplayVerifyCatchesCorruption(t *testing.T) {
	p := Debian.Scale(0.01)
	// Replay against a device returning wrong content.
	devF := backend.NewMemFile()
	dev, err := qcow.Create(devF, qcow.CreateOpts{Size: p.ImageSize, ClusterBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Device reads zeros; oracle expects a nonzero pattern -> must fail.
	src := PatternSource{Seed: 9, N: p.ImageSize}
	w := Generate(p)
	_, err = Replay(w, dev, ReplayOpts{Verify: src.At})
	if err == nil {
		t.Fatal("verification passed against corrupted device")
	}
}

func TestReplayThinkScaleSleeps(t *testing.T) {
	p := Profile{
		Name: "tiny", ImageSize: 1 << 20, UniqueReadBytes: 64 << 10,
		UncontendedBoot: 200 * time.Millisecond, ReadWaitFraction: 0.2,
		MeanReadSize: 16 << 10, SeqRunFraction: 0.5, Seed: 1,
	}
	w := Generate(p)
	dev := backend.NewMemFileSize(p.ImageSize)
	start := time.Now()
	if _, err := Replay(w, memDevice{dev}, ReplayOpts{ThinkScale: 0.25}); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	wantMin := time.Duration(0.25 * float64(w.TotalThink()) * 0.8)
	if elapsed < wantMin {
		t.Fatalf("replay too fast: %v < %v (think not honoured)", elapsed, wantMin)
	}
}

// memDevice adapts a MemFile to Device (MemFile already has ReadAt/WriteAt).
type memDevice struct{ *backend.MemFile }

func TestReplayTraceRoundTrip(t *testing.T) {
	// Record a generated boot, then replay the RECORDING against a fresh
	// chain: working sets must match exactly.
	p := Debian.Scale(0.02)
	src := PatternSource{Seed: 21, N: p.ImageSize}
	mkChain := func() *qcow.Image {
		base, err := qcow.Create(backend.NewMemFile(), qcow.CreateOpts{Size: p.ImageSize, ClusterBits: 16})
		if err != nil {
			t.Fatal(err)
		}
		base.SetBacking(qcow.RawSource{R: src, N: p.ImageSize})
		cow, err := qcow.Create(backend.NewMemFile(), qcow.CreateOpts{Size: p.ImageSize, ClusterBits: 16, BackingFile: "b"})
		if err != nil {
			t.Fatal(err)
		}
		cow.SetBacking(base)
		return cow
	}

	w := Generate(p)
	rec := trace.NewRecorder()
	if _, err := Replay(w, mkChain(), ReplayOpts{Recorder: rec}); err != nil {
		t.Fatal(err)
	}

	rec2 := trace.NewRecorder()
	res, err := ReplayTrace(rec.Trace(), mkChain(), ReplayOpts{Recorder: rec2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadBytes != w.TotalReadBytes() {
		t.Fatalf("trace replay read %d, want %d", res.ReadBytes, w.TotalReadBytes())
	}
	if rec2.WorkingSet().UniqueReadBytes != rec.WorkingSet().UniqueReadBytes {
		t.Fatalf("working sets differ: %d vs %d",
			rec2.WorkingSet().UniqueReadBytes, rec.WorkingSet().UniqueReadBytes)
	}
	if res.FlushOps != int64(rec.WorkingSet().FlushOps) {
		t.Fatalf("flushes: %d vs %d", res.FlushOps, rec.WorkingSet().FlushOps)
	}
}
