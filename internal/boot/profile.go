// Package boot models the block-level behaviour of a guest operating system
// booting from a virtual disk. The paper measures three guests (Table 1):
// CentOS 6.3, Debian 6.0.7 and Windows Server 2012, whose boots read 85.2,
// 24.9 and 195.8 MB of unique data from multi-GB images, spend only a small
// fraction of wall-clock time waiting on those reads (§7.3 reports 17% for
// CentOS), and touch the disk in a mix of sequential runs and scattered
// small requests.
//
// A Profile captures those aggregates; Generate expands a profile into a
// deterministic operation stream (think times, reads, writes, flushes) that
// the evaluation harness replays against real image chains.
package boot

import (
	"fmt"
	"time"
)

// Profile describes one guest image's boot behaviour.
type Profile struct {
	// Name identifies the guest ("CentOS 6.3").
	Name string

	// ImageSize is the virtual disk size the image is created with.
	ImageSize int64

	// UniqueReadBytes is the boot read working set (Table 1).
	UniqueReadBytes int64

	// RereadFraction adds this fraction of extra, repeated reads on top
	// of the unique working set (guest page caches absorb most re-reads,
	// so this is small).
	RereadFraction float64

	// WriteBytes is the total guest write volume during boot (logs,
	// state files); writes land in the CoW image.
	WriteBytes int64

	// UncontendedBoot is the wall-clock boot time when reads are served
	// at full speed ("the time from invoking KVM ... until the VM
	// connects back", §5).
	UncontendedBoot time.Duration

	// ReadWaitFraction is the share of UncontendedBoot spent waiting on
	// reads in the uncontended case (§7.3: 17% for CentOS). The rest is
	// guest CPU time, which the harness models as think time.
	ReadWaitFraction float64

	// MeanReadSize controls request sizing; boots issue mostly small
	// reads (the paper tunes NFS rwsize to 64 KiB because of them).
	MeanReadSize int64

	// SeqRunFraction is the share of read bytes issued as sequential
	// runs; the remainder is scattered randomly across the image.
	SeqRunFraction float64

	// Seed makes generation deterministic per profile.
	Seed int64
}

// The three guests of Table 1. Working-set sizes are the paper's measured
// values; boot durations and request shaping are calibrated so uncontended
// simulated boots land near the paper's single-VM times.
var (
	// CentOS is the guest used for every scaling experiment in §5.
	CentOS = Profile{
		Name:             "CentOS 6.3",
		ImageSize:        10 << 30,
		UniqueReadBytes:  85*1000*1000 + 200*1000, // 85.2 MB
		RereadFraction:   0.06,
		WriteBytes:       6 << 20,
		UncontendedBoot:  36 * time.Second,
		ReadWaitFraction: 0.17,
		MeanReadSize:     24 << 10,
		SeqRunFraction:   0.70,
		Seed:             0xCE27051,
	}

	// Debian is the ConPaaS services image of §5.2.
	Debian = Profile{
		Name:             "Debian 6.0.7",
		ImageSize:        4 << 30,
		UniqueReadBytes:  24*1000*1000 + 900*1000, // 24.9 MB
		RereadFraction:   0.05,
		WriteBytes:       2 << 20,
		UncontendedBoot:  27 * time.Second,
		ReadWaitFraction: 0.12,
		MeanReadSize:     20 << 10,
		SeqRunFraction:   0.72,
		Seed:             0xDEB1A7,
	}

	// WindowsServer is the largest working set the paper observed.
	WindowsServer = Profile{
		Name:             "Windows Server 2012",
		ImageSize:        20 << 30,
		UniqueReadBytes:  195*1000*1000 + 800*1000, // 195.8 MB
		RereadFraction:   0.08,
		WriteBytes:       20 << 20,
		UncontendedBoot:  68 * time.Second,
		ReadWaitFraction: 0.22,
		MeanReadSize:     32 << 10,
		SeqRunFraction:   0.65,
		Seed:             0x512012,
	}
)

// Profiles lists the built-in guests in Table 1 order.
func Profiles() []Profile { return []Profile{CentOS, Debian, WindowsServer} }

// ProfileByName resolves a built-in profile case-sensitively by its leading
// word ("CentOS", "Debian", "Windows...") or full name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	switch name {
	case "centos", "CentOS":
		return CentOS, nil
	case "debian", "Debian":
		return Debian, nil
	case "windows", "Windows":
		return WindowsServer, nil
	}
	return Profile{}, fmt.Errorf("boot: unknown profile %q", name)
}

// Scale shrinks (or grows) a profile by factor f, preserving its shape:
// byte volumes, image size and durations all scale linearly, so contention
// ratios and crossover points survive. Tests and benchmarks run at f ≪ 1.
func (p Profile) Scale(f float64) Profile {
	if f <= 0 {
		return p
	}
	s := p
	s.Name = fmt.Sprintf("%s (x%g)", p.Name, f)
	s.ImageSize = scaleI64(p.ImageSize, f, 1<<20)
	s.UniqueReadBytes = scaleI64(p.UniqueReadBytes, f, 64<<10)
	s.WriteBytes = scaleI64(p.WriteBytes, f, 4<<10)
	s.UncontendedBoot = time.Duration(float64(p.UncontendedBoot) * f)
	return s
}

func scaleI64(v int64, f float64, floor int64) int64 {
	out := int64(float64(v) * f)
	if out < floor {
		out = floor
	}
	return out
}

// RestoreProfile derives a VM-restore workload from a boot profile: §8
// proposes applying the caching scheme "to memory snapshots of already
// booted virtual machines, starting from which instead of the VM image
// could improve the VM starting time even further". Restoring a snapshot
// reads the guest's resident working set from a memory-image file — a
// larger but more sequential footprint than a boot, finished in a fraction
// of the boot's wall time.
func (p Profile) RestoreProfile(memBytes int64) Profile {
	r := p
	r.Name = p.Name + " (snapshot restore)"
	r.ImageSize = memBytes
	// Restores touch the resident set: bigger than the boot's disk
	// working set but far smaller than RAM.
	r.UniqueReadBytes = memBytes / 6
	r.RereadFraction = 0
	r.WriteBytes = 0
	// No guest CPU to speak of: restore is I/O bound end to end.
	r.UncontendedBoot = p.UncontendedBoot / 6
	r.ReadWaitFraction = 0.85
	// Memory pages stream back in large, mostly sequential runs.
	r.MeanReadSize = 64 << 10
	r.SeqRunFraction = 0.9
	r.Seed = p.Seed ^ 0x5A5A
	return r
}
