package simdisk

// PageCache models the storage node's file page cache: an LRU over
// (file, page) keys. It is the reason a single VMI shared by 64 nodes never
// bottlenecks on the storage disk (Fig. 2, InfiniBand): the first node's
// reads populate the cache and the other 63 are served from memory. With
// many distinct VMIs the aggregate first-read footprint floods the disk
// instead (Fig. 3).
type PageCache struct {
	pageSize int64
	capPages int64
	pages    map[pageKey]*pageEntry
	head     *pageEntry
	tail     *pageEntry

	HitBytes  int64
	MissBytes int64
}

type pageKey struct {
	file string
	page int64
}

type pageEntry struct {
	key        pageKey
	prev, next *pageEntry
}

// NewPageCache returns an LRU page cache of the given byte capacity.
func NewPageCache(capacityBytes, pageSize int64) *PageCache {
	if pageSize <= 0 {
		pageSize = 64 << 10
	}
	capPages := capacityBytes / pageSize
	if capPages < 1 {
		capPages = 1
	}
	return &PageCache{
		pageSize: pageSize,
		capPages: capPages,
		pages:    make(map[pageKey]*pageEntry),
	}
}

// Touch simulates reading [off, off+n) of file: pages present count as hit
// bytes, absent pages count as miss bytes and are inserted (the disk read
// that services the miss fills them). Returns (hitBytes, missBytes).
func (c *PageCache) Touch(file string, off, n int64) (hit, miss int64) {
	if n <= 0 {
		return 0, 0
	}
	first := off / c.pageSize
	last := (off + n - 1) / c.pageSize
	for pg := first; pg <= last; pg++ {
		pgStart := pg * c.pageSize
		pgEnd := pgStart + c.pageSize
		lo, hi := maxI64(off, pgStart), minI64(off+n, pgEnd)
		span := hi - lo
		k := pageKey{file, pg}
		if e, ok := c.pages[k]; ok {
			hit += span
			c.moveToFront(e)
			continue
		}
		miss += span
		c.insert(k)
	}
	c.HitBytes += hit
	c.MissBytes += miss
	return hit, miss
}

// Contains reports whether the page holding off is resident (no LRU touch).
func (c *PageCache) Contains(file string, off int64) bool {
	_, ok := c.pages[pageKey{file, off / c.pageSize}]
	return ok
}

// Len reports the number of resident pages.
func (c *PageCache) Len() int { return len(c.pages) }

// Drop evicts every page of the named file (e.g. the file was rewritten).
func (c *PageCache) Drop(file string) {
	for e := c.head; e != nil; {
		next := e.next
		if e.key.file == file {
			c.unlink(e)
			delete(c.pages, e.key)
		}
		e = next
	}
}

func (c *PageCache) insert(k pageKey) {
	e := &pageEntry{key: k}
	c.pages[k] = e
	c.pushFront(e)
	if int64(len(c.pages)) > c.capPages {
		v := c.tail
		c.unlink(v)
		delete(c.pages, v.key)
	}
}

func (c *PageCache) pushFront(e *pageEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *PageCache) unlink(e *pageEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *PageCache) moveToFront(e *pageEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
