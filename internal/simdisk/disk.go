// Package simdisk models the storage media of the DAS-4 testbed under
// simulated time: rotational disks with seek-dominated random access and a
// FIFO request queue (the "disk queueing delay at the storage node" that
// drives Fig. 3), an LRU page cache (why a single VMI scales flat over
// InfiniBand in Fig. 2), and memory/tmpfs media.
package simdisk

import (
	"time"

	"vmicache/internal/sim"
)

// DiskParams describes a disk (or RAID set) model.
type DiskParams struct {
	// SeekTime is the average positioning cost of a random access
	// (seek + rotational latency).
	SeekTime time.Duration

	// Throughput is the sequential media rate in bytes/second.
	Throughput int64

	// SeqSeekFraction is the probability that a *sequential-ish* access
	// still pays a seek (track switches, competing streams). Random
	// accesses always pay the full seek.
	SeqSeekFraction float64
}

// DAS4StorageRAID models the storage node's two 7200-rpm SATA disks in
// software RAID-0: ~220 MB/s streaming, and an effective per-request
// positioning cost of ~4.5 ms — a single spindle seeks in ~7 ms, but the
// RAID pair serves two streams and the elevator scheduler shortens seeks
// under the deep queues of Fig. 3's workload.
func DAS4StorageRAID() DiskParams {
	return DiskParams{SeekTime: 4500 * time.Microsecond, Throughput: 220 << 20, SeqSeekFraction: 0.5}
}

// DAS4ComputeDisk models a compute node's local RAID-0 pair. Cache images
// are small and laid out contiguously, so reads are mostly sequential with
// occasional repositioning; the OS page cache and readahead absorb most of
// the seek cost (§6 measures at most 1% boot-time difference versus remote
// memory).
func DAS4ComputeDisk() DiskParams {
	return DiskParams{SeekTime: 7 * time.Millisecond, Throughput: 120 << 20, SeqSeekFraction: 0.04}
}

// Disk is a queued disk device.
type Disk struct {
	p DiskParams
	q *sim.FIFO

	ReadBytes  int64
	WriteBytes int64
	ReadOps    int64
	WriteOps   int64
}

// NewDisk returns an idle disk.
func NewDisk(eng *sim.Engine, name string, p DiskParams) *Disk {
	return &Disk{p: p, q: sim.NewFIFO(eng, name)}
}

func (d *Disk) xferTime(n int64) time.Duration {
	if d.p.Throughput <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(d.p.Throughput) * float64(time.Second))
}

// Read blocks the process for one disk read of n bytes. random selects the
// full-seek path; otherwise only SeqSeekFraction of the seek is charged
// (amortised readahead).
func (d *Disk) Read(p *sim.Proc, n int64, random bool) {
	seek := d.p.SeekTime
	if !random {
		seek = time.Duration(float64(seek) * d.p.SeqSeekFraction)
	}
	d.ReadOps++
	d.ReadBytes += n
	d.q.Use(p, seek+d.xferTime(n))
}

// Write blocks the process for one disk write of n bytes. sync models a
// synchronous (O_SYNC / flush-per-write) write that pays positioning cost;
// async writes ride the write-back cache and cost only transfer time.
func (d *Disk) Write(p *sim.Proc, n int64, sync bool) {
	var seek time.Duration
	if sync {
		seek = d.p.SeekTime
	}
	d.WriteOps++
	d.WriteBytes += n
	d.q.Use(p, seek+d.xferTime(n))
}

// Queue exposes the underlying FIFO for utilization statistics.
func (d *Disk) Queue() *sim.FIFO { return d.q }

// MemParams describes a memory-like medium (tmpfs, page-cache hit).
type MemParams struct {
	// Bandwidth in bytes/second.
	Bandwidth int64
	// PerOp is the fixed software overhead per access.
	PerOp time.Duration
}

// DAS4Memory models tmpfs on the DAS-4 nodes: ~8 GB/s effective with a few
// microseconds of VFS overhead.
func DAS4Memory() MemParams {
	return MemParams{Bandwidth: 8 << 30, PerOp: 4 * time.Microsecond}
}

// Mem is a queued memory medium. A queue still exists because many
// concurrent readers do contend on a storage node's memory bus, but service
// times are small enough that it almost never becomes the bottleneck.
type Mem struct {
	p MemParams
	q *sim.FIFO

	Bytes int64
	Ops   int64
}

// NewMem returns a memory medium.
func NewMem(eng *sim.Engine, name string, p MemParams) *Mem {
	return &Mem{p: p, q: sim.NewFIFO(eng, name)}
}

// Access blocks the process for one memory access of n bytes.
func (m *Mem) Access(p *sim.Proc, n int64) {
	m.Ops++
	m.Bytes += n
	t := m.p.PerOp
	if m.p.Bandwidth > 0 {
		t += time.Duration(float64(n) / float64(m.p.Bandwidth) * float64(time.Second))
	}
	m.q.Use(p, t)
}

// Queue exposes the underlying FIFO.
func (m *Mem) Queue() *sim.FIFO { return m.q }

// ReadBatch blocks the process for a batch of ops random reads totalling n
// bytes, queued as one work-conserving FIFO job (equivalent to issuing them
// back to back). Used by coarse-grained simulations that charge a whole
// boot's disk work at once.
func (d *Disk) ReadBatch(p *sim.Proc, n, ops int64, random bool) {
	if ops < 1 {
		ops = 1
	}
	seek := d.p.SeekTime
	if !random {
		seek = time.Duration(float64(seek) * d.p.SeqSeekFraction)
	}
	d.ReadOps += ops
	d.ReadBytes += n
	d.q.Use(p, time.Duration(ops)*seek+d.xferTime(n))
}
