package simdisk

import (
	"fmt"
	"testing"
	"time"

	"vmicache/internal/sim"
)

func TestDiskRandomVsSequential(t *testing.T) {
	eng := sim.New(1)
	d := NewDisk(eng, "disk", DiskParams{
		SeekTime: 10 * time.Millisecond, Throughput: 100 << 20, SeqSeekFraction: 0.1,
	})
	var tRand, tSeq time.Duration
	eng.Go("rand", func(p *sim.Proc) {
		d.Read(p, 64<<10, true)
		tRand = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	eng2 := sim.New(1)
	d2 := NewDisk(eng2, "disk", DiskParams{
		SeekTime: 10 * time.Millisecond, Throughput: 100 << 20, SeqSeekFraction: 0.1,
	})
	eng2.Go("seq", func(p *sim.Proc) {
		d2.Read(p, 64<<10, false)
		tSeq = p.Now()
	})
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	if tRand <= tSeq {
		t.Fatalf("random (%v) not slower than sequential (%v)", tRand, tSeq)
	}
	// Random: 10ms seek + 0.625ms transfer.
	want := 10*time.Millisecond + 625*time.Microsecond
	if diff := tRand - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("random read = %v, want %v", tRand, want)
	}
}

func TestDiskQueueingSerializes(t *testing.T) {
	eng := sim.New(1)
	d := NewDisk(eng, "disk", DAS4StorageRAID())
	var last time.Duration
	const jobs = 10
	for i := 0; i < jobs; i++ {
		eng.Go(fmt.Sprintf("j%d", i), func(p *sim.Proc) {
			d.Read(p, 64<<10, true)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 10 random 64 KiB reads must serialize at seek+transfer each.
	xfer := float64(64<<10) / float64(220<<20) * float64(time.Second)
	per := DAS4StorageRAID().SeekTime + time.Duration(xfer)
	want := time.Duration(jobs) * per
	if last < want-time.Millisecond || last > want+time.Millisecond {
		t.Fatalf("makespan = %v, want ~%v", last, want)
	}
	if d.ReadOps != jobs || d.ReadBytes != jobs*64<<10 {
		t.Fatalf("counters: ops=%d bytes=%d", d.ReadOps, d.ReadBytes)
	}
}

func TestDiskSyncVsAsyncWrites(t *testing.T) {
	eng := sim.New(1)
	d := NewDisk(eng, "disk", DAS4ComputeDisk())
	var tSync, tAsync time.Duration
	eng.Go("w", func(p *sim.Proc) {
		t0 := p.Now()
		d.Write(p, 4096, true)
		tSync = p.Now() - t0
		t0 = p.Now()
		d.Write(p, 4096, false)
		tAsync = p.Now() - t0
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if tSync < 7*time.Millisecond {
		t.Fatalf("sync write too fast: %v", tSync)
	}
	if tAsync > time.Millisecond {
		t.Fatalf("async write too slow: %v", tAsync)
	}
	if d.WriteOps != 2 {
		t.Fatalf("write ops = %d", d.WriteOps)
	}
}

func TestMemAccessFast(t *testing.T) {
	eng := sim.New(1)
	m := NewMem(eng, "tmpfs", DAS4Memory())
	var elapsed time.Duration
	eng.Go("r", func(p *sim.Proc) {
		m.Access(p, 64<<10)
		elapsed = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed > 100*time.Microsecond {
		t.Fatalf("memory access = %v, implausibly slow", elapsed)
	}
	if m.Ops != 1 || m.Bytes != 64<<10 {
		t.Fatalf("counters: %d %d", m.Ops, m.Bytes)
	}
}

func TestPageCacheHitMissAccounting(t *testing.T) {
	c := NewPageCache(1<<20, 64<<10) // 16 pages
	hit, miss := c.Touch("f", 0, 128<<10)
	if hit != 0 || miss != 128<<10 {
		t.Fatalf("cold touch: hit=%d miss=%d", hit, miss)
	}
	hit, miss = c.Touch("f", 0, 128<<10)
	if hit != 128<<10 || miss != 0 {
		t.Fatalf("warm touch: hit=%d miss=%d", hit, miss)
	}
	// Partial page overlap: bytes split exactly.
	hit, miss = c.Touch("f", 128<<10-100, 200)
	if hit != 100 || miss != 100 {
		t.Fatalf("boundary touch: hit=%d miss=%d", hit, miss)
	}
	if c.HitBytes != 128<<10+100 || c.MissBytes != 128<<10+100 {
		t.Fatalf("cumulative: hit=%d miss=%d", c.HitBytes, c.MissBytes)
	}
}

func TestPageCacheDistinctFiles(t *testing.T) {
	c := NewPageCache(1<<20, 64<<10)
	c.Touch("a", 0, 64<<10)
	if hit, _ := c.Touch("b", 0, 64<<10); hit != 0 {
		t.Fatal("pages leaked across files")
	}
	if !c.Contains("a", 0) || !c.Contains("b", 100) || c.Contains("c", 0) {
		t.Fatal("Contains wrong")
	}
}

func TestPageCacheLRUEviction(t *testing.T) {
	c := NewPageCache(4*64<<10, 64<<10) // 4 pages
	for i := int64(0); i < 4; i++ {
		c.Touch("f", i*64<<10, 64<<10)
	}
	c.Touch("f", 0, 64<<10)        // page 0 -> MRU
	c.Touch("f", 4*64<<10, 64<<10) // evicts page 1 (LRU)
	if !c.Contains("f", 0) {
		t.Fatal("MRU page evicted")
	}
	if c.Contains("f", 64<<10) {
		t.Fatal("LRU page survived")
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestPageCacheDrop(t *testing.T) {
	c := NewPageCache(1<<20, 64<<10)
	c.Touch("a", 0, 128<<10)
	c.Touch("b", 0, 64<<10)
	c.Drop("a")
	if c.Contains("a", 0) || c.Contains("a", 64<<10) {
		t.Fatal("Drop left pages")
	}
	if !c.Contains("b", 0) {
		t.Fatal("Drop removed other file's pages")
	}
	if c.Len() != 1 {
		t.Fatalf("len after drop = %d", c.Len())
	}
}

func TestPageCacheZeroLength(t *testing.T) {
	c := NewPageCache(1<<20, 64<<10)
	if hit, miss := c.Touch("f", 100, 0); hit != 0 || miss != 0 {
		t.Fatal("zero-length touch")
	}
}
