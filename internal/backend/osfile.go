package backend

import (
	"os"
)

// OSFile adapts *os.File to the File interface. It is used by the command-
// line tools (cmd/qimg, cmd/rblockd, cmd/nbdserve) when images live on the
// host filesystem.
type OSFile struct {
	f *os.File
}

// OpenOSFile opens an existing file for read/write (or read-only when ro).
func OpenOSFile(path string, ro bool) (*OSFile, error) {
	flag := os.O_RDWR
	if ro {
		flag = os.O_RDONLY
	}
	f, err := os.OpenFile(path, flag, 0)
	if err != nil {
		return nil, err
	}
	return &OSFile{f: f}, nil
}

// CreateOSFile creates (or truncates) a file for read/write.
func CreateOSFile(path string) (*OSFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &OSFile{f: f}, nil
}

// ReadAt implements io.ReaderAt.
func (o *OSFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }

// WriteAt implements io.WriterAt.
func (o *OSFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }

// Size reports the file length via fstat.
func (o *OSFile) Size() (int64, error) {
	fi, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Truncate resizes the file.
func (o *OSFile) Truncate(n int64) error { return o.f.Truncate(n) }

// Sync flushes to stable storage.
func (o *OSFile) Sync() error { return o.f.Sync() }

// Close closes the underlying descriptor.
func (o *OSFile) Close() error { return o.f.Close() }

// Name reports the underlying path.
func (o *OSFile) Name() string { return o.f.Name() }

// SysFile exposes the underlying descriptor for zero-copy serving
// (internal/zerocopy.Filer). Callers must not close or reposition it.
func (o *OSFile) SysFile() *os.File { return o.f }
