package backend

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the error FaultyFile raises on scheduled failures.
var ErrInjected = errors.New("backend: injected fault")

// FaultyFile wraps a File and fails operations on demand — the failure-
// injection harness used to verify that image-format errors surface cleanly
// instead of corrupting metadata.
type FaultyFile struct {
	inner File

	// failReadAfter / failWriteAfter arm a failure after N successful
	// operations of that kind; negative means never.
	failReadAfter  atomic.Int64
	failWriteAfter atomic.Int64
	failSync       atomic.Bool

	readOps  atomic.Int64
	writeOps atomic.Int64
}

// NewFaultyFile wraps inner with no failures armed.
func NewFaultyFile(inner File) *FaultyFile {
	f := &FaultyFile{inner: inner}
	f.failReadAfter.Store(-1)
	f.failWriteAfter.Store(-1)
	return f
}

// FailReadAfter arms a read failure after n more successful reads
// (0 = fail the next read). Negative disarms.
func (f *FaultyFile) FailReadAfter(n int64) {
	if n < 0 {
		f.failReadAfter.Store(-1)
		return
	}
	f.failReadAfter.Store(f.readOps.Load() + n)
}

// FailWriteAfter arms a write failure after n more successful writes.
func (f *FaultyFile) FailWriteAfter(n int64) {
	if n < 0 {
		f.failWriteAfter.Store(-1)
		return
	}
	f.failWriteAfter.Store(f.writeOps.Load() + n)
}

// FailSync makes Sync fail until disarmed.
func (f *FaultyFile) FailSync(fail bool) { f.failSync.Store(fail) }

// ReadAt fails when armed, otherwise forwards.
func (f *FaultyFile) ReadAt(p []byte, off int64) (int, error) {
	if t := f.failReadAfter.Load(); t >= 0 && f.readOps.Load() >= t {
		return 0, ErrInjected
	}
	f.readOps.Add(1)
	return f.inner.ReadAt(p, off)
}

// WriteAt fails when armed, otherwise forwards.
func (f *FaultyFile) WriteAt(p []byte, off int64) (int, error) {
	if t := f.failWriteAfter.Load(); t >= 0 && f.writeOps.Load() >= t {
		return 0, ErrInjected
	}
	f.writeOps.Add(1)
	return f.inner.WriteAt(p, off)
}

// Size forwards.
func (f *FaultyFile) Size() (int64, error) { return f.inner.Size() }

// Truncate forwards.
func (f *FaultyFile) Truncate(n int64) error { return f.inner.Truncate(n) }

// Sync fails when armed, otherwise forwards.
func (f *FaultyFile) Sync() error {
	if f.failSync.Load() {
		return ErrInjected
	}
	return f.inner.Sync()
}

// Close forwards.
func (f *FaultyFile) Close() error { return f.inner.Close() }
