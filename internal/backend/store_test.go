package backend

import (
	"bytes"
	"errors"
	"testing"
)

func TestMemStoreLifecycle(t *testing.T) {
	s := NewMemStore()
	if _, err := s.Open("ghost", true); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	f, err := s.Create("a.img")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFull(f, []byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	// Handles share content; Close is a no-op on the underlying data.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	h2, err := s.Open("a.img", false)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := ReadFull(h2, got, 0); err != nil || string(got) != "hello" {
		t.Fatalf("shared content: %v %q", err, got)
	}
	if sz, err := s.Stat("a.img"); err != nil || sz != 5 {
		t.Fatalf("stat: %d %v", sz, err)
	}
	if _, err := s.Stat("ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat missing: %v", err)
	}

	// Read-only handles reject mutation but read fine.
	ro, err := s.Open("a.img", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.WriteAt([]byte{1}, 0); err == nil {
		t.Fatal("RO handle accepted write")
	}
	if err := ro.Truncate(1); err == nil {
		t.Fatal("RO handle accepted truncate")
	}
	if err := ReadFull(ro, got, 0); err != nil {
		t.Fatal(err)
	}

	s.Create("b.img") //nolint:errcheck
	names := s.Names()
	if len(names) != 2 || names[0] != "a.img" || names[1] != "b.img" {
		t.Fatalf("names = %v", names)
	}
	if s.TotalBytes() != 5 {
		t.Fatalf("total = %d", s.TotalBytes())
	}
	if err := s.Remove("a.img"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("a.img"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestDirStoreLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("ghost", true); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	if _, err := s.Stat("ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat missing: %v", err)
	}
	f, err := s.Create("x.img")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFull(f, bytes.Repeat([]byte{9}, 1000), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if sz, err := s.Stat("x.img"); err != nil || sz != 1000 {
		t.Fatalf("stat: %d %v", sz, err)
	}
	ro, err := s.Open("x.img", true)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1000)
	if err := ReadFull(ro, got, 0); err != nil {
		t.Fatal(err)
	}
	ro.Close() //nolint:errcheck
	if err := s.Remove("x.img"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("x.img"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestCopyFileBetweenStores(t *testing.T) {
	src := NewMemStore()
	dst := NewMemStore()
	f, _ := src.Create("big")
	payload := bytes.Repeat([]byte{0x5c}, 3<<20+123) // > one copy buffer
	if err := WriteFull(f, payload, 0); err != nil {
		t.Fatal(err)
	}
	n, err := CopyFile(dst, "copy", src, "big")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(payload)) {
		t.Fatalf("copied %d of %d", n, len(payload))
	}
	out, err := dst.Open("copy", true)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := ReadFull(out, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("copy mismatch")
	}
	// Missing source fails cleanly.
	if _, err := CopyFile(dst, "nope", src, "ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("copy missing: %v", err)
	}
}

func TestNopClose(t *testing.T) {
	f := NewMemFileSize(10)
	nc := NopClose(f)
	if err := nc.Close(); err != nil {
		t.Fatal(err)
	}
	// The underlying file survives the wrapper's Close.
	if _, err := f.ReadAt(make([]byte, 1), 0); err != nil {
		t.Fatalf("underlying closed: %v", err)
	}
}
