// Package backend provides the block-file abstraction underneath image
// formats. An image format (internal/qcow) reads and writes its container
// through the File interface, so the same format code can run over OS files,
// memory files (the tmpfs stand-in used throughout the evaluation), remote
// block devices (internal/rblock), or instrumented wrappers that count or
// delay traffic.
package backend

import (
	"errors"
	"io"
)

// File is a random-access block container. It is the minimal surface an
// image format needs: positioned reads and writes, growth, durability and
// release. Implementations must allow ReadAt beyond the current size to
// return io.EOF or short reads consistent with io.ReaderAt semantics.
type File interface {
	io.ReaderAt
	io.WriterAt

	// Size reports the current length of the container in bytes.
	Size() (int64, error)

	// Truncate grows or shrinks the container to exactly n bytes. Growth
	// exposes zero bytes.
	Truncate(n int64) error

	// Sync flushes buffered state to stable storage. For memory files it
	// is a no-op kept for interface parity with OS files.
	Sync() error

	// Close releases the container. Further operations are invalid.
	Close() error
}

// ErrClosed is returned by operations on a closed file.
var ErrClosed = errors.New("backend: file is closed")

// ErrNegativeOffset is returned when a caller passes a negative offset.
var ErrNegativeOffset = errors.New("backend: negative offset")

// ReadFull reads exactly len(p) bytes at off, translating the short-read
// conventions of ReadAt into a single error. Reads that run past the end of
// the file fail with io.ErrUnexpectedEOF.
func ReadFull(f io.ReaderAt, p []byte, off int64) error {
	n, err := f.ReadAt(p, off)
	if n == len(p) {
		return nil
	}
	if err == nil || err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// WriteFull writes all of p at off, failing if the implementation reports a
// short write without an error.
func WriteFull(f io.WriterAt, p []byte, off int64) error {
	n, err := f.WriteAt(p, off)
	if err != nil {
		return err
	}
	if n != len(p) {
		return io.ErrShortWrite
	}
	return nil
}

// NopClose wraps f so Close becomes a no-op; useful when several consumers
// share one underlying file whose lifetime an outer owner manages.
func NopClose(f File) File { return nopCloseWrap{f} }

type nopCloseWrap struct{ File }

func (nopCloseWrap) Close() error { return nil }
