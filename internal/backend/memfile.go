package backend

import (
	"io"
	"sync"
)

// MemFile is an in-memory File. It stands in for tmpfs-backed files in the
// paper's setup ("we use the Linux tmpfs and tmpfs exports for backing
// (remote) files by memory when necessary", §5) and backs all simulator
// experiments so the full data path runs without touching the host disk.
//
// Storage is chunked so that sparse images (a multi-GB virtual disk with a
// few hundred MB touched) do not allocate their full size.
type MemFile struct {
	mu     sync.RWMutex
	chunks map[int64][]byte // chunk index -> chunk (len == chunkSize)
	size   int64
	closed bool
}

const memChunkSize = 64 << 10

// NewMemFile returns an empty memory file.
func NewMemFile() *MemFile {
	return &MemFile{chunks: make(map[int64][]byte)}
}

// NewMemFileSize returns a memory file pre-sized to n zero bytes (sparse).
func NewMemFileSize(n int64) *MemFile {
	f := NewMemFile()
	f.size = n
	return f
}

// ReadAt implements io.ReaderAt. Holes read as zero bytes.
func (f *MemFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, ErrNegativeOffset
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return 0, ErrClosed
	}
	if off >= f.size {
		return 0, io.EOF
	}
	n := len(p)
	var errEOF error
	if off+int64(n) > f.size {
		n = int(f.size - off)
		errEOF = io.EOF
	}
	read := 0
	for read < n {
		ci := (off + int64(read)) / memChunkSize
		co := (off + int64(read)) % memChunkSize
		want := n - read
		if avail := memChunkSize - int(co); want > avail {
			want = avail
		}
		if chunk, ok := f.chunks[ci]; ok {
			copy(p[read:read+want], chunk[co:])
		} else {
			zero(p[read : read+want])
		}
		read += want
	}
	return n, errEOF
}

// WriteAt implements io.WriterAt, growing the file as needed.
func (f *MemFile) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, ErrNegativeOffset
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, ErrClosed
	}
	n := len(p)
	written := 0
	for written < n {
		ci := (off + int64(written)) / memChunkSize
		co := (off + int64(written)) % memChunkSize
		want := n - written
		if avail := memChunkSize - int(co); want > avail {
			want = avail
		}
		chunk, ok := f.chunks[ci]
		if !ok {
			chunk = make([]byte, memChunkSize)
			f.chunks[ci] = chunk
		}
		copy(chunk[co:], p[written:written+want])
		written += want
	}
	if end := off + int64(n); end > f.size {
		f.size = end
	}
	return n, nil
}

// Size reports the file length.
func (f *MemFile) Size() (int64, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return 0, ErrClosed
	}
	return f.size, nil
}

// Truncate grows (sparsely) or shrinks the file.
func (f *MemFile) Truncate(n int64) error {
	if n < 0 {
		return ErrNegativeOffset
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	if n < f.size {
		// Drop chunks wholly past the new end and zero the tail of the
		// boundary chunk so a later re-grow reads zeros.
		lastChunk := n / memChunkSize
		for ci := range f.chunks {
			if ci > lastChunk {
				delete(f.chunks, ci)
			}
		}
		if chunk, ok := f.chunks[lastChunk]; ok {
			zero(chunk[n%memChunkSize:])
		}
	}
	f.size = n
	return nil
}

// Sync is a no-op for memory files.
func (f *MemFile) Sync() error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	return nil
}

// Close releases the storage.
func (f *MemFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	f.chunks = nil
	return nil
}

// AllocatedBytes reports how many bytes of chunk storage are materialised;
// useful in tests asserting that sparse images stay sparse.
func (f *MemFile) AllocatedBytes() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.chunks)) * memChunkSize
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
