package backend

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Store is a named collection of block files: the paper's media. A compute
// node's disk, a storage node's NFS export, and a tmpfs all appear as Stores
// so chain construction can place each image on the medium the experiment
// calls for.
type Store interface {
	// Open returns a handle to an existing file. Handles are independent:
	// closing one does not invalidate others on the same name.
	Open(name string, readOnly bool) (File, error)

	// Create returns a handle to a new empty file, replacing any
	// existing content under that name.
	Create(name string) (File, error)

	// Remove deletes the named file.
	Remove(name string) error

	// Stat reports the file's size, or an error if it does not exist.
	Stat(name string) (int64, error)
}

// ErrNotExist is returned by Store operations on missing names.
var ErrNotExist = errors.New("backend: file does not exist")

// MemStore is an in-memory Store: the tmpfs / RAM medium. All handles to a
// name share the same MemFile; handle Close is a no-op so sharing is safe.
type MemStore struct {
	mu    sync.Mutex
	files map[string]*MemFile
}

// NewMemStore returns an empty memory store.
func NewMemStore() *MemStore {
	return &MemStore{files: make(map[string]*MemFile)}
}

// Open returns a shared handle to the named file.
func (s *MemStore) Open(name string, readOnly bool) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	if readOnly {
		return &roFile{noCloseFile{f}}, nil
	}
	return noCloseFile{f}, nil
}

// Create installs a fresh file under name.
func (s *MemStore) Create(name string) (File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := NewMemFile()
	s.files[name] = f
	return noCloseFile{f}, nil
}

// Remove deletes the named file.
func (s *MemStore) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(s.files, name)
	return nil
}

// Stat reports the size of the named file.
func (s *MemStore) Stat(name string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return f.Size()
}

// Names lists stored file names in sorted order.
func (s *MemStore) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.files))
	for n := range s.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalBytes sums the sizes of all stored files.
func (s *MemStore) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total int64
	for _, f := range s.files {
		if sz, err := f.Size(); err == nil {
			total += sz
		}
	}
	return total
}

// noCloseFile shares an underlying file between handles; Close is a no-op.
type noCloseFile struct{ File }

func (noCloseFile) Close() error { return nil }

// roFile rejects mutation.
type roFile struct{ File }

func (roFile) WriteAt(p []byte, off int64) (int, error) { return 0, errReadOnlyStore }
func (roFile) Truncate(int64) error                     { return errReadOnlyStore }

var errReadOnlyStore = errors.New("backend: file opened read-only")

// DirStore is a directory-backed Store for the command-line tools.
type DirStore struct {
	dir string
}

// NewDirStore returns a Store rooted at dir (created if absent).
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

func (s *DirStore) path(name string) string { return filepath.Join(s.dir, filepath.Clean(name)) }

// Open opens an existing file in the directory.
func (s *DirStore) Open(name string, readOnly bool) (File, error) {
	f, err := OpenOSFile(s.path(name), readOnly)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, err
	}
	return f, nil
}

// Create creates/truncates a file in the directory.
func (s *DirStore) Create(name string) (File, error) {
	return CreateOSFile(s.path(name))
}

// Remove deletes a file from the directory.
func (s *DirStore) Remove(name string) error {
	err := os.Remove(s.path(name))
	if os.IsNotExist(err) {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return err
}

// Stat reports a file's size.
func (s *DirStore) Stat(name string) (int64, error) {
	fi, err := os.Stat(s.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return 0, err
	}
	return fi.Size(), nil
}

// CopyFile copies a whole file between stores (used for cache transfers to
// the storage node's memory, Fig. 13). Returns the number of bytes copied.
func CopyFile(dst Store, dstName string, src Store, srcName string) (int64, error) {
	in, err := src.Open(srcName, true)
	if err != nil {
		return 0, err
	}
	defer in.Close() //nolint:errcheck // read-only handle
	out, err := dst.Create(dstName)
	if err != nil {
		return 0, err
	}
	size, err := in.Size()
	if err != nil {
		out.Close() //nolint:errcheck
		return 0, err
	}
	buf := make([]byte, 1<<20)
	var copied int64
	for copied < size {
		n := int64(len(buf))
		if size-copied < n {
			n = size - copied
		}
		if err := ReadFull(in, buf[:n], copied); err != nil {
			out.Close() //nolint:errcheck
			return copied, err
		}
		if err := WriteFull(out, buf[:n], copied); err != nil {
			out.Close() //nolint:errcheck
			return copied, err
		}
		copied += n
	}
	if err := out.Sync(); err != nil {
		out.Close() //nolint:errcheck
		return copied, err
	}
	return copied, out.Close()
}
