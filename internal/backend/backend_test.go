package backend

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestMemFileReadWriteRoundTrip(t *testing.T) {
	f := NewMemFile()
	data := []byte("hello, block world")
	if err := WriteFull(f, data, 100); err != nil {
		t.Fatalf("WriteFull: %v", err)
	}
	got := make([]byte, len(data))
	if err := ReadFull(f, got, 100); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q != %q", got, data)
	}
	if sz, _ := f.Size(); sz != 100+int64(len(data)) {
		t.Fatalf("size = %d, want %d", sz, 100+len(data))
	}
}

func TestMemFileHolesReadZero(t *testing.T) {
	f := NewMemFileSize(1 << 20)
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = 0xff
	}
	n, err := f.ReadAt(buf, 500000)
	if err != nil || n != len(buf) {
		t.Fatalf("ReadAt hole: n=%d err=%v", n, err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("hole byte %d = %#x, want 0", i, b)
		}
	}
}

func TestMemFileEOFSemantics(t *testing.T) {
	f := NewMemFileSize(10)
	buf := make([]byte, 20)
	n, err := f.ReadAt(buf, 0)
	if n != 10 || err != io.EOF {
		t.Fatalf("short read past end: n=%d err=%v, want 10, EOF", n, err)
	}
	n, err = f.ReadAt(buf, 10)
	if n != 0 || err != io.EOF {
		t.Fatalf("read at end: n=%d err=%v, want 0, EOF", n, err)
	}
	if _, err := f.ReadAt(buf, -1); err != ErrNegativeOffset {
		t.Fatalf("negative offset: err=%v", err)
	}
}

func TestMemFileCrossChunkWrite(t *testing.T) {
	f := NewMemFile()
	data := make([]byte, 3*memChunkSize+123)
	rnd := rand.New(rand.NewSource(7))
	rnd.Read(data)
	off := int64(memChunkSize - 50) // straddles several chunk boundaries
	if err := WriteFull(f, data, off); err != nil {
		t.Fatalf("WriteFull: %v", err)
	}
	got := make([]byte, len(data))
	if err := ReadFull(f, got, off); err != nil {
		t.Fatalf("ReadFull: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-chunk round trip mismatch")
	}
}

func TestMemFileTruncateShrinkZeroesTail(t *testing.T) {
	f := NewMemFile()
	if err := WriteFull(f, bytes.Repeat([]byte{0xaa}, 1000), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(1000); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 900)
	if err := ReadFull(f, buf, 100); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d after shrink+grow = %#x, want 0", i, b)
		}
	}
}

func TestMemFileSparseness(t *testing.T) {
	f := NewMemFileSize(1 << 40) // 1 TiB virtual
	if err := WriteFull(f, []byte{1}, 1<<39); err != nil {
		t.Fatal(err)
	}
	if got := f.AllocatedBytes(); got > 4*memChunkSize {
		t.Fatalf("sparse file allocated %d bytes for a 1-byte write", got)
	}
}

func TestMemFileClosedOps(t *testing.T) {
	f := NewMemFile()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(make([]byte, 1), 0); err != ErrClosed {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := f.WriteAt(make([]byte, 1), 0); err != ErrClosed {
		t.Fatalf("write after close: %v", err)
	}
	if err := f.Close(); err != ErrClosed {
		t.Fatalf("double close: %v", err)
	}
}

// Property: any sequence of writes to a MemFile matches the same writes to a
// plain byte slice.
func TestMemFileQuickMatchesReference(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	check := func(ops []op) bool {
		const limit = 1 << 16
		f := NewMemFile()
		ref := make([]byte, limit+256)
		maxEnd := int64(0)
		for _, o := range ops {
			if len(o.Data) > 256 {
				o.Data = o.Data[:256]
			}
			off := int64(o.Off)
			if _, err := f.WriteAt(o.Data, off); err != nil {
				return false
			}
			copy(ref[off:], o.Data)
			if end := off + int64(len(o.Data)); end > maxEnd {
				maxEnd = end
			}
		}
		got := make([]byte, maxEnd)
		if maxEnd > 0 {
			if err := ReadFull(f, got, 0); err != nil {
				return false
			}
		}
		return bytes.Equal(got, ref[:maxEnd])
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOSFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img.bin")
	f, err := CreateOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("on-disk payload")
	if err := WriteFull(f, data, 4096); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 4096+int64(len(data)) {
		t.Fatalf("size = %d", sz)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenOSFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	got := make([]byte, len(data))
	if err := ReadFull(ro, got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("os file round trip mismatch")
	}
	if _, err := ro.WriteAt([]byte{1}, 0); err == nil {
		t.Fatal("write to read-only OS file succeeded")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestCountingFileTallies(t *testing.T) {
	inner := NewMemFile()
	cf := NewCountingFile(inner, nil)
	if err := WriteFull(cf, make([]byte, 1000), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 400)
	if err := ReadFull(cf, buf, 100); err != nil {
		t.Fatal(err)
	}
	if err := ReadFull(cf, buf[:100], 0); err != nil {
		t.Fatal(err)
	}
	if err := cf.Sync(); err != nil {
		t.Fatal(err)
	}
	c := cf.Counters()
	if got := c.WriteBytes.Load(); got != 1000 {
		t.Fatalf("WriteBytes = %d", got)
	}
	if got := c.ReadBytes.Load(); got != 500 {
		t.Fatalf("ReadBytes = %d", got)
	}
	if got := c.ReadOps.Load(); got != 2 {
		t.Fatalf("ReadOps = %d", got)
	}
	if got := c.MaxReadSize.Load(); got != 400 {
		t.Fatalf("MaxReadSize = %d", got)
	}
	if got := c.SyncOps.Load(); got != 1 {
		t.Fatalf("SyncOps = %d", got)
	}
	c.Reset()
	if c.ReadBytes.Load() != 0 || c.WriteOps.Load() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestHookFileCallbacks(t *testing.T) {
	inner := NewMemFileSize(1 << 20)
	hf := NewHookFile(inner)
	var reads, writes, syncs int
	var lastOff int64
	hf.OnRead = func(off int64, n int) { reads++; lastOff = off }
	hf.OnWrite = func(off int64, n int) { writes++ }
	hf.OnSync = func() { syncs++ }

	if err := WriteFull(hf, make([]byte, 10), 50); err != nil {
		t.Fatal(err)
	}
	if err := ReadFull(hf, make([]byte, 10), 50); err != nil {
		t.Fatal(err)
	}
	if err := hf.Sync(); err != nil {
		t.Fatal(err)
	}
	if reads != 1 || writes != 1 || syncs != 1 || lastOff != 50 {
		t.Fatalf("hooks: reads=%d writes=%d syncs=%d lastOff=%d", reads, writes, syncs, lastOff)
	}
}

func TestReadFullPastEnd(t *testing.T) {
	f := NewMemFileSize(4)
	err := ReadFull(f, make([]byte, 8), 0)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("ReadFull past end: %v, want ErrUnexpectedEOF", err)
	}
}

func TestFaultyFileArming(t *testing.T) {
	f := NewFaultyFile(NewMemFileSize(1 << 20))
	buf := make([]byte, 10)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	f.FailReadAfter(1)
	if _, err := f.ReadAt(buf, 0); err != nil { // one more success
		t.Fatal(err)
	}
	if _, err := f.ReadAt(buf, 0); err != ErrInjected {
		t.Fatalf("armed read did not fail: %v", err)
	}
	f.FailReadAfter(-1)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("disarm failed: %v", err)
	}
	f.FailWriteAfter(0)
	if _, err := f.WriteAt(buf, 0); err != ErrInjected {
		t.Fatalf("armed write did not fail: %v", err)
	}
	f.FailSync(true)
	if err := f.Sync(); err != ErrInjected {
		t.Fatalf("armed sync did not fail: %v", err)
	}
	f.FailSync(false)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Size(); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(100); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
