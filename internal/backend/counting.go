package backend

import "sync/atomic"

// Counters aggregates traffic through a CountingFile. All fields are updated
// atomically and may be read concurrently. This is how the evaluation
// harness observes "traffic at the storage node" (Fig. 9/10): the base
// image's container is wrapped in a CountingFile and every byte the CoW/cache
// chain pulls from it is tallied here.
type Counters struct {
	ReadOps      atomic.Int64
	ReadBytes    atomic.Int64
	WriteOps     atomic.Int64
	WriteBytes   atomic.Int64
	SyncOps      atomic.Int64
	TruncateOps  atomic.Int64
	MaxReadSize  atomic.Int64
	MaxWriteSize atomic.Int64
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.ReadOps.Store(0)
	c.ReadBytes.Store(0)
	c.WriteOps.Store(0)
	c.WriteBytes.Store(0)
	c.SyncOps.Store(0)
	c.TruncateOps.Store(0)
	c.MaxReadSize.Store(0)
	c.MaxWriteSize.Store(0)
}

func storeMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// CountingFile wraps a File and tallies every operation into Counters.
type CountingFile struct {
	inner File
	c     *Counters
}

// NewCountingFile wraps inner; if c is nil a fresh Counters is allocated.
func NewCountingFile(inner File, c *Counters) *CountingFile {
	if c == nil {
		c = &Counters{}
	}
	return &CountingFile{inner: inner, c: c}
}

// Counters returns the tally shared by this wrapper.
func (f *CountingFile) Counters() *Counters { return f.c }

// Inner returns the wrapped file.
func (f *CountingFile) Inner() File { return f.inner }

// ReadAt counts the bytes actually transferred and forwards.
func (f *CountingFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.inner.ReadAt(p, off)
	f.c.ReadOps.Add(1)
	f.c.ReadBytes.Add(int64(n))
	storeMax(&f.c.MaxReadSize, int64(n))
	return n, err
}

// WriteAt counts the bytes actually transferred and forwards.
func (f *CountingFile) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.inner.WriteAt(p, off)
	f.c.WriteOps.Add(1)
	f.c.WriteBytes.Add(int64(n))
	storeMax(&f.c.MaxWriteSize, int64(n))
	return n, err
}

// Size forwards to the wrapped file.
func (f *CountingFile) Size() (int64, error) { return f.inner.Size() }

// Truncate counts and forwards.
func (f *CountingFile) Truncate(n int64) error {
	f.c.TruncateOps.Add(1)
	return f.inner.Truncate(n)
}

// Sync counts and forwards.
func (f *CountingFile) Sync() error {
	f.c.SyncOps.Add(1)
	return f.inner.Sync()
}

// Close forwards; counters remain readable afterwards.
func (f *CountingFile) Close() error { return f.inner.Close() }

// HookFile wraps a File and invokes callbacks around reads and writes. The
// cluster simulator uses it to charge simulated time (network transfer,
// disk service) for every byte moved through a particular medium, while the
// data itself still flows through the real image-format code.
type HookFile struct {
	inner File
	// OnRead and OnWrite, when non-nil, run before the operation is
	// forwarded, receiving the offset and length.
	OnRead  func(off int64, n int)
	OnWrite func(off int64, n int)
	// OnSync, when non-nil, runs before Sync is forwarded.
	OnSync func()
}

// NewHookFile wraps inner with empty hooks.
func NewHookFile(inner File) *HookFile { return &HookFile{inner: inner} }

// Inner returns the wrapped file.
func (f *HookFile) Inner() File { return f.inner }

// ReadAt invokes OnRead then forwards.
func (f *HookFile) ReadAt(p []byte, off int64) (int, error) {
	if f.OnRead != nil {
		f.OnRead(off, len(p))
	}
	return f.inner.ReadAt(p, off)
}

// WriteAt invokes OnWrite then forwards.
func (f *HookFile) WriteAt(p []byte, off int64) (int, error) {
	if f.OnWrite != nil {
		f.OnWrite(off, len(p))
	}
	return f.inner.WriteAt(p, off)
}

// Size forwards.
func (f *HookFile) Size() (int64, error) { return f.inner.Size() }

// Truncate forwards.
func (f *HookFile) Truncate(n int64) error { return f.inner.Truncate(n) }

// Sync invokes OnSync then forwards.
func (f *HookFile) Sync() error {
	if f.OnSync != nil {
		f.OnSync()
	}
	return f.inner.Sync()
}

// Close forwards.
func (f *HookFile) Close() error { return f.inner.Close() }
