package sim

import (
	"time"
)

// FIFO is a single-server queue with deterministic service times: the model
// used for disks and network links. Because service is work-conserving and
// order-preserving, the queue's state is just the time the server frees up.
type FIFO struct {
	eng       *Engine
	name      string
	busyUntil time.Duration

	busyTime time.Duration
	jobs     int64
	maxWait  time.Duration
}

// NewFIFO returns an idle FIFO resource.
func NewFIFO(eng *Engine, name string) *FIFO {
	return &FIFO{eng: eng, name: name}
}

// Use enqueues a job with the given service time and blocks the process
// until the job completes. Returns the time spent waiting in queue (not
// serving).
func (q *FIFO) Use(p *Proc, service time.Duration) time.Duration {
	if service < 0 {
		service = 0
	}
	now := q.eng.now
	start := q.busyUntil
	if start < now {
		start = now
	}
	wait := start - now
	q.busyUntil = start + service
	q.busyTime += service
	q.jobs++
	if wait > q.maxWait {
		q.maxWait = wait
	}
	p.SleepUntil(q.busyUntil)
	return wait
}

// Peek returns the queueing delay a job arriving now would experience,
// without enqueuing anything.
func (q *FIFO) Peek() time.Duration {
	if q.busyUntil <= q.eng.now {
		return 0
	}
	return q.busyUntil - q.eng.now
}

// Utilization reports the fraction of simulated time the server was busy.
func (q *FIFO) Utilization() float64 {
	if q.eng.now == 0 {
		return 0
	}
	return float64(q.busyTime) / float64(q.eng.now)
}

// Jobs reports the number of jobs served.
func (q *FIFO) Jobs() int64 { return q.jobs }

// MaxWait reports the worst queueing delay observed.
func (q *FIFO) MaxWait() time.Duration { return q.maxWait }

// Semaphore is a counting semaphore over parked processes.
type Semaphore struct {
	eng     *Engine
	count   int
	waiters []*Proc
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(eng *Engine, n int) *Semaphore {
	return &Semaphore{eng: eng, count: n}
}

// Acquire takes a permit, parking the process until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.count > 0 {
		s.count--
		return
	}
	s.waiters = append(s.waiters, p)
	p.Park()
}

// Release returns a permit, waking the longest-waiting process if any. Safe
// to call from either process context or event callbacks.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		p := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.eng.Unpark(p)
		return
	}
	s.count++
}

// Waiting reports how many processes are parked on the semaphore.
func (s *Semaphore) Waiting() int { return len(s.waiters) }

// WaitGroup joins a set of processes: workers call Done, joiners Wait.
type WaitGroup struct {
	eng     *Engine
	pending int
	waiters []*Proc
}

// NewWaitGroup returns a WaitGroup expecting n Done calls.
func NewWaitGroup(eng *Engine, n int) *WaitGroup {
	return &WaitGroup{eng: eng, pending: n}
}

// Add increases the expected Done count.
func (w *WaitGroup) Add(n int) { w.pending += n }

// Done marks one completion, releasing waiters at zero.
func (w *WaitGroup) Done() {
	w.pending--
	if w.pending <= 0 {
		for _, p := range w.waiters {
			w.eng.Unpark(p)
		}
		w.waiters = nil
	}
}

// Wait parks the process until the count reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.pending <= 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.Park()
}
