package sim

import (
	"errors"
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := New(1)
	var order []int
	e.At(30*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() { order = append(order, 1) })
	e.At(20*time.Millisecond, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("final time = %v", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time ordering violated: %v", order)
		}
	}
}

func TestProcSleepAdvancesVirtualTimeOnly(t *testing.T) {
	e := New(1)
	var at []time.Duration
	e.Go("sleeper", func(p *Proc) {
		at = append(at, p.Now())
		p.Sleep(time.Hour)
		at = append(at, p.Now())
		p.Sleep(30 * time.Minute)
		at = append(at, p.Now())
	})
	start := time.Now()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("virtual sleep took real time: %v", wall)
	}
	if at[0] != 0 || at[1] != time.Hour || at[2] != time.Hour+30*time.Minute {
		t.Fatalf("timestamps = %v", at)
	}
}

func TestInterleavedProcsDeterministic(t *testing.T) {
	run := func() []string {
		e := New(7)
		var log []string
		for _, n := range []string{"a", "b", "c"} {
			n := n
			e.Go(n, func(p *Proc) {
				for i := 0; i < 3; i++ {
					p.Sleep(time.Duration(len(n)) * 10 * time.Millisecond)
					log = append(log, n)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != 9 {
		t.Fatalf("log length %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := New(1)
	var got time.Duration
	var waiter *Proc
	waiter = e.Go("waiter", func(p *Proc) {
		p.Park()
		got = p.Now()
	})
	e.Go("signaler", func(p *Proc) {
		p.Sleep(42 * time.Millisecond)
		p.Engine().Unpark(waiter)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42*time.Millisecond {
		t.Fatalf("waiter resumed at %v", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New(1)
	e.Go("stuck", func(p *Proc) { p.Park() })
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v", err)
	}
	// The aborted process must still be counted as completed (goroutine
	// released).
	started, completed := e.Stats()
	if started != 1 || completed != 1 {
		t.Fatalf("stats: %d/%d", started, completed)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := New(1)
	e.Go("boom", func(p *Proc) {
		p.Sleep(time.Millisecond)
		panic("kaboom")
	})
	err := e.Run()
	if err == nil || !errors.Is(err, err) || err.Error() == "" {
		t.Fatalf("err = %v", err)
	}
}

func TestRunForStopsAtLimit(t *testing.T) {
	e := New(1)
	fired := 0
	e.At(time.Second, func() { fired++ })
	e.At(time.Minute, func() { fired++ })
	if err := e.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	if e.Now() != 10*time.Second {
		t.Fatalf("now = %v", e.Now())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired after full run = %d", fired)
	}
}

func TestFIFOQueueing(t *testing.T) {
	e := New(1)
	q := NewFIFO(e, "disk")
	var done []time.Duration
	var waits []time.Duration
	for i := 0; i < 3; i++ {
		e.Go("job", func(p *Proc) {
			w := q.Use(p, 10*time.Millisecond)
			waits = append(waits, w)
			done = append(done, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion %d = %v, want %v", i, done[i], want[i])
		}
	}
	if waits[0] != 0 || waits[1] != 10*time.Millisecond || waits[2] != 20*time.Millisecond {
		t.Fatalf("waits = %v", waits)
	}
	if q.Jobs() != 3 {
		t.Fatalf("jobs = %d", q.Jobs())
	}
	if q.MaxWait() != 20*time.Millisecond {
		t.Fatalf("maxWait = %v", q.MaxWait())
	}
	if u := q.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestFIFOIdleGapsLowerUtilization(t *testing.T) {
	e := New(1)
	q := NewFIFO(e, "disk")
	e.Go("late", func(p *Proc) {
		p.Sleep(90 * time.Millisecond)
		q.Use(p, 10*time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := q.Utilization(); u < 0.09 || u > 0.11 {
		t.Fatalf("utilization = %v", u)
	}
	if q.Peek() != 0 {
		t.Fatalf("peek on idle = %v", q.Peek())
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := New(1)
	sem := NewSemaphore(e, 2)
	var concurrent, peak int
	for i := 0; i < 6; i++ {
		e.Go("worker", func(p *Proc) {
			sem.Acquire(p)
			concurrent++
			if concurrent > peak {
				peak = concurrent
			}
			p.Sleep(10 * time.Millisecond)
			concurrent--
			sem.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("makespan = %v, want 30ms", e.Now())
	}
	if sem.Waiting() != 0 {
		t.Fatal("waiters left behind")
	}
}

func TestWaitGroupJoins(t *testing.T) {
	e := New(1)
	wg := NewWaitGroup(e, 3)
	var joined time.Duration
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * 10 * time.Millisecond
		e.Go("w", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Go("joiner", func(p *Proc) {
		wg.Wait(p)
		joined = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if joined != 30*time.Millisecond {
		t.Fatalf("joined at %v", joined)
	}
	// Wait on a drained group returns immediately.
	e2 := New(1)
	wg2 := NewWaitGroup(e2, 0)
	ran := false
	e2.Go("j", func(p *Proc) { wg2.Wait(p); ran = true })
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("waiter on empty group stuck")
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 10; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("engine RNG not deterministic")
		}
	}
}
