// Package sim is a deterministic discrete-event simulator with lightweight
// processes. The cluster experiments of the paper (65 nodes, two networks,
// contended disks) run as sim processes: each booting VM is a process whose
// I/O requests acquire modelled resources (links, disks, page cache) while
// the data itself flows through the real image-format code under test.
//
// Concurrency model: exactly one process runs at any instant; the engine and
// the running process hand control to each other over channels. Determinism
// follows from the event queue's (time, sequence) ordering; two runs of the
// same scenario produce identical timings.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// ErrDeadlock is returned by Run when the event queue drains while processes
// are still parked waiting for a signal that can never come.
var ErrDeadlock = errors.New("sim: deadlock: parked processes but no pending events")

// errAborted terminates process goroutines when the engine shuts down.
var errAborted = errors.New("sim: process aborted")

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine owns simulated time and the event queue.
type Engine struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	park   chan struct{} // running process -> engine handoff
	parked map[*Proc]bool
	rnd    *rand.Rand
	err    error

	started   int64
	completed int64
}

// New returns an engine at time zero with a deterministic RNG.
func New(seed int64) *Engine {
	return &Engine{
		park:   make(chan struct{}),
		parked: make(map[*Proc]bool),
		rnd:    rand.New(rand.NewSource(seed)),
	}
}

// Now reports the current simulated time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand exposes the engine's deterministic RNG. It must only be used from
// process context or event callbacks (never concurrently).
func (e *Engine) Rand() *rand.Rand { return e.rnd }

// At schedules fn to run after delay d (>= 0) from now.
func (e *Engine) At(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.seq++
	heap.Push(&e.events, &event{at: e.now + d, seq: e.seq, fn: fn})
}

// Proc is a simulated process. Its methods must be called from the process's
// own goroutine (the function passed to Go).
type Proc struct {
	eng     *Engine
	wake    chan struct{}
	name    string
	aborted bool
}

// Name reports the process name.
func (p *Proc) Name() string { return p.name }

// Now reports the current simulated time.
func (p *Proc) Now() time.Duration { return p.eng.now }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Go spawns a process that starts at the current simulated time.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, wake: make(chan struct{}), name: name}
	e.started++
	e.At(0, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if err, ok := r.(error); ok && errors.Is(err, errAborted) {
						// Clean shutdown of an abandoned process.
					} else if e.err == nil {
						e.err = fmt.Errorf("sim: process %q panicked: %v", name, r)
					}
				}
				e.completed++
				e.park <- struct{}{}
			}()
			<-p.wake // wait for the engine to give us the floor
			fn(p)
		}()
		e.handoff(p)
	})
	return p
}

// handoff transfers control to p and waits until it blocks or exits.
func (e *Engine) handoff(p *Proc) {
	p.wake <- struct{}{}
	<-e.park
}

// Sleep suspends the process for simulated duration d.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	e.At(d, func() { e.handoff(p) })
	p.yield()
}

// SleepUntil suspends the process until absolute simulated time t.
func (p *Proc) SleepUntil(t time.Duration) {
	p.Sleep(t - p.eng.now)
}

// Park suspends the process until another process or callback calls Unpark.
func (p *Proc) Park() {
	e := p.eng
	e.parked[p] = true
	p.yield()
}

// Unpark schedules a parked process to resume at the current time. It is a
// no-op if the process is not parked.
func (e *Engine) Unpark(p *Proc) {
	if !e.parked[p] {
		return
	}
	delete(e.parked, p)
	e.At(0, func() { e.handoff(p) })
}

// yield returns control to the engine and blocks until resumed.
func (p *Proc) yield() {
	e := p.eng
	e.park <- struct{}{}
	<-p.wake
	if p.aborted {
		panic(errAborted)
	}
}

// Run processes events until the queue is empty. It returns ErrDeadlock if
// parked processes remain (after aborting them), or the first process panic.
func (e *Engine) Run() error {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fn()
		if e.err != nil {
			break
		}
	}
	if e.err != nil {
		e.abortParked()
		return e.err
	}
	if len(e.parked) > 0 {
		names := make([]string, 0, len(e.parked))
		for p := range e.parked {
			names = append(names, p.name)
		}
		e.abortParked()
		return fmt.Errorf("%w: %v", ErrDeadlock, names)
	}
	return nil
}

// RunFor processes events until the queue drains or simulated time passes
// limit, whichever is first.
func (e *Engine) RunFor(limit time.Duration) error {
	for len(e.events) > 0 {
		if e.events[0].at > limit {
			e.now = limit
			return nil
		}
		ev := heap.Pop(&e.events).(*event)
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.fn()
		if e.err != nil {
			e.abortParked()
			return e.err
		}
	}
	return nil
}

// abortParked unblocks all parked process goroutines so they exit.
func (e *Engine) abortParked() {
	for p := range e.parked {
		delete(e.parked, p)
		p.aborted = true
		e.handoff(p)
	}
}

// Stats reports (started, completed) process counts.
func (e *Engine) Stats() (started, completed int64) { return e.started, e.completed }
