package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestIntervalSetBasicCoalescing(t *testing.T) {
	var s IntervalSet
	if added := s.Add(10, 20); added != 10 {
		t.Fatalf("first add = %d", added)
	}
	if added := s.Add(15, 25); added != 5 {
		t.Fatalf("overlap add = %d", added)
	}
	if added := s.Add(25, 30); added != 5 { // adjacent: must merge
		t.Fatalf("adjacent add = %d", added)
	}
	if s.Count() != 1 {
		t.Fatalf("count = %d, want 1 merged interval", s.Count())
	}
	if s.Total() != 20 {
		t.Fatalf("total = %d", s.Total())
	}
	if added := s.Add(12, 18); added != 0 {
		t.Fatalf("fully covered add = %d", added)
	}
}

func TestIntervalSetDisjointAndBridge(t *testing.T) {
	var s IntervalSet
	s.Add(0, 10)
	s.Add(20, 30)
	s.Add(40, 50)
	if s.Count() != 3 || s.Total() != 30 {
		t.Fatalf("setup: count=%d total=%d", s.Count(), s.Total())
	}
	// Bridge the middle two.
	if added := s.Add(5, 45); added != 20 {
		t.Fatalf("bridge add = %d", added)
	}
	if s.Count() != 1 || s.Total() != 50 {
		t.Fatalf("after bridge: count=%d total=%d", s.Count(), s.Total())
	}
}

func TestIntervalSetInsertBeforeAndAfter(t *testing.T) {
	var s IntervalSet
	s.Add(100, 200)
	s.Add(0, 50)    // before
	s.Add(300, 400) // after
	if s.Count() != 3 || s.Total() != 250 {
		t.Fatalf("count=%d total=%d", s.Count(), s.Total())
	}
	var got []int64
	s.Each(func(a, b int64) { got = append(got, a, b) })
	want := []int64{0, 50, 100, 200, 300, 400}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intervals = %v, want %v", got, want)
		}
	}
}

func TestIntervalSetContainsAndOverlap(t *testing.T) {
	var s IntervalSet
	s.Add(10, 20)
	s.Add(30, 40)
	if !s.Contains(10, 20) || !s.Contains(12, 15) {
		t.Fatal("Contains false negative")
	}
	if s.Contains(15, 35) || s.Contains(5, 12) || s.Contains(25, 28) {
		t.Fatal("Contains false positive")
	}
	if !s.Contains(7, 7) {
		t.Fatal("empty range must be contained")
	}
	if got := s.Overlap(15, 35); got != 10 { // 5 from [10,20) + 5 from [30,40)
		t.Fatalf("Overlap = %d", got)
	}
	if got := s.Overlap(0, 100); got != 20 {
		t.Fatalf("Overlap all = %d", got)
	}
	if got := s.Overlap(20, 30); got != 0 {
		t.Fatalf("Overlap gap = %d", got)
	}
}

func TestIntervalSetEmptyRange(t *testing.T) {
	var s IntervalSet
	if s.Add(5, 5) != 0 || s.Add(10, 3) != 0 || s.Count() != 0 {
		t.Fatal("degenerate ranges must be no-ops")
	}
}

func TestIntervalSetReset(t *testing.T) {
	var s IntervalSet
	s.Add(0, 100)
	s.Reset()
	if s.Total() != 0 || s.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
	s.Add(50, 60)
	if s.Total() != 10 {
		t.Fatal("set unusable after Reset")
	}
}

// Property: IntervalSet.Total matches a bitmap reference for random adds,
// and the sum of returned "added" values equals the total.
func TestIntervalSetQuickMatchesBitmap(t *testing.T) {
	type rng struct{ Start, Len uint16 }
	check := func(ranges []rng) bool {
		const limit = 1 << 17
		var s IntervalSet
		bitmap := make([]bool, limit)
		var addedSum int64
		for _, r := range ranges {
			start := int64(r.Start)
			end := start + int64(r.Len%2048)
			addedSum += s.Add(start, end)
			for i := start; i < end; i++ {
				bitmap[i] = true
			}
		}
		var want int64
		for _, b := range bitmap {
			if b {
				want++
			}
		}
		return s.Total() == want && addedSum == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: intervals remain sorted, disjoint and non-adjacent.
func TestIntervalSetQuickInvariants(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	var s IntervalSet
	for i := 0; i < 2000; i++ {
		start := rnd.Int63n(1 << 20)
		s.Add(start, start+rnd.Int63n(4096)+1)
		if i%97 == 0 {
			prevEnd := int64(-1)
			ok := true
			s.Each(func(a, b int64) {
				if a >= b || a <= prevEnd {
					ok = false
				}
				prevEnd = b
			})
			if !ok {
				t.Fatalf("invariant violated after %d adds", i+1)
			}
		}
	}
}

func TestAnalyzeWorkingSet(t *testing.T) {
	tr := &Trace{}
	tr.Append(Record{Op: OpRead, Offset: 0, Length: 100})
	tr.Append(Record{Op: OpRead, Offset: 50, Length: 100}) // 50 new
	tr.Append(Record{Op: OpRead, Offset: 0, Length: 10})   // re-read
	tr.Append(Record{Op: OpWrite, Offset: 1000, Length: 10})
	tr.Append(Record{Op: OpFlush})
	ws := Analyze(tr)
	if ws.UniqueReadBytes != 150 {
		t.Fatalf("unique reads = %d", ws.UniqueReadBytes)
	}
	if ws.TotalReadBytes != 210 {
		t.Fatalf("total reads = %d", ws.TotalReadBytes)
	}
	if ws.ReadOps != 3 || ws.WriteOps != 1 || ws.FlushOps != 1 {
		t.Fatalf("ops: %+v", ws)
	}
	if ws.UniqueWriteBytes != 10 || ws.ReadIntervals != 1 {
		t.Fatalf("writes/intervals: %+v", ws)
	}
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	tr := &Trace{}
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		tr.Append(Record{
			When:   time.Duration(i) * time.Millisecond,
			Op:     Op(rnd.Intn(3)),
			Offset: rnd.Int63n(1 << 30),
			Length: rnd.Int63n(1 << 16),
		})
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), tr.Len())
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestTraceLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a trace file!!"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("Load accepted empty input")
	}
}

func TestRecorderRunningWorkingSet(t *testing.T) {
	now := time.Duration(0)
	r := NewRecorderClock(func() time.Duration { return now })
	r.Read(0, 1000)
	now += time.Second
	r.Read(500, 1000) // 500 new
	r.Write(4096, 512)
	r.Flush()
	ws := r.WorkingSet()
	if ws.UniqueReadBytes != 1500 || ws.TotalReadBytes != 2000 {
		t.Fatalf("ws = %+v", ws)
	}
	if ws.ReadOps != 2 || ws.WriteOps != 1 || ws.FlushOps != 1 {
		t.Fatalf("ws ops = %+v", ws)
	}
	tr := r.Trace()
	if tr.Len() != 4 {
		t.Fatalf("trace len = %d", tr.Len())
	}
	if tr.Records[1].When != time.Second {
		t.Fatalf("sim timestamp = %v", tr.Records[1].When)
	}
}

func TestRecorderWithoutRecords(t *testing.T) {
	r := NewRecorder()
	r.KeepRecords = false
	for i := 0; i < 100; i++ {
		r.Read(int64(i)*100, 100)
	}
	if r.Trace().Len() != 0 {
		t.Fatal("records retained despite KeepRecords=false")
	}
	if r.WorkingSet().UniqueReadBytes != 10000 {
		t.Fatalf("unique = %d", r.WorkingSet().UniqueReadBytes)
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpFlush.String() != "flush" {
		t.Fatal("op names")
	}
	if Op(9).String() != "op(9)" {
		t.Fatal("unknown op name")
	}
}
