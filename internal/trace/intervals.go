// Package trace records block-level access traces and analyses them. Its
// central consumer is the working-set measurement behind Table 1 of the
// paper ("Read working set size of various VMIs for booting the VM"): the
// number of *unique* bytes a guest reads from the base image during boot.
package trace

import "sort"

// IntervalSet is a set of disjoint, half-open byte ranges [start, end).
// Adding overlapping or adjacent ranges coalesces them. It answers the two
// questions working-set analysis needs: "how many unique bytes so far?" and
// "which part of this range is new?".
type IntervalSet struct {
	// starts and ends are parallel slices of disjoint intervals sorted by
	// start; invariant: ends[i] < starts[i+1] (adjacent ranges merge).
	starts []int64
	ends   []int64
	total  int64
}

// Add inserts [start, end), coalescing with existing intervals, and returns
// the number of bytes that were not previously covered.
func (s *IntervalSet) Add(start, end int64) int64 {
	if end <= start {
		return 0
	}
	// Find the first interval whose end >= start (candidate for overlap
	// or adjacency on the left).
	i := sort.Search(len(s.starts), func(i int) bool { return s.ends[i] >= start })
	// Find one past the last interval whose start <= end.
	j := sort.Search(len(s.starts), func(i int) bool { return s.starts[i] > end })

	if i == j {
		// No overlap: pure insertion at position i.
		s.starts = append(s.starts, 0)
		s.ends = append(s.ends, 0)
		copy(s.starts[i+1:], s.starts[i:])
		copy(s.ends[i+1:], s.ends[i:])
		s.starts[i] = start
		s.ends[i] = end
		added := end - start
		s.total += added
		return added
	}

	// Merge intervals [i, j) with the new range.
	newStart := start
	if s.starts[i] < newStart {
		newStart = s.starts[i]
	}
	newEnd := end
	if s.ends[j-1] > newEnd {
		newEnd = s.ends[j-1]
	}
	var covered int64
	for k := i; k < j; k++ {
		covered += s.ends[k] - s.starts[k]
	}
	s.starts[i] = newStart
	s.ends[i] = newEnd
	s.starts = append(s.starts[:i+1], s.starts[j:]...)
	s.ends = append(s.ends[:i+1], s.ends[j:]...)
	added := (newEnd - newStart) - covered
	s.total += added
	return added
}

// Contains reports whether every byte of [start, end) is covered.
func (s *IntervalSet) Contains(start, end int64) bool {
	if end <= start {
		return true
	}
	i := sort.Search(len(s.starts), func(i int) bool { return s.ends[i] > start })
	return i < len(s.starts) && s.starts[i] <= start && s.ends[i] >= end
}

// Overlap returns the number of bytes of [start, end) already covered.
func (s *IntervalSet) Overlap(start, end int64) int64 {
	if end <= start {
		return 0
	}
	var covered int64
	i := sort.Search(len(s.starts), func(i int) bool { return s.ends[i] > start })
	for ; i < len(s.starts) && s.starts[i] < end; i++ {
		lo := s.starts[i]
		if lo < start {
			lo = start
		}
		hi := s.ends[i]
		if hi > end {
			hi = end
		}
		covered += hi - lo
	}
	return covered
}

// Total reports the number of unique covered bytes.
func (s *IntervalSet) Total() int64 { return s.total }

// Count reports the number of disjoint intervals.
func (s *IntervalSet) Count() int { return len(s.starts) }

// Each calls fn for every disjoint interval in ascending order.
func (s *IntervalSet) Each(fn func(start, end int64)) {
	for i := range s.starts {
		fn(s.starts[i], s.ends[i])
	}
}

// Reset empties the set.
func (s *IntervalSet) Reset() {
	s.starts = s.starts[:0]
	s.ends = s.ends[:0]
	s.total = 0
}
