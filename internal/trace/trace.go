package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Op identifies the kind of a traced block access.
type Op uint8

// Trace operation kinds.
const (
	OpRead Op = iota
	OpWrite
	OpFlush
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFlush:
		return "flush"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Record is one traced block access.
type Record struct {
	When   time.Duration // time since trace start
	Op     Op
	Offset int64
	Length int64
}

// Trace is an in-memory sequence of block accesses.
type Trace struct {
	Records []Record
}

// Append adds a record.
func (t *Trace) Append(r Record) { t.Records = append(t.Records, r) }

// Len reports the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// WorkingSet summarises a trace the way §2.3 of the paper does.
type WorkingSet struct {
	UniqueReadBytes  int64 // size of unique reads (Table 1's metric)
	TotalReadBytes   int64 // all read bytes incl. re-reads
	UniqueWriteBytes int64
	TotalWriteBytes  int64
	ReadOps          int64
	WriteOps         int64
	FlushOps         int64
	ReadIntervals    int // disjoint regions touched by reads
}

// Analyze computes the working set of a trace.
func Analyze(t *Trace) WorkingSet {
	var ws WorkingSet
	var reads, writes IntervalSet
	for _, r := range t.Records {
		switch r.Op {
		case OpRead:
			ws.ReadOps++
			ws.TotalReadBytes += r.Length
			reads.Add(r.Offset, r.Offset+r.Length)
		case OpWrite:
			ws.WriteOps++
			ws.TotalWriteBytes += r.Length
			writes.Add(r.Offset, r.Offset+r.Length)
		case OpFlush:
			ws.FlushOps++
		}
	}
	ws.UniqueReadBytes = reads.Total()
	ws.UniqueWriteBytes = writes.Total()
	ws.ReadIntervals = reads.Count()
	return ws
}

// binary trace file format: magic, version, then fixed-size records.
const (
	fileMagic   = 0x564d4954 // "VMIT"
	fileVersion = 1
)

var errBadTrace = errors.New("trace: bad file header")

// Save writes the trace in a compact binary format.
func (t *Trace) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:], fileMagic)
	binary.BigEndian.PutUint32(hdr[4:], fileVersion)
	binary.BigEndian.PutUint64(hdr[8:], uint64(len(t.Records)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [25]byte
	for _, r := range t.Records {
		binary.BigEndian.PutUint64(rec[0:], uint64(r.When))
		rec[8] = byte(r.Op)
		binary.BigEndian.PutUint64(rec[9:], uint64(r.Offset))
		binary.BigEndian.PutUint64(rec[17:], uint64(r.Length))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a trace written by Save.
func Load(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(hdr[0:]) != fileMagic ||
		binary.BigEndian.Uint32(hdr[4:]) != fileVersion {
		return nil, errBadTrace
	}
	n := binary.BigEndian.Uint64(hdr[8:])
	const maxRecords = 1 << 30
	if n > maxRecords {
		return nil, fmt.Errorf("trace: implausible record count %d", n)
	}
	t := &Trace{Records: make([]Record, 0, n)}
	var rec [25]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, err
		}
		t.Records = append(t.Records, Record{
			When:   time.Duration(binary.BigEndian.Uint64(rec[0:])),
			Op:     Op(rec[8]),
			Offset: int64(binary.BigEndian.Uint64(rec[9:])),
			Length: int64(binary.BigEndian.Uint64(rec[17:])),
		})
	}
	return t, nil
}

// Recorder captures block accesses with timestamps relative to its creation
// and keeps a running unique-read tally, so long boots can report their
// working set without retaining the full record list when KeepRecords is
// false.
type Recorder struct {
	KeepRecords bool
	start       time.Time
	nowFn       func() time.Duration
	trace       Trace
	reads       IntervalSet
	ws          WorkingSet
}

// NewRecorder returns a Recorder stamping records with wall-clock offsets.
func NewRecorder() *Recorder {
	r := &Recorder{KeepRecords: true, start: time.Now()}
	return r
}

// NewRecorderClock returns a Recorder stamping records with the supplied
// clock (used under simulated time).
func NewRecorderClock(now func() time.Duration) *Recorder {
	return &Recorder{KeepRecords: true, nowFn: now}
}

func (r *Recorder) now() time.Duration {
	if r.nowFn != nil {
		return r.nowFn()
	}
	return time.Since(r.start)
}

// Read records a read access.
func (r *Recorder) Read(off, n int64) {
	r.ws.ReadOps++
	r.ws.TotalReadBytes += n
	r.ws.UniqueReadBytes += r.reads.Add(off, off+n)
	r.ws.ReadIntervals = r.reads.Count()
	if r.KeepRecords {
		r.trace.Append(Record{When: r.now(), Op: OpRead, Offset: off, Length: n})
	}
}

// Write records a write access.
func (r *Recorder) Write(off, n int64) {
	r.ws.WriteOps++
	r.ws.TotalWriteBytes += n
	if r.KeepRecords {
		r.trace.Append(Record{When: r.now(), Op: OpWrite, Offset: off, Length: n})
	}
}

// Flush records a flush.
func (r *Recorder) Flush() {
	r.ws.FlushOps++
	if r.KeepRecords {
		r.trace.Append(Record{When: r.now(), Op: OpFlush})
	}
}

// WorkingSet reports the running summary. UniqueWriteBytes is only filled in
// by Analyze on a full trace.
func (r *Recorder) WorkingSet() WorkingSet { return r.ws }

// Trace returns the captured records (empty unless KeepRecords).
func (r *Recorder) Trace() *Trace { return &r.trace }
