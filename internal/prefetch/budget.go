package prefetch

import "sync/atomic"

// Budget bounds the bytes of readahead queued or in flight at once. It is a
// non-blocking counting semaphore: the data path must never wait on the
// prefetcher, so an acquisition that would exceed the limit simply fails and
// the readahead is dropped (the guest read proceeds on the demand path
// regardless).
type Budget struct {
	max int64
	cur atomic.Int64
}

// NewBudget builds a budget of max in-flight bytes.
func NewBudget(max int64) *Budget {
	if max <= 0 {
		max = DefaultBudget
	}
	return &Budget{max: max}
}

// TryAcquire reserves n bytes; it fails without blocking when the reservation
// would exceed the budget.
func (b *Budget) TryAcquire(n int64) bool {
	for {
		cur := b.cur.Load()
		if cur+n > b.max {
			return false
		}
		if b.cur.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// Release returns n reserved bytes.
func (b *Budget) Release(n int64) { b.cur.Add(-n) }

// InUse reports the bytes currently reserved — the prefetch depth gauge.
func (b *Budget) InUse() int64 { return b.cur.Load() }

// Max reports the budget limit.
func (b *Budget) Max() int64 { return b.max }
