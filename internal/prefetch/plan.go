package prefetch

// Extent is one byte range of a prewarm plan.
type Extent struct {
	Off int64
	Len int64
}

// Coalesce merges a sequence of extents into larger fetches while preserving
// issue order: an extent is folded into its predecessor when it overlaps it
// or starts within maxGap bytes of its end (the gap is fetched too — for a
// boot footprint the bytes between two nearby reads are almost always read
// moments later anyway, and one large pipelined fetch beats two round
// trips). Merged extents are split at maxLen so a single fetch never exceeds
// the transport's sweet spot. Extents with non-positive length are dropped;
// maxGap <= 0 merges only overlapping/adjacent extents, maxLen <= 0 leaves
// merged extents unsplit.
func Coalesce(extents []Extent, maxGap, maxLen int64) []Extent {
	out := make([]Extent, 0, len(extents))
	for _, e := range extents {
		if e.Len <= 0 {
			continue
		}
		if n := len(out); n > 0 {
			prev := &out[n-1]
			end := prev.Off + prev.Len
			if e.Off >= prev.Off && e.Off <= end+maxGap {
				if newEnd := e.Off + e.Len; newEnd > end {
					prev.Len = newEnd - prev.Off
				}
				continue
			}
		}
		out = append(out, e)
	}
	if maxLen <= 0 {
		return out
	}
	split := make([]Extent, 0, len(out))
	for _, e := range out {
		for e.Len > maxLen {
			split = append(split, Extent{Off: e.Off, Len: maxLen})
			e.Off += maxLen
			e.Len -= maxLen
		}
		split = append(split, e)
	}
	return split
}
