package prefetch

import "sync"

// CompletionQueue is the scheduling half of background cluster completion: a
// bounded FIFO of cluster indices with duplicate suppression and a doorbell,
// shared by the fill path (producers, must never block) and the completion
// workers (consumers). Pairing it with a Budget bounds the bytes completion
// keeps in flight, exactly as the readahead engine bounds prefetch.
type CompletionQueue struct {
	mu     sync.Mutex
	queued map[int64]struct{}
	fifo   []int64
	cap    int
	bell   chan struct{}
}

// NewCompletionQueue returns a queue holding at most capacity pending
// clusters.
func NewCompletionQueue(capacity int) *CompletionQueue {
	if capacity <= 0 {
		capacity = 1
	}
	return &CompletionQueue{
		queued: make(map[int64]struct{}, capacity),
		cap:    capacity,
		bell:   make(chan struct{}, 1),
	}
}

// Push schedules a cluster for completion. It never blocks: a full queue
// refuses (false) and the caller counts a drop. Re-pushing an already
// scheduled cluster is an accepted no-op.
func (q *CompletionQueue) Push(vc int64) bool {
	q.mu.Lock()
	if _, dup := q.queued[vc]; dup {
		q.mu.Unlock()
		return true
	}
	if len(q.fifo) >= q.cap {
		q.mu.Unlock()
		return false
	}
	q.queued[vc] = struct{}{}
	q.fifo = append(q.fifo, vc)
	q.mu.Unlock()
	select {
	case q.bell <- struct{}{}:
	default:
	}
	return true
}

// Pop removes the oldest pending cluster; ok is false when the queue is
// empty.
func (q *CompletionQueue) Pop() (vc int64, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.fifo) == 0 {
		return 0, false
	}
	vc = q.fifo[0]
	q.fifo = q.fifo[1:]
	delete(q.queued, vc)
	return vc, true
}

// Wait returns the doorbell channel: it receives after a Push into an empty
// queue. Consumers select on it alongside their stop channel, then drain
// with Pop.
func (q *CompletionQueue) Wait() <-chan struct{} { return q.bell }

// Len reports the pending cluster count.
func (q *CompletionQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.fifo)
}
