// Package prefetch holds the policy side of the readahead subsystem: stream
// detection and window sizing, the in-flight byte budget, and extent
// coalescing for profile-guided prewarm plans. It is deliberately free of any
// image-format knowledge — the mechanism (claiming cluster runs, singleflight
// fills, quota interaction) lives in internal/qcow, which consumes the
// decisions made here. Keeping policy separate lets the detector be unit
// tested with plain offsets and reused by any block-level consumer.
package prefetch

import "sync"

// Default policy knobs. The initial window is big enough that one readahead
// covers several guest requests; the max window bounds how far a stream runs
// ahead of the guest (and therefore how much a mispredicted stream can
// waste). MaxGap tolerates the small forward jumps (skipped metadata,
// sub-cluster alignment) that boot-time sequential runs exhibit.
const (
	DefaultStreams    = 8
	DefaultInitWindow = 128 << 10
	DefaultMaxWindow  = 2 << 20
	DefaultMaxGap     = 256 << 10
	DefaultBudget     = 8 << 20
	DefaultWorkers    = 2
	DefaultQueueLen   = 64
)

// Config parameterises the readahead policy.
type Config struct {
	// Streams is the number of concurrent sequential streams tracked.
	// Guests interleave several sequential walks (program load, file
	// scan); each gets an independent window.
	Streams int

	// InitWindow is the first readahead issued when a stream is confirmed
	// (second sequential access), in bytes.
	InitWindow int64

	// MaxWindow caps the window after repeated hits, in bytes.
	MaxWindow int64

	// MaxGap is the largest forward jump from a stream's expected next
	// offset still treated as a continuation, in bytes.
	MaxGap int64

	// Budget bounds the bytes of readahead queued or in flight at once.
	Budget int64

	// Workers is the number of background fill workers.
	Workers int

	// QueueLen is the depth of the readahead request queue.
	QueueLen int
}

// WithDefaults returns cfg with zero fields replaced by the defaults.
func (c Config) WithDefaults() Config {
	if c.Streams <= 0 {
		c.Streams = DefaultStreams
	}
	if c.InitWindow <= 0 {
		c.InitWindow = DefaultInitWindow
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = DefaultMaxWindow
	}
	if c.MaxWindow < c.InitWindow {
		c.MaxWindow = c.InitWindow
	}
	if c.MaxGap <= 0 {
		c.MaxGap = DefaultMaxGap
	}
	if c.Budget <= 0 {
		c.Budget = DefaultBudget
	}
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.QueueLen <= 0 {
		c.QueueLen = DefaultQueueLen
	}
	return c
}

// Req is one readahead decision: fetch [Off, Off+Len). Stream and Gen tie
// the request to the detector state that issued it, so requests queued
// behind a stream that has since diverged can be dropped instead of filled.
type Req struct {
	Off    int64
	Len    int64
	Stream int
	Gen    uint64
}

// stream is one tracked sequential access pattern.
type stream struct {
	next    int64 // expected offset of the guest's next request
	ahead   int64 // absolute offset readahead has been issued up to
	window  int64 // current readahead window (bytes)
	gen     uint64
	lastUse uint64
	live    bool
}

// Detector classifies guest reads into sequential streams and decides how
// far to read ahead. It holds a fixed table of stream slots (LRU-replaced)
// so Observe is O(Streams) with no allocation — it sits on the warm-read
// hot path, which must stay allocation-free.
type Detector struct {
	mu      sync.Mutex
	cfg     Config
	streams []stream
	clock   uint64
}

// NewDetector builds a detector with the given (defaulted) configuration.
func NewDetector(cfg Config) *Detector {
	cfg = cfg.WithDefaults()
	return &Detector{cfg: cfg, streams: make([]stream, cfg.Streams)}
}

// Observe records one guest read and returns the readahead to issue, if
// any. A read continuing an existing stream advances it and doubles its
// window (up to MaxWindow); the returned request covers only the part of
// the new window not already issued. A read matching no stream replaces the
// least recently used slot, bumps its generation — invalidating any queued
// requests the old stream issued — and returns no request: single probes
// never trigger readahead, only a confirmed second access does.
func (d *Detector) Observe(off, n int64) (Req, bool) {
	if n <= 0 {
		return Req{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock++

	best, bestDist := -1, int64(-1)
	for i := range d.streams {
		s := &d.streams[i]
		if !s.live {
			continue
		}
		dist := off - s.next
		if dist < 0 {
			dist = -dist
		}
		if dist <= d.cfg.MaxGap && (best < 0 || dist < bestDist) {
			best, bestDist = i, dist
		}
	}
	if best < 0 {
		// New (or random) access: claim the LRU slot, issue nothing.
		victim := 0
		for i := range d.streams {
			if !d.streams[i].live {
				victim = i
				break
			}
			if d.streams[i].lastUse < d.streams[victim].lastUse {
				victim = i
			}
		}
		s := &d.streams[victim]
		s.gen++
		s.live = true
		s.next = off + n
		s.ahead = off + n
		s.window = d.cfg.InitWindow
		s.lastUse = d.clock
		return Req{}, false
	}

	s := &d.streams[best]
	s.lastUse = d.clock
	if end := off + n; end > s.next {
		s.next = end
	}
	if s.window < d.cfg.MaxWindow {
		s.window *= 2
		if s.window > d.cfg.MaxWindow {
			s.window = d.cfg.MaxWindow
		}
	}
	start := s.ahead
	if start < s.next {
		start = s.next
	}
	target := s.next + s.window
	if target <= start {
		return Req{}, false // already issued far enough ahead
	}
	s.ahead = target
	return Req{Off: start, Len: target - start, Stream: best, Gen: s.gen}, true
}

// Valid reports whether the stream that issued r has not diverged since.
// Workers check it when dequeuing so stale readahead is dropped, realising
// the "cancel on divergence" half of the policy without tracking in-flight
// requests individually.
func (d *Detector) Valid(r Req) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if r.Stream < 0 || r.Stream >= len(d.streams) {
		return false
	}
	return d.streams[r.Stream].gen == r.Gen
}
