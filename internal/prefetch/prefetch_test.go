package prefetch

import "testing"

func TestDetectorSequentialGrowth(t *testing.T) {
	d := NewDetector(Config{InitWindow: 64 << 10, MaxWindow: 256 << 10, MaxGap: 16 << 10})
	const req = 16 << 10

	// First touch starts a stream but must not prefetch.
	if _, ok := d.Observe(0, req); ok {
		t.Fatal("first access triggered readahead")
	}
	// Second sequential access confirms the stream: one window, ahead of
	// the guest.
	r, ok := d.Observe(req, req)
	if !ok {
		t.Fatal("sequential continuation issued no readahead")
	}
	if r.Off != 2*req {
		t.Fatalf("readahead starts at %d, want %d", r.Off, 2*req)
	}
	if r.Len != 128<<10 {
		t.Fatalf("first window = %d, want doubled init %d", r.Len, 128<<10)
	}

	// Keep streaming: issued-ahead coverage must be contiguous (no gaps,
	// no re-issue) and the window must saturate at MaxWindow.
	ahead := r.Off + r.Len
	var lastLen int64
	for i := 2; i < 40; i++ {
		r, ok := d.Observe(int64(i)*req, req)
		if !ok {
			continue
		}
		if r.Off != ahead {
			t.Fatalf("readahead gap: got %d, want %d", r.Off, ahead)
		}
		ahead = r.Off + r.Len
		lastLen = r.Len
	}
	if lastLen <= 0 || lastLen > 256<<10 {
		t.Fatalf("window %d exceeds max", lastLen)
	}
	// At saturation every request advances the window by exactly the
	// guest's stride.
	r, ok = d.Observe(40*req, req)
	if !ok || r.Len != req {
		t.Fatalf("saturated advance = %v %d, want %d", ok, r.Len, req)
	}
}

func TestDetectorDivergenceInvalidates(t *testing.T) {
	d := NewDetector(Config{Streams: 1, MaxGap: 4 << 10})
	d.Observe(0, 4<<10)
	r, ok := d.Observe(4<<10, 4<<10)
	if !ok {
		t.Fatal("no readahead on continuation")
	}
	if !d.Valid(r) {
		t.Fatal("live stream's request reported stale")
	}
	// A far jump with only one slot evicts the stream: the queued request
	// must turn stale (cancel on divergence).
	d.Observe(1<<30, 4<<10)
	if d.Valid(r) {
		t.Fatal("diverged stream's request still valid")
	}
}

func TestDetectorTracksParallelStreams(t *testing.T) {
	d := NewDetector(Config{Streams: 4, MaxGap: 4 << 10, InitWindow: 32 << 10})
	const req = 8 << 10
	bases := []int64{0, 1 << 28, 2 << 28, 3 << 28}
	for _, b := range bases {
		d.Observe(b, req)
	}
	for step := 1; step < 4; step++ {
		for si, b := range bases {
			r, ok := d.Observe(b+int64(step)*req, req)
			if !ok {
				t.Fatalf("stream %d step %d: no readahead", si, step)
			}
			if r.Off < b || r.Off >= b+(1<<28) {
				t.Fatalf("stream %d readahead at %d escaped its region", si, r.Off)
			}
		}
	}
}

func TestDetectorToleratesSmallGaps(t *testing.T) {
	d := NewDetector(Config{MaxGap: 64 << 10})
	d.Observe(0, 16<<10)
	// Skip 32 KiB: still the same stream.
	if _, ok := d.Observe(48<<10, 16<<10); !ok {
		t.Fatal("forward jump within MaxGap broke the stream")
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(100)
	if !b.TryAcquire(60) || !b.TryAcquire(40) {
		t.Fatal("acquisitions within budget failed")
	}
	if b.TryAcquire(1) {
		t.Fatal("over-budget acquisition succeeded")
	}
	if b.InUse() != 100 {
		t.Fatalf("InUse = %d, want 100", b.InUse())
	}
	b.Release(40)
	if !b.TryAcquire(30) {
		t.Fatal("acquisition after release failed")
	}
}

func TestCoalesce(t *testing.T) {
	in := []Extent{
		{0, 100},    // run start
		{100, 50},   // adjacent: merge
		{180, 20},   // 30-byte gap <= maxGap: merge, absorbing the gap
		{150, 10},   // already covered (re-read): no growth
		{1000, 100}, // far: new extent
		{0, 0},      // dropped
	}
	got := Coalesce(in, 64, 0)
	want := []Extent{{0, 200}, {1000, 100}}
	if len(got) != len(want) {
		t.Fatalf("Coalesce = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Coalesce[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCoalesceSplitsAtMaxLen(t *testing.T) {
	got := Coalesce([]Extent{{0, 100}, {100, 150}}, 0, 100)
	want := []Extent{{0, 100}, {100, 100}, {200, 50}}
	if len(got) != len(want) {
		t.Fatalf("Coalesce = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Coalesce[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
