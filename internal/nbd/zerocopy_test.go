package nbd

// Tests for the NBD sendfile extent path: byte-identity of zero-copy reads
// against the image content, fallback to the copy path for ranges the extent
// export refuses (compressed clusters, unallocated runs) and for devices
// without extent support — all behind a real fixed-newstyle client over TCP.

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"vmicache/internal/backend"
	"vmicache/internal/qcow"
	"vmicache/internal/zerocopy"
)

// PlainExtents forwards extent export through the chainDevice adapter, the
// same surfacing cmd/nbdserve's device wrapper performs.
func (d chainDevice) PlainExtents(off, n int64, dst []zerocopy.FileExtent) ([]zerocopy.FileExtent, bool) {
	return d.img.PlainExtents(off, n, dst)
}

// newPublishedImage builds an os-backed read-only qcow image: the shape of a
// published cache that nbdserve exports after warming.
func newPublishedImage(t *testing.T, size int64, clusterBits int, seed int64) (*qcow.Image, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pub.qcow")
	f, err := backend.CreateOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img, err := qcow.Create(f, qcow.CreateOpts{Size: size, ClusterBits: clusterBits})
	if err != nil {
		t.Fatal(err)
	}
	pat := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(pat)
	if err := backend.WriteFull(img, pat, 0); err != nil {
		t.Fatal(err)
	}
	if err := img.Close(); err != nil {
		t.Fatal(err)
	}
	rof, err := backend.OpenOSFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := qcow.Open(rof, qcow.OpenOpts{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ro.Close() }) //nolint:errcheck
	return ro, pat
}

// TestNBDZeroCopyRead serves a fully-raw published image with the extent
// path on and proves byte-identity across request shapes.
func TestNBDZeroCopyRead(t *testing.T) {
	const size = 2 << 20
	img, pat := newPublishedImage(t, size, 12, 89)
	srv, addr := newTestServer(t)
	srv.ZeroCopy = true
	srv.AddExport(Export{Name: "pub", Device: chainDevice{img}, ReadOnly: true})

	c, err := Dial(addr, "pub")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if !c.ReadOnly() {
		t.Fatal("export not read-only")
	}
	for _, tc := range []struct{ off, n int64 }{
		{0, 4096},
		{777, 100001},
		{size - 8192, 8192},
		{0, 1 << 20},
	} {
		buf := make([]byte, tc.n)
		if _, err := c.ReadAt(buf, tc.off); err != nil {
			t.Fatalf("read (%d,%d): %v", tc.off, tc.n, err)
		}
		if !bytes.Equal(buf, pat[tc.off:tc.off+tc.n]) {
			t.Fatalf("read (%d,%d): mismatch", tc.off, tc.n)
		}
	}
	if srv.ZeroCopySegments.Load() == 0 || srv.ZeroCopyBytes.Load() == 0 {
		t.Fatalf("extent path never engaged: segments=%d", srv.ZeroCopySegments.Load())
	}
	if srv.ZeroCopyFallbacks.Load() != 0 {
		t.Fatalf("unexpected fallbacks on a fully-raw image: %d", srv.ZeroCopyFallbacks.Load())
	}
}

// TestNBDZeroCopyFallback mixes raw, compressed, and unallocated clusters:
// every read must stay byte-correct, with raw ranges on the extent path and
// the rest falling back.
func TestNBDZeroCopyFallback(t *testing.T) {
	const cs = 64 << 10
	const size = 8 * cs
	path := filepath.Join(t.TempDir(), "mix.qcow")
	f, err := backend.CreateOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img, err := qcow.Create(f, qcow.CreateOpts{Size: size, ClusterBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]byte, size)
	rnd := rand.New(rand.NewSource(97))
	d := make([]byte, cs)
	for _, vc := range []int64{0, 1, 3} { // raw clusters
		rnd.Read(d)
		if err := backend.WriteFull(img, d, vc*cs); err != nil {
			t.Fatal(err)
		}
		copy(ref[vc*cs:], d)
	}
	for i := range d { // compressible content for cluster 2
		d[i] = byte(i / 32)
	}
	if err := img.WriteCompressedCluster(2, d); err != nil {
		t.Fatal(err)
	}
	copy(ref[2*cs:], d)
	// Clusters 4..7 stay unallocated: read as zeros (no backing).
	if err := img.Close(); err != nil {
		t.Fatal(err)
	}
	rof, err := backend.OpenOSFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := qcow.Open(rof, qcow.OpenOpts{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ro.Close() }) //nolint:errcheck

	srv, addr := newTestServer(t)
	srv.ZeroCopy = true
	srv.AddExport(Export{Name: "mix", Device: chainDevice{ro}, ReadOnly: true})
	c, err := Dial(addr, "mix")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	// Pure raw range: extent path.
	buf := make([]byte, 2*cs)
	if _, err := c.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, ref[:2*cs]) {
		t.Fatal("raw range mismatch")
	}
	zcAfterRaw := srv.ZeroCopySegments.Load()
	if zcAfterRaw == 0 {
		t.Fatal("raw range skipped the extent path")
	}
	// Whole image: crosses compressed and unallocated, must fall back.
	all := make([]byte, size)
	if _, err := c.ReadAt(all, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(all, ref) {
		t.Fatal("mixed read mismatch")
	}
	if srv.ZeroCopyFallbacks.Load() == 0 {
		t.Fatal("mixed range did not fall back")
	}
}

// TestNBDZeroCopyNonExtentDevice leaves the option on against a device that
// cannot export extents: everything must serve via the copy path, silently.
func TestNBDZeroCopyNonExtentDevice(t *testing.T) {
	srv, addr := newTestServer(t)
	srv.ZeroCopy = true
	mf := backend.NewMemFileSize(256 << 10)
	seed := bytes.Repeat([]byte{0x3C}, 256<<10)
	if err := backend.WriteFull(mf, seed, 0); err != nil {
		t.Fatal(err)
	}
	srv.AddExport(Export{Name: "mem", Device: memDevice{mf, 256 << 10}, ReadOnly: true})
	c, err := Dial(addr, "mem")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	got := make([]byte, 256<<10)
	if _, err := c.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, seed) {
		t.Fatal("copy-path read mismatch")
	}
	if srv.ZeroCopySegments.Load() != 0 {
		t.Fatal("non-extent device claimed zero-copy")
	}
}
