package nbd

import (
	"bytes"
	"sort"
	"testing"

	"vmicache/internal/backend"
	"vmicache/internal/boot"
	"vmicache/internal/qcow"
)

// memDevice adapts a MemFile to Device.
type memDevice struct {
	*backend.MemFile
	size int64
}

func (d memDevice) Size() int64 { return d.size }

func newTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	srv := NewServer(t.Logf)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	return srv, addr
}

func TestHandshakeAndIO(t *testing.T) {
	srv, addr := newTestServer(t)
	mf := backend.NewMemFileSize(1 << 20)
	srv.AddExport(Export{Name: "disk0", Device: memDevice{mf, 1 << 20}})

	c, err := Dial(addr, "disk0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if c.Size() != 1<<20 {
		t.Fatalf("size = %d", c.Size())
	}
	if c.ReadOnly() {
		t.Fatal("export unexpectedly read-only")
	}
	data := []byte("over the wire block data")
	if _, err := c.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := c.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if srv.ReadOps.Load() == 0 || srv.WriteOps.Load() == 0 || srv.FlushOps.Load() == 0 {
		t.Fatalf("server stats: r=%d w=%d f=%d",
			srv.ReadOps.Load(), srv.WriteOps.Load(), srv.FlushOps.Load())
	}
}

func TestReadOnlyExportRejectsWrites(t *testing.T) {
	srv, addr := newTestServer(t)
	srv.AddExport(Export{Name: "ro", Device: memDevice{backend.NewMemFileSize(4096), 4096}, ReadOnly: true})
	c, err := Dial(addr, "ro")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if !c.ReadOnly() {
		t.Fatal("transmission flags lost read-only bit")
	}
	if _, err := c.WriteAt([]byte{1}, 0); err == nil {
		t.Fatal("write to read-only export succeeded")
	}
}

func TestUnknownExportDropsConnection(t *testing.T) {
	_, addr := newTestServer(t)
	if _, err := Dial(addr, "nope"); err == nil {
		t.Fatal("attached to unknown export")
	}
}

func TestOutOfRangeIO(t *testing.T) {
	srv, addr := newTestServer(t)
	srv.AddExport(Export{Name: "d", Device: memDevice{backend.NewMemFileSize(8192), 8192}})
	c, err := Dial(addr, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if _, err := c.ReadAt(make([]byte, 16), 8192-8); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if _, err := c.WriteAt(make([]byte, 16), 8192-8); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	// Connection must survive the errors.
	if _, err := c.ReadAt(make([]byte, 8), 0); err != nil {
		t.Fatalf("connection broken after error: %v", err)
	}
}

func TestList(t *testing.T) {
	srv, addr := newTestServer(t)
	srv.AddExport(Export{Name: "alpha", Device: memDevice{backend.NewMemFileSize(1), 1}})
	srv.AddExport(Export{Name: "beta", Device: memDevice{backend.NewMemFileSize(1), 1}})
	names, err := List(addr)
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("names = %v", names)
	}
	srv.RemoveExport("beta")
	names, err = List(addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("after remove: %v", names)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, addr := newTestServer(t)
	srv.AddExport(Export{Name: "d", Device: memDevice{backend.NewMemFileSize(1 << 20), 1 << 20}})
	const n = 6
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			c, err := Dial(addr, "d")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close() //nolint:errcheck
			region := int64(i) * 4096
			pat := bytes.Repeat([]byte{byte(i + 1)}, 4096)
			if _, err := c.WriteAt(pat, region); err != nil {
				errs <- err
				return
			}
			got := make([]byte, 4096)
			if _, err := c.ReadAt(got, region); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, pat) {
				errs <- bytes.ErrTooLarge // any sentinel
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// The headline integration: a full base<-cache<-CoW chain exported over NBD
// and booted through the network block device, verified against the content
// oracle.
func TestBootChainOverNBD(t *testing.T) {
	const size = 4 << 20
	src := boot.PatternSource{Seed: 13, N: size}

	baseF := backend.NewMemFile()
	base, err := qcow.Create(baseF, qcow.CreateOpts{Size: size, ClusterBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	base.SetBacking(qcow.RawSource{R: src, N: size})
	cache, err := qcow.Create(backend.NewMemFile(), qcow.CreateOpts{
		Size: size, ClusterBits: 9, BackingFile: "base", CacheQuota: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache.SetBacking(base)
	cow, err := qcow.Create(backend.NewMemFile(), qcow.CreateOpts{
		Size: size, ClusterBits: 16, BackingFile: "cache",
	})
	if err != nil {
		t.Fatal(err)
	}
	cow.SetBacking(cache)

	srv, addr := newTestServer(t)
	srv.AddExport(Export{Name: "vm0", Device: chainDevice{cow}})

	c, err := Dial(addr, "vm0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck

	prof := boot.Debian.Scale(0.01)
	prof.ImageSize = size
	w := boot.Generate(prof)
	res, err := boot.Replay(w, c, boot.ReplayOpts{})
	if err != nil {
		t.Fatalf("boot over NBD: %v", err)
	}
	if res.ReadBytes == 0 || res.WriteBytes == 0 {
		t.Fatalf("replay moved nothing: %+v", res)
	}
	if cache.Stats().CacheFillOps.Load() == 0 {
		t.Fatal("NBD boot did not warm the cache")
	}
	// Spot-check content through the device.
	got := make([]byte, 4096)
	if _, err := c.ReadAt(got, 64<<10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src.At(64<<10, 4096)) {
		t.Fatal("NBD content mismatch")
	}
}

// chainDevice adapts a qcow image to Device.
type chainDevice struct{ img *qcow.Image }

func (d chainDevice) ReadAt(p []byte, off int64) (int, error)  { return d.img.ReadAt(p, off) }
func (d chainDevice) WriteAt(p []byte, off int64) (int, error) { return d.img.WriteAt(p, off) }
func (d chainDevice) Size() int64                              { return d.img.Size() }
func (d chainDevice) Sync() error                              { return d.img.Sync() }
