package nbd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Client is a minimal fixed-newstyle NBD client, used by tests and examples
// to drive the server the way a hypervisor would.
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	size     int64
	readOnly bool
	handle   uint64
	closed   bool
}

// clientErrs maps NBD error numbers to errors.
var clientErrs = map[uint32]error{
	nbdEPERM:  errors.New("nbd: permission denied"),
	nbdEIO:    errors.New("nbd: I/O error"),
	nbdEINVAL: errors.New("nbd: invalid request"),
}

func nbdError(code uint32) error {
	if code == 0 {
		return nil
	}
	if err, ok := clientErrs[code]; ok {
		return err
	}
	return fmt.Errorf("nbd: error %d", code)
}

// Dial connects to an NBD server and attaches the named export.
func Dial(addr, export string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	if err := c.handshake(export); err != nil {
		conn.Close() //nolint:errcheck
		return nil, err
	}
	return c, nil
}

func (c *Client) handshake(export string) error {
	be := binary.BigEndian
	var greet [18]byte
	if _, err := io.ReadFull(c.conn, greet[:]); err != nil {
		return err
	}
	if be.Uint64(greet[0:]) != nbdMagic || be.Uint64(greet[8:]) != optMagic {
		return errors.New("nbd: bad server greeting")
	}
	serverFlags := be.Uint16(greet[16:])
	if serverFlags&flagFixedNewstyle == 0 {
		return errors.New("nbd: server is not fixed-newstyle")
	}
	// Echo NO_ZEROES so the export reply is compact.
	var cflags [4]byte
	be.PutUint32(cflags[:], flagNoZeroes)
	if _, err := c.conn.Write(cflags[:]); err != nil {
		return err
	}
	// NBD_OPT_EXPORT_NAME.
	opt := make([]byte, 16+len(export))
	be.PutUint64(opt[0:], optMagic)
	be.PutUint32(opt[8:], optExportName)
	be.PutUint32(opt[12:], uint32(len(export)))
	copy(opt[16:], export)
	if _, err := c.conn.Write(opt); err != nil {
		return err
	}
	var info [10]byte
	if _, err := io.ReadFull(c.conn, info[:]); err != nil {
		return fmt.Errorf("nbd: export %q rejected: %w", export, err)
	}
	c.size = int64(be.Uint64(info[0:]))
	tflags := be.Uint16(info[8:])
	c.readOnly = tflags&transmissionFlagReadOnly != 0
	return nil
}

// Size reports the export's size.
func (c *Client) Size() int64 { return c.size }

// ReadOnly reports whether the export rejects writes.
func (c *Client) ReadOnly() bool { return c.readOnly }

// request performs one synchronous command round trip.
func (c *Client) request(cmd uint16, off uint64, length uint32, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("nbd: client closed")
	}
	be := binary.BigEndian
	c.handle++
	var hdr [28]byte
	be.PutUint32(hdr[0:], requestMagic)
	be.PutUint16(hdr[6:], cmd)
	be.PutUint64(hdr[8:], c.handle)
	be.PutUint64(hdr[16:], off)
	be.PutUint32(hdr[24:], length)
	if _, err := c.conn.Write(hdr[:]); err != nil {
		return nil, err
	}
	if len(payload) > 0 {
		if _, err := c.conn.Write(payload); err != nil {
			return nil, err
		}
	}
	if cmd == cmdDisc {
		return nil, nil // no reply for disconnect
	}
	var rep [16]byte
	if _, err := io.ReadFull(c.conn, rep[:]); err != nil {
		return nil, err
	}
	if be.Uint32(rep[0:]) != simpleReplyMagic {
		return nil, errors.New("nbd: bad reply magic")
	}
	if be.Uint64(rep[8:]) != c.handle {
		return nil, errors.New("nbd: reply handle mismatch")
	}
	if err := nbdError(be.Uint32(rep[4:])); err != nil {
		return nil, err
	}
	if cmd == cmdRead {
		buf := make([]byte, length)
		if _, err := io.ReadFull(c.conn, buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	return nil, nil
}

// ReadAt implements io.ReaderAt against the export.
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > c.size {
		return 0, errors.New("nbd: read out of range")
	}
	buf, err := c.request(cmdRead, uint64(off), uint32(len(p)), nil)
	if err != nil {
		return 0, err
	}
	copy(p, buf)
	return len(p), nil
}

// WriteAt implements io.WriterAt against the export.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > c.size {
		return 0, errors.New("nbd: write out of range")
	}
	if _, err := c.request(cmdWrite, uint64(off), uint32(len(p)), p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Sync issues NBD_CMD_FLUSH.
func (c *Client) Sync() error {
	_, err := c.request(cmdFlush, 0, 0, nil)
	return err
}

// Close disconnects cleanly.
func (c *Client) Close() error {
	c.request(cmdDisc, 0, 0, nil) //nolint:errcheck // best-effort goodbye
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

// List queries the server's export names via NBD_OPT_LIST on a fresh
// connection.
func List(addr string) ([]string, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close() //nolint:errcheck // read-only negotiation probe
	be := binary.BigEndian
	var greet [18]byte
	if _, err := io.ReadFull(conn, greet[:]); err != nil {
		return nil, err
	}
	var cflags [4]byte
	be.PutUint32(cflags[:], flagNoZeroes)
	if _, err := conn.Write(cflags[:]); err != nil {
		return nil, err
	}
	var opt [16]byte
	be.PutUint64(opt[0:], optMagic)
	be.PutUint32(opt[8:], optList)
	if _, err := conn.Write(opt[:]); err != nil {
		return nil, err
	}
	var names []string
	for {
		var rep [20]byte
		if _, err := io.ReadFull(conn, rep[:]); err != nil {
			return nil, err
		}
		if be.Uint64(rep[0:]) != repMagic {
			return nil, errors.New("nbd: bad option reply magic")
		}
		typ := be.Uint32(rep[12:])
		length := be.Uint32(rep[16:])
		payload := make([]byte, length)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return nil, err
		}
		switch typ {
		case repServer:
			if length < 4 {
				return nil, errors.New("nbd: short list reply")
			}
			n := be.Uint32(payload)
			if int(n)+4 > len(payload) {
				return nil, errors.New("nbd: bad list reply")
			}
			names = append(names, string(payload[4:4+n]))
		case repAck:
			return names, nil
		default:
			return nil, fmt.Errorf("nbd: unexpected list reply type %#x", typ)
		}
	}
}
