// Package nbd implements a Network Block Device server (fixed-newstyle
// handshake) that exports VM image chains as block devices. It is this
// repository's stand-in for the hypervisor's virtual disk attach path: a
// real qemu or Linux kernel NBD client can connect to an export and boot
// from a base←cache←CoW chain, exercising exactly the I/O path §4.2
// describes for qemu-kvm's disk controller.
package nbd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vmicache/internal/metrics"
	"vmicache/internal/zerocopy"
)

// Protocol magics and constants (https://github.com/NetworkBlockDevice/nbd
// doc/proto.md).
const (
	nbdMagic         = 0x4e42444d41474943 // "NBDMAGIC"
	optMagic         = 0x49484156454f5054 // "IHAVEOPT"
	repMagic         = 0x3e889045565a9
	requestMagic     = 0x25609513
	simpleReplyMagic = 0x67446698

	flagFixedNewstyle = 1 << 0
	flagNoZeroes      = 1 << 1

	optExportName = 1
	optAbort      = 2
	optList       = 3

	repAck       = 1
	repServer    = 2
	repErrUnsup  = 0x80000001 | 0
	repFlagError = 1 << 31

	cmdRead  = 0
	cmdWrite = 1
	cmdDisc  = 2
	cmdFlush = 3
	cmdTrim  = 4

	transmissionFlagHasFlags  = 1 << 0
	transmissionFlagReadOnly  = 1 << 1
	transmissionFlagSendFlush = 1 << 2

	// Error codes (errno-style).
	nbdEPERM  = 1
	nbdEIO    = 5
	nbdEINVAL = 22

	// maxRequestLen bounds a single I/O request.
	maxRequestLen = 32 << 20
)

// Device is the block device surface an export serves.
type Device interface {
	io.ReaderAt
	io.WriterAt
	Size() int64
	Sync() error
}

// Export describes one served device.
type Export struct {
	Name     string
	Device   Device
	ReadOnly bool
}

// Server serves NBD exports over TCP.
type Server struct {
	mu       sync.Mutex
	exports  map[string]Export
	ln       net.Listener
	closed   bool
	draining bool
	conns    map[net.Conn]struct{}
	logf     func(format string, args ...any)

	// activeReqs counts dispatched device requests still in flight, so
	// Shutdown can drain them before tearing connections down.
	activeReqs atomic.Int64

	// bufPool recycles transmission payload buffers (read replies and
	// inbound write payloads) across requests, so a busy device stream
	// allocates no payload buffers in steady state. Requests larger than
	// maxPooledBuf fall back to plain allocation.
	bufPool sync.Pool

	// ZeroCopy serves reads of read-only exports whose Device implements
	// zerocopy.ExtentSource (a published qcow chain over an os-backed
	// container) by sendfile(2) from the container file instead of a
	// read-into-buffer copy. Reads the extent export refuses — compressed
	// clusters, partially-valid sub-clusters, unallocated runs — fall back
	// to the copy path per request. Set before Listen.
	ZeroCopy bool

	// Stats
	ReadOps      atomic.Int64
	WriteOps     atomic.Int64
	FlushOps     atomic.Int64
	BytesRead    atomic.Int64
	BytesWritten atomic.Int64

	// Zero-copy serve effectiveness: bytes and sendfile segments shipped by
	// the extent path, and reads that wanted it but used the copy path.
	ZeroCopyBytes     atomic.Int64
	ZeroCopySegments  atomic.Int64
	ZeroCopyFallbacks atomic.Int64

	// latency records per-request dispatch-to-reply durations (ns).
	latency metrics.AtomicHistogram
}

// RegisterMetrics exposes the server's counters on a registry.
func (s *Server) RegisterMetrics(r *metrics.Registry, labels metrics.Labels) {
	r.CounterFunc("vmicache_nbd_read_ops_total",
		"NBD read commands handled.", labels, s.ReadOps.Load)
	r.CounterFunc("vmicache_nbd_write_ops_total",
		"NBD write commands handled.", labels, s.WriteOps.Load)
	r.CounterFunc("vmicache_nbd_flush_ops_total",
		"NBD flush commands handled.", labels, s.FlushOps.Load)
	r.CounterFunc("vmicache_nbd_bytes_read_total",
		"Bytes served to NBD clients by read commands.", labels, s.BytesRead.Load)
	r.CounterFunc("vmicache_nbd_bytes_written_total",
		"Bytes applied from NBD clients by write commands.", labels, s.BytesWritten.Load)
	r.GaugeFunc("vmicache_nbd_active_requests",
		"Device requests currently dispatched.", labels, s.activeReqs.Load)
	r.RegisterHistogram("vmicache_nbd_request_ns",
		"NBD request duration, dispatch through reply.", labels, &s.latency)
	r.CounterFunc("vmicache_nbd_zerocopy_bytes_total",
		"Read bytes served via the sendfile extent path.", labels, s.ZeroCopyBytes.Load)
	r.CounterFunc("vmicache_nbd_zerocopy_segments_total",
		"Sendfile segments shipped by the extent path.", labels, s.ZeroCopySegments.Load)
	r.CounterFunc("vmicache_nbd_zerocopy_fallbacks_total",
		"Reads that wanted zero-copy but used the copy path.", labels, s.ZeroCopyFallbacks.Load)
}

// maxConcurrentPerConn bounds how many in-flight requests one connection may
// have dispatched at once.
const maxConcurrentPerConn = 16

// maxPooledBuf caps the size of payload buffers kept in the pool: typical
// guest I/O is well under 1 MiB, and pooling the occasional maxRequestLen
// giant would pin tens of megabytes per idle connection.
const maxPooledBuf = 1 << 20

// getBuf returns a pooled payload buffer of length n (by pointer so
// recycling does not allocate a box per put).
func (s *Server) getBuf(n uint32) *[]byte {
	if v := s.bufPool.Get(); v != nil {
		bp := v.(*[]byte)
		if cap(*bp) >= int(n) {
			*bp = (*bp)[:n]
			return bp
		}
		// Too small for this request: drop it and allocate bigger; the
		// pool re-fills with right-sized buffers as they are returned.
	}
	b := make([]byte, n)
	return &b
}

func (s *Server) putBuf(bp *[]byte) {
	if cap(*bp) <= maxPooledBuf {
		s.bufPool.Put(bp)
	}
}

// replyScratch is the per-connection reply assembly state, guarded by the
// connection's write mutex while in use. arr holds the stable header+payload
// iovec; wip is the consumable copy WriteTo advances, a field so no slice
// header escapes per reply.
type replyScratch struct {
	hdr [16]byte
	arr [2][]byte
	wip net.Buffers
}

// scratchPool recycles replyScratch across connections.
var scratchPool = sync.Pool{New: func() any { return new(replyScratch) }}

func getReplyScratch() *replyScratch { return scratchPool.Get().(*replyScratch) }

func putReplyScratch(rs *replyScratch) {
	// Drop payload references so the pool does not pin reply buffers.
	rs.arr[0], rs.arr[1] = nil, nil
	rs.wip = nil
	scratchPool.Put(rs)
}

// extsPool recycles extent slices for zero-copy read translation (one live
// slice per in-flight zero-copy read).
var extsPool = sync.Pool{New: func() any { return new([]zerocopy.FileExtent) }}

func getExtents() *[]zerocopy.FileExtent { return extsPool.Get().(*[]zerocopy.FileExtent) }

func putExtents(ep *[]zerocopy.FileExtent) {
	for i := range *ep {
		(*ep)[i] = zerocopy.FileExtent{} // do not pin descriptors in the pool
	}
	extsPool.Put(ep)
}

// NewServer returns an empty server.
func NewServer(logf func(format string, args ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		exports: make(map[string]Export),
		conns:   make(map[net.Conn]struct{}),
		logf:    logf,
	}
}

// AddExport registers (or replaces) an export.
func (s *Server) AddExport(e Export) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.exports[e.Name] = e
}

// RemoveExport unregisters an export; running connections are unaffected.
func (s *Server) RemoveExport(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.exports, name)
}

// exportNames lists registered exports.
func (s *Server) exportNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.exports))
	for n := range s.exports {
		names = append(names, n)
	}
	return names
}

// Listen binds addr and starts accepting; returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed || s.draining {
				s.mu.Unlock()
				conn.Close() //nolint:errcheck
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			go s.serveConn(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener and all connections immediately, without waiting
// for in-flight requests. Prefer Shutdown for command-line servers.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked()
}

func (s *Server) closeLocked() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		c.Close() //nolint:errcheck
	}
	return err
}

// Shutdown stops the server gracefully: the listener closes immediately (no
// new connections), in-flight device requests get up to drain to complete and
// write their replies, then all connections are closed. Requests still
// running at the deadline are cut off by the connection close.
func (s *Server) Shutdown(drain time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	var lnErr error
	if s.ln != nil {
		lnErr = s.ln.Close()
		s.ln = nil
	}
	s.mu.Unlock()

	deadline := time.Now().Add(drain)
	for s.activeReqs.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	s.mu.Lock()
	err := s.closeLocked()
	s.mu.Unlock()
	if err == nil {
		err = lnErr
	}
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close() //nolint:errcheck
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	exp, noZeroes, err := s.handshake(conn)
	if err != nil {
		if !errors.Is(err, io.EOF) && !errors.Is(err, errAborted) {
			s.logf("nbd: handshake: %v", err)
		}
		return
	}
	if err := s.transmission(conn, exp, noZeroes); err != nil && !errors.Is(err, io.EOF) {
		s.logf("nbd: transmission: %v", err)
	}
}

var errAborted = errors.New("nbd: client aborted negotiation")

// handshake performs the fixed-newstyle negotiation and returns the chosen
// export.
func (s *Server) handshake(conn net.Conn) (Export, bool, error) {
	be := binary.BigEndian
	var greet [18]byte
	be.PutUint64(greet[0:], nbdMagic)
	be.PutUint64(greet[8:], optMagic)
	be.PutUint16(greet[16:], flagFixedNewstyle|flagNoZeroes)
	if _, err := conn.Write(greet[:]); err != nil {
		return Export{}, false, err
	}
	var cflags [4]byte
	if _, err := io.ReadFull(conn, cflags[:]); err != nil {
		return Export{}, false, err
	}
	noZeroes := be.Uint32(cflags[:])&flagNoZeroes != 0

	for {
		var hdr [16]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return Export{}, false, err
		}
		if be.Uint64(hdr[0:]) != optMagic {
			return Export{}, false, fmt.Errorf("nbd: bad option magic %#x", be.Uint64(hdr[0:]))
		}
		opt := be.Uint32(hdr[8:])
		length := be.Uint32(hdr[12:])
		if length > 4096 {
			return Export{}, false, fmt.Errorf("nbd: oversized option (%d bytes)", length)
		}
		data := make([]byte, length)
		if _, err := io.ReadFull(conn, data); err != nil {
			return Export{}, false, err
		}

		switch opt {
		case optExportName:
			name := string(data)
			s.mu.Lock()
			exp, ok := s.exports[name]
			s.mu.Unlock()
			if !ok {
				// EXPORT_NAME has no error reply; the server
				// must drop the connection.
				return Export{}, false, fmt.Errorf("nbd: unknown export %q", name)
			}
			tflags := uint16(transmissionFlagHasFlags | transmissionFlagSendFlush)
			if exp.ReadOnly {
				tflags |= transmissionFlagReadOnly
			}
			reply := make([]byte, 10, 10+124)
			be.PutUint64(reply[0:], uint64(exp.Device.Size()))
			be.PutUint16(reply[8:], tflags)
			if !noZeroes {
				reply = append(reply, make([]byte, 124)...)
			}
			if _, err := conn.Write(reply); err != nil {
				return Export{}, false, err
			}
			return exp, noZeroes, nil

		case optAbort:
			s.optReply(conn, opt, repAck, nil) //nolint:errcheck // client is leaving
			return Export{}, false, errAborted

		case optList:
			for _, name := range s.exportNames() {
				payload := make([]byte, 4+len(name))
				be.PutUint32(payload, uint32(len(name)))
				copy(payload[4:], name)
				if err := s.optReply(conn, opt, repServer, payload); err != nil {
					return Export{}, false, err
				}
			}
			if err := s.optReply(conn, opt, repAck, nil); err != nil {
				return Export{}, false, err
			}

		default:
			if err := s.optReply(conn, opt, repErrUnsup|repFlagError, nil); err != nil {
				return Export{}, false, err
			}
		}
	}
}

func (s *Server) optReply(conn net.Conn, opt, typ uint32, payload []byte) error {
	be := binary.BigEndian
	hdr := make([]byte, 20)
	be.PutUint64(hdr[0:], repMagic)
	be.PutUint32(hdr[8:], opt)
	be.PutUint32(hdr[12:], typ)
	be.PutUint32(hdr[16:], uint32(len(payload)))
	if _, err := conn.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		_, err := conn.Write(payload)
		return err
	}
	return nil
}

// transmission runs the I/O phase until disconnect. Requests are dispatched
// concurrently (bounded per connection): request headers — and write
// payloads, which share the stream — are read sequentially, but device I/O
// and replies overlap, so a parallel guest (or a pipelined client) is not
// serialised by a slow read. Replies identify their request by NBD handle;
// the reply header and read payload leave in ONE vectored write under a
// per-connection write mutex — no payload copy, no second syscall.
func (s *Server) transmission(conn net.Conn, exp Export, _ bool) error {
	be := binary.BigEndian
	var wmu sync.Mutex
	var wg sync.WaitGroup
	defer wg.Wait()
	sem := make(chan struct{}, maxConcurrentPerConn)

	// Per-connection reply scratch, guarded by wmu and recycled across
	// connections (the same lifetime discipline as rblock's replyWriter
	// buffers): a churn of short-lived guest attaches allocates no reply
	// scratch in steady state.
	rs := getReplyScratch()
	defer putReplyScratch(rs)

	// zcSrc is non-nil when reads may try the sendfile extent path: the
	// export must be immutable (frozen cluster mappings are what make the
	// exported offsets stable) and its device must offer extent export.
	var zcSrc zerocopy.ExtentSource
	if s.ZeroCopy && exp.ReadOnly {
		zcSrc, _ = exp.Device.(zerocopy.ExtentSource)
	}

	// reply writes one response frame (with optional payload) atomically;
	// on error it tears the connection down to unblock the request reader.
	reply := func(handle uint64, nbdErr uint32, payload []byte) {
		wmu.Lock()
		be.PutUint32(rs.hdr[0:], simpleReplyMagic)
		be.PutUint32(rs.hdr[4:], nbdErr)
		be.PutUint64(rs.hdr[8:], handle)
		var err error
		if len(payload) > 0 {
			rs.arr[0], rs.arr[1] = rs.hdr[:], payload
			rs.wip = rs.arr[:]
			_, err = rs.wip.WriteTo(conn)
		} else {
			_, err = conn.Write(rs.hdr[:])
		}
		wmu.Unlock()
		if err != nil {
			s.logf("nbd: reply write: %v", err)
			conn.Close() //nolint:errcheck
		}
	}

	// replyExtents writes a successful read reply whose payload is pushed by
	// sendfile from the exported container extents — no user-space copy. The
	// whole sequence holds wmu: NBD simple replies are not resumable, so a
	// mid-payload failure can only end in connection teardown anyway.
	replyExtents := func(handle uint64, exts []zerocopy.FileExtent) {
		wmu.Lock()
		be.PutUint32(rs.hdr[0:], simpleReplyMagic)
		be.PutUint32(rs.hdr[4:], 0)
		be.PutUint64(rs.hdr[8:], handle)
		_, err := conn.Write(rs.hdr[:])
		for _, e := range exts {
			if err != nil {
				break
			}
			_, err = zerocopy.Send(conn, e.F, e.Off, e.Len)
		}
		wmu.Unlock()
		if err != nil {
			s.logf("nbd: zero-copy reply: %v", err)
			conn.Close() //nolint:errcheck
		}
	}
	dispatch := func(fn func()) {
		sem <- struct{}{}
		wg.Add(1)
		s.activeReqs.Add(1)
		go func() {
			start := time.Now()
			defer func() {
				s.latency.Observe(time.Since(start).Nanoseconds())
				s.activeReqs.Add(-1)
				<-sem
				wg.Done()
			}()
			fn()
		}()
	}

	var hdr [28]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return err
		}
		if be.Uint32(hdr[0:]) != requestMagic {
			return fmt.Errorf("nbd: bad request magic %#x", be.Uint32(hdr[0:]))
		}
		cmd := be.Uint16(hdr[6:])
		handle := be.Uint64(hdr[8:])
		offset := be.Uint64(hdr[16:])
		length := be.Uint32(hdr[24:])
		if length > maxRequestLen {
			return fmt.Errorf("nbd: oversized request (%d bytes)", length)
		}

		switch cmd {
		case cmdRead:
			dispatch(func() {
				inRange := int64(offset)+int64(length) <= exp.Device.Size()
				if zcSrc != nil && inRange && length > 0 {
					ep := getExtents()
					exts, ok := zcSrc.PlainExtents(int64(offset), int64(length), (*ep)[:0])
					if ok {
						s.ReadOps.Add(1)
						s.BytesRead.Add(int64(length))
						s.ZeroCopyBytes.Add(int64(length))
						s.ZeroCopySegments.Add(int64(len(exts)))
						replyExtents(handle, exts)
						*ep = exts
						putExtents(ep)
						return
					}
					*ep = exts
					putExtents(ep)
					s.ZeroCopyFallbacks.Add(1)
				}
				bp := s.getBuf(length)
				buf := *bp
				var nbdErr uint32
				if !inRange {
					nbdErr = nbdEINVAL
				} else if _, err := exp.Device.ReadAt(buf, int64(offset)); err != nil {
					nbdErr = nbdEIO
				}
				s.ReadOps.Add(1)
				if nbdErr != 0 {
					buf = nil
				}
				s.BytesRead.Add(int64(len(buf)))
				reply(handle, nbdErr, buf)
				s.putBuf(bp) // reply copied the payload onto the wire
			})

		case cmdWrite:
			bp := s.getBuf(length)
			if _, err := io.ReadFull(conn, *bp); err != nil {
				s.putBuf(bp)
				return err
			}
			dispatch(func() {
				buf := *bp
				var nbdErr uint32
				switch {
				case exp.ReadOnly:
					nbdErr = nbdEPERM
				case int64(offset)+int64(length) > exp.Device.Size():
					nbdErr = nbdEINVAL
				default:
					if _, err := exp.Device.WriteAt(buf, int64(offset)); err != nil {
						nbdErr = nbdEIO
					} else {
						s.BytesWritten.Add(int64(len(buf)))
					}
				}
				s.WriteOps.Add(1)
				reply(handle, nbdErr, nil)
				s.putBuf(bp)
			})

		case cmdFlush:
			dispatch(func() {
				var nbdErr uint32
				if err := exp.Device.Sync(); err != nil {
					nbdErr = nbdEIO
				}
				s.FlushOps.Add(1)
				reply(handle, nbdErr, nil)
			})

		case cmdDisc:
			return nil

		case cmdTrim:
			// Discard is advisory; acknowledge without action.
			reply(handle, 0, nil)

		default:
			reply(handle, nbdEINVAL, nil)
		}
	}
}
