// Package cloudsim is the integration the paper's conclusion points at: the
// VMI-cache machinery wired into a cloud's control plane. It simulates an
// IaaS cloud over time — Poisson VM arrivals over a Zipf image mix,
// placement by the §3.4 cache-aware scheduler, cache location decided by
// §6's Algorithm 1 (local disk, storage memory, or cold creation), boot
// costs charged against the calibrated link and disk models of the
// evaluation harness — and reports the boot-time distribution the cloud's
// users would see.
//
// Where internal/cluster replays every block of one simultaneous boot
// storm, cloudsim works at whole-boot granularity over hours of simulated
// operation: per boot it charges the working-set transfer against the
// shared storage link (and the storage disk for cold misses), so boot
// storms still contend realistically.
package cloudsim

import (
	"fmt"
	"math/rand"
	"time"

	"vmicache/internal/boot"
	"vmicache/internal/core"
	"vmicache/internal/metrics"
	"vmicache/internal/sched"
	"vmicache/internal/sim"
	"vmicache/internal/simdisk"
	"vmicache/internal/simnet"
)

// Scheme selects how the cloud provisions VM disks.
type Scheme int

// Provisioning schemes.
const (
	// SchemeQCOW2 is the baseline: every boot reads its working set from
	// the storage node (disk + network).
	SchemeQCOW2 Scheme = iota

	// SchemeVMICache runs Algorithm 1 with per-node cache pools and a
	// storage-memory cache pool.
	SchemeVMICache
)

// String names the scheme.
func (s Scheme) String() string {
	if s == SchemeVMICache {
		return "vmi-cache"
	}
	return "qcow2"
}

// Params configures a cloud simulation.
type Params struct {
	Seed int64

	// Cluster shape.
	Nodes      int
	NodeCPU    int
	NodeMem    int64
	NodeCache  int64 // per-node cache pool budget (bytes)
	StorageMem int64 // storage-node cache pool budget (bytes)

	// Workload: Poisson arrivals at Rate VMs/second over a Zipf(S) mix
	// of VMIs, exponential lifetimes with the given mean, for Duration
	// of simulated time.
	Rate         float64
	VMIs         int
	ZipfS        float64
	MeanLifetime time.Duration
	Duration     time.Duration

	// VM sizing.
	VMCPU int
	VMMem int64

	// Scheme and scheduling.
	Scheme     Scheme
	Policy     sched.Policy
	CacheAware bool

	// Guest profile: supplies the working set each boot transfers and
	// the uncontended boot time (think + fast reads).
	Profile boot.Profile

	// Network of the storage link (defaults to 1 GbE).
	Network simnet.LinkParams
}

// Result summarises a simulation.
type Result struct {
	Params Params

	Arrived   int
	Completed int
	Rejected  int

	// Boot-time distribution (seconds) over completed boots.
	Boots metrics.Sample

	// Boot-path mix.
	WarmLocal  int
	WarmRemote int
	Cold       int

	// Cache economics.
	NodeEvictions    int
	StorageEvictions int
	StorageMemUsed   int64

	// Storage pressure.
	LinkUtilization float64
	DiskUtilization float64
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s aware=%v: %d boots, mean=%.1fs p95=%.1fs (local=%d remote=%d cold=%d, rejected=%d)",
		r.Params.Scheme, r.Params.Policy, r.Params.CacheAware,
		r.Completed, r.Boots.Mean(), r.Boots.Quantile(0.95),
		r.WarmLocal, r.WarmRemote, r.Cold, r.Rejected)
}

// Run executes the simulation.
func Run(p Params) (*Result, error) {
	if p.Nodes <= 0 || p.Rate <= 0 || p.VMIs <= 0 || p.Duration <= 0 {
		return nil, fmt.Errorf("cloudsim: invalid params %+v", p)
	}
	if p.Network.Bandwidth == 0 {
		p.Network = simnet.GbE()
	}
	if p.ZipfS <= 1 {
		p.ZipfS = 1.2
	}

	eng := sim.New(p.Seed)
	link := simnet.NewLink(eng, p.Network)
	disk := simdisk.NewDisk(eng, "storage-disk", simdisk.DAS4StorageRAID())
	pageCache := simdisk.NewPageCache(200*p.Profile.UniqueReadBytes, 64<<10)

	s := sched.New(p.Policy, p.CacheAware)
	for i := 0; i < p.Nodes; i++ {
		s.AddNode(sched.NewNode(fmt.Sprintf("node-%02d", i), p.NodeCPU, p.NodeMem, p.NodeCache))
	}
	storagePool := core.NewPool(p.StorageMem)

	res := &Result{Params: p}
	ws := p.Profile.UniqueReadBytes
	cacheSize := ws + ws/10 // Table 2: working set + metadata
	thinkTime := time.Duration(float64(p.Profile.UncontendedBoot) * (1 - p.Profile.ReadWaitFraction))
	// Remote boots issue one synchronous request per guest read; their
	// serial per-request latency dominates slow networks. Count the
	// profile's reads once.
	var reqCount int64
	for _, op := range boot.Generate(p.Profile).Ops {
		if op.Kind == boot.Read {
			reqCount++
		}
	}
	perReqLat := time.Duration(reqCount) * p.Network.PerRequest

	rnd := eng.Rand()
	zipf := newZipf(eng, p.ZipfS, p.VMIs)

	// bootVM charges one boot and returns when the VM is "up".
	bootVM := func(proc *sim.Proc, node *sched.Node, vmi string) {
		switch {
		case p.Scheme == SchemeVMICache && node.CachePool().Lookup(vmi):
			// Algorithm 1 branch 1: local warm cache. Local reads
			// only; no shared resources.
			res.WarmLocal++
			proc.Sleep(p.Profile.UncontendedBoot)

		case p.Scheme == SchemeVMICache && storagePool.Lookup(vmi):
			// Branch 2: chain to the storage-memory cache: the
			// working set crosses the network request by request,
			// but no disk is involved.
			res.WarmRemote++
			link.Transfer(proc, ws)
			proc.Sleep(thinkTime + perReqLat)
			// The node keeps the new local cache for next time.
			ev, _ := node.CachePool().Add(vmi, cacheSize)
			res.NodeEvictions += len(ev)

		default:
			// Branch 3 (or plain QCOW2): cold boot from the base
			// image — page-cache/disk plus the network.
			res.Cold++
			hit, miss := pageCache.Touch("base-"+vmi, 0, ws)
			if miss > 0 {
				disk.ReadBatch(proc, miss, miss/(64<<10)+1, true)
			}
			_ = hit
			link.Transfer(proc, ws)
			proc.Sleep(thinkTime + perReqLat)
			if p.Scheme == SchemeVMICache {
				ev, _ := node.CachePool().Add(vmi, cacheSize)
				res.NodeEvictions += len(ev)
				// Copy the cache to storage memory on shutdown
				// per Algorithm 1; modelled here at boot end
				// (the transfer is off the user's critical
				// path, §5.1).
				evs, ok := storagePool.Add(vmi, cacheSize)
				if ok {
					res.StorageEvictions += len(evs)
				}
			}
		}
	}

	// Arrival process.
	vmSeq := 0
	var schedule func()
	schedule = func() {
		gap := time.Duration(rnd.ExpFloat64() / p.Rate * float64(time.Second))
		eng.At(gap, func() {
			if eng.Now() > p.Duration {
				return
			}
			vmSeq++
			id := fmt.Sprintf("vm-%d", vmSeq)
			vmi := fmt.Sprintf("vmi-%d", zipf())
			res.Arrived++
			dec, err := s.Schedule(sched.VMSpec{ID: id, VMI: vmi, CPU: p.VMCPU, Mem: p.VMMem})
			if err != nil {
				res.Rejected++
			} else {
				eng.Go(id, func(proc *sim.Proc) {
					start := proc.Now()
					bootVM(proc, dec.Node, vmi)
					res.Boots.Add((proc.Now() - start).Seconds())
					res.Completed++
					// Lifetime, then release.
					life := time.Duration(rnd.ExpFloat64() * float64(p.MeanLifetime))
					proc.Sleep(life)
					s.Release(id) //nolint:errcheck // id was placed above
				})
			}
			schedule()
		})
	}
	schedule()

	if err := eng.Run(); err != nil {
		return nil, err
	}
	res.StorageMemUsed = storagePool.Used()
	res.LinkUtilization = link.Queue().Utilization()
	res.DiskUtilization = disk.Queue().Utilization()
	return res, nil
}

// newZipf returns a deterministic Zipf sampler over [0, n) using the
// engine's RNG ("popular VMIs in public clouds", §2.1).
func newZipf(eng *sim.Engine, s float64, n int) func() uint64 {
	if n <= 1 {
		return func() uint64 { return 0 }
	}
	z := rand.NewZipf(eng.Rand(), s, 1, uint64(n-1))
	return z.Uint64
}
