package cloudsim

import (
	"testing"
	"time"

	"vmicache/internal/boot"
	"vmicache/internal/sched"
)

// testParams returns a modest cloud: 16 nodes, steady arrivals over a
// skewed image mix, scaled CentOS boots.
func testParams(scheme Scheme, aware bool) Params {
	return Params{
		Seed:         99,
		Nodes:        16,
		NodeCPU:      8,
		NodeMem:      24 << 30,
		NodeCache:    400 << 20, // ~4 caches per node: placement matters
		StorageMem:   16 << 30,
		Rate:         0.5, // one VM every 2s on average
		VMIs:         24,
		ZipfS:        1.3,
		MeanLifetime: 5 * time.Minute,
		Duration:     time.Hour,
		VMCPU:        1,
		VMMem:        2 << 30,
		Scheme:       scheme,
		Policy:       sched.Striping,
		CacheAware:   aware,
		Profile:      boot.CentOS,
	}
}

func TestCloudRunsAndAccounts(t *testing.T) {
	r, err := Run(testParams(SchemeVMICache, true))
	if err != nil {
		t.Fatal(err)
	}
	if r.Arrived < 1000 {
		t.Fatalf("arrived = %d, expected ~1800 over an hour at 0.5/s", r.Arrived)
	}
	if r.Completed+r.Rejected != r.Arrived {
		t.Fatalf("accounting: %d completed + %d rejected != %d arrived",
			r.Completed, r.Rejected, r.Arrived)
	}
	if r.WarmLocal+r.WarmRemote+r.Cold != r.Completed {
		t.Fatalf("boot-path mix does not sum: %d+%d+%d != %d",
			r.WarmLocal, r.WarmRemote, r.Cold, r.Completed)
	}
	if r.Boots.N() != r.Completed {
		t.Fatalf("boot samples = %d, completed = %d", r.Boots.N(), r.Completed)
	}
	if r.StorageMemUsed <= 0 || r.StorageMemUsed > 16<<30 {
		t.Fatalf("storage mem used = %d", r.StorageMemUsed)
	}
	if r.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestCloudDeterminism(t *testing.T) {
	a, err := Run(testParams(SchemeVMICache, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testParams(SchemeVMICache, true))
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Boots.Mean() != b.Boots.Mean() ||
		a.WarmLocal != b.WarmLocal || a.Cold != b.Cold {
		t.Fatalf("nondeterministic: %s vs %s", a, b)
	}
}

func TestCloudCachesBeatQCOW2(t *testing.T) {
	q, err := Run(testParams(SchemeQCOW2, false))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(testParams(SchemeVMICache, true))
	if err != nil {
		t.Fatal(err)
	}
	// With a skewed mix and steady churn, nearly every boot finds a warm
	// cache somewhere; mean boot time must drop markedly.
	if c.Boots.Mean() >= q.Boots.Mean() {
		t.Fatalf("caches did not help: %.1fs vs %.1fs", c.Boots.Mean(), q.Boots.Mean())
	}
	warmRatio := float64(c.WarmLocal+c.WarmRemote) / float64(c.Completed)
	if warmRatio < 0.8 {
		t.Fatalf("warm ratio only %.2f", warmRatio)
	}
	// QCOW2 is all cold.
	if q.WarmLocal+q.WarmRemote != 0 {
		t.Fatal("QCOW2 scheme produced warm boots")
	}
	// Tail latency improves at least as much as the mean.
	if c.Boots.Quantile(0.95) >= q.Boots.Quantile(0.95) {
		t.Fatalf("p95 did not improve: %.1f vs %.1f",
			c.Boots.Quantile(0.95), q.Boots.Quantile(0.95))
	}
}

func TestCloudCacheAwareBeatsOblivious(t *testing.T) {
	obl, err := Run(testParams(SchemeVMICache, false))
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Run(testParams(SchemeVMICache, true))
	if err != nil {
		t.Fatal(err)
	}
	// Cache-awareness steers repeats onto nodes with local caches: more
	// local (free) boots.
	lo := float64(obl.WarmLocal) / float64(obl.Completed)
	la := float64(aware.WarmLocal) / float64(aware.Completed)
	if la <= lo {
		t.Fatalf("cache-aware local ratio %.2f <= oblivious %.2f", la, lo)
	}
	if aware.Boots.Mean() > obl.Boots.Mean() {
		t.Fatalf("cache-aware mean boot %.1fs worse than oblivious %.1fs",
			aware.Boots.Mean(), obl.Boots.Mean())
	}
}

func TestCloudBootStormContention(t *testing.T) {
	// Crank the arrival rate: QCOW2 boots queue on the shared link and
	// the boot-time tail explodes; the cache scheme absorbs the storm.
	storm := func(scheme Scheme) *Result {
		p := testParams(scheme, true)
		p.Rate = 4 // a VM every 250 ms
		p.Duration = 45 * time.Minute
		p.Nodes = 64
		p.MeanLifetime = time.Minute
		r, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	q := storm(SchemeQCOW2)
	c := storm(SchemeVMICache)
	if q.LinkUtilization < 0.5 {
		t.Fatalf("storm did not stress the link: %v", q.LinkUtilization)
	}
	// Once caches exist, most boots are node-local and free: the median
	// separates dramatically and the cloud completes far more VMs. The
	// p95 separates less — warm-REMOTE boots still queue on the
	// saturated link, which is precisely why §6 recommends caches on
	// compute nodes when the network is the bottleneck.
	if c.Boots.Median() >= q.Boots.Median()/3 {
		t.Fatalf("cache scheme median %.1fs not clearly better than QCOW2 %.1fs",
			c.Boots.Median(), q.Boots.Median())
	}
	if c.Completed*2 < q.Completed*3 { // ≥1.5x throughput
		t.Fatalf("cache scheme completed %d, QCOW2 %d: throughput gain missing",
			c.Completed, q.Completed)
	}
	if c.Boots.Quantile(0.95) > q.Boots.Quantile(0.95) {
		t.Fatalf("cache scheme p95 %.1fs worse than QCOW2 %.1fs",
			c.Boots.Quantile(0.95), q.Boots.Quantile(0.95))
	}
}

func TestCloudValidation(t *testing.T) {
	if _, err := Run(Params{}); err == nil {
		t.Fatal("accepted empty params")
	}
	p := testParams(SchemeQCOW2, false)
	p.Rate = 0
	if _, err := Run(p); err == nil {
		t.Fatal("accepted zero rate")
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeQCOW2.String() != "qcow2" || SchemeVMICache.String() != "vmi-cache" {
		t.Fatal("scheme names")
	}
}
