// Package chain implements the cache placement logic of §6, including
// Algorithm 1 ("Chaining to a proper cache VMI"): given a compute node, the
// storage node and a base VMI, decide which cache image a new CoW image
// should chain to — preferring a local cache, then a storage-node cache
// (promoted from its disk to tmpfs if needed), and otherwise creating a new
// cache locally that is copied to the storage node on VM shutdown.
package chain

import (
	"fmt"

	"vmicache/internal/backend"
	"vmicache/internal/core"
	"vmicache/internal/qcow"
)

// ComputeNode is a compute node's view for the planner: its cache store
// (local disk) and the LRU pool bounding the space caches may use there.
type ComputeNode struct {
	// Name qualifies this node's store in the namespace.
	Name string
	// Store holds this node's cache images.
	Store backend.Store
	// Pool bounds the cache bytes on this node (§3.4 eviction).
	Pool *core.Pool
}

// StorageNode is the storage node's view: its memory (tmpfs) store with an
// LRU pool, plus its disk store where caches may also persist.
type StorageNode struct {
	MemName  string
	Mem      backend.Store
	MemPool  *core.Pool
	DiskName string
	Disk     backend.Store
}

// Planner executes Algorithm 1 against a namespace in which all the stores
// are registered.
type Planner struct {
	NS *core.Namespace

	// Quota and ClusterBits parameterise newly created caches.
	Quota       int64
	ClusterBits int
}

// Plan is the outcome of Algorithm 1 for one VM start.
type Plan struct {
	// Backing is the image the CoW image must chain to.
	Backing core.Locator

	// Created reports whether a new cache image was created.
	Created bool

	// Warm reports whether the returned image already holds the boot
	// working set.
	Warm bool

	// CopyToStorageOnShutdown is set when the freshly created cache must
	// be copied to the storage node's memory after the VM shuts down
	// (the last branch of Algorithm 1).
	CopyToStorageOnShutdown bool

	// PromotedFromDisk is set when a storage-disk cache was copied into
	// the storage node's tmpfs ("if Cache_base is on disk then copy
	// Base_cache to tmpfs").
	PromotedFromDisk bool
}

// cacheNameFor derives the conventional cache image name for a base VMI.
func cacheNameFor(base core.Locator) string { return base.Name + ".cache" }

// ChainFor runs Algorithm 1 for one (compute node, storage node, base VMI)
// triple and returns the plan. Side effects: it may promote a cache to the
// storage node's tmpfs and may create new cache images on the compute node.
func (pl *Planner) ChainFor(c *ComputeNode, s *StorageNode, base core.Locator) (*Plan, error) {
	cacheName := cacheNameFor(base)
	baseSize, err := core.VirtualSizeOf(pl.NS, base)
	if err != nil {
		return nil, fmt.Errorf("chain: sizing base %s: %w", base, err)
	}
	quota := pl.Quota
	if quota == 0 {
		quota = baseSize
	}
	bits := pl.ClusterBits
	if bits == 0 {
		bits = qcow.CacheClusterBits
	}

	// "if Cache_base exists in C then return Cache_base"
	if c.Pool.Lookup(cacheName) && core.Exists(pl.NS, core.Locator{Store: c.Name, Name: cacheName}) {
		return &Plan{
			Backing: core.Locator{Store: c.Name, Name: cacheName},
			Warm:    true,
		}, nil
	}

	// "if Cache_base exists in S then ..."
	inMem := core.Exists(pl.NS, core.Locator{Store: s.MemName, Name: cacheName})
	onDisk := core.Exists(pl.NS, core.Locator{Store: s.DiskName, Name: cacheName})
	if inMem || onDisk {
		plan := &Plan{Warm: true}
		if !inMem {
			// "if Cache_base is on disk then copy Base_cache to
			// tmpfs"
			moved, err := core.TransferCache(pl.NS,
				core.Locator{Store: s.MemName, Name: cacheName},
				core.Locator{Store: s.DiskName, Name: cacheName})
			if err != nil {
				return nil, fmt.Errorf("chain: promoting %s to tmpfs: %w", cacheName, err)
			}
			s.MemPool.Add(cacheName, moved) //nolint:errcheck // pool eviction side effects only
			plan.PromotedFromDisk = true
		} else {
			s.MemPool.Lookup(cacheName) // refresh recency
		}
		// "Create NewCache_base on C; Chain NewCache_base to
		// Cache_base; return NewCache_base"
		newCache := core.Locator{Store: c.Name, Name: cacheName}
		err := core.CreateCache(pl.NS, newCache,
			core.Locator{Store: s.MemName, Name: cacheName}, baseSize, quota, bits)
		if err != nil {
			return nil, fmt.Errorf("chain: creating local cache over storage cache: %w", err)
		}
		pl.trackLocal(c, cacheName)
		plan.Backing = newCache
		plan.Created = true
		return plan, nil
	}

	// "Create Cache_base on C; Chain Cache_base to Base; Copy Cache_base
	// to S on VM shutdown; return Cache_base"
	newCache := core.Locator{Store: c.Name, Name: cacheName}
	if err := core.CreateCache(pl.NS, newCache, base, baseSize, quota, bits); err != nil {
		return nil, fmt.Errorf("chain: creating cold cache: %w", err)
	}
	pl.trackLocal(c, cacheName)
	return &Plan{
		Backing:                 newCache,
		Created:                 true,
		CopyToStorageOnShutdown: true,
	}, nil
}

// trackLocal registers a (possibly still cold) cache in the node's pool,
// evicting older cache files from the node's store when over budget.
func (pl *Planner) trackLocal(c *ComputeNode, cacheName string) {
	size, err := func() (int64, error) {
		st, err := pl.NS.Store(c.Name)
		if err != nil {
			return 0, err
		}
		return st.Stat(cacheName)
	}()
	if err != nil {
		return
	}
	if c.Pool.OnEvict == nil {
		store, serr := pl.NS.Store(c.Name)
		if serr == nil {
			c.Pool.OnEvict = func(name string, sz int64) {
				store.Remove(name) //nolint:errcheck // eviction is best-effort
			}
		}
	}
	c.Pool.Add(cacheName, size) //nolint:errcheck // eviction side effects only
}

// OnShutdown finalises a plan after the VM stops: if the plan called for it,
// the (now warm) cache is copied into the storage node's memory and
// registered in its pool. The compute node's pool entry is refreshed with
// the final size.
func (pl *Planner) OnShutdown(c *ComputeNode, s *StorageNode, base core.Locator, plan *Plan) error {
	cacheName := cacheNameFor(base)
	if st, err := pl.NS.Store(c.Name); err == nil {
		if size, err := st.Stat(cacheName); err == nil {
			c.Pool.Add(cacheName, size) //nolint:errcheck
		}
	}
	if !plan.CopyToStorageOnShutdown {
		return nil
	}
	moved, err := core.TransferCache(pl.NS,
		core.Locator{Store: s.MemName, Name: cacheName},
		core.Locator{Store: c.Name, Name: cacheName})
	if err != nil {
		return fmt.Errorf("chain: shutdown copy of %s: %w", cacheName, err)
	}
	if s.MemPool.OnEvict == nil {
		s.MemPool.OnEvict = func(name string, sz int64) {
			s.Mem.Remove(name) //nolint:errcheck
		}
	}
	s.MemPool.Add(cacheName, moved) //nolint:errcheck
	return nil
}

// Recommendation summarises §6's placement advice for a deployment.
type Recommendation struct {
	Placement string
	Reasons   []string
}

// Recommend returns the cache placement §6 argues for: with a network fast
// enough for the on-demand boot workload, storage-node memory alone is "the
// superior solution"; otherwise caches belong on both compute-node disks and
// storage memory, chained by Algorithm 1.
func Recommend(networkHandlesBootStorms bool) Recommendation {
	if networkHandlesBootStorms {
		return Recommendation{
			Placement: "storage-memory",
			Reasons: []string{
				"compute nodes reserve no disk space for caches",
				"fewer security concerns about cached VMI content on compute nodes",
				"storage memory used exactly for transferring VMI blocks",
				"a cache-aware scheduler can treat all compute nodes equally",
			},
		}
	}
	return Recommendation{
		Placement: "both (Algorithm 1)",
		Reasons: []string{
			"compute-node caches avoid the network bottleneck",
			"storage-memory caches still avoid the storage-disk bottleneck for nodes without a local cache",
		},
	}
}
