package chain

import (
	"strings"
	"testing"

	"vmicache/internal/backend"
	"vmicache/internal/boot"
	"vmicache/internal/core"
	"vmicache/internal/qcow"
)

const mb = 1 << 20

type fixture struct {
	ns      *core.Namespace
	compute *ComputeNode
	storage *StorageNode
	base    core.Locator
	planner *Planner
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	nfs := backend.NewMemStore()
	nodeDisk := backend.NewMemStore()
	sMem := backend.NewMemStore()

	ns := core.NewNamespace("nfs", nfs)
	ns.Register("node0", nodeDisk)
	ns.Register("smem", sMem)

	base := core.Locator{Store: "nfs", Name: "centos.img"}
	content := boot.PatternSource{Seed: 5, N: 8 * mb}
	if err := core.CreateBase(ns, base, 8*mb, 16, content); err != nil {
		t.Fatal(err)
	}
	return &fixture{
		ns: ns,
		compute: &ComputeNode{
			Name: "node0", Store: nodeDisk, Pool: core.NewPool(64 * mb),
		},
		storage: &StorageNode{
			MemName: "smem", Mem: sMem, MemPool: core.NewPool(64 * mb),
			DiskName: "nfs", Disk: nfs,
		},
		base:    base,
		planner: &Planner{NS: ns, Quota: 4 * mb},
	}
}

// bootFrom opens the planned chain under a fresh CoW and replays some reads
// to warm whatever cache the plan returned.
func (f *fixture) bootFrom(t *testing.T, plan *Plan, cowName string) {
	t.Helper()
	cow := core.Locator{Store: "node0", Name: cowName}
	if err := core.CreateCoW(f.ns, cow, plan.Backing, 8*mb, 0); err != nil {
		t.Fatal(err)
	}
	c, err := core.OpenChain(f.ns, cow, core.ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	if _, err := core.Warm(c, []core.Span{{Off: 0, Len: 256 << 10}, {Off: 2 * mb, Len: 128 << 10}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithm1ColdStart(t *testing.T) {
	f := newFixture(t)
	plan, err := f.planner.ChainFor(f.compute, f.storage, f.base)
	if err != nil {
		t.Fatal(err)
	}
	// No cache anywhere: last branch — create locally, copy to S later.
	if !plan.Created || plan.Warm || !plan.CopyToStorageOnShutdown {
		t.Fatalf("cold plan: %+v", plan)
	}
	if plan.Backing.Store != "node0" || !strings.HasSuffix(plan.Backing.Name, ".cache") {
		t.Fatalf("backing: %v", plan.Backing)
	}
	f.bootFrom(t, plan, "vm0.cow")
	if err := f.planner.OnShutdown(f.compute, f.storage, f.base, plan); err != nil {
		t.Fatal(err)
	}
	// The warm cache must now exist in the storage node's memory.
	if !core.Exists(f.ns, core.Locator{Store: "smem", Name: "centos.img.cache"}) {
		t.Fatal("cache not copied to storage memory on shutdown")
	}
	if !f.storage.MemPool.Contains("centos.img.cache") {
		t.Fatal("storage pool not tracking the cache")
	}
}

func TestAlgorithm1LocalHit(t *testing.T) {
	f := newFixture(t)
	plan1, err := f.planner.ChainFor(f.compute, f.storage, f.base)
	if err != nil {
		t.Fatal(err)
	}
	f.bootFrom(t, plan1, "vm0.cow")
	if err := f.planner.OnShutdown(f.compute, f.storage, f.base, plan1); err != nil {
		t.Fatal(err)
	}

	// Second VM on the same node: first branch — reuse the local cache.
	plan2, err := f.planner.ChainFor(f.compute, f.storage, f.base)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Created || !plan2.Warm || plan2.CopyToStorageOnShutdown {
		t.Fatalf("local-hit plan: %+v", plan2)
	}
	if plan2.Backing.Store != "node0" {
		t.Fatalf("backing should be local: %v", plan2.Backing)
	}
	// And it must be bootable with zero base traffic for warm ranges.
	var counters backend.Counters
	cow := core.Locator{Store: "node0", Name: "vm1.cow"}
	if err := core.CreateCoW(f.ns, cow, plan2.Backing, 8*mb, 0); err != nil {
		t.Fatal(err)
	}
	c, err := core.OpenChain(f.ns, cow, core.ChainOpts{
		WrapFile: func(loc core.Locator, fl backend.File, depth int) backend.File {
			if loc.Name == "centos.img" {
				return backend.NewCountingFile(fl, &counters)
			}
			return fl
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	counters.Reset()
	buf := make([]byte, 256<<10)
	if err := backend.ReadFull(c, buf, 0); err != nil {
		t.Fatal(err)
	}
	if counters.ReadBytes.Load() != 0 {
		t.Fatalf("warm local cache pulled %d bytes from base", counters.ReadBytes.Load())
	}
}

func TestAlgorithm1StorageHitCreatesChainedCache(t *testing.T) {
	f := newFixture(t)
	// Warm the storage-memory cache via node0.
	plan1, err := f.planner.ChainFor(f.compute, f.storage, f.base)
	if err != nil {
		t.Fatal(err)
	}
	f.bootFrom(t, plan1, "vm0.cow")
	if err := f.planner.OnShutdown(f.compute, f.storage, f.base, plan1); err != nil {
		t.Fatal(err)
	}

	// A different node without a local cache: second branch.
	node1Disk := backend.NewMemStore()
	f.ns.Register("node1", node1Disk)
	node1 := &ComputeNode{Name: "node1", Store: node1Disk, Pool: core.NewPool(64 * mb)}
	plan2, err := f.planner.ChainFor(node1, f.storage, f.base)
	if err != nil {
		t.Fatal(err)
	}
	if !plan2.Created || !plan2.Warm || plan2.CopyToStorageOnShutdown {
		t.Fatalf("storage-hit plan: %+v", plan2)
	}
	if plan2.Backing.Store != "node1" {
		t.Fatalf("new cache should live on node1: %v", plan2.Backing)
	}
	// The new local cache chains to the storage-memory cache: opening the
	// chain resolves node1 cache -> smem cache -> base.
	cow := core.Locator{Store: "node1", Name: "vm2.cow"}
	if err := core.CreateCoW(f.ns, cow, plan2.Backing, 8*mb, 0); err != nil {
		t.Fatal(err)
	}
	c, err := core.OpenChain(f.ns, cow, core.ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()         //nolint:errcheck
	if len(c.Images) != 4 { // cow -> node1 cache -> smem cache -> base
		t.Fatalf("chain depth = %d, want 4 (%v)", len(c.Images), c.Locators)
	}
	if !c.Images[1].IsCache() || !c.Images[2].IsCache() {
		t.Fatal("expected two cache images in the chain")
	}
	// Warm content flows down without touching the base.
	var counters backend.Counters
	c.Close() //nolint:errcheck
	c, err = core.OpenChain(f.ns, cow, core.ChainOpts{
		WrapFile: func(loc core.Locator, fl backend.File, depth int) backend.File {
			if loc.Name == "centos.img" {
				return backend.NewCountingFile(fl, &counters)
			}
			return fl
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	counters.Reset()
	buf := make([]byte, 128<<10)
	if err := backend.ReadFull(c, buf, 0); err != nil {
		t.Fatal(err)
	}
	if counters.ReadBytes.Load() != 0 {
		t.Fatalf("storage-cache-backed read pulled %d bytes from base", counters.ReadBytes.Load())
	}
	// Verify content correctness end to end.
	want := boot.PatternSource{Seed: 5, N: 8 * mb}.At(0, 128<<10)
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("content mismatch at byte %d", i)
		}
	}
}

func TestAlgorithm1PromotesDiskCacheToTmpfs(t *testing.T) {
	f := newFixture(t)
	// Place a warm cache on the storage node's DISK (nfs store).
	diskCache := core.Locator{Store: "nfs", Name: "centos.img.cache"}
	if err := core.CreateCache(f.ns, diskCache, f.base, 8*mb, 4*mb, 0); err != nil {
		t.Fatal(err)
	}
	c, err := core.OpenChain(f.ns, diskCache, core.ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Warm(c, []core.Span{{Off: 0, Len: 64 << 10}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	plan, err := f.planner.ChainFor(f.compute, f.storage, f.base)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.PromotedFromDisk {
		t.Fatalf("plan did not promote: %+v", plan)
	}
	if !core.Exists(f.ns, core.Locator{Store: "smem", Name: "centos.img.cache"}) {
		t.Fatal("cache not in tmpfs after promotion")
	}
	if !plan.Created || plan.Backing.Store != "node0" {
		t.Fatalf("plan: %+v", plan)
	}
}

func TestPlannerDefaultsAndQuota(t *testing.T) {
	f := newFixture(t)
	f.planner.Quota = 0       // default: base size
	f.planner.ClusterBits = 0 // default: 512 B
	plan, err := f.planner.ChainFor(f.compute, f.storage, f.base)
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.ns.Store(plan.Backing.Store)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := st.Open(plan.Backing.Name, true)
	if err != nil {
		t.Fatal(err)
	}
	img, err := qcow.Open(fl, qcow.OpenOpts{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if img.ClusterSize() != 512 {
		t.Fatalf("default cache cluster size = %d", img.ClusterSize())
	}
	if img.Quota() != 8*mb {
		t.Fatalf("default quota = %d", img.Quota())
	}
}

func TestNodePoolEvictsOldCaches(t *testing.T) {
	f := newFixture(t)
	f.compute.Pool = core.NewPool(5 << 10) // room for ~two empty caches
	// Create caches for three bases; pool must evict.
	for i, name := range []string{"a.img", "b.img", "c.img"} {
		base := core.Locator{Store: "nfs", Name: name}
		if err := core.CreateBase(f.ns, base, mb, 16, boot.PatternSource{Seed: int64(i), N: mb}); err != nil {
			t.Fatal(err)
		}
		if _, err := f.planner.ChainFor(f.compute, f.storage, base); err != nil {
			t.Fatal(err)
		}
	}
	if f.compute.Pool.Len() >= 3 {
		t.Fatalf("pool kept all %d caches despite tiny budget", f.compute.Pool.Len())
	}
	// Evicted cache files must be gone from the node store.
	var present int
	for _, name := range []string{"a.img.cache", "b.img.cache", "c.img.cache"} {
		if core.Exists(f.ns, core.Locator{Store: "node0", Name: name}) {
			present++
		}
	}
	if present != f.compute.Pool.Len() {
		t.Fatalf("store has %d caches, pool tracks %d", present, f.compute.Pool.Len())
	}
}

func TestRecommendation(t *testing.T) {
	fast := Recommend(true)
	if fast.Placement != "storage-memory" || len(fast.Reasons) != 4 {
		t.Fatalf("fast-network recommendation: %+v", fast)
	}
	slow := Recommend(false)
	if slow.Placement == fast.Placement || len(slow.Reasons) == 0 {
		t.Fatalf("slow-network recommendation: %+v", slow)
	}
}
