package rblock

import (
	"time"
)

// Backoff generates a capped exponential delay schedule for connection
// retries: attempt 0 waits Base, each further attempt doubles, and no delay
// exceeds Max. The zero value means "no waiting" (every Delay is 0), which
// degrades DialRetry to an immediate-retry loop — useful in tests.
type Backoff struct {
	// Base is the first retry delay (attempt 0).
	Base time.Duration
	// Max caps the delay; 0 means uncapped.
	Max time.Duration
}

// DefaultBackoff is the schedule used by cache-manager peer dials and the
// swarm fetcher: 50ms, 100ms, 200ms, ... capped at 2s.
var DefaultBackoff = Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}

// Delay reports how long to wait before retry number attempt (0-based).
// Negative attempts wait Base.
func (b Backoff) Delay(attempt int) time.Duration {
	d := b.Base
	if d <= 0 {
		return 0
	}
	for i := 0; i < attempt; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			return b.Max
		}
		if d < 0 { // overflow far past any sane cap
			if b.Max > 0 {
				return b.Max
			}
			return 1<<63 - 1
		}
	}
	if b.Max > 0 && d > b.Max {
		return b.Max
	}
	return d
}

// DialRetry dials addr up to attempts times (at least once), sleeping
// b.Delay(i) between tries, and returns the first successful client or the
// last dial error. sleep, when non-nil, replaces time.Sleep so tests can
// observe the schedule without waiting; pass nil for real sleeping.
func DialRetry(addr string, rwsize, attempts int, b Backoff, sleep func(time.Duration)) (*Client, error) {
	if attempts < 1 {
		attempts = 1
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if d := b.Delay(i - 1); d > 0 {
				sleep(d)
			}
		}
		c, err := Dial(addr, rwsize)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, lastErr
}
