// Package rblock implements a small remote block-file protocol over TCP:
// the repository's stand-in for the NFS export between the storage node and
// the compute nodes (§5). A server exports a backend.Store; clients open
// files by name and get a backend.File whose reads and writes travel over
// the network in rwsize-bounded segments — the same access pattern the
// paper tuned NFS for ("we have tuned the NFS rwsize to 64KB ... as the
// default rwsize of 1MB does not match well with the small-sized read
// requests during boot time").
package rblock

import (
	"encoding/binary"
	"errors"
	"io"
	"os"
	"sync"
)

// Protocol constants.
const (
	// Magic starts every frame ("RBLK").
	Magic = 0x52424c4b

	// DefaultRWSize is the default maximum transfer segment, matching
	// the paper's tuned NFS rwsize.
	DefaultRWSize = 64 << 10

	// MaxNameLen bounds export names.
	MaxNameLen = 4096

	// MaxZeroCopySegment caps read segments on descriptor-backed read-only
	// handles. The rwsize cap exists to bound the copy path's pooled
	// buffers; a zero-copy reply is (fd, off, len) and needs no buffer at
	// all, so the server advertises this larger cap at open and bulk cache
	// pulls move 16x fewer frames. Kept at 1 MiB — not maxPayload — so
	// multi-megabyte reads still split into several pipelined segments and
	// the server's sendfile overlaps the client's copy-out. Must stay
	// below maxPayload.
	MaxZeroCopySegment = 1 << 20

	// maxPayload bounds any single frame's payload (sanity limit).
	maxPayload = 8 << 20
)

// Op identifies a request/response type.
type Op uint8

// Protocol operations; responses reuse the request op with the reply flag.
const (
	OpOpen Op = iota + 1
	OpRead
	OpWrite
	OpSync
	OpTruncate
	OpStat
	OpClose

	// OpMap queries the chunk-validity map of an export by name (no open
	// handle needed): the request payload is the export name, the reply
	// payload an opaque encoded map (internal/swarm wire format). Servers
	// without a map source answer StatusBadRequest; exports that are not
	// currently advertised answer StatusNotFound.
	OpMap

	// OpManifest queries the chunk manifest of a published export by name
	// (no open handle needed): the request payload is the export name, the
	// reply payload an opaque encoded manifest (internal/dedup wire
	// format). OpChunk fetches one content-addressed chunk: the request
	// payload is its 32-byte SHA-256, the reply payload the compressed
	// length-framed blob with the raw length echoed in aux. Servers
	// without a chunk source answer StatusBadRequest; unknown names or
	// hashes answer StatusNotFound.
	OpManifest
	OpChunk

	// OpChunkBatch fetches a run of content-addressed chunks in one round
	// trip: the request payload is N concatenated 32-byte hashes, the reply
	// payload N' records of [u32 compLen][compressed length-framed blob]
	// with the record count echoed in aux. The server serves the longest
	// prefix it holds that fits in one frame: a missing hash after at least
	// one served record ends the reply early (the client re-requests the
	// tail), a missing first hash answers StatusNotFound. Servers without a
	// chunk source — or older ones that predate the op — answer
	// StatusBadRequest, and clients fall back to per-chunk OpChunk.
	OpChunkBatch

	// replyFlag marks response frames.
	replyFlag = 0x80
)

// MaxBatchChunks bounds the hashes one OpChunkBatch request may carry.
const MaxBatchChunks = 256

// HashLen is the content-hash size OpChunk requests carry (SHA-256).
const HashLen = 32

// Status codes.
const (
	StatusOK uint32 = iota
	StatusNotFound
	StatusIO
	StatusBadRequest
	StatusReadOnly

	// StatusUnavail marks a request the server refuses *right now* but
	// that may succeed later or elsewhere — a swarm chunk read over a
	// span the serving cache has not warmed yet. Clients treat it as a
	// per-request failure (reassign to another peer), never as a broken
	// connection.
	StatusUnavail
)

// Errors surfaced by the client.
var (
	ErrBadFrame   = errors.New("rblock: malformed frame")
	ErrNotFound   = errors.New("rblock: no such file")
	ErrRemoteIO   = errors.New("rblock: remote I/O error")
	ErrBadRequest = errors.New("rblock: bad request")
	ErrReadOnly   = errors.New("rblock: file is read-only")
	ErrUnavail    = errors.New("rblock: requested range not available yet")
	ErrClosed     = errors.New("rblock: connection closed")

	// ErrClientBroken marks a client whose connection desynchronised (a
	// mid-response read error, a timeout, or a protocol violation). Every
	// call after the break fails fast with this error instead of reading
	// from a stream whose framing can no longer be trusted.
	ErrClientBroken = errors.New("rblock: client broken")
)

func statusErr(s uint32) error {
	switch s {
	case StatusOK:
		return nil
	case StatusNotFound:
		return ErrNotFound
	case StatusBadRequest:
		return ErrBadRequest
	case StatusReadOnly:
		return ErrReadOnly
	case StatusUnavail:
		return ErrUnavail
	default:
		return ErrRemoteIO
	}
}

// frame is the wire unit. Layout (big-endian):
//
//	magic  u32
//	op     u8
//	flags  u8  (bit0: read-only open)
//	status u16 (responses; low 16 bits of status code)
//	id     u32 (request id; responses echo it, enabling pipelining)
//	handle u32
//	offset u64
//	length u32 (payload length)
//	aux    u64 (sizes: open/stat result, truncate target)
//	payload [length]bytes
const frameHeaderLen = 4 + 1 + 1 + 2 + 4 + 4 + 8 + 4 + 8

type frame struct {
	op      Op
	flags   uint8
	status  uint32
	id      uint32
	handle  uint32
	offset  uint64
	aux     uint64
	payload []byte

	// vec carries extra payload segments appended after payload on the
	// wire without copying them into one slice (reply-side scatter/gather:
	// OpChunkBatch sends its length-prefix slab in payload and the blob
	// bodies here). Only outgoing frames use it; readFrame always yields a
	// contiguous payload.
	vec [][]byte

	// pooled, when non-nil, is the pool-owned backing array of payload, and
	// ppool is the payloadPool that owns it; putFrame returns the buffer
	// there once the payload has been consumed (copied onto the wire or into
	// the caller's buffer). Never sent on the wire.
	pooled *[]byte
	ppool  *payloadPool

	// file, when non-nil, is a zero-copy payload segment: fileLen bytes
	// starting at fileOff travel on the wire after payload and vec, pushed
	// by sendfile(2) instead of a user-space copy (reply-side only; the
	// receiver sees one contiguous payload either way). done, when non-nil,
	// runs in putFrame once the frame has left the wire (or been abandoned
	// on error) — it releases the handle reference that pins file open, so
	// a concurrent OpClose or eviction can never close the descriptor while
	// the reply is still queued.
	file    *os.File
	fileOff int64
	fileLen int64
	done    func()
}

// payloadPool recycles payload buffers of a fixed nominal size (the
// connection's rwsize). Buffers are handed out and returned by pointer so
// recycling does not allocate a box per Put. Requests larger than the
// nominal size (jumbo zero-copy reads, rare control frames) fall back to
// plain allocation and are dropped on put, so the pool never accumulates
// oversized buffers.
type payloadPool struct {
	pool sync.Pool
	size int
}

func newPayloadPool(size int) *payloadPool {
	p := &payloadPool{size: size}
	p.pool.New = func() any {
		b := make([]byte, size)
		return &b
	}
	return p
}

// get returns a buffer with capacity for at least n bytes, len == cap.
func (p *payloadPool) get(n int) *[]byte {
	if n > p.size {
		b := make([]byte, n)
		return &b
	}
	return p.pool.Get().(*[]byte)
}

func (p *payloadPool) put(bp *[]byte) {
	if cap(*bp) == p.size {
		*bp = (*bp)[:p.size]
		p.pool.Put(bp)
	}
}

// framePool recycles frame structs across requests on both sides of the
// protocol; a pipelined stream allocates no frames in steady state.
var framePool = sync.Pool{New: func() any { return new(frame) }}

func getFrame() *frame { return framePool.Get().(*frame) }

// putFrame recycles f and, when its payload is pool-owned, the payload
// buffer too. The caller must be done with f.payload. A zero-copy frame's
// done hook runs here — putFrame is the single point every frame passes
// through, success or error path, so the pinned handle always unpins.
func putFrame(f *frame) {
	if f.done != nil {
		f.done()
	}
	if f.pooled != nil && f.ppool != nil {
		f.ppool.put(f.pooled)
	}
	*f = frame{}
	framePool.Put(f)
}

// encodeFrameHeader serialises f's fixed header into dst, which must be at
// least frameHeaderLen bytes.
func encodeFrameHeader(dst []byte, f *frame) {
	be := binary.BigEndian
	be.PutUint32(dst[0:], Magic)
	dst[4] = byte(f.op)
	dst[5] = f.flags
	be.PutUint16(dst[6:], uint16(f.status))
	be.PutUint32(dst[8:], f.id)
	be.PutUint32(dst[12:], f.handle)
	be.PutUint64(dst[16:], f.offset)
	be.PutUint32(dst[24:], uint32(f.payloadLen()))
	be.PutUint64(dst[28:], f.aux)
}

// payloadLen is the total wire payload: payload, every vec segment, and the
// zero-copy file segment.
func (f *frame) payloadLen() int {
	n := len(f.payload)
	for _, v := range f.vec {
		n += len(v)
	}
	return n + int(f.fileLen)
}

// readFrame deserialises one frame from r. The frame comes from framePool;
// when pp is non-nil the payload buffer comes from pp. hdr is caller-owned
// scratch of at least frameHeaderLen bytes (a stack array would escape
// through the io.Reader interface and cost one allocation per frame). The
// caller owns the result and recycles it with putFrame.
func readFrame(r io.Reader, pp *payloadPool, hdr []byte) (*frame, error) {
	hdr = hdr[:frameHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	be := binary.BigEndian
	if be.Uint32(hdr[0:]) != Magic {
		return nil, ErrBadFrame
	}
	f := getFrame()
	f.op = Op(hdr[4])
	f.flags = hdr[5]
	f.status = uint32(be.Uint16(hdr[6:]))
	f.id = be.Uint32(hdr[8:])
	f.handle = be.Uint32(hdr[12:])
	f.offset = be.Uint64(hdr[16:])
	f.aux = be.Uint64(hdr[28:])
	n := be.Uint32(hdr[24:])
	if n > maxPayload {
		putFrame(f)
		return nil, ErrBadFrame
	}
	if n > 0 {
		if pp != nil {
			f.pooled = pp.get(int(n))
			f.ppool = pp
			f.payload = (*f.pooled)[:n]
		} else {
			f.payload = make([]byte, n)
		}
		if _, err := io.ReadFull(r, f.payload); err != nil {
			putFrame(f)
			return nil, err
		}
	}
	return f, nil
}
