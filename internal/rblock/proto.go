// Package rblock implements a small remote block-file protocol over TCP:
// the repository's stand-in for the NFS export between the storage node and
// the compute nodes (§5). A server exports a backend.Store; clients open
// files by name and get a backend.File whose reads and writes travel over
// the network in rwsize-bounded segments — the same access pattern the
// paper tuned NFS for ("we have tuned the NFS rwsize to 64KB ... as the
// default rwsize of 1MB does not match well with the small-sized read
// requests during boot time").
package rblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// Magic starts every frame ("RBLK").
	Magic = 0x52424c4b

	// DefaultRWSize is the default maximum transfer segment, matching
	// the paper's tuned NFS rwsize.
	DefaultRWSize = 64 << 10

	// MaxNameLen bounds export names.
	MaxNameLen = 4096

	// maxPayload bounds any single frame's payload (sanity limit).
	maxPayload = 8 << 20
)

// Op identifies a request/response type.
type Op uint8

// Protocol operations; responses reuse the request op with the reply flag.
const (
	OpOpen Op = iota + 1
	OpRead
	OpWrite
	OpSync
	OpTruncate
	OpStat
	OpClose

	// replyFlag marks response frames.
	replyFlag = 0x80
)

// Status codes.
const (
	StatusOK uint32 = iota
	StatusNotFound
	StatusIO
	StatusBadRequest
	StatusReadOnly
)

// Errors surfaced by the client.
var (
	ErrBadFrame   = errors.New("rblock: malformed frame")
	ErrNotFound   = errors.New("rblock: no such file")
	ErrRemoteIO   = errors.New("rblock: remote I/O error")
	ErrBadRequest = errors.New("rblock: bad request")
	ErrReadOnly   = errors.New("rblock: file is read-only")
	ErrClosed     = errors.New("rblock: connection closed")

	// ErrClientBroken marks a client whose connection desynchronised (a
	// mid-response read error, a timeout, or a protocol violation). Every
	// call after the break fails fast with this error instead of reading
	// from a stream whose framing can no longer be trusted.
	ErrClientBroken = errors.New("rblock: client broken")
)

func statusErr(s uint32) error {
	switch s {
	case StatusOK:
		return nil
	case StatusNotFound:
		return ErrNotFound
	case StatusBadRequest:
		return ErrBadRequest
	case StatusReadOnly:
		return ErrReadOnly
	default:
		return ErrRemoteIO
	}
}

// frame is the wire unit. Layout (big-endian):
//
//	magic  u32
//	op     u8
//	flags  u8  (bit0: read-only open)
//	status u16 (responses; low 16 bits of status code)
//	id     u32 (request id; responses echo it, enabling pipelining)
//	handle u32
//	offset u64
//	length u32 (payload length)
//	aux    u64 (sizes: open/stat result, truncate target)
//	payload [length]bytes
const frameHeaderLen = 4 + 1 + 1 + 2 + 4 + 4 + 8 + 4 + 8

type frame struct {
	op      Op
	flags   uint8
	status  uint32
	id      uint32
	handle  uint32
	offset  uint64
	aux     uint64
	payload []byte

	// pooled, when non-nil, is the pool-owned backing array of payload; the
	// writer returns it to the server's buffer pool after the frame has been
	// serialised. Never sent on the wire.
	pooled *[]byte
}

// writeFrame serialises f to w.
func writeFrame(w io.Writer, f *frame) error {
	if len(f.payload) > maxPayload {
		return fmt.Errorf("%w: payload %d", ErrBadFrame, len(f.payload))
	}
	var hdr [frameHeaderLen]byte
	be := binary.BigEndian
	be.PutUint32(hdr[0:], Magic)
	hdr[4] = byte(f.op)
	hdr[5] = f.flags
	be.PutUint16(hdr[6:], uint16(f.status))
	be.PutUint32(hdr[8:], f.id)
	be.PutUint32(hdr[12:], f.handle)
	be.PutUint64(hdr[16:], f.offset)
	be.PutUint32(hdr[24:], uint32(len(f.payload)))
	be.PutUint64(hdr[28:], f.aux)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.payload) > 0 {
		if _, err := w.Write(f.payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame deserialises one frame from r.
func readFrame(r io.Reader) (*frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	be := binary.BigEndian
	if be.Uint32(hdr[0:]) != Magic {
		return nil, ErrBadFrame
	}
	f := &frame{
		op:     Op(hdr[4]),
		flags:  hdr[5],
		status: uint32(be.Uint16(hdr[6:])),
		id:     be.Uint32(hdr[8:]),
		handle: be.Uint32(hdr[12:]),
		offset: be.Uint64(hdr[16:]),
		aux:    be.Uint64(hdr[28:]),
	}
	n := be.Uint32(hdr[24:])
	if n > maxPayload {
		return nil, ErrBadFrame
	}
	if n > 0 {
		f.payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return nil, err
		}
	}
	return f, nil
}
