package rblock

// Tests for the sendfile serve path: byte-identity against the copy path,
// the fallback matrix (memory-backed store, writable handle, zero-copy off),
// eviction and OpClose racing queued zero-copy replies (the handle refcount
// keeping the descriptor alive), and a slow client forcing short sendfile
// returns mid-batch — all run under -race by make check.

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vmicache/internal/backend"
)

// newDirServer starts a zero-copy server over a DirStore holding one
// published (read-only) export with deterministic-random content.
func newDirServer(t *testing.T, size int, opts ServerOpts) (*backend.DirStore, string, *Server, []byte) {
	t.Helper()
	store, err := backend.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(101)).Read(data)
	f, err := store.Create("pub.img")
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.WriteFull(f, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, opts)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	return store, addr, srv, data
}

// TestServerReadZeroCopyIdentity proves reads through the sendfile path are
// byte-identical to the source, across sizes, offsets, and the EOF clamp,
// and that the zero-copy counters (not the fallback counter) advance.
func TestServerReadZeroCopyIdentity(t *testing.T) {
	const size = 1 << 20
	_, addr, srv, data := newDirServer(t, size, ServerOpts{ZeroCopy: true, ReadOnly: true})
	c := dial(t, addr, 0)
	rf, err := c.Open("pub.img", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ off, n int }{
		{0, 4096},
		{777, 60000},
		{size - 100, 100},
	} {
		buf := make([]byte, tc.n)
		if err := backend.ReadFull(rf, buf, int64(tc.off)); err != nil {
			t.Fatalf("read (%d,%d): %v", tc.off, tc.n, err)
		}
		if !bytes.Equal(buf, data[tc.off:tc.off+tc.n]) {
			t.Fatalf("read (%d,%d): mismatch", tc.off, tc.n)
		}
	}
	// Spanning read larger than rwsize: segmented, every segment zero-copy.
	got := make([]byte, size)
	if err := backend.ReadFull(rf, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("full read mismatch")
	}
	st := srv.stats.zcSegments.Load()
	if st == 0 || srv.stats.zcBytes.Load() == 0 {
		t.Fatalf("zero-copy counters did not advance: segments=%d", st)
	}
	if srv.stats.zcFallbacks.Load() != 0 {
		t.Fatalf("unexpected fallbacks: %d", srv.stats.zcFallbacks.Load())
	}
	// EOF clamp: a read straddling the end returns the short tail.
	tail := make([]byte, 4096)
	n, err := rf.ReadAt(tail, int64(size-1000))
	if n != 1000 {
		t.Fatalf("EOF clamp: n=%d err=%v", n, err)
	}
	if !bytes.Equal(tail[:1000], data[size-1000:]) {
		t.Fatal("EOF tail mismatch")
	}
}

// TestServerReadZeroCopyFallbacks drives the copy-path refusals: a
// memory-backed store has no descriptor (fallback counter advances), a
// writable handle is never zero-copy, and with the option off the counters
// stay dark.
func TestServerReadZeroCopyFallbacks(t *testing.T) {
	t.Run("memory-backed store", func(t *testing.T) {
		store, addr, srv := newServer(t, ServerOpts{ZeroCopy: true})
		f, err := store.Create("mem.img")
		if err != nil {
			t.Fatal(err)
		}
		seed := bytes.Repeat([]byte{0xA5}, 64<<10)
		if err := backend.WriteFull(f, seed, 0); err != nil {
			t.Fatal(err)
		}
		c := dial(t, addr, 0)
		rf, err := c.Open("mem.img", true)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(seed))
		if err := backend.ReadFull(rf, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, seed) {
			t.Fatal("fallback read mismatch")
		}
		if srv.stats.zcSegments.Load() != 0 {
			t.Fatal("memory-backed export claimed zero-copy")
		}
		if srv.stats.zcFallbacks.Load() == 0 {
			t.Fatal("fallback counter did not advance")
		}
	})

	t.Run("writable handle", func(t *testing.T) {
		_, addr, srv, data := newDirServer(t, 64<<10, ServerOpts{ZeroCopy: true})
		c := dial(t, addr, 0)
		rf, err := c.Open("pub.img", false) // read-write open
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if err := backend.ReadFull(rf, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("writable-handle read mismatch")
		}
		if srv.stats.zcSegments.Load() != 0 {
			t.Fatal("writable handle served by sendfile")
		}
	})

	t.Run("zero-copy off", func(t *testing.T) {
		_, addr, srv, data := newDirServer(t, 64<<10, ServerOpts{ReadOnly: true})
		c := dial(t, addr, 0)
		rf, err := c.Open("pub.img", true)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if err := backend.ReadFull(rf, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("copy-path read mismatch")
		}
		if z := &srv.stats; z.zcSegments.Load() != 0 || z.zcFallbacks.Load() != 0 {
			t.Fatal("zero-copy counters moved with the option off")
		}
	})
}

// TestServerZeroCopyEvictionMidServe unlinks the published file (cache
// eviction) while a client keeps reading through an already-open handle: the
// held descriptor must keep every byte identical to the pre-eviction
// content.
func TestServerZeroCopyEvictionMidServe(t *testing.T) {
	const size = 1 << 20
	store, addr, _, data := newDirServer(t, size, ServerOpts{ZeroCopy: true, ReadOnly: true})
	c := dial(t, addr, 0)
	rf, err := c.Open("pub.img", true)
	if err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 4096)
	if err := backend.ReadFull(rf, head, 0); err != nil {
		t.Fatal(err)
	}
	// Evict: the export disappears from the store while the handle is open.
	if err := store.Remove("pub.img"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if err := backend.ReadFull(rf, got, 0); err != nil {
		t.Fatalf("read after eviction: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-eviction read mismatch")
	}
	// New opens must fail — the export is gone.
	if _, err := c.Open("pub.img", true); err == nil {
		t.Fatal("open succeeded after eviction")
	}
}

// TestServerZeroCopyCloseRace hammers concurrent reads against OpClose on
// the same export: the per-handle refcount must keep every reply intact
// (each read either completes with correct bytes or fails cleanly because
// its handle was already closed). Run under -race by make check.
func TestServerZeroCopyCloseRace(t *testing.T) {
	const size = 256 << 10
	_, addr, srv, data := newDirServer(t, size, ServerOpts{ZeroCopy: true, ReadOnly: true})
	for round := 0; round < 8; round++ {
		c := dial(t, addr, 0)
		rf, err := c.Open("pub.img", true)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rnd := rand.New(rand.NewSource(seed))
				// At least one rwsize segment, so the reads actually ride
				// the sendfile path (small reads copy by policy).
				buf := make([]byte, 64<<10)
				<-start
				for i := 0; i < 20; i++ {
					off := rnd.Int63n(size - int64(len(buf)))
					n, err := rf.ReadAt(buf, off)
					if err != nil {
						return // closed under us: acceptable
					}
					if !bytes.Equal(buf[:n], data[off:off+int64(n)]) {
						panic("close race: data mismatch")
					}
				}
			}(int64(round*10 + r))
		}
		close(start)
		rf.Close() //nolint:errcheck // racing the readers by design
		wg.Wait()
		c.Close() //nolint:errcheck
	}
	if srv.stats.zcSegments.Load() == 0 {
		t.Fatal("close race never exercised the zero-copy path")
	}
}

// TestServerZeroCopySlowClient shrinks the server's send buffer to a few
// KiB under jumbo (1 MiB) read replies, so every sendfile call fills the
// socket buffer and returns short repeatedly in the middle of batched
// replies; the resume logic must keep the pipelined streams byte-identical.
// This is the wire-level fault injection of the reply-writer partial-write
// matrix.
func TestServerZeroCopySlowClient(t *testing.T) {
	const size = 4 << 20
	store, err := backend.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(101)).Read(data)
	f, err := store.Create("pub.img")
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.WriteFull(f, data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store, ServerOpts{ZeroCopy: true, ReadOnly: true})
	// Set before Listen: a jumbo reply is ~16x the squeezed send buffer,
	// so each one takes many short sendfile returns to drain.
	srv.testSndbuf = 32 << 10
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	c, err := Dial(addr, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() }) //nolint:errcheck
	rf, err := c.Open("pub.img", true)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			buf := make([]byte, MaxZeroCopySegment) // one jumbo segment per read
			for i := 0; i < 2; i++ {
				off := rnd.Int63n(size - int64(len(buf)))
				if err := backend.ReadFull(rf, buf, off); err != nil {
					errc <- err
					return
				}
				if !bytes.Equal(buf, data[off:off+int64(len(buf))]) {
					errc <- os.ErrInvalid
					return
				}
			}
		}(int64(r))
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("slow-client read: %v", err)
	}
	if srv.stats.zcSegments.Load() == 0 {
		t.Fatal("slow-client reads never exercised the zero-copy path")
	}
}

// TestZeroCopyCrossesDirStorePath is a plumbing check: DirStore's os-backed
// files must expose their descriptor through the zerocopy.Filer unwrap used
// at open time, or the fast path silently never engages.
func TestZeroCopyCrossesDirStorePath(t *testing.T) {
	store, err := backend.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := store.Create("x.img")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck
	osf, ok := f.(interface{ SysFile() *os.File })
	if !ok || osf.SysFile() == nil {
		t.Fatal("DirStore file does not expose a descriptor")
	}
	if filepath.Base(osf.SysFile().Name()) != "x.img" {
		t.Fatalf("descriptor names %q", osf.SysFile().Name())
	}
}
