package rblock

import (
	"bytes"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"vmicache/internal/backend"
)

// TestPipelinedConcurrentRequests issues many reads from many goroutines
// over ONE client connection and checks every byte. With a single-outstanding
// client this would serialise; the pipelined client keeps them all in flight.
func TestPipelinedConcurrentRequests(t *testing.T) {
	store, addr, _ := newServer(t, ServerOpts{})
	f, err := store.Create("disk.img")
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]byte, 1<<20)
	rand.New(rand.NewSource(42)).Read(seed)
	if err := backend.WriteFull(f, seed, 0); err != nil {
		t.Fatal(err)
	}

	c := dial(t, addr, 8<<10)
	rf, err := c.Open("disk.img", true)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seedN int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seedN))
			buf := make([]byte, 32<<10) // 4 pipelined segments at rwsize 8K
			for i := 0; i < 25; i++ {
				n := 1 + rnd.Intn(len(buf))
				off := rnd.Int63n(int64(len(seed) - n))
				if err := backend.ReadFull(rf, buf[:n], off); err != nil {
					t.Errorf("read off=%d n=%d: %v", off, n, err)
					return
				}
				if !bytes.Equal(buf[:n], seed[off:off+int64(n)]) {
					t.Errorf("data mismatch off=%d n=%d", off, n)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestPipelinedWritesAndReads mixes concurrent writers (disjoint regions)
// and readers on one connection, then verifies the file server-side.
func TestPipelinedWritesAndReads(t *testing.T) {
	store, addr, _ := newServer(t, ServerOpts{})
	if _, err := store.Create("disk.img"); err != nil {
		t.Fatal(err)
	}

	c := dial(t, addr, 4<<10)
	rf, err := c.Open("disk.img", false)
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		region  = 64 << 10
	)
	want := make([]byte, workers*region)
	rand.New(rand.NewSource(7)).Read(want)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			off := int64(w) * region
			if err := backend.WriteFull(rf, want[off:off+region], off); err != nil {
				t.Errorf("write region %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()

	got := make([]byte, len(want))
	if err := backend.ReadFull(rf, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("concurrent writes corrupted the file")
	}
}

// TestClientBrokenFailsFast kills the server mid-conversation and checks
// that the client surfaces ErrClientBroken (not a hang, not stream
// corruption) on the in-flight request and fails fast on all later calls.
func TestClientBrokenFailsFast(t *testing.T) {
	store, addr, srv := newServer(t, ServerOpts{})
	f, err := store.Create("disk.img")
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.WriteFull(f, make([]byte, 1<<20), 0); err != nil {
		t.Fatal(err)
	}

	c := dial(t, addr, 0)
	rf, err := c.Open("disk.img", true)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := backend.ReadFull(rf, buf, 0); err != nil {
		t.Fatal(err)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The in-flight (or next) request observes the dead connection.
	var firstErr error
	for i := 0; i < 3; i++ {
		if _, firstErr = rf.ReadAt(buf, 0); firstErr != nil {
			break
		}
	}
	if firstErr == nil {
		t.Fatal("reads kept succeeding after server close")
	}
	// Every subsequent call fails fast with the typed error.
	start := time.Now()
	_, err = rf.ReadAt(buf, 0)
	if !errors.Is(err, ErrClientBroken) {
		t.Fatalf("post-break read error = %v, want ErrClientBroken", err)
	}
	if _, err := c.Open("disk.img", true); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("post-break open error = %v, want ErrClientBroken", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("fail-fast took %v", elapsed)
	}
}

// TestClientTimeoutBreaksClient connects to a listener that accepts and then
// never responds; the request must time out and break the client.
func TestClientTimeoutBreaksClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() //nolint:errcheck
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Swallow the request and go silent.
		io := make([]byte, 1024)
		conn.Read(io) //nolint:errcheck
	}()

	c, err := Dial(ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	c.SetTimeout(100 * time.Millisecond)

	start := time.Now()
	_, err = c.Open("anything", true)
	if err == nil {
		t.Fatal("open against silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	if _, err := c.Open("anything", true); !errors.Is(err, ErrClientBroken) {
		t.Fatalf("post-timeout error = %v, want ErrClientBroken", err)
	}
}

// TestOutOfOrderCompletion checks that responses demultiplex by id: a slow
// large read issued first does not block a small read issued second.
func TestOutOfOrderCompletion(t *testing.T) {
	store, addr, _ := newServer(t, ServerOpts{RWSize: 1 << 20})
	f, err := store.Create("disk.img")
	if err != nil {
		t.Fatal(err)
	}
	seed := make([]byte, 2<<20)
	rand.New(rand.NewSource(9)).Read(seed)
	if err := backend.WriteFull(f, seed, 0); err != nil {
		t.Fatal(err)
	}

	c := dial(t, addr, 1<<20)
	rf, err := c.Open("disk.img", true)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		big := make([]byte, 2<<20)
		if err := backend.ReadFull(rf, big, 0); err != nil {
			t.Errorf("big read: %v", err)
			return
		}
		if !bytes.Equal(big, seed) {
			t.Error("big read mismatch")
		}
	}()
	go func() {
		defer wg.Done()
		small := make([]byte, 512)
		if err := backend.ReadFull(rf, small, 4096); err != nil {
			t.Errorf("small read: %v", err)
			return
		}
		if !bytes.Equal(small, seed[4096:4608]) {
			t.Error("small read mismatch")
		}
	}()
	wg.Wait()
}
