package rblock

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"vmicache/internal/backend"
)

// wrappedEOFStore wraps a store so its files return a *wrapped* io.EOF, as
// layered backends (counting wrappers, chains) do. The server must classify
// EOF with errors.Is, not by comparing error strings.
type wrappedEOFStore struct{ inner backend.Store }

func (s wrappedEOFStore) Open(name string, ro bool) (backend.File, error) {
	f, err := s.inner.Open(name, ro)
	if err != nil {
		return nil, err
	}
	return wrappedEOFFile{f}, nil
}
func (s wrappedEOFStore) Create(name string) (backend.File, error) { return s.inner.Create(name) }
func (s wrappedEOFStore) Remove(name string) error                 { return s.inner.Remove(name) }
func (s wrappedEOFStore) Stat(name string) (int64, error)          { return s.inner.Stat(name) }

type wrappedEOFFile struct{ backend.File }

func (f wrappedEOFFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.File.ReadAt(p, off)
	if errors.Is(err, io.EOF) {
		err = fmt.Errorf("layered read at %d: %w", off, io.EOF)
	}
	return n, err
}

// TestRemoteReadAtEOFBoundaries pins down RemoteFile.ReadAt semantics around
// the end of a non-rwsize-aligned image: exact-length tails succeed, reads
// crossing the end return the short count with io.EOF, and reads wholly past
// the end return (0, io.EOF) — the contract the sub-cluster fill path relies
// on for its exact-length partial fetches near the image end.
func TestRemoteReadAtEOFBoundaries(t *testing.T) {
	const (
		rwsize = 4096
		size   = 100000 // deliberately not a multiple of rwsize
	)
	pat := make([]byte, size)
	for i := range pat {
		pat[i] = byte(i*31 + 7)
	}

	run := func(t *testing.T, store backend.Store) {
		f, err := store.Create("img")
		if err != nil {
			t.Fatal(err)
		}
		if err := backend.WriteFull(f, pat, 0); err != nil {
			t.Fatal(err)
		}
		srv := NewServer(store, ServerOpts{RWSize: rwsize})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() }) //nolint:errcheck
		c := dial(t, addr, rwsize)
		rf, err := c.Open("img", true)
		if err != nil {
			t.Fatal(err)
		}

		cases := []struct {
			name    string
			off     int64
			len     int
			wantN   int
			wantEOF bool
		}{
			{"interior single segment", 0, rwsize, rwsize, false},
			{"interior multi segment", 8192, 3 * rwsize, 3 * rwsize, false},
			{"exact end aligned", size - rwsize, rwsize, rwsize, false},
			{"exact end short tail", size - 1696, 1696, 1696, false},
			{"exact end multi segment", size - 2*rwsize, 2 * rwsize, 2 * rwsize, false},
			{"cross end single segment", size - 1000, rwsize, 1000, true},
			{"cross end multi segment", size - 9888, 4 * rwsize, 9888, true},
			{"cross end one byte", size - 1, 2, 1, true},
			{"wholly past end", size, rwsize, 0, true},
			{"far past end", size + 1<<20, rwsize, 0, true},
			{"zero length", 0, 0, 0, false},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				buf := make([]byte, tc.len)
				n, err := rf.ReadAt(buf, tc.off)
				if n != tc.wantN {
					t.Fatalf("n = %d, want %d (err %v)", n, tc.wantN, err)
				}
				if tc.wantEOF {
					if !errors.Is(err, io.EOF) {
						t.Fatalf("err = %v, want io.EOF", err)
					}
				} else if err != nil {
					t.Fatalf("err = %v, want nil", err)
				}
				if n > 0 && !bytes.Equal(buf[:n], pat[tc.off:tc.off+int64(n)]) {
					t.Fatal("data mismatch")
				}
				// Exact-length tails must satisfy ReadFull, the form the
				// qcow fill path uses for sub-cluster fetches.
				if !tc.wantEOF && tc.len > 0 {
					full := make([]byte, tc.len)
					if err := backend.ReadFull(rf, full, tc.off); err != nil {
						t.Fatalf("ReadFull: %v", err)
					}
				}
			})
		}
	}

	t.Run("plain store", func(t *testing.T) { run(t, backend.NewMemStore()) })
	// The same contract must hold when the server-side file wraps io.EOF —
	// the regression the old string-comparison classification had.
	t.Run("wrapped EOF store", func(t *testing.T) {
		run(t, wrappedEOFStore{inner: backend.NewMemStore()})
	})
}
