package rblock

import (
	"net"
	"testing"
	"time"

	"vmicache/internal/backend"
)

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second}
	want := []time.Duration{
		50 * time.Millisecond,   // attempt 0
		100 * time.Millisecond,  // 1
		200 * time.Millisecond,  // 2
		400 * time.Millisecond,  // 3
		800 * time.Millisecond,  // 4
		1600 * time.Millisecond, // 5
		2 * time.Second,         // 6: capped
		2 * time.Second,         // 7: stays capped
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	if got := b.Delay(100); got != 2*time.Second {
		t.Errorf("Delay(100) = %v, want capped 2s", got)
	}
}

func TestBackoffZeroValue(t *testing.T) {
	var b Backoff
	for i := 0; i < 4; i++ {
		if got := b.Delay(i); got != 0 {
			t.Errorf("zero Backoff Delay(%d) = %v, want 0", i, got)
		}
	}
}

func TestBackoffUncapped(t *testing.T) {
	b := Backoff{Base: time.Millisecond}
	if got := b.Delay(10); got != 1024*time.Millisecond {
		t.Errorf("uncapped Delay(10) = %v, want 1.024s", got)
	}
	// Deep attempts must not overflow into a negative delay.
	if got := b.Delay(80); got <= 0 {
		t.Errorf("uncapped Delay(80) = %v, want positive", got)
	}
}

func TestDialRetryEventualSuccess(t *testing.T) {
	// Reserve an address nothing listens on yet.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() //nolint:errcheck

	srv := NewServer(backend.NewMemStore(), ServerOpts{})
	var slept []time.Duration
	sleep := func(d time.Duration) {
		slept = append(slept, d)
		if len(slept) == 2 {
			// Bring the server up mid-schedule; the next attempt succeeds.
			if _, err := srv.Listen(addr); err != nil {
				t.Errorf("listen: %v", err)
			}
		}
	}
	defer srv.Close() //nolint:errcheck

	b := Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond}
	c, err := DialRetry(addr, 0, 5, b, sleep)
	if err != nil {
		t.Fatalf("DialRetry: %v (slept %v)", err, slept)
	}
	defer c.Close() //nolint:errcheck
	wantSlept := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(wantSlept) {
		t.Fatalf("slept %v, want %v", slept, wantSlept)
	}
	for i, w := range wantSlept {
		if slept[i] != w {
			t.Errorf("sleep %d = %v, want %v", i, slept[i], w)
		}
	}
}

func TestDialRetryExhausted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() //nolint:errcheck

	var n int
	b := Backoff{Base: time.Millisecond}
	_, err = DialRetry(addr, 0, 3, b, func(time.Duration) { n++ })
	if err == nil {
		t.Fatal("DialRetry against dead address succeeded")
	}
	if n != 2 {
		t.Errorf("slept %d times, want 2 (attempts-1)", n)
	}
}
