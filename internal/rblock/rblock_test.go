package rblock

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"time"

	"vmicache/internal/backend"
	"vmicache/internal/boot"
	"vmicache/internal/core"
	"vmicache/internal/qcow"
)

// newServer starts a server over a fresh MemStore and returns (store, addr,
// cleanup-registered server).
func newServer(t *testing.T, opts ServerOpts) (*backend.MemStore, string, *Server) {
	t.Helper()
	store := backend.NewMemStore()
	srv := NewServer(store, opts)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	return store, addr, srv
}

func dial(t *testing.T, addr string, rwsize int) *Client {
	t.Helper()
	c, err := Dial(addr, rwsize)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() }) //nolint:errcheck
	return c
}

func TestRemoteReadWriteRoundTrip(t *testing.T) {
	store, addr, srv := newServer(t, ServerOpts{})
	f, err := store.Create("disk.img")
	if err != nil {
		t.Fatal(err)
	}
	seed := bytes.Repeat([]byte{0xCD}, 100<<10)
	if err := backend.WriteFull(f, seed, 0); err != nil {
		t.Fatal(err)
	}

	c := dial(t, addr, 0)
	rf, err := c.Open("disk.img", false)
	if err != nil {
		t.Fatal(err)
	}
	// Size from open.
	if sz, err := rf.Size(); err != nil || sz != int64(len(seed)) {
		t.Fatalf("size = %d, %v", sz, err)
	}
	// Segmented read (> rwsize).
	got := make([]byte, len(seed))
	if err := backend.ReadFull(rf, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, seed) {
		t.Fatal("read mismatch")
	}
	// Reads are segmented at the server too.
	if srv.Stats().ReadOps < 2 {
		t.Fatalf("expected segmented reads, got %d ops", srv.Stats().ReadOps)
	}
	// Write + read-back + sync + truncate.
	payload := []byte("written remotely")
	if err := backend.WriteFull(rf, payload, 5000); err != nil {
		t.Fatal(err)
	}
	if err := rf.Sync(); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, len(payload))
	if err := backend.ReadFull(rf, back, 5000); err != nil {
		t.Fatal(err)
	}
	if string(back) != string(payload) {
		t.Fatalf("write round trip: %q", back)
	}
	if err := rf.Truncate(1234); err != nil {
		t.Fatal(err)
	}
	if sz, _ := rf.Size(); sz != 1234 {
		t.Fatalf("size after truncate = %d", sz)
	}
	if err := rf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rf.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestRemoteEOFSemantics(t *testing.T) {
	store, addr, _ := newServer(t, ServerOpts{})
	f, _ := store.Create("small")
	if err := backend.WriteFull(f, []byte("0123456789"), 0); err != nil {
		t.Fatal(err)
	}
	c := dial(t, addr, 0)
	rf, err := c.Open("small", true)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 20)
	n, err := rf.ReadAt(buf, 0)
	if n != 10 || err != io.EOF {
		t.Fatalf("short read: n=%d err=%v", n, err)
	}
}

func TestRemoteOpenMissing(t *testing.T) {
	_, addr, _ := newServer(t, ServerOpts{})
	c := dial(t, addr, 0)
	if _, err := c.Open("ghost", true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadOnlyHandleAndServer(t *testing.T) {
	store, addr, _ := newServer(t, ServerOpts{})
	store.Create("x") //nolint:errcheck
	c := dial(t, addr, 0)
	rf, err := c.Open("x", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rf.WriteAt([]byte{1}, 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("RO handle write: %v", err)
	}
	if err := rf.Truncate(5); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("RO handle truncate: %v", err)
	}

	// Whole-server read-only export.
	store2 := backend.NewMemStore()
	store2.Create("y") //nolint:errcheck
	srv2 := NewServer(store2, ServerOpts{ReadOnly: true})
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close() //nolint:errcheck
	c2 := dial(t, addr2, 0)
	rf2, err := c2.Open("y", false) // asks RW; server forces RO
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rf2.WriteAt([]byte{1}, 0); err == nil {
		t.Fatal("read-only server accepted a write")
	}
}

func TestRWSizeEnforcedByServer(t *testing.T) {
	store, addr, _ := newServer(t, ServerOpts{RWSize: 4096})
	f, _ := store.Create("f")
	backend.WriteFull(f, make([]byte, 64<<10), 0) //nolint:errcheck
	// Client negotiating a LARGER rwsize gets rejected per request.
	c := dial(t, addr, 32<<10)
	rf, err := c.Open("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rf.ReadAt(make([]byte, 16<<10), 0); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized read: %v", err)
	}
	// A client honouring the limit works.
	c2 := dial(t, addr, 4096)
	rf2, err := c2.Open("f", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.ReadFull(rf2, make([]byte, 16<<10), 0); err != nil {
		t.Fatalf("segmented read under limit: %v", err)
	}
}

func TestMultipleFilesOneConnection(t *testing.T) {
	store, addr, _ := newServer(t, ServerOpts{})
	for _, name := range []string{"a", "b"} {
		f, _ := store.Create(name)
		backend.WriteFull(f, []byte(name), 0) //nolint:errcheck
	}
	c := dial(t, addr, 0)
	fa, err := c.Open("a", true)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := c.Open("b", true)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if err := backend.ReadFull(fb, buf, 0); err != nil || buf[0] != 'b' {
		t.Fatalf("b: %v %q", err, buf)
	}
	if err := backend.ReadFull(fa, buf, 0); err != nil || buf[0] != 'a' {
		t.Fatalf("a: %v %q", err, buf)
	}
	if err := fa.Close(); err != nil {
		t.Fatal(err)
	}
	// fb still usable after closing fa.
	if err := backend.ReadFull(fb, buf, 0); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	store, addr, srv := newServer(t, ServerOpts{})
	content := make([]byte, 256<<10)
	rand.New(rand.NewSource(4)).Read(content)
	f, _ := store.Create("shared")
	backend.WriteFull(f, content, 0) //nolint:errcheck

	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(seed int64) {
			c, err := Dial(addr, 0)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close() //nolint:errcheck
			rf, err := c.Open("shared", true)
			if err != nil {
				errs <- err
				return
			}
			rnd := rand.New(rand.NewSource(seed))
			buf := make([]byte, 4096)
			for j := 0; j < 50; j++ {
				off := rnd.Int63n(int64(len(content) - len(buf)))
				if err := backend.ReadFull(rf, buf, off); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf, content[off:off+int64(len(buf))]) {
					errs <- errors.New("content mismatch")
					return
				}
			}
			errs <- nil
		}(int64(i))
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if srv.Stats().Conns != clients {
		t.Fatalf("conns = %d", srv.Stats().Conns)
	}
}

func TestServerStatsPerImage(t *testing.T) {
	store, addr, srv := newServer(t, ServerOpts{})
	for _, name := range []string{"hot", "cold"} {
		f, _ := store.Create(name)
		backend.WriteFull(f, make([]byte, 8<<10), 0) //nolint:errcheck
	}
	c := dial(t, addr, 0)
	fh, err := c.Open("hot", true)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := c.Open("cold", true)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8<<10)
	for i := 0; i < 3; i++ {
		if err := backend.ReadFull(fh, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := backend.ReadFull(fc, buf[:1<<10], 0); err != nil {
		t.Fatal(err)
	}

	st := srv.Stats()
	hot, cold := st.PerImage["hot"], st.PerImage["cold"]
	if hot.Opens != 1 || cold.Opens != 1 {
		t.Fatalf("opens: hot=%d cold=%d", hot.Opens, cold.Opens)
	}
	if hot.BytesRead != 3*8<<10 || cold.BytesRead != 1<<10 {
		t.Fatalf("bytes: hot=%d cold=%d", hot.BytesRead, cold.BytesRead)
	}
	if hot.ReadOps < 3 || cold.ReadOps < 1 {
		t.Fatalf("read ops: hot=%d cold=%d", hot.ReadOps, cold.ReadOps)
	}
	if st.BytesRead != hot.BytesRead+cold.BytesRead {
		t.Fatalf("totals disagree with per-image: %d vs %d", st.BytesRead, hot.BytesRead+cold.BytesRead)
	}
	// The snapshot is detached from the live counters.
	st.PerImage["hot"] = ImageStats{}
	if srv.Stats().PerImage["hot"].BytesRead == 0 {
		t.Fatal("snapshot aliases live counters")
	}
}

// gateStore wraps a store so server-side reads block until released — a way
// to hold a request in flight while Shutdown drains.
type gateStore struct {
	inner   backend.Store
	entered chan struct{}
	release chan struct{}
}

func (g *gateStore) Open(name string, ro bool) (backend.File, error) {
	f, err := g.inner.Open(name, ro)
	if err != nil {
		return nil, err
	}
	return &gateFile{File: f, g: g}, nil
}
func (g *gateStore) Create(name string) (backend.File, error) { return g.inner.Create(name) }
func (g *gateStore) Remove(name string) error                 { return g.inner.Remove(name) }
func (g *gateStore) Stat(name string) (int64, error)          { return g.inner.Stat(name) }

type gateFile struct {
	backend.File
	g *gateStore
}

func (f *gateFile) ReadAt(p []byte, off int64) (int, error) {
	select {
	case f.g.entered <- struct{}{}:
	default:
	}
	<-f.g.release
	return f.File.ReadAt(p, off)
}

func TestShutdownDrainsInFlight(t *testing.T) {
	inner := backend.NewMemStore()
	f, _ := inner.Create("slow")
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	if err := backend.WriteFull(f, payload, 0); err != nil {
		t.Fatal(err)
	}
	gs := &gateStore{inner: inner, entered: make(chan struct{}, 1), release: make(chan struct{})}
	srv := NewServer(gs, ServerOpts{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck

	c := dial(t, addr, 0)
	rf, err := c.Open("slow", true)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	go func() {
		buf := make([]byte, len(payload))
		n, err := rf.ReadAt(buf, 0)
		done <- result{n, err}
	}()
	<-gs.entered // the read is dispatched and parked server-side
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(gs.release)
	}()
	// Shutdown must wait for the parked request and flush its response
	// before tearing the connection down.
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-done
	if r.err != nil || r.n != len(payload) {
		t.Fatalf("in-flight read across shutdown: n=%d err=%v", r.n, r.err)
	}
	// The listener is gone: no new connections.
	if c2, err := Dial(addr, 0); err == nil {
		c2.Close() //nolint:errcheck
		t.Fatal("dial succeeded after shutdown")
	}
}

// The integration the whole package exists for: a qcow chain whose base
// image is accessed over the wire, with a local cache absorbing re-reads.
func TestQcowChainOverRemoteBase(t *testing.T) {
	store, addr, srv := newServer(t, ServerOpts{})

	// Base image on the "storage node".
	const size = 4 << 20
	src := boot.PatternSource{Seed: 77, N: size}
	baseF, err := store.Create("base.img")
	if err != nil {
		t.Fatal(err)
	}
	baseImg, err := qcow.Create(baseF, qcow.CreateOpts{Size: size, ClusterBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	src.ReadAt(buf, 0) //nolint:errcheck
	if err := backend.WriteFull(baseImg, buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := baseImg.Sync(); err != nil {
		t.Fatal(err)
	}

	// "Compute node": open the base over TCP, build cache + CoW on it.
	c := dial(t, addr, 0)
	remoteBase, err := c.Open("base.img", true)
	if err != nil {
		t.Fatal(err)
	}
	baseRemote, err := qcow.Open(remoteBase, qcow.OpenOpts{ReadOnly: true})
	if err != nil {
		t.Fatalf("opening remote qcow base: %v", err)
	}

	cacheImg, err := qcow.Create(backend.NewMemFile(), qcow.CreateOpts{
		Size: size, ClusterBits: 9, BackingFile: "base.img", CacheQuota: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	cacheImg.SetBacking(baseRemote)
	cow, err := qcow.Create(backend.NewMemFile(), qcow.CreateOpts{
		Size: size, ClusterBits: 16, BackingFile: "cache",
	})
	if err != nil {
		t.Fatal(err)
	}
	cow.SetBacking(cacheImg)

	// Boot-style reads: verified content over the wire.
	got := make([]byte, 100<<10)
	if err := backend.ReadFull(cow, got, 512); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src.At(512, 100<<10)) {
		t.Fatal("remote chain content mismatch")
	}
	served := srv.Stats().BytesRead
	if served == 0 {
		t.Fatal("no traffic served")
	}
	// Second read: warm cache, no further wire traffic.
	if err := backend.ReadFull(cow, got, 512); err != nil {
		t.Fatal(err)
	}
	if srv.Stats().BytesRead != served {
		t.Fatalf("warm read produced traffic: %d -> %d", served, srv.Stats().BytesRead)
	}
}

// RemoteStore plugged into a namespace: the whole §4.4 chain resolves its
// base across the wire.
func TestRemoteStoreInNamespace(t *testing.T) {
	store, addr, _ := newServer(t, ServerOpts{})
	const size = 2 << 20
	src := boot.PatternSource{Seed: 3, N: size}
	f, err := store.Create("base.img")
	if err != nil {
		t.Fatal(err)
	}
	img, err := qcow.Create(f, qcow.CreateOpts{Size: size, ClusterBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	src.ReadAt(buf, 0) //nolint:errcheck
	if err := backend.WriteFull(img, buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := img.Sync(); err != nil {
		t.Fatal(err)
	}

	c := dial(t, addr, 0)
	ns := core.NewNamespace("node", backend.NewMemStore())
	ns.Register("storage", RemoteStore{C: c})

	cow := core.Locator{Store: "node", Name: "vm.cow"}
	if err := core.CreateCoW(ns, cow, core.Locator{Store: "storage", Name: "base.img"}, size, 0); err != nil {
		t.Fatal(err)
	}
	chain, err := core.OpenChain(ns, cow, core.ChainOpts{})
	if err != nil {
		t.Fatalf("OpenChain across the wire: %v", err)
	}
	defer chain.Close() //nolint:errcheck
	got := make([]byte, 4096)
	if err := backend.ReadFull(chain, got, 100<<10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src.At(100<<10, 4096)) {
		t.Fatal("cross-wire chain content mismatch")
	}
	// Remote stores reject mutation.
	if _, err := (RemoteStore{C: c}).Create("x"); err == nil {
		t.Fatal("remote create succeeded")
	}
	if err := (RemoteStore{C: c}).Remove("base.img"); err == nil {
		t.Fatal("remote remove succeeded")
	}
	if sz, err := (RemoteStore{C: c}).Stat("base.img"); err != nil || sz == 0 {
		t.Fatalf("remote stat: %d %v", sz, err)
	}
}
