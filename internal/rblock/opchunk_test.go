package rblock

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"vmicache/internal/backend"
)

// fakeChunks is a ChunkSource over fixed tables.
type fakeChunks struct {
	manifests map[string][]byte
	blobs     map[[HashLen]byte][]byte
	rawLens   map[[HashLen]byte]int64
}

func (f *fakeChunks) EncodedManifest(name string) ([]byte, error) {
	enc, ok := f.manifests[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", backend.ErrNotExist, name)
	}
	return enc, nil
}

func (f *fakeChunks) ChunkBlob(hash [HashLen]byte) ([]byte, int64, error) {
	b, ok := f.blobs[hash]
	if !ok {
		return nil, 0, fmt.Errorf("%w: no blob", backend.ErrNotExist)
	}
	return b, f.rawLens[hash], nil
}

func TestOpManifestChunkRoundTrip(t *testing.T) {
	h1 := [HashLen]byte{1}
	h2 := [HashLen]byte{2}
	src := &fakeChunks{
		manifests: map[string][]byte{"img.vmic": {9, 8, 7}},
		blobs: map[[HashLen]byte][]byte{
			h1: bytes.Repeat([]byte{0x11}, 100),
			h2: bytes.Repeat([]byte{0x22}, 64<<10),
		},
		rawLens: map[[HashLen]byte]int64{h1: 4096, h2: 128 << 10},
	}
	srv := NewServer(backend.NewMemStore(), ServerOpts{ReadOnly: true, Chunks: src})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck

	c := dial(t, addr, 0)
	enc, err := c.FetchManifest("img.vmic")
	if err != nil {
		t.Fatalf("FetchManifest: %v", err)
	}
	if !bytes.Equal(enc, src.manifests["img.vmic"]) {
		t.Fatalf("FetchManifest = %v", enc)
	}
	// Unknown manifests are NotFound and the connection survives.
	if _, err := c.FetchManifest("other.vmic"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown manifest: %v, want ErrNotFound", err)
	}
	// Chunk fetches echo the blob bytes and advertised raw length.
	comp, rawLen, err := c.FetchChunk(h2)
	if err != nil {
		t.Fatalf("FetchChunk: %v", err)
	}
	if !bytes.Equal(comp, src.blobs[h2]) || rawLen != 128<<10 {
		t.Fatalf("FetchChunk = %d bytes, raw %d", len(comp), rawLen)
	}
	if _, _, err := c.FetchChunk([HashLen]byte{0xFF}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown chunk: %v, want ErrNotFound", err)
	}
	// Client-side validation: empty names never hit the wire.
	if _, err := c.FetchManifest(""); err == nil {
		t.Fatal("empty name accepted")
	}
	// Pipelined chunk fetches demultiplex correctly by request id.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, want := h1, src.blobs[h1]
			if i%2 == 0 {
				h, want = h2, src.blobs[h2]
			}
			got, _, err := c.FetchChunk(h)
			if err != nil || !bytes.Equal(got, want) {
				t.Errorf("pipelined fetch %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestOpChunkWithoutSource(t *testing.T) {
	_, addr, _ := newServer(t, ServerOpts{})
	c := dial(t, addr, 0)
	if _, err := c.FetchManifest("img.vmic"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("no chunk source: %v, want ErrBadRequest", err)
	}
	if _, _, err := c.FetchChunk([HashLen]byte{1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("no chunk source: %v, want ErrBadRequest", err)
	}
}

func TestOpChunkBatch(t *testing.T) {
	mk := func(i byte, size int) ([HashLen]byte, []byte) {
		return [HashLen]byte{i}, bytes.Repeat([]byte{i}, size)
	}
	src := &fakeChunks{
		blobs:   map[[HashLen]byte][]byte{},
		rawLens: map[[HashLen]byte]int64{},
	}
	var hashes [][HashLen]byte
	for i := byte(1); i <= 5; i++ {
		h, b := mk(i, 1000*int(i))
		src.blobs[h] = b
		src.rawLens[h] = int64(len(b))
		hashes = append(hashes, h)
	}
	srv := NewServer(backend.NewMemStore(), ServerOpts{ReadOnly: true, Chunks: src})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	c := dial(t, addr, 0)

	// Full batch: every blob comes back in request order.
	blobs, err := c.FetchChunkBatch(hashes)
	if err != nil {
		t.Fatalf("FetchChunkBatch: %v", err)
	}
	if len(blobs) != len(hashes) {
		t.Fatalf("served %d of %d", len(blobs), len(hashes))
	}
	for i, b := range blobs {
		if !bytes.Equal(b, src.blobs[hashes[i]]) {
			t.Fatalf("record %d mismatch", i)
		}
	}

	// A hole mid-run truncates the reply to the held prefix.
	holed := append(append([][HashLen]byte{}, hashes[:2]...), [HashLen]byte{0xFF})
	holed = append(holed, hashes[2:]...)
	blobs, err = c.FetchChunkBatch(holed)
	if err != nil {
		t.Fatalf("partial batch: %v", err)
	}
	if len(blobs) != 2 {
		t.Fatalf("partial batch served %d, want 2", len(blobs))
	}

	// A missing first hash is NotFound; the connection survives.
	if _, err := c.FetchChunkBatch([][HashLen]byte{{0xFF}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing first: %v, want ErrNotFound", err)
	}
	if _, err := c.FetchChunkBatch(hashes[:1]); err != nil {
		t.Fatalf("connection broken after NotFound: %v", err)
	}

	// Client-side bounds: empty and oversized batches never hit the wire.
	if _, err := c.FetchChunkBatch(nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("empty batch: %v", err)
	}
	if _, err := c.FetchChunkBatch(make([][HashLen]byte, MaxBatchChunks+1)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized batch: %v", err)
	}
}

// TestOpChunkBatchFrameCap checks the reply stops before exceeding the
// frame payload limit: chunks that would overflow are left for the next
// request.
func TestOpChunkBatchFrameCap(t *testing.T) {
	src := &fakeChunks{
		blobs:   map[[HashLen]byte][]byte{},
		rawLens: map[[HashLen]byte]int64{},
	}
	var hashes [][HashLen]byte
	// Four 3 MiB blobs: only two fit under the 8 MiB frame cap.
	for i := byte(1); i <= 4; i++ {
		h := [HashLen]byte{i}
		src.blobs[h] = bytes.Repeat([]byte{i}, 3<<20)
		src.rawLens[h] = 3 << 20
		hashes = append(hashes, h)
	}
	srv := NewServer(backend.NewMemStore(), ServerOpts{ReadOnly: true, Chunks: src})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck
	c := dial(t, addr, 0)
	blobs, err := c.FetchChunkBatch(hashes)
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 2 {
		t.Fatalf("served %d records, want 2 under frame cap", len(blobs))
	}
	for i, b := range blobs {
		if !bytes.Equal(b, src.blobs[hashes[i]]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestOpChunkBatchWithoutSource(t *testing.T) {
	_, addr, _ := newServer(t, ServerOpts{})
	c := dial(t, addr, 0)
	if _, err := c.FetchChunkBatch([][HashLen]byte{{1}}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("no chunk source: %v, want ErrBadRequest", err)
	}
}
