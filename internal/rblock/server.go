package rblock

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmicache/internal/backend"
	"vmicache/internal/metrics"
	"vmicache/internal/zerocopy"
)

// ServerStats is a point-in-time snapshot of a server's traffic counters —
// the "observed traffic at the storage node" of Fig. 9 for real deployments.
type ServerStats struct {
	BytesRead    int64 // payload bytes served to clients
	BytesWritten int64 // payload bytes received from clients
	ReadOps      int64
	WriteOps     int64
	Opens        int64
	Conns        int64 // connections accepted over the server's lifetime
	ActiveConns  int64 // connections currently open

	// Zero-copy serve effectiveness (all zero unless ServerOpts.ZeroCopy).
	ZeroCopyBytes     int64 // payload bytes shipped by sendfile
	ZeroCopySegments  int64 // read replies shipped by sendfile
	ZeroCopyFallbacks int64 // reads that wanted the fast path but copied

	// PerImage breaks traffic down by export name — which images are hot,
	// and how many bytes each one shipped (cache transfers show up here as
	// one large read burst against the published cache name).
	PerImage map[string]ImageStats
}

// ImageStats counts traffic attributed to one export name.
type ImageStats struct {
	Opens     int64
	ReadOps   int64
	BytesRead int64
}

// String renders the snapshot for status output.
func (st ServerStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "served %.1f MB over %d reads, received %.1f MB over %d writes, %d opens, %d conns (%d active)",
		float64(st.BytesRead)/1e6, st.ReadOps,
		float64(st.BytesWritten)/1e6, st.WriteOps,
		st.Opens, st.Conns, st.ActiveConns)
	if st.ZeroCopySegments > 0 || st.ZeroCopyFallbacks > 0 {
		fmt.Fprintf(&b, "\n  zero-copy: %.1f MB over %d replies, %d fallbacks",
			float64(st.ZeroCopyBytes)/1e6, st.ZeroCopySegments, st.ZeroCopyFallbacks)
	}
	names := make([]string, 0, len(st.PerImage))
	for n := range st.PerImage {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		is := st.PerImage[n]
		fmt.Fprintf(&b, "\n  %s: %d opens, %d reads, %.1f MB out", n, is.Opens, is.ReadOps, float64(is.BytesRead)/1e6)
	}
	return b.String()
}

// serverCounters is the live (atomic) form behind ServerStats snapshots.
type serverCounters struct {
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	readOps      atomic.Int64
	writeOps     atomic.Int64
	opens        atomic.Int64
	conns        atomic.Int64
	activeConns  atomic.Int64
	activeReqs   atomic.Int64 // requests currently dispatched (drained by Shutdown)
	latency      metrics.AtomicHistogram

	// Zero-copy serve effectiveness: bytes/segments shipped by sendfile,
	// and reads that wanted the fast path but fell back to the copy path
	// (non-descriptor-backed export or writable handle).
	zcBytes     atomic.Int64
	zcSegments  atomic.Int64
	zcFallbacks atomic.Int64

	mu       sync.Mutex
	perImage map[string]*imageCounters
	// reg/regLabels, when set by RegisterMetrics, make image() register the
	// per-image counters of exports opened later — dynamic label sets appear
	// on the next scrape.
	reg       *metrics.Registry
	regLabels metrics.Labels
}

type imageCounters struct {
	opens     atomic.Int64
	readOps   atomic.Int64
	bytesRead atomic.Int64
}

func (c *serverCounters) image(name string) *imageCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	ic, ok := c.perImage[name]
	if !ok {
		ic = &imageCounters{}
		c.perImage[name] = ic
		if c.reg != nil {
			c.registerImage(name, ic)
		}
	}
	return ic
}

// registerImage exposes one export's counters; caller holds c.mu.
func (c *serverCounters) registerImage(name string, ic *imageCounters) {
	l := c.regLabels.With("image", name)
	c.reg.CounterFunc("vmicache_rblock_server_image_opens_total",
		"Opens of the export.", l, ic.opens.Load)
	c.reg.CounterFunc("vmicache_rblock_server_image_read_ops_total",
		"Read requests against the export.", l, ic.readOps.Load)
	c.reg.CounterFunc("vmicache_rblock_server_image_bytes_read_total",
		"Payload bytes served from the export.", l, ic.bytesRead.Load)
}

// MapSource supplies chunk-validity maps for OpMap requests. The encoding is
// opaque to rblock (internal/swarm defines the wire format); an error means
// the named export is not currently advertised and yields StatusNotFound.
type MapSource interface {
	EncodedMap(name string) ([]byte, error)
}

// ChunkSource supplies chunk manifests and content-addressed chunk blobs
// for OpManifest/OpChunk requests (the dedup delta-transfer path). Both
// encodings are opaque to rblock (internal/dedup defines them); an error
// means the name or hash is not currently served and yields
// StatusNotFound.
type ChunkSource interface {
	// EncodedManifest returns the encoded chunk manifest of a published
	// export.
	EncodedManifest(name string) ([]byte, error)
	// ChunkBlob returns the compressed wire form of one chunk and its raw
	// (uncompressed) length.
	ChunkBlob(hash [HashLen]byte) (comp []byte, rawLen int64, err error)
}

// Server exports a Store over TCP.
type Server struct {
	store  backend.Store
	rwsize int
	maps   MapSource
	chunks ChunkSource
	stats  serverCounters

	// payloads recycles rwsize payload buffers across requests — OpRead
	// reply buffers and inbound OpWrite request payloads — so a busy stream
	// allocates no payload buffers in steady state. Buffers return to the
	// pool via putFrame once the frame's payload has been consumed.
	payloads *payloadPool

	mu       sync.Mutex
	ln       net.Listener
	closed   bool
	draining bool
	conns    map[net.Conn]struct{}
	logf     func(format string, args ...any)
	readOnly bool
	zeroCopy bool

	// testSndbuf, when non-zero, overrides the zero-copy send-buffer size
	// on accepted connections. Tests shrink it so sendfile returns short
	// mid-reply and the resume path gets exercised; production always uses
	// the jumbo default.
	testSndbuf int
}

// ServerOpts configures a Server.
type ServerOpts struct {
	// RWSize caps per-request transfer size (0 = DefaultRWSize).
	RWSize int
	// ReadOnly rejects writes and truncates (a published base-image
	// export).
	ReadOnly bool
	// Logf, when non-nil, receives connection-level errors.
	Logf func(format string, args ...any)
	// Maps, when non-nil, answers OpMap chunk-map queries (the swarm
	// piece-map advertisement). Servers without one reject OpMap with
	// StatusBadRequest.
	Maps MapSource
	// Chunks, when non-nil, answers OpManifest/OpChunk dedup queries (the
	// manifest-first delta transfer). Servers without one reject both ops
	// with StatusBadRequest.
	Chunks ChunkSource
	// ZeroCopy serves reads of descriptor-backed read-only exports with
	// sendfile(2) instead of a pread+write copy. Exports that cannot offer
	// a raw descriptor (or writable handles) keep the copy path per read;
	// on platforms without sendfile the helper degrades to a copy
	// internally, so the option is safe to leave on everywhere.
	ZeroCopy bool
}

// NewServer returns a server exporting store.
func NewServer(store backend.Store, opts ServerOpts) *Server {
	rw := opts.RWSize
	if rw <= 0 {
		rw = DefaultRWSize
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	srv := &Server{
		store:    store,
		rwsize:   rw,
		maps:     opts.Maps,
		chunks:   opts.Chunks,
		conns:    make(map[net.Conn]struct{}),
		logf:     logf,
		readOnly: opts.ReadOnly,
		zeroCopy: opts.ZeroCopy,
	}
	srv.stats.perImage = make(map[string]*imageCounters)
	srv.payloads = newPayloadPool(rw)
	return srv
}

// Stats returns a snapshot of the server's traffic counters, including the
// per-image breakdown.
func (s *Server) Stats() ServerStats {
	c := &s.stats
	snap := ServerStats{
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		ReadOps:      c.readOps.Load(),
		WriteOps:     c.writeOps.Load(),
		Opens:        c.opens.Load(),
		Conns:        c.conns.Load(),
		ActiveConns:  c.activeConns.Load(),

		ZeroCopyBytes:     c.zcBytes.Load(),
		ZeroCopySegments:  c.zcSegments.Load(),
		ZeroCopyFallbacks: c.zcFallbacks.Load(),

		PerImage: make(map[string]ImageStats),
	}
	c.mu.Lock()
	for name, ic := range c.perImage {
		snap.PerImage[name] = ImageStats{
			Opens:     ic.opens.Load(),
			ReadOps:   ic.readOps.Load(),
			BytesRead: ic.bytesRead.Load(),
		}
	}
	c.mu.Unlock()
	return snap
}

// RegisterMetrics exposes the server's counters on a registry. Per-image
// counters for exports already opened register immediately; exports opened
// later register as their first request arrives.
func (s *Server) RegisterMetrics(r *metrics.Registry, labels metrics.Labels) {
	c := &s.stats
	r.CounterFunc("vmicache_rblock_server_bytes_read_total",
		"Payload bytes served to clients.", labels, c.bytesRead.Load)
	r.CounterFunc("vmicache_rblock_server_bytes_written_total",
		"Payload bytes received from clients.", labels, c.bytesWritten.Load)
	r.CounterFunc("vmicache_rblock_server_read_ops_total",
		"Read requests handled.", labels, c.readOps.Load)
	r.CounterFunc("vmicache_rblock_server_write_ops_total",
		"Write requests handled.", labels, c.writeOps.Load)
	r.CounterFunc("vmicache_rblock_server_opens_total",
		"Export opens handled.", labels, c.opens.Load)
	r.CounterFunc("vmicache_rblock_server_conns_total",
		"Connections accepted over the server's lifetime.", labels, c.conns.Load)
	r.GaugeFunc("vmicache_rblock_server_active_conns",
		"Connections currently open.", labels, c.activeConns.Load)
	r.GaugeFunc("vmicache_rblock_server_active_requests",
		"Requests currently dispatched.", labels, c.activeReqs.Load)
	r.RegisterHistogram("vmicache_rblock_server_request_ns",
		"Server-side request handling duration.", labels, &c.latency)
	r.CounterFunc("vmicache_rblock_server_zerocopy_bytes_total",
		"Payload bytes served via the sendfile zero-copy path.", labels, c.zcBytes.Load)
	r.CounterFunc("vmicache_rblock_server_zerocopy_segments_total",
		"Read replies served via the sendfile zero-copy path.", labels, c.zcSegments.Load)
	r.CounterFunc("vmicache_rblock_server_zerocopy_fallbacks_total",
		"Reads that wanted zero-copy but used the copy path.", labels, c.zcFallbacks.Load)
	c.mu.Lock()
	c.reg, c.regLabels = r, labels
	for name, ic := range c.perImage {
		c.registerImage(name, ic)
	}
	c.mu.Unlock()
}

// Listen starts accepting on addr ("127.0.0.1:0" for an ephemeral port) and
// returns the bound address. Serving happens on background goroutines until
// Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close() //nolint:errcheck
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if s.zeroCopy {
			// Jumbo segments move MaxZeroCopySegment per reply; give the
			// kernel room for several so sendfile returns without
			// blocking on the receiver's drain.
			sndbuf := 4 * MaxZeroCopySegment
			if s.testSndbuf > 0 {
				sndbuf = s.testSndbuf
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetWriteBuffer(sndbuf) //nolint:errcheck // best-effort tuning
			}
		}
		s.stats.conns.Add(1)
		s.stats.activeConns.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops the listener and all connections immediately, without waiting
// for in-flight requests. Prefer Shutdown for command-line servers.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked()
}

func (s *Server) closeLocked() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		c.Close() //nolint:errcheck
	}
	return err
}

// Shutdown stops the server gracefully: the listener closes immediately (no
// new connections), then in-flight requests are given up to drain to finish
// and flush their responses before the connections are torn down. Requests
// still running at the deadline are cut off by the connection close. A zero
// or negative drain degrades to Close.
func (s *Server) Shutdown(drain time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	var lnErr error
	if s.ln != nil {
		lnErr = s.ln.Close()
		s.ln = nil
	}
	s.mu.Unlock()

	deadline := time.Now().Add(drain)
	for s.stats.activeReqs.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	s.mu.Lock()
	err := s.closeLocked()
	s.mu.Unlock()
	if err == nil {
		err = lnErr
	}
	return err
}

// maxConcurrentPerConn bounds how many requests of one connection are
// dispatched simultaneously.
const maxConcurrentPerConn = 16

// connState is the per-connection handle table, shared by the concurrent
// request handlers.
type connState struct {
	mu         sync.Mutex
	handles    map[uint32]*openHandle
	nextHandle uint32
}

// openHandle ties an open file to the export name it was opened under, so
// traffic can be attributed per image. Handles are reference counted: the
// handle table holds one reference, every in-flight request another, and a
// zero-copy reply a third that lives until the frame leaves the wire — so
// OpClose (or connection teardown) can never close the descriptor while a
// queued sendfile still points at it. The file closes when the last
// reference drops.
type openHandle struct {
	f    backend.File
	ic   *imageCounters
	refs atomic.Int32

	// Zero-copy eligibility, frozen at open: sys is the raw descriptor when
	// the export exposes one, size the file length, ro whether the handle
	// rejects writes (only immutable exports may be served by sendfile — a
	// concurrent writer would make the promised length a lie).
	sys  *os.File
	size int64
	ro   bool
}

func (oh *openHandle) retain() { oh.refs.Add(1) }

func (oh *openHandle) release() {
	if oh.refs.Add(-1) == 0 {
		oh.f.Close() //nolint:errcheck // deferred close has no caller to tell
	}
}

// get looks up a handle and retains it; the caller must release.
func (cs *connState) get(h uint32) (*openHandle, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	oh, ok := cs.handles[h]
	if ok {
		oh.retain()
	}
	return oh, ok
}

// maxReplyQueue bounds how many replies may sit in a connection's reply
// queue awaiting the vectored write. The request semaphore already caps
// outstanding replies at maxConcurrentPerConn; the extra headroom only
// matters if that invariant ever loosens, keeping pooled payload buffers
// from piling up behind a slow client either way.
const maxReplyQueue = 2 * maxConcurrentPerConn

// replyWriter coalesces reply frames into vectored writes. Replies are
// enqueued under the mutex; the first enqueuer to find no writer active
// becomes the writer and drains the queue with one net.Buffers writev
// (header+payload per frame, no intermediate copy) per batch, picking up
// replies that accumulated while the previous batch was on the wire. Queued
// frames are owned by the writer and recycled with putFrame after the write.
type replyWriter struct {
	conn net.Conn

	mu     sync.Mutex
	cond   sync.Cond
	queue  []*frame
	spare  []*frame // double buffer: reused as the next queue backing
	active bool
	err    error

	// hdrs is the reusable header slab (frameHeaderLen per queued frame);
	// iov is the reusable iovec assembled for each writev; wip is the
	// consumable copy handed to WriteTo (which advances it in place), so
	// iov keeps its backing capacity across batches.
	hdrs []byte
	iov  net.Buffers
	wip  net.Buffers
}

func newReplyWriter(conn net.Conn) *replyWriter {
	w := &replyWriter{conn: conn}
	w.cond.L = &w.mu
	return w
}

// send enqueues one reply frame, transferring ownership; f is recycled after
// it hits the wire (or the writer has already failed). The caller that finds
// the writer idle drains the queue itself, so under low concurrency send
// degenerates to one writev per reply with no extra goroutine or handoff.
func (w *replyWriter) send(f *frame) error {
	w.mu.Lock()
	for w.err == nil && len(w.queue) >= maxReplyQueue {
		w.cond.Wait()
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		putFrame(f)
		return err
	}
	w.queue = append(w.queue, f)
	if w.active {
		w.mu.Unlock()
		return nil
	}
	w.active = true
	for w.err == nil && len(w.queue) > 0 {
		batch := w.queue
		w.queue = w.spare[:0]
		w.spare = nil
		w.cond.Broadcast() // queue drained: admit blocked senders
		w.mu.Unlock()
		err := w.writeBatch(batch)
		for _, qf := range batch {
			putFrame(qf)
		}
		w.mu.Lock()
		w.spare = batch[:0]
		if err != nil {
			w.err = err
			w.cond.Broadcast()
		}
	}
	w.active = false
	err := w.err
	w.mu.Unlock()
	return err
}

// writeBatch pushes a batch of replies to the socket as one vectored write.
// Zero-copy frames interleave: the headers and copied payloads accumulated
// so far flush as one writev, then the file segment goes out via sendfile,
// then accumulation resumes — so a batch mixing copy and zero-copy replies
// still issues the minimum number of syscalls. A short sendfile return is
// handled inside zerocopy.Send by resuming at the file offset actually
// reached, not by advancing an iovec, so mid-segment stalls cannot skew the
// stream.
func (w *replyWriter) writeBatch(batch []*frame) error {
	need := len(batch) * frameHeaderLen
	if cap(w.hdrs) < need {
		w.hdrs = make([]byte, need)
	}
	hdrs := w.hdrs[:need]
	iov := w.iov[:0]
	flush := func() error {
		if len(iov) == 0 {
			return nil
		}
		// WriteTo consumes its receiver (and advances the elements on
		// partial writes): hand it the wip copy so iov's backing stays
		// reusable, and use a field as the receiver so no slice header
		// escapes per batch.
		w.wip = iov
		_, err := w.wip.WriteTo(w.conn)
		iov = iov[:0]
		return err
	}
	for i, f := range batch {
		if f.payloadLen() > maxPayload {
			w.iov = iov
			return fmt.Errorf("%w: payload %d", ErrBadFrame, f.payloadLen())
		}
		h := hdrs[i*frameHeaderLen : (i+1)*frameHeaderLen]
		encodeFrameHeader(h, f)
		iov = append(iov, h)
		if len(f.payload) > 0 {
			iov = append(iov, f.payload)
		}
		for _, v := range f.vec {
			if len(v) > 0 {
				iov = append(iov, v)
			}
		}
		if f.file != nil && f.fileLen > 0 {
			if err := flush(); err != nil {
				w.iov = iov
				return err
			}
			if _, err := zerocopy.Send(w.conn, f.file, f.fileOff, f.fileLen); err != nil {
				w.iov = iov
				return err
			}
		}
	}
	err := flush()
	w.iov = iov // keep the grown capacity for the next batch
	return err
}

// serveConn handles one client connection. Requests are dispatched
// concurrently (bounded) so pipelined clients overlap server-side I/O;
// responses carry the request id, so completion order need not match arrival
// order. Replies leave through the connection's replyWriter, which batches
// concurrent completions into single vectored writes.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close() //nolint:errcheck
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.stats.activeConns.Add(-1)
	}()
	br := bufio.NewReaderSize(conn, 128<<10)
	rw := newReplyWriter(conn)
	cs := &connState{handles: map[uint32]*openHandle{}}
	var wg sync.WaitGroup
	defer func() {
		wg.Wait()
		for _, oh := range cs.handles {
			oh.release() // the table's reference; queued frames hold their own
		}
	}()
	sem := make(chan struct{}, maxConcurrentPerConn)
	hdr := make([]byte, frameHeaderLen) // per-conn header scratch

	for {
		req, err := readFrame(br, s.payloads, hdr)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) &&
				!errors.Is(err, io.ErrUnexpectedEOF) {
				s.logf("rblock: conn read: %v", err)
			}
			return
		}
		sem <- struct{}{}
		wg.Add(1)
		s.stats.activeReqs.Add(1)
		go func(req *frame) {
			defer func() { s.stats.activeReqs.Add(-1); <-sem; wg.Done() }()
			start := time.Now()
			resp := s.handle(req, cs)
			s.stats.latency.Observe(time.Since(start).Nanoseconds())
			resp.id = req.id
			putFrame(req)
			if err := rw.send(resp); err != nil {
				s.logf("rblock: conn write: %v", err)
				conn.Close() //nolint:errcheck // unblocks the read loop
			}
		}(req)
	}
}

func (s *Server) handle(req *frame, cs *connState) *frame {
	resp := getFrame()
	resp.op = req.op | replyFlag
	fail := func(status uint32) *frame {
		resp.status = status
		return resp
	}
	switch req.op {
	case OpOpen:
		if len(req.payload) == 0 || len(req.payload) > MaxNameLen {
			return fail(StatusBadRequest)
		}
		name := string(req.payload)
		ro := req.flags&1 != 0 || s.readOnly
		f, err := s.store.Open(name, ro)
		if err != nil {
			if errors.Is(err, ErrUnavail) {
				return fail(StatusUnavail)
			}
			return fail(StatusNotFound)
		}
		size, err := f.Size()
		if err != nil {
			f.Close() //nolint:errcheck
			return fail(StatusIO)
		}
		ic := s.stats.image(name)
		oh := &openHandle{f: f, ic: ic, size: size, ro: ro}
		oh.refs.Store(1) // the handle table's reference
		if s.zeroCopy && ro {
			oh.sys = zerocopy.SysFile(f)
		}
		if oh.sys != nil {
			// Advertise jumbo read segments for descriptor-backed handles
			// in the open reply's otherwise-unused offset field; clients
			// that predate the field ignore it and keep rwsize segments.
			resp.offset = uint64(MaxZeroCopySegment)
		}
		cs.mu.Lock()
		cs.nextHandle++
		h := cs.nextHandle
		cs.handles[h] = oh
		cs.mu.Unlock()
		resp.handle = h
		resp.aux = uint64(size)
		s.stats.opens.Add(1)
		ic.opens.Add(1)
		return resp

	case OpRead:
		oh, ok := cs.get(req.handle)
		// zeroCopyMinRead is the smallest read served by sendfile; see the
		// policy comment below.
		const zeroCopyMinRead = DefaultRWSize
		lim := uint64(s.rwsize)
		if ok && oh.sys != nil && lim < MaxZeroCopySegment {
			// Descriptor-backed reads carry no server buffer, so the
			// rwsize cap protecting the payload pool does not apply.
			lim = MaxZeroCopySegment
		}
		if !ok || req.aux == 0 || req.aux > lim {
			if ok {
				oh.release()
			}
			return fail(StatusBadRequest)
		}
		defer oh.release()
		if oh.sys != nil {
			// Zero-copy: reply with a file segment instead of bytes. Only
			// reads spanning at least one rwsize segment qualify — for
			// small boot-time reads the batched writev of pooled buffers
			// beats an extra sendfile syscall per reply, while bulk cache
			// pulls (the jumbo segments above) skip the server-side copy
			// entirely. The length is clamped by the size frozen at open
			// (read-only exports never grow or shrink), mirroring the
			// short read the copy path would produce at EOF; the frame
			// holds its own handle reference until it leaves the wire, so
			// a concurrent OpClose — or eviction unlinking the published
			// file — cannot invalidate the descriptor mid-sendfile.
			off := int64(req.offset)
			if off < oh.size && req.aux >= zeroCopyMinRead {
				n := int64(req.aux)
				if off+n > oh.size {
					n = oh.size - off
				}
				oh.retain()
				resp.file, resp.fileOff, resp.fileLen = oh.sys, off, n
				resp.done = oh.release
				s.stats.readOps.Add(1)
				s.stats.bytesRead.Add(n)
				s.stats.zcSegments.Add(1)
				s.stats.zcBytes.Add(n)
				oh.ic.readOps.Add(1)
				oh.ic.bytesRead.Add(n)
				return resp
			}
			// Sub-segment reads and past-EOF: fall through to the copy
			// path by policy — not counted as fallbacks.
		} else if s.zeroCopy {
			s.stats.zcFallbacks.Add(1)
		}
		bp := s.payloads.get(int(req.aux))
		buf := (*bp)[:req.aux]
		n, err := oh.f.ReadAt(buf, int64(req.offset))
		if err != nil && n == 0 && !errors.Is(err, io.EOF) {
			s.payloads.put(bp)
			if errors.Is(err, ErrUnavail) {
				// The export refuses this range right now (a swarm read
				// over a span the serving cache has not warmed): a
				// per-request refusal, not a broken export.
				return fail(StatusUnavail)
			}
			return fail(StatusIO)
		}
		resp.pooled = bp
		resp.ppool = s.payloads
		resp.payload = buf[:n]
		s.stats.readOps.Add(1)
		s.stats.bytesRead.Add(int64(n))
		oh.ic.readOps.Add(1)
		oh.ic.bytesRead.Add(int64(n))
		return resp

	case OpWrite:
		if s.readOnly {
			return fail(StatusReadOnly)
		}
		oh, ok := cs.get(req.handle)
		if !ok || len(req.payload) == 0 || len(req.payload) > s.rwsize {
			if ok {
				oh.release()
			}
			return fail(StatusBadRequest)
		}
		defer oh.release()
		if err := backend.WriteFull(oh.f, req.payload, int64(req.offset)); err != nil {
			return fail(StatusIO)
		}
		s.stats.writeOps.Add(1)
		s.stats.bytesWritten.Add(int64(len(req.payload)))
		return resp

	case OpSync:
		oh, ok := cs.get(req.handle)
		if !ok {
			return fail(StatusBadRequest)
		}
		defer oh.release()
		if err := oh.f.Sync(); err != nil {
			return fail(StatusIO)
		}
		return resp

	case OpTruncate:
		if s.readOnly {
			return fail(StatusReadOnly)
		}
		oh, ok := cs.get(req.handle)
		if !ok {
			return fail(StatusBadRequest)
		}
		defer oh.release()
		if err := oh.f.Truncate(int64(req.aux)); err != nil {
			return fail(StatusIO)
		}
		return resp

	case OpStat:
		oh, ok := cs.get(req.handle)
		if !ok {
			return fail(StatusBadRequest)
		}
		defer oh.release()
		size, err := oh.f.Size()
		if err != nil {
			return fail(StatusIO)
		}
		resp.aux = uint64(size)
		return resp

	case OpMap:
		if s.maps == nil {
			return fail(StatusBadRequest)
		}
		if len(req.payload) == 0 || len(req.payload) > MaxNameLen {
			return fail(StatusBadRequest)
		}
		enc, err := s.maps.EncodedMap(string(req.payload))
		if err != nil {
			return fail(StatusNotFound)
		}
		if len(enc) > maxPayload {
			return fail(StatusIO)
		}
		resp.payload = enc
		return resp

	case OpManifest:
		if s.chunks == nil {
			return fail(StatusBadRequest)
		}
		if len(req.payload) == 0 || len(req.payload) > MaxNameLen {
			return fail(StatusBadRequest)
		}
		enc, err := s.chunks.EncodedManifest(string(req.payload))
		if err != nil {
			return fail(StatusNotFound)
		}
		if len(enc) > maxPayload {
			return fail(StatusIO)
		}
		resp.payload = enc
		return resp

	case OpChunk:
		if s.chunks == nil {
			return fail(StatusBadRequest)
		}
		if len(req.payload) != HashLen {
			return fail(StatusBadRequest)
		}
		comp, rawLen, err := s.chunks.ChunkBlob([HashLen]byte(req.payload))
		if err != nil {
			return fail(StatusNotFound)
		}
		if len(comp) > maxPayload {
			return fail(StatusIO)
		}
		resp.payload = comp
		resp.aux = uint64(rawLen)
		return resp

	case OpChunkBatch:
		if s.chunks == nil {
			return fail(StatusBadRequest)
		}
		n := len(req.payload) / HashLen
		if n == 0 || n > MaxBatchChunks || len(req.payload) != n*HashLen {
			return fail(StatusBadRequest)
		}
		// Serve the longest prefix of the requested run that the store
		// holds and that fits one frame: the length-prefix slab goes in
		// payload, the blob bodies ride the vec so nothing is copied.
		slab := make([]byte, 0, n*4)
		served := 0
		total := 0
		for i := 0; i < n; i++ {
			comp, _, err := s.chunks.ChunkBlob([HashLen]byte(req.payload[i*HashLen : (i+1)*HashLen]))
			if err != nil {
				break // client re-requests the tail (or falls back)
			}
			if total+len(comp)+4*(served+1) > maxPayload {
				break
			}
			var lp [4]byte
			binary.BigEndian.PutUint32(lp[:], uint32(len(comp)))
			slab = append(slab, lp[:]...)
			resp.vec = append(resp.vec, comp)
			total += len(comp)
			served++
		}
		if served == 0 {
			resp.vec = nil
			return fail(StatusNotFound)
		}
		resp.payload = slab
		resp.aux = uint64(served)
		return resp

	case OpClose:
		cs.mu.Lock()
		oh, ok := cs.handles[req.handle]
		if ok {
			delete(cs.handles, req.handle)
		}
		cs.mu.Unlock()
		if !ok {
			return fail(StatusBadRequest)
		}
		// Drop the table's reference; the actual close may be deferred past
		// this reply if a zero-copy frame still holds the descriptor, so a
		// close error has no caller to reach and is ignored.
		oh.release()
		return resp

	default:
		return fail(StatusBadRequest)
	}
}

// ListenAndLog is a convenience for command-line servers: listens and logs
// the bound address via the standard logger.
func (s *Server) ListenAndLog(addr string) (string, error) {
	bound, err := s.Listen(addr)
	if err != nil {
		return "", err
	}
	log.Printf("rblock: serving on %s (rwsize=%d)", bound, s.rwsize)
	return bound, nil
}
