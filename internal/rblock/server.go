package rblock

import (
	"bufio"
	"errors"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"vmicache/internal/backend"
)

// ServerStats aggregates traffic over all connections — the "observed
// traffic at the storage node" of Fig. 9 for real deployments.
type ServerStats struct {
	BytesRead    atomic.Int64 // payload bytes served to clients
	BytesWritten atomic.Int64 // payload bytes received from clients
	ReadOps      atomic.Int64
	WriteOps     atomic.Int64
	Opens        atomic.Int64
	Conns        atomic.Int64
}

// Server exports a Store over TCP.
type Server struct {
	store  backend.Store
	rwsize int
	stats  ServerStats

	mu       sync.Mutex
	ln       net.Listener
	closed   bool
	conns    map[net.Conn]struct{}
	logf     func(format string, args ...any)
	readOnly bool
}

// ServerOpts configures a Server.
type ServerOpts struct {
	// RWSize caps per-request transfer size (0 = DefaultRWSize).
	RWSize int
	// ReadOnly rejects writes and truncates (a published base-image
	// export).
	ReadOnly bool
	// Logf, when non-nil, receives connection-level errors.
	Logf func(format string, args ...any)
}

// NewServer returns a server exporting store.
func NewServer(store backend.Store, opts ServerOpts) *Server {
	rw := opts.RWSize
	if rw <= 0 {
		rw = DefaultRWSize
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		store:    store,
		rwsize:   rw,
		conns:    make(map[net.Conn]struct{}),
		logf:     logf,
		readOnly: opts.ReadOnly,
	}
}

// Stats exposes the server's traffic counters.
func (s *Server) Stats() *ServerStats { return &s.stats }

// Listen starts accepting on addr ("127.0.0.1:0" for an ephemeral port) and
// returns the bound address. Serving happens on background goroutines until
// Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close() //nolint:errcheck
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.stats.Conns.Add(1)
		go s.serveConn(conn)
	}
}

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	for c := range s.conns {
		c.Close() //nolint:errcheck
	}
	return err
}

// maxConcurrentPerConn bounds how many requests of one connection are
// dispatched simultaneously.
const maxConcurrentPerConn = 16

// connState is the per-connection handle table, shared by the concurrent
// request handlers.
type connState struct {
	mu         sync.Mutex
	handles    map[uint32]backend.File
	nextHandle uint32
}

func (cs *connState) get(h uint32) (backend.File, bool) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	f, ok := cs.handles[h]
	return f, ok
}

// serveConn handles one client connection. Requests are dispatched
// concurrently (bounded) so pipelined clients overlap server-side I/O;
// responses carry the request id, so completion order need not match arrival
// order. Frame writes are serialised by a per-connection mutex.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close() //nolint:errcheck
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 128<<10)
	bw := bufio.NewWriterSize(conn, 128<<10)
	cs := &connState{handles: map[uint32]backend.File{}}
	var wmu sync.Mutex
	var wg sync.WaitGroup
	defer func() {
		wg.Wait()
		for _, f := range cs.handles {
			f.Close() //nolint:errcheck
		}
	}()
	sem := make(chan struct{}, maxConcurrentPerConn)

	for {
		req, err := readFrame(br)
		if err != nil {
			if !errors.Is(err, net.ErrClosed) && err.Error() != "EOF" {
				s.logf("rblock: conn read: %v", err)
			}
			return
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(req *frame) {
			defer func() { <-sem; wg.Done() }()
			resp := s.handle(req, cs)
			resp.id = req.id
			wmu.Lock()
			err := writeFrame(bw, resp)
			if err == nil {
				err = bw.Flush()
			}
			wmu.Unlock()
			if err != nil {
				s.logf("rblock: conn write: %v", err)
				conn.Close() //nolint:errcheck // unblocks the read loop
			}
		}(req)
	}
}

func (s *Server) handle(req *frame, cs *connState) *frame {
	resp := &frame{op: req.op | replyFlag}
	fail := func(status uint32) *frame {
		resp.status = status
		return resp
	}
	switch req.op {
	case OpOpen:
		if len(req.payload) == 0 || len(req.payload) > MaxNameLen {
			return fail(StatusBadRequest)
		}
		ro := req.flags&1 != 0 || s.readOnly
		f, err := s.store.Open(string(req.payload), ro)
		if err != nil {
			return fail(StatusNotFound)
		}
		size, err := f.Size()
		if err != nil {
			f.Close() //nolint:errcheck
			return fail(StatusIO)
		}
		cs.mu.Lock()
		cs.nextHandle++
		h := cs.nextHandle
		cs.handles[h] = f
		cs.mu.Unlock()
		resp.handle = h
		resp.aux = uint64(size)
		s.stats.Opens.Add(1)
		return resp

	case OpRead:
		f, ok := cs.get(req.handle)
		if !ok || req.aux == 0 || req.aux > uint64(s.rwsize) {
			return fail(StatusBadRequest)
		}
		buf := make([]byte, req.aux)
		n, err := f.ReadAt(buf, int64(req.offset))
		if err != nil && n == 0 && err.Error() != "EOF" {
			return fail(StatusIO)
		}
		resp.payload = buf[:n]
		s.stats.ReadOps.Add(1)
		s.stats.BytesRead.Add(int64(n))
		return resp

	case OpWrite:
		if s.readOnly {
			return fail(StatusReadOnly)
		}
		f, ok := cs.get(req.handle)
		if !ok || len(req.payload) == 0 || len(req.payload) > s.rwsize {
			return fail(StatusBadRequest)
		}
		if err := backend.WriteFull(f, req.payload, int64(req.offset)); err != nil {
			return fail(StatusIO)
		}
		s.stats.WriteOps.Add(1)
		s.stats.BytesWritten.Add(int64(len(req.payload)))
		return resp

	case OpSync:
		f, ok := cs.get(req.handle)
		if !ok {
			return fail(StatusBadRequest)
		}
		if err := f.Sync(); err != nil {
			return fail(StatusIO)
		}
		return resp

	case OpTruncate:
		if s.readOnly {
			return fail(StatusReadOnly)
		}
		f, ok := cs.get(req.handle)
		if !ok {
			return fail(StatusBadRequest)
		}
		if err := f.Truncate(int64(req.aux)); err != nil {
			return fail(StatusIO)
		}
		return resp

	case OpStat:
		f, ok := cs.get(req.handle)
		if !ok {
			return fail(StatusBadRequest)
		}
		size, err := f.Size()
		if err != nil {
			return fail(StatusIO)
		}
		resp.aux = uint64(size)
		return resp

	case OpClose:
		cs.mu.Lock()
		f, ok := cs.handles[req.handle]
		if ok {
			delete(cs.handles, req.handle)
		}
		cs.mu.Unlock()
		if !ok {
			return fail(StatusBadRequest)
		}
		if err := f.Close(); err != nil {
			return fail(StatusIO)
		}
		return resp

	default:
		return fail(StatusBadRequest)
	}
}

// ListenAndLog is a convenience for command-line servers: listens and logs
// the bound address via the standard logger.
func (s *Server) ListenAndLog(addr string) (string, error) {
	bound, err := s.Listen(addr)
	if err != nil {
		return "", err
	}
	log.Printf("rblock: serving on %s (rwsize=%d)", bound, s.rwsize)
	return bound, nil
}
