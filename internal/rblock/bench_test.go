package rblock

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vmicache/internal/backend"
	"vmicache/internal/metrics"
)

// newBenchPair starts a loopback server exporting one image and returns an
// open remote file, with both ends registered on live metrics registries so
// the measured path includes instrumentation.
func newBenchPair(b *testing.B, size int64) *RemoteFile {
	b.Helper()
	store := backend.NewMemStore()
	f, err := store.Create("img")
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Truncate(size); err != nil {
		b.Fatal(err)
	}
	return benchServe(b, store, ServerOpts{})
}

// newBenchPairOS is the published-cache shape: the export is a real file on
// disk, so a ZeroCopy server ships read replies with sendfile instead of the
// pread+writev copy path.
func newBenchPairOS(b *testing.B, size int64, zeroCopy bool) *RemoteFile {
	b.Helper()
	store, err := backend.NewDirStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	f, err := store.Create("img")
	if err != nil {
		b.Fatal(err)
	}
	// Real (non-sparse) content: fill so sendfile moves actual blocks.
	chunk := make([]byte, 1<<20)
	for i := range chunk {
		chunk[i] = byte(i * 31)
	}
	for off := int64(0); off < size; off += int64(len(chunk)) {
		if err := backend.WriteFull(f, chunk, off); err != nil {
			b.Fatal(err)
		}
	}
	// Flush the fill's dirty pages before the timer starts: background
	// writeback mid-measurement costs up to 2x on a small machine.
	if err := f.Sync(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	return benchServe(b, store, ServerOpts{ZeroCopy: zeroCopy})
}

func benchServe(b *testing.B, store backend.Store, opts ServerOpts) *RemoteFile {
	b.Helper()
	srv := NewServer(store, opts)
	srv.RegisterMetrics(metrics.NewRegistry(), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() }) //nolint:errcheck // benchmark teardown
	c, err := Dial(addr, 0)
	if err != nil {
		b.Fatal(err)
	}
	c.RegisterMetrics(metrics.NewRegistry(), nil)
	b.Cleanup(func() { c.Close() }) //nolint:errcheck // benchmark teardown
	rf, err := c.Open("img", true)
	if err != nil {
		b.Fatal(err)
	}
	return rf
}

// BenchmarkRoundTrip measures single-segment request latency over loopback.
func BenchmarkRoundTrip(b *testing.B) {
	const span = 64 << 10
	rf := newBenchPair(b, 64<<20)
	buf := make([]byte, span)
	b.SetBytes(span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * span) % (32 << 20)
		if _, err := rf.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinedRead measures a large multi-segment read whose segments
// are pipelined on the shared connection.
func BenchmarkPipelinedRead(b *testing.B) {
	const span = 4 << 20 // 64 segments at the default rwsize
	rf := newBenchPair(b, 64<<20)
	buf := make([]byte, span)
	b.SetBytes(span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * span) % (32 << 20)
		if _, err := rf.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerReadLarge measures bulk transfer throughput at image-warm
// spans (1 MiB and 4 MiB per call, pipelined as rwsize segments) in the
// peer-export configuration: a published cache on disk served with zero-copy
// on, so read replies ship via sendfile between the writev'd headers. The
// vectored reply writer should still coalesce the headers of many in-flight
// replies, and the frame/segment pools should hold allocs/op near-constant
// regardless of span.
func BenchmarkServerReadLarge(b *testing.B) {
	for _, span := range []int64{1 << 20, 4 << 20} {
		span := span
		b.Run(fmt.Sprintf("%dMiB", span>>20), func(b *testing.B) {
			rf := newBenchPairOS(b, 64<<20, true)
			buf := make([]byte, span)
			b.SetBytes(span)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (int64(i) * span) % (32 << 20)
				if _, err := rf.ReadAt(buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerReadZeroCopy isolates the sendfile reply path against the
// pread+copy path on the identical on-disk export, at the latency-bound
// (4 KiB) and throughput-bound (1 MiB) extremes.
func BenchmarkServerReadZeroCopy(b *testing.B) {
	for _, tc := range []struct {
		name string
		span int64
		zc   bool
	}{
		{"4KiB/copy", 4 << 10, false},
		{"4KiB/sendfile", 4 << 10, true},
		{"1MiB/copy", 1 << 20, false},
		{"1MiB/sendfile", 1 << 20, true},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			rf := newBenchPairOS(b, 64<<20, tc.zc)
			buf := make([]byte, tc.span)
			b.SetBytes(tc.span)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (int64(i) * tc.span) % (32 << 20)
				if _, err := rf.ReadAt(buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkContendedServerRead measures small reads under 64-way client
// concurrency against a zero-copy export — the flash-crowd shape where many
// nodes pull one published cache at once. Beyond throughput it reports tail
// latency (p99-ns), which head-of-line blocking in the reply writer would
// inflate long before mean throughput shows it.
func BenchmarkContendedServerRead(b *testing.B) {
	const (
		span  = 4 << 10
		conns = 8
		g     = 64
	)
	store, err := backend.NewDirStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	f, err := store.Create("img")
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, 1<<20)
	for i := range chunk {
		chunk[i] = byte(i * 31)
	}
	for off := int64(0); off < 64<<20; off += int64(len(chunk)) {
		if err := backend.WriteFull(f, chunk, off); err != nil {
			b.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil { // keep writeback out of the timed window
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	srv := NewServer(store, ServerOpts{ZeroCopy: true})
	srv.RegisterMetrics(metrics.NewRegistry(), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() }) //nolint:errcheck // benchmark teardown
	rfs := make([]*RemoteFile, conns)
	for i := range rfs {
		c, err := Dial(addr, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() }) //nolint:errcheck // benchmark teardown
		if rfs[i], err = c.Open("img", true); err != nil {
			b.Fatal(err)
		}
	}
	bufs := make([][]byte, g)
	for w := range bufs {
		bufs[w] = make([]byte, span)
	}
	lat := make([]int64, b.N)
	b.SetBytes(span)
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		rf, buf := rfs[w%conns], bufs[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				off := (i * span) % (32 << 20)
				t0 := time.Now()
				if _, err := rf.ReadAt(buf, off); err != nil {
					b.Error(err)
					return
				}
				lat[i] = int64(time.Since(t0))
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	slices.Sort(lat)
	if n := len(lat); n > 0 {
		i := n * 99 / 100
		if i >= n {
			i = n - 1
		}
		b.ReportMetric(float64(lat[i]), "p99-ns")
	}
}

// BenchmarkServerRead4K measures the small-read round trip that dominates
// sub-cluster demand fills (4 KiB exact-length segments). Loopback runs both
// ends in-process, so allocs/op covers the server's request handling too: the
// pooled reply buffers must keep the steady-state read path free of per-
// request payload allocations.
func BenchmarkServerRead4K(b *testing.B) {
	const span = 4 << 10
	rf := newBenchPair(b, 64<<20)
	buf := make([]byte, span)
	b.SetBytes(span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * span) % (32 << 20)
		if _, err := rf.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}
