package rblock

import (
	"fmt"
	"testing"

	"vmicache/internal/backend"
	"vmicache/internal/metrics"
)

// newBenchPair starts a loopback server exporting one image and returns an
// open remote file, with both ends registered on live metrics registries so
// the measured path includes instrumentation.
func newBenchPair(b *testing.B, size int64) *RemoteFile {
	b.Helper()
	store := backend.NewMemStore()
	f, err := store.Create("img")
	if err != nil {
		b.Fatal(err)
	}
	if err := f.Truncate(size); err != nil {
		b.Fatal(err)
	}
	srv := NewServer(store, ServerOpts{})
	srv.RegisterMetrics(metrics.NewRegistry(), nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() }) //nolint:errcheck // benchmark teardown
	c, err := Dial(addr, 0)
	if err != nil {
		b.Fatal(err)
	}
	c.RegisterMetrics(metrics.NewRegistry(), nil)
	b.Cleanup(func() { c.Close() }) //nolint:errcheck // benchmark teardown
	rf, err := c.Open("img", true)
	if err != nil {
		b.Fatal(err)
	}
	return rf
}

// BenchmarkRoundTrip measures single-segment request latency over loopback.
func BenchmarkRoundTrip(b *testing.B) {
	const span = 64 << 10
	rf := newBenchPair(b, 64<<20)
	buf := make([]byte, span)
	b.SetBytes(span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * span) % (32 << 20)
		if _, err := rf.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelinedRead measures a large multi-segment read whose segments
// are pipelined on the shared connection.
func BenchmarkPipelinedRead(b *testing.B) {
	const span = 4 << 20 // 64 segments at the default rwsize
	rf := newBenchPair(b, 64<<20)
	buf := make([]byte, span)
	b.SetBytes(span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * span) % (32 << 20)
		if _, err := rf.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerReadLarge measures bulk transfer throughput at image-warm
// spans (1 MiB and 4 MiB per call, pipelined as rwsize segments). The
// vectored reply writer should coalesce many in-flight replies into single
// writev calls, and the payload/frame/segment pools should hold allocs/op
// near-constant regardless of span.
func BenchmarkServerReadLarge(b *testing.B) {
	for _, span := range []int64{1 << 20, 4 << 20} {
		span := span
		b.Run(fmt.Sprintf("%dMiB", span>>20), func(b *testing.B) {
			rf := newBenchPair(b, 64<<20)
			buf := make([]byte, span)
			b.SetBytes(span)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (int64(i) * span) % (32 << 20)
				if _, err := rf.ReadAt(buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerRead4K measures the small-read round trip that dominates
// sub-cluster demand fills (4 KiB exact-length segments). Loopback runs both
// ends in-process, so allocs/op covers the server's request handling too: the
// pooled reply buffers must keep the steady-state read path free of per-
// request payload allocations.
func BenchmarkServerRead4K(b *testing.B) {
	const span = 4 << 10
	rf := newBenchPair(b, 64<<20)
	buf := make([]byte, span)
	b.SetBytes(span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * span) % (32 << 20)
		if _, err := rf.ReadAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}
