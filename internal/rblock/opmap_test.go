package rblock

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"vmicache/internal/backend"
)

// fakeMaps is a MapSource over a fixed name → encoding table.
type fakeMaps map[string][]byte

func (f fakeMaps) EncodedMap(name string) ([]byte, error) {
	enc, ok := f[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", backend.ErrNotExist, name)
	}
	return enc, nil
}

func TestOpMapRoundTrip(t *testing.T) {
	store := backend.NewMemStore()
	enc := []byte{1, 2, 3, 4, 5}
	srv := NewServer(store, ServerOpts{Maps: fakeMaps{"swarm:img.vmic": enc}})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck

	c := dial(t, addr, 0)
	got, err := c.FetchMap("swarm:img.vmic")
	if err != nil {
		t.Fatalf("FetchMap: %v", err)
	}
	if !bytes.Equal(got, enc) {
		t.Fatalf("FetchMap = %v, want %v", got, enc)
	}
	// Unknown names are a NotFound, and the connection survives.
	if _, err := c.FetchMap("swarm:other.vmic"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown map: %v, want ErrNotFound", err)
	}
	if got, err := c.FetchMap("swarm:img.vmic"); err != nil || !bytes.Equal(got, enc) {
		t.Fatalf("after miss: %v, %v", got, err)
	}
	// Client-side validation: empty names never hit the wire.
	if _, err := c.FetchMap(""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestOpMapWithoutSource(t *testing.T) {
	_, addr, _ := newServer(t, ServerOpts{})
	c := dial(t, addr, 0)
	if _, err := c.FetchMap("swarm:img.vmic"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("no map source: %v, want ErrBadRequest", err)
	}
}

// unavailFile refuses reads below a validity watermark with ErrUnavail, the
// per-request refusal a partially warm swarm export uses.
type unavailFile struct {
	backend.File
	validBelow int64
}

func (f *unavailFile) ReadAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > f.validBelow {
		return 0, ErrUnavail
	}
	return f.File.ReadAt(p, off)
}

// unavailStore serves one file, optionally refusing opens entirely.
type unavailStore struct {
	backend.Store
	wrap func(backend.File) backend.File
}

func (s *unavailStore) Open(name string, ro bool) (backend.File, error) {
	f, err := s.Store.Open(name, ro)
	if err != nil {
		return nil, err
	}
	return s.wrap(f), nil
}

func TestStatusUnavailRead(t *testing.T) {
	mem := backend.NewMemStore()
	f, err := mem.Create("part.img")
	if err != nil {
		t.Fatal(err)
	}
	seed := bytes.Repeat([]byte{0xAB}, 8<<10)
	if err := backend.WriteFull(f, seed, 0); err != nil {
		t.Fatal(err)
	}
	store := &unavailStore{Store: mem, wrap: func(f backend.File) backend.File {
		return &unavailFile{File: f, validBelow: 4 << 10}
	}}
	srv := NewServer(store, ServerOpts{ReadOnly: true})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck

	c := dial(t, addr, 0)
	rf, err := c.Open("part.img", true)
	if err != nil {
		t.Fatal(err)
	}
	// A read past the watermark is refused per-request...
	buf := make([]byte, 4<<10)
	if _, err := rf.ReadAt(buf, 4<<10); !errors.Is(err, ErrUnavail) {
		t.Fatalf("read past watermark: %v, want ErrUnavail", err)
	}
	// ...and the connection is NOT poisoned: valid ranges still serve.
	if err := backend.ReadFull(rf, buf, 0); err != nil {
		t.Fatalf("read below watermark after refusal: %v", err)
	}
	if !bytes.Equal(buf, seed[:4<<10]) {
		t.Fatal("data mismatch after ErrUnavail refusal")
	}
}
