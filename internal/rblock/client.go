package rblock

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"

	"vmicache/internal/backend"
)

// Client multiplexes remote files over one TCP connection. Requests are
// synchronous (one outstanding at a time), like the sync NFS reads of the
// paper's boot workload.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	rwsize int
	closed bool
}

// Dial connects to a server. rwsize caps per-request transfers (0 uses the
// default); it must not exceed the server's limit.
func Dial(addr string, rwsize int) (*Client, error) {
	if rwsize <= 0 {
		rwsize = DefaultRWSize
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn:   conn,
		br:     bufio.NewReaderSize(conn, 128<<10),
		bw:     bufio.NewWriterSize(conn, 128<<10),
		rwsize: rwsize,
	}, nil
}

// Close terminates the connection; open RemoteFiles become unusable.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// roundTrip sends a request and reads its response.
func (c *Client) roundTrip(req *frame) (*frame, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if err := writeFrame(c.bw, req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.br)
	if err != nil {
		return nil, err
	}
	if resp.op != req.op|replyFlag {
		return nil, fmt.Errorf("%w: mismatched reply op %#x", ErrBadFrame, resp.op)
	}
	if err := statusErr(resp.status); err != nil {
		return nil, err
	}
	return resp, nil
}

// RemoteFile is an open remote file implementing backend.File.
type RemoteFile struct {
	c      *Client
	handle uint32
	size   int64
	ro     bool
	closed bool
	mu     sync.Mutex
}

// Open opens a remote file by its export name.
func (c *Client) Open(name string, readOnly bool) (*RemoteFile, error) {
	var flags uint8
	if readOnly {
		flags = 1
	}
	resp, err := c.roundTrip(&frame{op: OpOpen, flags: flags, payload: []byte(name)})
	if err != nil {
		return nil, err
	}
	return &RemoteFile{c: c, handle: resp.handle, size: int64(resp.aux), ro: readOnly}, nil
}

// ReadAt reads remotely, segmenting to the negotiated rwsize. Reads past the
// remote end yield io.EOF with a short count, matching io.ReaderAt.
func (f *RemoteFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, ErrBadRequest
	}
	done := 0
	for done < len(p) {
		want := len(p) - done
		if want > f.c.rwsize {
			want = f.c.rwsize
		}
		resp, err := f.c.roundTrip(&frame{
			op:     OpRead,
			handle: f.handle,
			offset: uint64(off + int64(done)),
			aux:    uint64(want),
		})
		if err != nil {
			return done, err
		}
		n := copy(p[done:], resp.payload)
		done += n
		if n < want {
			return done, io.EOF
		}
	}
	return done, nil
}

// WriteAt writes remotely in rwsize segments.
func (f *RemoteFile) WriteAt(p []byte, off int64) (int, error) {
	if f.ro {
		return 0, ErrReadOnly
	}
	done := 0
	for done < len(p) {
		want := len(p) - done
		if want > f.c.rwsize {
			want = f.c.rwsize
		}
		_, err := f.c.roundTrip(&frame{
			op:      OpWrite,
			handle:  f.handle,
			offset:  uint64(off + int64(done)),
			payload: p[done : done+want],
		})
		if err != nil {
			return done, err
		}
		done += want
	}
	if end := off + int64(len(p)); end > f.size {
		f.mu.Lock()
		if end > f.size {
			f.size = end
		}
		f.mu.Unlock()
	}
	return done, nil
}

// Size queries the remote size.
func (f *RemoteFile) Size() (int64, error) {
	resp, err := f.c.roundTrip(&frame{op: OpStat, handle: f.handle})
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	f.size = int64(resp.aux)
	f.mu.Unlock()
	return int64(resp.aux), nil
}

// Truncate resizes the remote file.
func (f *RemoteFile) Truncate(n int64) error {
	if f.ro {
		return ErrReadOnly
	}
	_, err := f.c.roundTrip(&frame{op: OpTruncate, handle: f.handle, aux: uint64(n)})
	if err == nil {
		f.mu.Lock()
		f.size = n
		f.mu.Unlock()
	}
	return err
}

// Sync flushes the remote file.
func (f *RemoteFile) Sync() error {
	_, err := f.c.roundTrip(&frame{op: OpSync, handle: f.handle})
	return err
}

// Close releases the remote handle (the connection stays open for other
// files).
func (f *RemoteFile) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	_, err := f.c.roundTrip(&frame{op: OpClose, handle: f.handle})
	return err
}

// RemoteStore adapts a Client to backend.Store, so a remote export can be
// registered in a core.Namespace and backing-file names like
// "storage:centos.img" resolve across the network. Create and Remove are
// not part of the wire protocol — exports are managed server-side — so they
// fail with ErrReadOnly.
type RemoteStore struct {
	C *Client
}

// Open opens a remote file as a backend.File.
func (s RemoteStore) Open(name string, readOnly bool) (backend.File, error) {
	return s.C.Open(name, readOnly)
}

// Create is unsupported on remote stores.
func (s RemoteStore) Create(name string) (backend.File, error) {
	return nil, fmt.Errorf("%w: remote stores cannot create %q", ErrReadOnly, name)
}

// Remove is unsupported on remote stores.
func (s RemoteStore) Remove(name string) error {
	return fmt.Errorf("%w: remote stores cannot remove %q", ErrReadOnly, name)
}

// Stat reports a remote file's size by opening it briefly.
func (s RemoteStore) Stat(name string) (int64, error) {
	f, err := s.C.Open(name, true)
	if err != nil {
		return 0, err
	}
	defer f.Close() //nolint:errcheck // read-only probe handle
	return f.size, nil
}

// compile-time interface check.
var _ backend.Store = RemoteStore{}
