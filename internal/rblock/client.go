package rblock

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vmicache/internal/backend"
	"vmicache/internal/metrics"
)

// DefaultTimeout bounds how long a request may go unanswered before the
// client declares the connection broken.
const DefaultTimeout = 30 * time.Second

// clientMaxInflightSegments caps how many segments of one large ReadAt /
// WriteAt are pipelined concurrently.
const clientMaxInflightSegments = 8

// Client multiplexes remote files over one pipelined TCP connection:
// multiple requests may be in flight at once, each tagged with a request id;
// a background reader goroutine demultiplexes responses to their waiters.
// Any read error, timeout, or protocol violation marks the client broken —
// the stream's framing can no longer be trusted — and every pending and
// subsequent call fails fast with ErrClientBroken.
type Client struct {
	conn   net.Conn
	bw     *bufio.Writer
	rwsize int

	// wmu serialises frame writes and flushes on the shared connection;
	// whdr is the header scratch used under it (a stack array would escape
	// through the io.Writer interface and cost one allocation per request).
	wmu  sync.Mutex
	whdr [frameHeaderLen]byte

	// mu guards the demux state below.
	mu      sync.Mutex
	pending map[uint32]pendingReq
	nextID  uint32
	closed  bool
	broken  error // first fatal error; non-nil once the stream is unusable

	timeout time.Duration

	// maxInflight overrides clientMaxInflightSegments when positive; deep
	// prefetch queues raise it so one large readahead fetch saturates the
	// pipe (SetMaxInflight).
	maxInflight atomic.Int32

	// bumpedRcvbuf records that the receive buffer was enlarged for jumbo
	// zero-copy replies (done once, on the first jumbo-advertised open).
	bumpedRcvbuf atomic.Bool

	// payloads recycles response payload buffers (rwsize each); chanPool
	// recycles roundTrip reply channels and segPool the per-call segment
	// slices of large ReadAt/WriteAt, so a pipelined stream allocates
	// neither in steady state.
	payloads *payloadPool
	chanPool sync.Pool
	segPool  sync.Pool

	ctr clientCounters
}

// pendingReq is one awaited response: the waiter's channel plus, for reads,
// the caller's destination buffer — the read loop lands the payload there
// directly, so large reads cost no intermediate buffer or copy.
type pendingReq struct {
	ch  chan *frame
	dst []byte
}

// getChan returns a reply channel for one round trip. Channels are recycled
// ONLY after a successful receive: fail() closes every pending channel, so a
// channel that went through a broken client must never be reused.
func (c *Client) getChan() chan *frame {
	if v := c.chanPool.Get(); v != nil {
		return v.(chan *frame)
	}
	return make(chan *frame, 1)
}

func (c *Client) putChan(ch chan *frame) { c.chanPool.Put(ch) }

// getSegs returns a pooled segment slice (by pointer so recycling does not
// allocate).
func (c *Client) getSegs() *[]segment {
	if v := c.segPool.Get(); v != nil {
		p := v.(*[]segment)
		*p = (*p)[:0]
		return p
	}
	return new([]segment)
}

func (c *Client) putSegs(p *[]segment) { c.segPool.Put(p) }

// clientCounters are the client's live instruments: plain atomics updated on
// the request path, sampled by Stats and RegisterMetrics.
type clientCounters struct {
	requests atomic.Int64 // round trips issued
	bytesOut atomic.Int64 // request payload bytes (writes)
	bytesIn  atomic.Int64 // response payload bytes (reads)
	broken   atomic.Int64 // fatal transport failures (excludes local Close)
	inflight atomic.Int64 // requests currently awaiting a response
	rtt      metrics.AtomicHistogram
}

// ClientStats is a point-in-time snapshot of a client's counters.
type ClientStats struct {
	Requests int64
	BytesOut int64
	BytesIn  int64
	Broken   int64
	Inflight int64
	RTT      metrics.HistogramSnapshot
}

// Stats snapshots the client's counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Requests: c.ctr.requests.Load(),
		BytesOut: c.ctr.bytesOut.Load(),
		BytesIn:  c.ctr.bytesIn.Load(),
		Broken:   c.ctr.broken.Load(),
		Inflight: c.ctr.inflight.Load(),
		RTT:      c.ctr.rtt.Snapshot(),
	}
}

// RegisterMetrics exposes the client's counters on a registry. Sampling
// happens at scrape time; the request path keeps its atomics-only profile.
func (c *Client) RegisterMetrics(r *metrics.Registry, labels metrics.Labels) {
	r.CounterFunc("vmicache_rblock_client_requests_total",
		"Round trips issued on the connection.", labels, c.ctr.requests.Load)
	r.CounterFunc("vmicache_rblock_client_bytes_sent_total",
		"Request payload bytes written to the connection.", labels, c.ctr.bytesOut.Load)
	r.CounterFunc("vmicache_rblock_client_bytes_received_total",
		"Response payload bytes read from the connection.", labels, c.ctr.bytesIn.Load)
	r.CounterFunc("vmicache_rblock_client_broken_total",
		"Fatal transport failures that marked the client broken.", labels, c.ctr.broken.Load)
	r.GaugeFunc("vmicache_rblock_client_inflight",
		"Requests currently pipelined and awaiting a response.", labels, c.ctr.inflight.Load)
	r.RegisterHistogram("vmicache_rblock_client_rtt_ns",
		"Request round-trip time, send through matched response.", labels, &c.ctr.rtt)
}

// Dial connects to a server. rwsize caps per-request transfers (0 uses the
// default); it must not exceed the server's limit.
func Dial(addr string, rwsize int) (*Client, error) {
	if rwsize <= 0 {
		rwsize = DefaultRWSize
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:     conn,
		bw:       bufio.NewWriterSize(conn, 128<<10),
		rwsize:   rwsize,
		pending:  make(map[uint32]pendingReq),
		timeout:  DefaultTimeout,
		payloads: newPayloadPool(rwsize),
	}
	go c.readLoop(bufio.NewReaderSize(conn, 128<<10))
	return c, nil
}

// SetTimeout adjusts the per-request deadline (0 disables deadlines).
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Close terminates the connection; open RemoteFiles become unusable and
// pending requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.fail(ErrClosed)
	return err
}

// fail marks the client broken with cause err, tears down the connection,
// and releases every waiter.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
		if err != ErrClosed {
			c.ctr.broken.Add(1)
		}
	}
	waiters := c.pending
	c.pending = make(map[uint32]pendingReq)
	c.mu.Unlock()
	c.conn.Close() //nolint:errcheck // already failing; nothing to report
	for _, pr := range waiters {
		close(pr.ch)
	}
}

// readLoop demultiplexes responses to their waiting requests until the
// connection dies. The read deadline is armed whenever requests are pending
// (see roundTrip) and cleared when the pipeline drains, so an idle
// connection never times out. The header is parsed before the payload is
// read so payloads of successful reads land directly in the waiting caller's
// destination buffer (pendingReq.dst) — jumbo zero-copy segments then cross
// the client without an intermediate buffer or copy.
func (c *Client) readLoop(br *bufio.Reader) {
	hdr := make([]byte, frameHeaderLen)
	be := binary.BigEndian
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			c.fail(err)
			return
		}
		if be.Uint32(hdr[0:]) != Magic {
			c.fail(ErrBadFrame)
			return
		}
		n := be.Uint32(hdr[24:])
		if n > maxPayload {
			c.fail(ErrBadFrame)
			return
		}
		id := be.Uint32(hdr[8:])
		c.mu.Lock()
		pr, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		if len(c.pending) == 0 {
			c.conn.SetReadDeadline(time.Time{}) //nolint:errcheck
		} else if c.timeout > 0 {
			c.conn.SetReadDeadline(time.Now().Add(c.timeout)) //nolint:errcheck
		}
		c.mu.Unlock()
		if !ok {
			// A response nobody asked for: the stream is desynchronised.
			c.fail(fmt.Errorf("%w: unsolicited response id %d", ErrBadFrame, id))
			return
		}
		resp := getFrame()
		resp.op = Op(hdr[4])
		resp.flags = hdr[5]
		resp.status = uint32(be.Uint16(hdr[6:]))
		resp.id = id
		resp.handle = be.Uint32(hdr[12:])
		resp.offset = be.Uint64(hdr[16:])
		resp.aux = be.Uint64(hdr[28:])
		if n > 0 {
			if pr.dst != nil && resp.status == 0 && int(n) <= len(pr.dst) {
				// In-place delivery; the waiter owns dst until it
				// receives resp, so this write cannot race it.
				resp.payload = pr.dst[:n]
			} else {
				resp.pooled = c.payloads.get(int(n))
				resp.ppool = c.payloads
				resp.payload = (*resp.pooled)[:n]
			}
			if _, err := io.ReadFull(br, resp.payload); err != nil {
				putFrame(resp)
				c.fail(err)
				return
			}
		}
		pr.ch <- resp
	}
}

// brokenErr reports the fail-fast error for a broken client.
func (c *Client) brokenErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return fmt.Errorf("%w: %v", ErrClientBroken, c.broken)
}

// roundTrip sends a request and waits for its response. Concurrent callers
// pipeline: their requests share the connection and complete independently.
// roundTrip takes ownership of req (recycled once serialised); on success
// the caller owns the returned response and must recycle it with putFrame
// after consuming its payload. dst, when non-nil, receives a successful
// response's payload in place (the response then aliases it); the caller
// must own dst until the response arrives.
func (c *Client) roundTrip(req *frame, dst []byte) (*frame, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		putFrame(req)
		return nil, ErrClosed
	}
	if c.broken != nil {
		c.mu.Unlock()
		putFrame(req)
		return nil, c.brokenErr()
	}
	ch := c.getChan()
	start := time.Now()
	c.ctr.requests.Add(1)
	c.ctr.bytesOut.Add(int64(len(req.payload)))
	c.ctr.inflight.Add(1)
	defer c.ctr.inflight.Add(-1)
	c.nextID++
	req.id = c.nextID
	c.pending[req.id] = pendingReq{ch: ch, dst: dst}
	if c.timeout > 0 {
		// Arm (or extend) the read deadline: progress is expected while
		// anything is in flight.
		c.conn.SetReadDeadline(time.Now().Add(c.timeout)) //nolint:errcheck
	}
	timeout := c.timeout
	c.mu.Unlock()

	c.wmu.Lock()
	if timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(timeout)) //nolint:errcheck
	}
	var err error
	if len(req.payload) > maxPayload {
		err = fmt.Errorf("%w: payload %d", ErrBadFrame, len(req.payload))
	} else {
		encodeFrameHeader(c.whdr[:], req)
		_, err = c.bw.Write(c.whdr[:])
		if err == nil && len(req.payload) > 0 {
			_, err = c.bw.Write(req.payload)
		}
		if err == nil {
			err = c.bw.Flush()
		}
	}
	c.wmu.Unlock()
	op := req.op
	putFrame(req)
	if err != nil {
		c.fail(err)
		return nil, c.brokenErr()
	}

	resp, ok := <-ch
	if !ok {
		// fail() closed the channel; it must not be reused (see getChan).
		return nil, c.brokenErr()
	}
	c.putChan(ch)
	if resp.op != op|replyFlag {
		c.fail(fmt.Errorf("%w: mismatched reply op %#x", ErrBadFrame, resp.op))
		putFrame(resp)
		return nil, c.brokenErr()
	}
	if err := statusErr(resp.status); err != nil {
		putFrame(resp)
		return nil, err
	}
	c.ctr.bytesIn.Add(int64(len(resp.payload)))
	c.ctr.rtt.Observe(time.Since(start).Nanoseconds())
	return resp, nil
}

// FetchMap queries the chunk-validity map advertised for an export name (no
// open handle needed). The returned bytes are an encoded swarm chunk map,
// owned by the caller. Exports not currently advertised yield ErrNotFound;
// servers without a map source yield ErrBadRequest.
func (c *Client) FetchMap(name string) ([]byte, error) {
	if name == "" || len(name) > MaxNameLen {
		return nil, ErrBadRequest
	}
	req := getFrame()
	req.op, req.payload = OpMap, []byte(name)
	resp, err := c.roundTrip(req, nil)
	if err != nil {
		return nil, err
	}
	enc := make([]byte, len(resp.payload))
	copy(enc, resp.payload)
	putFrame(resp)
	return enc, nil
}

// FetchManifest queries the chunk manifest advertised for a published
// export name (no open handle needed). The returned bytes are an encoded
// dedup manifest, owned by the caller. Exports without a committed
// manifest yield ErrNotFound; servers without a chunk source yield
// ErrBadRequest.
func (c *Client) FetchManifest(name string) ([]byte, error) {
	if name == "" || len(name) > MaxNameLen {
		return nil, ErrBadRequest
	}
	req := getFrame()
	req.op, req.payload = OpManifest, []byte(name)
	resp, err := c.roundTrip(req, nil)
	if err != nil {
		return nil, err
	}
	enc := make([]byte, len(resp.payload))
	copy(enc, resp.payload)
	putFrame(resp)
	return enc, nil
}

// FetchChunk fetches one content-addressed chunk by SHA-256. It returns
// the compressed length-framed blob exactly as the peer stores it (the
// caller decodes and hash-verifies it, so a corrupt transfer surfaces as a
// corrupt-blob error) plus the raw length the server advertised. Unknown
// hashes yield ErrNotFound.
func (c *Client) FetchChunk(hash [HashLen]byte) (comp []byte, rawLen int64, err error) {
	req := getFrame()
	req.op, req.payload = OpChunk, hash[:]
	resp, err := c.roundTrip(req, nil)
	if err != nil {
		return nil, 0, err
	}
	comp = make([]byte, len(resp.payload))
	copy(comp, resp.payload)
	rawLen = int64(resp.aux)
	putFrame(resp)
	return comp, rawLen, nil
}

// FetchChunkBatch fetches a run of content-addressed chunks in one round
// trip. The server answers with the longest prefix of hashes it holds that
// fits one frame, so the returned slice has between 1 and len(hashes)
// compressed length-framed blobs, in request order; the caller re-requests
// the unserved tail (typically after a prefix chunk landed elsewhere). A
// first hash the server is missing yields ErrNotFound; servers that predate
// the op yield ErrBadRequest — callers fall back to per-chunk FetchChunk.
func (c *Client) FetchChunkBatch(hashes [][HashLen]byte) ([][]byte, error) {
	if len(hashes) == 0 || len(hashes) > MaxBatchChunks {
		return nil, ErrBadRequest
	}
	req := getFrame()
	req.op = OpChunkBatch
	pay := make([]byte, 0, len(hashes)*HashLen)
	for i := range hashes {
		pay = append(pay, hashes[i][:]...)
	}
	req.payload = pay
	resp, err := c.roundTrip(req, nil)
	if err != nil {
		return nil, err
	}
	defer putFrame(resp)
	served := int(resp.aux)
	if served == 0 || served > len(hashes) || len(resp.payload) < served*4 {
		c.fail(fmt.Errorf("%w: chunk batch count %d", ErrBadFrame, served))
		return nil, c.brokenErr()
	}
	// One copy of the whole payload, then subslice each record out of it.
	body := make([]byte, len(resp.payload))
	copy(body, resp.payload)
	blobs := make([][]byte, 0, served)
	off := served * 4
	for i := 0; i < served; i++ {
		n := int(binary.BigEndian.Uint32(body[i*4:]))
		if n < 0 || off+n > len(body) {
			c.fail(fmt.Errorf("%w: chunk batch record %d", ErrBadFrame, i))
			return nil, c.brokenErr()
		}
		blobs = append(blobs, body[off:off+n])
		off += n
	}
	if off != len(body) {
		c.fail(fmt.Errorf("%w: chunk batch trailing %d bytes", ErrBadFrame, len(body)-off))
		return nil, c.brokenErr()
	}
	return blobs, nil
}

// RemoteFile is an open remote file implementing backend.File.
type RemoteFile struct {
	c      *Client
	handle uint32
	size   int64
	ro     bool
	closed bool
	mu     sync.Mutex

	// readSeg, when positive, overrides the connection rwsize for read
	// segmentation: the server advertised jumbo segments at open because it
	// serves this handle zero-copy (no per-request buffer on its side).
	// Writes always stay rwsize-bounded.
	readSeg int
}

// Open opens a remote file by its export name.
func (c *Client) Open(name string, readOnly bool) (*RemoteFile, error) {
	var flags uint8
	if readOnly {
		flags = 1
	}
	req := getFrame()
	req.op, req.flags, req.payload = OpOpen, flags, []byte(name)
	resp, err := c.roundTrip(req, nil)
	if err != nil {
		return nil, err
	}
	rf := &RemoteFile{c: c, handle: resp.handle, size: int64(resp.aux), ro: readOnly}
	if seg := int(resp.offset); seg > c.rwsize {
		if seg > MaxZeroCopySegment {
			seg = MaxZeroCopySegment // distrust the advertisement
		}
		rf.readSeg = seg
		// A jumbo advertisement means bulk zero-copy pulls are coming:
		// give the kernel room for several segments so the server's
		// sendfile completes without blocking and the next segments
		// stream while the caller drains this one (one segment of
		// buffer measured ~2x slower — sendfile stalls against the
		// copy-out instead of overlapping it). Deliberately not done at
		// Dial: small-read connections (swarm chunk pulls, boot-time
		// demand fills) should not pin megabytes of receive buffer.
		if c.bumpedRcvbuf.CompareAndSwap(false, true) {
			if tc, ok := c.conn.(*net.TCPConn); ok {
				tc.SetReadBuffer(4 * MaxZeroCopySegment) //nolint:errcheck // best-effort tuning
			}
		}
	}
	putFrame(resp)
	return rf, nil
}

// segment is one rwsize-bounded slice of a larger request.
type segment struct {
	start int // offset into p
	n     int
}

// segments appends total split into segSize-bounded pieces to segs (pass a
// pooled slice from getSegs).
func (f *RemoteFile) segments(segs []segment, total, segSize int) []segment {
	for start := 0; start < total; start += segSize {
		n := total - start
		if n > segSize {
			n = segSize
		}
		segs = append(segs, segment{start: start, n: n})
	}
	return segs
}

// readSegSize is the per-read segment bound: the handle's jumbo size when the
// server serves it zero-copy, the connection rwsize otherwise.
func (f *RemoteFile) readSegSize() int {
	if f.readSeg > 0 {
		return f.readSeg
	}
	return f.c.rwsize
}

// ReadAt reads remotely, segmenting to the negotiated rwsize. Multi-segment
// reads are pipelined: all segments go out on the wire before the first
// response is awaited, so one large read costs roughly one round trip plus
// transfer instead of one round trip per segment. Reads past the remote end
// yield io.EOF with a short count, matching io.ReaderAt.
func (f *RemoteFile) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, ErrBadRequest
	}
	readSeg := func(s segment) (int, error) {
		dst := p[s.start : s.start+s.n]
		req := getFrame()
		req.op = OpRead
		req.handle = f.handle
		req.offset = uint64(off + int64(s.start))
		req.aux = uint64(s.n)
		resp, err := f.c.roundTrip(req, dst)
		if err != nil {
			return 0, err
		}
		n := len(resp.payload)
		if n > 0 && &resp.payload[0] != &dst[0] {
			// Pooled delivery (the read loop declined in-place delivery,
			// e.g. an oversized reply): copy out as before.
			n = copy(dst, resp.payload)
		}
		putFrame(resp)
		return n, nil
	}
	sp := f.c.getSegs()
	defer f.c.putSegs(sp)
	segs := f.segments(*sp, len(p), f.readSegSize())
	*sp = segs
	if len(segs) <= 1 {
		done := 0
		for _, s := range segs {
			n, err := readSeg(s)
			done += n
			if err != nil {
				return done, err
			}
			if n < s.n {
				return done, io.EOF
			}
		}
		return done, nil
	}
	ns, err := f.inParallel(segs, readSeg)
	done := 0
	for i, s := range segs {
		done += ns[i]
		if ns[i] < s.n {
			if err == nil {
				err = io.EOF
			}
			break
		}
	}
	return done, err
}

// WriteAt writes remotely in rwsize segments, pipelined like ReadAt.
func (f *RemoteFile) WriteAt(p []byte, off int64) (int, error) {
	if f.ro {
		return 0, ErrReadOnly
	}
	writeSeg := func(s segment) (int, error) {
		req := getFrame()
		req.op = OpWrite
		req.handle = f.handle
		req.offset = uint64(off + int64(s.start))
		req.payload = p[s.start : s.start+s.n]
		resp, err := f.c.roundTrip(req, nil)
		if err != nil {
			return 0, err
		}
		putFrame(resp)
		return s.n, nil
	}
	sp := f.c.getSegs()
	defer f.c.putSegs(sp)
	segs := f.segments(*sp, len(p), f.c.rwsize)
	*sp = segs
	var done int
	var err error
	if len(segs) <= 1 {
		for _, s := range segs {
			var n int
			n, err = writeSeg(s)
			done += n
		}
	} else {
		var ns []int
		ns, err = f.inParallel(segs, writeSeg)
		for i, s := range segs {
			done += ns[i]
			if ns[i] < s.n {
				break
			}
		}
	}
	if err != nil {
		return done, err
	}
	f.mu.Lock()
	if end := off + int64(len(p)); end > f.size {
		f.size = end
	}
	f.mu.Unlock()
	return done, nil
}

// SetMaxInflight overrides how many segments of one large ReadAt/WriteAt are
// pipelined concurrently (default clientMaxInflightSegments). Prefetchers
// issuing multi-megabyte coalesced fetches raise it so a single deep request
// keeps the connection full; n < 1 restores the default. Safe to call
// concurrently with I/O — in-flight requests keep the depth they started
// with.
func (c *Client) SetMaxInflight(n int) {
	if n < 1 {
		n = 0
	}
	c.maxInflight.Store(int32(n))
}

// inflightCap reports the current per-request segment pipelining depth.
func (c *Client) inflightCap() int {
	if n := c.maxInflight.Load(); n > 0 {
		return int(n)
	}
	return clientMaxInflightSegments
}

// inParallel runs op over every segment with bounded concurrency and returns
// per-segment completed byte counts plus the first error in segment order.
// A fixed pool of inflightCap workers claims segments via an atomic cursor —
// a 64-segment read spawns at most inflightCap goroutines, not 64.
func (f *RemoteFile) inParallel(segs []segment, op func(segment) (int, error)) ([]int, error) {
	ns := make([]int, len(segs))
	errs := make([]error, len(segs))
	workers := f.c.inflightCap()
	if workers > len(segs) {
		workers = len(segs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(segs) {
					return
				}
				ns[i], errs[i] = op(segs[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return ns, err
		}
	}
	return ns, nil
}

// Size queries the remote size.
func (f *RemoteFile) Size() (int64, error) {
	req := getFrame()
	req.op, req.handle = OpStat, f.handle
	resp, err := f.c.roundTrip(req, nil)
	if err != nil {
		return 0, err
	}
	size := int64(resp.aux)
	putFrame(resp)
	f.mu.Lock()
	f.size = size
	f.mu.Unlock()
	return size, nil
}

// Truncate resizes the remote file.
func (f *RemoteFile) Truncate(n int64) error {
	if f.ro {
		return ErrReadOnly
	}
	req := getFrame()
	req.op, req.handle, req.aux = OpTruncate, f.handle, uint64(n)
	resp, err := f.c.roundTrip(req, nil)
	if err == nil {
		putFrame(resp)
		f.mu.Lock()
		f.size = n
		f.mu.Unlock()
	}
	return err
}

// Sync flushes the remote file.
func (f *RemoteFile) Sync() error {
	req := getFrame()
	req.op, req.handle = OpSync, f.handle
	resp, err := f.c.roundTrip(req, nil)
	if err == nil {
		putFrame(resp)
	}
	return err
}

// Close releases the remote handle (the connection stays open for other
// files).
func (f *RemoteFile) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	req := getFrame()
	req.op, req.handle = OpClose, f.handle
	resp, err := f.c.roundTrip(req, nil)
	if err == nil {
		putFrame(resp)
	}
	return err
}

// RemoteStore adapts a Client to backend.Store, so a remote export can be
// registered in a core.Namespace and backing-file names like
// "storage:centos.img" resolve across the network. Create and Remove are
// not part of the wire protocol — exports are managed server-side — so they
// fail with ErrReadOnly.
type RemoteStore struct {
	C *Client
}

// Open opens a remote file as a backend.File.
func (s RemoteStore) Open(name string, readOnly bool) (backend.File, error) {
	return s.C.Open(name, readOnly)
}

// Create is unsupported on remote stores.
func (s RemoteStore) Create(name string) (backend.File, error) {
	return nil, fmt.Errorf("%w: remote stores cannot create %q", ErrReadOnly, name)
}

// Remove is unsupported on remote stores.
func (s RemoteStore) Remove(name string) error {
	return fmt.Errorf("%w: remote stores cannot remove %q", ErrReadOnly, name)
}

// Stat reports a remote file's size by opening it briefly.
func (s RemoteStore) Stat(name string) (int64, error) {
	f, err := s.C.Open(name, true)
	if err != nil {
		return 0, err
	}
	defer f.Close() //nolint:errcheck // read-only probe handle
	return f.size, nil
}

// compile-time interface check.
var _ backend.Store = RemoteStore{}
