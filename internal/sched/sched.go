// Package sched implements the cache-aware cloud scheduler sketched in §3.4
// of the paper. OpenNebula-style base policies — packing, striping and
// load-aware mapping — are combined with the cache-aware heuristic
// ("allocation of VMs to nodes with an existing warm cache") and LRU
// eviction of VMI caches at node level.
//
// The paper leaves this component as future work; the implementation here
// follows its design discussion so the heuristic's effect can be measured
// (see the scheduler ablation benchmark).
package sched

import (
	"errors"
	"fmt"
	"sort"

	"vmicache/internal/core"
)

// Policy is the base placement policy.
type Policy int

// Base policies, mirroring OpenNebula's scheduler options (§3.4).
const (
	// Packing minimises the number of nodes in use by stacking VMs.
	Packing Policy = iota
	// Striping spreads VMs across nodes to maximise per-VM headroom.
	Striping
	// LoadAware places VMs on the least-loaded node.
	LoadAware
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Packing:
		return "packing"
	case Striping:
		return "striping"
	case LoadAware:
		return "load-aware"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// VMSpec describes a placement request.
type VMSpec struct {
	ID  string
	VMI string // base image the VM boots from
	CPU int    // requested cores
	Mem int64  // requested bytes
}

// Node is one compute node's scheduling state.
type Node struct {
	ID        string
	CPUCap    int
	MemCap    int64
	usedCPU   int
	usedMem   int64
	vms       map[string]VMSpec
	caches    *core.Pool // warm caches present on this node, keyed by VMI
	extraLoad float64    // external load signal for load-aware placement
}

// NewNode returns a node with the given capacities and cache budget.
func NewNode(id string, cpu int, mem int64, cacheBudget int64) *Node {
	return &Node{
		ID:     id,
		CPUCap: cpu,
		MemCap: mem,
		vms:    make(map[string]VMSpec),
		caches: core.NewPool(cacheBudget),
	}
}

// Fits reports whether the VM fits the node's remaining capacity.
func (n *Node) Fits(vm VMSpec) bool {
	return n.usedCPU+vm.CPU <= n.CPUCap && n.usedMem+vm.Mem <= n.MemCap
}

// Load reports the node's utilisation in [0,1+] (max of CPU and memory),
// plus any external load signal.
func (n *Node) Load() float64 {
	cpu := float64(n.usedCPU) / float64(maxInt(n.CPUCap, 1))
	mem := float64(n.usedMem) / float64(maxI64(n.MemCap, 1))
	l := cpu
	if mem > l {
		l = mem
	}
	return l + n.extraLoad
}

// SetExternalLoad feeds a load signal (e.g. host CPU pressure) into
// load-aware placement.
func (n *Node) SetExternalLoad(l float64) { n.extraLoad = l }

// VMs reports the number of VMs placed on the node.
func (n *Node) VMs() int { return len(n.vms) }

// HasWarmCache reports whether the node holds a warm cache for the VMI
// (without touching LRU recency).
func (n *Node) HasWarmCache(vmi string) bool { return n.caches.Contains(vmi) }

// CachePool exposes the node's cache pool (for eviction wiring).
func (n *Node) CachePool() *core.Pool { return n.caches }

// Errors returned by the scheduler.
var (
	ErrNoCapacity = errors.New("sched: no node has capacity for the VM")
	ErrUnknownVM  = errors.New("sched: unknown VM")
	ErrDuplicate  = errors.New("sched: VM already placed")
)

// Decision records one placement.
type Decision struct {
	Node *Node
	// WarmCache reports whether the chosen node already held a warm
	// cache for the VM's image.
	WarmCache bool
}

// Scheduler places VMs on nodes.
type Scheduler struct {
	policy     Policy
	cacheAware bool
	nodes      []*Node
	placements map[string]*Node
	rrNext     int // striping round-robin cursor

	warmPlacements int64
	coldPlacements int64
}

// New returns a scheduler with the given base policy; cacheAware enables
// the §3.4 warm-cache preference.
func New(policy Policy, cacheAware bool) *Scheduler {
	return &Scheduler{
		policy:     policy,
		cacheAware: cacheAware,
		placements: make(map[string]*Node),
	}
}

// AddNode registers a node.
func (s *Scheduler) AddNode(n *Node) { s.nodes = append(s.nodes, n) }

// Nodes returns the registered nodes.
func (s *Scheduler) Nodes() []*Node { return s.nodes }

// Schedule picks a node for the VM, reserves its resources, and reports
// whether the placement hit a warm cache.
func (s *Scheduler) Schedule(vm VMSpec) (*Decision, error) {
	if _, dup := s.placements[vm.ID]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, vm.ID)
	}
	var candidates []*Node
	for _, n := range s.nodes {
		if n.Fits(vm) {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoCapacity, vm.ID)
	}

	pool := candidates
	if s.cacheAware {
		// "One of the goals of a cache-aware scheduler should be
		// allocation of VMs to nodes with an existing warm cache.
		// This heuristic can be used in conjunction with any of the
		// above desired strategies." (§3.4)
		var warmNodes []*Node
		for _, n := range candidates {
			if n.HasWarmCache(vm.VMI) {
				warmNodes = append(warmNodes, n)
			}
		}
		if len(warmNodes) > 0 {
			pool = warmNodes
		}
	}

	chosen := s.applyPolicy(pool)
	// A cache-oblivious scheduler can still land on a warm node by luck;
	// the hit is a property of the chosen node, not of the heuristic.
	warm := chosen.HasWarmCache(vm.VMI)
	chosen.usedCPU += vm.CPU
	chosen.usedMem += vm.Mem
	chosen.vms[vm.ID] = vm
	s.placements[vm.ID] = chosen
	if warm {
		chosen.caches.Lookup(vm.VMI) // refresh recency
		s.warmPlacements++
	} else {
		s.coldPlacements++
	}
	return &Decision{Node: chosen, WarmCache: warm}, nil
}

// applyPolicy orders the candidate pool by the base policy and returns the
// winner. Ties break on node ID for determinism.
func (s *Scheduler) applyPolicy(pool []*Node) *Node {
	switch s.policy {
	case Packing:
		// Most-loaded node that still fits: minimise nodes in use.
		return minNode(pool, func(a, b *Node) bool {
			if a.Load() != b.Load() {
				return a.Load() > b.Load()
			}
			return a.ID < b.ID
		})
	case Striping:
		// Round-robin over the pool, then fewest VMs.
		sort.Slice(pool, func(i, j int) bool {
			if pool[i].VMs() != pool[j].VMs() {
				return pool[i].VMs() < pool[j].VMs()
			}
			return pool[i].ID < pool[j].ID
		})
		n := pool[s.rrNext%len(pool)]
		s.rrNext++
		// Prefer the emptiest; the cursor only breaks ties among
		// equally empty nodes.
		if pool[0].VMs() < n.VMs() {
			n = pool[0]
		}
		return n
	default: // LoadAware
		return minNode(pool, func(a, b *Node) bool {
			if a.Load() != b.Load() {
				return a.Load() < b.Load()
			}
			return a.ID < b.ID
		})
	}
}

func minNode(pool []*Node, better func(a, b *Node) bool) *Node {
	best := pool[0]
	for _, n := range pool[1:] {
		if better(n, best) {
			best = n
		}
	}
	return best
}

// Release frees a VM's resources.
func (s *Scheduler) Release(vmID string) error {
	n, ok := s.placements[vmID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownVM, vmID)
	}
	vm := n.vms[vmID]
	n.usedCPU -= vm.CPU
	n.usedMem -= vm.Mem
	delete(n.vms, vmID)
	delete(s.placements, vmID)
	return nil
}

// NodeOf reports where a VM runs.
func (s *Scheduler) NodeOf(vmID string) (*Node, bool) {
	n, ok := s.placements[vmID]
	return n, ok
}

// RecordWarmCache registers that a node now holds a warm cache of the given
// size for a VMI (typically after the first boot completes), applying the
// node's LRU budget.
func (s *Scheduler) RecordWarmCache(n *Node, vmi string, size int64) (evicted []string) {
	ev, _ := n.caches.Add(vmi, size)
	return ev
}

// Stats reports (warm placements, cold placements).
func (s *Scheduler) Stats() (warm, cold int64) { return s.warmPlacements, s.coldPlacements }

// WarmRatio reports the fraction of placements that landed on a warm cache.
func (s *Scheduler) WarmRatio() float64 {
	total := s.warmPlacements + s.coldPlacements
	if total == 0 {
		return 0
	}
	return float64(s.warmPlacements) / float64(total)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
