package sched

import (
	"fmt"
	"math/rand"
	"time"
)

// WorkloadParams drives a synthetic multi-tenant placement trace: VMs of
// Zipf-popular images arrive, run, and depart, the way a public IaaS cloud's
// scheduler sees them (§2.2, §3.4).
type WorkloadParams struct {
	Seed     int64
	Arrivals int // total VM starts
	VMIs     int // distinct images
	// ZipfS > 1 skews popularity ("popular VMIs in public clouds").
	ZipfS float64
	// Lifetime is how many subsequent arrivals a VM stays alive for
	// (mean, geometric).
	MeanLifetime int
	// VM sizing.
	CPU int
	Mem int64
	// WarmBoot and ColdBoot are the boot costs in the two cases, taken
	// from the cluster experiments (warm cache vs QCOW2/cold).
	WarmBoot time.Duration
	ColdBoot time.Duration
	// CacheSize is the per-VMI warm cache size for pool accounting.
	CacheSize int64
}

// SimResult summarises one scheduler simulation.
type SimResult struct {
	Placed       int
	Rejected     int
	WarmRatio    float64
	MeanBoot     time.Duration
	TotalBoot    time.Duration
	NodesUsed    int
	CacheEvicted int
}

// Simulate replays the synthetic trace against the scheduler, modelling
// boot cost as WarmBoot on warm placements and ColdBoot otherwise (after a
// cold boot, the node gains a warm cache for that VMI). Departures follow a
// geometric lifetime in arrival counts, keeping the cluster at a steady
// occupancy.
func Simulate(s *Scheduler, p WorkloadParams) (*SimResult, error) {
	if p.Arrivals <= 0 || p.VMIs <= 0 {
		return nil, fmt.Errorf("sched: invalid workload %+v", p)
	}
	rnd := rand.New(rand.NewSource(p.Seed))
	zipf := rand.NewZipf(rnd, p.ZipfS, 1, uint64(p.VMIs-1))

	type liveVM struct {
		id       string
		deadline int // arrival index at which it departs
	}
	var live []liveVM
	res := &SimResult{}
	evictedTotal := 0

	for i := 0; i < p.Arrivals; i++ {
		// Departures due at this arrival.
		kept := live[:0]
		for _, vm := range live {
			if vm.deadline <= i {
				if err := s.Release(vm.id); err != nil {
					return nil, err
				}
			} else {
				kept = append(kept, vm)
			}
		}
		live = kept

		vmi := fmt.Sprintf("vmi-%d", zipf.Uint64())
		spec := VMSpec{
			ID:  fmt.Sprintf("vm-%d", i),
			VMI: vmi,
			CPU: p.CPU,
			Mem: p.Mem,
		}
		dec, err := s.Schedule(spec)
		if err != nil {
			res.Rejected++
			continue
		}
		res.Placed++
		if dec.WarmCache {
			res.TotalBoot += p.WarmBoot
		} else {
			res.TotalBoot += p.ColdBoot
			// The boot warmed a cache on that node.
			evicted := s.RecordWarmCache(dec.Node, vmi, p.CacheSize)
			evictedTotal += len(evicted)
		}
		lifetime := 1
		for rnd.Float64() > 1.0/float64(maxInt(p.MeanLifetime, 1)) {
			lifetime++
		}
		live = append(live, liveVM{id: spec.ID, deadline: i + lifetime})
	}

	if res.Placed > 0 {
		res.MeanBoot = res.TotalBoot / time.Duration(res.Placed)
	}
	res.WarmRatio = s.WarmRatio()
	for _, n := range s.Nodes() {
		if n.VMs() > 0 || n.CachePool().Len() > 0 {
			res.NodesUsed++
		}
	}
	res.CacheEvicted = evictedTotal
	return res, nil
}
