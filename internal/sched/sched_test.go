package sched

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

const gb = int64(1) << 30

func cluster(t *testing.T, n int, policy Policy, cacheAware bool) *Scheduler {
	t.Helper()
	s := New(policy, cacheAware)
	for i := 0; i < n; i++ {
		s.AddNode(NewNode(fmt.Sprintf("node-%02d", i), 8, 24*gb, 2*gb))
	}
	return s
}

func spec(id, vmi string) VMSpec {
	return VMSpec{ID: id, VMI: vmi, CPU: 1, Mem: gb}
}

func TestPackingStacksVMs(t *testing.T) {
	s := cluster(t, 4, Packing, false)
	var first *Node
	for i := 0; i < 8; i++ {
		d, err := s.Schedule(spec(fmt.Sprintf("vm%d", i), "img"))
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = d.Node
		}
		if d.Node != first {
			t.Fatalf("packing spread to %s before filling %s", d.Node.ID, first.ID)
		}
	}
	if first.VMs() != 8 {
		t.Fatalf("first node holds %d VMs", first.VMs())
	}
	// Ninth VM must overflow to another node.
	d, err := s.Schedule(spec("vm8", "img"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Node == first {
		t.Fatal("packing overfilled a node")
	}
}

func TestStripingSpreadsVMs(t *testing.T) {
	s := cluster(t, 4, Striping, false)
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		d, err := s.Schedule(spec(fmt.Sprintf("vm%d", i), "img"))
		if err != nil {
			t.Fatal(err)
		}
		counts[d.Node.ID]++
	}
	for id, c := range counts {
		if c != 2 {
			t.Fatalf("striping unbalanced: %s has %d", id, c)
		}
	}
}

func TestLoadAwarePicksLeastLoaded(t *testing.T) {
	s := cluster(t, 3, LoadAware, false)
	s.Nodes()[0].SetExternalLoad(0.9)
	s.Nodes()[1].SetExternalLoad(0.5)
	s.Nodes()[2].SetExternalLoad(0.1)
	d, err := s.Schedule(spec("vm0", "img"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Node.ID != "node-02" {
		t.Fatalf("load-aware picked %s", d.Node.ID)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	s := New(Packing, false)
	s.AddNode(NewNode("n", 1, gb, 0))
	if _, err := s.Schedule(spec("a", "img")); err != nil {
		t.Fatal(err)
	}
	_, err := s.Schedule(spec("b", "img"))
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Release("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(spec("b", "img")); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestDuplicateAndUnknown(t *testing.T) {
	s := cluster(t, 1, Packing, false)
	if _, err := s.Schedule(spec("a", "img")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Schedule(spec("a", "img")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("dup err = %v", err)
	}
	if err := s.Release("ghost"); !errors.Is(err, ErrUnknownVM) {
		t.Fatalf("unknown err = %v", err)
	}
}

func TestCacheAwarePrefersWarmNodes(t *testing.T) {
	s := cluster(t, 4, Striping, true)
	warmNode := s.Nodes()[3]
	s.RecordWarmCache(warmNode, "centos", 100<<20)

	// Striping alone would pick an empty low-ID node; cache-awareness
	// must override toward node-03.
	d, err := s.Schedule(spec("vm0", "centos"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Node != warmNode || !d.WarmCache {
		t.Fatalf("placed on %s (warm=%v)", d.Node.ID, d.WarmCache)
	}
	// A different image has no warm node: falls back to the base policy.
	d2, err := s.Schedule(spec("vm1", "debian"))
	if err != nil {
		t.Fatal(err)
	}
	if d2.WarmCache {
		t.Fatal("warm placement without a cache")
	}
	warm, cold := s.Stats()
	if warm != 1 || cold != 1 {
		t.Fatalf("stats: %d/%d", warm, cold)
	}
	if s.WarmRatio() != 0.5 {
		t.Fatalf("ratio = %v", s.WarmRatio())
	}
}

func TestCacheAwareRespectsCapacity(t *testing.T) {
	s := New(Packing, true)
	tiny := NewNode("tiny", 1, gb, gb)
	big := NewNode("big", 8, 24*gb, gb)
	s.AddNode(tiny)
	s.AddNode(big)
	s.RecordWarmCache(tiny, "centos", 100<<20)
	if _, err := s.Schedule(spec("a", "centos")); err != nil {
		t.Fatal(err)
	}
	// tiny is now full; the warm preference must not override capacity.
	d, err := s.Schedule(spec("b", "centos"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Node != big || d.WarmCache {
		t.Fatalf("placed on %s warm=%v", d.Node.ID, d.WarmCache)
	}
}

func TestNodeCacheLRUEviction(t *testing.T) {
	s := cluster(t, 1, Packing, true)
	n := s.Nodes()[0]
	ev := s.RecordWarmCache(n, "a", gb)
	if len(ev) != 0 {
		t.Fatalf("evicted %v", ev)
	}
	s.RecordWarmCache(n, "b", gb)
	ev = s.RecordWarmCache(n, "c", gb) // budget 2 GB: evicts "a"
	if len(ev) != 1 || ev[0] != "a" {
		t.Fatalf("evicted %v", ev)
	}
	if n.HasWarmCache("a") || !n.HasWarmCache("b") || !n.HasWarmCache("c") {
		t.Fatal("LRU state wrong")
	}
}

func TestSimulateCacheAwareBeatsOblivious(t *testing.T) {
	params := WorkloadParams{
		Seed:         11,
		Arrivals:     2000,
		VMIs:         20,
		ZipfS:        1.4,
		MeanLifetime: 40,
		CPU:          1,
		Mem:          gb,
		WarmBoot:     35 * time.Second,
		ColdBoot:     140 * time.Second,
		CacheSize:    100 << 20,
	}
	aware := cluster(t, 16, Striping, true)
	oblivious := cluster(t, 16, Striping, false)
	ra, err := Simulate(aware, params)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Simulate(oblivious, params)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Placed == 0 || ro.Placed == 0 {
		t.Fatal("nothing placed")
	}
	if ra.WarmRatio <= ro.WarmRatio {
		t.Fatalf("cache-aware warm ratio %.2f <= oblivious %.2f", ra.WarmRatio, ro.WarmRatio)
	}
	if ra.MeanBoot >= ro.MeanBoot {
		t.Fatalf("cache-aware boot %v >= oblivious %v", ra.MeanBoot, ro.MeanBoot)
	}
	// With a skewed image mix, awareness should reach a solid hit rate.
	if ra.WarmRatio < 0.5 {
		t.Fatalf("cache-aware warm ratio only %.2f", ra.WarmRatio)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	params := WorkloadParams{
		Seed: 3, Arrivals: 500, VMIs: 10, ZipfS: 1.2, MeanLifetime: 20,
		CPU: 1, Mem: gb, WarmBoot: time.Second, ColdBoot: 4 * time.Second,
		CacheSize: 64 << 20,
	}
	a, err := Simulate(cluster(t, 8, LoadAware, true), params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cluster(t, 8, LoadAware, true), params)
	if err != nil {
		t.Fatal(err)
	}
	if a.WarmRatio != b.WarmRatio || a.TotalBoot != b.TotalBoot || a.Placed != b.Placed {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(cluster(t, 1, Packing, true), WorkloadParams{}); err == nil {
		t.Fatal("accepted empty workload")
	}
}

func TestPolicyString(t *testing.T) {
	if Packing.String() != "packing" || Striping.String() != "striping" || LoadAware.String() != "load-aware" {
		t.Fatal("policy names")
	}
	if Policy(9).String() == "" {
		t.Fatal("unknown policy name")
	}
}
