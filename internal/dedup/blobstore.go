package dedup

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// BlobStore is the per-pool content-addressed store behind cachemgr's
// dedup tier. Chunks live as compressed blobs named by their SHA-256;
// manifests name the chunk sequence of each published cache. Reference
// counts are *derived* — a blob's refcount is the number of manifests
// whose entry list includes it — so the on-disk state is self-describing
// and crash recovery is a scan, not a log replay.
//
// Layout under the root directory:
//
//	blobs/<hh>/<64-hex>.z   8-byte big-endian raw length + flate stream
//	manifests/<name>.vmm    Manifest.Encode bytes
//
// Crash ordering mirrors cachemgr publication: every blob of a manifest is
// durable before the manifest itself commits (tmp → fsync → rename → dir
// fsync). Blob landings themselves are group-committed: Put writes and
// renames the blob visible without fsync, recording it dirty, and Commit
// flushes every dirty blob file and touched blob directory in one batch
// before the manifest file commits — one fsync window per publication
// instead of one per chunk. A crash in between leaves orphan blobs —
// referenced by no manifest — which Open's startup sweep deletes,
// alongside stray *.tmp files from either stage.
type BlobStore struct {
	dir string

	mu        sync.Mutex
	refs      map[Key]int // manifest references
	staged    map[Key]int // in-flight publications holding the blob pre-Commit
	blobs     map[Key]blobInfo
	manifests map[string]*Manifest
	logical   int64 // sum of manifest lengths

	// dirty tracks blob files written but not yet fsynced, and the blob
	// subdirectories their renames dirtied. flushMu serialises flushes so
	// a Commit never proceeds while another flush that snapshotted its
	// blobs is still in flight.
	dirty     map[string]struct{}
	dirtyDirs map[string]struct{}
	flushMu   sync.Mutex
}

type blobInfo struct {
	rawLen  int64
	compLen int64
}

// ErrCorruptBlob reports a blob whose decompressed content fails its hash.
var ErrCorruptBlob = errors.New("dedup: corrupt blob")

// ErrNoBlob reports a blob absent from the store.
var ErrNoBlob = errors.New("dedup: no such blob")

const (
	blobSuffix     = ".z"
	manifestSuffix = ".vmm"
	blobHdrLen     = 8
)

// OpenBlobStore opens (creating if needed) the store rooted at dir,
// rebuilds refcounts from the manifests on disk, and sweeps orphan blobs
// and temp files left by a crash between blob and manifest commit.
func OpenBlobStore(dir string) (*BlobStore, error) {
	s := &BlobStore{
		dir:       dir,
		refs:      make(map[Key]int),
		staged:    make(map[Key]int),
		blobs:     make(map[Key]blobInfo),
		manifests: make(map[string]*Manifest),
		dirty:     make(map[string]struct{}),
		dirtyDirs: make(map[string]struct{}),
	}
	for _, d := range []string{s.blobDir(), s.manifestDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	// Load manifests first: they define which blobs are live.
	ments, err := os.ReadDir(s.manifestDir())
	if err != nil {
		return nil, err
	}
	for _, de := range ments {
		name := de.Name()
		path := filepath.Join(s.manifestDir(), name)
		if !strings.HasSuffix(name, manifestSuffix) {
			os.Remove(path) //nolint:errcheck // best-effort temp cleanup
			continue
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		m, err := DecodeManifest(b)
		if err != nil {
			// A torn or stale manifest is dropped, never served; its
			// blobs become orphans and the sweep below reclaims them.
			os.Remove(path) //nolint:errcheck // corrupt entry, best effort
			continue
		}
		s.indexManifest(strings.TrimSuffix(name, manifestSuffix), m)
	}
	// Sweep the blob tree: index live blobs, delete orphans and temps.
	err = filepath.WalkDir(s.blobDir(), func(path string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		key, ok := parseBlobName(de.Name())
		if !ok || s.refs[key] == 0 {
			os.Remove(path) //nolint:errcheck // orphan/temp, best effort
			return nil
		}
		info, err := de.Info()
		if err != nil {
			return err
		}
		raw, rerr := readBlobRawLen(path)
		if rerr != nil {
			raw = 0 // unreadable header; kept only because referenced
		}
		s.blobs[key] = blobInfo{rawLen: raw, compLen: info.Size()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (s *BlobStore) blobDir() string     { return filepath.Join(s.dir, "blobs") }
func (s *BlobStore) manifestDir() string { return filepath.Join(s.dir, "manifests") }

func (s *BlobStore) blobPath(k Key) string {
	h := hex.EncodeToString(k[:])
	return filepath.Join(s.blobDir(), h[:2], h+blobSuffix)
}

func parseBlobName(name string) (Key, bool) {
	if !strings.HasSuffix(name, blobSuffix) {
		return Key{}, false
	}
	b, err := hex.DecodeString(strings.TrimSuffix(name, blobSuffix))
	if err != nil || len(b) != sha256.Size {
		return Key{}, false
	}
	return Key(b), true
}

func readBlobRawLen(path string) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close() //nolint:errcheck // read-only handle
	var hdr [blobHdrLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, err
	}
	return int64(binary.BigEndian.Uint64(hdr[:])), nil
}

// indexManifest records m under name, bumping blob refcounts. Caller holds
// the lock (or is still single-threaded in Open).
func (s *BlobStore) indexManifest(name string, m *Manifest) {
	s.manifests[name] = m
	s.logical += m.Length
	for _, e := range m.Entries {
		s.refs[e.Hash]++
	}
}

// gcLocked deletes blob k from disk and the index once nothing holds it:
// no manifest reference and no in-flight publication stage. Caller holds
// the lock — the file removal rides along so a racing Put of the same hash
// cannot interleave between the index delete and the unlink.
func (s *BlobStore) gcLocked(k Key) {
	if s.refs[k] > 0 || s.staged[k] > 0 {
		return
	}
	delete(s.refs, k)
	delete(s.staged, k)
	delete(s.blobs, k)
	path := s.blobPath(k)
	delete(s.dirty, path)
	os.Remove(path) //nolint:errcheck // zero-ref GC, best effort
}

// Has reports whether the store holds a blob for k (referenced or staged).
func (s *BlobStore) Has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.blobs[k]
	return ok
}

// Put stages the blob for k (raw chunk bytes): compress, write tmp, fsync,
// rename — skipped entirely when the blob already exists, which is the
// dedup. A successful Put takes one stage hold on k that pins it against
// GC until the publisher calls Release, closing the window where a racing
// eviction could free a chunk between a publisher's existence check and
// its manifest commit. Callers record each held key and Release them all
// (after Commit, or on failure) — typically in a defer.
func (s *BlobStore) Put(k Key, raw []byte) error {
	s.mu.Lock()
	s.staged[k]++
	_, ok := s.blobs[k]
	s.mu.Unlock()
	if ok {
		return nil
	}
	buf := compBufPool.Get().(*bytes.Buffer)
	defer compBufPool.Put(buf)
	if err := encodeWireBlob(buf, raw); err != nil {
		s.unstage(k)
		return err
	}
	return s.finishPut(k, buf.Bytes(), int64(len(raw)))
}

// PutBuilt stages an already-encoded wire blob the caller itself produced
// from verified raw bytes — the BuildParallel compress path, where workers
// emit the blob alongside the chunk. Unlike PutCompressed there is no
// decode-verify round trip: the bytes never crossed a network. Takes a
// stage hold exactly like Put.
func (s *BlobStore) PutBuilt(k Key, comp []byte, rawLen int64) error {
	if len(comp) < blobHdrLen || int64(binary.BigEndian.Uint64(comp[:blobHdrLen])) != rawLen {
		return fmt.Errorf("%w: %s: bad frame", ErrCorruptBlob, k)
	}
	s.mu.Lock()
	s.staged[k]++
	_, ok := s.blobs[k]
	s.mu.Unlock()
	if ok {
		return nil
	}
	return s.finishPut(k, comp, rawLen)
}

// PutCompressed stages an already-compressed wire blob (an OpChunk reply):
// the blob is decoded and hash-verified first, so a corrupt transfer
// surfaces as ErrCorruptBlob and never lands on disk. Takes a stage hold
// exactly like Put.
func (s *BlobStore) PutCompressed(k Key, comp []byte) error {
	raw, err := DecodeBlob(k, comp)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.staged[k]++
	_, ok := s.blobs[k]
	s.mu.Unlock()
	if ok {
		return nil
	}
	return s.finishPut(k, comp, int64(len(raw)))
}

// finishPut writes the compressed bytes to disk and indexes the blob. The
// blob is renamed visible without fsync — it is recorded dirty and flushed
// in the next Commit's group fsync, preserving blobs-before-manifest crash
// ordering at one fsync batch per publication. The caller already holds a
// stage on k; on error the stage is released.
func (s *BlobStore) finishPut(k Key, comp []byte, rawLen int64) error {
	path := s.blobPath(k)
	dir := filepath.Dir(path)
	err := os.MkdirAll(dir, 0o755)
	if err == nil {
		err = writeFileNoSync(path, comp)
	}
	if err != nil {
		s.unstage(k)
		return err
	}
	s.mu.Lock()
	// A concurrent writer of the same hash wrote identical content, so
	// last rename wins harmlessly.
	s.blobs[k] = blobInfo{rawLen: rawLen, compLen: int64(len(comp))}
	s.dirty[path] = struct{}{}
	s.dirtyDirs[dir] = struct{}{}
	s.mu.Unlock()
	return nil
}

// Flush makes every blob landed so far durable: one fsync per dirty blob
// file, then one per touched blob subdirectory. Commit calls it before the
// manifest file commits; exposed for callers that need durability without
// a manifest (none in-tree today, tests aside).
func (s *BlobStore) Flush() error {
	// Serialise flushes: a Commit must not race past a concurrent flush
	// that snapshotted (but has not yet synced) the blobs it depends on.
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.mu.Lock()
	if len(s.dirty) == 0 && len(s.dirtyDirs) == 0 {
		s.mu.Unlock()
		return nil
	}
	files := make([]string, 0, len(s.dirty))
	for p := range s.dirty {
		files = append(files, p)
	}
	dirs := make([]string, 0, len(s.dirtyDirs))
	for d := range s.dirtyDirs {
		dirs = append(dirs, d)
	}
	s.dirty = make(map[string]struct{})
	s.dirtyDirs = make(map[string]struct{})
	s.mu.Unlock()
	for _, p := range files {
		f, err := os.Open(p)
		if errors.Is(err, os.ErrNotExist) {
			continue // GC'd between snapshot and sync
		}
		if err != nil {
			return err
		}
		err = f.Sync()
		f.Close() //nolint:errcheck // read-only handle
		if err != nil {
			return err
		}
	}
	for _, d := range dirs {
		if err := syncDir(d); err != nil {
			return err
		}
	}
	return nil
}

// Stage takes a stage hold on k if its blob is present, reporting whether
// it was. A publisher reusing locally-held chunks stages each one so a
// concurrent eviction cannot GC it before the manifest commits.
func (s *BlobStore) Stage(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[k]; !ok {
		return false
	}
	s.staged[k]++
	return true
}

func (s *BlobStore) unstage(k Key) {
	s.mu.Lock()
	if s.staged[k] > 0 {
		s.staged[k]--
	}
	s.gcLocked(k)
	s.mu.Unlock()
}

// Release drops the stage holds a publication took via Put/PutCompressed/
// Stage, GC'ing blobs nothing references. Safe (and usual) to call after
// Commit: committed manifests hold their chunks by refcount, not by stage.
func (s *BlobStore) Release(held []Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range held {
		if s.staged[k] > 0 {
			s.staged[k]--
		}
		s.gcLocked(k)
	}
}

// commitFile writes data as path atomically and durably: unique tmp in the
// same directory (concurrent writers of one path must not share a temp),
// fsync, rename.
func commitFile(path string, data []byte) error {
	return writeFile(path, data, true)
}

// writeFileNoSync writes data as path atomically but defers durability:
// the rename makes the content visible, the caller batches the fsync
// later (the blob group-commit path).
func writeFileNoSync(path string, data []byte) error {
	return writeFile(path, data, false)
}

func writeFile(path string, data []byte, durable bool) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()      //nolint:errcheck // already failing
		os.Remove(tmp) //nolint:errcheck // best effort
		return err
	}
	if durable {
		if err := f.Sync(); err != nil {
			f.Close()      //nolint:errcheck // already failing
			os.Remove(tmp) //nolint:errcheck // best effort
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck // best effort
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCompressed returns the on-disk (compressed, length-framed) bytes of
// blob k and its raw length — the wire representation OpChunk ships.
func (s *BlobStore) ReadCompressed(k Key) (comp []byte, rawLen int64, err error) {
	b, err := os.ReadFile(s.blobPath(k))
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, fmt.Errorf("%w: %s", ErrNoBlob, k)
	}
	if err != nil {
		return nil, 0, err
	}
	if len(b) < blobHdrLen {
		return nil, 0, fmt.Errorf("%w: %s: truncated header", ErrCorruptBlob, k)
	}
	return b, int64(binary.BigEndian.Uint64(b[:blobHdrLen])), nil
}

// DecodeBlob inflates a wire/disk blob and verifies the content hashes to
// k — the corrupt-blob (and corrupt-transfer) detection path.
func DecodeBlob(k Key, comp []byte) ([]byte, error) {
	if len(comp) < blobHdrLen {
		return nil, fmt.Errorf("%w: %s: truncated header", ErrCorruptBlob, k)
	}
	rawLen := int64(binary.BigEndian.Uint64(comp[:blobHdrLen]))
	if rawLen < 0 || rawLen > MaxChunk*2 {
		return nil, fmt.Errorf("%w: %s: raw length %d", ErrCorruptBlob, k, rawLen)
	}
	raw := make([]byte, rawLen)
	if err := inflateInto(raw, comp[blobHdrLen:]); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptBlob, k, err)
	}
	if sha256.Sum256(raw) != [sha256.Size]byte(k) {
		return nil, fmt.Errorf("%w: %s: hash mismatch", ErrCorruptBlob, k)
	}
	return raw, nil
}

// ReadBlob returns the verified raw bytes of blob k.
func (s *BlobStore) ReadBlob(k Key) ([]byte, error) {
	comp, _, err := s.ReadCompressed(k)
	if err != nil {
		return nil, err
	}
	return DecodeBlob(k, comp)
}

// Commit publishes m under name: the manifest file commits (tmp → fsync →
// rename → dir fsync) and refcounts shift atomically — replacing an
// existing manifest of the same name (checksum invalidation) unrefs the
// old chunk set and deletes blobs that drop to zero. Every blob m
// references must already be Put.
func (s *BlobStore) Commit(name string, m *Manifest) error {
	if strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("dedup: bad manifest name %q", name)
	}
	// Group-commit: every blob landed since the last flush becomes durable
	// here, before the manifest that references any of them commits.
	if err := s.Flush(); err != nil {
		return err
	}
	path := filepath.Join(s.manifestDir(), name+manifestSuffix)
	if err := commitFile(path, m.Encode()); err != nil {
		return err
	}
	if err := syncDir(s.manifestDir()); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Ref the new chunk set before unreffing the old so chunks shared
	// across versions never transit zero (and never get GC'd).
	old := s.manifests[name]
	s.manifests[name] = m
	s.logical += m.Length
	for _, e := range m.Entries {
		s.refs[e.Hash]++
	}
	if old != nil {
		s.logical -= old.Length
		for _, e := range old.Entries {
			s.refs[e.Hash]--
			s.gcLocked(e.Hash)
		}
	}
	return nil
}

// Drop removes name's manifest (cache eviction / invalidation), deleting
// blobs whose refcount reaches zero. Unknown names are a no-op.
func (s *BlobStore) Drop(name string) error {
	path := filepath.Join(s.manifestDir(), name+manifestSuffix)
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.manifests[name]
	if !ok {
		return nil
	}
	delete(s.manifests, name)
	s.logical -= m.Length
	for _, e := range m.Entries {
		s.refs[e.Hash]--
		s.gcLocked(e.Hash)
	}
	return nil
}

// Manifest returns the committed manifest for name, if any.
func (s *BlobStore) Manifest(name string) (*Manifest, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.manifests[name]
	return m, ok
}

// ManifestNames lists committed manifests.
func (s *BlobStore) ManifestNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.manifests))
	for name := range s.manifests {
		out = append(out, name)
	}
	return out
}

// StoreStats snapshots the dedup tier's efficiency.
type StoreStats struct {
	Manifests       int
	Blobs           int
	LogicalBytes    int64 // sum of manifest lengths
	UniqueRawBytes  int64 // raw bytes held once per distinct chunk
	UniqueCompBytes int64 // compressed bytes actually on disk
	SharedBytes     int64 // logical bytes served by a chunk referenced >1×
}

// Stats snapshots the store.
func (s *BlobStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Manifests:    len(s.manifests),
		Blobs:        len(s.blobs),
		LogicalBytes: s.logical,
	}
	for k, info := range s.blobs {
		st.UniqueRawBytes += info.rawLen
		st.UniqueCompBytes += info.compLen
		if n := s.refs[k]; n > 1 {
			st.SharedBytes += int64(n-1) * info.rawLen
		}
	}
	return st
}

// UniqueCompBytes reports the physical disk bytes the blob tree holds —
// the figure cachemgr charges against its pool budget (once per unique
// chunk, however many caches share it).
func (s *BlobStore) UniqueCompBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, info := range s.blobs {
		n += info.compLen
	}
	return n
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close() //nolint:errcheck // read-only handle
	return d.Sync()
}
