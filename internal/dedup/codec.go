package dedup

import (
	"bytes"
	"compress/flate"
	"io"
	"sync"
)

// Pooled DEFLATE codecs and scratch buffers. flate.NewWriter allocates
// roughly a megabyte of window and probe state per call; paying that once
// per chunk made codec setup, not compression, the dominant cost of the
// publication path. Writers and readers are recycled through sync.Pool and
// rearmed with Reset, so steady-state chunk encode/decode allocates only
// the output bytes.

var flateWriterPool = sync.Pool{
	New: func() any {
		w, err := flate.NewWriter(io.Discard, flate.BestSpeed)
		if err != nil {
			panic(err) // BestSpeed is a valid level
		}
		return w
	},
}

// blobReader bundles a flate reader with its source so one pool entry
// carries both; bytes.Reader resets in place.
type blobReader struct {
	src bytes.Reader
	fr  io.ReadCloser
}

var blobReaderPool = sync.Pool{
	New: func() any {
		br := &blobReader{}
		br.fr = flate.NewReader(&br.src)
		return br
	},
}

// deflateTo appends the DEFLATE stream of raw to buf through a pooled
// writer.
func deflateTo(buf *bytes.Buffer, raw []byte) error {
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(buf)
	_, err := fw.Write(raw)
	if err == nil {
		err = fw.Close()
	}
	flateWriterPool.Put(fw)
	return err
}

// inflateInto fills raw from the DEFLATE stream comp through a pooled
// reader.
func inflateInto(raw, comp []byte) error {
	br := blobReaderPool.Get().(*blobReader)
	br.src.Reset(comp)
	if err := br.fr.(flate.Resetter).Reset(&br.src, nil); err != nil {
		return err // pool entry dropped: reader state is suspect
	}
	_, err := io.ReadFull(br.fr, raw)
	blobReaderPool.Put(br)
	return err
}

// streamBufPool recycles the 256 KiB copy buffers of the stream codecs
// (CompressStream/DecompressStream) and the whole-file checksum paths.
var streamBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 256<<10)
		return &b
	},
}

// GetStreamBuf borrows a 256 KiB scratch buffer; return it with
// PutStreamBuf. Exposed so callers hashing whole files (cachemgr's
// publication fast path) share the pool instead of allocating their own.
func GetStreamBuf() *[]byte  { return streamBufPool.Get().(*[]byte) }
func PutStreamBuf(b *[]byte) { streamBufPool.Put(b) }
