package dedup

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"vmicache/internal/backend"
)

// Compressed cache transfer (§8: "investigate data compression and
// deduplication techniques ... in the context of VMI caches"). Cache images
// travel between compute nodes and the storage node's memory (Fig. 13);
// compressing the stream cuts the network cost of the cold path's transfer.

// countingWriter tallies bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// CompressStream deflates length bytes of src into w. Returns the
// compressed size. The stream is framed with the uncompressed length so
// DecompressStream can pre-size its target.
func CompressStream(w io.Writer, src io.ReaderAt, length int64) (int64, error) {
	cw := &countingWriter{w: w}
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(length))
	if _, err := cw.Write(hdr[:]); err != nil {
		return cw.n, err
	}
	fw := flateWriterPool.Get().(*flate.Writer)
	defer flateWriterPool.Put(fw)
	fw.Reset(cw)
	bp := GetStreamBuf()
	defer PutStreamBuf(bp)
	buf := *bp
	for off := int64(0); off < length; {
		n := int64(len(buf))
		if rem := length - off; rem < n {
			n = rem
		}
		if err := backend.ReadFull(src, buf[:n], off); err != nil {
			return cw.n, err
		}
		if _, err := fw.Write(buf[:n]); err != nil {
			return cw.n, err
		}
		off += n
	}
	if err := fw.Close(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// DecompressStream inflates a CompressStream-framed stream into dst and
// returns the uncompressed length.
func DecompressStream(dst io.WriterAt, r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, err
	}
	length := int64(binary.BigEndian.Uint64(hdr[:]))
	frc := blobReaderPool.Get().(*blobReader)
	defer blobReaderPool.Put(frc)
	if err := frc.fr.(flate.Resetter).Reset(br, nil); err != nil {
		return 0, err
	}
	fr := frc.fr
	bp := GetStreamBuf()
	defer PutStreamBuf(bp)
	buf := *bp
	var off int64
	for off < length {
		n, err := fr.Read(buf)
		if n > 0 {
			if err := backend.WriteFull(dst, buf[:n], off); err != nil {
				return off, err
			}
			off += int64(n)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return off, err
		}
	}
	if off != length {
		return off, fmt.Errorf("dedup: short stream: %d of %d bytes", off, length)
	}
	return off, nil
}

// TransferCompressed copies a file between stores through a deflate stream
// (e.g. a warm cache from a compute node into the storage node's memory).
// Returns (rawBytes, wireBytes): the transfer volume with and without
// compression — the quantity the Fig. 13/14 cold path pays.
func TransferCompressed(dst backend.Store, dstName string, src backend.Store, srcName string) (raw, wire int64, err error) {
	in, err := src.Open(srcName, true)
	if err != nil {
		return 0, 0, err
	}
	defer in.Close() //nolint:errcheck // read-only handle
	size, err := in.Size()
	if err != nil {
		return 0, 0, err
	}
	out, err := dst.Create(dstName)
	if err != nil {
		return 0, 0, err
	}
	// Compress into an in-memory pipe buffer sized by the stream itself;
	// for the library's purposes the wire is a byte slice.
	var pipe sliceBuffer
	wire, err = CompressStream(&pipe, in, size)
	if err != nil {
		out.Close() //nolint:errcheck
		return size, wire, err
	}
	if _, err := DecompressStream(out, &pipe); err != nil {
		out.Close() //nolint:errcheck
		return size, wire, err
	}
	if err := out.Sync(); err != nil {
		out.Close() //nolint:errcheck
		return size, wire, err
	}
	return size, wire, out.Close()
}

// sliceBuffer is a minimal in-memory io.Writer + io.Reader.
type sliceBuffer struct {
	b []byte
	r int
}

func (s *sliceBuffer) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *sliceBuffer) Read(p []byte) (int, error) {
	if s.r >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.r:])
	s.r += n
	return n, nil
}
