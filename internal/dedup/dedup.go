// Package dedup implements the storage-efficiency extensions §8 lists as
// future work for VMI caches: content-based deduplication ("VMIs created
// from the same operating system distribution share content", §7.3) and
// compression of cache images for storage and transfer.
//
// The package is organised around content-defined chunking (cdc.go): a
// gear-hash cutter splits images into variable-size chunks so shared runs
// dedup across images regardless of alignment. Build/BuildParallel
// (build.go) turn an image into a Manifest — an ordered list of chunk
// hashes plus a whole-image checksum — while handing each chunk to the
// caller for storage. BlobStore (blobstore.go) is the durable
// content-addressed tier: compressed blobs shared by reference across
// manifests, with staged publication and group-commit fsync. Materialize
// reassembles an image from a manifest, verifying every chunk and the
// whole-image checksum. The stream codecs (compress.go) cover the
// whole-file compressed transfer path that predates chunking.
package dedup

import (
	"crypto/sha256"
	"fmt"
)

// Key addresses one chunk by content.
type Key [sha256.Size]byte

// String renders a short hex prefix.
func (k Key) String() string { return fmt.Sprintf("%x", k[:8]) }
