// Package dedup implements the storage-efficiency extensions §8 lists as
// future work for VMI caches: content-based deduplication ("VMIs created
// from the same operating system distribution share content", §7.3) and
// compression of cache images for storage and transfer.
//
// A Store keeps fixed-size chunks addressed by their SHA-256; putting many
// warm cache images of related VMIs into one store keeps a single physical
// copy of every shared chunk, shrinking the cache pool on the storage
// node's memory or the compute nodes' disks.
package dedup

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Key addresses one chunk by content.
type Key [sha256.Size]byte

// String renders a short hex prefix.
func (k Key) String() string { return fmt.Sprintf("%x", k[:8]) }

// Recipe reconstructs an object from its chunk sequence plus exact length.
type Recipe struct {
	Keys   []Key
	Length int64
}

// Store is a content-addressed chunk store.
type Store struct {
	chunkSize int64

	mu      sync.RWMutex
	chunks  map[Key][]byte
	refs    map[Key]int64
	logical int64 // bytes stored counting duplicates
}

// ErrUnknownChunk is returned when a recipe references a missing chunk.
var ErrUnknownChunk = errors.New("dedup: unknown chunk")

// NewStore returns a store with the given chunk size (0 = 64 KiB).
func NewStore(chunkSize int64) *Store {
	if chunkSize <= 0 {
		chunkSize = 64 << 10
	}
	return &Store{
		chunkSize: chunkSize,
		chunks:    make(map[Key][]byte),
		refs:      make(map[Key]int64),
	}
}

// ChunkSize reports the store's chunk size.
func (s *Store) ChunkSize() int64 { return s.chunkSize }

// Put stores an object, deduplicating its chunks, and returns its recipe.
func (s *Store) Put(r io.ReaderAt, length int64) (Recipe, error) {
	rec := Recipe{Length: length}
	buf := make([]byte, s.chunkSize)
	for off := int64(0); off < length; off += s.chunkSize {
		n := s.chunkSize
		if rem := length - off; rem < n {
			n = rem
		}
		if _, err := r.ReadAt(buf[:n], off); err != nil && err != io.EOF {
			return Recipe{}, err
		}
		// The final partial chunk hashes zero-padded to full size so
		// equal tails dedup regardless of their neighbours.
		for i := n; i < s.chunkSize; i++ {
			buf[i] = 0
		}
		key := Key(sha256.Sum256(buf))
		s.mu.Lock()
		if _, ok := s.chunks[key]; !ok {
			stored := make([]byte, s.chunkSize)
			copy(stored, buf)
			s.chunks[key] = stored
		}
		s.refs[key]++
		s.logical += n
		s.mu.Unlock()
		rec.Keys = append(rec.Keys, key)
	}
	return rec, nil
}

// ReadAt reconstructs a byte range of an object from its recipe.
func (s *Store) ReadAt(rec Recipe, p []byte, off int64) (int, error) {
	if off < 0 || off >= rec.Length {
		return 0, io.EOF
	}
	n := len(p)
	var errEOF error
	if off+int64(n) > rec.Length {
		n = int(rec.Length - off)
		errEOF = io.EOF
	}
	done := 0
	for done < n {
		pos := off + int64(done)
		ci := pos / s.chunkSize
		co := pos % s.chunkSize
		want := n - done
		if avail := int(s.chunkSize - co); want > avail {
			want = avail
		}
		s.mu.RLock()
		chunk, ok := s.chunks[rec.Keys[ci]]
		s.mu.RUnlock()
		if !ok {
			return done, ErrUnknownChunk
		}
		copy(p[done:done+want], chunk[co:])
		done += want
	}
	return n, errEOF
}

// Drop releases one reference to every chunk of a recipe, freeing chunks
// whose count reaches zero (cache eviction from a dedup pool).
func (s *Store) Drop(rec Recipe) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, key := range rec.Keys {
		if s.refs[key] <= 1 {
			delete(s.refs, key)
			delete(s.chunks, key)
		} else {
			s.refs[key]--
		}
		n := s.chunkSize
		if rem := rec.Length - int64(i)*s.chunkSize; rem < n {
			n = rem
		}
		s.logical -= n
	}
}

// Stats describes the store's efficiency.
type Stats struct {
	LogicalBytes int64 // sum of object sizes as stored
	UniqueBytes  int64 // physical chunk bytes held
	Chunks       int
}

// Savings reports the fraction of logical bytes saved by deduplication.
func (st Stats) Savings() float64 {
	if st.LogicalBytes == 0 {
		return 0
	}
	saved := st.LogicalBytes - st.UniqueBytes
	if saved < 0 {
		return 0
	}
	return float64(saved) / float64(st.LogicalBytes)
}

// Stats snapshots the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		LogicalBytes: s.logical,
		UniqueBytes:  int64(len(s.chunks)) * s.chunkSize,
		Chunks:       len(s.chunks),
	}
}
