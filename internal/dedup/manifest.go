package dedup

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// A Manifest describes one published cache image as an ordered sequence of
// content-defined chunks. It is the unit of the manifest-first transfer
// protocol: a receiver diffs the entry hashes against the blobs it already
// holds (from any cache of any image) and fetches only the missing ones.
// The whole-image checksum detects a rebuilt base image — same key,
// different content — and drives chunk-level re-publication.

// Entry is one chunk: its content hash and raw (uncompressed) length.
type Entry struct {
	Hash Key
	Len  uint32
}

// Manifest lists the chunks of one image in order plus the image total.
type Manifest struct {
	Entries  []Entry
	Length   int64 // sum of entry lengths
	Checksum Key   // SHA-256 of the whole image
}

const (
	manifestMagic   = 0x564D444D // "VMDM"
	manifestVersion = 1
	manifestHdrLen  = 4 + 1 + 3 + 8 + sha256.Size + 4
	manifestEntLen  = 4 + sha256.Size
)

// ErrBadManifest reports a manifest that fails structural validation.
var ErrBadManifest = errors.New("dedup: bad manifest")

// Encode renders the manifest in its binary wire/disk format.
func (m *Manifest) Encode() []byte {
	buf := make([]byte, manifestHdrLen+len(m.Entries)*manifestEntLen)
	binary.BigEndian.PutUint32(buf[0:], manifestMagic)
	buf[4] = manifestVersion
	binary.BigEndian.PutUint64(buf[8:], uint64(m.Length))
	copy(buf[16:], m.Checksum[:])
	binary.BigEndian.PutUint32(buf[16+sha256.Size:], uint32(len(m.Entries)))
	off := manifestHdrLen
	for _, e := range m.Entries {
		binary.BigEndian.PutUint32(buf[off:], e.Len)
		copy(buf[off+4:], e.Hash[:])
		off += manifestEntLen
	}
	return buf
}

// DecodeManifest parses an encoded manifest, validating magic, version,
// entry count, and that entry lengths sum to the header length.
func DecodeManifest(b []byte) (*Manifest, error) {
	if len(b) < manifestHdrLen {
		return nil, fmt.Errorf("%w: %d byte header", ErrBadManifest, len(b))
	}
	if binary.BigEndian.Uint32(b[0:]) != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadManifest)
	}
	if b[4] != manifestVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadManifest, b[4])
	}
	m := &Manifest{Length: int64(binary.BigEndian.Uint64(b[8:]))}
	copy(m.Checksum[:], b[16:])
	count := binary.BigEndian.Uint32(b[16+sha256.Size:])
	if want := manifestHdrLen + int(count)*manifestEntLen; len(b) != want {
		return nil, fmt.Errorf("%w: %d bytes for %d entries", ErrBadManifest, len(b), count)
	}
	m.Entries = make([]Entry, count)
	var sum int64
	off := manifestHdrLen
	for i := range m.Entries {
		m.Entries[i].Len = binary.BigEndian.Uint32(b[off:])
		copy(m.Entries[i].Hash[:], b[off+4:])
		sum += int64(m.Entries[i].Len)
		off += manifestEntLen
	}
	if sum != m.Length {
		return nil, fmt.Errorf("%w: entries sum %d, length %d", ErrBadManifest, sum, m.Length)
	}
	return m, nil
}

// Build chunks length bytes of r content-defined, calling emit once per
// chunk (in order) with its entry and raw bytes — the caller typically
// stores the blob — and returns the finished manifest. The raw slice is
// only valid during the call. Zero length yields an empty manifest whose
// checksum still covers the (empty) content. Build is the serial reference
// for BuildParallel, which produces byte-identical manifests.
func Build(r io.ReaderAt, length int64, emit func(e Entry, raw []byte) error) (*Manifest, error) {
	var fn func(e Entry, raw, comp []byte) error
	if emit != nil {
		fn = func(e Entry, raw, _ []byte) error { return emit(e, raw) }
	}
	return buildSerial(r, length, false, fn)
}

// Missing returns the distinct entries of m whose hashes fail the has
// predicate, plus the raw byte totals: want is the whole image, need the
// bytes that must actually move. need/want is the delta-transfer ratio the
// experiments gate on.
func (m *Manifest) Missing(has func(Key) bool) (missing []Entry, want, need int64) {
	seen := make(map[Key]bool, len(m.Entries))
	for _, e := range m.Entries {
		want += int64(e.Len)
		if seen[e.Hash] {
			continue
		}
		seen[e.Hash] = true
		if !has(e.Hash) {
			missing = append(missing, e)
			need += int64(e.Len)
		}
	}
	return missing, want, need
}
