package dedup

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"testing"

	"vmicache/internal/backend"
)

// memImage loads data into a mem file for ReaderAt-based building.
func memImage(t testing.TB, data []byte) backend.File {
	t.Helper()
	f := backend.NewMemFileSize(int64(len(data)))
	if len(data) > 0 {
		if err := backend.WriteFull(f, data, 0); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// testImages returns named contents exercising the chunker edge cases:
// empty, sub-MinChunk, one-chunk, multi-chunk random with an odd tail, and
// low-entropy repetitive content that only cuts at MaxChunk.
func testImages(t testing.TB) map[string][]byte {
	t.Helper()
	rnd := rand.New(rand.NewSource(42))
	random := make([]byte, 1<<20+12345)
	rnd.Read(random)
	tiny := make([]byte, MinChunk/2)
	rnd.Read(tiny)
	one := make([]byte, MinChunk+100)
	rnd.Read(one)
	return map[string][]byte{
		"empty":      nil,
		"tiny":       tiny,
		"one-chunk":  one,
		"random":     random,
		"repetitive": bytes.Repeat([]byte{0xAB}, 3*MaxChunk+777),
	}
}

// TestBuildParallelByteIdentical is the core ordering guarantee: the
// manifest a parallel build produces — entries, order, length, whole-image
// checksum, and thus the encoded bytes — must equal the serial reference at
// every worker count, and emit must observe the same chunk sequence.
func TestBuildParallelByteIdentical(t *testing.T) {
	for name, data := range testImages(t) {
		t.Run(name, func(t *testing.T) {
			src := memImage(t, data)
			var refChunks [][]byte
			ref, err := Build(src, int64(len(data)), func(e Entry, raw []byte) error {
				refChunks = append(refChunks, append([]byte(nil), raw...))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			refEnc := ref.Encode()
			for _, workers := range []int{1, 2, 3, 4, 8} {
				var gotChunks [][]byte
				m, err := BuildParallel(src, int64(len(data)), BuildOpts{Workers: workers}, func(e Entry, raw, comp []byte) error {
					gotChunks = append(gotChunks, append([]byte(nil), raw...))
					return nil
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !bytes.Equal(m.Encode(), refEnc) {
					t.Fatalf("workers=%d: manifest differs from serial build", workers)
				}
				if len(gotChunks) != len(refChunks) {
					t.Fatalf("workers=%d: %d chunks, serial emitted %d", workers, len(gotChunks), len(refChunks))
				}
				for i := range gotChunks {
					if !bytes.Equal(gotChunks[i], refChunks[i]) {
						t.Fatalf("workers=%d: chunk %d bytes differ", workers, i)
					}
				}
			}
		})
	}
}

// TestBuildParallelCompressedBlobs checks the Compress path: every emitted
// wire blob decodes back to the raw chunk, and PutBuilt accepts it.
func TestBuildParallelCompressedBlobs(t *testing.T) {
	data := testImages(t)["random"]
	src := memImage(t, data)
	s, err := OpenBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var held []Key
	m, err := BuildParallel(src, int64(len(data)), BuildOpts{Workers: 4, Compress: true}, func(e Entry, raw, comp []byte) error {
		dec, err := DecodeBlob(e.Hash, comp)
		if err != nil {
			return err
		}
		if !bytes.Equal(dec, raw) {
			return errors.New("wire blob decodes to different bytes")
		}
		if err := s.PutBuilt(e.Hash, comp, int64(e.Len)); err != nil {
			return err
		}
		held = append(held, e.Hash)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit("img", m); err != nil {
		t.Fatal(err)
	}
	s.Release(held)
	out := backend.NewMemFileSize(m.Length)
	if err := Materialize(out, m, s, 1); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := backend.ReadFull(out, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("materialized bytes differ from source")
	}
}

func TestPutBuiltRejectsBadFrame(t *testing.T) {
	s, err := OpenBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	raw := []byte("hello chunk")
	k := Key(sha256.Sum256(raw))
	var buf bytes.Buffer
	if err := encodeWireBlob(&buf, raw); err != nil {
		t.Fatal(err)
	}
	// Frame length disagreeing with the claimed raw length must be refused.
	if err := s.PutBuilt(k, buf.Bytes(), int64(len(raw))+1); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("bad frame accepted: %v", err)
	}
	if err := s.PutBuilt(k, []byte{1, 2}, 2); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("truncated frame accepted: %v", err)
	}
	if err := s.PutBuilt(k, buf.Bytes(), int64(len(raw))); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadBlob(k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Fatal("PutBuilt blob reads back wrong")
	}
}

// TestBuildParallelEmitError is the fault-injection case: a mid-pipeline
// failure must surface as the first error, terminate promptly (no hang, no
// goroutine leak blocking the return), and — when the emitter was landing
// blobs — leave no staged state behind after Release.
func TestBuildParallelEmitError(t *testing.T) {
	data := testImages(t)["random"]
	src := memImage(t, data)
	s, err := OpenBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	var held []Key
	calls := 0
	_, err = BuildParallel(src, int64(len(data)), BuildOpts{Workers: 4, Compress: true}, func(e Entry, raw, comp []byte) error {
		calls++
		if calls == 5 {
			return boom
		}
		if err := s.PutBuilt(e.Hash, comp, int64(e.Len)); err != nil {
			return err
		}
		held = append(held, e.Hash)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if calls != 5 {
		t.Fatalf("emit called %d times after failure at call 5", calls)
	}
	// The failed publication releases its stage holds; with no manifest
	// committed every blob must be GC'd.
	s.Release(held)
	if st := s.Stats(); st.Blobs != 0 || st.Manifests != 0 {
		t.Fatalf("failed publish leaked state: %+v", st)
	}
}

// errReaderAt fails after limit bytes.
type errReaderAt struct {
	data  []byte
	limit int64
}

func (e *errReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off+int64(len(p)) > e.limit {
		return 0, errors.New("injected read failure")
	}
	return copy(p, e.data[off:]), nil
}

func TestBuildParallelReadError(t *testing.T) {
	data := testImages(t)["random"]
	r := &errReaderAt{data: data, limit: 512 << 10}
	_, err := BuildParallel(r, int64(len(data)), BuildOpts{Workers: 4}, nil)
	if err == nil || err.Error() != "injected read failure" {
		t.Fatalf("err = %v, want injected read failure", err)
	}
	_, err = Build(r, int64(len(data)), nil)
	if err == nil {
		t.Fatal("serial build swallowed read failure")
	}
}

// buildInto publishes data into s under name, returning the manifest.
func buildInto(t testing.TB, s *BlobStore, name string, data []byte, workers int) *Manifest {
	t.Helper()
	src := memImage(t, data)
	var held []Key
	m, err := BuildParallel(src, int64(len(data)), BuildOpts{Workers: workers, Compress: true}, func(e Entry, raw, comp []byte) error {
		if err := s.PutBuilt(e.Hash, comp, int64(e.Len)); err != nil {
			return err
		}
		held = append(held, e.Hash)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(name, m); err != nil {
		t.Fatal(err)
	}
	s.Release(held)
	return m
}

// TestMaterializeParallelMatchesSerial checks that the parallel decode
// pipeline reproduces the image byte-for-byte at several worker counts and
// verifies the whole-image checksum.
func TestMaterializeParallelMatchesSerial(t *testing.T) {
	data := testImages(t)["random"]
	s, err := OpenBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := buildInto(t, s, "img", data, 4)
	for _, workers := range []int{1, 2, 4, 8} {
		out := backend.NewMemFileSize(m.Length)
		if err := Materialize(out, m, s, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := make([]byte, len(data))
		if err := backend.ReadFull(out, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("workers=%d: materialized bytes differ", workers)
		}
	}
}

// TestMaterializeDetectsCorruption flips a byte inside one on-disk blob and
// expects both serial and parallel materialization to fail, not to write a
// silently wrong image.
func TestMaterializeDetectsCorruption(t *testing.T) {
	data := testImages(t)["random"]
	s, err := OpenBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := buildInto(t, s, "img", data, 4)
	victim := m.Entries[len(m.Entries)/2].Hash
	path := s.blobPath(victim)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[blobHdrLen+len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		out := backend.NewMemFileSize(m.Length)
		if err := Materialize(out, m, s, workers); err == nil {
			t.Fatalf("workers=%d: corrupt blob materialized without error", workers)
		}
	}
}

// TestFlushGroupCommit checks the fsync batching bookkeeping: landings
// accumulate in the dirty set, Commit's flush drains it, and a second flush
// is a no-op.
func TestFlushGroupCommit(t *testing.T) {
	s, err := OpenBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := testImages(t)["random"]
	src := memImage(t, data)
	var held []Key
	m, err := BuildParallel(src, int64(len(data)), BuildOpts{Workers: 2, Compress: true}, func(e Entry, raw, comp []byte) error {
		if err := s.PutBuilt(e.Hash, comp, int64(e.Len)); err != nil {
			return err
		}
		held = append(held, e.Hash)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	dirty := len(s.dirty)
	s.mu.Unlock()
	if dirty != len(held) {
		t.Fatalf("dirty = %d files, landed %d blobs", dirty, len(held))
	}
	if err := s.Commit("img", m); err != nil {
		t.Fatal(err)
	}
	s.Release(held)
	s.mu.Lock()
	dirty, dirs := len(s.dirty), len(s.dirtyDirs)
	s.mu.Unlock()
	if dirty != 0 || dirs != 0 {
		t.Fatalf("dirty set not drained by Commit: %d files, %d dirs", dirty, dirs)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("idempotent flush: %v", err)
	}
	// Reopen: the committed image survives and materializes.
	s2, err := OpenBlobStore(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	m2, ok := s2.Manifest("img")
	if !ok {
		t.Fatal("manifest lost across reopen")
	}
	out := backend.NewMemFileSize(m2.Length)
	if err := Materialize(out, m2, s2, 2); err != nil {
		t.Fatal(err)
	}
}

// TestDedupPipelineStress drives concurrent parallel builds, materializes,
// and evictions against one BlobStore — the -race workout for the stage
// holds, group-commit dirty set, and codec pools.
func TestDedupPipelineStress(t *testing.T) {
	s, err := OpenBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shared := make([]byte, 256<<10)
	rand.New(rand.NewSource(7)).Read(shared)
	const publishers = 4
	var wg sync.WaitGroup
	errs := make(chan error, publishers*4)
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// Each image shares a prefix (cross-image dedup under load) and
			// carries a private suffix.
			data := make([]byte, len(shared)+64<<10)
			copy(data, shared)
			rand.New(rand.NewSource(int64(100 + p))).Read(data[len(shared):])
			name := fmt.Sprintf("img-%d", p)
			for round := 0; round < 3; round++ {
				src := memImage(t, data)
				var held []Key
				m, err := BuildParallel(src, int64(len(data)), BuildOpts{Workers: 2, Compress: true}, func(e Entry, raw, comp []byte) error {
					if err := s.PutBuilt(e.Hash, comp, int64(e.Len)); err != nil {
						return err
					}
					held = append(held, e.Hash)
					return nil
				})
				if err == nil {
					err = s.Commit(name, m)
				}
				s.Release(held)
				if err != nil {
					errs <- err
					return
				}
				out := backend.NewMemFileSize(m.Length)
				if err := Materialize(out, m, s, 2); err != nil {
					errs <- err
					return
				}
				got := make([]byte, len(data))
				if err := backend.ReadFull(out, got, 0); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("publisher %d round %d: content mismatch", p, round)
					return
				}
				if round == 1 {
					// Evict mid-run so GC races the other publishers' stages.
					if err := s.Drop(name); err != nil {
						errs <- err
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Manifests != publishers {
		t.Fatalf("manifests = %d, want %d", st.Manifests, publishers)
	}
	if st.SharedBytes == 0 {
		t.Fatal("no cross-image sharing recorded")
	}
}

var _ io.ReaderAt = (*errReaderAt)(nil)
