package dedup

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// putImage builds data's manifest into s, putting every blob, and commits
// it under name, releasing the stage holds at the end — the full publisher
// protocol.
func putImage(t *testing.T, s *BlobStore, name string, data []byte) *Manifest {
	t.Helper()
	var held []Key
	defer func() { s.Release(held) }()
	m, err := Build(bytes.NewReader(data), int64(len(data)), func(e Entry, raw []byte) error {
		if err := s.Put(e.Hash, raw); err != nil {
			return err
		}
		held = append(held, e.Hash)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(name, m); err != nil {
		t.Fatal(err)
	}
	return m
}

// readImage reassembles a manifest's content from the store.
func readImage(t *testing.T, s *BlobStore, m *Manifest) []byte {
	t.Helper()
	var out []byte
	for _, e := range m.Entries {
		raw, err := s.ReadBlob(e.Hash)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, raw...)
	}
	return out
}

func TestBlobStoreRoundTrip(t *testing.T) {
	s, err := OpenBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := randBytes(1, 2<<20)
	m := putImage(t, s, "img-a", data)
	if got := readImage(t, s, m); !bytes.Equal(got, data) {
		t.Fatal("reassembled image differs")
	}
	st := s.Stats()
	if st.Manifests != 1 || st.LogicalBytes != int64(len(data)) {
		t.Fatalf("stats: %+v", st)
	}
	if st.UniqueRawBytes != int64(len(data)) {
		t.Fatalf("unique raw %d, want %d", st.UniqueRawBytes, len(data))
	}
}

func TestBlobStoreSiblingSharing(t *testing.T) {
	s, err := OpenBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// v2 = v1 with the last 1/8 rewritten — sibling images.
	v1 := randBytes(10, 4<<20)
	v2 := append(append([]byte{}, v1[:len(v1)*7/8]...), randBytes(11, len(v1)/8)...)
	putImage(t, s, "v1", v1)
	putImage(t, s, "v2", v2)
	st := s.Stats()
	if st.SharedBytes == 0 {
		t.Fatal("siblings share nothing")
	}
	// Unique storage must be well under the 2× of storing both outright.
	if st.UniqueRawBytes > int64(len(v1))*13/10 {
		t.Fatalf("unique raw %d > 1.3× one image (%d)", st.UniqueRawBytes, len(v1))
	}
	// Dropping v2 must keep every v1 chunk readable.
	if err := s.Drop("v2"); err != nil {
		t.Fatal(err)
	}
	m1, ok := s.Manifest("v1")
	if !ok {
		t.Fatal("v1 manifest gone")
	}
	if got := readImage(t, s, m1); !bytes.Equal(got, v1) {
		t.Fatal("v1 damaged by dropping v2")
	}
	// Dropping v1 too must empty the blob tree.
	if err := s.Drop("v1"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Blobs != 0 || st.LogicalBytes != 0 {
		t.Fatalf("store not empty after dropping all: %+v", st)
	}
}

// TestCommitReplaceSharedChunks covers checksum invalidation: committing a
// rebuilt image under the same name must keep chunks shared across the two
// versions and GC only those that left.
func TestCommitReplaceSharedChunks(t *testing.T) {
	s, err := OpenBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	v1 := randBytes(20, 2<<20)
	v2 := append(append([]byte{}, v1[:1<<20]...), randBytes(21, 1<<20)...)
	m1 := putImage(t, s, "img", v1)
	m2 := putImage(t, s, "img", v2)
	if m1.Checksum == m2.Checksum {
		t.Fatal("rebuilt image has same checksum")
	}
	if got := readImage(t, s, m2); !bytes.Equal(got, v2) {
		t.Fatal("replacement image differs")
	}
	// Old-only chunks must be gone from disk; shared ones must remain.
	old := make(map[Key]bool)
	for _, e := range m2.Entries {
		old[e.Hash] = true
	}
	for _, e := range m1.Entries {
		if old[e.Hash] {
			continue
		}
		if s.Has(e.Hash) {
			t.Fatalf("old-only chunk %v survived replacement", e.Hash)
		}
		if _, err := os.Stat(s.blobPath(e.Hash)); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("old-only blob file survived: %v", err)
		}
	}
	if st := s.Stats(); st.Manifests != 1 || st.LogicalBytes != int64(len(v2)) {
		t.Fatalf("stats after replace: %+v", st)
	}
}

func TestCorruptBlobDetection(t *testing.T) {
	s, err := OpenBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data := randBytes(5, 64<<10)
	m := putImage(t, s, "img", data)
	k := m.Entries[0].Hash

	// Flip a byte in the middle of the compressed payload on disk (the
	// trailing bytes are only the flate end marker, which a length-bounded
	// read never re-checks).
	path := s.blobPath(k)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[blobHdrLen+(len(b)-blobHdrLen)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadBlob(k); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("corrupt payload: err = %v", err)
	}

	// A wrong-content blob that still inflates must fail the hash check.
	other := Key(sha256.Sum256([]byte("not the content")))
	raw, err := s.ReadBlob(m.Entries[len(m.Entries)-1].Hash)
	if err != nil {
		t.Fatal(err)
	}
	comp, _, err := s.ReadCompressed(m.Entries[len(m.Entries)-1].Hash)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBlob(other, comp); !errors.Is(err, ErrCorruptBlob) {
		t.Fatalf("hash mismatch: err = %v", err)
	}
	if got, err := DecodeBlob(m.Entries[len(m.Entries)-1].Hash, comp); err != nil || !bytes.Equal(got, raw) {
		t.Fatalf("good blob rejected: %v", err)
	}
	if _, err := s.ReadBlob(Key{1, 2, 3}); !errors.Is(err, ErrNoBlob) {
		t.Fatalf("missing blob: err = %v", err)
	}
}

// TestOpenSweepsOrphans simulates a crash between blob commit and manifest
// commit: reopened stores must delete unreferenced blobs and temp files
// but keep everything a manifest references.
func TestOpenSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := randBytes(6, 1<<20)
	m := putImage(t, s, "live", data)

	// Orphans: blobs with no manifest (the crash window) + a stray tmp.
	orphan := randBytes(7, 8<<10)
	ok := Key(sha256.Sum256(orphan))
	if err := s.Put(ok, orphan); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "manifests", "torn.vmm.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "manifests", "torn.vmm")
	if err := os.WriteFile(torn, []byte("garbage manifest"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenBlobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Has(ok) {
		t.Fatal("orphan blob survived reopen")
	}
	if _, err := os.Stat(s.blobPath(ok)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphan blob file survived sweep")
	}
	for _, p := range []string{tmp, torn} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s survived sweep", p)
		}
	}
	m2, okm := s2.Manifest("live")
	if !okm || m2.Checksum != m.Checksum {
		t.Fatal("live manifest lost on reopen")
	}
	if got := readImage(t, s2, m2); !bytes.Equal(got, data) {
		t.Fatal("live image damaged by sweep")
	}
}

// TestConcurrentPublishEvict hammers refcount GC: goroutines publishing
// sibling images (sharing most chunks) race goroutines dropping them.
// Run under -race; the invariant checked at the end is that fully-dropped
// names free their private chunks while survivors stay readable.
func TestConcurrentPublishEvict(t *testing.T) {
	s, err := OpenBlobStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shared := randBytes(100, 512<<10)
	images := make([][]byte, 8)
	for i := range images {
		images[i] = append(append([]byte{}, shared...), randBytes(int64(200+i), 128<<10)...)
	}
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for i := range images {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				name := fmt.Sprintf("img-%d", i)
				var held []Key
				m, err := Build(bytes.NewReader(images[i]), int64(len(images[i])), func(e Entry, raw []byte) error {
					if err := s.Put(e.Hash, raw); err != nil {
						return err
					}
					held = append(held, e.Hash)
					return nil
				})
				if err != nil {
					s.Release(held)
					t.Error(err)
					return
				}
				err = s.Commit(name, m)
				s.Release(held)
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 1 {
					if err := s.Drop(name); err != nil {
						t.Error(err)
					}
				}
			}(i)
		}
		wg.Wait()
	}
	// Survivors (even i) must reassemble; dropped names must be gone.
	for i := range images {
		name := fmt.Sprintf("img-%d", i)
		m, ok := s.Manifest(name)
		if i%2 == 1 {
			if ok {
				t.Fatalf("%s not dropped", name)
			}
			continue
		}
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if got := readImage(t, s, m); !bytes.Equal(got, images[i]) {
			t.Fatalf("%s damaged by concurrent churn", name)
		}
	}
	if st := s.Stats(); st.SharedBytes == 0 {
		t.Fatal("survivors share no chunks")
	}
}
