package dedup

// Content-defined chunking. Fixed-size chunking (the in-memory Store above)
// breaks down when sibling images differ by insertions: one shifted byte
// re-keys every downstream chunk. The gear rolling hash cuts chunk
// boundaries where the *content* says to, so an edit only re-keys the
// chunks it touches — the property the manifest-first delta transfer
// depends on ("peer-transfer bytes for a v2 image ≈ delta size").

const (
	// MinChunk..MaxChunk bound chunk sizes; AvgChunk tunes the boundary
	// mask. MaxChunk stays far below the rblock payload ceiling (8 MiB)
	// so one chunk always fits one OpChunk reply.
	MinChunk = 4 << 10   // 4 KiB
	AvgChunk = 16 << 10  // 16 KiB: mask of 14 one-bits
	MaxChunk = 128 << 10 // 128 KiB

	// boundaryMask has log2(AvgChunk)-ish one-bits: a boundary fires when
	// the rolling hash has zeros in all masked positions, i.e. with
	// probability 2^-14 per byte once past MinChunk.
	boundaryMask = 0x0000_3FFF_0000_0000
)

// gearTable is a fixed pseudo-random substitution table. It must never
// change: chunk boundaries (and therefore every stored manifest) depend on
// it. Generated once from a splitmix64 sequence seeded with the paper's
// publication year.
var gearTable = func() [256]uint64 {
	var t [256]uint64
	state := uint64(2013)
	for i := range t {
		// splitmix64 step — deterministic, no math/rand dependency.
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		t[i] = z ^ (z >> 31)
	}
	return t
}()

// gearWindow is the effective width of the rolling hash: each table value
// entering h is shifted left once per subsequent byte, so after 64 shifts
// its contribution has left the 64-bit state entirely. The hash at any
// position therefore depends only on the last 64 bytes before it.
const gearWindow = 64

// cutPoint returns the length of the first content-defined chunk of p
// (p non-empty). If no boundary fires the chunk is capped at MaxChunk, and
// a short final buffer is one whole chunk.
func cutPoint(p []byte) int {
	n := len(p)
	if n <= MinChunk {
		return n
	}
	if n > MaxChunk {
		n = MaxChunk
	}
	var h uint64
	// Warm the hash up to its state at the MinChunk boundary. Only the
	// last gearWindow bytes of the prefix contribute (older bytes have
	// shifted out of the 64-bit state), so the warm-up skips the rest of
	// the MinChunk prefix — same boundaries, ~MinChunk fewer table
	// lookups per chunk.
	for i := MinChunk - gearWindow; i < MinChunk; i++ {
		h = (h << 1) + gearTable[p[i]]
	}
	for i := MinChunk; i < n; i++ {
		h = (h << 1) + gearTable[p[i]]
		if h&boundaryMask == 0 {
			return i + 1
		}
	}
	return n
}

// Chunks splits p into content-defined chunks, calling fn with the offset
// and bytes of each. The subslices alias p. Zero-length input yields zero
// chunks.
func Chunks(p []byte, fn func(off int64, chunk []byte)) {
	var off int64
	for len(p) > 0 {
		n := cutPoint(p)
		fn(off, p[:n])
		off += int64(n)
		p = p[n:]
	}
}
