package dedup

import (
	"bytes"
	"crypto/sha256"
	"math/rand"
	"testing"
)

// randBytes returns deterministic pseudo-random content.
func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b) //nolint:errcheck // never fails
	return b
}

func chunkLens(p []byte) []int {
	var lens []int
	Chunks(p, func(off int64, c []byte) { lens = append(lens, len(c)) })
	return lens
}

func TestChunksZeroLength(t *testing.T) {
	calls := 0
	Chunks(nil, func(off int64, c []byte) { calls++ })
	Chunks([]byte{}, func(off int64, c []byte) { calls++ })
	if calls != 0 {
		t.Fatalf("zero-length input produced %d chunks", calls)
	}
	m, err := Build(bytes.NewReader(nil), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 0 || m.Length != 0 {
		t.Fatalf("empty Build: %+v", m)
	}
	if m.Checksum != Key(sha256.Sum256(nil)) {
		t.Fatalf("empty checksum = %v", m.Checksum)
	}
	// Empty manifests must survive the wire format.
	back, err := DecodeManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Checksum != m.Checksum || back.Length != 0 {
		t.Fatalf("empty round trip: %+v", back)
	}
}

func TestChunksCoverInput(t *testing.T) {
	for _, n := range []int{1, MinChunk - 1, MinChunk, MinChunk + 1, 1 << 20} {
		data := randBytes(int64(n), n)
		var total int
		var rebuilt []byte
		Chunks(data, func(off int64, c []byte) {
			if int(off) != total {
				t.Fatalf("n=%d: chunk at %d, expected %d", n, off, total)
			}
			if len(c) < MinChunk && int(off)+len(c) != n {
				t.Fatalf("n=%d: interior chunk of %d < MinChunk", n, len(c))
			}
			if len(c) > MaxChunk {
				t.Fatalf("n=%d: chunk of %d > MaxChunk", n, len(c))
			}
			total += len(c)
			rebuilt = append(rebuilt, c...)
		})
		if total != n || !bytes.Equal(rebuilt, data) {
			t.Fatalf("n=%d: chunks cover %d bytes", n, total)
		}
	}
}

func TestChunkSizeDistribution(t *testing.T) {
	lens := chunkLens(randBytes(7, 8<<20))
	if len(lens) < 2 {
		t.Fatalf("8 MiB made %d chunks", len(lens))
	}
	avg := (8 << 20) / len(lens)
	// The gear mask targets ~16 KiB + the MinChunk warm-up; accept a wide
	// band — the point is "neither one giant chunk nor per-byte dust".
	if avg < AvgChunk/2 || avg > 4*AvgChunk {
		t.Fatalf("average chunk %d, target ~%d", avg, AvgChunk)
	}
}

// TestInsertionShift is the reason chunking is content-defined: inserting
// one byte near the front must re-key only a bounded neighbourhood, not
// every downstream chunk (fixed-size chunking re-keys them all).
func TestInsertionShift(t *testing.T) {
	base := randBytes(42, 4<<20)
	edited := append(append(append([]byte{}, base[:1000]...), 0xA5), base[1000:]...)

	hashes := func(p []byte) map[Key]int {
		set := make(map[Key]int)
		Chunks(p, func(off int64, c []byte) { set[Key(sha256.Sum256(c))]++ })
		return set
	}
	a, b := hashes(base), hashes(edited)
	var shared, total int
	for k, n := range b {
		total += n
		if a[k] > 0 {
			shared += n
		}
	}
	if total < 10 {
		t.Fatalf("only %d chunks; test needs a longer tail", total)
	}
	// All but a handful of chunks (those spanning the edit point) must be
	// byte-identical, hence content-addressed-shareable.
	if missed := total - shared; missed > 4 {
		t.Fatalf("1-byte insertion re-keyed %d of %d chunks", missed, total)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	data := randBytes(3, 300<<10)
	m, err := Build(bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Checksum != Key(sha256.Sum256(data)) {
		t.Fatal("whole-image checksum mismatch")
	}
	back, err := DecodeManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Length != m.Length || back.Checksum != m.Checksum || len(back.Entries) != len(m.Entries) {
		t.Fatalf("round trip: %+v vs %+v", back, m)
	}
	for i := range m.Entries {
		if back.Entries[i] != m.Entries[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
	// Build must emit chunks that match the manifest exactly, in order.
	i := 0
	_, err = Build(bytes.NewReader(data), int64(len(data)), func(e Entry, raw []byte) error {
		if e != m.Entries[i] {
			t.Fatalf("emit %d: %v vs %v", i, e, m.Entries[i])
		}
		if Key(sha256.Sum256(raw)) != e.Hash {
			t.Fatalf("emit %d: raw bytes do not hash to entry", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecodeManifestRejectsGarbage(t *testing.T) {
	m := &Manifest{Entries: []Entry{{Len: 5}}, Length: 5}
	good := m.Encode()
	for name, mutate := range map[string]func([]byte) []byte{
		"short":      func(b []byte) []byte { return b[:3] },
		"magic":      func(b []byte) []byte { b[0] ^= 0xFF; return b },
		"version":    func(b []byte) []byte { b[4] = 99; return b },
		"truncated":  func(b []byte) []byte { return b[:len(b)-1] },
		"length-sum": func(b []byte) []byte { b[15] ^= 1; return b },
	} {
		b := mutate(append([]byte{}, good...))
		if _, err := DecodeManifest(b); err == nil {
			t.Errorf("%s: decode accepted corrupt manifest", name)
		}
	}
}

func TestMissing(t *testing.T) {
	data := randBytes(9, 1<<20)
	m, err := Build(bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[Key]bool)
	for i, e := range m.Entries {
		if i%2 == 0 {
			have[e.Hash] = true
		}
	}
	missing, want, need := m.Missing(func(k Key) bool { return have[k] })
	if want != m.Length {
		t.Fatalf("want %d != length %d", want, m.Length)
	}
	if need <= 0 || need >= want {
		t.Fatalf("need %d out of range (want %d)", need, want)
	}
	for _, e := range missing {
		if have[e.Hash] {
			t.Fatal("Missing returned a held chunk")
		}
	}
	// Nothing held: everything distinct is missing. Everything held: none.
	all, w2, n2 := m.Missing(func(Key) bool { return false })
	if n2 != w2 && len(all) != len(m.Entries) {
		t.Fatalf("all-missing: need %d want %d", n2, w2)
	}
	none, _, n3 := m.Missing(func(Key) bool { return true })
	if len(none) != 0 || n3 != 0 {
		t.Fatalf("none-missing: %d entries, need %d", len(none), n3)
	}
}
