package dedup

import (
	"bytes"
	"math/rand"
	"testing"

	"vmicache/internal/backend"
)

func TestCompressDecompressStream(t *testing.T) {
	// Compressible content (repeating blocks with noise).
	data := make([]byte, 300<<10)
	rnd := rand.New(rand.NewSource(3))
	block := make([]byte, 4096)
	rnd.Read(block)
	for off := 0; off < len(data); off += len(block) {
		copy(data[off:], block)
	}
	src := backend.NewMemFileSize(int64(len(data)))
	if err := backend.WriteFull(src, data, 0); err != nil {
		t.Fatal(err)
	}

	var wireBuf sliceBuffer
	wire, err := CompressStream(&wireBuf, src, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if wire >= int64(len(data)) {
		t.Fatalf("no compression: %d >= %d", wire, len(data))
	}
	dst := backend.NewMemFile()
	n, err := DecompressStream(dst, &wireBuf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Fatalf("decompressed %d of %d", n, len(data))
	}
	got := make([]byte, len(data))
	if err := backend.ReadFull(dst, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("compress round trip mismatch")
	}
}

func TestDecompressRejectsTruncated(t *testing.T) {
	data := bytes.Repeat([]byte{1, 2, 3}, 10000)
	src := backend.NewMemFileSize(int64(len(data)))
	backend.WriteFull(src, data, 0) //nolint:errcheck
	var wireBuf sliceBuffer
	if _, err := CompressStream(&wireBuf, src, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	truncated := sliceBuffer{b: wireBuf.b[:len(wireBuf.b)/2]}
	if _, err := DecompressStream(backend.NewMemFile(), &truncated); err == nil {
		t.Fatal("accepted truncated stream")
	}
}

func TestTransferCompressed(t *testing.T) {
	src := backend.NewMemStore()
	dst := backend.NewMemStore()
	f, _ := src.Create("cache.img")
	// Half zeros (sparse cache file regions), half pattern: compresses.
	content := make([]byte, 200<<10)
	rand.New(rand.NewSource(4)).Read(content[:100<<10])
	if err := backend.WriteFull(f, content, 0); err != nil {
		t.Fatal(err)
	}
	raw, wire, err := TransferCompressed(dst, "cache.img", src, "cache.img")
	if err != nil {
		t.Fatal(err)
	}
	if raw != int64(len(content)) {
		t.Fatalf("raw = %d", raw)
	}
	if wire >= raw {
		t.Fatalf("wire %d >= raw %d", wire, raw)
	}
	out, err := dst.Open("cache.img", true)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(content))
	if err := backend.ReadFull(out, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("transferred content mismatch")
	}
}
