package dedup

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"vmicache/internal/backend"
)

func TestPutReadRoundTrip(t *testing.T) {
	s := NewStore(4096)
	data := make([]byte, 3*4096+500) // partial tail chunk
	rand.New(rand.NewSource(1)).Read(data)
	src := backend.NewMemFileSize(int64(len(data)))
	if err := backend.WriteFull(src, data, 0); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Put(src, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Keys) != 4 {
		t.Fatalf("chunks = %d", len(rec.Keys))
	}
	got := make([]byte, len(data))
	if _, err := s.ReadAt(rec, got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	// Unaligned partial read.
	part := make([]byte, 5000)
	if _, err := s.ReadAt(rec, part, 3000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, data[3000:8000]) {
		t.Fatal("partial read mismatch")
	}
	// EOF semantics.
	n, err := s.ReadAt(rec, make([]byte, 1000), rec.Length-100)
	if n != 100 || err != io.EOF {
		t.Fatalf("eof read: n=%d err=%v", n, err)
	}
}

func TestDeduplicationAcrossObjects(t *testing.T) {
	s := NewStore(4096)
	shared := make([]byte, 64<<10)
	rand.New(rand.NewSource(2)).Read(shared)

	// Two "cache images" that are 75% identical.
	mk := func(seed int64) backend.File {
		f := backend.NewMemFileSize(64 << 10)
		if err := backend.WriteFull(f, shared, 0); err != nil {
			t.Fatal(err)
		}
		delta := make([]byte, 16<<10)
		rand.New(rand.NewSource(seed)).Read(delta)
		if err := backend.WriteFull(f, delta, 48<<10); err != nil {
			t.Fatal(err)
		}
		return f
	}
	recA, err := s.Put(mk(10), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	recB, err := s.Put(mk(11), 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.LogicalBytes != 128<<10 {
		t.Fatalf("logical = %d", st.LogicalBytes)
	}
	// 12 shared prefix chunks + 2x4 delta chunks = 20 unique of 32
	// logical.
	if st.Chunks != 20 {
		t.Fatalf("unique chunks = %d, want 20", st.Chunks)
	}
	if sav := st.Savings(); sav < 0.36 || sav > 0.39 {
		t.Fatalf("savings = %v, want ~0.375", sav)
	}
	// Both objects still read back correctly.
	a := make([]byte, 64<<10)
	b := make([]byte, 64<<10)
	if _, err := s.ReadAt(recA, a, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if _, err := s.ReadAt(recB, b, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(a[:48<<10], b[:48<<10]) {
		t.Fatal("shared prefix differs")
	}
	if bytes.Equal(a[48<<10:], b[48<<10:]) {
		t.Fatal("deltas should differ")
	}
}

func TestDropReleasesChunks(t *testing.T) {
	s := NewStore(4096)
	data := bytes.Repeat([]byte{7}, 16<<10)
	src := backend.NewMemFileSize(int64(len(data)))
	backend.WriteFull(src, data, 0) //nolint:errcheck
	recA, _ := s.Put(src, int64(len(data)))
	recB, _ := s.Put(src, int64(len(data)))
	// All-identical chunks: one unique chunk.
	if s.Stats().Chunks != 1 {
		t.Fatalf("chunks = %d", s.Stats().Chunks)
	}
	s.Drop(recA)
	if s.Stats().Chunks != 1 {
		t.Fatal("drop of one ref freed shared chunk")
	}
	buf := make([]byte, 100)
	if _, err := s.ReadAt(recB, buf, 0); err != nil {
		t.Fatalf("surviving recipe unreadable: %v", err)
	}
	s.Drop(recB)
	if s.Stats().Chunks != 0 || s.Stats().LogicalBytes != 0 {
		t.Fatalf("store not empty after final drop: %+v", s.Stats())
	}
	if _, err := s.ReadAt(recB, buf, 0); err == nil {
		t.Fatal("read of dropped recipe succeeded")
	}
}

// Property: any content stored then read back equals the original.
func TestQuickStoreRoundTrip(t *testing.T) {
	s := NewStore(512)
	check := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		src := backend.NewMemFileSize(int64(len(data)))
		if err := backend.WriteFull(src, data, 0); err != nil {
			return false
		}
		rec, err := s.Put(src, int64(len(data)))
		if err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := s.ReadAt(rec, got, 0); err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressDecompressStream(t *testing.T) {
	// Compressible content (repeating blocks with noise).
	data := make([]byte, 300<<10)
	rnd := rand.New(rand.NewSource(3))
	block := make([]byte, 4096)
	rnd.Read(block)
	for off := 0; off < len(data); off += len(block) {
		copy(data[off:], block)
	}
	src := backend.NewMemFileSize(int64(len(data)))
	if err := backend.WriteFull(src, data, 0); err != nil {
		t.Fatal(err)
	}

	var wireBuf sliceBuffer
	wire, err := CompressStream(&wireBuf, src, int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if wire >= int64(len(data)) {
		t.Fatalf("no compression: %d >= %d", wire, len(data))
	}
	dst := backend.NewMemFile()
	n, err := DecompressStream(dst, &wireBuf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Fatalf("decompressed %d of %d", n, len(data))
	}
	got := make([]byte, len(data))
	if err := backend.ReadFull(dst, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("compress round trip mismatch")
	}
}

func TestDecompressRejectsTruncated(t *testing.T) {
	data := bytes.Repeat([]byte{1, 2, 3}, 10000)
	src := backend.NewMemFileSize(int64(len(data)))
	backend.WriteFull(src, data, 0) //nolint:errcheck
	var wireBuf sliceBuffer
	if _, err := CompressStream(&wireBuf, src, int64(len(data))); err != nil {
		t.Fatal(err)
	}
	truncated := sliceBuffer{b: wireBuf.b[:len(wireBuf.b)/2]}
	if _, err := DecompressStream(backend.NewMemFile(), &truncated); err == nil {
		t.Fatal("accepted truncated stream")
	}
}

func TestTransferCompressed(t *testing.T) {
	src := backend.NewMemStore()
	dst := backend.NewMemStore()
	f, _ := src.Create("cache.img")
	// Half zeros (sparse cache file regions), half pattern: compresses.
	content := make([]byte, 200<<10)
	rand.New(rand.NewSource(4)).Read(content[:100<<10])
	if err := backend.WriteFull(f, content, 0); err != nil {
		t.Fatal(err)
	}
	raw, wire, err := TransferCompressed(dst, "cache.img", src, "cache.img")
	if err != nil {
		t.Fatal(err)
	}
	if raw != int64(len(content)) {
		t.Fatalf("raw = %d", raw)
	}
	if wire >= raw {
		t.Fatalf("wire %d >= raw %d", wire, raw)
	}
	out, err := dst.Open("cache.img", true)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(content))
	if err := backend.ReadFull(out, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("transferred content mismatch")
	}
}
