package dedup

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"vmicache/internal/backend"
)

// The parallel dedup pipeline. Chunk cutting is inherently serial — each
// boundary depends on the rolling hash of the bytes before it — but
// everything downstream of a boundary is per-chunk work: SHA-256, DEFLATE,
// blob landing. BuildParallel therefore runs three stages:
//
//	cutter     one goroutine: reads the image through a sliding window,
//	           cuts content-defined boundaries, copies each chunk into a
//	           pooled buffer and queues it.
//	workers    opts.Workers goroutines: SHA-256 each chunk, and (with
//	           opts.Compress) produce its length-framed DEFLATE wire blob.
//	committer  the calling goroutine: consumes chunks in submission order,
//	           folds them into the whole-image checksum, and calls emit.
//
// The committer preserves the serial contract exactly: emit runs on the
// caller's goroutine, once per chunk, in manifest order, and the manifest
// (entries, length, whole-image SHA-256) is byte-identical to a serial
// Build at every worker count. Throughput is bounded by the slowest serial
// stage — the cutter's gear hash or the committer's whole-image SHA —
// with per-chunk hashing and compression spread across the pool.
//
// Materialize is the mirror image for reads: workers decode and verify
// blobs concurrently while the ordered committer writes them out and
// re-derives the whole-image checksum.

// BuildOpts tunes BuildParallel.
type BuildOpts struct {
	// Workers is the hash/compress parallelism. Values <= 1 run the
	// single-threaded path (no goroutines, no handoff overhead).
	Workers int

	// Compress makes the workers also produce each chunk's wire blob
	// (8-byte raw length + DEFLATE) and passes it to emit, so a store
	// landing the chunk skips its own compression pass.
	Compress bool
}

// errPipelineCanceled marks jobs abandoned after the pipeline already
// failed; it is never returned to callers (the first real error wins).
var errPipelineCanceled = errors.New("dedup: pipeline canceled")

// batchTarget is how many chunk bytes the cutter packs into one pipeline
// job. Cutting produces a chunk every ~AvgChunk bytes; handing each to a
// worker individually would cost a channel round trip per ~16 KiB of work,
// so jobs batch chunks until they hold ~batchTarget bytes and the handoff
// amortises over dozens of hashes.
const batchTarget = 256 << 10

// buildJob is one batch of chunks moving through the build pipeline.
type buildJob struct {
	buf   *[]byte         // pooled batch buffer; chunks packed back-to-back
	lens  []int           // chunk lengths, in image order
	es    []Entry         // filled by the worker
	comps []*bytes.Buffer // pooled wire-blob buffers (Compress only)
	err   error
	done  chan struct{}
}

var (
	windowPool = sync.Pool{New: func() any {
		// 2×MaxChunk so a boundary decision never runs out of lookahead
		// except at true EOF.
		b := make([]byte, 2*MaxChunk)
		return &b
	}}
	batchBufPool = sync.Pool{New: func() any {
		// One more MaxChunk of slack: the cutter packs until the target is
		// crossed, so the final chunk of a batch may overhang.
		b := make([]byte, batchTarget+MaxChunk)
		return &b
	}}
	chunkBufPool = sync.Pool{New: func() any {
		b := make([]byte, MaxChunk)
		return &b
	}}
	compBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

// chunker pulls content-defined chunks out of r through a pooled sliding
// window. Returned slices alias the window and are valid until the next
// call.
type chunker struct {
	r      io.ReaderAt
	length int64
	buf    []byte
	pos    int
	filled int
	off    int64
}

// next returns the next chunk, or nil at end of image.
func (c *chunker) next() ([]byte, error) {
	if c.filled-c.pos < MaxChunk && c.off < c.length {
		// Compact and top up so the cut sees full MaxChunk lookahead
		// whenever more bytes exist.
		copy(c.buf, c.buf[c.pos:c.filled])
		c.filled -= c.pos
		c.pos = 0
		for c.filled < len(c.buf) && c.off < c.length {
			n := len(c.buf) - c.filled
			if rem := c.length - c.off; rem < int64(n) {
				n = int(rem)
			}
			if _, err := c.r.ReadAt(c.buf[c.filled:c.filled+n], c.off); err != nil && err != io.EOF {
				return nil, err
			}
			c.filled += n
			c.off += int64(n)
		}
	}
	if c.pos >= c.filled {
		return nil, nil
	}
	lookahead := c.filled - c.pos
	if lookahead > MaxChunk {
		lookahead = MaxChunk
	}
	n := cutPoint(c.buf[c.pos : c.pos+lookahead])
	chunk := c.buf[c.pos : c.pos+n]
	c.pos += n
	return chunk, nil
}

// encodeWireBlob renders raw as the length-framed compressed blob format
// (the blob disk/wire layout) into buf, which is reset first.
func encodeWireBlob(buf *bytes.Buffer, raw []byte) error {
	buf.Reset()
	var hdr [blobHdrLen]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(raw)))
	buf.Write(hdr[:]) //nolint:errcheck // bytes.Buffer writes cannot fail
	return deflateTo(buf, raw)
}

// BuildParallel chunks length bytes of r content-defined, spreading
// per-chunk hashing (and, with opts.Compress, compression) across
// opts.Workers goroutines. emit is called once per chunk on the calling
// goroutine, in manifest order; raw (and comp, when opts.Compress) are
// valid only during the call. The returned manifest — entries, length, and
// whole-image checksum — is byte-identical to a serial Build.
func BuildParallel(r io.ReaderAt, length int64, opts BuildOpts, emit func(e Entry, raw, comp []byte) error) (*Manifest, error) {
	if opts.Workers <= 1 {
		return buildSerial(r, length, opts.Compress, emit)
	}

	// Two bounded queues carry each job: work feeds whichever worker is
	// free, order restores submission order at the committer. Their
	// capacities bound pipeline memory to O(Workers) batch buffers.
	work := make(chan *buildJob, opts.Workers)
	order := make(chan *buildJob, opts.Workers*2)
	var stop atomic.Bool

	var wg sync.WaitGroup
	for i := 0; i < opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range work {
				if stop.Load() {
					job.err = errPipelineCanceled
				} else {
					buf := *job.buf
					job.es = make([]Entry, len(job.lens))
					off := 0
					for i, n := range job.lens {
						raw := buf[off : off+n]
						job.es[i] = Entry{Hash: Key(sha256.Sum256(raw)), Len: uint32(n)}
						if opts.Compress {
							cb := compBufPool.Get().(*bytes.Buffer)
							if err := encodeWireBlob(cb, raw); err != nil {
								compBufPool.Put(cb)
								job.err = err
								break
							}
							job.comps = append(job.comps, cb)
						}
						off += n
					}
				}
				close(job.done)
			}
		}()
	}

	// Cutter: serial boundary detection packing chunks into batch jobs and
	// feeding both queues. Its error (a read failure) is published before
	// the channels close, so the committer observes it after draining.
	var cutErr error
	go func() {
		defer close(work)
		defer close(order)
		wb := windowPool.Get().(*[]byte)
		defer windowPool.Put(wb)
		c := &chunker{r: r, length: length, buf: *wb}
		var job *buildJob
		used := 0
		flush := func() {
			if job == nil {
				return
			}
			work <- job
			order <- job
			job, used = nil, 0
		}
		defer func() {
			if job != nil { // canceled or failed mid-batch
				batchBufPool.Put(job.buf)
			}
		}()
		for !stop.Load() {
			chunk, err := c.next()
			if err != nil {
				cutErr = err
				return
			}
			if chunk == nil {
				flush()
				return
			}
			if job == nil {
				job = &buildJob{buf: batchBufPool.Get().(*[]byte), done: make(chan struct{})}
			}
			used += copy((*job.buf)[used:], chunk)
			job.lens = append(job.lens, len(chunk))
			if used >= batchTarget {
				flush()
			}
		}
	}()

	// Committer: the calling goroutine restores manifest order, folds the
	// whole-image checksum, and runs emit. After the first failure it
	// keeps draining so every pooled buffer comes home and the cutter and
	// workers shut down.
	m := &Manifest{Length: length}
	whole := sha256.New()
	var firstErr error
	for job := range order {
		<-job.done
		if firstErr == nil && job.err != nil {
			firstErr = job.err
			stop.Store(true)
		}
		if firstErr == nil {
			buf := *job.buf
			off := 0
			for i, n := range job.lens {
				raw := buf[off : off+n]
				whole.Write(raw) //nolint:errcheck // hash writes cannot fail
				if emit != nil {
					var comp []byte
					if i < len(job.comps) {
						comp = job.comps[i].Bytes()
					}
					if err := emit(job.es[i], raw, comp); err != nil {
						firstErr = err
						stop.Store(true)
						break
					}
				}
				m.Entries = append(m.Entries, job.es[i])
				off += n
			}
		}
		for _, cb := range job.comps {
			compBufPool.Put(cb)
		}
		batchBufPool.Put(job.buf)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if cutErr != nil {
		return nil, cutErr
	}
	m.Checksum = Key(whole.Sum(nil))
	return m, nil
}

// buildSerial is the single-threaded reference pipeline: one pass, pooled
// window, no goroutines.
func buildSerial(r io.ReaderAt, length int64, compress bool, emit func(e Entry, raw, comp []byte) error) (*Manifest, error) {
	m := &Manifest{Length: length}
	whole := sha256.New()
	wb := windowPool.Get().(*[]byte)
	defer windowPool.Put(wb)
	var compBuf *bytes.Buffer
	if compress {
		compBuf = compBufPool.Get().(*bytes.Buffer)
		defer compBufPool.Put(compBuf)
	}
	c := &chunker{r: r, length: length, buf: *wb}
	for {
		chunk, err := c.next()
		if err != nil {
			return nil, err
		}
		if chunk == nil {
			break
		}
		e := Entry{Hash: Key(sha256.Sum256(chunk)), Len: uint32(len(chunk))}
		whole.Write(chunk) //nolint:errcheck // hash writes cannot fail
		if emit != nil {
			var comp []byte
			if compress {
				if err := encodeWireBlob(compBuf, chunk); err != nil {
					return nil, err
				}
				comp = compBuf.Bytes()
			}
			if err := emit(e, chunk, comp); err != nil {
				return nil, err
			}
		}
		m.Entries = append(m.Entries, e)
	}
	m.Checksum = Key(whole.Sum(nil))
	return m, nil
}

// matJob is one chunk moving through the materialize pipeline.
type matJob struct {
	e    Entry
	raw  *[]byte // pooled; decoded chunk is (*raw)[:e.Len]
	err  error
	done chan struct{}
}

// Materialize writes man's content into w from src's blobs, decoding and
// hash-verifying up to workers chunks concurrently while the calling
// goroutine writes them out in order and re-derives the whole-image
// checksum. workers <= 1 decodes serially. Every chunk is verified against
// its entry hash and the finished image against man.Checksum, exactly like
// the serial path.
func Materialize(w io.WriterAt, man *Manifest, src *BlobStore, workers int) error {
	if workers <= 1 {
		return materializeSerial(w, man, src)
	}
	inflight := workers * 2
	work := make(chan *matJob, inflight)
	order := make(chan *matJob, inflight*2)
	var stop atomic.Bool

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range work {
				if stop.Load() {
					job.err = errPipelineCanceled
				} else {
					job.raw, job.err = decodeChunk(src, job.e)
				}
				close(job.done)
			}
		}()
	}
	go func() {
		defer close(work)
		defer close(order)
		for _, e := range man.Entries {
			if stop.Load() {
				return
			}
			job := &matJob{e: e, done: make(chan struct{})}
			work <- job
			order <- job
		}
	}()

	whole := sha256.New()
	var off int64
	var firstErr error
	for job := range order {
		<-job.done
		if firstErr == nil {
			if job.err != nil {
				firstErr = job.err
				stop.Store(true)
			} else {
				raw := (*job.raw)[:job.e.Len]
				if err := backend.WriteFull(w, raw, off); err != nil {
					firstErr = err
					stop.Store(true)
				} else {
					whole.Write(raw) //nolint:errcheck // hash writes cannot fail
					off += int64(len(raw))
				}
			}
		}
		if job.raw != nil {
			chunkBufPool.Put(job.raw)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if sum := Key(whole.Sum(nil)); sum != man.Checksum {
		return fmt.Errorf("dedup: materialized image fails manifest checksum")
	}
	return nil
}

func materializeSerial(w io.WriterAt, man *Manifest, src *BlobStore) error {
	whole := sha256.New()
	var off int64
	for _, e := range man.Entries {
		rawBuf, err := decodeChunk(src, e)
		if err != nil {
			return err
		}
		raw := (*rawBuf)[:e.Len]
		err = backend.WriteFull(w, raw, off)
		if err == nil {
			whole.Write(raw) //nolint:errcheck // hash writes cannot fail
			off += int64(len(raw))
		}
		chunkBufPool.Put(rawBuf)
		if err != nil {
			return err
		}
	}
	if sum := Key(whole.Sum(nil)); sum != man.Checksum {
		return fmt.Errorf("dedup: materialized image fails manifest checksum")
	}
	return nil
}

// decodeChunk reads entry e's blob and inflates it into a pooled buffer,
// verifying the blob's framed length against the manifest and its content
// hash against the entry. The caller owns the returned buffer and recycles
// it into chunkBufPool.
func decodeChunk(src *BlobStore, e Entry) (*[]byte, error) {
	comp, rawLen, err := src.ReadCompressed(e.Hash)
	if err != nil {
		return nil, err
	}
	if rawLen != int64(e.Len) || int64(e.Len) > MaxChunk {
		return nil, fmt.Errorf("dedup: blob %v: %d bytes, manifest says %d", e.Hash, rawLen, e.Len)
	}
	buf := chunkBufPool.Get().(*[]byte)
	raw := (*buf)[:e.Len]
	if err := inflateInto(raw, comp[blobHdrLen:]); err != nil {
		chunkBufPool.Put(buf)
		return nil, fmt.Errorf("%w: %s: %v", ErrCorruptBlob, e.Hash, err)
	}
	if Key(sha256.Sum256(raw)) != e.Hash {
		chunkBufPool.Put(buf)
		return nil, fmt.Errorf("%w: %s: hash mismatch", ErrCorruptBlob, e.Hash)
	}
	return buf, nil
}
