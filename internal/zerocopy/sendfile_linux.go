//go:build linux

package zerocopy

import (
	"io"
	"net"
	"os"
	"syscall"
)

// Supported reports whether the platform provides true zero-copy sends.
const Supported = true

// maxSendfileChunk bounds one sendfile(2) call; the kernel caps transfers
// around 2 GiB per call anyway, and resuming in bounded chunks keeps the
// short-return arithmetic honest.
const maxSendfileChunk = 1 << 30

// Send transfers f[off:off+n) to conn without copying the bytes through
// user space. The destination must be a real socket (anything exposing
// syscall.Conn); other writers — and transports whose raw write path
// refuses sendfile — degrade to CopySegment. Short sendfile returns and
// EAGAIN are resumed at the correct FILE offset (off+sent), never by
// replaying a stale position, so a slow receiver mid-batch cannot skew the
// stream.
func Send(conn net.Conn, f *os.File, off, n int64) (int64, error) {
	if n <= 0 {
		return 0, nil
	}
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return CopySegment(conn, f, off, n)
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return CopySegment(conn, f, off, n)
	}
	src := int(f.Fd())
	var sent int64
	var opErr error
	fallback := false
	werr := rc.Write(func(fd uintptr) bool {
		for sent < n {
			chunk := n - sent
			if chunk > maxSendfileChunk {
				chunk = maxSendfileChunk
			}
			// pos is recomputed from sent every call: sendfile advances
			// it in place, and a short return resumes exactly where the
			// kernel stopped.
			pos := off + sent
			m, err := syscall.Sendfile(int(fd), src, &pos, int(chunk))
			if m > 0 {
				sent += int64(m)
			}
			switch err {
			case nil:
				if m == 0 {
					// The file ended before the promised length (the
					// caller's header already announced n bytes).
					opErr = io.ErrUnexpectedEOF
					return true
				}
			case syscall.EINTR:
				// retry
			case syscall.EAGAIN:
				return false // wait for writability, then resume
			case syscall.EINVAL, syscall.ENOSYS:
				// The pair does not support sendfile after all; finish
				// the remainder through the copy path.
				fallback = true
				return true
			default:
				opErr = err
				return true
			}
		}
		return true
	})
	if werr != nil {
		return sent, werr
	}
	if fallback {
		m, cerr := CopySegment(conn, f, off+sent, n-sent)
		return sent + m, cerr
	}
	return sent, opErr
}
