//go:build linux

package zerocopy

import (
	"fmt"
	"os"
	"syscall"
)

// Mmap maps f[0:n) read-only and shared. The caller owns the mapping and
// must release it with Munmap; the mapping stays valid across an unlink of
// the file (eviction of a published cache), exactly like a held descriptor.
func Mmap(f *os.File, n int64) ([]byte, error) {
	if n <= 0 {
		return nil, fmt.Errorf("zerocopy: mmap of %d bytes", n)
	}
	if int64(int(n)) != n {
		return nil, fmt.Errorf("zerocopy: mmap of %d bytes exceeds address space", n)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(n), syscall.PROT_READ, syscall.MAP_SHARED)
}

// Munmap releases a mapping returned by Mmap.
func Munmap(m []byte) error { return syscall.Munmap(m) }

// AdviseWillNeed asks the kernel to fault in m[off:off+n) ahead of use
// (metadata tables of a warm image: L1, refcount, sub-cluster bitmaps, hot
// L2 region). The start is aligned down to the page size as madvise
// requires; errors are advisory and safe to ignore.
func AdviseWillNeed(m []byte, off, n int64) error {
	if off < 0 || n <= 0 || off >= int64(len(m)) {
		return nil
	}
	start := pageAlignDown(off)
	end := off + n
	if end > int64(len(m)) {
		end = int64(len(m))
	}
	return syscall.Madvise(m[start:end], syscall.MADV_WILLNEED)
}
