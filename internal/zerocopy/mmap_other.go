//go:build !linux

package zerocopy

import "os"

// Mmap is unavailable off Linux; callers keep the pread path.
func Mmap(*os.File, int64) ([]byte, error) { return nil, ErrUnsupported }

// Munmap matches the Linux signature; no mapping can exist to release.
func Munmap([]byte) error { return ErrUnsupported }

// AdviseWillNeed is a no-op without a mapping.
func AdviseWillNeed([]byte, int64, int64) error { return ErrUnsupported }
