package zerocopy

import (
	"bytes"
	"crypto/rand"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// writeTemp creates an os file with deterministic-random content.
func writeTemp(t testing.TB, n int) (*os.File, []byte) {
	t.Helper()
	data := make([]byte, n)
	if _, err := rand.Read(data); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "seg.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() }) //nolint:errcheck // test teardown
	return f, data
}

// loopback returns a connected TCP pair on 127.0.0.1.
func loopback(t testing.TB) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close() //nolint:errcheck // listener only needed for the dial
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	cl, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { cl.Close(); r.c.Close() }) //nolint:errcheck // test teardown
	return cl, r.c
}

// TestSendOverTCP proves byte-identity of the sendfile path against the
// source file, across offsets and lengths including EOF-adjacent tails.
func TestSendOverTCP(t *testing.T) {
	f, data := writeTemp(t, 1<<20)
	cases := []struct{ off, n int64 }{
		{0, 4096},
		{513, 100000},
		{1<<20 - 10, 10},
		{0, 1 << 20},
	}
	for _, tc := range cases {
		cl, srv := loopback(t)
		var got bytes.Buffer
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			io.Copy(&got, cl) //nolint:errcheck // bounded by the close below
		}()
		sent, err := Send(srv, f, tc.off, tc.n)
		if err != nil {
			t.Fatalf("Send(off=%d, n=%d): %v", tc.off, tc.n, err)
		}
		if sent != tc.n {
			t.Fatalf("Send(off=%d, n=%d): sent %d", tc.off, tc.n, sent)
		}
		srv.Close() //nolint:errcheck // flushes EOF to the reader
		wg.Wait()
		if !bytes.Equal(got.Bytes(), data[tc.off:tc.off+tc.n]) {
			t.Fatalf("Send(off=%d, n=%d): payload mismatch", tc.off, tc.n)
		}
	}
}

// TestSendSlowReader drains the receiver a few KiB at a time so the socket
// buffer fills and sendfile returns short repeatedly; the resume-at-file-
// offset logic must still deliver a byte-identical stream.
func TestSendSlowReader(t *testing.T) {
	const n = 512 << 10
	f, data := writeTemp(t, n)
	cl, srv := loopback(t)
	if tcp, ok := srv.(*net.TCPConn); ok {
		tcp.SetWriteBuffer(8 << 10) //nolint:errcheck // best-effort squeeze
	}
	if tcp, ok := cl.(*net.TCPConn); ok {
		tcp.SetReadBuffer(8 << 10) //nolint:errcheck
	}
	got := make([]byte, 0, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 3000) // odd size: forces misaligned short reads
		for {
			m, err := cl.Read(buf)
			got = append(got, buf[:m]...)
			if err != nil {
				return
			}
		}
	}()
	sent, err := Send(srv, f, 0, n)
	if err != nil || sent != n {
		t.Fatalf("Send: sent=%d err=%v", sent, err)
	}
	srv.Close() //nolint:errcheck
	wg.Wait()
	if !bytes.Equal(got, data) {
		t.Fatal("slow-reader stream mismatch")
	}
}

// TestSendFileShorterThanPromised must fail loudly (the frame header already
// announced the length) instead of silently truncating the stream.
func TestSendFileShorterThanPromised(t *testing.T) {
	f, _ := writeTemp(t, 4096)
	cl, srv := loopback(t)
	go io.Copy(io.Discard, cl) //nolint:errcheck // drain
	if _, err := Send(srv, f, 0, 8192); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

// rateLimitedWriter accepts at most limit bytes per Write call — the
// "rate-limited pipe" of the fault-injection matrix. Crucially it returns
// SHORT COUNTS WITHOUT AN ERROR, the case a naive iovec-advance would
// mishandle by resuming at a stale buffer position.
type rateLimitedWriter struct {
	w     io.Writer
	limit int
	calls int
}

func (r *rateLimitedWriter) Write(p []byte) (int, error) {
	r.calls++
	if len(p) > r.limit {
		p = p[:r.limit]
	}
	return r.w.Write(p)
}

// TestCopySegmentShortWrites drives the portable fallback through a writer
// that takes 1000 bytes per call; the pread resume must track the bytes the
// writer actually accepted.
func TestCopySegmentShortWrites(t *testing.T) {
	f, data := writeTemp(t, 300<<10) // larger than one pooled scratch buffer
	var sink bytes.Buffer
	rl := &rateLimitedWriter{w: &sink, limit: 1000}
	n, err := CopySegment(rl, f, 777, 250<<10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 250<<10 {
		t.Fatalf("copied %d", n)
	}
	if rl.calls < 250 {
		t.Fatalf("rate limit not exercised (%d calls)", rl.calls)
	}
	if !bytes.Equal(sink.Bytes(), data[777:777+250<<10]) {
		t.Fatal("short-write stream mismatch")
	}
}

// TestCopySegmentPastEOF mirrors the sendfile contract for the fallback.
func TestCopySegmentPastEOF(t *testing.T) {
	f, _ := writeTemp(t, 1000)
	var sink bytes.Buffer
	if _, err := CopySegment(&sink, f, 500, 1000); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

// TestSendNonSocket exercises the CopySegment degradation when the
// destination net.Conn is not a real socket (net.Pipe has no descriptor).
func TestSendNonSocket(t *testing.T) {
	f, data := writeTemp(t, 64<<10)
	cl, srv := net.Pipe()
	defer cl.Close()  //nolint:errcheck
	defer srv.Close() //nolint:errcheck
	var got bytes.Buffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		for got.Len() < 64<<10 {
			m, err := cl.Read(buf)
			got.Write(buf[:m])
			if err != nil {
				return
			}
		}
	}()
	if _, err := Send(srv, f, 0, 64<<10); err != nil {
		t.Fatal(err)
	}
	<-done
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("pipe stream mismatch")
	}
}

// TestMmapRoundTrip maps a file, checks contents, and proves the mapping
// survives an unlink (the eviction-while-serving contract).
func TestMmapRoundTrip(t *testing.T) {
	f, data := writeTemp(t, 128<<10)
	m, err := Mmap(f, 128<<10)
	if err != nil {
		if errors.Is(err, ErrUnsupported) {
			t.Skip("mmap unsupported on this platform")
		}
		t.Fatal(err)
	}
	defer Munmap(m) //nolint:errcheck // test teardown
	if err := AdviseWillNeed(m, 4097, 8192); err != nil {
		t.Fatalf("AdviseWillNeed: %v", err)
	}
	if !bytes.Equal(m, data) {
		t.Fatal("mapping mismatch")
	}
	// Evict the file from under the mapping: bytes must stay readable.
	if err := os.Remove(f.Name()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m[64<<10:], data[64<<10:]) {
		t.Fatal("mapping lost after unlink")
	}
}

// TestSendAfterUnlink streams a file whose directory entry is already gone:
// the held descriptor keeps the extents alive, so eviction of a published
// cache mid-sendfile must not corrupt the transfer.
func TestSendAfterUnlink(t *testing.T) {
	f, data := writeTemp(t, 1<<20)
	if err := os.Remove(f.Name()); err != nil {
		t.Fatal(err)
	}
	cl, srv := loopback(t)
	var got bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		io.Copy(&got, cl) //nolint:errcheck
	}()
	if sent, err := Send(srv, f, 0, 1<<20); err != nil || sent != 1<<20 {
		t.Fatalf("Send after unlink: sent=%d err=%v", sent, err)
	}
	srv.Close() //nolint:errcheck
	wg.Wait()
	if !bytes.Equal(got.Bytes(), data) {
		t.Fatal("post-unlink stream mismatch")
	}
}
