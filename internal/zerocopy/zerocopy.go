// Package zerocopy holds the platform fast paths that move published cache
// bytes to the wire (or into the boot path) without a user-space copy:
// sendfile(2) from an immutable cache file straight to a client socket, and
// read-only mmap of a warm container so in-process reads become memory
// copies instead of pread syscalls.
//
// Everything here is best-effort by contract: every entry point has a
// portable fallback (CopySegment, ErrUnsupported) so callers on non-Linux
// platforms — or over transports that are not real sockets — degrade to the
// ordinary copy path instead of failing. The serve-path invariant the fast
// paths rely on is IMMUTABILITY: a file segment handed to Send or a mapping
// installed by Mmap is read after the call returns with no lock held, which
// is only sound because published caches are frozen (0444, cluster mappings
// never change) and their descriptors are held open across eviction.
package zerocopy

import (
	"errors"
	"io"
	"os"
	"sync"
)

// ErrUnsupported marks a fast path the platform (or the concrete transport)
// cannot provide; callers fall back to the copy path.
var ErrUnsupported = errors.New("zerocopy: not supported on this platform")

// FileExtent is one physically contiguous run of an immutable container
// file: the unit the extent-export API (qcow.Image.PlainExtents) hands to
// the serve path, and the unit Send pushes to a socket.
type FileExtent struct {
	F   *os.File
	Off int64
	Len int64
}

// ExtentSource is implemented by devices that can translate a read over
// fully-valid raw clusters into container-file extents instead of bytes.
// PlainExtents appends the extents covering [off, off+n) to dst and reports
// whether the WHOLE range is served that way; ok == false means some part of
// the range needs the copy path (compressed cluster, partial sub-cluster,
// unallocated run, writable image) and the caller must fall back for the
// entire request. The returned extents stay valid as long as the device is
// open: the contract is only offered by read-only images whose cluster
// mappings are frozen.
type ExtentSource interface {
	PlainExtents(off, n int64, dst []FileExtent) ([]FileExtent, bool)
}

// Filer exposes the *os.File under a backend wrapper, the descriptor the
// sendfile and mmap paths need. Wrappers around os-backed files forward it;
// memory files and remote files do not implement it.
type Filer interface {
	SysFile() *os.File
}

// SysFile unwraps v to its *os.File, or nil when v is not os-backed.
func SysFile(v any) *os.File {
	if s, ok := v.(Filer); ok {
		return s.SysFile()
	}
	return nil
}

// segBufPool recycles the scratch buffers of the portable CopySegment
// fallback so the copy path allocates nothing in steady state.
var segBufPool = sync.Pool{New: func() any {
	b := make([]byte, 256<<10)
	return &b
}}

// CopySegment is the portable serve path for one file segment: pread into a
// pooled buffer, write out, resuming at the correct FILE offset after any
// short write (a short write consumes only part of the buffer; the next
// pread continues from off+done, not from a stale buffer position). It is
// the non-Linux body of Send and the fallback when the destination is not a
// real socket.
func CopySegment(w io.Writer, f *os.File, off, n int64) (int64, error) {
	bp := segBufPool.Get().(*[]byte)
	defer segBufPool.Put(bp)
	buf := *bp
	var done int64
	for done < n {
		chunk := n - done
		if chunk > int64(len(buf)) {
			chunk = int64(len(buf))
		}
		m, rerr := f.ReadAt(buf[:chunk], off+done)
		if m > 0 {
			wn, werr := writeFull(w, buf[:m])
			done += int64(wn)
			if werr != nil {
				return done, werr
			}
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				// The file ended before the promised segment length:
				// the frame header already announced n bytes, so a
				// short segment would desynchronise the stream.
				return done, io.ErrUnexpectedEOF
			}
			return done, rerr
		}
	}
	return done, nil
}

// writeFull pushes all of p, tolerating writers that return short counts
// without an error (rate-limited pipes in fault-injection tests do).
func writeFull(w io.Writer, p []byte) (int, error) {
	var done int
	for done < len(p) {
		n, err := w.Write(p[done:])
		done += n
		if err != nil {
			return done, err
		}
		if n == 0 {
			return done, io.ErrShortWrite
		}
	}
	return done, nil
}

// pageAlignDown rounds off down to the platform page size (for madvise over
// a sub-range of a mapping, whose start must be page-aligned).
func pageAlignDown(off int64) int64 {
	ps := int64(os.Getpagesize())
	return off - off%ps
}
