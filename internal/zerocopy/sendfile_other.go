//go:build !linux

package zerocopy

import (
	"net"
	"os"
)

// Supported reports whether the platform provides true zero-copy sends.
const Supported = false

// Send degrades to the portable pread+write loop on platforms without a
// sendfile fast path. The contract (resume at the file offset after short
// writes, error on a file shorter than n) is identical.
func Send(conn net.Conn, f *os.File, off, n int64) (int64, error) {
	if n <= 0 {
		return 0, nil
	}
	return CopySegment(conn, f, off, n)
}
