package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"vmicache/internal/backend"
	"vmicache/internal/qcow"
)

const mb = 1 << 20

// testEnv is a two-medium namespace: "nfs" (default, storage node) and
// "disk" (compute node), with a patterned base image on nfs.
type testEnv struct {
	ns      *Namespace
	nfs     *backend.MemStore
	disk    *backend.MemStore
	pattern []byte
	size    int64
}

func newTestEnv(t *testing.T, size int64) *testEnv {
	t.Helper()
	nfs := backend.NewMemStore()
	disk := backend.NewMemStore()
	ns := NewNamespace("nfs", nfs)
	ns.Register("disk", disk)

	pat := make([]byte, size)
	rand.New(rand.NewSource(77)).Read(pat)
	content := backend.NewMemFileSize(size)
	if err := backend.WriteFull(content, pat, 0); err != nil {
		t.Fatal(err)
	}
	err := CreateBase(ns, Locator{Store: "nfs", Name: "base.img"}, size, 16,
		qcow.RawSource{R: content, N: size})
	if err != nil {
		t.Fatalf("CreateBase: %v", err)
	}
	return &testEnv{ns: ns, nfs: nfs, disk: disk, pattern: pat, size: size}
}

func TestParseLocator(t *testing.T) {
	l := ParseLocator("disk:images/cow.img")
	if l.Store != "disk" || l.Name != "images/cow.img" {
		t.Fatalf("locator: %+v", l)
	}
	if l.String() != "disk:images/cow.img" {
		t.Fatalf("string: %s", l)
	}
	bare := ParseLocator("base.img")
	if bare.Store != "" || bare.Name != "base.img" || bare.String() != "base.img" {
		t.Fatalf("bare: %+v", bare)
	}
}

func TestNamespaceResolution(t *testing.T) {
	st := backend.NewMemStore()
	ns := NewNamespace("main", st)
	if got, err := ns.Store(""); err != nil || got != backend.Store(st) {
		t.Fatalf("default store: %v", err)
	}
	if _, err := ns.Store("nope"); err == nil {
		t.Fatal("unknown store resolved")
	}
	if ns.Default() != "main" {
		t.Fatal("default name")
	}
}

func TestWorkflowCreatesBootableChain(t *testing.T) {
	env := newTestEnv(t, 2*mb)
	base := Locator{Store: "nfs", Name: "base.img"}
	cache := Locator{Store: "disk", Name: "base.cache"}
	cow := Locator{Store: "disk", Name: "vm0.cow"}

	// §4.4 two-step workflow.
	if err := CreateCache(env.ns, cache, base, env.size, mb, 0); err != nil {
		t.Fatalf("CreateCache: %v", err)
	}
	if err := CreateCoW(env.ns, cow, cache, env.size, 0); err != nil {
		t.Fatalf("CreateCoW: %v", err)
	}

	c, err := OpenChain(env.ns, cow, ChainOpts{})
	if err != nil {
		t.Fatalf("OpenChain: %v", err)
	}
	defer c.Close() //nolint:errcheck
	if len(c.Images) != 3 {
		t.Fatalf("chain length = %d, want 3", len(c.Images))
	}
	if c.CacheImage() == nil || !c.Images[1].IsCache() {
		t.Fatal("cache image not in position 1")
	}
	if c.Size() != env.size {
		t.Fatalf("chain size = %d", c.Size())
	}

	// Boot-style read: correct data, cache warms.
	buf := make([]byte, 4096)
	if err := backend.ReadFull(c, buf, 512*9); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, env.pattern[512*9:512*9+4096]) {
		t.Fatal("chain read mismatch")
	}
	if c.CacheImage().Stats().CacheFillOps.Load() == 0 {
		t.Fatal("cache did not warm")
	}

	// Guest write then read-back.
	if err := backend.WriteFull(c, []byte("hello"), 100); err != nil {
		t.Fatal(err)
	}
	if err := backend.ReadFull(c, buf[:5], 100); err != nil {
		t.Fatal(err)
	}
	if string(buf[:5]) != "hello" {
		t.Fatal("write-read mismatch")
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenChainPermissionDance(t *testing.T) {
	env := newTestEnv(t, mb)
	base := Locator{Store: "nfs", Name: "base.img"}
	cow := Locator{Store: "disk", Name: "direct.cow"}
	if err := CreateCoW(env.ns, cow, base, env.size, 0); err != nil {
		t.Fatal(err)
	}
	c, err := OpenChain(env.ns, cow, ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	// The base is not a cache: it must have been re-opened read-only, so
	// a write must fail with the image-level read-only error.
	if _, err := c.Images[1].WriteAt([]byte{1}, 0); !errors.Is(err, qcow.ErrReadOnly) {
		t.Fatalf("base image writable: %v", err)
	}
	// Whereas a cache in the middle of a chain stays writable (it needs
	// to warm itself).
	cache := Locator{Store: "disk", Name: "c.cache"}
	cow2 := Locator{Store: "disk", Name: "c.cow"}
	if err := CreateCache(env.ns, cache, base, env.size, mb, 0); err != nil {
		t.Fatal(err)
	}
	if err := CreateCoW(env.ns, cow2, cache, env.size, 0); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenChain(env.ns, cow2, ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close() //nolint:errcheck
	buf := make([]byte, 512)
	if err := backend.ReadFull(c2, buf, 0); err != nil {
		t.Fatal(err)
	}
	if c2.Images[1].Stats().CacheFillOps.Load() == 0 {
		t.Fatal("mid-chain cache could not fill (write permission lost)")
	}
}

func TestOpenChainRawBase(t *testing.T) {
	// A raw (non-qcow) base at the end of the chain.
	nfs := backend.NewMemStore()
	ns := NewNamespace("nfs", nfs)
	raw, err := nfs.Create("raw.img")
	if err != nil {
		t.Fatal(err)
	}
	pat := bytes.Repeat([]byte{0x5a}, mb)
	if err := backend.WriteFull(raw, pat, 0); err != nil {
		t.Fatal(err)
	}
	cow := Locator{Store: "nfs", Name: "over-raw.cow"}
	if err := CreateCoW(ns, cow, Locator{Store: "nfs", Name: "raw.img"}, mb, 0); err != nil {
		t.Fatal(err)
	}
	c, err := OpenChain(ns, cow, ChainOpts{})
	if err != nil {
		t.Fatalf("OpenChain over raw base: %v", err)
	}
	defer c.Close() //nolint:errcheck
	buf := make([]byte, 100)
	if err := backend.ReadFull(c, buf, 5000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pat[5000:5100]) {
		t.Fatal("raw base read mismatch")
	}
}

func TestOpenChainDetectsCycle(t *testing.T) {
	nfs := backend.NewMemStore()
	ns := NewNamespace("nfs", nfs)
	// a backs b backs a.
	mk := func(name, backing string) {
		f, err := nfs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		img, err := qcow.Create(f, qcow.CreateOpts{Size: mb, ClusterBits: 16, BackingFile: backing})
		if err != nil {
			t.Fatal(err)
		}
		if err := img.Close(); err != nil {
			t.Fatal(err)
		}
	}
	mk("a.img", "b.img")
	mk("b.img", "a.img")
	if _, err := OpenChain(ns, Locator{Store: "nfs", Name: "a.img"}, ChainOpts{}); !errors.Is(err, ErrChainCycle) {
		t.Fatalf("cycle: %v", err)
	}
}

func TestOpenChainMissingFile(t *testing.T) {
	nfs := backend.NewMemStore()
	ns := NewNamespace("nfs", nfs)
	if _, err := OpenChain(ns, Locator{Store: "nfs", Name: "ghost"}, ChainOpts{}); err == nil {
		t.Fatal("opened missing image")
	}
}

func TestWrapFileSeesEveryLevel(t *testing.T) {
	env := newTestEnv(t, mb)
	base := Locator{Store: "nfs", Name: "base.img"}
	cow := Locator{Store: "disk", Name: "w.cow"}
	if err := CreateCoW(env.ns, cow, base, env.size, 0); err != nil {
		t.Fatal(err)
	}
	var seen []string
	c, err := OpenChain(env.ns, cow, ChainOpts{
		WrapFile: func(loc Locator, f backend.File, depth int) backend.File {
			seen = append(seen, loc.String())
			return f
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	// base.img appears twice: RW probe then RO re-open.
	if len(seen) != 3 || seen[0] != "disk:w.cow" || seen[1] != "nfs:base.img" || seen[2] != "nfs:base.img" {
		t.Fatalf("wrap sequence: %v", seen)
	}
}

func TestWarmPopulatesCache(t *testing.T) {
	env := newTestEnv(t, 2*mb)
	base := Locator{Store: "nfs", Name: "base.img"}
	cache := Locator{Store: "disk", Name: "warm.cache"}
	cow := Locator{Store: "disk", Name: "warm.cow"}
	if err := CreateCache(env.ns, cache, base, env.size, 2*mb, 0); err != nil {
		t.Fatal(err)
	}
	if err := CreateCoW(env.ns, cow, cache, env.size, 0); err != nil {
		t.Fatal(err)
	}
	c, err := OpenChain(env.ns, cow, ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	spans := []Span{{0, 4096}, {100000, 8192}, {500000, 512}, {0, 0}}
	n, err := Warm(c, spans)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4096+8192+512 {
		t.Fatalf("warmed bytes = %d", n)
	}
	used := c.CacheImage().UsedBytes()
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-open: warm reads must not touch the base at all.
	var counters backend.Counters
	c2, err := OpenChain(env.ns, cow, ChainOpts{
		WrapFile: func(loc Locator, f backend.File, depth int) backend.File {
			if loc.Name == "base.img" {
				return backend.NewCountingFile(f, &counters)
			}
			return f
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close() //nolint:errcheck
	if c2.CacheImage().UsedBytes() != used {
		t.Fatalf("cache used changed across reopen: %d != %d", c2.CacheImage().UsedBytes(), used)
	}
	// Opening the chain reads the base image's own metadata (header, L1,
	// refcount table); only guest-data traffic matters here.
	counters.Reset()
	buf := make([]byte, 8192)
	if err := backend.ReadFull(c2, buf, 100000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, env.pattern[100000:108192]) {
		t.Fatal("warm read mismatch")
	}
	if counters.ReadBytes.Load() != 0 {
		t.Fatalf("warm read pulled %d bytes from base", counters.ReadBytes.Load())
	}
}

func TestTransferCacheAcrossMedia(t *testing.T) {
	env := newTestEnv(t, mb)
	base := Locator{Store: "nfs", Name: "base.img"}
	cache := Locator{Store: "disk", Name: "t.cache"}
	if err := CreateCache(env.ns, cache, base, env.size, mb, 0); err != nil {
		t.Fatal(err)
	}
	// Warm it directly.
	c, err := OpenChain(env.ns, cache, ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Warm(c, []Span{{0, 64 << 10}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Transfer to storage memory (Fig. 13) and register a mem store.
	mem := backend.NewMemStore()
	env.ns.Register("storagemem", mem)
	moved, err := TransferCache(env.ns, Locator{Store: "storagemem", Name: "t.cache"}, cache)
	if err != nil {
		t.Fatal(err)
	}
	srcSize, _ := env.disk.Stat("t.cache")
	if moved != srcSize || moved == 0 {
		t.Fatalf("moved %d of %d", moved, srcSize)
	}
	// The transferred cache must serve warm reads standalone.
	c2, err := OpenChain(env.ns, Locator{Store: "storagemem", Name: "t.cache"}, ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close() //nolint:errcheck
	buf := make([]byte, 64<<10)
	if err := backend.ReadFull(c2, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, env.pattern[:64<<10]) {
		t.Fatal("transferred cache data mismatch")
	}
	if !Exists(env.ns, Locator{Store: "storagemem", Name: "t.cache"}) {
		t.Fatal("Exists false negative")
	}
	if Exists(env.ns, Locator{Store: "storagemem", Name: "ghost"}) {
		t.Fatal("Exists false positive")
	}
}

func TestVirtualSizeOf(t *testing.T) {
	env := newTestEnv(t, mb)
	sz, err := VirtualSizeOf(env.ns, Locator{Store: "nfs", Name: "base.img"})
	if err != nil || sz != mb {
		t.Fatalf("qcow size: %d %v", sz, err)
	}
	raw, err := env.nfs.Create("flat.raw")
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.WriteFull(raw, make([]byte, 12345), 0); err != nil {
		t.Fatal(err)
	}
	sz, err = VirtualSizeOf(env.ns, Locator{Store: "nfs", Name: "flat.raw"})
	if err != nil || sz != 12345 {
		t.Fatalf("raw size: %d %v", sz, err)
	}
	if _, err := VirtualSizeOf(env.ns, Locator{Store: "nfs", Name: "ghost"}); err == nil {
		t.Fatal("size of missing file")
	}
}

func TestPoolLRUEviction(t *testing.T) {
	p := NewPool(100)
	var evicted []string
	p.OnEvict = func(name string, size int64) { evicted = append(evicted, name) }

	if _, ok := p.Add("a", 40); !ok {
		t.Fatal("add a")
	}
	if _, ok := p.Add("b", 40); !ok {
		t.Fatal("add b")
	}
	if !p.Lookup("a") { // a becomes MRU
		t.Fatal("lookup a")
	}
	ev, ok := p.Add("c", 40) // must evict b (LRU), not a
	if !ok || len(ev) != 1 || ev[0] != "b" {
		t.Fatalf("evicted %v", ev)
	}
	if p.Lookup("b") {
		t.Fatal("b survived eviction")
	}
	if p.Used() != 80 || p.Len() != 2 {
		t.Fatalf("used=%d len=%d", p.Used(), p.Len())
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("OnEvict calls: %v", evicted)
	}
	hits, misses, evictions := p.Stats()
	if hits != 1 || misses != 1 || evictions != 1 {
		t.Fatalf("stats: %d %d %d", hits, misses, evictions)
	}
}

func TestPoolOversizedEntryRejected(t *testing.T) {
	p := NewPool(100)
	p.Add("a", 60) //nolint:errcheck
	if _, ok := p.Add("huge", 150); ok {
		t.Fatal("oversized entry accepted")
	}
	if !p.Contains("a") {
		t.Fatal("rejection flushed pool")
	}
}

func TestPoolResizeAndRemove(t *testing.T) {
	p := NewPool(100)
	p.Add("a", 30) //nolint:errcheck
	p.Add("a", 50) //nolint:errcheck // resize
	if p.Used() != 50 || p.Len() != 1 {
		t.Fatalf("after resize: used=%d len=%d", p.Used(), p.Len())
	}
	if !p.Remove("a") || p.Remove("a") {
		t.Fatal("remove semantics")
	}
	if p.Used() != 0 {
		t.Fatal("used after remove")
	}
}

func TestPoolUnbounded(t *testing.T) {
	p := NewPool(0)
	for i := 0; i < 100; i++ {
		if _, ok := p.Add(string(rune('a'+i%26))+string(rune('0'+i/26)), 1<<20); !ok {
			t.Fatal("unbounded pool rejected entry")
		}
	}
	if p.Len() != 100 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestPoolNamesOrder(t *testing.T) {
	p := NewPool(0)
	p.Add("a", 1) //nolint:errcheck
	p.Add("b", 1) //nolint:errcheck
	p.Add("c", 1) //nolint:errcheck
	p.Lookup("a") // a -> MRU
	names := p.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "c" || names[2] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestPoolPinBlocksEviction(t *testing.T) {
	p := NewPool(100)
	p.Add("a", 60) //nolint:errcheck
	p.Add("b", 40) //nolint:errcheck
	if !p.Pin("a") {
		t.Fatal("pin a")
	}
	// a is LRU but pinned: the eviction scan must skip it and take b, even
	// though that leaves the pool over budget.
	ev, ok := p.Add("c", 50)
	if !ok || len(ev) != 1 || ev[0] != "b" {
		t.Fatalf("evicted %v (ok=%v), want [b]", ev, ok)
	}
	if !p.Contains("a") || p.Used() != 110 {
		t.Fatalf("pinned entry lost or used wrong: used=%d", p.Used())
	}
	// With everything evictable pinned, adds still succeed over budget.
	p.Pin("c")
	ev, ok = p.Add("d", 10)
	if !ok || len(ev) != 0 {
		t.Fatalf("all-pinned add: evicted %v (ok=%v)", ev, ok)
	}
	p.Pin("d")
	// Pins nest: a double-pinned entry needs two unpins to become
	// evictable again.
	p.Pin("a")
	p.Unpin("a")
	ev, _ = p.Add("e", 10)
	if len(ev) != 0 {
		t.Fatalf("single unpin of a double pin allowed eviction: %v", ev)
	}
	p.Pin("e")
	p.Unpin("a")
	ev, _ = p.Add("f", 10)
	if len(ev) != 1 || ev[0] != "a" {
		t.Fatalf("after full unpin: evicted %v, want [a]", ev)
	}
	if p.Pin("zzz") {
		t.Fatal("pinned a missing entry")
	}
}

func TestPoolReserve(t *testing.T) {
	p := NewPool(100)
	p.Add("a", 40) //nolint:errcheck
	p.Add("b", 40) //nolint:errcheck
	// A reservation that still fits evicts nothing.
	if ev := p.Reserve(20); len(ev) != 0 || p.Reserved() != 20 {
		t.Fatalf("fitting reserve evicted %v (reserved=%d)", ev, p.Reserved())
	}
	// Growing it past the budget evicts LRU entries until used+reserved
	// fits again.
	if ev := p.Reserve(40); len(ev) != 1 || ev[0] != "a" {
		t.Fatalf("reserve 40 evicted %v, want [a]", ev)
	}
	if p.Used() != 40 || p.Reserved() != 40 {
		t.Fatalf("used=%d reserved=%d", p.Used(), p.Reserved())
	}
	// The reservation replaces, not accumulates: shrinking it back makes
	// room without any eviction.
	if ev := p.Reserve(10); len(ev) != 0 || p.Reserved() != 10 {
		t.Fatalf("shrink evicted %v (reserved=%d)", ev, p.Reserved())
	}
	// Adds respect the standing reservation: 40+50+40+10 > 100, and
	// evicting LRU "b" brings used+reserved back to exactly 100.
	p.Add("c", 50) //nolint:errcheck
	if ev, _ := p.Add("d", 40); len(ev) != 1 || ev[0] != "b" {
		t.Fatalf("add under reservation evicted %v, want [b]", ev)
	}
	// Pinned entries survive even a reservation larger than the budget;
	// the pool just stays over.
	p.Pin("c")
	p.Pin("d")
	if ev := p.Reserve(200); len(ev) != 0 {
		t.Fatalf("all-pinned reserve evicted %v", ev)
	}
	if !p.Contains("c") || !p.Contains("d") {
		t.Fatal("pinned entries lost to a reservation")
	}
	// Unbounded pools ignore reservations entirely.
	u := NewPool(0)
	u.Add("x", 1<<40) //nolint:errcheck
	if ev := u.Reserve(1 << 50); len(ev) != 0 {
		t.Fatalf("unbounded reserve evicted %v", ev)
	}
}

func TestCreateBaseCompressed(t *testing.T) {
	nfs := backend.NewMemStore()
	ns := NewNamespace("nfs", nfs)
	const size = 2 * mb
	// Text-like compressible content.
	content := textSource{size}
	if err := CreateBaseCompressed(ns, Locator{Store: "nfs", Name: "c.img"}, size, 16, content); err != nil {
		t.Fatalf("CreateBaseCompressed: %v", err)
	}
	if err := CreateBase(ns, Locator{Store: "nfs", Name: "r.img"}, size, 16, content); err != nil {
		t.Fatal(err)
	}
	cSize, _ := nfs.Stat("c.img")
	rSize, _ := nfs.Stat("r.img")
	if cSize >= rSize {
		t.Fatalf("compressed base (%d) not smaller than raw (%d)", cSize, rSize)
	}
	// Chains over a compressed base read identically.
	cow := Locator{Store: "nfs", Name: "v.cow"}
	if err := CreateCoW(ns, cow, Locator{Store: "nfs", Name: "c.img"}, size, 0); err != nil {
		t.Fatal(err)
	}
	c, err := OpenChain(ns, cow, ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	got := make([]byte, 64<<10)
	if err := backend.ReadFull(c, got, mb); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 64<<10)
	content.ReadAt(want, mb) //nolint:errcheck
	if !bytes.Equal(got, want) {
		t.Fatal("chain over compressed base mismatch")
	}
	// Guest writes onto the compressed base work (CoW at the top layer).
	if err := backend.WriteFull(c, []byte("write-onto-compressed"), mb); err != nil {
		t.Fatal(err)
	}
}

// textSource generates compressible, deterministic content.
type textSource struct{ n int64 }

func (s textSource) ReadAt(p []byte, off int64) (int, error) {
	for i := range p {
		p[i] = 'a' + byte((off+int64(i))%23)
	}
	return len(p), nil
}

func (s textSource) Size() int64 { return s.n }
