package core

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"vmicache/internal/backend"
	"vmicache/internal/qcow"
)

// slowSource wraps a BlockSource with a per-read delay, standing in for a
// remote base so prefetch overlap is observable in wall-clock time.
type slowSource struct {
	inner qcow.BlockSource
	delay time.Duration
	reads atomic.Int64
}

func (s *slowSource) ReadAt(p []byte, off int64) (int, error) {
	s.reads.Add(1)
	time.Sleep(s.delay)
	return s.inner.ReadAt(p, off)
}

func (s *slowSource) Size() int64 { return s.inner.Size() }

func TestDisclosureReflectsFillOrder(t *testing.T) {
	env := newTestEnv(t, 2*mb)
	base := Locator{Store: "nfs", Name: "base.img"}
	cacheLoc := Locator{Store: "disk", Name: "d.cache"}
	if err := CreateCache(env.ns, cacheLoc, base, env.size, 2*mb, 0); err != nil {
		t.Fatal(err)
	}
	c, err := OpenChain(env.ns, cacheLoc, ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm in a deliberately non-monotonic virtual order.
	warmOrder := []Span{{Off: mb, Len: 64 << 10}, {Off: 0, Len: 32 << 10}, {Off: 512 << 10, Len: 16 << 10}}
	if _, err := Warm(c, warmOrder); err != nil {
		t.Fatal(err)
	}
	spans, err := Disclosure(c.CacheImage())
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("empty disclosure")
	}
	// The disclosure must start where the boot started reading (1 MiB),
	// not at virtual offset 0: fill order, not virtual order.
	if spans[0].Off != mb {
		t.Fatalf("disclosure starts at %d, want %d (fill order)", spans[0].Off, mb)
	}
	var total int64
	for _, s := range spans {
		total += s.Len
	}
	want := int64(64<<10 + 32<<10 + 16<<10)
	if total != want {
		t.Fatalf("disclosure covers %d, want %d", total, want)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Disclosure of a non-cache image is rejected.
	cow := Locator{Store: "disk", Name: "d.cow"}
	if err := CreateCoW(env.ns, cow, base, env.size, 0); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenChain(env.ns, cow, ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close() //nolint:errcheck
	if _, err := Disclosure(c2.Top()); err == nil {
		t.Fatal("disclosure of CoW image succeeded")
	}
}

func TestPrefetcherWarmsCacheAhead(t *testing.T) {
	const size = mb
	// Chain: cold cache over a slow base.
	src := &slowSource{inner: patternSource(77, size), delay: 200 * time.Microsecond}
	cache, err := qcow.Create(backend.NewMemFile(), qcow.CreateOpts{
		Size: size, ClusterBits: 9, BackingFile: "b", CacheQuota: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache.SetBacking(src)
	chain := &Chain{Images: []*qcow.Image{cache}}

	spans := []Span{{Off: 0, Len: 256 << 10}}
	p := NewPrefetcher(chain, spans, 64<<10)
	p.Start()
	n, err := p.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if n != 256<<10 {
		t.Fatalf("prefetched %d", n)
	}
	// The guest's read now hits warm clusters: no further base reads.
	before := src.reads.Load()
	buf := make([]byte, 256<<10)
	if err := backend.ReadFull(chain, buf, 0); err != nil {
		t.Fatal(err)
	}
	if src.reads.Load() != before {
		t.Fatal("post-prefetch read still hit the base")
	}
	if !bytes.Equal(buf[:100], patternSource(77, size).At(0, 100)) {
		t.Fatal("prefetched content mismatch")
	}
}

func TestPrefetcherStopIsPromptAndSafe(t *testing.T) {
	const size = 4 * mb
	src := &slowSource{inner: patternSource(5, size), delay: 2 * time.Millisecond}
	cache, err := qcow.Create(backend.NewMemFile(), qcow.CreateOpts{
		Size: size, ClusterBits: 9, BackingFile: "b", CacheQuota: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache.SetBacking(src)
	chain := &Chain{Images: []*qcow.Image{cache}}

	p := NewPrefetcher(chain, []Span{{Off: 0, Len: size}}, 16<<10)
	p.Start()
	time.Sleep(5 * time.Millisecond)
	p.Stop()
	done := p.BytesPrefetched()
	if done == 0 {
		t.Fatal("nothing prefetched before stop")
	}
	if done >= size {
		t.Fatal("stop did not interrupt the stream")
	}
	// Stop on a never-started prefetcher must not hang.
	p2 := NewPrefetcher(chain, nil, 0)
	p2.Stop()
}

func TestPrefetcherConcurrentWithGuestReads(t *testing.T) {
	// Prefetcher and guest hammer the same chain concurrently; data must
	// stay correct (the image mutex serialises metadata).
	const size = 2 * mb
	src := patternSource(9, size)
	cache, err := qcow.Create(backend.NewMemFile(), qcow.CreateOpts{
		Size: size, ClusterBits: 9, BackingFile: "b", CacheQuota: size,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache.SetBacking(src)
	chain := &Chain{Images: []*qcow.Image{cache}}

	p := NewPrefetcher(chain, []Span{{Off: 0, Len: size}}, 32<<10)
	p.Start()
	buf := make([]byte, 4096)
	for off := int64(0); off+int64(len(buf)) <= size; off += 128 << 10 {
		if err := backend.ReadFull(chain, buf, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, src.At(off, int64(len(buf)))) {
			t.Fatalf("mismatch at %d during concurrent prefetch", off)
		}
	}
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	res, err := cache.Check()
	if err != nil || !res.OK() {
		t.Fatalf("cache inconsistent after concurrent prefetch: %v %s", err, res)
	}
}

// patternSource builds a boot.PatternSource-equivalent without importing
// boot (avoiding a core->boot dependency in tests).
type patSrc struct {
	seed int64
	n    int64
}

func patternSource(seed, n int64) patSrc { return patSrc{seed, n} }

func (s patSrc) ReadAt(p []byte, off int64) (int, error) {
	for i := range p {
		pos := off + int64(i)
		x := uint64(s.seed) ^ uint64(pos>>3)*0x9e3779b97f4a7c15
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		p[i] = byte(x >> uint((pos&7)*8))
	}
	return len(p), nil
}

func (s patSrc) Size() int64 { return s.n }

func (s patSrc) At(off, n int64) []byte {
	out := make([]byte, n)
	s.ReadAt(out, off) //nolint:errcheck // cannot fail
	return out
}
