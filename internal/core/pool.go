package core

import (
	"sync"
)

// Pool tracks a bounded budget of cache images on one medium and evicts
// least-recently-used entries when a new cache does not fit. §3.4 calls for
// exactly this: "eviction of VMI caches whenever the allocated cache space
// is full for a new VMI cache. This can be a policy such as LRU at the node
// or cloud level."
type Pool struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	reserved int64 // externally-accounted bytes (see Reserve)
	entries  map[string]*poolEntry
	head     *poolEntry // most recently used
	tail     *poolEntry // least recently used

	// OnEvict, when non-nil, is called (without the lock) for every
	// evicted entry, typically to remove the file from its store.
	OnEvict func(name string, size int64)

	hits      int64
	misses    int64
	evictions int64
}

type poolEntry struct {
	name       string
	size       int64
	pins       int // leases holding this entry; pinned entries are never evicted
	prev, next *poolEntry
}

// NewPool returns a pool with the given byte capacity (<= 0 means
// unbounded).
func NewPool(capacity int64) *Pool {
	return &Pool{capacity: capacity, entries: make(map[string]*poolEntry)}
}

// Capacity reports the byte budget.
func (p *Pool) Capacity() int64 { return p.capacity }

// Used reports the bytes currently held by entries (excluding any external
// reservation).
func (p *Pool) Used() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Reserved reports the current external reservation.
func (p *Pool) Reserved() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reserved
}

// Reserve charges extra externally-accounted bytes against the capacity —
// cachemgr's dedup blob tier, whose chunks are shared by many caches
// (pinned or not) and must be charged exactly once, not once per
// referencing cache. The value replaces any previous reservation (callers
// pass the external total, not a delta). Unpinned LRU entries are evicted
// until used+reserved fits, and their names returned; like Add, the pool
// may stay over budget when everything evictable is pinned.
func (p *Pool) Reserve(extra int64) (evicted []string) {
	p.mu.Lock()
	if extra < 0 {
		extra = 0
	}
	p.reserved = extra
	victims := p.evictLocked("")
	onEvict := p.OnEvict
	p.mu.Unlock()

	for _, v := range victims {
		if onEvict != nil {
			onEvict(v.name, v.size)
		}
		evicted = append(evicted, v.name)
	}
	return evicted
}

// evictLocked unlinks unpinned LRU entries (never protect) until
// used+reserved fits the capacity; caller holds the lock and invokes
// OnEvict outside it.
func (p *Pool) evictLocked(protect string) (victims []*poolEntry) {
	for v := p.tail; v != nil && p.capacity > 0 && p.used+p.reserved > p.capacity; {
		prev := v.prev
		if v.name == protect || v.pins > 0 {
			// Never evict the protected entry or a pinned (leased)
			// entry; keep scanning toward the head. The pool may stay
			// over budget when everything evictable is pinned.
			v = prev
			continue
		}
		p.unlink(v)
		delete(p.entries, v.name)
		p.used -= v.size
		p.evictions++
		victims = append(victims, v)
		v = prev
	}
	return victims
}

// Len reports the number of cached entries.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Pinned reports the number of entries currently pinned (pins > 0).
func (p *Pool) Pinned() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.entries {
		if e.pins > 0 {
			n++
		}
	}
	return n
}

// Stats reports (hits, misses, evictions).
func (p *Pool) Stats() (hits, misses, evictions int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.evictions
}

// Lookup reports whether name is pooled, marking it most-recently-used.
func (p *Pool) Lookup(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[name]
	if !ok {
		p.misses++
		return false
	}
	p.hits++
	p.moveToFront(e)
	return true
}

// Contains reports whether name is pooled without touching recency or
// hit/miss accounting.
func (p *Pool) Contains(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.entries[name]
	return ok
}

// Add inserts (or resizes) an entry, evicting LRU entries as needed to fit.
// It returns the names evicted. An entry larger than the whole capacity is
// rejected (returns ok=false) rather than flushing the pool for nothing.
func (p *Pool) Add(name string, size int64) (evicted []string, ok bool) {
	p.mu.Lock()
	if p.capacity > 0 && size > p.capacity {
		p.mu.Unlock()
		return nil, false
	}
	if e, exists := p.entries[name]; exists {
		p.used += size - e.size
		e.size = size
		p.moveToFront(e)
	} else {
		e := &poolEntry{name: name, size: size}
		p.entries[name] = e
		p.pushFront(e)
		p.used += size
	}
	victims := p.evictLocked(name)
	onEvict := p.OnEvict
	p.mu.Unlock()

	for _, v := range victims {
		if onEvict != nil {
			onEvict(v.name, v.size)
		}
		evicted = append(evicted, v.name)
	}
	return evicted, true
}

// Pin marks an entry in-use, excluding it from eviction until a matching
// Unpin. Pins nest: each Pin needs its own Unpin. Reports whether the entry
// exists.
func (p *Pool) Pin(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[name]
	if !ok {
		return false
	}
	e.pins++
	return true
}

// Unpin releases one Pin. Unpinning a missing or unpinned entry is a no-op.
func (p *Pool) Unpin(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[name]; ok && e.pins > 0 {
		e.pins--
	}
}

// Remove drops an entry without invoking OnEvict.
func (p *Pool) Remove(name string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[name]
	if !ok {
		return false
	}
	p.unlink(e)
	delete(p.entries, name)
	p.used -= e.size
	return true
}

// Names returns pool contents from most to least recently used.
func (p *Pool) Names() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for e := p.head; e != nil; e = e.next {
		out = append(out, e.name)
	}
	return out
}

func (p *Pool) pushFront(e *poolEntry) {
	e.prev = nil
	e.next = p.head
	if p.head != nil {
		p.head.prev = e
	}
	p.head = e
	if p.tail == nil {
		p.tail = e
	}
}

func (p *Pool) unlink(e *poolEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		p.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		p.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (p *Pool) moveToFront(e *poolEntry) {
	if p.head == e {
		return
	}
	p.unlink(e)
	p.pushFront(e)
}
