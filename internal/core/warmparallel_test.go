package core

import (
	"bytes"
	"testing"

	"vmicache/internal/backend"
)

// TestWarmParallelPopulatesCache warms a chain with overlapping spans
// through the worker pool and checks the three properties that make
// WarmParallel safe to race a boot: content stays exact, the singleflight
// keeps base traffic near one pass even though the plan requests two, and
// the result equals what a serial warm would produce.
func TestWarmParallelPopulatesCache(t *testing.T) {
	const size = 4 * mb
	env := newTestEnv(t, size)
	base := Locator{Store: "nfs", Name: "base.img"}
	cache := Locator{Store: "disk", Name: "pwarm.cache"}
	cow := Locator{Store: "disk", Name: "pwarm.cow"}
	if err := CreateCache(env.ns, cache, base, env.size, 8*size, 9); err != nil {
		t.Fatal(err)
	}
	if err := CreateCoW(env.ns, cow, cache, env.size, 0); err != nil {
		t.Fatal(err)
	}
	var counters backend.Counters
	c, err := OpenChain(env.ns, cow, ChainOpts{
		WrapFile: func(loc Locator, f backend.File, depth int) backend.File {
			if loc.Name == "base.img" {
				return backend.NewCountingFile(f, &counters)
			}
			return f
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck // test teardown

	// Two full passes in odd-sized spans: every byte is requested twice.
	var spans []Span
	for pass := 0; pass < 2; pass++ {
		for off := int64(0); off < size; off += 300 << 10 {
			n := int64(300 << 10)
			if size-off < n {
				n = size - off
			}
			spans = append(spans, Span{Off: off, Len: n})
		}
	}
	var want int64
	for _, s := range spans {
		want += s.Len
	}
	counters.Reset() // drop chain-open metadata traffic
	n, err := WarmParallel(c, spans, 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("warmed %d bytes, want %d", n, want)
	}
	// The cache admits each cluster once, so base data traffic stays one
	// pass despite the double plan (plus a little of the base's own L2
	// metadata read on demand).
	if got := counters.ReadBytes.Load(); got > size+(512<<10) {
		t.Fatalf("base traffic %d for a %d image: duplicate fetches under parallel warm", got, size)
	}

	out := make([]byte, size)
	if err := backend.ReadFull(c, out, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, env.pattern) {
		t.Fatal("parallel-warmed chain diverges from reference")
	}
	counters.Reset()
	if err := backend.ReadFull(c, out[:mb], 0); err != nil {
		t.Fatal(err)
	}
	if counters.ReadBytes.Load() != 0 {
		t.Fatalf("warm read still pulled %d bytes from base", counters.ReadBytes.Load())
	}
}

// TestWarmParallelSerialFallback routes workers <= 1 through the plain
// serial Warm.
func TestWarmParallelSerialFallback(t *testing.T) {
	env := newTestEnv(t, mb)
	base := Locator{Store: "nfs", Name: "base.img"}
	cache := Locator{Store: "disk", Name: "s.cache"}
	if err := CreateCache(env.ns, cache, base, env.size, 4*mb, 9); err != nil {
		t.Fatal(err)
	}
	c, err := OpenChain(env.ns, cache, ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck // test teardown
	n, err := WarmParallel(c, []Span{{0, 4096}, {8192, 512}}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4096+512 {
		t.Fatalf("warmed %d", n)
	}
}

// TestWarmParallelPropagatesErrors surfaces a failing span instead of
// hanging the pool.
func TestWarmParallelPropagatesErrors(t *testing.T) {
	env := newTestEnv(t, mb)
	base := Locator{Store: "nfs", Name: "base.img"}
	cache := Locator{Store: "disk", Name: "e.cache"}
	if err := CreateCache(env.ns, cache, base, env.size, 4*mb, 9); err != nil {
		t.Fatal(err)
	}
	c, err := OpenChain(env.ns, cache, ChainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()                                    //nolint:errcheck // test teardown
	spans := []Span{{0, 4096}, {env.size - 512, 4096}} // second span runs past EOF
	if _, err := WarmParallel(c, spans, 4, 0); err == nil {
		t.Fatal("out-of-range span warmed without error")
	}
}
