// Package core is the VMI-cache orchestration layer: it builds the image
// chains of the paper (base ← cache ← CoW, Fig. 4), implements the two-step
// qemu-img workflow of §4.4, warms caches, transfers them between media
// (Fig. 13), and pools them with LRU eviction (§3.4).
package core

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"vmicache/internal/backend"
	"vmicache/internal/qcow"
	"vmicache/internal/zerocopy"
)

// ErrChainCycle is returned when backing-file names form a loop.
var ErrChainCycle = errors.New("core: backing chain contains a cycle")

// ErrChainTooDeep guards against absurd chains.
var ErrChainTooDeep = errors.New("core: backing chain too deep")

const maxChainDepth = 16

// Locator names an image on a medium: "store:name". Stores are registered
// in a Namespace. A bare name refers to the namespace's default store —
// matching the paper's deployments where most images sit on the NFS export.
type Locator struct {
	Store string
	Name  string
}

// ParseLocator splits "store:name" (or "name") into its parts.
func ParseLocator(s string) Locator {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return Locator{Store: s[:i], Name: s[i+1:]}
	}
	return Locator{Name: s}
}

// String renders the locator.
func (l Locator) String() string {
	if l.Store == "" {
		return l.Name
	}
	return l.Store + ":" + l.Name
}

// Namespace maps store names to Stores so backing-file strings embedded in
// image headers ("nfs:centos.img") resolve across media.
type Namespace struct {
	stores map[string]backend.Store
	def    string
}

// NewNamespace returns a namespace whose bare names resolve in def.
func NewNamespace(defName string, def backend.Store) *Namespace {
	ns := &Namespace{stores: make(map[string]backend.Store), def: defName}
	ns.stores[defName] = def
	return ns
}

// Register adds a named store.
func (ns *Namespace) Register(name string, st backend.Store) { ns.stores[name] = st }

// Store resolves a store name ("" means the default).
func (ns *Namespace) Store(name string) (backend.Store, error) {
	if name == "" {
		name = ns.def
	}
	st, ok := ns.stores[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown store %q", name)
	}
	return st, nil
}

// Default reports the default store name.
func (ns *Namespace) Default() string { return ns.def }

// ChainOpts configures OpenChain.
type ChainOpts struct {
	// TopReadOnly opens the whole chain without write permission.
	TopReadOnly bool

	// BackingReadOnly opens every backing image read-only, skipping the
	// §4.3 read-write probe entirely. This is the attach path for
	// published immutable caches (internal/cachemgr): the cache is
	// already warm, must not be mutated, and may sit on a file whose
	// permissions forbid writing.
	BackingReadOnly bool

	// MmapWarm enables the qcow mmap warm-read mode on every read-only
	// image of the opened chain: warm raw reads copy from a mapping of the
	// container instead of issuing a pread per request. Images that cannot
	// map (writable caches, non-os-backed containers, platforms without
	// mmap) silently keep the pread path.
	MmapWarm bool

	// WrapFile, when non-nil, wraps each opened container before the
	// image is parsed. The cluster simulator uses this to attach traffic
	// accounting and simulated-time costs per medium.
	WrapFile func(loc Locator, f backend.File, depth int) backend.File
}

// Chain is an open image chain, topmost image first. Guest I/O goes through
// Top; reads recurse down the chain inside the image layer.
type Chain struct {
	Images   []*qcow.Image // [0] = top
	Locators []Locator
	rawTail  io.Closer // closer for a raw base container, if any
}

// Top returns the guest-facing image.
func (c *Chain) Top() *qcow.Image { return c.Images[0] }

// CacheImage returns the first cache image in the chain (nil if none).
func (c *Chain) CacheImage() *qcow.Image {
	for _, img := range c.Images {
		if img.IsCache() {
			return img
		}
	}
	return nil
}

// ReadAt reads guest data through the top of the chain.
func (c *Chain) ReadAt(p []byte, off int64) (int, error) { return c.Top().ReadAt(p, off) }

// PlainExtents implements zerocopy.ExtentSource by forwarding to the top
// image: a range is exportable only when the top image itself holds it as
// fully-valid raw clusters (a read-only published cache serving warm data).
// Ranges the top defers to its backing — where bytes would be assembled
// recursively — refuse, sending the caller down the copy path.
func (c *Chain) PlainExtents(off, n int64, dst []zerocopy.FileExtent) ([]zerocopy.FileExtent, bool) {
	return c.Top().PlainExtents(off, n, dst)
}

// applyMmapWarm enables mmap warm reads on every image that can take it;
// best-effort by design (see ChainOpts.MmapWarm).
func (c *Chain) applyMmapWarm() {
	for _, img := range c.Images {
		img.EnableMmap() //nolint:errcheck // ineligible images keep pread
	}
}

// WriteAt writes guest data to the top of the chain.
func (c *Chain) WriteAt(p []byte, off int64) (int, error) { return c.Top().WriteAt(p, off) }

// Size reports the virtual disk size.
func (c *Chain) Size() int64 { return c.Top().Size() }

// Sync flushes every image in the chain.
func (c *Chain) Sync() error {
	for _, img := range c.Images {
		if err := img.Sync(); err != nil && !errors.Is(err, qcow.ErrClosed) {
			return err
		}
	}
	return nil
}

// Close closes every image top-down, then any raw tail.
func (c *Chain) Close() error {
	var first error
	for _, img := range c.Images {
		if err := img.Close(); err != nil && first == nil && !errors.Is(err, qcow.ErrClosed) {
			first = err
		}
	}
	if c.rawTail != nil {
		if err := c.rawTail.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OpenChain opens the image at loc and its full backing chain.
//
// It reproduces the permission handling described in §4.3: every backing
// image is first opened read-write (a cache image needs write permission to
// warm itself); once parsed, an image that turns out not to be a cache is
// re-opened read-only. A base whose container is not an image file at all is
// attached as a raw source.
func OpenChain(ns *Namespace, loc Locator, opts ChainOpts) (*Chain, error) {
	c := &Chain{}
	seen := map[string]bool{}
	cur := loc
	for depth := 0; ; depth++ {
		if depth >= maxChainDepth {
			c.Close() //nolint:errcheck // unwinding partial chain
			return nil, ErrChainTooDeep
		}
		key := cur.String()
		if seen[key] {
			c.Close() //nolint:errcheck
			return nil, fmt.Errorf("%w: %s", ErrChainCycle, key)
		}
		seen[key] = true

		st, err := ns.Store(cur.Store)
		if err != nil {
			c.Close() //nolint:errcheck
			return nil, err
		}
		// First open read-write unless the caller wants the very top
		// read-only too ("the default flag for the backing images is
		// read-only ... we first open the backing image with read and
		// write permissions").
		ro := opts.TopReadOnly && depth == 0 || opts.BackingReadOnly && depth > 0
		f, err := st.Open(cur.Name, ro)
		if err != nil {
			c.Close() //nolint:errcheck
			return nil, fmt.Errorf("core: opening %s: %w", key, err)
		}
		if opts.WrapFile != nil {
			f = opts.WrapFile(cur, f, depth)
		}
		img, err := qcow.Open(f, qcow.OpenOpts{ReadOnly: ro})
		if errors.Is(err, qcow.ErrBadMagic) && depth > 0 {
			// Raw base image at the end of the chain.
			sz, szErr := f.Size()
			if szErr != nil {
				f.Close() //nolint:errcheck
				c.Close() //nolint:errcheck
				return nil, szErr
			}
			c.Images[len(c.Images)-1].SetBacking(qcow.RawSource{R: f, N: sz})
			c.rawTail = f
			if opts.MmapWarm {
				c.applyMmapWarm()
			}
			return c, nil
		}
		if err != nil {
			f.Close() //nolint:errcheck
			c.Close() //nolint:errcheck
			return nil, fmt.Errorf("core: parsing %s: %w", key, err)
		}
		// "If we detect that the image is not a cache image, we re-open
		// the image with read-only permission." (§4.3)
		if depth > 0 && !img.IsCache() && !ro {
			if err := img.Close(); err != nil {
				c.Close() //nolint:errcheck
				return nil, err
			}
			f, err = st.Open(cur.Name, true)
			if err != nil {
				c.Close() //nolint:errcheck
				return nil, err
			}
			if opts.WrapFile != nil {
				f = opts.WrapFile(cur, f, depth)
			}
			img, err = qcow.Open(f, qcow.OpenOpts{ReadOnly: true})
			if err != nil {
				f.Close() //nolint:errcheck
				c.Close() //nolint:errcheck
				return nil, err
			}
		}
		if len(c.Images) > 0 {
			c.Images[len(c.Images)-1].SetBacking(img)
		}
		c.Images = append(c.Images, img)
		c.Locators = append(c.Locators, cur)

		bn := img.BackingName()
		if bn == "" {
			if opts.MmapWarm {
				c.applyMmapWarm()
			}
			return c, nil
		}
		next := ParseLocator(bn)
		if next.Store == "" {
			// Relative backing names resolve in the same store.
			next.Store = cur.Store
		}
		cur = next
	}
}
