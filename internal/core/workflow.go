package core

import (
	"errors"
	"fmt"
	"sync"

	"vmicache/internal/backend"
	"vmicache/internal/qcow"
)

// CreateBase creates a standalone base image of the given virtual size and
// fills it from content (may be nil for an all-zero disk). It is the
// test/evaluation stand-in for "a default installation of CentOS 6.3" —
// image content is synthesised, geometry is real.
func CreateBase(ns *Namespace, loc Locator, size int64, clusterBits int, content qcow.BlockSource) (err error) {
	st, err := ns.Store(loc.Store)
	if err != nil {
		return err
	}
	f, err := st.Create(loc.Name)
	if err != nil {
		return err
	}
	img, err := qcow.Create(f, qcow.CreateOpts{Size: size, ClusterBits: clusterBits})
	if err != nil {
		f.Close() //nolint:errcheck // release container on create failure
		return err
	}
	defer func() {
		if cerr := img.Close(); err == nil {
			err = cerr
		}
	}()
	if content == nil {
		return nil
	}
	buf := make([]byte, 1<<20)
	for off := int64(0); off < size; off += int64(len(buf)) {
		n := int64(len(buf))
		if size-off < n {
			n = size - off
		}
		if _, rerr := content.ReadAt(buf[:n], off); rerr != nil {
			return rerr
		}
		if werr := backend.WriteFull(img, buf[:n], off); werr != nil {
			return werr
		}
	}
	return nil
}

// CreateCache performs step one of the §4.4 workflow: "gemu-img is invoked
// with a cache quota and pointing to the base image as its backing file."
func CreateCache(ns *Namespace, loc Locator, backing Locator, size, quota int64, clusterBits int) error {
	return CreateCacheSub(ns, loc, backing, size, quota, clusterBits, false)
}

// CreateCacheSub is CreateCache with the sub-cluster extension optionally
// enabled: misses in the resulting cache fill at 4 KiB granularity and rely
// on background completion to converge to whole clusters.
func CreateCacheSub(ns *Namespace, loc Locator, backing Locator, size, quota int64, clusterBits int, subclusters bool) error {
	if clusterBits == 0 {
		clusterBits = qcow.CacheClusterBits
	}
	st, err := ns.Store(loc.Store)
	if err != nil {
		return err
	}
	f, err := st.Create(loc.Name)
	if err != nil {
		return err
	}
	img, err := qcow.Create(f, qcow.CreateOpts{
		Size:        size,
		ClusterBits: clusterBits,
		BackingFile: backingName(ns, loc, backing),
		CacheQuota:  quota,
		Subclusters: subclusters,
	})
	if err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	return img.Close()
}

// CreateCoW performs step two of §4.4: "gemu-img is invoked with no cache
// quota and pointing to the cache image as its backing file."
func CreateCoW(ns *Namespace, loc Locator, backing Locator, size int64, clusterBits int) error {
	if clusterBits == 0 {
		clusterBits = qcow.DefaultClusterBits
	}
	st, err := ns.Store(loc.Store)
	if err != nil {
		return err
	}
	f, err := st.Create(loc.Name)
	if err != nil {
		return err
	}
	img, err := qcow.Create(f, qcow.CreateOpts{
		Size:        size,
		ClusterBits: clusterBits,
		BackingFile: backingName(ns, loc, backing),
	})
	if err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	return img.Close()
}

// backingName encodes the backing locator relative to the referring image:
// same store → bare name (relocatable), different store → fully qualified.
func backingName(ns *Namespace, from, to Locator) string {
	fs := from.Store
	if fs == "" {
		fs = ns.Default()
	}
	ts := to.Store
	if ts == "" {
		ts = ns.Default()
	}
	if fs == ts {
		return to.Name
	}
	return to.String()
}

// VirtualSizeOf reads an image's virtual size without keeping it open.
func VirtualSizeOf(ns *Namespace, loc Locator) (int64, error) {
	st, err := ns.Store(loc.Store)
	if err != nil {
		return 0, err
	}
	f, err := st.Open(loc.Name, true)
	if err != nil {
		return 0, err
	}
	defer f.Close() //nolint:errcheck // read-only handle
	img, err := qcow.Open(f, qcow.OpenOpts{ReadOnly: true})
	if err != nil {
		if errors.Is(err, qcow.ErrBadMagic) {
			return f.Size() // raw image: virtual size == file size
		}
		return 0, err
	}
	sz := img.Size()
	// The image does not own the handle here; drop our view without
	// closing the container twice.
	return sz, nil
}

// Span is a byte range of guest reads used to warm a cache.
type Span struct {
	Off int64
	Len int64
}

// Warm replays read spans against a chain, populating any cache image in it
// (§3.2: "the system can boot a sample VM upon a new VMI registration to
// create the cache"). It returns the number of bytes read.
func Warm(c *Chain, spans []Span) (int64, error) {
	var buf []byte
	var total int64
	for _, s := range spans {
		if s.Len <= 0 {
			continue
		}
		if int64(len(buf)) < s.Len {
			buf = make([]byte, s.Len)
		}
		if err := backend.ReadFull(c, buf[:s.Len], s.Off); err != nil {
			return total, fmt.Errorf("core: warming at %d+%d: %w", s.Off, s.Len, err)
		}
		total += s.Len
	}
	return total, nil
}

// DefaultWarmBudget bounds the bytes a parallel warm keeps in flight when
// the caller does not say otherwise.
const DefaultWarmBudget = 16 << 20

// WarmParallel replays read spans against a chain with a worker pool,
// keeping at most budget bytes in flight: spans are split into
// budget/workers chunks and fetched concurrently, so adjacent profile
// extents turn into deep pipelined reads of the backing transport instead
// of serialized round trips. The chain's cache image deduplicates
// overlapping fetches through its fill singleflight, so WarmParallel is
// safe to run while a guest is already booting from the same chain. Chunks
// complete out of order but are issued in span order, preserving a boot
// plan's first-touch sequencing. Returns the bytes read (all spans, even
// short ones past a smaller base, count in full — identical to Warm).
func WarmParallel(c *Chain, spans []Span, workers int, budget int64) (int64, error) {
	if workers <= 1 {
		return Warm(c, spans)
	}
	if budget <= 0 {
		budget = DefaultWarmBudget
	}
	chunk := budget / int64(workers)
	if chunk < 64<<10 {
		chunk = 64 << 10
	}

	work := make(chan Span, workers)
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		werr  error
		total int64
	)
	fail := func(err error) {
		mu.Lock()
		if werr == nil {
			werr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return werr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, chunk)
			for s := range work {
				if failed() {
					continue // drain without fetching
				}
				if err := backend.ReadFull(c, buf[:s.Len], s.Off); err != nil {
					fail(fmt.Errorf("core: warming at %d+%d: %w", s.Off, s.Len, err))
					continue
				}
				mu.Lock()
				total += s.Len
				mu.Unlock()
			}
		}()
	}
	for _, s := range spans {
		for s.Len > 0 {
			n := s.Len
			if n > chunk {
				n = chunk
			}
			work <- Span{Off: s.Off, Len: n}
			s.Off += n
			s.Len -= n
		}
	}
	close(work)
	wg.Wait()
	return total, werr
}

// TransferCache copies a (closed, warm) cache image to another medium —
// e.g. from the compute node that created it back to the storage node's
// memory ("the cache is created on the compute nodes and then transferred
// back to the storage node's memory", Fig. 13). Returns bytes moved.
func TransferCache(ns *Namespace, dst, src Locator) (int64, error) {
	srcStore, err := ns.Store(src.Store)
	if err != nil {
		return 0, err
	}
	dstStore, err := ns.Store(dst.Store)
	if err != nil {
		return 0, err
	}
	return backend.CopyFile(dstStore, dst.Name, srcStore, src.Name)
}

// Exists reports whether the locator resolves to an existing file.
func Exists(ns *Namespace, loc Locator) bool {
	st, err := ns.Store(loc.Store)
	if err != nil {
		return false
	}
	_, err = st.Stat(loc.Name)
	return err == nil
}

// CreateBaseCompressed creates a base image whose clusters are stored
// compressed (qemu-img convert -c), cutting the storage node's footprint
// for the multi-GB bases the caches sit in front of (§8 future work).
func CreateBaseCompressed(ns *Namespace, loc Locator, size int64, clusterBits int, content qcow.BlockSource) (err error) {
	if clusterBits == 0 {
		clusterBits = qcow.DefaultClusterBits
	}
	st, err := ns.Store(loc.Store)
	if err != nil {
		return err
	}
	f, err := st.Create(loc.Name)
	if err != nil {
		return err
	}
	img, err := qcow.Create(f, qcow.CreateOpts{Size: size, ClusterBits: clusterBits})
	if err != nil {
		f.Close() //nolint:errcheck // release container on create failure
		return err
	}
	defer func() {
		if cerr := img.Close(); err == nil {
			err = cerr
		}
	}()
	if content == nil {
		return nil
	}
	cs := img.ClusterSize()
	buf := make([]byte, cs)
	for vc := int64(0); vc*cs < size; vc++ {
		n := cs
		if rem := size - vc*cs; rem < n {
			n = rem
		}
		if _, rerr := content.ReadAt(buf[:n], vc*cs); rerr != nil {
			return rerr
		}
		if werr := img.WriteCompressedCluster(vc, buf[:n]); werr != nil {
			return werr
		}
	}
	return nil
}
