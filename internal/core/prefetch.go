package core

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"vmicache/internal/backend"
	"vmicache/internal/qcow"
)

// Prefetching (§7.3). Patterson-style informed prefetching needs a
// *disclosure* of future accesses; the paper observes that for VMI caches
// "the disclosures of the cache images can be inferred automatically at
// their creation time": the cache was filled in exactly the order the first
// boot read it, so walking its allocated clusters in physical order replays
// the boot's future read sequence. Prefetching overlaps those reads with
// guest CPU time; the paper's preliminary experience bounds the benefit at
// the read-wait fraction (~17% for CentOS).

// Disclosure extracts the inferred future-access list of a cache image: its
// allocated guest extents ordered by allocation (physical) position, i.e.
// the order the warming boot read them.
func Disclosure(cache *qcow.Image) ([]Span, error) {
	if !cache.IsCache() {
		return nil, errors.New("core: disclosure requires a cache image")
	}
	extents, err := cache.Map()
	if err != nil {
		return nil, err
	}
	alloc := extents[:0]
	for _, e := range extents {
		if e.Allocated {
			alloc = append(alloc, e)
		}
	}
	sort.Slice(alloc, func(i, j int) bool { return alloc[i].PhysOff < alloc[j].PhysOff })
	spans := make([]Span, len(alloc))
	for i, e := range alloc {
		spans[i] = Span{Off: e.Start, Len: e.Length}
	}
	return spans, nil
}

// Prefetcher streams a disclosure through a chain on a background
// goroutine, pulling the boot working set toward the guest ahead of its
// reads. Reads go through the normal chain path, so they warm whatever
// cache sits in the chain (useful on a cold cache too: the prefetcher races
// the guest to the base image and the guest finds warm clusters).
type Prefetcher struct {
	chain  *Chain
	spans  []Span
	chunk  int64
	cancel atomic.Bool
	done   chan struct{}
	once   sync.Once

	bytes atomic.Int64
	errV  atomic.Value
}

// NewPrefetcher prepares (but does not start) a prefetcher. chunk bounds
// per-request size (0 = 256 KiB).
func NewPrefetcher(c *Chain, spans []Span, chunk int64) *Prefetcher {
	if chunk <= 0 {
		chunk = 256 << 10
	}
	return &Prefetcher{chain: c, spans: spans, chunk: chunk, done: make(chan struct{})}
}

// Start launches the background stream. Safe to call once.
func (p *Prefetcher) Start() {
	p.once.Do(func() {
		go p.run()
	})
}

func (p *Prefetcher) run() {
	defer close(p.done)
	buf := make([]byte, p.chunk)
	for _, s := range p.spans {
		for off := s.Off; off < s.Off+s.Len; off += p.chunk {
			if p.cancel.Load() {
				return
			}
			n := p.chunk
			if rem := s.Off + s.Len - off; rem < n {
				n = rem
			}
			if err := backend.ReadFull(p.chain, buf[:n], off); err != nil {
				p.errV.Store(err)
				return
			}
			p.bytes.Add(n)
		}
	}
}

// Stop cancels the stream and waits for it to exit.
func (p *Prefetcher) Stop() {
	p.cancel.Store(true)
	p.Start() // ensure done gets closed even if never started
	<-p.done
}

// Wait blocks until the stream finishes (or is stopped) and reports the
// bytes prefetched and any error.
func (p *Prefetcher) Wait() (int64, error) {
	p.Start()
	<-p.done
	if err, ok := p.errV.Load().(error); ok {
		return p.bytes.Load(), err
	}
	return p.bytes.Load(), nil
}

// BytesPrefetched reports progress so far.
func (p *Prefetcher) BytesPrefetched() int64 { return p.bytes.Load() }
