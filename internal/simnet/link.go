// Package simnet models the two DAS-4 interconnects of §5: commodity
// 1 Gb/s Ethernet and 32 Gb/s QDR InfiniBand. A Link is the storage node's
// network attachment: a FIFO-shared pipe all compute nodes' transfers queue
// on, plus per-request latency that concurrent requesters do NOT share
// (propagation and server processing overlap across nodes).
package simnet

import (
	"time"

	"vmicache/internal/sim"
)

// LinkParams describes one interconnect.
type LinkParams struct {
	// Name labels the network in results ("1GbE", "32GbIB").
	Name string

	// Bandwidth is the raw link rate in bytes/second.
	Bandwidth int64

	// Efficiency scales Bandwidth to the achievable goodput for the
	// paper's workload: small synchronous NFS reads with rwsize 64 KiB.
	Efficiency float64

	// PerRequest is the non-shared latency of one request/response pair:
	// propagation, interrupt handling, NFS server processing. Concurrent
	// requests from different nodes overlap on this component.
	PerRequest time.Duration

	// MaxSegment splits transfers into rwsize-style segments; each
	// segment pays SegmentOverhead of queued (shared) time.
	MaxSegment      int64
	SegmentOverhead time.Duration
}

// GbE returns the commodity 1 Gb Ethernet model. Calibration: one stream of
// 24 KiB synchronous reads achieves ~6 MB/s (boot-time single-VM reads at
// ~4 ms/request); the shared link saturates at ~53 MB/s of goodput, which 64
// concurrently booting CentOS VMs exceed by ~4x (Fig. 2's linear regime).
func GbE() LinkParams {
	return LinkParams{
		Name:            "1GbE",
		Bandwidth:       117 << 20, // 1 Gb/s on the wire
		Efficiency:      0.45,
		PerRequest:      3500 * time.Microsecond,
		MaxSegment:      64 << 10,
		SegmentOverhead: 30 * time.Microsecond,
	}
}

// IB returns the 32 Gb QDR InfiniBand model (IPoIB for NFS): vastly higher
// bandwidth and a much cheaper request path.
func IB() LinkParams {
	return LinkParams{
		Name:            "32GbIB",
		Bandwidth:       3200 << 20, // 25.6 Gb/s effective payload rate
		Efficiency:      0.70,
		PerRequest:      360 * time.Microsecond,
		MaxSegment:      64 << 10,
		SegmentOverhead: 5 * time.Microsecond,
	}
}

// Link is one shared network attachment.
type Link struct {
	p LinkParams
	q *sim.FIFO

	Bytes    int64
	Requests int64
}

// NewLink returns an idle link.
func NewLink(eng *sim.Engine, p LinkParams) *Link {
	return &Link{p: p, q: sim.NewFIFO(eng, p.Name)}
}

// Params returns the link's parameters.
func (l *Link) Params() LinkParams { return l.p }

// goodput returns the effective shared rate in bytes/second.
func (l *Link) goodput() float64 {
	return float64(l.p.Bandwidth) * l.p.Efficiency
}

// Transfer moves n bytes through the shared pipe on behalf of p: the time in
// queue is the data's serialisation at goodput plus per-segment overhead;
// afterwards the process pays the non-shared per-request latency once.
// Returns the total time the process was blocked.
func (l *Link) Transfer(p *sim.Proc, n int64) time.Duration {
	start := p.Now()
	segs := int64(1)
	if l.p.MaxSegment > 0 && n > l.p.MaxSegment {
		segs = (n + l.p.MaxSegment - 1) / l.p.MaxSegment
	}
	service := time.Duration(float64(n)/l.goodput()*float64(time.Second)) +
		time.Duration(segs)*l.p.SegmentOverhead
	l.Bytes += n
	l.Requests++
	l.q.Use(p, service)
	p.Sleep(l.p.PerRequest)
	return p.Now() - start
}

// RequestOnly charges a data-less round trip (e.g. a metadata request or a
// write acknowledgement) without occupying the shared pipe.
func (l *Link) RequestOnly(p *sim.Proc) {
	l.Requests++
	p.Sleep(l.p.PerRequest)
}

// Queue exposes the underlying FIFO for utilization statistics.
func (l *Link) Queue() *sim.FIFO { return l.q }
