package simnet

import (
	"fmt"
	"testing"
	"time"

	"vmicache/internal/sim"
)

func TestSingleTransferTiming(t *testing.T) {
	eng := sim.New(1)
	l := NewLink(eng, LinkParams{
		Name: "test", Bandwidth: 100 << 20, Efficiency: 0.5,
		PerRequest: time.Millisecond, MaxSegment: 64 << 10, SegmentOverhead: 10 * time.Microsecond,
	})
	var elapsed time.Duration
	eng.Go("x", func(p *sim.Proc) {
		elapsed = l.Transfer(p, 64<<10)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 64 KiB at 50 MB/s = 1.25 ms + 10 us overhead + 1 ms latency.
	want := 1250*time.Microsecond + 10*time.Microsecond + time.Millisecond
	if d := elapsed - want; d < -10*time.Microsecond || d > 10*time.Microsecond {
		t.Fatalf("transfer = %v, want ~%v", elapsed, want)
	}
	if l.Bytes != 64<<10 || l.Requests != 1 {
		t.Fatalf("counters: %d %d", l.Bytes, l.Requests)
	}
}

func TestSegmentationOverhead(t *testing.T) {
	eng := sim.New(1)
	l := NewLink(eng, LinkParams{
		Name: "t", Bandwidth: 1 << 40, Efficiency: 1,
		MaxSegment: 64 << 10, SegmentOverhead: time.Millisecond,
	})
	var elapsed time.Duration
	eng.Go("x", func(p *sim.Proc) {
		elapsed = l.Transfer(p, 256<<10) // 4 segments
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed < 4*time.Millisecond || elapsed > 4*time.Millisecond+100*time.Microsecond {
		t.Fatalf("4-segment transfer = %v", elapsed)
	}
}

func TestSharedPipeSaturates(t *testing.T) {
	// N concurrent transfers serialize on the shared queue; latency
	// overlaps. This is the Fig. 2 mechanism.
	const n = 8
	eng := sim.New(1)
	l := NewLink(eng, LinkParams{
		Name: "t", Bandwidth: 100 << 20, Efficiency: 1, PerRequest: time.Millisecond,
	})
	var last time.Duration
	for i := 0; i < n; i++ {
		eng.Go(fmt.Sprintf("n%d", i), func(p *sim.Proc) {
			l.Transfer(p, 10<<20)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 80 MB at 100 MB/s = 800 ms serialization + 1 ms latency.
	want := 800*time.Millisecond + time.Millisecond
	if d := last - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("makespan = %v, want ~%v", last, want)
	}
	if u := l.Queue().Utilization(); u < 0.95 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestLatencyOverlapsAcrossNodes(t *testing.T) {
	// With tiny payloads the shared queue is nearly idle; concurrent
	// requesters finish at ~the same time because PerRequest is not
	// shared.
	const n = 16
	eng := sim.New(1)
	l := NewLink(eng, LinkParams{
		Name: "t", Bandwidth: 1 << 40, Efficiency: 1, PerRequest: 10 * time.Millisecond,
	})
	var last time.Duration
	for i := 0; i < n; i++ {
		eng.Go(fmt.Sprintf("n%d", i), func(p *sim.Proc) {
			l.Transfer(p, 512)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if last > 11*time.Millisecond {
		t.Fatalf("latency did not overlap: makespan %v", last)
	}
}

func TestRequestOnly(t *testing.T) {
	eng := sim.New(1)
	l := NewLink(eng, GbE())
	var elapsed time.Duration
	eng.Go("x", func(p *sim.Proc) {
		l.RequestOnly(p)
		elapsed = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != GbE().PerRequest {
		t.Fatalf("request-only = %v", elapsed)
	}
	if l.Bytes != 0 {
		t.Fatal("request-only moved bytes")
	}
}

func TestPresetSanity(t *testing.T) {
	g, ib := GbE(), IB()
	if g.Bandwidth >= ib.Bandwidth {
		t.Fatal("GbE faster than IB")
	}
	if g.PerRequest <= ib.PerRequest {
		t.Fatal("GbE request cheaper than IB")
	}
	// A single CentOS-style boot stream (~1400 reads of ~24 KiB in ~30 s
	// of think time) must NOT saturate either link alone...
	gGoodput := float64(g.Bandwidth) * g.Efficiency
	demand := 1400.0 * 24 * 1024 / 30.0
	if demand > gGoodput {
		t.Fatal("single boot saturates GbE: calibration broken")
	}
	// ...but 64 concurrent CentOS boots must saturate GbE and not IB
	// (the Fig. 2 crossover).
	if 64*demand < gGoodput {
		t.Fatal("64 boots do not saturate GbE: calibration broken")
	}
	ibGoodput := float64(ib.Bandwidth) * ib.Efficiency
	if 64*demand > ibGoodput {
		t.Fatal("64 boots saturate IB: calibration broken")
	}
}
