package qcow

// Tests for the zero-copy serve support (zerocopy.go): the PlainExtents
// export contract (byte-identity against the copy path, plus the full
// fallback matrix — writable image, memory-backed container, compressed
// cluster, partially-valid sub-cluster, unallocated run, out-of-range), and
// the mmap warm-read mode (byte-identity, gating errors, Close race).

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"vmicache/internal/backend"
	"vmicache/internal/zerocopy"
)

// newOSImage creates a standalone image in a temp directory, fills it with a
// deterministic pattern via plain guest writes, and reopens it read-only on
// an os-backed container — the publication shape the zero-copy path serves.
func newOSImage(t *testing.T, size int64, clusterBits int, seed int64) (*Image, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "img.qcow")
	f, err := backend.CreateOSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Create(f, CreateOpts{Size: size, ClusterBits: clusterBits})
	if err != nil {
		t.Fatal(err)
	}
	pat := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(pat)
	if err := backend.WriteFull(img, pat, 0); err != nil {
		t.Fatal(err)
	}
	if err := img.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := backend.OpenOSFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := Open(ro, OpenOpts{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ri.Close() }) //nolint:errcheck // test teardown
	return ri, pat
}

// readExtents materialises exported extents with plain preads — the exact
// I/O a sendfile would issue — so tests can compare against the copy path.
func readExtents(t *testing.T, exts []zerocopy.FileExtent) []byte {
	t.Helper()
	var out []byte
	for _, e := range exts {
		buf := make([]byte, e.Len)
		if _, err := e.F.ReadAt(buf, e.Off); err != nil {
			t.Fatalf("extent pread: %v", err)
		}
		out = append(out, buf...)
	}
	return out
}

// TestPlainExtentsByteIdentity proves the extent export describes exactly
// the bytes the copy path returns, across aligned, misaligned, and
// EOF-adjacent ranges, and that sequential fills coalesce physically.
func TestPlainExtentsByteIdentity(t *testing.T) {
	const size = 2 * testMB
	img, pat := newOSImage(t, size, 12, 61) // 4 KiB clusters: many extents
	cases := []struct{ off, n int64 }{
		{0, 4096},
		{777, 100001},
		{size - 9000, 9000},
		{0, size},
	}
	for _, tc := range cases {
		exts, ok := img.PlainExtents(tc.off, tc.n, nil)
		if !ok {
			t.Fatalf("PlainExtents(%d, %d): not exportable", tc.off, tc.n)
		}
		var total int64
		for _, e := range exts {
			total += e.Len
		}
		if total != tc.n {
			t.Fatalf("PlainExtents(%d, %d): extents cover %d bytes", tc.off, tc.n, total)
		}
		if got := readExtents(t, exts); !bytes.Equal(got, pat[tc.off:tc.off+tc.n]) {
			t.Fatalf("PlainExtents(%d, %d): extent bytes differ from copy path", tc.off, tc.n)
		}
	}
	// Sequential fill allocates physically in order, so the whole disk
	// should coalesce into one run — the sendfile best case.
	exts, ok := img.PlainExtents(0, size, nil)
	if !ok || len(exts) != 1 {
		t.Fatalf("full-image export: ok=%v extents=%d, want 1 coalesced run", ok, len(exts))
	}
	if img.Stats().ZeroCopyExports.Load() == 0 {
		t.Fatal("zero-copy export counter not advanced")
	}
	// dst reuse: appended extents must not clobber what the caller had.
	pre := []zerocopy.FileExtent{{Off: 1, Len: 2}}
	exts, ok = img.PlainExtents(0, 4096, pre)
	if !ok || len(exts) < 2 || exts[0].Off != 1 || exts[0].Len != 2 {
		t.Fatalf("dst prefix clobbered: %+v ok=%v", exts, ok)
	}
}

// TestPlainExtentsFallbackMatrix drives every condition that must refuse the
// export and push the caller to the copy path.
func TestPlainExtentsFallbackMatrix(t *testing.T) {
	const size = 8 * 64 << 10

	t.Run("writable image", func(t *testing.T) {
		img, _ := newTestImage(t, size, 16)
		defer img.Close()
		if _, ok := img.PlainExtents(0, 4096, nil); ok {
			t.Fatal("writable image exported extents")
		}
	})

	t.Run("memory-backed container", func(t *testing.T) {
		img, _ := newTestImage(t, size, 16)
		buf := make([]byte, size)
		if err := backend.WriteFull(img, buf, 0); err != nil {
			t.Fatal(err)
		}
		snap := snapshot(t, img.f)
		img.Close() //nolint:errcheck
		ro, err := Open(snap, OpenOpts{ReadOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		defer ro.Close()
		if _, ok := ro.PlainExtents(0, 4096, nil); ok {
			t.Fatal("MemFile-backed image exported extents")
		}
	})

	t.Run("compressed and unallocated runs", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "img.qcow")
		f, err := backend.CreateOSFile(path)
		if err != nil {
			t.Fatal(err)
		}
		img, err := Create(f, CreateOpts{Size: size, ClusterBits: 16})
		if err != nil {
			t.Fatal(err)
		}
		cs := img.ClusterSize()
		rnd := rand.New(rand.NewSource(67))
		d := make([]byte, cs)
		// Clusters 0,1 raw; cluster 2 compressed; cluster 3 raw; 4.. unallocated.
		for _, vc := range []int64{0, 1, 3} {
			rnd.Read(d)
			if err := backend.WriteFull(img, d, vc*cs); err != nil {
				t.Fatal(err)
			}
		}
		// Must be compressible: incompressible blobs are stored raw, which
		// would defeat the fallback this subtest exists to exercise.
		for i := range d {
			d[i] = byte(i / 64)
		}
		if err := img.WriteCompressedCluster(2, d); err != nil {
			t.Fatal(err)
		}
		if err := img.Close(); err != nil {
			t.Fatal(err)
		}
		rof, err := backend.OpenOSFile(path, true)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := Open(rof, OpenOpts{ReadOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		defer ro.Close()

		if exts, ok := ro.PlainExtents(0, 2*cs, nil); !ok || len(exts) == 0 {
			t.Fatal("pure raw range refused")
		}
		if _, ok := ro.PlainExtents(0, 3*cs, nil); ok {
			t.Fatal("range containing a compressed cluster exported")
		}
		if _, ok := ro.PlainExtents(2*cs, 100, nil); ok {
			t.Fatal("compressed cluster exported")
		}
		if _, ok := ro.PlainExtents(4*cs, cs, nil); ok {
			t.Fatal("unallocated (zero-reading) cluster exported")
		}
		if _, ok := ro.PlainExtents(3*cs, 2*cs, nil); ok {
			t.Fatal("raw+unallocated straddle exported")
		}
		// Range checks.
		if _, ok := ro.PlainExtents(-1, cs, nil); ok {
			t.Fatal("negative offset exported")
		}
		if _, ok := ro.PlainExtents(0, 0, nil); ok {
			t.Fatal("empty range exported")
		}
		if _, ok := ro.PlainExtents(size-10, 20, nil); ok {
			t.Fatal("past-EOF range exported")
		}
	})

	t.Run("partial subcluster", func(t *testing.T) {
		base, _ := newPatternedBase(t, size, 73)
		path := filepath.Join(t.TempDir(), "sub.qcow")
		f, err := backend.CreateOSFile(path)
		if err != nil {
			t.Fatal(err)
		}
		img := newSubCache(t, f, size, 8*size, RawSource{R: base, N: size})
		cs := img.ClusterSize()
		// Cluster 1: partial 4 KiB fill. Cluster 2: full fill.
		small := make([]byte, 4096)
		if err := backend.ReadFull(img, small, cs); err != nil {
			t.Fatal(err)
		}
		full := make([]byte, cs)
		if err := backend.ReadFull(img, full, 2*cs); err != nil {
			t.Fatal(err)
		}
		if err := img.Close(); err != nil {
			t.Fatal(err)
		}
		rof, err := backend.OpenOSFile(path, true)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := Open(rof, OpenOpts{ReadOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		defer ro.Close()
		if _, ok := ro.PlainExtents(cs, 4096, nil); ok {
			t.Fatal("partially-valid sub-cluster exported")
		}
		if exts, ok := ro.PlainExtents(2*cs, cs, nil); !ok || len(exts) != 1 {
			t.Fatalf("fully-valid cluster refused: ok=%v exts=%d", ok, len(exts))
		}
	})
}

// TestMmapWarmRead proves byte-identity of the mapping-served read path and
// that the mode actually engages (counter advances).
func TestMmapWarmRead(t *testing.T) {
	const size = testMB
	img, pat := newOSImage(t, size, 12, 79)
	if img.MmapEnabled() {
		t.Fatal("mmap enabled before EnableMmap")
	}
	if err := img.EnableMmap(); err != nil {
		t.Fatalf("EnableMmap: %v", err)
	}
	if !img.MmapEnabled() {
		t.Fatal("MmapEnabled false after EnableMmap")
	}
	got := make([]byte, size)
	if err := backend.ReadFull(img, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat) {
		t.Fatal("mmap-served read differs from pattern")
	}
	for _, tc := range []struct{ off, n int64 }{{513, 100000}, {size - 10, 10}} {
		b := make([]byte, tc.n)
		if err := backend.ReadFull(img, b, tc.off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, pat[tc.off:tc.off+tc.n]) {
			t.Fatalf("mmap read (%d, %d) mismatch", tc.off, tc.n)
		}
	}
	if img.Stats().MmapReads.Load() == 0 {
		t.Fatal("reads did not go through the mapping")
	}
	// Second enable must refuse.
	if err := img.EnableMmap(); err != ErrMmapEnabled {
		t.Fatalf("second EnableMmap: %v", err)
	}
}

// TestMmapGates checks the enable-time refusals: writable images and
// non-os-backed containers keep the pread path.
func TestMmapGates(t *testing.T) {
	img, _ := newTestImage(t, testMB, 16)
	defer img.Close()
	if err := img.EnableMmap(); err != ErrMmapWritable {
		t.Fatalf("writable EnableMmap: %v", err)
	}
	snap := snapshot(t, img.f)
	ro, err := Open(snap, OpenOpts{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if err := ro.EnableMmap(); err != zerocopy.ErrUnsupported {
		t.Fatalf("MemFile EnableMmap: %v", err)
	}
}

// TestMmapCloseRace runs readers against the mapping while Close tears it
// down; under -race this pins the reader-drain ordering (Close unmaps only
// after readers.Wait, so no read copies from a dead mapping).
func TestMmapCloseRace(t *testing.T) {
	const size = testMB
	img, pat := newOSImage(t, size, 12, 83)
	if err := img.EnableMmap(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			buf := make([]byte, 32<<10)
			<-start
			for i := 0; i < 200; i++ {
				off := rnd.Int63n(size - int64(len(buf)))
				if err := backend.ReadFull(img, buf, off); err != nil {
					return // ErrClosed once Close lands: expected
				}
				if !bytes.Equal(buf, pat[off:off+int64(len(buf))]) {
					panic("mmap race: data mismatch")
				}
			}
		}(int64(r))
	}
	close(start)
	img.Close() //nolint:errcheck // racing with readers by design
	wg.Wait()
}
