package qcow

import (
	"bytes"
	"sync"
	"testing"

	"vmicache/internal/backend"
)

// TestConcurrentOverwriteRead exercises WriteAt's lock-free overwrite fast
// path: once a cluster is allocated, overwrites perform their data I/O
// outside the image mutex (mirroring ReadAt), so concurrent overwrites and
// reads of the same region must be race-free and converge on the last
// written pattern.
func TestConcurrentOverwriteRead(t *testing.T) {
	const (
		size = testMB
		span = 128 << 10
	)
	cow, err := Create(backend.NewMemFile(), CreateOpts{Size: size, ClusterBits: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Allocate the region up front so the storm below stays on the
	// overwrite fast path.
	final := make([]byte, span)
	for i := range final {
		final[i] = byte(i * 31)
	}
	if _, err := cow.WriteAt(final, 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 16<<10)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				off := int64((i * 13 << 10) % (span - len(buf)))
				if w%2 == 0 {
					if _, err := cow.ReadAt(buf, off); err != nil {
						t.Errorf("reader: %v", err)
						return
					}
				} else {
					copy(buf, final[off:off+int64(len(buf))])
					if _, err := cow.WriteAt(buf, off); err != nil {
						t.Errorf("writer: %v", err)
						return
					}
				}
			}
		}(w)
	}
	// Let the storm run a fixed number of scheduler beats, then stop.
	for i := 0; i < 200; i++ {
		if _, err := cow.WriteAt(final, 0); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// All writers wrote bytes of the same final pattern, so the settled
	// content must equal it exactly.
	got := make([]byte, span)
	if err := backend.ReadFull(cow, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, final) {
		t.Fatal("post-storm content diverges from the written pattern")
	}
	if err := cow.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriteAtRacesClose checks that Close drains in-flight lock-free writes
// (they register on the same drain latch as reads) and that writes arriving
// after Close fail with ErrClosed.
func TestWriteAtRacesClose(t *testing.T) {
	for iter := 0; iter < 8; iter++ {
		cow, err := Create(backend.NewMemFile(), CreateOpts{Size: testMB, ClusterBits: 16})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cow.WriteAt(make([]byte, 256<<10), 0); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				buf := make([]byte, 8<<10)
				for off := int64(0); ; off = (off + int64(len(buf))) % (128 << 10) {
					if _, err := cow.WriteAt(buf, off); err != nil {
						if err != ErrClosed {
							t.Errorf("writer %d: %v", w, err)
						}
						return
					}
				}
			}(w)
		}
		close(start)
		if err := cow.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}
