package qcow

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"vmicache/internal/backend"
)

// trackingSource wraps a BlockSource and counts, per cache cluster, how many
// backing reads touched it. The singleflight guarantee is that a cold cache
// cluster is fetched from backing at most once no matter how many readers
// miss on it concurrently.
type trackingSource struct {
	src         BlockSource
	clusterSize int64
	counts      []atomic.Int32
}

func (ts *trackingSource) ReadAt(p []byte, off int64) (int, error) {
	first := off / ts.clusterSize
	last := (off + int64(len(p)) - 1) / ts.clusterSize
	for c := first; c <= last && c < int64(len(ts.counts)); c++ {
		ts.counts[c].Add(1)
	}
	return ts.src.ReadAt(p, off)
}

func (ts *trackingSource) Size() int64 { return ts.src.Size() }

// TestConcurrentReadStress hammers one warm and one cold cache image (shared
// patterned base) from many goroutines with overlapping reads, checking every
// read byte-for-byte against the flat reference and that the cold image
// fetched each cluster from the backing source at most once.
func TestConcurrentReadStress(t *testing.T) {
	const (
		size        = 2 * testMB
		clusterBits = 9
		cs          = 1 << clusterBits
		workers     = 16
		iters       = 80
		maxRead     = 24 << 10
	)
	base, pat := newPatternedBase(t, size, 77)

	track := &trackingSource{
		src:         RawSource{R: base, N: size},
		clusterSize: cs,
		counts:      make([]atomic.Int32, size/cs),
	}
	cold := newCache(t, size, 4*size, clusterBits, track)

	warm := newCache(t, size, 4*size, clusterBits, RawSource{R: base, N: size})
	if err := backend.ReadFull(warm, make([]byte, size), 0); err != nil {
		t.Fatalf("pre-warming: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			buf := make([]byte, maxRead)
			for i := 0; i < iters; i++ {
				// Overlapping offsets: all workers draw from the same
				// narrow hot region half the time, so cold misses
				// collide on the same clusters.
				n := 1 + rnd.Intn(maxRead)
				var off int64
				if i%2 == 0 {
					off = rnd.Int63n(size / 8)
				} else {
					off = rnd.Int63n(size - int64(n))
				}
				if off+int64(n) > size {
					n = int(size - off)
				}
				for _, img := range []*Image{cold, warm} {
					if err := backend.ReadFull(img, buf[:n], off); err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(buf[:n], pat[off:off+int64(n)]) {
						t.Errorf("worker %d: data mismatch at off=%d n=%d", seed, off, n)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Singleflight: with an ample quota no cluster is ever fetched twice.
	for c := range track.counts {
		if got := track.counts[c].Load(); got > 1 {
			t.Errorf("cluster %d fetched %d times from backing, want <= 1", c, got)
		}
	}
	if got := cold.Stats().BackingBytes.Load(); got > size {
		t.Errorf("cold backing traffic %d exceeds image size %d", got, size)
	}

	// Full sweep after the storm: both images must replay the base exactly.
	for _, img := range []*Image{cold, warm} {
		out := make([]byte, size)
		if err := backend.ReadFull(img, out, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, pat) {
			t.Fatal("post-stress image contents diverge from reference")
		}
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}
	if err := warm.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentColdDistinctRuns checks that misses on distinct cluster runs
// proceed in parallel without corrupting each other: disjoint stripes are
// read concurrently, then the whole image is verified.
func TestConcurrentColdDistinctRuns(t *testing.T) {
	const (
		size        = testMB
		clusterBits = 9
		workers     = 8
	)
	base, pat := newPatternedBase(t, size, 78)
	cache := newCache(t, size, 4*size, clusterBits, RawSource{R: base, N: size})

	stripe := int64(size / workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int64) {
			defer wg.Done()
			buf := make([]byte, 4096)
			for off := start; off < start+stripe; off += 4096 {
				n := minI64(4096, start+stripe-off)
				if err := backend.ReadFull(cache, buf[:n], off); err != nil {
					t.Errorf("read at %d: %v", off, err)
					return
				}
				if !bytes.Equal(buf[:n], pat[off:off+n]) {
					t.Errorf("stripe mismatch at %d", off)
					return
				}
			}
		}(int64(w) * stripe)
	}
	wg.Wait()

	if got, want := cache.Stats().BackingBytes.Load(), int64(size); got != want {
		t.Errorf("backing traffic = %d, want exactly %d (each cluster fetched once)", got, want)
	}
	res, err := cache.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("post-stress check failed:\n%s", res)
	}
}

// TestConcurrentReadsWithClose makes sure Close drains in-flight readers
// instead of yanking the container out from under them.
func TestConcurrentReadsWithClose(t *testing.T) {
	const size = testMB
	base, _ := newPatternedBase(t, size, 79)
	cache := newCache(t, size, 4*size, 9, RawSource{R: base, N: size})

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			<-start
			rnd := rand.New(rand.NewSource(seed))
			buf := make([]byte, 8192)
			for i := 0; i < 50; i++ {
				off := rnd.Int63n(size - 8192)
				if _, err := cache.ReadAt(buf, off); err != nil {
					if err == ErrClosed {
						return
					}
					t.Errorf("read: %v", err)
					return
				}
			}
		}(int64(w))
	}
	close(start)
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := cache.ReadAt(make([]byte, 512), 0); err != ErrClosed {
		t.Fatalf("read after close: %v, want ErrClosed", err)
	}
}
