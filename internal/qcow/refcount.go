package qcow

import (
	"encoding/binary"
	"fmt"

	"vmicache/internal/backend"
)

// refcount bookkeeping. Clusters are allocated by a bump allocator at the
// end of the file (QCOW2 allocates first-fit over refcounts; a bump
// allocator is equivalent for the paper's workloads, which never free data
// clusters). Refcounts still exist and are maintained exactly, because
// `qimg check` uses them to validate images and the cache-quota computation
// must account metadata clusters precisely.

// refcount reads the refcount of cluster c.
func (img *Image) refcount(c int64) (uint16, error) {
	rbIdx := c / img.ly.refBlockEnts
	if rbIdx >= int64(len(img.refTable)) {
		return 0, nil
	}
	rbOff := int64(img.refTable[rbIdx] & entryOffsetMask)
	if rbOff == 0 {
		return 0, nil
	}
	var b [refcountEntrySz]byte
	off := rbOff + (c%img.ly.refBlockEnts)*refcountEntrySz
	if err := backend.ReadFull(img.f, b[:], off); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b[:]), nil
}

// setRefcount writes the refcount of cluster c, allocating a refcount block
// (and growing the refcount table) as needed.
func (img *Image) setRefcount(c int64, v uint16) error {
	rbIdx := c / img.ly.refBlockEnts
	if rbIdx >= int64(len(img.refTable)) {
		if err := img.growRefTable(rbIdx + 1); err != nil {
			return err
		}
	}
	rbOff := int64(img.refTable[rbIdx] & entryOffsetMask)
	if rbOff == 0 {
		// Allocate a refcount block. The new block is taken from the
		// bump allocator *without* immediate refcount accounting to
		// avoid unbounded recursion; its own count is set right after
		// the table entry is in place.
		newOff := img.nextFree * img.ly.clusterSize
		img.nextFree++
		zero := img.cbuf.getZero(int(img.ly.clusterSize))
		err := backend.WriteFull(img.f, zero, newOff)
		img.cbuf.put(zero)
		if err != nil {
			return err
		}
		img.refTable[rbIdx] = uint64(newOff)
		if err := img.writeRefTableEntry(rbIdx); err != nil {
			return err
		}
		rbOff = newOff
		// Self-account the refblock cluster. Its refcount entry may
		// live in this very block or an earlier one; either way the
		// table entry now exists, so plain recursion terminates.
		if err := img.setRefcount(newOff/img.ly.clusterSize, 1); err != nil {
			return err
		}
	}
	var b [refcountEntrySz]byte
	binary.BigEndian.PutUint16(b[:], v)
	off := rbOff + (c%img.ly.refBlockEnts)*refcountEntrySz
	return backend.WriteFull(img.f, b[:], off)
}

// writeRefTableEntry persists one refcount-table slot.
func (img *Image) writeRefTableEntry(idx int64) error {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], img.refTable[idx])
	return backend.WriteFull(img.f, b[:], int64(img.hdr.RefTableOffset)+idx*refTableEntrySz)
}

// growRefTable relocates the refcount table to the end of the file with room
// for at least minEntries entries. The old table's clusters are freed
// (refcount 0); the bump allocator does not reuse them, which `check`
// reports as acceptable leaks only if we left them referenced — so they are
// explicitly zeroed.
func (img *Image) growRefTable(minEntries int64) error {
	oldClusters := int64(img.hdr.RefTableClusters)
	newClusters := oldClusters * 2
	for newClusters*img.ly.clusterSize/refTableEntrySz < minEntries {
		newClusters *= 2
	}
	newOff := img.nextFree * img.ly.clusterSize
	img.nextFree += newClusters

	newTable := make([]uint64, newClusters*img.ly.clusterSize/refTableEntrySz)
	copy(newTable, img.refTable)
	buf := make([]byte, newClusters*img.ly.clusterSize)
	for i, e := range newTable {
		binary.BigEndian.PutUint64(buf[i*8:], e)
	}
	if err := backend.WriteFull(img.f, buf, newOff); err != nil {
		return err
	}

	oldOff := int64(img.hdr.RefTableOffset)
	img.hdr.RefTableOffset = uint64(newOff)
	img.hdr.RefTableClusters = uint32(newClusters)
	img.refTable = newTable
	if err := img.rewriteHeader(); err != nil {
		return err
	}
	// Account the new table clusters and release the old ones.
	for i := int64(0); i < newClusters; i++ {
		if err := img.setRefcount(newOff/img.ly.clusterSize+i, 1); err != nil {
			return err
		}
	}
	for i := int64(0); i < oldClusters; i++ {
		if err := img.setRefcount(oldOff/img.ly.clusterSize+i, 0); err != nil {
			return err
		}
	}
	return nil
}

// rewriteHeader re-encodes and rewrites the header cluster (used only when
// header fields beyond the cache-used counter change).
func (img *Image) rewriteHeader() error {
	buf, err := img.hdr.encode(img.ly.clusterSize)
	if err != nil {
		return err
	}
	return backend.WriteFull(img.f, buf, 0)
}

// allocCluster returns the physical offset of a fresh, refcounted cluster.
// When zeroed is true the cluster contents are zero-filled (needed for
// metadata; data clusters are always fully overwritten by their writer).
func (img *Image) allocCluster(zeroed bool) (int64, error) {
	c := img.nextFree
	img.nextFree++
	off := c * img.ly.clusterSize
	if zeroed {
		zero := img.cbuf.getZero(int(img.ly.clusterSize))
		err := backend.WriteFull(img.f, zero, off)
		img.cbuf.put(zero)
		if err != nil {
			return 0, err
		}
	} else if err := img.ensureFileSize(off + img.ly.clusterSize); err != nil {
		return 0, err
	}
	if err := img.setRefcount(c, 1); err != nil {
		return 0, err
	}
	return off, nil
}

// ensureFileSize grows the container to at least n bytes.
func (img *Image) ensureFileSize(n int64) error {
	sz, err := img.f.Size()
	if err != nil {
		return err
	}
	if sz < n {
		return img.f.Truncate(n)
	}
	return nil
}

// clustersNeededFor computes exactly how many clusters an allocation of
// extra clusters (data plus L2 tables) will take, including any refcount
// blocks (and refcount-table growth) the allocation itself triggers. Used by
// the cache quota check so the "space error" fires *before* the cache
// overshoots its quota.
func (img *Image) clustersNeededFor(extra int64) int64 {
	total := extra
	for {
		end := img.nextFree + total
		// Refcount blocks missing for clusters [0, end).
		var rbMissing int64
		rbNeeded := ceilDiv(end, img.ly.refBlockEnts)
		for i := int64(0); i < rbNeeded; i++ {
			if i >= int64(len(img.refTable)) || img.refTable[i]&entryOffsetMask == 0 {
				rbMissing++
			}
		}
		// Refcount-table growth, if the table cannot index rbNeeded.
		var growth int64
		if rbNeeded > int64(len(img.refTable)) {
			newClusters := int64(img.hdr.RefTableClusters) * 2
			for newClusters*img.ly.clusterSize/refTableEntrySz < rbNeeded {
				newClusters *= 2
			}
			growth = newClusters
		}
		newTotal := extra + rbMissing + growth
		if newTotal == total {
			return total
		}
		total = newTotal
	}
}

// worstCaseFillBytes is the byte cost of the largest single fill: one data
// cluster, one L2 table, and a refcount block.
func (img *Image) worstCaseFillBytes() int64 {
	return 3 * img.ly.clusterSize
}

// debugString summarises allocator state for error messages.
func (img *Image) debugString() string {
	return fmt.Sprintf("clusters=%d used=%dB l1=%d refTableEntries=%d",
		img.nextFree, img.usedBytes(), len(img.l1), len(img.refTable))
}
