package qcow

import (
	"encoding/binary"
	"testing"

	"vmicache/internal/backend"
)

// Format-stability tests: the on-disk layout is a compatibility contract
// (images written today must open tomorrow). These tests pin the byte-level
// positions of the header fields and the cache extension, so accidental
// layout changes fail loudly.

func TestGoldenHeaderLayout(t *testing.T) {
	f := backend.NewMemFile()
	img, err := Create(f, CreateOpts{
		Size:        8 << 20,
		ClusterBits: 12,
		BackingFile: "base.img",
		CacheQuota:  4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Sync(); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 4096)
	if err := backend.ReadFull(f, raw, 0); err != nil {
		t.Fatal(err)
	}
	be := binary.BigEndian

	// Fixed header fields at their QCOW2 v3 offsets.
	if got := be.Uint32(raw[0:]); got != 0x514649fb {
		t.Fatalf("magic = %#x", got)
	}
	if got := be.Uint32(raw[4:]); got != 3 {
		t.Fatalf("version = %d", got)
	}
	if got := be.Uint32(raw[20:]); got != 12 {
		t.Fatalf("cluster_bits = %d", got)
	}
	if got := be.Uint64(raw[24:]); got != 8<<20 {
		t.Fatalf("size = %d", got)
	}
	if got := be.Uint32(raw[96:]); got != 4 {
		t.Fatalf("refcount_order = %d", got)
	}
	if got := be.Uint32(raw[100:]); got != 104 {
		t.Fatalf("header_length = %d", got)
	}

	// Cache extension: first extension, type 0xcac4e0f1, 16-byte payload
	// (quota, used) at offset 104.
	if got := be.Uint32(raw[104:]); got != 0xcac4e0f1 {
		t.Fatalf("cache ext type = %#x", got)
	}
	if got := be.Uint32(raw[108:]); got != 16 {
		t.Fatalf("cache ext length = %d", got)
	}
	if got := be.Uint64(raw[112:]); got != 4<<20 {
		t.Fatalf("cache quota = %d", got)
	}
	if got := be.Uint64(raw[120:]); got == 0 {
		t.Fatal("cache used = 0")
	}
	// End-of-extensions marker after the padded cache extension.
	if got := be.Uint32(raw[128:]); got != 0 {
		t.Fatalf("end marker = %#x", got)
	}

	// Backing name: offset/size fields point inside cluster 0.
	bfOff := be.Uint64(raw[8:])
	bfLen := be.Uint32(raw[16:])
	if bfOff == 0 || bfLen != 8 {
		t.Fatalf("backing fields: off=%d len=%d", bfOff, bfLen)
	}
	if got := string(raw[bfOff : bfOff+uint64(bfLen)]); got != "base.img" {
		t.Fatalf("backing name = %q", got)
	}
}

func TestGoldenLayoutOffsets(t *testing.T) {
	// Creation layout: header | refcount table | first refblock | L1.
	f := backend.NewMemFile()
	img, err := Create(f, CreateOpts{Size: 8 << 20, ClusterBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	h := img.Header()
	cs := int64(4096)
	if int64(h.RefTableOffset) != cs {
		t.Fatalf("refcount table at %d, want %d", h.RefTableOffset, cs)
	}
	l1Expected := int64(h.RefTableOffset) + int64(h.RefTableClusters)*cs + cs
	if int64(h.L1TableOffset) != l1Expected {
		t.Fatalf("L1 at %d, want %d", h.L1TableOffset, l1Expected)
	}
	// An image created with identical options is byte-identical
	// (deterministic creation).
	f2 := backend.NewMemFile()
	if _, err := Create(f2, CreateOpts{Size: 8 << 20, ClusterBits: 12}); err != nil {
		t.Fatal(err)
	}
	s1, _ := f.Size()
	s2, _ := f2.Size()
	if s1 != s2 {
		t.Fatalf("sizes differ: %d vs %d", s1, s2)
	}
	a := make([]byte, s1)
	b := make([]byte, s2)
	if err := backend.ReadFull(f, a, 0); err != nil {
		t.Fatal(err)
	}
	if err := backend.ReadFull(f2, b, 0); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("creation not deterministic at byte %d", i)
		}
	}
}
