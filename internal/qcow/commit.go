package qcow

import (
	"errors"
	"fmt"
)

// CommitTo merges this image's allocated guest data into dst (its backing
// image, opened writable), the qemu-img commit operation. After a commit
// the source image can be discarded and VMs re-based onto dst.
//
// Cache images reject being a commit *destination* — they are immutable
// with respect to guest data (§3) — but a CoW image may be committed into a
// writable base. Cache images may be commit *sources*: committing a warm
// cache into a fresh standalone image materialises the boot working set as
// a bootable minimal image.
func (img *Image) CommitTo(dst *Image) error {
	if dst == nil {
		return errors.New("qcow: commit needs a destination image")
	}
	if dst.Size() < img.Size() {
		return fmt.Errorf("qcow: destination smaller than source (%d < %d)", dst.Size(), img.Size())
	}
	extents, err := img.Map()
	if err != nil {
		return err
	}
	buf := make([]byte, 1<<20)
	for _, e := range extents {
		if !e.Allocated {
			continue
		}
		for off := e.Start; off < e.Start+e.Length; {
			n := int64(len(buf))
			if rem := e.Start + e.Length - off; rem < n {
				n = rem
			}
			if _, err := img.ReadAt(buf[:n], off); err != nil {
				return fmt.Errorf("qcow: commit read at %d: %w", off, err)
			}
			if _, err := dst.WriteAt(buf[:n], off); err != nil {
				return fmt.Errorf("qcow: commit write at %d: %w", off, err)
			}
			off += n
		}
	}
	return dst.Sync()
}
