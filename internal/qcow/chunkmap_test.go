package qcow

import (
	"errors"
	"testing"

	"vmicache/internal/backend"
)

// chunkValidBits decodes a bitmap into a per-chunk bool slice.
func chunkValidBits(bits []byte, nchunks int64) []bool {
	out := make([]bool, nchunks)
	for c := int64(0); c < nchunks; c++ {
		out[c] = bits[c>>3]&(1<<(c&7)) != 0
	}
	return out
}

func TestValidChunkBitmapWholeClusters(t *testing.T) {
	const size = 8 * 4096 // 8 clusters of 4 KiB
	base, _ := newPatternedBase(t, size, 31)
	cache := newCache(t, size, 8*testMB, 12, RawSource{R: base, N: size})
	defer cache.Close()

	// Cold: every chunk invalid.
	bits, err := cache.ValidChunkBitmap(4096)
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range chunkValidBits(bits, 8) {
		if v {
			t.Fatalf("cold cache advertises chunk %d", c)
		}
	}

	// Fill clusters 2 and 5 through copy-on-read.
	buf := make([]byte, 4096)
	for _, vc := range []int64{2, 5} {
		if err := backend.ReadFull(cache, buf, vc*4096); err != nil {
			t.Fatal(err)
		}
	}
	bits, err = cache.ValidChunkBitmap(4096)
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range chunkValidBits(bits, 8) {
		want := c == 2 || c == 5
		if v != want {
			t.Fatalf("chunk %d valid=%v, want %v", c, v, want)
		}
	}

	// Chunk smaller than a cluster inherits the cluster's validity; chunk
	// larger than a cluster requires every covered cluster.
	bits, err = cache.ValidChunkBitmap(2048)
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range chunkValidBits(bits, 16) {
		want := c == 4 || c == 5 || c == 10 || c == 11
		if v != want {
			t.Fatalf("half-cluster chunk %d valid=%v, want %v", c, v, want)
		}
	}
	bits, err = cache.ValidChunkBitmap(8192)
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range chunkValidBits(bits, 4) {
		if v {
			t.Fatalf("double-cluster chunk %d valid with half its clusters cold", c)
		}
	}
	if err := backend.ReadFull(cache, buf, 3*4096); err != nil {
		t.Fatal(err)
	}
	bits, _ = cache.ValidChunkBitmap(8192)
	if v := chunkValidBits(bits, 4); !v[1] || v[0] || v[2] || v[3] {
		t.Fatalf("double-cluster chunks = %v, want only chunk 1 (clusters 2+3)", v)
	}
}

func TestValidChunkBitmapSubclusters(t *testing.T) {
	const size = 4 << 16 // 4 clusters of 64 KiB
	base, _ := newPatternedBase(t, size, 33)
	mem := backend.NewMemFile()
	cache := newSubCache(t, backend.NopClose(mem), size, 8*testMB, RawSource{R: base, N: size})
	defer cache.Close()

	// A 4 KiB read fills one subcluster: the cluster is allocated but NOT
	// fully valid, so its chunks must not be advertised.
	buf := make([]byte, 4096)
	if err := backend.ReadFull(cache, buf, 1<<16); err != nil {
		t.Fatal(err)
	}
	bits, err := cache.ValidChunkBitmap(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range chunkValidBits(bits, 4) {
		if v {
			t.Fatalf("partially valid cluster advertised as chunk %d", c)
		}
	}
	// The serving guard is conservative at cluster granularity: even the
	// filled subcluster is refused while its cluster is partially valid.
	if cache.RangeLocallyValid(1<<16, 4096) {
		t.Fatal("partially valid cluster passed the serving guard")
	}

	// Reading the whole cluster completes it; now its chunk is valid.
	big := make([]byte, 1<<16)
	if err := backend.ReadFull(cache, big, 1<<16); err != nil {
		t.Fatal(err)
	}
	bits, _ = cache.ValidChunkBitmap(1 << 16)
	if v := chunkValidBits(bits, 4); !v[1] || v[0] || v[2] || v[3] {
		t.Fatalf("chunks = %v, want only chunk 1", v)
	}
}

func TestRangeLocallyValid(t *testing.T) {
	const size = 8 * 4096
	base, _ := newPatternedBase(t, size, 35)
	cache := newCache(t, size, 8*testMB, 12, RawSource{R: base, N: size})
	defer cache.Close()

	buf := make([]byte, 4096)
	if err := backend.ReadFull(cache, buf, 2*4096); err != nil {
		t.Fatal(err)
	}
	if !cache.RangeLocallyValid(2*4096, 4096) {
		t.Fatal("filled cluster not locally valid")
	}
	if !cache.RangeLocallyValid(2*4096+100, 200) {
		t.Fatal("sub-range of a filled cluster not locally valid")
	}
	if cache.RangeLocallyValid(3*4096, 4096) {
		t.Fatal("cold cluster locally valid")
	}
	if cache.RangeLocallyValid(2*4096, 2*4096) {
		t.Fatal("range straddling a cold cluster locally valid")
	}
	if cache.RangeLocallyValid(-1, 10) || cache.RangeLocallyValid(size-10, 20) {
		t.Fatal("out-of-bounds range locally valid")
	}
	if !cache.RangeLocallyValid(0, 0) {
		t.Fatal("empty range should be trivially valid")
	}
}

func TestValidChunkBitmapErrors(t *testing.T) {
	const size = 4096
	base, _ := newPatternedBase(t, size, 37)
	cache := newCache(t, size, 8*testMB, 12, RawSource{R: base, N: size})

	if _, err := cache.ValidChunkBitmap(0); !errors.Is(err, ErrBadChunkSize) {
		t.Fatalf("chunk size 0: %v", err)
	}
	if _, err := cache.ValidChunkBitmap(-5); !errors.Is(err, ErrBadChunkSize) {
		t.Fatalf("negative chunk size: %v", err)
	}
	cache.Close()
	if _, err := cache.ValidChunkBitmap(4096); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed image: %v", err)
	}
	if cache.RangeLocallyValid(0, 100) {
		t.Fatal("closed image range valid")
	}
}

// A tail chunk past a short last cluster must be coverable, and the bitmap's
// padding bits stay zero so Count-style summaries are exact.
func TestValidChunkBitmapTailPadding(t *testing.T) {
	const size = 9*4096 + 100 // 10 clusters (last short), 10 chunks
	base, _ := newPatternedBase(t, size, 39)
	cache := newCache(t, size, 8*testMB, 12, RawSource{R: base, N: size})
	defer cache.Close()

	buf := make([]byte, 100)
	if err := backend.ReadFull(cache, buf, 9*4096); err != nil {
		t.Fatal(err)
	}
	bits, err := cache.ValidChunkBitmap(4096)
	if err != nil {
		t.Fatal(err)
	}
	v := chunkValidBits(bits, 10)
	if !v[9] {
		t.Fatal("short tail chunk not valid after its cluster filled")
	}
	for c := 0; c < 9; c++ {
		if v[c] {
			t.Fatalf("chunk %d unexpectedly valid", c)
		}
	}
	// Padding bits beyond chunk 9 (bits 10-15 of byte 1) must be zero.
	if bits[1]&^0b11 != 0 {
		t.Fatalf("padding bits set: %08b", bits[1])
	}
}
