package qcow

import (
	"math/bits"
	"sync/atomic"
	"time"

	"vmicache/internal/backend"
)

// Copy-on-read fill singleflight. Concurrent cold misses on the same
// clusters of a cache image must not each fetch the run from the backing
// source: the first reader to claim a cluster run becomes its *leader*,
// performs the one backing fetch and the allocation, and every other reader
// that misses on a claimed cluster waits and is served straight from the
// leader's fetched buffer. Misses on distinct cluster runs proceed fully in
// parallel.
//
// The protocol keeps one invariant: a cache cluster transitions
// unallocated→allocated only while its claim is held (guest writes cannot
// allocate on cache images — they are immutable). So "claim, then observe
// unallocated" proves the claimer is the only possible filler, which is what
// makes the at-most-one-backing-fetch-per-cluster guarantee hold without
// holding the image lock across network I/O.

// fill is one in-flight copy-on-read fetch of a contiguous cluster run.
type fill struct {
	vc       int64 // first claimed cluster
	claimed  int64 // clusters claimed [vc, vc+claimed)
	fetched  int64 // clusters actually fetched into buf (set by the leader)
	prefetch bool  // led by the readahead engine (set by the leader before leadFill)
	// reqOff/reqEnd is the leader's guest request extent (bytes); in
	// sub-cluster mode it bounds the synchronous fetch to the sub-clusters
	// the guest actually asked for. Zero means "whole run" (prefetch and
	// completion fills).
	reqOff, reqEnd int64
	buf            []byte
	err            error
	done           chan struct{}
	refs           atomic.Int32
	pool           *bufPool
}

// release drops one reference; the last reference recycles the buffer.
func (f *fill) release() {
	if f.refs.Add(-1) == 0 && f.buf != nil {
		f.pool.put(f.buf)
		f.buf = nil
	}
}

// claimRun either attaches to the in-flight fill covering vc (leader=false)
// or claims the longest unclaimed prefix of [vc, vc+max) and returns a fresh
// fill to lead (leader=true). Attached callers hold a buffer reference and
// must release() after waiting. The registry holds one interval entry per
// in-flight fill, so the scan is O(concurrent cold misses), not O(run).
func (img *Image) claimRun(vc, max int64) (f *fill, leader bool) {
	img.fillMu.Lock()
	defer img.fillMu.Unlock()
	n := max
	for _, g := range img.fills {
		if g.vc <= vc && vc < g.vc+g.claimed {
			g.refs.Add(1)
			return g, false
		}
		if g.vc > vc && g.vc-vc < n {
			n = g.vc - vc // truncate at the next claimed interval
		}
	}
	f = &fill{vc: vc, claimed: n, done: make(chan struct{}), pool: &img.sbuf}
	f.refs.Store(1)
	img.fills = append(img.fills, f)
	return f, true
}

// unclaim removes f's interval from the registry.
func (img *Image) unclaim(f *fill) {
	img.fillMu.Lock()
	for i, g := range img.fills {
		if g == f {
			last := len(img.fills) - 1
			img.fills[i] = img.fills[last]
			img.fills[last] = nil
			img.fills = img.fills[:last]
			break
		}
	}
	img.fillMu.Unlock()
}

// quotaFit returns the largest prefix of a run of k unallocated clusters
// starting at vc whose allocation (data + metadata it triggers) fits the
// cache quota. Monotone in the prefix length, hence the binary search.
// Caller holds img.mu (read or write).
func (img *Image) quotaFit(vc, k int64) int64 {
	fits := func(j int64) bool {
		return img.usedBytes()+img.runAllocCost(vc, j)*img.ly.clusterSize <= img.quota
	}
	lo, hi := int64(0), k
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if fits(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// leadFill runs the leader's side of one fill: re-validate the claimed run,
// fetch it from the backing source in ONE read (no image lock held), then
// take the write lock to allocate, store and bind as many clusters as the
// quota admits. Truncation by the quota trips the §4.3 space error exactly
// as the serial implementation did. On return f.done is closed and waiters
// are served from f.buf.
func (img *Image) leadFill(f *fill, backing BlockSource) {
	start := time.Now()
	defer func() {
		img.unclaim(f)
		close(f.done)
	}()
	if img.sub != nil && !f.prefetch && f.reqEnd > 0 {
		// Sub-cluster mode: a demand miss fetches only the sub-clusters
		// the guest asked for. Prefetch fills keep fetching whole
		// clusters — readahead wants the full window anyway.
		img.leadFillSub(f, backing, start)
		return
	}
	cs := img.ly.clusterSize

	// Re-validate under the read lock: the run was observed unallocated
	// before claiming, so anything allocated since was bound by a fill
	// that completed in between. Truncate at the first such cluster.
	img.mu.RLock()
	rl := runLookup{img: img}
	want := int64(0)
	for want < f.claimed {
		m, err := rl.lookup(f.vc + want)
		if err != nil {
			img.mu.RUnlock()
			f.err = err
			return
		}
		if m.dataOff != 0 {
			break
		}
		want++
	}
	fit := want
	if fit > 0 {
		fit = img.quotaFit(f.vc, want)
	}
	usedSnap := img.usedBytes()
	img.mu.RUnlock()
	if want == 0 {
		return // run got filled before we claimed it; waiters retry
	}
	if fit == 0 {
		// Space error before fetching anything: stop filling for the
		// image's remaining lifetime; the miss is served by
		// pass-through in the caller.
		img.mu.Lock()
		if !img.cacheFull {
			img.cacheFull = true
			img.stats.CacheFullEvents.Add(1)
		}
		img.mu.Unlock()
		return
	}

	// One backing fetch for the whole admitted run, cluster-rounded,
	// clamped to the virtual size (the final cluster may be partial).
	fetchStart := f.vc * cs
	fetchLen := fit * cs
	if fetchStart+fetchLen > int64(img.hdr.Size) {
		fetchLen = int64(img.hdr.Size) - fetchStart
	}
	buf := img.sbuf.get(int(fit * cs))
	clear(buf[fetchLen:])
	if err := img.readBacking(backing, buf[:fetchLen], fetchStart); err != nil {
		img.sbuf.put(buf)
		f.err = err
		return
	}

	// Metadata phase under the write lock: the quota fit is recomputed
	// because concurrent fills may have consumed space since the
	// advisory check above (it can only shrink). Unchanged usage means
	// the advisory fit is still exact.
	img.mu.Lock()
	final := fit
	if img.usedBytes() != usedSnap {
		final = img.quotaFit(f.vc, fit)
	}
	for i := int64(0); i < final; i++ {
		m, err := img.ensureL2(f.vc + i)
		if err == nil {
			var dataOff int64
			dataOff, err = img.allocCluster(false)
			if err == nil {
				err = backend.WriteFull(img.f, buf[i*cs:(i+1)*cs], dataOff)
			}
			if err == nil && img.sub != nil {
				// Whole-cluster fill: the cluster is fully valid.
				// Bits persist before the bind so a crash tears
				// into a state Check detects.
				err = img.subMarkFull(f.vc + i)
			}
			if err == nil {
				err = img.bindCluster(&m, dataOff)
			}
		}
		if err != nil {
			img.mu.Unlock()
			img.sbuf.put(buf)
			f.err = err
			return
		}
	}
	if final < want && !img.cacheFull {
		img.cacheFull = true
		img.stats.CacheFullEvents.Add(1)
	}
	img.stats.CacheFillOps.Add(final)
	img.stats.CacheFillBytes.Add(minI64(fetchLen, final*cs))
	if f.prefetch && final > 0 {
		img.stats.PrefetchOps.Add(1)
		img.stats.PrefetchBytes.Add(minI64(fetchLen, final*cs))
		// Mark before waiters see f.done: a guest read served from this
		// buffer (or from the freshly bound clusters) must find the
		// marks it is about to clear.
		if pf := img.pf.Load(); pf != nil {
			pf.markPrefetched(f.vc, final)
		}
	}
	img.mu.Unlock()
	img.stats.FillLatency.Observe(time.Since(start).Nanoseconds())

	f.fetched = fit
	f.buf = buf
}

// leadFillSub is the leader's side of a demand fill in sub-cluster mode.
// Allocation stays whole-cluster (so the §4.3 quota accounting is unchanged)
// but only the sub-cluster-aligned extent of the guest request is fetched
// from the backing source and marked valid; the background completer tops
// the clusters up later. Waiters always re-translate — f.fetched stays 0
// because the fetched buffer is not cluster-aligned. Per cluster the order
// is data write, bitmap persist, L2 bind, so a crash tears into a state
// qcow.Check detects.
func (img *Image) leadFillSub(f *fill, backing BlockSource, start time.Time) {
	s := img.sub
	cs := img.ly.clusterSize

	// Re-validate under the read lock, exactly as leadFill does.
	img.mu.RLock()
	rl := runLookup{img: img}
	want := int64(0)
	for want < f.claimed {
		m, err := rl.lookup(f.vc + want)
		if err != nil {
			img.mu.RUnlock()
			f.err = err
			return
		}
		if m.dataOff != 0 {
			break
		}
		want++
	}
	fit := want
	if fit > 0 {
		fit = img.quotaFit(f.vc, want)
	}
	usedSnap := img.usedBytes()
	img.mu.RUnlock()
	if want == 0 {
		return // run got filled before we claimed it; waiters retry
	}
	if fit == 0 {
		img.mu.Lock()
		if !img.cacheFull {
			img.cacheFull = true
			img.stats.CacheFullEvents.Add(1)
		}
		img.mu.Unlock()
		return
	}

	// One backing fetch for the sub-cluster-aligned request extent inside
	// the admitted run, clamped to the virtual size.
	fetchStart := maxI64(f.vc*cs, f.reqOff&^(s.subSize-1))
	fetchEnd := minI64((f.vc+fit)*cs, (f.reqEnd+s.subSize-1)&^(s.subSize-1))
	if fetchStart >= fetchEnd {
		return // quota truncated the run below the request; pass through
	}
	readLen := minI64(fetchEnd, s.size) - fetchStart
	buf := img.sbuf.get(int(fetchEnd - fetchStart))
	clear(buf[readLen:])
	if err := img.readBacking(backing, buf[:readLen], fetchStart); err != nil {
		img.sbuf.put(buf)
		f.err = err
		return
	}

	img.mu.Lock()
	final := fit
	if img.usedBytes() != usedSnap {
		final = img.quotaFit(f.vc, fit)
	}
	var nsubs, written int64
	for i := int64(0); i < final; i++ {
		vc := f.vc + i
		c0 := vc * cs
		o0, o1 := maxI64(c0, fetchStart), minI64(c0+cs, fetchEnd)
		if o0 >= o1 {
			break // defensive: every claimed cluster intersects the request
		}
		m, err := img.ensureL2(vc)
		var dataOff int64
		if err == nil {
			dataOff, err = img.allocCluster(false)
		}
		if err == nil {
			err = backend.WriteFull(img.f, buf[o0-fetchStart:o1-fetchStart], dataOff+(o0-c0))
		}
		if err == nil {
			mask := s.maskRange(o0-c0, o1-c0) & s.fullMask(vc)
			nsubs += int64(bits.OnesCount64(mask))
			_, err = img.publishSubBits(vc, mask)
		}
		if err == nil {
			err = img.bindCluster(&m, dataOff)
		}
		if err != nil {
			img.mu.Unlock()
			img.sbuf.put(buf)
			f.err = err
			return
		}
		written += o1 - o0
	}
	if final < want && !img.cacheFull {
		img.cacheFull = true
		img.stats.CacheFullEvents.Add(1)
	}
	img.stats.CacheFillOps.Add(final)
	img.stats.CacheFillBytes.Add(minI64(written, readLen))
	img.stats.SubclusterFills.Add(nsubs)
	img.mu.Unlock()
	img.sbuf.put(buf)
	for i := int64(0); i < final; i++ {
		if !s.isFull(f.vc + i) {
			img.notifyCompleter(f.vc + i)
		}
	}
	img.stats.FillLatency.Observe(time.Since(start).Nanoseconds())
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// fillRun serves span (starting at guest offset pos, lying inside the
// unallocated run [vc, vc+run)) through the fill singleflight. It returns
// how many bytes of span were served; a short count means the caller must
// re-translate and continue (the run was truncated or served by another
// fill).
func (img *Image) fillRun(vc, run, pos int64, span []byte, backing BlockSource) (int, error) {
	cs := img.ly.clusterSize
	f, leader := img.claimRun(vc, run)
	// Both leader (the initial reference) and waiters (added in claimRun)
	// hold exactly one buffer reference; the last release recycles f.buf.
	defer f.release()
	if leader {
		f.reqOff, f.reqEnd = pos, pos+int64(len(span))
		img.leadFill(f, backing)
	} else {
		img.stats.FillWaits.Add(1)
		<-f.done
	}
	if f.err != nil {
		return 0, f.err
	}
	covEnd := (f.vc + f.fetched) * cs
	if f.fetched == 0 || pos >= covEnd {
		return 0, nil // not covered; caller retries
	}
	served := minI64(pos+int64(len(span)), covEnd) - pos
	copy(span[:served], f.buf[pos-f.vc*cs:])
	// A guest read served straight from a readahead fill's buffer consumed
	// the prefetch: clear the marks so the bytes count as hits, not waste.
	if f.prefetch {
		if pf := img.pf.Load(); pf != nil {
			pf.markRead(pos, served)
		}
	}
	return int(served), nil
}
