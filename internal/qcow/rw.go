package qcow

import (
	"io"

	"vmicache/internal/backend"
)

// ReadAt implements guest reads with backing recursion (§4.3 read).
//
// For a plain CoW image, an unallocated cluster is read from the backing
// source *at request granularity* — on-demand transfer fetches only what the
// guest asked for. For a cache image, a miss fetches the *full cluster* from
// the backing source, stores it (copy-on-read), then serves the request;
// that cluster-granularity fill is exactly what makes 64 KiB cache clusters
// amplify base traffic in Fig. 9 and why §5.1 drops cache images to 512-byte
// clusters. A fill that would exceed the quota raises the internal space
// error: the image stops filling for the rest of its lifetime and serves all
// further misses by pass-through.
//
// ReadAt is the concurrent fast path: the whole request is translated into a
// mapped-extent slice under ONE acquisition of the shared metadata lock
// (translateExtents), then every extent's data I/O (container read, backing
// pass-through, or singleflight fill) runs with no image lock held, so
// parallel readers overlap their I/O and cold misses on distinct cluster
// runs fetch from the backing source in parallel.
func (img *Image) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, ErrOutOfRange
	}
	if err := img.enterRead(); err != nil {
		return 0, err
	}
	defer img.readers.Done()
	size := int64(img.hdr.Size)
	if off >= size {
		return 0, io.EOF
	}
	n := len(p)
	var errEOF error
	if off+int64(n) > size {
		n = int(size - off)
		errEOF = io.EOF
	}
	img.stats.GuestReadOps.Add(1)
	img.stats.GuestReadBytes.Add(int64(n))
	if pf := img.pf.Load(); pf != nil {
		pf.observe(off, int64(n))
	}

	extp := img.getExtents()
	done, err := img.readExtents(p[:n], off, extp)
	img.putExtents(extp)
	if err != nil {
		return done, err
	}
	return n, errEOF
}

// readExtents serves p (clamped to the virtual size) starting at guest
// offset off: translate the remainder into extents under one shared-lock
// acquisition, serve each extent lock-free, and re-translate whenever a fill
// reports that the allocation picture changed under it (short serve). The
// extent slice is threaded through extp so a pooled slice is grown at most
// once per image lifetime.
func (img *Image) readExtents(p []byte, off int64, extp *[]mappedExtent) (int, error) {
	n := len(p)
	done := 0
	for done < n {
		exts, ctx, terr := img.translateExtents(off+int64(done), off+int64(n), (*extp)[:0])
		*extp = exts
		stale := false
	serve:
		for i := range exts {
			e := &exts[i]
			seg := p[done : done+int(e.length)]
			switch e.kind {
			case extRaw:
				// Bound clusters are never moved or freed, so this read
				// needs no lock: the container serialises its own I/O.
				// With the warm-read mapping installed (EnableMmap) the
				// bytes come from the mapping instead of a pread syscall.
				if !img.mmapRead(seg, e.dataOff) {
					if err := backend.ReadFull(img.f, seg, e.dataOff); err != nil {
						return done, err
					}
				}
				if img.isCache {
					img.stats.LocalBytes.Add(e.length)
					if pf := img.pf.Load(); pf != nil {
						pf.markRead(e.pos, e.length)
					}
				}
				done += int(e.length)
			case extCompressed:
				data, err := img.readCompressed(e.dataOff)
				if err != nil {
					return done, err
				}
				copy(seg, data[e.pos-e.vc*img.ly.clusterSize:])
				if img.isCache {
					// A compressed cluster is still a local hit: count it
					// like the raw branch so the local/backing traffic
					// ratio stays truthful for compressed caches.
					img.stats.LocalBytes.Add(e.length)
				}
				done += int(e.length)
			case extSubPartial:
				// Partially-valid cluster: serve sub-cluster-wise,
				// demand-filling missing sub-clusters in place.
				served, err := img.subReadPartial(e.vc, e.pos, seg, e.dataOff, ctx.backing, ctx.fillSub)
				if err != nil {
					return done, err
				}
				done += served
				if served < int(e.length) {
					// A fill changed the validity picture (or this
					// extent raced a whole-cluster fill): the rest of
					// the translation is suspect too. Re-translate.
					stale = true
					break serve
				}
			case extUnalloc:
				if ctx.fillRun {
					served, err := img.fillRun(e.vc, e.run, e.pos, seg, ctx.backing)
					if err != nil {
						return done, err
					}
					done += served
					if served < int(e.length) {
						// The run was truncated or filled by a
						// concurrent fill: re-translate.
						stale = true
						break serve
					}
				} else {
					if err := img.readBacking(ctx.backing, seg, e.pos); err != nil {
						return done, err
					}
					done += int(e.length)
				}
			case extZero:
				clear(seg)
				done += int(e.length)
			}
		}
		// A translation error is returned only after the extents preceding
		// it were served — unless a short serve already invalidated the
		// snapshot, in which case the retry re-derives (or clears) it.
		if terr != nil && !stale {
			return done, terr
		}
	}
	return done, nil
}

// unallocatedRun counts consecutive unallocated clusters starting at vc that
// intersect the request ending at reqEnd (byte offset). Always >= 1.
func (img *Image) unallocatedRun(rl *runLookup, vc, reqEnd int64) (int64, error) {
	maxVC := ceilDiv(reqEnd, img.ly.clusterSize)
	run := int64(1)
	for vc+run < maxVC {
		m, err := rl.lookup(vc + run)
		if err != nil {
			return run, err
		}
		if m.dataOff != 0 {
			break
		}
		run++
	}
	return run, nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// readBacking reads [pos, pos+len(seg)) from the given backing source,
// counting the traffic. Reads past the backing's size (a smaller base) read
// as zeros. Safe without the image lock: it touches only the backing source
// and atomic counters.
func (img *Image) readBacking(b BlockSource, seg []byte, pos int64) error {
	img.stats.BackingReadOps.Add(1)
	img.stats.BackingBytes.Add(int64(len(seg)))
	bsz := b.Size()
	if pos >= bsz {
		clear(seg)
		return nil
	}
	n := len(seg)
	if pos+int64(n) > bsz {
		n = int(bsz - pos)
	}
	if err := backend.ReadFull(b, seg[:n], pos); err != nil {
		return err
	}
	clear(seg[n:])
	return nil
}

// runAllocCost computes how many clusters filling k data clusters starting
// at vc will consume, counting missing L2 tables and refcount metadata.
func (img *Image) runAllocCost(vc, k int64) int64 {
	extra := k
	firstL1 := vc / img.ly.l2Entries
	lastL1 := (vc + k - 1) / img.ly.l2Entries
	for i := firstL1; i <= lastL1 && i < int64(len(img.l1)); i++ {
		if img.l1[i]&entryOffsetMask == 0 {
			extra++
		}
	}
	return img.clustersNeededFor(extra)
}

// WriteAt implements guest writes (§4.3 write). Cache images are immutable
// with respect to the guest: "all writes coming from the VM itself go to the
// CoW image" (§3.1), so a guest write to a cache image is an error. For CoW
// images, writing part of an unallocated cluster triggers a copy-on-write
// fill: the remainder of the cluster is fetched from the backing chain so
// the newly allocated cluster is complete.
//
// Overwrites of already-allocated raw clusters — the steady state once a
// cluster has been written once — mirror ReadAt's locking: translate under
// the shared metadata lock, then perform the data write with no image lock
// held (bound clusters are never moved or freed, and the §5 model leaves
// data atomicity to the container). Only allocating paths (CoW fill,
// compressed rewrite) take the exclusive lock, and they re-translate after
// acquiring it because another writer may have allocated the cluster in the
// window between the locks.
func (img *Image) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, ErrOutOfRange
	}
	if err := img.enterRead(); err != nil {
		return 0, err
	}
	defer img.readers.Done()
	if img.ro {
		return 0, ErrReadOnly
	}
	if img.isCache {
		return 0, ErrCacheImmutable
	}
	size := int64(img.hdr.Size)
	if off+int64(len(p)) > size {
		return 0, ErrOutOfRange
	}
	n := len(p)
	img.stats.GuestWriteOps.Add(1)
	img.stats.GuestWriteBytes.Add(int64(n))

	done := 0
	for done < n {
		pos := off + int64(done)
		vc := pos / img.ly.clusterSize
		inOff := pos % img.ly.clusterSize
		want := n - done
		if avail := int(img.ly.clusterSize - inOff); want > avail {
			want = avail
		}
		seg := p[done : done+want]

		// Fast path: the cluster is already allocated raw. Capture the
		// translation under the shared lock, write without it.
		img.mu.RLock()
		m, err := img.lookup(vc)
		if err != nil {
			img.mu.RUnlock()
			return done, err
		}
		if m.dataOff != 0 && !m.compressed {
			dataOff := m.dataOff
			img.mu.RUnlock()
			if err := backend.WriteFull(img.f, seg, dataOff+inOff); err != nil {
				return done, err
			}
			done += want
			continue
		}
		img.mu.RUnlock()

		img.mu.Lock()
		err = img.writeSlowLocked(vc, inOff, seg, size)
		img.mu.Unlock()
		if err != nil {
			return done, err
		}
		done += want
	}
	return n, nil
}

// writeSlowLocked handles the allocating write paths under the exclusive
// lock: re-translate (the state may have changed since the caller's shared-
// lock probe), then overwrite, rewrite-from-compressed, or copy-on-write
// allocate as the fresh translation dictates.
func (img *Image) writeSlowLocked(vc, inOff int64, seg []byte, size int64) error {
	m, err := img.lookup(vc)
	if err != nil {
		return err
	}
	if m.dataOff != 0 && !m.compressed {
		// Lost the race with another writer's allocation: plain
		// overwrite, already serialised by the lock we hold.
		return backend.WriteFull(img.f, seg, m.dataOff+inOff)
	}
	if m.compressed {
		// Copy-on-write out of a compressed cluster: inflate, merge,
		// store raw, release the blob's clusters.
		blobOff := m.dataOff
		old, err := img.readCompressed(blobOff)
		if err != nil {
			return err
		}
		buf := img.cbuf.getZero(int(img.ly.clusterSize))
		copy(buf, old)
		copy(buf[inOff:], seg)
		dataOff, err := img.allocCluster(false)
		if err == nil {
			err = backend.WriteFull(img.f, buf, dataOff)
		}
		img.cbuf.put(buf)
		if err != nil {
			return err
		}
		if err := img.bindCluster(&m, dataOff); err != nil {
			return err
		}
		return img.releaseBlobLocked(blobOff)
	}

	// Copy-on-write allocation.
	m2, err := img.ensureL2(vc)
	if err != nil {
		return err
	}
	clusterStart := vc * img.ly.clusterSize
	clusterLen := img.ly.clusterSize
	if clusterStart+clusterLen > size {
		clusterLen = size - clusterStart
	}
	buf := img.cbuf.getZero(int(img.ly.clusterSize))
	fullCover := inOff == 0 && int64(len(seg)) >= clusterLen
	if !fullCover && img.backing != nil {
		if err := img.readBacking(img.backing, buf[:clusterLen], clusterStart); err != nil {
			img.cbuf.put(buf)
			return err
		}
		img.stats.CowFillBytes.Add(clusterLen)
	}
	copy(buf[inOff:], seg)
	dataOff, err := img.allocCluster(false)
	if err == nil {
		err = backend.WriteFull(img.f, buf, dataOff)
	}
	img.cbuf.put(buf)
	if err != nil {
		return err
	}
	return img.bindCluster(&m2, dataOff)
}

// Allocated reports whether the cluster containing virtual offset off is
// materialised in this image (not deferring to backing).
func (img *Image) Allocated(off int64) (bool, error) {
	img.mu.RLock()
	defer img.mu.RUnlock()
	if img.closed {
		return false, ErrClosed
	}
	if off < 0 || off >= int64(img.hdr.Size) {
		return false, ErrOutOfRange
	}
	m, err := img.lookup(off / img.ly.clusterSize)
	if err != nil {
		return false, err
	}
	return m.dataOff != 0, nil
}

// AllocatedDataClusters counts materialised data clusters (excluding
// metadata); used by tests and `qimg info`.
func (img *Image) AllocatedDataClusters() (int64, error) {
	img.mu.RLock()
	defer img.mu.RUnlock()
	if img.closed {
		return 0, ErrClosed
	}
	var count int64
	for l1i, l1e := range img.l1 {
		l2Off := int64(l1e & entryOffsetMask)
		if l2Off == 0 {
			continue
		}
		t, err := img.loadL2(l2Off)
		if err != nil {
			return 0, err
		}
		_ = l1i
		for _, e := range t {
			if e&entryOffsetMask != 0 {
				count++
			}
		}
	}
	return count, nil
}
