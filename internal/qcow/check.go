package qcow

import (
	"fmt"
	"sort"
	"strings"

	"vmicache/internal/backend"
)

// CheckResult summarises a consistency pass over an image, in the spirit of
// `qemu-img check`.
type CheckResult struct {
	// Errors are fatal inconsistencies (entries pointing outside the
	// file, refcount mismatches on referenced clusters).
	Errors []string
	// Leaks are clusters with a refcount but no referencing structure.
	Leaks int
	// AllocatedClusters counts reachable clusters of any kind.
	AllocatedClusters int64
	// DataClusters counts reachable guest-data clusters.
	DataClusters int64
	// PartialClusters counts allocated clusters whose sub-cluster bitmap
	// is not yet full (0 for images without the extension).
	PartialClusters int64
}

// OK reports whether the image is consistent (leaks allowed).
func (r *CheckResult) OK() bool { return len(r.Errors) == 0 }

// String renders the result in a human-readable form.
func (r *CheckResult) String() string {
	var b strings.Builder
	if r.OK() {
		fmt.Fprintf(&b, "No errors found. %d clusters allocated (%d data), %d leaked.\n",
			r.AllocatedClusters, r.DataClusters, r.Leaks)
		if r.PartialClusters > 0 {
			fmt.Fprintf(&b, "%d clusters partially valid (awaiting completion).\n", r.PartialClusters)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%d errors:\n", len(r.Errors))
	for _, e := range r.Errors {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// Check walks all metadata and cross-validates it against the refcounts.
func (img *Image) Check() (*CheckResult, error) {
	img.mu.RLock()
	defer img.mu.RUnlock()
	if img.closed {
		return nil, ErrClosed
	}
	res := &CheckResult{}
	fileSize, err := img.f.Size()
	if err != nil {
		return nil, err
	}
	totalClusters := ceilDiv(fileSize, img.ly.clusterSize)
	expected := make(map[int64]int64) // cluster -> expected refcount

	ref := func(off int64, what string) {
		if off%img.ly.clusterSize != 0 {
			res.Errors = append(res.Errors, fmt.Sprintf("%s at %#x is not cluster aligned", what, off))
			return
		}
		c := off / img.ly.clusterSize
		if c >= totalClusters {
			res.Errors = append(res.Errors, fmt.Sprintf("%s at %#x lies beyond end of file", what, off))
			return
		}
		expected[c]++
	}

	// Header cluster.
	ref(0, "header")
	// Refcount table clusters.
	for i := int64(0); i < int64(img.hdr.RefTableClusters); i++ {
		ref(int64(img.hdr.RefTableOffset)+i*img.ly.clusterSize, "refcount table")
	}
	// Refcount blocks.
	for i, e := range img.refTable {
		off := int64(e & entryOffsetMask)
		if off != 0 {
			ref(off, fmt.Sprintf("refcount block %d", i))
		}
	}
	// L1 table clusters.
	l1Clusters := ceilDiv(int64(img.hdr.L1Size)*l1EntrySize, img.ly.clusterSize)
	for i := int64(0); i < l1Clusters; i++ {
		ref(int64(img.hdr.L1TableOffset)+i*img.ly.clusterSize, "L1 table")
	}
	// L2 tables and data clusters.
	for l1i, l1e := range img.l1 {
		l2Off := int64(l1e & entryOffsetMask)
		if l2Off == 0 {
			continue
		}
		ref(l2Off, fmt.Sprintf("L2 table (L1[%d])", l1i))
		t, err := img.loadL2(l2Off)
		if err != nil {
			return nil, err
		}
		for l2i, e := range t {
			dOff := int64(e & entryOffsetMask)
			if dOff == 0 {
				continue
			}
			if e&entryCompressed != 0 {
				// Compressed blobs pack several per cluster; the
				// cluster's refcount counts its live blobs.
				c := dOff / img.ly.clusterSize
				if c >= totalClusters {
					res.Errors = append(res.Errors,
						fmt.Sprintf("compressed blob (L1[%d] L2[%d]) at %#x beyond end of file", l1i, l2i, dOff))
				} else {
					expected[c]++
				}
				res.DataClusters++
				continue
			}
			ref(dOff, fmt.Sprintf("data cluster (L1[%d] L2[%d])", l1i, l2i))
			res.DataClusters++
		}
	}
	// Sub-cluster bitmap table: account its clusters and verify the
	// bitmap invariants. Data is written before bits are persisted and
	// bits before the L2 bind, so a torn (crashed) fill shows up here as
	// bits without an allocated cluster, an allocated raw cluster without
	// bits, or bits beyond the virtual size.
	if s := img.sub; s != nil {
		for i := int64(0); i < subTableClusters(img.ly, int64(img.hdr.Size)); i++ {
			ref(s.tableOff+i*img.ly.clusterSize, "subcluster table")
		}
		for vc := int64(0); vc < s.clusters; vc++ {
			m, err := img.lookup(vc)
			if err != nil {
				return nil, err
			}
			w := s.words[vc].Load()
			full := s.fullMask(vc)
			switch {
			case w&^full != 0:
				res.Errors = append(res.Errors,
					fmt.Sprintf("cluster %d: subcluster bits %#x beyond the virtual size", vc, w&^full))
			case m.dataOff == 0 || m.compressed:
				if w != 0 {
					res.Errors = append(res.Errors,
						fmt.Sprintf("cluster %d: subcluster bits %#x on an unallocated cluster (torn fill)", vc, w))
				}
			default:
				if w == 0 {
					res.Errors = append(res.Errors,
						fmt.Sprintf("cluster %d: allocated raw with no subcluster bits (torn fill)", vc))
				} else if w != full {
					res.PartialClusters++
				}
			}
		}
	}
	res.AllocatedClusters = int64(len(expected))

	// Compare against stored refcounts over the whole file.
	for c := int64(0); c < totalClusters; c++ {
		got, err := img.refcount(c)
		if err != nil {
			return nil, err
		}
		want := expected[c]
		switch {
		case int64(got) == want:
		case want == 0 && got > 0:
			res.Leaks++
		default:
			res.Errors = append(res.Errors,
				fmt.Sprintf("cluster %d: refcount %d, expected %d", c, got, want))
		}
	}
	return res, nil
}

// OpenVerified opens the image in f and runs a full consistency Check before
// returning it. An image whose metadata fails the check is closed and
// rejected with ErrCorrupt. This is the publication gate of the node cache
// manager: a cache is only renamed into its published (immutable) name after
// OpenVerified succeeds on the warmed temp file, so a partially-written or
// torn container can never be served.
func OpenVerified(f backend.File, opts OpenOpts) (*Image, error) {
	img, err := Open(f, opts)
	if err != nil {
		return nil, err
	}
	res, err := img.Check()
	if err != nil {
		img.Close() //nolint:errcheck // already failing
		return nil, err
	}
	if !res.OK() {
		img.Close() //nolint:errcheck
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, res.Errors[0])
	}
	return img, nil
}

// Extent describes one run of the guest-visible mapping, as `qemu-img map`
// would print it.
type Extent struct {
	Start      int64 // virtual offset
	Length     int64
	Allocated  bool  // materialised in this image
	PhysOff    int64 // physical offset when allocated
	Compressed bool  // stored as a deflate blob
}

// Map returns the allocation extents of the image, coalescing contiguous
// clusters with the same disposition.
func (img *Image) Map() ([]Extent, error) {
	img.mu.RLock()
	defer img.mu.RUnlock()
	if img.closed {
		return nil, ErrClosed
	}
	var out []Extent
	size := int64(img.hdr.Size)
	clusters := ceilDiv(size, img.ly.clusterSize)
	for vc := int64(0); vc < clusters; vc++ {
		m, err := img.lookup(vc)
		if err != nil {
			return nil, err
		}
		start := vc * img.ly.clusterSize
		length := img.ly.clusterSize
		if start+length > size {
			length = size - start
		}
		alloc := m.dataOff != 0
		if n := len(out); n > 0 {
			last := &out[n-1]
			contiguousPhys := alloc && last.Allocated &&
				!m.compressed && !last.Compressed &&
				last.PhysOff+last.Length == m.dataOff
			bothHoles := !alloc && !last.Allocated
			if last.Start+last.Length == start && (contiguousPhys || bothHoles) {
				last.Length += length
				continue
			}
		}
		out = append(out, Extent{
			Start: start, Length: length, Allocated: alloc,
			PhysOff: m.dataOff, Compressed: m.compressed,
		})
	}
	return out, nil
}

// Info describes an image for humans (`qimg info`).
type Info struct {
	VirtualSize   int64
	FileSize      int64
	ClusterSize   int64
	BackingFile   string
	IsCache       bool
	CacheQuota    int64
	CacheUsed     int64
	DataClusters  int64
	FillRatio     float64 // cache used / quota
	L2CacheHits   int64
	L2CacheMisses int64

	// Sub-cluster extension state (Subclusters false when absent).
	Subclusters     bool
	SubclusterSize  int64
	PartialClusters int64
	FullClusters    int64
}

// Info collects summary information about the image.
func (img *Image) Info() (Info, error) {
	dc, err := img.AllocatedDataClusters()
	if err != nil {
		return Info{}, err
	}
	img.mu.RLock()
	defer img.mu.RUnlock()
	fsz, err := img.f.Size()
	if err != nil {
		return Info{}, err
	}
	in := Info{
		VirtualSize:   int64(img.hdr.Size),
		FileSize:      fsz,
		ClusterSize:   img.ly.clusterSize,
		BackingFile:   img.hdr.BackingFile,
		IsCache:       img.isCache,
		CacheQuota:    img.quota,
		CacheUsed:     img.usedBytes(),
		DataClusters:  dc,
		L2CacheHits:   img.stats.L2CacheHits.Load(),
		L2CacheMisses: img.stats.L2CacheMisses.Load(),
	}
	if img.quota > 0 {
		in.FillRatio = float64(in.CacheUsed) / float64(img.quota)
	}
	if st, ok := img.Subclusters(); ok {
		in.Subclusters = true
		in.SubclusterSize = st.SubclusterSize
		in.PartialClusters = st.PartialClusters
		in.FullClusters = st.FullClusters
	}
	return in, nil
}

// String renders the info block.
func (in Info) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "virtual size: %d\n", in.VirtualSize)
	fmt.Fprintf(&b, "file size:    %d\n", in.FileSize)
	fmt.Fprintf(&b, "cluster size: %d\n", in.ClusterSize)
	if in.BackingFile != "" {
		fmt.Fprintf(&b, "backing file: %s\n", in.BackingFile)
	}
	if in.IsCache {
		fmt.Fprintf(&b, "cache image:  quota=%d used=%d (%.1f%%)\n",
			in.CacheQuota, in.CacheUsed, 100*in.FillRatio)
	}
	if in.Subclusters {
		fmt.Fprintf(&b, "subclusters:  size=%d full=%d partial=%d\n",
			in.SubclusterSize, in.FullClusters, in.PartialClusters)
	}
	fmt.Fprintf(&b, "data clusters: %d\n", in.DataClusters)
	fmt.Fprintf(&b, "l2 cache:     hits=%d misses=%d\n", in.L2CacheHits, in.L2CacheMisses)
	return b.String()
}

// sortedKeys is a test helper shared by check-related tests.
func sortedKeys(m map[int64]int64) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
