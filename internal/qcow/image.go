package qcow

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"vmicache/internal/backend"
	"vmicache/internal/metrics"
)

// Stats counts data-path activity on one image. BackingBytes is the quantity
// Fig. 9/10 plot as "observed traffic at the storage node" when the backing
// image lives there.
type Stats struct {
	GuestReadOps    atomic.Int64
	GuestReadBytes  atomic.Int64
	GuestWriteOps   atomic.Int64
	GuestWriteBytes atomic.Int64

	// BackingReadOps/BackingBytes count data fetched from the backing
	// source, i.e. cold misses of this image.
	BackingReadOps atomic.Int64
	BackingBytes   atomic.Int64

	// LocalBytes counts guest-read bytes served from this image's own
	// clusters (warm hits for cache images).
	LocalBytes atomic.Int64

	// CacheFillOps/CacheFillBytes count copy-on-read fills performed by a
	// cache image; CacheFullEvents counts fills refused by the quota.
	CacheFillOps    atomic.Int64
	CacheFillBytes  atomic.Int64
	CacheFullEvents atomic.Int64

	// CowFillBytes counts partial-cluster backing fetches triggered by
	// guest writes (copy-on-write fills).
	CowFillBytes atomic.Int64

	// L2CacheHits/L2CacheMisses count L2-table translations served from
	// the in-memory L2 cache vs decoded from the container.
	L2CacheHits   atomic.Int64
	L2CacheMisses atomic.Int64

	// CompressedClusters/CompressedBytes count clusters written through
	// WriteCompressedCluster and their deflate volume.
	CompressedClusters atomic.Int64
	CompressedBytes    atomic.Int64

	// FillWaits counts readers that attached to another reader's in-flight
	// copy-on-read fill instead of fetching themselves (singleflight
	// followers).
	FillWaits atomic.Int64

	// FillLatency records the duration (ns) of each successful leader
	// fill: the backing fetch plus allocation and binding.
	FillLatency metrics.AtomicHistogram

	// Prefetch effectiveness (prefetch.go). PrefetchOps/PrefetchBytes
	// count fills led by the readahead engine; PrefetchHitBytes counts
	// prefetched bytes later served to guest reads; PrefetchWastedBytes
	// counts prefetched bytes never read by the time the engine detached;
	// PrefetchDropped counts readahead refused by the budget or a full
	// queue; PrefetchCancelled counts queued readahead invalidated by
	// stream divergence before a worker picked it up.
	PrefetchOps         atomic.Int64
	PrefetchBytes       atomic.Int64
	PrefetchHitBytes    atomic.Int64
	PrefetchWastedBytes atomic.Int64
	PrefetchDropped     atomic.Int64
	PrefetchCancelled   atomic.Int64

	// Sub-cluster fill effectiveness (sub.go, complete.go).
	// SubclusterFills counts sub-clusters written by demand partial
	// fills; SubclusterCompletions counts sub-clusters topped up by the
	// background completer; SubclusterPartialHits counts reads served
	// from a partially-valid cluster; SubclusterDropped counts completion
	// requests refused by the queue or budget.
	SubclusterFills       atomic.Int64
	SubclusterCompletions atomic.Int64
	SubclusterPartialHits atomic.Int64
	SubclusterDropped     atomic.Int64

	// Zero-copy serve effectiveness (zerocopy.go). ZeroCopyExports and
	// ZeroCopyExportBytes count reads translated into container-file
	// extents by PlainExtents (bytes the serve path ships without a
	// user-space copy); MmapReads/MmapReadBytes count warm raw reads
	// served by copy-from-mapping instead of pread.
	ZeroCopyExports     atomic.Int64
	ZeroCopyExportBytes atomic.Int64
	MmapReads           atomic.Int64
	MmapReadBytes       atomic.Int64
}

// CreateOpts parameterises image creation, mirroring qemu-img's knobs plus
// the cache quota of §4.4.
type CreateOpts struct {
	// Size is the virtual disk size in bytes. With a backing file it may
	// be 0, meaning "inherit at open time" is NOT supported — callers
	// pass the base size explicitly (qemu-img does the same resolution).
	Size int64

	// ClusterBits selects the cluster size (9..21); 0 means the 64 KiB
	// default.
	ClusterBits int

	// BackingFile names the backing image ("" for standalone).
	BackingFile string

	// CacheQuota, when non-zero, creates a cache image limited to this
	// many bytes of physical file size (§4.3 create).
	CacheQuota int64

	// Subclusters adds the sub-cluster validity bitmap (sub.go): cold
	// misses fill at sub-cluster instead of cluster granularity. Cache
	// images only, and the cluster must be larger than one sub-cluster
	// (ClusterBits > SubclusterBits).
	Subclusters bool
}

// OpenOpts parameterises opening an image.
type OpenOpts struct {
	// ReadOnly rejects all mutations, including cache fills.
	ReadOnly bool
}

// Image is an open image file. Methods are safe for concurrent use by
// multiple goroutines. mu guards the metadata layer (L1, refcount table,
// allocator, cache-full flag): translations take it shared, mutations take it
// exclusive, and data I/O against allocated clusters runs with no image lock
// held at all (the container is responsible for its own I/O atomicity, and
// bound clusters are never moved or freed). See DESIGN.md "Concurrency
// model".
type Image struct {
	mu sync.RWMutex

	f      backend.File
	hdr    *Header
	ly     layout
	ro     bool
	closed bool

	// readers tracks in-flight lock-free data I/O so Close can drain it
	// before closing the container. Entered under mu (shared) after the
	// closed check; Close flips closed under mu (exclusive) first, so the
	// counter cannot rise once draining starts.
	readers sync.WaitGroup

	// fillMu guards fills, the singleflight registry of in-flight
	// copy-on-read fetches (fill.go). Each entry covers a contiguous
	// cluster-run interval; the list stays as small as the number of
	// concurrent cold misses, so linear scans beat per-cluster map entries.
	// fillMu is a leaf lock: nothing is acquired while holding it.
	fillMu sync.Mutex
	fills  []*fill

	// cbuf pools cluster-sized scratch buffers (CoW merges, metadata
	// zeroing, L2 decodes); sbuf pools variable-length fill spans; extPool
	// pools the per-ReadAt mapped-extent slices (stored as *[]mappedExtent
	// so recycling does not allocate).
	cbuf    bufPool
	sbuf    bufPool
	extPool sync.Pool

	// l1 is the in-memory L1 table (write-through).
	l1 []uint64
	// refTable is the in-memory refcount table (write-through).
	refTable []uint64
	// l2c caches recently used L2 tables.
	l2c *l2Cache
	// nextFree is the next unallocated cluster index (bump allocator).
	nextFree int64

	// backing is the recursion target for unallocated reads; nil for
	// standalone images.
	backing BlockSource

	// isCache and cacheFull implement the §4.3 protocol.
	isCache   bool
	quota     int64
	cacheFull bool

	// compCursor is the next 512-aligned free offset inside a partially
	// filled compressed-blob cluster (0 = none open).
	compCursor int64

	// pf is the attached readahead engine, nil when prefetch is off. The
	// hot path loads it once per hook; EnablePrefetch installs with CAS
	// and Close/detach clears it.
	pf atomic.Pointer[Prefetcher]

	// sub tracks per-sub-cluster validity when the image carries the
	// sub-cluster extension; nil keeps whole-cluster semantics. Immutable
	// after Create/Open.
	sub *subState

	// cp is the attached background completer (complete.go), nil when
	// completion is off; same CAS lifecycle as pf.
	cp atomic.Pointer[Completer]

	// mm is the read-only container mapping installed by EnableMmap
	// (zerocopy.go), nil when the pread path serves warm reads. Released
	// by Close after the reader drain.
	mm atomic.Pointer[mmapRegion]

	stats Stats
}

// MinCacheQuota reports the smallest admissible cache quota for an image of
// the given virtual size and cluster size: the initial metadata (header,
// refcount table and first block, L1 table) counts against the quota, so
// anything smaller is rejected by Create.
func MinCacheQuota(size int64, clusterBits int) int64 {
	return MinCacheQuotaSub(size, clusterBits, false)
}

// MinCacheQuotaSub is MinCacheQuota for images created with (or without) the
// sub-cluster extension, whose bitmap table also counts as initial metadata.
func MinCacheQuotaSub(size int64, clusterBits int, subclusters bool) int64 {
	if clusterBits == 0 {
		clusterBits = DefaultClusterBits
	}
	ly := newLayout(uint32(clusterBits))
	_, _, _, _, metaClusters := createLayout(ly, size, subclusters)
	return metaClusters * ly.clusterSize
}

// createLayout computes the initial file layout for a new image: refcount
// table offset, first refcount block offset, L1 offset, the sub-cluster
// bitmap table offset (0 when absent), and the total metadata cluster count.
func createLayout(ly layout, size int64, sub bool) (refTableOff, firstRefBlockOff, l1Off, subTableOff, metaClusters int64) {
	l1Entries := ly.l1EntriesFor(size)
	l1Clusters := ly.clustersFor(l1Entries * l1EntrySize)
	maxClusters := ly.clustersFor(size) + l1Entries + l1Clusters + 1024
	refBlocks := ceilDiv(maxClusters, ly.refBlockEnts)
	refTableClusters := ly.clustersFor(refBlocks * refTableEntrySz)
	refTableOff = ly.clusterSize
	firstRefBlockOff = refTableOff + refTableClusters*ly.clusterSize
	l1Off = firstRefBlockOff + ly.clusterSize
	metaClusters = 1 + refTableClusters + 1 + l1Clusters
	if sub {
		subTableOff = l1Off + l1Clusters*ly.clusterSize
		metaClusters += subTableClusters(ly, size)
	}
	return refTableOff, firstRefBlockOff, l1Off, subTableOff, metaClusters
}

// Create initialises a new image in f and returns it opened read-write.
func Create(f backend.File, opts CreateOpts) (*Image, error) {
	cb := opts.ClusterBits
	if cb == 0 {
		cb = DefaultClusterBits
	}
	if cb < MinClusterBits || cb > MaxClusterBits {
		return nil, ErrBadClusterBits
	}
	if opts.Size <= 0 {
		return nil, ErrBadSize
	}
	if opts.Subclusters {
		if opts.CacheQuota <= 0 {
			return nil, ErrSubclusterNotCache
		}
		if uint32(cb) <= subBitsFor(uint32(cb)) {
			return nil, ErrSubclusterBits
		}
	}
	ly := newLayout(uint32(cb))
	l1Entries := ly.l1EntriesFor(opts.Size)

	// Layout: [0] header | [1..rt] refcount table | [rt+1] first
	// refcount block | then L1 table clusters (then the sub-cluster
	// bitmap table, when enabled). The refcount table covers the virtual
	// size plus all possible metadata (one L2 table per L1 entry) and a
	// margin, so it rarely needs relocation; relocation is still
	// implemented for correctness.
	refTableOff, firstRefBlockOff, l1Off, subTableOff, metaClusters := createLayout(ly, opts.Size, opts.Subclusters)
	refTableClusters := (firstRefBlockOff - refTableOff) / ly.clusterSize

	hdr := &Header{
		Magic:            Magic,
		Version:          Version,
		ClusterBits:      uint32(cb),
		Size:             uint64(opts.Size),
		L1Size:           uint32(l1Entries),
		L1TableOffset:    uint64(l1Off),
		RefTableOffset:   uint64(refTableOff),
		RefTableClusters: uint32(refTableClusters),
		RefcountOrder:    refcountOrder,
		BackingFile:      opts.BackingFile,
	}
	if opts.CacheQuota > 0 {
		hdr.HasCacheExt = true
		hdr.CacheQuota = uint64(opts.CacheQuota)
		if opts.CacheQuota < metaClusters*ly.clusterSize {
			return nil, ErrQuotaTooSmall
		}
	}
	if opts.Subclusters {
		hdr.HasSubExt = true
		hdr.SubBits = subBitsFor(uint32(cb))
		hdr.SubTableOffset = uint64(subTableOff)
		hdr.IncompatFeatures |= IncompatSubclusters
	}

	hdrBuf, err := hdr.encode(ly.clusterSize)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(metaClusters * ly.clusterSize); err != nil {
		return nil, err
	}
	if err := backend.WriteFull(f, hdrBuf, 0); err != nil {
		return nil, err
	}

	img := &Image{
		f:        f,
		hdr:      hdr,
		ly:       ly,
		l1:       make([]uint64, l1Entries),
		refTable: make([]uint64, refTableClusters*ly.clusterSize/refTableEntrySz),
		l2c:      newL2Cache(defaultL2CacheTables(ly)),
		nextFree: metaClusters,
		isCache:  hdr.IsCache(),
		quota:    opts.CacheQuota,
	}
	if opts.Subclusters {
		img.sub = newSubState(hdr, ly)
	}

	// Install the first refcount block and account all metadata clusters.
	img.refTable[0] = uint64(firstRefBlockOff)
	if err := img.writeRefTableEntry(0); err != nil {
		return nil, err
	}
	for c := int64(0); c < metaClusters; c++ {
		if err := img.setRefcount(c, 1); err != nil {
			return nil, err
		}
	}
	if err := img.syncCacheUsed(); err != nil {
		return nil, err
	}
	return img, nil
}

// Open parses the image in f. The §4.3 permission dance (open backing files
// read-write, then re-open read-only when they turn out not to be cache
// images) is realised by the caller choosing opts.ReadOnly from
// Header.IsCache; see chain.OpenChain.
func Open(f backend.File, opts OpenOpts) (*Image, error) {
	sz, err := f.Size()
	if err != nil {
		return nil, err
	}
	if sz < headerLength {
		return nil, ErrBadHeader
	}
	// The cluster size is inside the header: probe the fixed header
	// first, then read exactly the first cluster, which holds the
	// extensions and backing name. (Keeping this read small matters when
	// the container sits behind a counted or remote medium.)
	var fixed [headerLength]byte
	if err := backend.ReadFull(f, fixed[:], 0); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(fixed[0:]) != Magic {
		return nil, ErrBadMagic
	}
	cb := binary.BigEndian.Uint32(fixed[20:])
	if cb < MinClusterBits || cb > MaxClusterBits {
		return nil, ErrBadClusterBits
	}
	probe := int64(1) << cb
	if probe > sz {
		probe = sz
	}
	buf := make([]byte, probe)
	if err := backend.ReadFull(f, buf, 0); err != nil {
		return nil, err
	}
	hdr, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	ly := newLayout(hdr.ClusterBits)
	if int64(hdr.L1TableOffset)%ly.clusterSize != 0 || int64(hdr.RefTableOffset)%ly.clusterSize != 0 {
		return nil, fmt.Errorf("%w: misaligned tables", ErrCorrupt)
	}

	img := &Image{
		f:        f,
		hdr:      hdr,
		ly:       ly,
		ro:       opts.ReadOnly,
		l2c:      newL2Cache(defaultL2CacheTables(ly)),
		nextFree: ceilDiv(sz, ly.clusterSize),
		isCache:  hdr.IsCache(),
		quota:    int64(hdr.CacheQuota),
	}
	// Load L1.
	img.l1 = make([]uint64, hdr.L1Size)
	l1buf := make([]byte, int64(hdr.L1Size)*l1EntrySize)
	if len(l1buf) > 0 {
		if err := backend.ReadFull(f, l1buf, int64(hdr.L1TableOffset)); err != nil {
			return nil, fmt.Errorf("qcow: reading L1 table: %w", err)
		}
	}
	for i := range img.l1 {
		img.l1[i] = binary.BigEndian.Uint64(l1buf[i*8:])
	}
	// Load refcount table.
	rtBytes := int64(hdr.RefTableClusters) * ly.clusterSize
	img.refTable = make([]uint64, rtBytes/refTableEntrySz)
	rtbuf := make([]byte, rtBytes)
	if err := backend.ReadFull(f, rtbuf, int64(hdr.RefTableOffset)); err != nil {
		return nil, fmt.Errorf("qcow: reading refcount table: %w", err)
	}
	for i := range img.refTable {
		img.refTable[i] = binary.BigEndian.Uint64(rtbuf[i*8:])
	}
	if hdr.HasSubExt {
		img.sub = newSubState(hdr, ly)
		if img.sub.tableOff+img.sub.clusters*8 > sz {
			return nil, fmt.Errorf("%w: subcluster table beyond end of file", ErrCorrupt)
		}
		if err := img.sub.load(f); err != nil {
			return nil, fmt.Errorf("qcow: reading subcluster table: %w", err)
		}
	}
	// A cache image that was filled to (or near) quota in a previous run
	// resumes in the "stop filling" state when it cannot take one more
	// cluster plus worst-case metadata.
	if img.isCache && img.usedBytes()+img.worstCaseFillBytes() > img.quota {
		img.cacheFull = true
	}
	return img, nil
}

// Header returns a copy of the decoded header.
func (img *Image) Header() Header { return *img.hdr }

// Size reports the virtual disk size, implementing BlockSource.
func (img *Image) Size() int64 { return int64(img.hdr.Size) }

// ClusterSize reports the cluster size in bytes.
func (img *Image) ClusterSize() int64 { return img.ly.clusterSize }

// IsCache reports whether this is a cache image (quota > 0).
func (img *Image) IsCache() bool { return img.isCache }

// CacheFull reports whether the cache has stopped filling (space error seen
// or resumed at/near quota).
func (img *Image) CacheFull() bool {
	img.mu.RLock()
	defer img.mu.RUnlock()
	return img.cacheFull
}

// Quota reports the cache quota in bytes (0 for non-cache images).
func (img *Image) Quota() int64 { return img.quota }

// UsedBytes reports the current physical size of the image file — the
// "current size of the cache" header field for cache images.
func (img *Image) UsedBytes() int64 {
	img.mu.RLock()
	defer img.mu.RUnlock()
	return img.usedBytes()
}

func (img *Image) usedBytes() int64 { return img.nextFree * img.ly.clusterSize }

// SetBacking installs the backing source reads recurse to. It must be called
// before reads when the header names a backing file; chain.OpenChain does
// this automatically.
func (img *Image) SetBacking(b BlockSource) {
	img.mu.Lock()
	defer img.mu.Unlock()
	img.backing = b
}

// Backing returns the installed backing source (nil if none).
func (img *Image) Backing() BlockSource {
	img.mu.RLock()
	defer img.mu.RUnlock()
	return img.backing
}

// Stats exposes the image's data-path counters.
func (img *Image) Stats() *Stats { return &img.stats }

// BackingName reports the backing file name recorded in the header.
func (img *Image) BackingName() string { return img.hdr.BackingFile }

// syncCacheUsed persists the cache's current size into the header extension
// ("when closing a QCOW2 image, if the cache quota field is present, the
// (new) current size of the cache is written back", §4.3 close). Harmless
// no-op for non-cache images.
func (img *Image) syncCacheUsed() error {
	if !img.hdr.HasCacheExt {
		return nil
	}
	img.hdr.CacheUsed = uint64(img.usedBytes())
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], img.hdr.CacheUsed)
	return backend.WriteFull(img.f, b[:], img.hdr.cacheExtFileOffset()+8)
}

// Sync flushes metadata and the container.
func (img *Image) Sync() error {
	img.mu.Lock()
	defer img.mu.Unlock()
	if img.closed {
		return ErrClosed
	}
	if !img.ro {
		if err := img.syncCacheUsed(); err != nil {
			return err
		}
	}
	return img.f.Sync()
}

// enterRead registers a lock-free data-path operation against Close. On
// success the caller must balance with img.readers.Done().
func (img *Image) enterRead() error {
	img.mu.RLock()
	if img.closed {
		img.mu.RUnlock()
		return ErrClosed
	}
	img.readers.Add(1)
	img.mu.RUnlock()
	return nil
}

// Close writes back the cache's current size (for cache images), syncs, and
// closes the container. Concurrent reads that already entered the data path
// are drained first; reads arriving after Close starts fail with ErrClosed.
func (img *Image) Close() error {
	img.mu.Lock()
	if img.closed {
		img.mu.Unlock()
		return ErrClosed
	}
	img.closed = true
	img.mu.Unlock()
	// Stop the readahead engine and the completer before draining: their
	// workers register on readers like any data-path user, and new work
	// they would pick up after the closed flip would only fail enterRead
	// anyway.
	if pf := img.pf.Load(); pf != nil {
		pf.Close()
	}
	if cp := img.cp.Load(); cp != nil {
		cp.Close()
	}
	img.readers.Wait()
	img.closeMmap()
	if !img.ro {
		if err := img.syncCacheUsed(); err != nil {
			img.f.Close() //nolint:errcheck // best-effort release on error path
			return err
		}
		if err := img.f.Sync(); err != nil {
			img.f.Close() //nolint:errcheck
			return err
		}
	}
	return img.f.Close()
}
