package qcow

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"vmicache/internal/backend"
)

const testMB = 1 << 20

// newTestImage creates a standalone image on a fresh memory file.
func newTestImage(t *testing.T, size int64, clusterBits int) (*Image, *backend.MemFile) {
	t.Helper()
	f := backend.NewMemFile()
	img, err := Create(f, CreateOpts{Size: size, ClusterBits: clusterBits})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return img, f
}

func TestCreateOpenRoundTrip(t *testing.T) {
	f := backend.NewMemFile()
	img, err := Create(f, CreateOpts{
		Size:        64 * testMB,
		ClusterBits: 16,
		BackingFile: "base.qcow",
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if img.Size() != 64*testMB || img.ClusterSize() != 64<<10 {
		t.Fatalf("geometry: size=%d cluster=%d", img.Size(), img.ClusterSize())
	}
	snap := snapshot(t, f)
	if err := img.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Open(snap, OpenOpts{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	h := got.Header()
	if h.Size != 64*testMB || h.ClusterBits != 16 {
		t.Fatalf("header: %+v", h)
	}
	if h.BackingFile != "base.qcow" || got.BackingName() != "base.qcow" {
		t.Fatalf("backing name: %q", h.BackingFile)
	}
	if got.IsCache() {
		t.Fatal("plain image reported as cache")
	}
}

// snapshot clones the content of a backend.File into a new MemFile; closing
// an image releases its MemFile, so reopen tests snapshot first.
func snapshot(t *testing.T, f backend.File) *backend.MemFile {
	t.Helper()
	sz, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, sz)
	if sz > 0 {
		if err := backend.ReadFull(f, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	out := backend.NewMemFile()
	if err := backend.WriteFull(out, buf, 0); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCreateValidation(t *testing.T) {
	f := backend.NewMemFile()
	if _, err := Create(f, CreateOpts{Size: 0}); !errors.Is(err, ErrBadSize) {
		t.Fatalf("zero size: %v", err)
	}
	if _, err := Create(f, CreateOpts{Size: testMB, ClusterBits: 5}); !errors.Is(err, ErrBadClusterBits) {
		t.Fatalf("tiny clusters: %v", err)
	}
	if _, err := Create(f, CreateOpts{Size: testMB, ClusterBits: 25}); !errors.Is(err, ErrBadClusterBits) {
		t.Fatalf("huge clusters: %v", err)
	}
	// Backing name too large for a 512-byte first cluster.
	long := make([]byte, 600)
	for i := range long {
		long[i] = 'x'
	}
	_, err := Create(backend.NewMemFile(), CreateOpts{
		Size: testMB, ClusterBits: 9, BackingFile: string(long),
	})
	if !errors.Is(err, ErrBackingNameSize) {
		t.Fatalf("long backing name: %v", err)
	}
	// Cache quota smaller than initial metadata.
	_, err = Create(backend.NewMemFile(), CreateOpts{
		Size: testMB, ClusterBits: 16, CacheQuota: 1,
	})
	if !errors.Is(err, ErrQuotaTooSmall) {
		t.Fatalf("tiny quota: %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	f := backend.NewMemFile()
	if _, err := Open(f, OpenOpts{}); err == nil {
		t.Fatal("opened empty file")
	}
	if err := backend.WriteFull(f, bytes.Repeat([]byte{0x42}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f, OpenOpts{}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage: %v", err)
	}
}

func TestStandaloneReadsZero(t *testing.T) {
	img, _ := newTestImage(t, 4*testMB, 12)
	buf := make([]byte, 8192)
	for i := range buf {
		buf[i] = 0xee
	}
	if err := backend.ReadFull(img, buf, 12345); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestWriteReadRoundTripCrossCluster(t *testing.T) {
	img, _ := newTestImage(t, 4*testMB, 12) // 4 KiB clusters
	rnd := rand.New(rand.NewSource(1))
	data := make([]byte, 3*4096+555) // spans 4+ clusters, unaligned
	rnd.Read(data)
	off := int64(4096 - 100)
	if err := backend.WriteFull(img, data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := backend.ReadFull(img, got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	// Neighbouring bytes must still be zero.
	edge := make([]byte, 100)
	if err := backend.ReadFull(img, edge, off-100); err != nil {
		t.Fatal(err)
	}
	for _, b := range edge {
		if b != 0 {
			t.Fatal("write spilled before start")
		}
	}
}

func TestReadAtEOFSemantics(t *testing.T) {
	img, _ := newTestImage(t, 1000, 9) // unaligned virtual size
	buf := make([]byte, 2000)
	n, err := img.ReadAt(buf, 0)
	if n != 1000 || err != io.EOF {
		t.Fatalf("read past end: n=%d err=%v", n, err)
	}
	if _, err := img.ReadAt(buf, 1000); err != io.EOF {
		t.Fatalf("read at end: %v", err)
	}
	if _, err := img.ReadAt(buf, -5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative: %v", err)
	}
	if _, err := img.WriteAt(buf, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write past end: %v", err)
	}
}

func TestUnalignedVirtualSizeTailCluster(t *testing.T) {
	img, _ := newTestImage(t, 5000, 12) // two clusters, second partial
	data := bytes.Repeat([]byte{7}, 5000)
	if err := backend.WriteFull(img, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5000)
	if err := backend.ReadFull(img, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("tail cluster mismatch")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	f := backend.NewMemFile()
	img, err := Create(f, CreateOpts{Size: 8 * testMB, ClusterBits: 13})
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(2))
	data := make([]byte, 100<<10)
	rnd.Read(data)
	if err := backend.WriteFull(img, data, 777777); err != nil {
		t.Fatal(err)
	}
	if err := img.Sync(); err != nil {
		t.Fatal(err)
	}
	snap := snapshot(t, f)
	if err := img.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(snap, OpenOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := backend.ReadFull(re, got, 777777); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across reopen")
	}
	res, err := re.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("check after reopen: %s", res)
	}
}

func TestCoWReadPassthroughGranularity(t *testing.T) {
	// Base contains a pattern; CoW reads must fetch only the requested
	// bytes (on-demand transfer), not whole clusters.
	base := backend.NewMemFileSize(4 * testMB)
	pat := make([]byte, 4*testMB)
	for i := range pat {
		pat[i] = byte(i * 7)
	}
	if err := backend.WriteFull(base, pat, 0); err != nil {
		t.Fatal(err)
	}
	counted := backend.NewCountingFile(base, nil)

	img, _ := newTestImage(t, 4*testMB, 16)
	img.SetBacking(RawSource{R: counted, N: 4 * testMB})

	buf := make([]byte, 100)
	if err := backend.ReadFull(img, buf, 50000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pat[50000:50100]) {
		t.Fatal("passthrough data mismatch")
	}
	if got := counted.Counters().ReadBytes.Load(); got != 100 {
		t.Fatalf("backing traffic = %d, want exactly 100 (request granularity)", got)
	}
	if got := img.Stats().BackingBytes.Load(); got != 100 {
		t.Fatalf("stats backing bytes = %d", got)
	}
}

func TestCoWWriteFillsPartialCluster(t *testing.T) {
	base := backend.NewMemFileSize(testMB)
	pat := bytes.Repeat([]byte{0xAB}, testMB)
	if err := backend.WriteFull(base, pat, 0); err != nil {
		t.Fatal(err)
	}
	img, _ := newTestImage(t, testMB, 12) // 4 KiB clusters
	img.SetBacking(RawSource{R: base, N: testMB})

	// Partial-cluster write: the rest of the cluster must come from base.
	if err := backend.WriteFull(img, []byte{1, 2, 3}, 8192+100); err != nil {
		t.Fatal(err)
	}
	if img.Stats().CowFillBytes.Load() != 4096 {
		t.Fatalf("cow fill bytes = %d", img.Stats().CowFillBytes.Load())
	}
	got := make([]byte, 4096)
	if err := backend.ReadFull(img, got, 8192); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAB}, 4096)
	copy(want[100:], []byte{1, 2, 3})
	if !bytes.Equal(got, want) {
		t.Fatal("CoW merge mismatch")
	}
	if ok, _ := img.Allocated(8192); !ok {
		t.Fatal("cluster not allocated after write")
	}
	if ok, _ := img.Allocated(0); ok {
		t.Fatal("untouched cluster allocated")
	}
}

func TestCoWFullClusterWriteSkipsFill(t *testing.T) {
	base := backend.NewMemFileSize(testMB)
	img, _ := newTestImage(t, testMB, 12)
	counted := backend.NewCountingFile(base, nil)
	img.SetBacking(RawSource{R: counted, N: testMB})
	full := bytes.Repeat([]byte{9}, 4096)
	if err := backend.WriteFull(img, full, 4096); err != nil {
		t.Fatal(err)
	}
	if counted.Counters().ReadBytes.Load() != 0 {
		t.Fatal("full-cluster write fetched from base")
	}
}

func TestWriteInPlaceSecondTime(t *testing.T) {
	img, _ := newTestImage(t, testMB, 12)
	if err := backend.WriteFull(img, []byte("one"), 100); err != nil {
		t.Fatal(err)
	}
	before, _ := img.AllocatedDataClusters()
	if err := backend.WriteFull(img, []byte("two"), 100); err != nil {
		t.Fatal(err)
	}
	after, _ := img.AllocatedDataClusters()
	if before != after {
		t.Fatalf("rewrite allocated a new cluster: %d -> %d", before, after)
	}
	got := make([]byte, 3)
	if err := backend.ReadFull(img, got, 100); err != nil {
		t.Fatal(err)
	}
	if string(got) != "two" {
		t.Fatalf("got %q", got)
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	f := backend.NewMemFile()
	img, err := Create(f, CreateOpts{Size: testMB, ClusterBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.WriteFull(img, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	snap := snapshot(t, f)
	img.Close() //nolint:errcheck

	ro, err := Open(snap, OpenOpts{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.WriteAt([]byte("y"), 0); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write on RO image: %v", err)
	}
	buf := make([]byte, 1)
	if err := backend.ReadFull(ro, buf, 0); err != nil || buf[0] != 'x' {
		t.Fatalf("RO read: %v %q", err, buf)
	}
}

func TestClosedImageOps(t *testing.T) {
	img, _ := newTestImage(t, testMB, 12)
	if err := img.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := img.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := img.WriteAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if err := img.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	if err := img.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}

func TestCheckDetectsCorruptRefcount(t *testing.T) {
	img, f := newTestImage(t, testMB, 12)
	if err := backend.WriteFull(img, []byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	res, err := img.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("fresh image not OK: %s", res)
	}
	// Smash the refcount of the header cluster (cluster 0): refblock 0
	// lives right after the refcount table.
	h := img.Header()
	rbOff := int64(h.RefTableOffset) + int64(h.RefTableClusters)*img.ClusterSize()
	if err := backend.WriteFull(f, []byte{0, 9}, rbOff); err != nil {
		t.Fatal(err)
	}
	res, err = img.Check()
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() {
		t.Fatal("check missed corrupted refcount")
	}
}

func TestMapExtents(t *testing.T) {
	img, _ := newTestImage(t, 16*4096, 12)
	// Allocate clusters 1,2 and 5.
	if err := backend.WriteFull(img, bytes.Repeat([]byte{1}, 2*4096), 4096); err != nil {
		t.Fatal(err)
	}
	if err := backend.WriteFull(img, []byte{2}, 5*4096); err != nil {
		t.Fatal(err)
	}
	ext, err := img.Map()
	if err != nil {
		t.Fatal(err)
	}
	// Expect: hole[0,4096) alloc[4096,3*4096) hole alloc[5*4096,6*4096) hole.
	if len(ext) != 5 {
		t.Fatalf("extents = %d: %+v", len(ext), ext)
	}
	if ext[0].Allocated || ext[0].Length != 4096 {
		t.Fatalf("extent 0: %+v", ext[0])
	}
	if !ext[1].Allocated || ext[1].Start != 4096 || ext[1].Length != 2*4096 {
		t.Fatalf("extent 1: %+v", ext[1])
	}
	if !ext[3].Allocated || ext[3].Start != 5*4096 {
		t.Fatalf("extent 3: %+v", ext[3])
	}
	var total int64
	for _, e := range ext {
		total += e.Length
	}
	if total != img.Size() {
		t.Fatalf("extents cover %d of %d", total, img.Size())
	}
}

func TestInfoReportsGeometry(t *testing.T) {
	img, _ := newTestImage(t, testMB, 12)
	if err := backend.WriteFull(img, []byte("z"), 0); err != nil {
		t.Fatal(err)
	}
	in, err := img.Info()
	if err != nil {
		t.Fatal(err)
	}
	if in.VirtualSize != testMB || in.ClusterSize != 4096 || in.DataClusters != 1 {
		t.Fatalf("info: %+v", in)
	}
	if in.IsCache {
		t.Fatal("plain image flagged as cache")
	}
	if s := in.String(); s == "" {
		t.Fatal("empty info render")
	}
}

func TestRefTableGrowthRelocation(t *testing.T) {
	img, _ := newTestImage(t, testMB, 9)
	before := int64(img.Header().RefTableClusters)
	// Force a relocation directly (natural growth needs very large
	// images thanks to the creation margin).
	if err := img.growRefTable(int64(len(img.refTable)) + 10); err != nil {
		t.Fatalf("growRefTable: %v", err)
	}
	after := int64(img.Header().RefTableClusters)
	if after <= before {
		t.Fatalf("table did not grow: %d -> %d", before, after)
	}
	// Everything must still check out, with the old table clusters freed
	// (they are neither errors nor leaks after explicit zeroing).
	res, err := img.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("check after growth: %s\n%s", res, img.debugString())
	}
	// And the image must still work.
	if err := backend.WriteFull(img, []byte("post-growth"), 5000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 11)
	if err := backend.ReadFull(img, got, 5000); err != nil {
		t.Fatal(err)
	}
	if string(got) != "post-growth" {
		t.Fatal("data mismatch after growth")
	}
}

func TestL2CacheEvictionPreservesCorrectness(t *testing.T) {
	img, _ := newTestImage(t, 8*testMB, 9) // 512 B clusters: many L2 tables
	img.l2c = newL2Cache(2)                // brutal eviction pressure
	rnd := rand.New(rand.NewSource(5))
	type w struct {
		off  int64
		data []byte
	}
	var writes []w
	for i := 0; i < 200; i++ {
		d := make([]byte, 512)
		rnd.Read(d)
		off := rnd.Int63n(8*testMB - 512)
		writes = append(writes, w{off, d})
		if err := backend.WriteFull(img, d, off); err != nil {
			t.Fatal(err)
		}
	}
	// Later writes may overlap earlier ones; replay onto a reference.
	ref := make([]byte, 8*testMB)
	for _, wr := range writes {
		copy(ref[wr.off:], wr.data)
	}
	buf := make([]byte, 512)
	for _, wr := range writes {
		if err := backend.ReadFull(img, buf, wr.off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, ref[wr.off:wr.off+512]) {
			t.Fatalf("mismatch at %d under L2 eviction", wr.off)
		}
	}
	if img.stats.L2CacheMisses.Load() == 0 {
		t.Fatal("expected L2 cache misses under eviction pressure")
	}
}

func TestRawSourcePadding(t *testing.T) {
	mf := backend.NewMemFileSize(100)
	if err := backend.WriteFull(mf, bytes.Repeat([]byte{5}, 100), 0); err != nil {
		t.Fatal(err)
	}
	rs := RawSource{R: mf, N: 100}
	buf := make([]byte, 50)
	if _, err := rs.ReadAt(buf, 80); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if buf[i] != 5 {
			t.Fatal("data before pad wrong")
		}
	}
	for i := 20; i < 50; i++ {
		if buf[i] != 0 {
			t.Fatal("pad not zero")
		}
	}
	if _, err := rs.ReadAt(buf, 200); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fully-past-end read not zero")
		}
	}
	if rs.Size() != 100 {
		t.Fatal("RawSource size")
	}
}

// Property-style test: random guest writes then reads against a reference
// buffer, over a chain with a patterned base, followed by a metadata check.
func TestRandomOpsMatchReference(t *testing.T) {
	const size = 2 * testMB
	basePat := make([]byte, size)
	rnd := rand.New(rand.NewSource(11))
	rnd.Read(basePat)
	base := backend.NewMemFileSize(size)
	if err := backend.WriteFull(base, basePat, 0); err != nil {
		t.Fatal(err)
	}

	for _, cb := range []int{9, 12, 16} {
		img, _ := newTestImage(t, size, cb)
		img.SetBacking(RawSource{R: base, N: size})
		ref := make([]byte, size)
		copy(ref, basePat)

		for i := 0; i < 300; i++ {
			off := rnd.Int63n(size - 1)
			n := rnd.Int63n(20000) + 1
			if off+n > size {
				n = size - off
			}
			if rnd.Intn(2) == 0 {
				d := make([]byte, n)
				rnd.Read(d)
				if err := backend.WriteFull(img, d, off); err != nil {
					t.Fatalf("cb=%d write: %v", cb, err)
				}
				copy(ref[off:], d)
			} else {
				got := make([]byte, n)
				if err := backend.ReadFull(img, got, off); err != nil {
					t.Fatalf("cb=%d read: %v", cb, err)
				}
				if !bytes.Equal(got, ref[off:off+n]) {
					t.Fatalf("cb=%d mismatch at %d+%d", cb, off, n)
				}
			}
		}
		res, err := img.Check()
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK() {
			t.Fatalf("cb=%d check: %s", cb, res)
		}
	}
}

func TestSortedKeysHelper(t *testing.T) {
	m := map[int64]int64{3: 1, 1: 1, 2: 1}
	ks := sortedKeys(m)
	if len(ks) != 3 || ks[0] != 1 || ks[2] != 3 {
		t.Fatalf("sortedKeys = %v", ks)
	}
}
