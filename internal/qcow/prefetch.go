package qcow

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"vmicache/internal/prefetch"
)

// Prefetcher drives background copy-on-read fills for a cache image from the
// adaptive readahead policy in internal/prefetch. ReadAt feeds every guest
// read to the detector; confirmed sequential streams yield bounded readahead
// requests that worker goroutines turn into ordinary singleflight fills via
// claimRun/leadFill — the same protocol guest misses use, so a prefetch and
// a concurrent guest miss on the same run still perform exactly one backing
// fetch between them.
//
// The engine obeys the image's lifecycle rules: workers register on
// img.readers like any lock-free data-path operation, go quiescent the
// moment the §4.3 space error trips (cacheFull), and are stopped by
// Image.Close after the closed flag flips but before the reader drain, so
// shutdown never races a background fill.
//
// Effectiveness is tracked per cluster: a prefetch-led fill marks the bound
// clusters in a bitmap; the first guest read of a marked cluster clears its
// bit and counts PrefetchHitBytes, and whatever is still marked when the
// prefetcher detaches counts PrefetchWastedBytes. The mark/clear path is a
// couple of word-sized atomics, keeping the warm-read hot path free of
// allocations and locks.
type Prefetcher struct {
	img    *Image
	det    *prefetch.Detector
	budget *prefetch.Budget
	reqs   chan prefetch.Req
	stop   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	// marks holds one bit per virtual cluster: set when a prefetch-led
	// fill bound it, cleared by the first guest read that touches it.
	marks []atomic.Uint64

	// known holds one bit per virtual cluster that is known to be
	// allocated already. Cluster allocation is monotonic for the life of
	// an open image, so the bits are safe to set and test lock-free; a
	// stale (unset) bit only costs a redundant request. Saturated
	// sequential streams over warm regions are suppressed here with a
	// couple of word loads instead of waking a worker to rediscover the
	// allocation under the image lock.
	known []atomic.Uint64
}

// EnablePrefetch attaches an adaptive readahead engine to a writable cache
// image. Zero-value cfg fields take the package defaults. The returned
// Prefetcher is owned by the image: Image.Close stops it, and an explicit
// Close is only needed to detach early (e.g. to read the wasted-bytes
// counter before the image closes). Enabling twice is an error.
func (img *Image) EnablePrefetch(cfg prefetch.Config) (*Prefetcher, error) {
	if !img.isCache {
		return nil, ErrPrefetchNotCache
	}
	if img.ro {
		return nil, ErrReadOnly
	}
	cfg = cfg.WithDefaults()
	clusters := ceilDiv(int64(img.hdr.Size), img.ly.clusterSize)
	pf := &Prefetcher{
		img:    img,
		det:    prefetch.NewDetector(cfg),
		budget: prefetch.NewBudget(cfg.Budget),
		reqs:   make(chan prefetch.Req, cfg.QueueLen),
		stop:   make(chan struct{}),
		marks:  make([]atomic.Uint64, (clusters+63)/64),
		known:  make([]atomic.Uint64, (clusters+63)/64),
	}
	if !img.pf.CompareAndSwap(nil, pf) {
		return nil, ErrPrefetchEnabled
	}
	pf.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go pf.worker()
	}
	return pf, nil
}

// Close detaches the prefetcher: workers are stopped and drained, and every
// prefetched cluster never read by the guest is charged to
// PrefetchWastedBytes. Idempotent; also invoked by Image.Close.
func (pf *Prefetcher) Close() {
	pf.once.Do(func() {
		close(pf.stop)
		pf.wg.Wait()
		// Return reservations of requests that never reached a worker.
		for {
			select {
			case req := <-pf.reqs:
				pf.budget.Release(req.Len)
			default:
				pf.finishDetach()
				return
			}
		}
	})
}

func (pf *Prefetcher) finishDetach() {
	cs := pf.img.ly.clusterSize
	var wasted int64
	for i := range pf.marks {
		wasted += int64(bits.OnesCount64(pf.marks[i].Load()))
	}
	pf.img.stats.PrefetchWastedBytes.Add(wasted * cs)
	pf.img.pf.CompareAndSwap(pf, nil)
}

// InFlight reports the bytes of readahead currently queued or being filled.
func (pf *Prefetcher) InFlight() int64 { return pf.budget.InUse() }

// observe feeds one guest read to the detector and enqueues any resulting
// readahead. Called on the ReadAt hot path: it must not block or allocate.
func (pf *Prefetcher) observe(off, n int64) {
	req, ok := pf.det.Observe(off, n)
	if !ok {
		return
	}
	// Clamp to the virtual disk; streams at EOF stop issuing.
	if size := int64(pf.img.hdr.Size); req.Off+req.Len > size {
		if req.Off >= size {
			return
		}
		req.Len = size - req.Off
	}
	if pf.allKnown(req.Off, req.Len) {
		return
	}
	if !pf.budget.TryAcquire(req.Len) {
		pf.img.stats.PrefetchDropped.Add(1)
		return
	}
	select {
	case pf.reqs <- req:
	default:
		pf.budget.Release(req.Len)
		pf.img.stats.PrefetchDropped.Add(1)
	}
}

func (pf *Prefetcher) worker() {
	defer pf.wg.Done()
	for {
		select {
		case <-pf.stop:
			return
		case req := <-pf.reqs:
			if pf.det.Valid(req) {
				pf.run(req)
			} else {
				pf.img.stats.PrefetchCancelled.Add(1)
			}
			pf.budget.Release(req.Len)
		}
	}
}

// run fills the unallocated cluster runs of [req.Off, req.Off+req.Len)
// through the singleflight protocol. Runs already claimed by a guest miss
// (or another worker) are skipped, not waited on: the claimer's fetch is
// the one the readahead wanted to issue anyway.
func (pf *Prefetcher) run(req prefetch.Req) {
	img := pf.img
	if err := img.enterRead(); err != nil {
		return
	}
	defer img.readers.Done()
	cs := img.ly.clusterSize
	vc := req.Off / cs
	end := ceilDiv(req.Off+req.Len, cs)
	for vc < end {
		img.mu.RLock()
		if img.cacheFull || img.backing == nil {
			img.mu.RUnlock()
			return
		}
		backing := img.backing
		rl := runLookup{img: img}
		scanned := vc
		for vc < end {
			m, err := rl.lookup(vc)
			if err != nil {
				img.mu.RUnlock()
				return
			}
			if m.dataOff == 0 {
				break
			}
			vc++
		}
		if vc >= end {
			img.mu.RUnlock()
			// The whole tail was already allocated: remember it so the
			// detector stops re-requesting this region.
			pf.setKnown(scanned, vc)
			return
		}
		run, err := img.unallocatedRun(&rl, vc, end*cs)
		img.mu.RUnlock()
		if scanned < vc {
			pf.setKnown(scanned, vc)
		}
		if err != nil {
			return
		}
		f, leader := img.claimRun(vc, run)
		next := f.vc + f.claimed
		if leader {
			f.prefetch = true
			img.leadFill(f, backing)
			err = f.err
		}
		f.release()
		if err != nil {
			return
		}
		vc = next
	}
}

// markPrefetched records that a prefetch-led fill bound clusters
// [vc, vc+k). Called by leadFill under the image write lock, before waiters
// are released, so a guest read served from the fill buffer always sees its
// marks.
func (pf *Prefetcher) markPrefetched(vc, k int64) {
	setBits(pf.marks, vc, vc+k)
	setBits(pf.known, vc, vc+k)
}

// setKnown records clusters [c0, c1) as allocated.
func (pf *Prefetcher) setKnown(c0, c1 int64) { setBits(pf.known, c0, c1) }

// allKnown reports whether every cluster covering [off, off+n) is already
// known to be allocated. Lock-free: a handful of word loads.
func (pf *Prefetcher) allKnown(off, n int64) bool {
	cs := pf.img.ly.clusterSize
	c1 := (off + n - 1) / cs
	for c := off / cs; c <= c1; {
		last := minI64(c1, c|63)
		mask := spanMask(c, last)
		if pf.known[c>>6].Load()&mask != mask {
			return false
		}
		c = last + 1
	}
	return true
}

// setBits sets the bits for clusters [c0, c1) word by word.
func setBits(words []atomic.Uint64, c0, c1 int64) {
	for c := c0; c < c1; {
		last := minI64(c1-1, c|63)
		w := &words[c>>6]
		mask := spanMask(c, last)
		for {
			old := w.Load()
			if old|mask == old || w.CompareAndSwap(old, old|mask) {
				break
			}
		}
		c = last + 1
	}
}

// markRead clears the marks of the clusters covering [pos, pos+n) and
// credits the cleared ones to PrefetchHitBytes. The caller just read the
// clusters from the cache container, proving them allocated, so they also
// enter the known bitmap. One atomic word op covers up to 64 clusters, so
// the warm-read cost is a handful of loads.
func (pf *Prefetcher) markRead(pos, n int64) {
	cs := pf.img.ly.clusterSize
	c0 := pos / cs
	c1 := (pos + n - 1) / cs
	setBits(pf.known, c0, c1+1)
	for c := c0; c <= c1; {
		last := minI64(c1, c|63)
		w := &pf.marks[c>>6]
		mask := spanMask(c, last)
		for {
			old := w.Load()
			hit := old & mask
			if hit == 0 {
				break
			}
			if w.CompareAndSwap(old, old&^hit) {
				pf.img.stats.PrefetchHitBytes.Add(int64(bits.OnesCount64(hit)) * cs)
				break
			}
		}
		c = last + 1
	}
}

// spanMask builds the bit mask for clusters [c, last] within one 64-bit
// word (c and last must share c>>6).
func spanMask(c, last int64) uint64 {
	span := uint(last - c + 1)
	if span == 64 {
		return ^uint64(0)
	}
	return ((uint64(1) << span) - 1) << uint(c&63)
}
