package qcow

import (
	"encoding/binary"
	"sync/atomic"
	"time"

	"vmicache/internal/backend"
)

// Sub-cluster allocation tracking. Whole-cluster copy-on-read is what makes
// 64 KiB cache clusters amplify cold-boot base traffic in Fig. 9: every miss
// fetches a full cluster even when the guest asked for one page. The
// sub-cluster extension keeps the cluster as the allocation unit but tracks
// validity at sub-cluster (4 KiB) granularity in a persistent bitmap table —
// one big-endian uint64 word per virtual cluster, fixed at create time right
// after the initial metadata. A cold miss then fetches only the sub-clusters
// the request touches, and the background completer (complete.go) tops the
// cluster up later.
//
// Invariants the bitmap adds (verified by Check):
//
//   - a cluster's word is non-zero iff the cluster is allocated raw: data is
//     written before its bits are persisted, and the bits are persisted
//     before the L2 bind, so a crash tears into a detectable state (bits set
//     for an unallocated cluster, or an allocated cluster with no bits);
//   - no bits are set above the cluster's tail mask (sub-clusters past the
//     virtual size).
//
// Sub-fills reuse the fill singleflight: an in-place fill claims the
// single-cluster run [vc, vc+1), which both serialises writers of the same
// cluster and excludes the whole-run fills (claims never overlap). A
// sub-fill leader leaves f.fetched == 0, so waiters re-translate instead of
// reading a buffer that only covers the leader's sub-clusters.

// subState is the in-memory mirror of the sub-cluster bitmap table.
type subState struct {
	subBits  uint32
	subSize  int64
	per      int64 // sub-clusters per cluster (<= 64)
	tableOff int64
	clusters int64 // virtual clusters covered by the table
	size     int64 // virtual image size

	// words holds one validity word per virtual cluster (bit i = sub-cluster
	// i valid); full holds one bit per cluster, set once the word reaches
	// the cluster's full mask — the lock-free hot-path test that keeps warm
	// reads off the bitmap entirely.
	words []atomic.Uint64
	full  []atomic.Uint64
}

// subTableClusters returns how many clusters the bitmap table occupies for a
// virtual size.
func subTableClusters(ly layout, size int64) int64 {
	return ly.clustersFor(ly.clustersFor(size) * 8)
}

func newSubState(hdr *Header, ly layout) *subState {
	clusters := ly.clustersFor(int64(hdr.Size))
	sb := hdr.SubBits
	return &subState{
		subBits:  sb,
		subSize:  int64(1) << sb,
		per:      ly.clusterSize >> sb,
		tableOff: int64(hdr.SubTableOffset),
		clusters: clusters,
		size:     int64(hdr.Size),
		words:    make([]atomic.Uint64, clusters),
		full:     make([]atomic.Uint64, (clusters+63)/64),
	}
}

// load reads the on-disk table into memory and derives the full bits.
func (s *subState) load(f backend.File) error {
	buf := make([]byte, s.clusters*8)
	if err := backend.ReadFull(f, buf, s.tableOff); err != nil {
		return err
	}
	for vc := int64(0); vc < s.clusters; vc++ {
		w := binary.BigEndian.Uint64(buf[vc*8:])
		s.words[vc].Store(w)
		if w == s.fullMask(vc) {
			s.setFullBit(vc)
		}
	}
	return nil
}

// fullMask is the word value meaning "every sub-cluster inside the virtual
// size is valid". The image's final cluster may cover fewer sub-clusters.
func (s *subState) fullMask(vc int64) uint64 {
	n := s.per
	if tail := s.size - vc*(s.per<<s.subBits); tail < s.per<<s.subBits {
		n = ceilDiv(tail, s.subSize)
	}
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// maskRange returns the bits of the sub-clusters intersecting the in-cluster
// byte range [b0, b1).
func (s *subState) maskRange(b0, b1 int64) uint64 {
	s0 := b0 >> s.subBits
	s1 := (b1 + s.subSize - 1) >> s.subBits
	if s1-s0 >= 64 {
		return ^uint64(0) << s0
	}
	return ((uint64(1) << (s1 - s0)) - 1) << s0
}

// isFull is the hot-path test: one atomic load, no allocation.
func (s *subState) isFull(vc int64) bool {
	return s.full[vc>>6].Load()&(uint64(1)<<(vc&63)) != 0
}

func (s *subState) setFullBit(vc int64) {
	w := &s.full[vc>>6]
	bit := uint64(1) << (vc & 63)
	for {
		old := w.Load()
		if old&bit != 0 || w.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// or merges bits into a cluster's word and returns the new value; the full
// bit is derived by the caller after persisting.
func (s *subState) or(vc int64, bits uint64) uint64 {
	w := &s.words[vc]
	for {
		old := w.Load()
		if old&bits == bits {
			return old
		}
		if w.CompareAndSwap(old, old|bits) {
			return old | bits
		}
	}
}

// persistWord write-throughs one cluster's word to the on-disk table.
// Caller holds img.mu exclusively (same discipline as writeL2Entry).
func (img *Image) persistSubWord(vc int64, w uint64) error {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], w)
	return backend.WriteFull(img.f, b[:], img.sub.tableOff+vc*8)
}

// publishSubBits merges freshly filled bits under the write lock: memory,
// then disk, then the full-bit fast path. Data for the bits must already be
// on disk. Returns the new word.
func (img *Image) publishSubBits(vc int64, bits uint64) (uint64, error) {
	s := img.sub
	nw := s.or(vc, bits)
	if err := img.persistSubWord(vc, nw); err != nil {
		return nw, err
	}
	if nw == s.fullMask(vc) {
		s.setFullBit(vc)
	}
	return nw, nil
}

// subReadPartial serves seg (guest range starting at pos, lying inside the
// allocated raw cluster vc at dataOff) when the cluster is not known full.
// Valid sub-clusters are read in place; missing ones are either demand-filled
// through the fill singleflight (fillable) or passed through to the backing
// source. Returns bytes served; 0 means the caller must re-translate (a fill
// just changed the validity picture). Called with no image lock held.
func (img *Image) subReadPartial(vc, pos int64, seg []byte, dataOff int64, backing BlockSource, fillable bool) (int, error) {
	s := img.sub
	cs := img.ly.clusterSize
	b0 := pos - vc*cs
	b1 := b0 + int64(len(seg))
	required := s.maskRange(b0, b1)
	w := s.words[vc].Load()

	if required&^w == 0 {
		// Every requested sub-cluster is valid: an in-place hit.
		if err := backend.ReadFull(img.f, seg, dataOff+b0); err != nil {
			return 0, err
		}
		img.stats.LocalBytes.Add(int64(len(seg)))
		img.stats.SubclusterPartialHits.Add(1)
		if pf := img.pf.Load(); pf != nil {
			pf.markRead(pos, int64(len(seg)))
		}
		return len(seg), nil
	}

	if !fillable || backing == nil {
		// Read-only attach (or no backing): serve valid sub-clusters from
		// the cache, pass the rest through, sub-cluster run by run.
		for o := b0; o < b1; {
			sc := o >> s.subBits
			valid := w&(uint64(1)<<sc) != 0
			end := o
			for end < b1 && (w&(uint64(1)<<(end>>s.subBits)) != 0) == valid {
				end = minI64((end>>s.subBits+1)<<s.subBits, b1)
			}
			part := seg[o-b0 : end-b0]
			if valid {
				if err := backend.ReadFull(img.f, part, dataOff+o); err != nil {
					return 0, err
				}
				img.stats.LocalBytes.Add(int64(len(part)))
			} else if backing != nil {
				if err := img.readBacking(backing, part, vc*cs+o); err != nil {
					return 0, err
				}
			} else {
				clear(part)
			}
			o = end
		}
		img.stats.SubclusterPartialHits.Add(1)
		return len(seg), nil
	}

	// Demand sub-fill: claim the single-cluster run so concurrent fillers
	// of this cluster (guest misses, the completer) serialise.
	f, leader := img.claimRun(vc, 1)
	defer f.release()
	if leader {
		img.subLeadFill(f, vc, required, backing, &img.stats.SubclusterFills)
	} else {
		img.stats.FillWaits.Add(1)
		<-f.done
	}
	if f.err != nil {
		return 0, f.err
	}
	return 0, nil // bits changed; re-translate and hit the in-place path
}

// subLeadFill fetches the requested-but-missing sub-clusters of one
// allocated cluster from the backing source, writes them in place, and
// publishes the bits. counter selects the metric (demand fills vs completer
// completions). The caller holds the claim on [vc, vc+1).
func (img *Image) subLeadFill(f *fill, vc int64, required uint64, backing BlockSource, counter *atomic.Int64) {
	start := time.Now()
	defer func() {
		img.unclaim(f)
		close(f.done)
	}()
	s := img.sub
	cs := img.ly.clusterSize

	// Re-validate under the read lock: the cluster cannot move or be
	// freed, but its word may have grown since the caller's probe.
	img.mu.RLock()
	m, err := img.lookup(vc)
	if err != nil {
		img.mu.RUnlock()
		f.err = err
		return
	}
	dataOff := m.dataOff
	compressed := m.compressed
	w := s.words[vc].Load()
	img.mu.RUnlock()
	if dataOff == 0 || compressed {
		return // raced with a reshape we don't handle; waiters re-translate
	}
	missing := required &^ w & s.fullMask(vc)
	if missing == 0 {
		return
	}

	// Fetch and write each contiguous missing run: data first, bits after.
	var fetched, nsubs int64
	for s0 := int64(0); s0 < s.per; {
		if missing&(uint64(1)<<s0) == 0 {
			s0++
			continue
		}
		s1 := s0
		for s1 < s.per && missing&(uint64(1)<<s1) != 0 {
			s1++
		}
		segStart := vc*cs + s0*s.subSize
		segLen := (s1 - s0) * s.subSize
		fetchLen := minI64(segLen, s.size-segStart)
		buf := img.sbuf.get(int(segLen))
		clear(buf[fetchLen:])
		err := img.readBacking(backing, buf[:fetchLen], segStart)
		if err == nil {
			err = backend.WriteFull(img.f, buf, dataOff+s0*s.subSize)
		}
		img.sbuf.put(buf)
		if err != nil {
			f.err = err
			return
		}
		fetched += fetchLen
		nsubs += s1 - s0
		s0 = s1
	}

	img.mu.Lock()
	nw, err := img.publishSubBits(vc, missing)
	counter.Add(nsubs)
	img.stats.CacheFillOps.Add(1)
	img.stats.CacheFillBytes.Add(fetched)
	img.mu.Unlock()
	if err != nil {
		f.err = err
		return
	}
	if nw != s.fullMask(vc) {
		img.notifyCompleter(vc)
	}
	img.stats.FillLatency.Observe(time.Since(start).Nanoseconds())
	// f.fetched stays 0: the fill was in place, so waiters re-translate.
}

// subMarkFull publishes a freshly written whole cluster (prefetch fills and
// the completer's final state). Caller holds img.mu exclusively and has the
// cluster's data fully on disk.
func (img *Image) subMarkFull(vc int64) error {
	_, err := img.publishSubBits(vc, img.sub.fullMask(vc))
	return err
}

// SubclusterState summarises the bitmap for Info and qimg.
type SubclusterState struct {
	SubclusterSize  int64
	PartialClusters int64 // allocated clusters not yet fully valid
	FullClusters    int64
}

// Subclusters reports the image's sub-cluster configuration (nil state when
// the extension is absent).
func (img *Image) Subclusters() (SubclusterState, bool) {
	s := img.sub
	if s == nil {
		return SubclusterState{}, false
	}
	st := SubclusterState{SubclusterSize: s.subSize}
	for vc := int64(0); vc < s.clusters; vc++ {
		switch w := s.words[vc].Load(); {
		case w == 0:
		case w == s.fullMask(vc):
			st.FullClusters++
		default:
			st.PartialClusters++
		}
	}
	return st, true
}
